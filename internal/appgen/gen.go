package appgen

import (
	"fmt"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/dex"
)

// Config parameterizes app generation. Every knob maps to a statistic
// the paper's evaluation depends on (Table 1 columns, QC type mix for
// Figure 4, hot-method skew for candidate selection).
type Config struct {
	Name     string
	Category string
	Seed     int64

	TargetLOC      int     // approximate lines of code
	StmtsPerMethod int     // average method size (statements)
	HandlerFrac    float64 // fraction of methods that are event handlers
	QCPerMethod    float64 // expected equality conditions per method
	// QCTypeMix weights {weak(bool), medium(int), strong(string)}
	// equality conditions among generated QCs.
	QCTypeMix   [3]float64
	EnvVars     int // distinct environment variables the app reads
	IntFields   int
	StrFields   int
	BoolFields  int
	Screens     int     // UI screens gating handler activity (default 4)
	HotMethods  int     // always-invoked helpers (render/tick)
	LoopFrac    float64 // fraction of methods containing a bounded loop
	ParamDomain int64   // handler int args are drawn from [0, ParamDomain)

	// ExtraMethods lets named apps add hand-written behaviour (e.g.
	// AndroFish's fish-movement variables from Figure 3).
	ExtraMethods []MethodSpec
	// ExtraFields adds named static fields.
	ExtraFields []dex.Field
}

// MethodSpec is a hand-authored method for ExtraMethods.
type MethodSpec struct {
	Name    string
	NumArgs int
	Flags   dex.MethodFlags
	Body    []Stmt
}

// App is a generated application.
type App struct {
	Name     string
	Category string
	Config   Config
	File     *dex.File
	LOC      int

	IntFieldRefs  []string // "App.xxx" refs of integer program variables
	StrFieldRefs  []string
	BoolFieldRefs []string
	EnvVarNames   []string // distinct env vars read by app code
	Handlers      []string // full method names, stable order

	// HandlerScreens maps each handler to the UI screen it is active
	// on; -1 marks navigation handlers that are always active. The
	// current screen lives in the ScreenField static.
	HandlerScreens map[string]int64
	ScreenField    string
}

// ClassName is the single app class every generated app uses.
const ClassName = "App"

// withDefaults fills zero fields with sane values.
func (c Config) withDefaults() Config {
	if c.TargetLOC == 0 {
		c.TargetLOC = 4000
	}
	if c.StmtsPerMethod == 0 {
		c.StmtsPerMethod = 18
	}
	if c.HandlerFrac == 0 {
		c.HandlerFrac = 0.3
	}
	if c.QCPerMethod == 0 {
		c.QCPerMethod = 0.5
	}
	if c.QCTypeMix == [3]float64{} {
		c.QCTypeMix = [3]float64{0.5, 0.35, 0.15}
	}
	if c.EnvVars == 0 {
		c.EnvVars = 8
	}
	if c.IntFields == 0 {
		c.IntFields = 12
	}
	if c.StrFields == 0 {
		c.StrFields = 4
	}
	if c.BoolFields == 0 {
		c.BoolFields = 4
	}
	if c.HotMethods == 0 {
		c.HotMethods = 3
	}
	if c.Screens == 0 {
		c.Screens = 4
	}
	if c.LoopFrac == 0 {
		c.LoopFrac = 0.25
	}
	if c.ParamDomain == 0 {
		c.ParamDomain = 64
	}
	return c
}

type fieldInfo struct {
	ref    string
	domain int64    // int fields: values are [0, domain)
	vals   []string // str fields: value set
}

// generator holds generation state.
type generator struct {
	cfg     Config
	rng     *rand.Rand
	ints    []fieldInfo
	strs    []fieldInfo
	bools   []fieldInfo
	envVars []string
	helpers []string // full names, callable DAG-ordered
	hot     []string
	loc     int
}

// Generate builds a deterministic app from the config.
func Generate(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.pickEnvVars()
	g.makeFields()

	f := dex.NewFile()
	cls := &dex.Class{Name: ClassName}
	for _, fi := range g.ints {
		cls.Fields = append(cls.Fields, dex.Field{Name: fieldName(fi.ref), Init: dex.Int64(g.rng.Int63n(fi.domain))})
	}
	for _, fi := range g.strs {
		cls.Fields = append(cls.Fields, dex.Field{Name: fieldName(fi.ref), Init: dex.Str(fi.vals[0])})
	}
	for _, fi := range g.bools {
		cls.Fields = append(cls.Fields, dex.Field{Name: fieldName(fi.ref), Init: dex.Bool(g.rng.Intn(2) == 0)})
	}
	cls.Fields = append(cls.Fields, dex.Field{Name: "screen", Init: dex.Int64(0)})
	cls.Fields = append(cls.Fields, cfg.ExtraFields...)

	// Nested blocks (if/switch bodies) add roughly a 1.65x statement
	// multiplier over top-level counts; fold it in so LOC lands near
	// the target.
	numMethods := cfg.TargetLOC * 3 / ((cfg.StmtsPerMethod + 2) * 5)
	if numMethods < 8 {
		numMethods = 8
	}
	numHandlers := int(float64(numMethods) * cfg.HandlerFrac)
	if numHandlers < 4 {
		numHandlers = 4
	}
	numHelpers := numMethods - numHandlers
	if numHelpers < cfg.HotMethods+2 {
		numHelpers = cfg.HotMethods + 2
	}

	// Helper names first: helper i may call helpers j > i (a DAG).
	for i := 0; i < numHelpers; i++ {
		g.helpers = append(g.helpers, fmt.Sprintf("%s.helper%d", ClassName, i))
	}
	g.hot = g.helpers[:cfg.HotMethods]

	app := &App{
		Name: cfg.Name, Category: cfg.Category, Config: cfg, File: f,
		HandlerScreens: map[string]int64{},
		ScreenField:    ClassName + ".screen",
	}

	// Hot methods: tiny, loop-heavy, invoked from every handler.
	for i, full := range g.helpers {
		var body []Stmt
		if i < cfg.HotMethods {
			body = g.hotBody()
		} else {
			body = g.helperBody(i)
		}
		body = append(body, RetVoid())
		m, err := CompileMethod(f, fieldName(full), 1, 0, body)
		if err != nil {
			return nil, err
		}
		g.loc += CountStmts(body) + 2
		cls.AddMethod(m)
	}

	// onCreate.
	initBody := g.initBody()
	initBody = append(initBody, RetVoid())
	m, err := CompileMethod(f, "onCreate", 0, dex.FlagInit, initBody)
	if err != nil {
		return nil, err
	}
	g.loc += CountStmts(initBody) + 2
	cls.AddMethod(m)

	// Handlers: onEvent<i>(a, b). The first two are navigation
	// handlers (always active, they switch the current screen); the
	// rest are gated on their screen, modelling UI reachability: an
	// input generator without a UI model wastes most events on
	// inactive widgets.
	for i := 0; i < numHandlers; i++ {
		var body []Stmt
		name := fmt.Sprintf("onEvent%d", i)
		full := ClassName + "." + name
		if i < 2 {
			body = append(body,
				Assign(FieldRef(app.ScreenField),
					Bin(dex.OpRem, ArgRef(0), IntLit(int64(cfg.Screens)))))
			body = append(body, g.handlerBody()...)
			app.HandlerScreens[full] = -1
		} else {
			scr := int64(i % cfg.Screens)
			body = append(body,
				If(Cmp(CmpNe, FieldRef(app.ScreenField), IntLit(scr)),
					[]Stmt{RetVoid()}, nil))
			body = append(body, g.handlerBody()...)
			app.HandlerScreens[full] = scr
		}
		body = append(body, RetVoid())
		m, err := CompileMethod(f, name, 2, dex.FlagHandler, body)
		if err != nil {
			return nil, err
		}
		g.loc += CountStmts(body) + 2
		cls.AddMethod(m)
		app.Handlers = append(app.Handlers, full)
	}

	// Hand-authored extras.
	for _, spec := range cfg.ExtraMethods {
		m, err := CompileMethod(f, spec.Name, spec.NumArgs, spec.Flags, spec.Body)
		if err != nil {
			return nil, err
		}
		g.loc += CountStmts(spec.Body) + 2
		cls.AddMethod(m)
		if spec.Flags&dex.FlagHandler != 0 {
			full := ClassName + "." + spec.Name
			app.Handlers = append(app.Handlers, full)
			app.HandlerScreens[full] = -1
		}
	}

	if err := f.AddClass(cls); err != nil {
		return nil, err
	}
	if err := dex.ValidateLinked(f); err != nil {
		return nil, fmt.Errorf("appgen: generated app invalid: %w", err)
	}

	app.LOC = g.loc + 2
	for _, fi := range g.ints {
		app.IntFieldRefs = append(app.IntFieldRefs, fi.ref)
	}
	for _, fi := range g.strs {
		app.StrFieldRefs = append(app.StrFieldRefs, fi.ref)
	}
	for _, fi := range g.bools {
		app.BoolFieldRefs = append(app.BoolFieldRefs, fi.ref)
	}
	app.EnvVarNames = append(app.EnvVarNames, g.envVars...)
	return app, nil
}

func fieldName(ref string) string {
	for i := len(ref) - 1; i >= 0; i-- {
		if ref[i] == '.' {
			return ref[i+1:]
		}
	}
	return ref
}

func (g *generator) pickEnvVars() {
	names := android.Names()
	g.rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	n := g.cfg.EnvVars
	if n > len(names) {
		n = len(names)
	}
	g.envVars = names[:n]
}

var strDomains = [][]string{
	{"idle", "running", "paused", "stopped"},
	{"easy", "normal", "hard"},
	{"menu", "game", "settings", "scores", "about"},
	{"red", "green", "blue", "gold"},
	{"guest", "user", "admin"},
}

func (g *generator) makeFields() {
	for i := 0; i < g.cfg.IntFields; i++ {
		// Mostly small UI-ish domains, plus the occasional
		// high-entropy value (session ids, magic constants — the
		// paper's `mMode == 0xfff000` example): those make strong
		// brute-force-resistant triggers that fuzzing rarely
		// satisfies.
		domains := []int64{4, 8, 16, 32, 64, 100, 256, 1000, 1 << 20, 1 << 28}
		g.ints = append(g.ints, fieldInfo{
			ref:    fmt.Sprintf("%s.ivar%d", ClassName, i),
			domain: domains[g.rng.Intn(len(domains))],
		})
	}
	for i := 0; i < g.cfg.StrFields; i++ {
		g.strs = append(g.strs, fieldInfo{
			ref:  fmt.Sprintf("%s.svar%d", ClassName, i),
			vals: strDomains[g.rng.Intn(len(strDomains))],
		})
	}
	for i := 0; i < g.cfg.BoolFields; i++ {
		g.bools = append(g.bools, fieldInfo{
			ref:    fmt.Sprintf("%s.bvar%d", ClassName, i),
			domain: 2,
		})
	}
}

// randIntField returns a random int field.
func (g *generator) randIntField() fieldInfo { return g.ints[g.rng.Intn(len(g.ints))] }

func (g *generator) randStrField() fieldInfo { return g.strs[g.rng.Intn(len(g.strs))] }

func (g *generator) randBoolField() fieldInfo { return g.bools[g.rng.Intn(len(g.bools))] }

// fieldUpdate: a statement mutating a program variable within its
// domain (keeps the field's value set enumerable — the entropy source
// Figure 3 visualizes and artificial QCs profile).
func (g *generator) fieldUpdate(argc int) Stmt {
	switch g.rng.Intn(4) {
	case 0: // counter step: f = (f + k) % domain
		fi := g.randIntField()
		k := 1 + g.rng.Int63n(5)
		return Assign(FieldRef(fi.ref),
			Bin(dex.OpRem, Bin(dex.OpAdd, FieldRef(fi.ref), IntLit(k)), IntLit(fi.domain)))
	case 1: // absorb an event arg: f = arg % domain
		fi := g.randIntField()
		src := IntLit(g.rng.Int63n(fi.domain))
		if argc > 0 {
			src = Bin(dex.OpRem, ArgRef(g.rng.Intn(argc)), IntLit(fi.domain))
		}
		return Assign(FieldRef(fi.ref), src)
	case 2: // mode string rotate
		fi := g.randStrField()
		return Assign(FieldRef(fi.ref), StrLit(fi.vals[g.rng.Intn(len(fi.vals))]))
	default: // toggle a flag
		fi := g.randBoolField()
		return Assign(FieldRef(fi.ref), Bin(dex.OpXor, FieldRef(fi.ref), IntLit(1)))
	}
}

// qcIf: an equality condition against a constant — an existing
// qualified condition the protector can transform into a bomb.
func (g *generator) qcIf(argc, minCallee int) Stmt {
	mix := g.cfg.QCTypeMix
	x := g.rng.Float64() * (mix[0] + mix[1] + mix[2])
	var cond Cond
	switch {
	case x < mix[0]: // weak: boolean flag
		cond = Truthy(FieldRef(g.randBoolField().ref))
	case x < mix[0]+mix[1]: // medium: int equality
		fi := g.randIntField()
		lhs := FieldRef(fi.ref)
		cval := g.rng.Int63n(fi.domain)
		if argc > 0 && g.rng.Intn(3) == 0 {
			lhs = Bin(dex.OpRem, ArgRef(g.rng.Intn(argc)), IntLit(fi.domain))
		}
		cond = Cmp(CmpEq, lhs, IntLit(cval))
	default: // strong: string equality
		fi := g.randStrField()
		api := dex.APIStrEquals
		switch g.rng.Intn(4) {
		case 0:
			api = dex.APIStrStartsWith
		case 1:
			api = dex.APIStrEndsWith
		}
		cond = StrCmp(api, FieldRef(fi.ref), StrLit(fi.vals[g.rng.Intn(len(fi.vals))]))
	}
	return If(cond, g.actionBlock(argc, minCallee), nil)
}

// actionBlock: statics-only side effects (weavable then-regions).
func (g *generator) actionBlock(argc, minCallee int) []Stmt {
	n := 1 + g.rng.Intn(3)
	var out []Stmt
	for i := 0; i < n; i++ {
		switch g.rng.Intn(5) {
		case 0:
			out = append(out, g.fieldUpdate(argc))
		case 1:
			out = append(out, Do(APICall(dex.APIUIDraw, IntLit(g.rng.Int63n(8)))))
		case 2:
			out = append(out, Do(APICall(dex.APIVibrate, IntLit(10+g.rng.Int63n(90)))))
		case 3:
			out = append(out, Do(APICall(dex.APIPlaySound, IntLit(g.rng.Int63n(12)))))
		default:
			// Calls stay within the helper DAG (only later helpers) so
			// generated apps never recurse.
			if minCallee < len(g.helpers) {
				callee := g.helpers[minCallee+g.rng.Intn(len(g.helpers)-minCallee)]
				out = append(out, Do(Call(callee, IntLit(g.rng.Int63n(16)))))
			} else {
				out = append(out, g.fieldUpdate(argc))
			}
		}
	}
	return out
}

// envIf: reads an environment variable (inequality guard — counted in
// Table 1's env-var column but not itself a QC).
func (g *generator) envIf() Stmt {
	name := g.envVars[g.rng.Intn(len(g.envVars))]
	spec := android.Spec(name)
	// Prefer integer environment variables: their threshold guards
	// are plain inequalities, which is what most real env checks are.
	if spec != nil && spec.Kind == android.VarStr && g.rng.Intn(4) != 0 {
		for _, alt := range g.envVars {
			if as := android.Spec(alt); as != nil && as.Kind == android.VarInt {
				name, spec = alt, as
				break
			}
		}
	}
	var read Expr
	var cond Cond
	if spec != nil && spec.Kind == android.VarStr {
		read = APICall(dex.APIGetEnvStr, StrLit(name))
		v := spec.StrVals[g.rng.Intn(len(spec.StrVals))].Val
		// contains() is not an equality API, so this guard is not a
		// qualified condition; most real env checks are fuzzy.
		cond = StrCmp(dex.APIStrContains, read, StrLit(v))
	} else {
		read = APICall(dex.APIGetEnvInt, StrLit(name))
		lo, hi := int64(0), int64(100)
		if spec != nil {
			lo, hi = spec.Lo, spec.Hi
			if len(spec.IntWeights) > 0 {
				lo, hi = spec.IntWeights[0].Val, spec.IntWeights[len(spec.IntWeights)-1].Val
			}
		}
		thresh := lo + g.rng.Int63n(max64(hi-lo, 1)+1)
		cond = Cmp(CmpGt, read, IntLit(thresh))
	}
	return If(cond, []Stmt{Do(APICall(dex.APIUIDraw, IntLit(2)))}, nil)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// cmpIf: an ordinary inequality guard — NOT a qualified condition
// (real code is dominated by <, >, bounds checks).
func (g *generator) cmpIf(argc int) Stmt {
	fi := g.randIntField()
	lhs := FieldRef(fi.ref)
	if argc > 0 && g.rng.Intn(2) == 0 {
		lhs = ArgRef(g.rng.Intn(argc))
	}
	op := CmpGt
	if g.rng.Intn(2) == 0 {
		op = CmpLt
	}
	return If(Cmp(op, lhs, IntLit(g.rng.Int63n(fi.domain))),
		[]Stmt{Do(APICall(dex.APIUIDraw, IntLit(g.rng.Int63n(6))))}, nil)
}

// switchStmt: dispatch on an int field — each case is a QC.
func (g *generator) switchStmt(argc, minCallee int) Stmt {
	fi := g.randIntField()
	n := 2 + g.rng.Intn(3)
	var cases []Case
	used := map[int64]bool{}
	for i := 0; i < n; i++ {
		v := g.rng.Int63n(fi.domain)
		if used[v] {
			continue
		}
		used[v] = true
		cases = append(cases, Case{Val: v, Body: g.actionBlock(argc, minCallee)})
	}
	return Switch(FieldRef(fi.ref), cases, []Stmt{Do(APICall(dex.APIUIDraw, IntLit(1)))})
}

// computeStmt: local arithmetic feeding a UI call.
func (g *generator) computeStmt(argc, idx int) []Stmt {
	l := fmt.Sprintf("t%d", idx)
	var src Expr
	if argc > 0 {
		src = Bin(dex.OpMul, ArgRef(g.rng.Intn(argc)), IntLit(1+g.rng.Int63n(7)))
	} else {
		src = Bin(dex.OpAdd, FieldRef(g.randIntField().ref), IntLit(g.rng.Int63n(9)))
	}
	return []Stmt{
		Assign(LocalRef(l), src),
		Do(APICall(dex.APIUIDraw, LocalRef(l))),
	}
}

// hotBody: the small, frequently invoked render/tick work.
func (g *generator) hotBody() []Stmt {
	return []Stmt{
		For(2+g.rng.Int63n(3), []Stmt{
			Do(APICall(dex.APIUIDraw, IntLit(1))),
		}),
		g.fieldUpdate(1),
	}
}

// qcBudget draws how many qualified-condition sites a method gets,
// averaging cfg.QCPerMethod (paper Table 1: ~0.3–0.6 existing QCs per
// candidate method).
func (g *generator) qcBudget() int {
	// Screen gates and boolean guards on API results also surface as
	// QCs to the static scanner, so the explicit budget runs at half
	// the configured density to keep the per-method total on target.
	p := g.cfg.QCPerMethod * 0.5
	n := 0
	if g.rng.Float64() < p {
		n = 1
		if g.rng.Float64() < p/4 {
			n = 2
		}
	}
	return n
}

// emitQC spends one budget unit: an equality if (80%) or a switch.
func (g *generator) emitQC(argc, minCallee int) Stmt {
	if g.rng.Intn(5) == 0 {
		return g.switchStmt(argc, minCallee)
	}
	return g.qcIf(argc, minCallee)
}

// helperBody: mid-sized logic; may call later helpers (DAG).
func (g *generator) helperBody(idx int) []Stmt {
	var out []Stmt
	for i, n := 0, g.qcBudget(); i < n; i++ {
		out = append(out, g.emitQC(1, idx+1))
	}
	stmts := g.cfg.StmtsPerMethod/2 + g.rng.Intn(g.cfg.StmtsPerMethod)
	for len(out) < stmts {
		switch {
		case g.rng.Float64() < 0.12:
			out = append(out, g.cmpIf(1))
		case g.rng.Float64() < 0.1 && len(g.envVars) > 0:
			out = append(out, g.envIf())
		case g.rng.Float64() < g.cfg.LoopFrac/3:
			out = append(out, For(2+g.rng.Int63n(4), []Stmt{g.fieldUpdate(1)}))
		case g.rng.Float64() < 0.2 && idx+1 < len(g.helpers):
			callee := g.helpers[idx+1+g.rng.Intn(len(g.helpers)-idx-1)]
			out = append(out, Do(Call(callee, IntLit(g.rng.Int63n(16)))))
		default:
			if g.rng.Intn(2) == 0 {
				out = append(out, g.fieldUpdate(1))
			} else {
				out = append(out, g.computeStmt(1, len(out))...)
			}
		}
	}
	// Shuffle so QC sites are not always at the top of the method.
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// initBody: onCreate.
func (g *generator) initBody() []Stmt {
	out := []Stmt{Do(APICall(dex.APILog, StrLit(g.cfg.Name+" starting")))}
	for i := 0; i < 3 && i < len(g.ints); i++ {
		out = append(out, Assign(FieldRef(g.ints[i].ref), IntLit(g.rng.Int63n(g.ints[i].domain))))
	}
	out = append(out, Do(APICall(dex.APIUIDraw, IntLit(4))))
	return out
}

// handlerBody: event handlers absorb args, call hot methods, and mix
// in QCs, env reads, switches, and loops per the config.
func (g *generator) handlerBody() []Stmt {
	var out []Stmt
	// Hot path: every event renders.
	for _, h := range g.hot {
		out = append(out, Do(Call(h, ArgRef(0))))
	}
	out = append(out, g.fieldUpdate(2))
	var tail []Stmt
	for i, n := 0, g.qcBudget(); i < n; i++ {
		tail = append(tail, g.emitQC(2, 0))
	}
	stmts := g.cfg.StmtsPerMethod/2 + g.rng.Intn(g.cfg.StmtsPerMethod)
	for len(tail) < stmts-len(out) {
		r := g.rng.Float64()
		switch {
		case r < 0.12:
			tail = append(tail, g.cmpIf(2))
		case r < 0.25 && len(g.envVars) > 0 && g.rng.Intn(3) == 0:
			tail = append(tail, g.envIf())
		case r < 0.32+g.cfg.LoopFrac/4:
			tail = append(tail, For(2+g.rng.Int63n(3), []Stmt{g.fieldUpdate(2)}))
		case r < 0.6 && len(g.helpers) > 0:
			callee := g.helpers[g.rng.Intn(len(g.helpers))]
			tail = append(tail, Do(Call(callee, Bin(dex.OpRem, ArgRef(1), IntLit(16)))))
		default:
			if g.rng.Intn(2) == 0 {
				tail = append(tail, g.fieldUpdate(2))
			} else {
				tail = append(tail, g.computeStmt(2, len(tail))...)
			}
		}
	}
	g.rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return append(out, tail...)
}
