package appgen

import (
	"fmt"

	"bombdroid/internal/dex"
)

// compiler lowers one method body to bytecode.
type compiler struct {
	b       *dex.Builder
	f       *dex.File
	locals  map[string]int32
	nextLbl int
}

// CompileMethod compiles body into a method. Locals are allocated
// ahead of temporaries so statement-scoped temporary reuse never
// collides with them. Equality conditions compile to the branch shapes
// cfg.FindQCs recognizes, so AST-level QCs and bytecode-level QCs
// correspond one-to-one.
func CompileMethod(f *dex.File, name string, numArgs int, flags dex.MethodFlags, body []Stmt) (*dex.Method, error) {
	b := dex.NewBuilder(f, name, numArgs)
	b.SetFlags(flags)
	c := &compiler{b: b, f: f, locals: map[string]int32{}}
	for _, l := range collectLocals(body, nil) {
		if _, dup := c.locals[l]; !dup {
			c.locals[l] = b.Reg()
		}
	}
	if err := c.stmts(body); err != nil {
		return nil, fmt.Errorf("appgen: compiling %s: %w", name, err)
	}
	return b.Finish()
}

// collectLocals gathers local names in first-assignment order.
func collectLocals(body []Stmt, acc []string) []string {
	var walkExpr func(e *Expr)
	walkExpr = func(e *Expr) {
		if e.Kind == ELocal {
			acc = append(acc, e.Local)
		}
		for i := range e.Args {
			walkExpr(&e.Args[i])
		}
	}
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for i := range body {
			s := &body[i]
			if s.Kind == SAssign {
				walkExpr(&s.Target)
			}
			walkExpr(&s.E)
			walkExpr(&s.Cond.L)
			walkExpr(&s.Cond.R)
			walk(s.Then)
			walk(s.Else)
			walk(s.Body)
			walk(s.Default)
			for _, cs := range s.Cases {
				walk(cs.Body)
			}
		}
	}
	walk(body)
	// Deduplicate, preserving order.
	seen := map[string]bool{}
	out := acc[:0]
	for _, l := range acc {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func (c *compiler) label(prefix string) string {
	c.nextLbl++
	return fmt.Sprintf("%s%d", prefix, c.nextLbl)
}

func (c *compiler) stmts(body []Stmt) error {
	for i := range body {
		if err := c.stmt(&body[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s *Stmt) error {
	mark := c.b.Mark()
	defer c.b.Release(mark)
	switch s.Kind {
	case SAssign:
		switch s.Target.Kind {
		case EField:
			r, err := c.expr(&s.E)
			if err != nil {
				return err
			}
			c.b.PutStatic(s.Target.Field, r)
		case ELocal:
			dst, ok := c.locals[s.Target.Local]
			if !ok {
				return fmt.Errorf("unknown local %q", s.Target.Local)
			}
			r, err := c.expr(&s.E)
			if err != nil {
				return err
			}
			c.b.Move(dst, r)
		default:
			return fmt.Errorf("bad assignment target kind %d", s.Target.Kind)
		}

	case SIf:
		els := c.label("else")
		join := c.label("join")
		target := els
		if len(s.Else) == 0 {
			target = join
		}
		if err := c.condFalseJump(&s.Cond, target); err != nil {
			return err
		}
		if err := c.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			c.b.Goto(join)
			c.b.Label(els)
			if err := c.stmts(s.Else); err != nil {
				return err
			}
		}
		c.b.Label(join)

	case SSwitch:
		r, err := c.expr(&s.E)
		if err != nil {
			return err
		}
		matches := make([]int64, len(s.Cases))
		caseLabels := make([]string, len(s.Cases))
		for i, cs := range s.Cases {
			matches[i] = cs.Val
			caseLabels[i] = c.label("case")
		}
		defLbl := c.label("default")
		join := c.label("swjoin")
		c.b.Switch(r, matches, caseLabels, defLbl)
		for i, cs := range s.Cases {
			c.b.Label(caseLabels[i])
			if err := c.stmts(cs.Body); err != nil {
				return err
			}
			c.b.Goto(join)
		}
		c.b.Label(defLbl)
		if err := c.stmts(s.Default); err != nil {
			return err
		}
		c.b.Label(join)

	case SFor:
		i := c.b.Reg()
		lim := c.b.Reg()
		c.b.ConstInt(i, 0)
		c.b.ConstInt(lim, s.N)
		head := c.label("for")
		done := c.label("forend")
		c.b.Label(head)
		c.b.Branch(dex.OpIfGe, i, lim, done)
		if err := c.stmts(s.Body); err != nil {
			return err
		}
		c.b.AddK(i, i, 1)
		c.b.Goto(head)
		c.b.Label(done)

	case SExpr:
		if _, err := c.exprVoidOK(&s.E); err != nil {
			return err
		}

	case SReturn:
		if s.Void {
			c.b.ReturnVoid()
			return nil
		}
		r, err := c.expr(&s.E)
		if err != nil {
			return err
		}
		c.b.Return(r)

	default:
		return fmt.Errorf("bad statement kind %d", s.Kind)
	}
	return nil
}

// condFalseJump emits code that jumps to target when the condition is
// FALSE (the if-then fallthrough shape that keeps equality conditions
// recognizable as QCs with weavable then-regions).
func (c *compiler) condFalseJump(cond *Cond, target string) error {
	switch cond.Kind {
	case CTruthy:
		r, err := c.expr(&cond.L)
		if err != nil {
			return err
		}
		c.b.BranchZ(dex.OpIfEqz, r, target)
		return nil

	case CStrCmp:
		l, err := c.expr(&cond.L)
		if err != nil {
			return err
		}
		r, err := c.expr(&cond.R)
		if err != nil {
			return err
		}
		res := c.b.Reg()
		c.b.CallAPI(res, cond.API, l, r)
		c.b.BranchZ(dex.OpIfEqz, res, target)
		return nil

	case CCmp:
		l, err := c.expr(&cond.L)
		if err != nil {
			return err
		}
		r, err := c.expr(&cond.R)
		if err != nil {
			return err
		}
		var negated dex.Op
		switch cond.Op {
		case CmpEq:
			negated = dex.OpIfNe
		case CmpNe:
			negated = dex.OpIfEq
		case CmpLt:
			negated = dex.OpIfGe
		case CmpLe:
			negated = dex.OpIfGt
		case CmpGt:
			negated = dex.OpIfLe
		case CmpGe:
			negated = dex.OpIfLt
		default:
			return fmt.Errorf("bad cmp op %d", cond.Op)
		}
		c.b.Branch(negated, l, r, target)
		return nil
	}
	return fmt.Errorf("bad condition kind %d", cond.Kind)
}

// expr evaluates to a register holding the value.
func (c *compiler) expr(e *Expr) (int32, error) {
	r, err := c.exprVoidOK(e)
	if err != nil {
		return 0, err
	}
	if r == -1 {
		return 0, fmt.Errorf("void expression used as value")
	}
	return r, nil
}

// exprVoidOK evaluates an expression; void API calls return -1.
func (c *compiler) exprVoidOK(e *Expr) (int32, error) {
	switch e.Kind {
	case EInt:
		r := c.b.Reg()
		c.b.ConstInt(r, e.Int)
		return r, nil
	case EStr:
		r := c.b.Reg()
		c.b.ConstStr(r, e.Str)
		return r, nil
	case EField:
		r := c.b.Reg()
		c.b.GetStatic(r, e.Field)
		return r, nil
	case EArg:
		return int32(e.Arg), nil
	case ELocal:
		r, ok := c.locals[e.Local]
		if !ok {
			return 0, fmt.Errorf("unknown local %q", e.Local)
		}
		return r, nil
	case EBin:
		if len(e.Args) != 2 {
			return 0, fmt.Errorf("binary op with %d operands", len(e.Args))
		}
		l, err := c.expr(&e.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := c.expr(&e.Args[1])
		if err != nil {
			return 0, err
		}
		dst := c.b.Reg()
		c.b.Arith(e.Op, dst, l, r)
		return dst, nil
	case ECall, EAPI:
		regs := make([]int32, len(e.Args))
		for i := range e.Args {
			r, err := c.expr(&e.Args[i])
			if err != nil {
				return 0, err
			}
			regs[i] = r
		}
		if e.Kind == ECall {
			dst := c.b.Reg()
			c.b.Invoke(dst, e.Method, regs...)
			return dst, nil
		}
		if isVoidAPI(e.API) {
			c.b.CallAPI(-1, e.API, regs...)
			return -1, nil
		}
		dst := c.b.Reg()
		c.b.CallAPI(dst, e.API, regs...)
		return dst, nil
	}
	return 0, fmt.Errorf("bad expression kind %d", e.Kind)
}

// isVoidAPI lists APIs with no return value.
func isVoidAPI(api dex.API) bool {
	switch api {
	case dex.APILog, dex.APIUIDraw, dex.APIPlaySound, dex.APIVibrate,
		dex.APIReportPiracy, dex.APIWarnUser, dex.APICrash,
		dex.APILeakMemory, dex.APISpinLoop, dex.APIDelayBomb:
		return true
	}
	return false
}
