package appgen

import (
	"fmt"
	"math/rand"
)

// CategorySpec drives corpus generation for one Table 1 row: the app
// count and the averages the generated population should reproduce.
type CategorySpec struct {
	Name        string
	Apps        int
	AvgLOC      int
	AvgEnvVars  int
	QCPerMethod float64
	// StmtsPerMethod controls method granularity so candidate-method
	// counts track the paper's per-category averages.
	StmtsPerMethod int
}

// Categories reproduces the corpus composition of Table 1
// (963 F-Droid apps across eight categories). QCPerMethod and
// StmtsPerMethod are derived from the paper's per-category averages
// (avg LOC / avg candidate methods / avg existing QCs).
var Categories = []CategorySpec{
	{Name: "Game", Apps: 105, AvgLOC: 3043, AvgEnvVars: 16, QCPerMethod: 0.53, StmtsPerMethod: 15},
	{Name: "Science&Edu.", Apps: 98, AvgLOC: 4046, AvgEnvVars: 8, QCPerMethod: 0.46, StmtsPerMethod: 23},
	{Name: "Sport&Health", Apps: 87, AvgLOC: 5467, AvgEnvVars: 11, QCPerMethod: 0.32, StmtsPerMethod: 24},
	{Name: "Writing", Apps: 149, AvgLOC: 7099, AvgEnvVars: 6, QCPerMethod: 0.40, StmtsPerMethod: 24},
	{Name: "Navigation", Apps: 121, AvgLOC: 9374, AvgEnvVars: 9, QCPerMethod: 0.25, StmtsPerMethod: 25},
	{Name: "Multimedia", Apps: 108, AvgLOC: 10032, AvgEnvVars: 17, QCPerMethod: 0.32, StmtsPerMethod: 25},
	{Name: "Security", Apps: 152, AvgLOC: 11073, AvgEnvVars: 12, QCPerMethod: 0.32, StmtsPerMethod: 23},
	{Name: "Development", Apps: 143, AvgLOC: 14376, AvgEnvVars: 11, QCPerMethod: 0.22, StmtsPerMethod: 19},
}

// CorpusSize is the total number of apps in the evaluation corpus.
func CorpusSize() int {
	n := 0
	for _, c := range Categories {
		n += c.Apps
	}
	return n
}

// CategoryConfig builds the generation config for the i-th app of a
// category, jittering sizes around the category average so the
// population has realistic spread while its mean matches Table 1.
func CategoryConfig(spec CategorySpec, i int) Config {
	rng := rand.New(rand.NewSource(int64(i)*7919 + int64(len(spec.Name))*104729))
	loc := int(float64(spec.AvgLOC) * (0.6 + rng.Float64()*0.8)) // ±40%
	env := spec.AvgEnvVars + rng.Intn(5) - 2
	if env < 1 {
		env = 1
	}
	return Config{
		Name:           fmt.Sprintf("%s-%03d", spec.Name, i),
		Category:       spec.Name,
		Seed:           int64(i+1) * 15485863,
		TargetLOC:      loc,
		EnvVars:        env,
		QCPerMethod:    spec.QCPerMethod * (0.8 + rng.Float64()*0.4),
		StmtsPerMethod: spec.StmtsPerMethod,
	}
}

// GenerateCategory generates all apps of one category, invoking visit
// for each so callers can aggregate statistics without holding the
// whole corpus in memory. Generation stops at the first error.
func GenerateCategory(spec CategorySpec, visit func(*App) error) error {
	for i := 0; i < spec.Apps; i++ {
		app, err := Generate(CategoryConfig(spec, i))
		if err != nil {
			return fmt.Errorf("appgen: category %s app %d: %w", spec.Name, i, err)
		}
		if err := visit(app); err != nil {
			return err
		}
	}
	return nil
}

// SampleCorpus generates perCategory evenly spaced apps from every
// category — the cross-section harnesses use when they need corpus
// diversity (one app per Table 1 row) without corpus scale; the VM's
// differential tests execute exactly this sample on both interpreter
// paths.
func SampleCorpus(perCategory int, visit func(*App) error) error {
	for _, spec := range Categories {
		if err := SampleCategory(spec, perCategory, visit); err != nil {
			return err
		}
	}
	return nil
}

// SampleCategory generates only n evenly spaced apps of a category —
// the subsampling hook benchmarks use to keep runtimes sane while
// preserving the population mean.
func SampleCategory(spec CategorySpec, n int, visit func(*App) error) error {
	if n <= 0 || n > spec.Apps {
		n = spec.Apps
	}
	step := spec.Apps / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < spec.Apps && n > 0; i += step {
		app, err := Generate(CategoryConfig(spec, i))
		if err != nil {
			return fmt.Errorf("appgen: category %s app %d: %w", spec.Name, i, err)
		}
		if err := visit(app); err != nil {
			return err
		}
		n--
	}
	return nil
}
