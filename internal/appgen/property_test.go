package appgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bombdroid/internal/dex"
)

// Property: any config in a broad realistic range yields a valid app
// whose handlers survive a burst of random events without faults.
func TestGenerateAnyConfigRunsCleanly(t *testing.T) {
	if err := quick.Check(func(seed int64, locK, qcQ, envN, scr uint8) bool {
		cfg := Config{
			Name:        "q",
			Seed:        seed,
			TargetLOC:   600 + int(locK)%40*100, // 600..4500
			QCPerMethod: 0.2 + float64(qcQ%16)/10,
			EnvVars:     1 + int(envN)%20,
			Screens:     2 + int(scr)%5,
		}
		app, err := Generate(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := dex.ValidateLinked(app.File); err != nil {
			t.Logf("seed %d: invalid: %v", seed, err)
			return false
		}
		v := newVM(t, app.File)
		rng := rand.New(rand.NewSource(seed))
		for _, init := range v.InitMethods() {
			if _, err := v.Invoke(init); err != nil {
				t.Logf("seed %d init: %v", seed, err)
				return false
			}
		}
		hs := v.Handlers()
		for i := 0; i < 120; i++ {
			h := hs[rng.Intn(len(hs))]
			if _, err := v.Invoke(h,
				dex.Int64(rng.Int63n(app.Config.ParamDomain)),
				dex.Int64(rng.Int63n(app.Config.ParamDomain))); err != nil {
				t.Logf("seed %d event: %v", seed, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every generated handler is registered in the UI model with
// a screen assignment, and navigation handlers exist.
func TestUIModelComplete(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		app, err := Generate(Config{Name: "ui", Seed: seed, TargetLOC: 900})
		if err != nil {
			return false
		}
		nav := 0
		for _, h := range app.Handlers {
			scr, ok := app.HandlerScreens[h]
			if !ok {
				t.Logf("handler %s missing from UI model", h)
				return false
			}
			if scr == -1 {
				nav++
			} else if scr < 0 || scr >= int64(app.Config.Screens) {
				t.Logf("handler %s on impossible screen %d", h, scr)
				return false
			}
		}
		return nav >= 2
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the LOC metric is stable and additive-ish — regenerating
// with the same seed yields the same LOC, and larger targets yield
// more LOC.
func TestLOCMonotone(t *testing.T) {
	locFor := func(target int, seed int64) int {
		app, err := Generate(Config{Name: "m", Seed: seed, TargetLOC: target})
		if err != nil {
			t.Fatal(err)
		}
		return app.LOC
	}
	small := locFor(1200, 5)
	big := locFor(6000, 5)
	if big <= small {
		t.Errorf("LOC not monotone: %d (1200) vs %d (6000)", small, big)
	}
	if locFor(1200, 5) != small {
		t.Error("LOC not deterministic")
	}
	// The metric should land within ±45% of target across seeds.
	for seed := int64(1); seed <= 6; seed++ {
		got := locFor(3000, seed)
		if got < 1650 || got > 4350 {
			t.Errorf("seed %d: LOC %d too far from target 3000", seed, got)
		}
	}
}
