// Package appgen synthesizes Android-like apps as dex bytecode: an
// AST of statements and expressions, a compiler from the AST to
// register bytecode, a parameterized random program generator, the
// eight named evaluation apps from the paper's Tables 2/3 (AndroFish,
// Angulo, SWJournal, Calendar, BRouter, Binaural Beat, Hash Droid,
// CatLog), and the 963-app corpus behind Table 1. The paper evaluates
// on F-Droid apps; this generator reproduces the *statistics* that
// matter to BombDroid — method counts, qualified-condition density and
// type mix, environment-variable usage, hot/cold skew, and program
// variables with controllable entropy.
package appgen

import (
	"bombdroid/internal/dex"
)

// ExprKind discriminates expression nodes.
type ExprKind uint8

// Expression kinds.
const (
	EInt   ExprKind = iota // integer literal
	EStr                   // string literal
	EField                 // static field "Class.field"
	EArg                   // handler/method argument index
	ELocal                 // named local
	EBin                   // binary arithmetic (Op)
	ECall                  // method call (Method, Args)
	EAPI                   // framework call (API, Args)
)

// Expr is an expression node (a compact tagged union — the generator
// allocates millions of these, so no interface boxing).
type Expr struct {
	Kind   ExprKind
	Int    int64
	Str    string
	Field  string
	Arg    int
	Local  string
	Op     dex.Op
	API    dex.API
	Method string
	Args   []Expr
}

// Convenience constructors.

// IntLit returns an integer literal.
func IntLit(v int64) Expr { return Expr{Kind: EInt, Int: v} }

// StrLit returns a string literal.
func StrLit(s string) Expr { return Expr{Kind: EStr, Str: s} }

// FieldRef returns a static field reference.
func FieldRef(ref string) Expr { return Expr{Kind: EField, Field: ref} }

// ArgRef returns an argument reference.
func ArgRef(i int) Expr { return Expr{Kind: EArg, Arg: i} }

// LocalRef returns a local variable reference.
func LocalRef(name string) Expr { return Expr{Kind: ELocal, Local: name} }

// Bin returns a binary arithmetic expression.
func Bin(op dex.Op, l, r Expr) Expr { return Expr{Kind: EBin, Op: op, Args: []Expr{l, r}} }

// Call returns a method-call expression.
func Call(method string, args ...Expr) Expr {
	return Expr{Kind: ECall, Method: method, Args: args}
}

// APICall returns a framework-call expression.
func APICall(api dex.API, args ...Expr) Expr {
	return Expr{Kind: EAPI, API: api, Args: args}
}

// CondKind discriminates condition nodes.
type CondKind uint8

// Condition kinds.
const (
	CCmp    CondKind = iota // integer comparison (CmpOp)
	CTruthy                 // nonzero test
	CStrCmp                 // string comparison API against a literal
)

// CmpOp is the comparison in a CCmp condition.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Cond is a branch condition.
type Cond struct {
	Kind CondKind
	Op   CmpOp
	API  dex.API // equals/startsWith/endsWith for CStrCmp
	L, R Expr    // R must be a literal for QC-forming conditions
}

// Cmp builds an integer comparison condition.
func Cmp(op CmpOp, l, r Expr) Cond { return Cond{Kind: CCmp, Op: op, L: l, R: r} }

// Truthy builds a nonzero test.
func Truthy(e Expr) Cond { return Cond{Kind: CTruthy, L: e} }

// StrCmp builds a string comparison condition.
func StrCmp(api dex.API, l, r Expr) Cond { return Cond{Kind: CStrCmp, API: api, L: l, R: r} }

// StmtKind discriminates statement nodes.
type StmtKind uint8

// Statement kinds.
const (
	SAssign StmtKind = iota // Target = E
	SIf                     // if Cond { Then } else { Else }
	SSwitch                 // switch E { Cases / Default }
	SFor                    // bounded loop: N iterations of Body
	SExpr                   // evaluate E for effect
	SReturn                 // return E (or void if E.Kind == EInt && Void)
)

// Case is one switch arm.
type Case struct {
	Val  int64
	Body []Stmt
}

// Stmt is a statement node.
type Stmt struct {
	Kind    StmtKind
	Target  Expr // SAssign: EField or ELocal
	E       Expr
	Cond    Cond
	Then    []Stmt
	Else    []Stmt
	Cases   []Case
	Default []Stmt
	N       int64 // SFor iteration count
	Body    []Stmt
	Void    bool // SReturn without value
}

// Assign builds Target = E.
func Assign(target, e Expr) Stmt { return Stmt{Kind: SAssign, Target: target, E: e} }

// If builds a conditional.
func If(c Cond, then []Stmt, els []Stmt) Stmt {
	return Stmt{Kind: SIf, Cond: c, Then: then, Else: els}
}

// Switch builds a table switch.
func Switch(e Expr, cases []Case, def []Stmt) Stmt {
	return Stmt{Kind: SSwitch, E: e, Cases: cases, Default: def}
}

// For builds a bounded counted loop.
func For(n int64, body []Stmt) Stmt { return Stmt{Kind: SFor, N: n, Body: body} }

// Do builds an expression statement.
func Do(e Expr) Stmt { return Stmt{Kind: SExpr, E: e} }

// Ret builds return E.
func Ret(e Expr) Stmt { return Stmt{Kind: SReturn, E: e} }

// RetVoid builds a void return.
func RetVoid() Stmt { return Stmt{Kind: SReturn, Void: true} }

// CountStmts returns the source-line count of a body, recursively —
// the repository's "lines of code" metric for generated apps. It
// counts one line per statement plus one closing-brace line per
// nested block, approximating what CLOC reports for the equivalent
// Java (the paper measures LOC with CLOC); method and class overhead
// is added by the generator's LOC accounting.
func CountStmts(body []Stmt) int {
	n := 0
	for i := range body {
		s := &body[i]
		n++
		n += blockLines(s.Then) + blockLines(s.Else) + blockLines(s.Body) + blockLines(s.Default)
		for _, c := range s.Cases {
			n += blockLines(c.Body)
		}
	}
	return n
}

// blockLines counts a nested block plus its closing brace line.
func blockLines(body []Stmt) int {
	if len(body) == 0 {
		return 0
	}
	return CountStmts(body) + 1
}
