package appgen

import (
	"fmt"

	"bombdroid/internal/dex"
)

// The eight apps the paper's Tables 2–5 and Figures 3–5 evaluate,
// with configurations tuned so their static profiles (size, QC
// density, program-variable entropy) land near the published numbers.

// NamedApps lists the evaluation apps in the paper's order.
var NamedApps = []string{
	"AndroFish", "Angulo", "SWJournal", "Calendar",
	"BRouter", "Binaural Beat", "Hash Droid", "CatLog",
}

// namedConfigs maps app name to its tuned generation config.
// TargetLOC values follow each app's real-world scale relative to its
// category; QC densities are tuned so bomb injection counts land near
// Table 2.
var namedConfigs = map[string]Config{
	"AndroFish": {
		Category: "Game", Seed: 0xF154, TargetLOC: 2600,
		QCPerMethod: 1.20, EnvVars: 16, IntFields: 10, StrFields: 3,
		ExtraFields:  androFishFields(),
		ExtraMethods: androFishMethods(),
	},
	"Angulo": {
		Category: "Science&Edu.", Seed: 0xA6010, TargetLOC: 2100,
		QCPerMethod: 1.05, EnvVars: 8, IntFields: 8,
	},
	"SWJournal": {
		Category: "Writing", Seed: 0x51013, TargetLOC: 2700,
		QCPerMethod: 0.95, EnvVars: 6, StrFields: 6,
		QCTypeMix: [3]float64{0.40, 0.34, 0.26},
	},
	"Calendar": {
		Category: "Writing", Seed: 0xCA1E, TargetLOC: 4600,
		QCPerMethod: 1.15, EnvVars: 7, IntFields: 16,
	},
	"BRouter": {
		Category: "Navigation", Seed: 0xB407E4, TargetLOC: 11000,
		QCPerMethod: 1.10, EnvVars: 9, IntFields: 20, StrFields: 6,
	},
	"Binaural Beat": {
		Category: "Multimedia", Seed: 0xBEA7, TargetLOC: 3600,
		QCPerMethod: 1.15, EnvVars: 17, IntFields: 12,
	},
	"Hash Droid": {
		Category: "Security", Seed: 0x4A54, TargetLOC: 2900,
		QCPerMethod: 1.05, EnvVars: 12, StrFields: 5,
		QCTypeMix: [3]float64{0.42, 0.33, 0.25},
	},
	"CatLog": {
		Category: "Development", Seed: 0xCA7106, TargetLOC: 3200,
		QCPerMethod: 1.05, EnvVars: 11, StrFields: 5,
	},
}

// NamedApp generates one of the paper's evaluation apps.
func NamedApp(name string) (*App, error) {
	cfg, ok := namedConfigs[name]
	if !ok {
		return nil, fmt.Errorf("appgen: unknown named app %q (want one of %v)", name, NamedApps)
	}
	cfg.Name = name
	return Generate(cfg)
}

// AndroFishVars are the six program variables Figure 3 visualizes:
// state of the currently visible fish.
var AndroFishVars = []string{
	"App.dir", "App.width", "App.height", "App.speed", "App.posX", "App.posY",
}

func androFishFields() []dex.Field {
	return []dex.Field{
		{Name: "dir", Init: dex.Int64(0)},     // 4 headings (low entropy)
		{Name: "width", Init: dex.Int64(24)},  // few sizes
		{Name: "height", Init: dex.Int64(16)}, // few sizes
		{Name: "speed", Init: dex.Int64(5)},   // ~20 values
		{Name: "posX", Init: dex.Int64(0)},    // 0..100000 (high entropy)
		{Name: "posY", Init: dex.Int64(0)},    // 0..160000 (high entropy)
		{Name: "score", Init: dex.Int64(0)},
	}
}

// androFishMethods reproduces the fish-movement logic whose variable
// entropy Figure 3 plots: dir/width/height/speed take few distinct
// values; posX/posY walk large ranges.
func androFishMethods() []MethodSpec {
	moveBody := []Stmt{
		// dir = arg0 % 4 on swipe; speed in [1, 20].
		Assign(FieldRef("App.dir"), Bin(dex.OpRem, ArgRef(0), IntLit(4))),
		Assign(FieldRef("App.speed"),
			Bin(dex.OpAdd, Bin(dex.OpRem, ArgRef(1), IntLit(20)), IntLit(1))),
		// posX = (posX + speed*(dir+1)*17) % 100000
		Assign(FieldRef("App.posX"),
			Bin(dex.OpRem,
				Bin(dex.OpAdd, FieldRef("App.posX"),
					Bin(dex.OpMul, FieldRef("App.speed"),
						Bin(dex.OpMul, Bin(dex.OpAdd, FieldRef("App.dir"), IntLit(1)), IntLit(17)))),
				IntLit(100000))),
		// posY = (posY + speed*23) % 160000
		Assign(FieldRef("App.posY"),
			Bin(dex.OpRem,
				Bin(dex.OpAdd, FieldRef("App.posY"),
					Bin(dex.OpMul, FieldRef("App.speed"), IntLit(23))),
				IntLit(160000))),
		Do(APICall(dex.APIUIDraw, FieldRef("App.posX"))),
		RetVoid(),
	}
	spawnBody := []Stmt{
		// New fish: size from a small palette.
		Assign(FieldRef("App.width"),
			Bin(dex.OpAdd, Bin(dex.OpMul, Bin(dex.OpRem, ArgRef(0), IntLit(7)), IntLit(4)), IntLit(12))),
		Assign(FieldRef("App.height"),
			Bin(dex.OpAdd, Bin(dex.OpMul, Bin(dex.OpRem, ArgRef(1), IntLit(5)), IntLit(4)), IntLit(10))),
		RetVoid(),
	}
	tapBody := []Stmt{
		// Catch the fish when the tap grid cell matches its position.
		If(Cmp(CmpEq,
			Bin(dex.OpRem, ArgRef(0), IntLit(32)),
			Bin(dex.OpRem, FieldRef("App.posX"), IntLit(32))),
			[]Stmt{
				Assign(FieldRef("App.score"), Bin(dex.OpAdd, FieldRef("App.score"), IntLit(10))),
				Do(APICall(dex.APIPlaySound, IntLit(2))),
			}, nil),
		// Hidden bonus mode: an existing medium QC on score.
		If(Cmp(CmpEq, FieldRef("App.score"), IntLit(150)), []Stmt{
			Do(APICall(dex.APIVibrate, IntLit(120))),
			Assign(FieldRef("App.speed"), IntLit(20)),
		}, nil),
		RetVoid(),
	}
	return []MethodSpec{
		{Name: "onFishMove", NumArgs: 2, Flags: dex.FlagHandler, Body: moveBody},
		{Name: "onFishSpawn", NumArgs: 2, Flags: dex.FlagHandler, Body: spawnBody},
		{Name: "onFishTap", NumArgs: 2, Flags: dex.FlagHandler, Body: tapBody},
	}
}
