package appgen

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

func TestCompileSimpleMethod(t *testing.T) {
	f := dex.NewFile()
	body := []Stmt{
		Assign(LocalRef("x"), Bin(dex.OpAdd, ArgRef(0), IntLit(5))),
		If(Cmp(CmpEq, LocalRef("x"), IntLit(7)),
			[]Stmt{Assign(FieldRef("App.hit"), IntLit(1))}, nil),
		Ret(LocalRef("x")),
	}
	m, err := CompileMethod(f, "calc", 1, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	cl := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "hit", Init: dex.Int64(0)}}}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
	v := newVM(t, f)
	res, err := v.Invoke("App.calc", dex.Int64(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Int != 7 {
		t.Errorf("calc(2) = %v, want 7", res)
	}
	if v.Static("App.hit").Int != 1 {
		t.Error("then-branch not taken")
	}
	res, _ = v.Invoke("App.calc", dex.Int64(10))
	if res.Int != 15 {
		t.Errorf("calc(10) = %v", res)
	}
}

func newVM(t *testing.T, f *dex.File) *vm.VM {
	t.Helper()
	key, err := apk.NewKeyPair(3)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("t", f, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileControlFlow(t *testing.T) {
	f := dex.NewFile()
	body := []Stmt{
		Assign(LocalRef("acc"), IntLit(0)),
		For(4, []Stmt{
			Assign(LocalRef("acc"), Bin(dex.OpAdd, LocalRef("acc"), IntLit(3))),
		}),
		Switch(ArgRef(0),
			[]Case{
				{Val: 1, Body: []Stmt{Assign(LocalRef("acc"), Bin(dex.OpMul, LocalRef("acc"), IntLit(2)))}},
				{Val: 2, Body: []Stmt{Assign(LocalRef("acc"), IntLit(0))}},
			},
			[]Stmt{Assign(LocalRef("acc"), Bin(dex.OpNeg, LocalRef("acc"), IntLit(0)))}),
		Ret(LocalRef("acc")),
	}
	// OpNeg is unary; Bin with OpNeg would mis-compile. Use proper
	// subtraction instead.
	body[2].Default = []Stmt{Assign(LocalRef("acc"), Bin(dex.OpSub, IntLit(0), LocalRef("acc")))}

	m, err := CompileMethod(f, "flow", 1, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	v := newVM(t, f)
	for arg, want := range map[int64]int64{1: 24, 2: 0, 9: -12} {
		res, err := v.Invoke("App.flow", dex.Int64(arg))
		if err != nil {
			t.Fatal(err)
		}
		if res.Int != want {
			t.Errorf("flow(%d) = %v, want %d", arg, res.Int, want)
		}
	}
}

func TestCompileIfElse(t *testing.T) {
	f := dex.NewFile()
	body := []Stmt{
		If(Cmp(CmpLt, ArgRef(0), IntLit(10)),
			[]Stmt{Ret(IntLit(1))},
			[]Stmt{Ret(IntLit(2))}),
	}
	m, err := CompileMethod(f, "ifelse", 1, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	v := newVM(t, f)
	if r, _ := v.Invoke("App.ifelse", dex.Int64(3)); r.Int != 1 {
		t.Errorf("then: %v", r)
	}
	if r, _ := v.Invoke("App.ifelse", dex.Int64(30)); r.Int != 2 {
		t.Errorf("else: %v", r)
	}
}

func TestCompileStrCond(t *testing.T) {
	f := dex.NewFile()
	body := []Stmt{
		If(StrCmp(dex.APIStrEquals, FieldRef("App.mode"), StrLit("game")),
			[]Stmt{Ret(IntLit(1))}, nil),
		Ret(IntLit(0)),
	}
	m, err := CompileMethod(f, "inGame", 0, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	cl := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "mode", Init: dex.Str("game")}}}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	v := newVM(t, f)
	if r, _ := v.Invoke("App.inGame"); r.Int != 1 {
		t.Errorf("mode=game: %v", r)
	}
	v.SetStatic("App.mode", dex.Str("menu"))
	if r, _ := v.Invoke("App.inGame"); r.Int != 0 {
		t.Errorf("mode=menu: %v", r)
	}
	// The condition must surface as a strong QC.
	qcs := cfg.FindQCs(f, m)
	strong := 0
	for _, q := range qcs {
		if q.Kind == cfg.Strong {
			strong++
		}
	}
	if strong != 1 {
		t.Errorf("strong QCs = %d, want 1", strong)
	}
}

func TestCompileErrors(t *testing.T) {
	f := dex.NewFile()
	if _, err := CompileMethod(f, "bad", 0, 0, []Stmt{
		Assign(IntLit(3), IntLit(4)), // literal as assignment target
	}); err == nil {
		t.Error("bad assignment target should fail")
	}
	if _, err := CompileMethod(f, "bad2", 0, 0, []Stmt{
		Do(Expr{Kind: ExprKind(99)}),
	}); err == nil {
		t.Error("bad expression kind should fail")
	}
	if _, err := CompileMethod(f, "bad3", 0, 0, []Stmt{
		Assign(FieldRef("App.x"), APICall(dex.APILog, StrLit("s"))),
	}); err == nil {
		t.Error("void API as value should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg1 := Config{Name: "x", Seed: 99, TargetLOC: 1500}
	a, err := Generate(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if string(dex.Encode(a.File)) != string(dex.Encode(b.File)) {
		t.Error("same seed must generate identical apps")
	}
	c, err := Generate(Config{Name: "x", Seed: 100, TargetLOC: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if string(dex.Encode(a.File)) == string(dex.Encode(c.File)) {
		t.Error("different seeds should differ")
	}
}

func TestGeneratedAppRunsCleanly(t *testing.T) {
	app, err := Generate(Config{Name: "runner", Seed: 4, TargetLOC: 2500})
	if err != nil {
		t.Fatal(err)
	}
	v := newVM(t, app.File)
	// Drive every handler with a few hundred random events: a healthy
	// generated app never faults.
	rng := rand.New(rand.NewSource(1))
	for _, init := range v.InitMethods() {
		if _, err := v.Invoke(init); err != nil {
			t.Fatalf("init %s: %v", init, err)
		}
	}
	handlers := v.Handlers()
	if len(handlers) < 4 {
		t.Fatalf("handlers = %d", len(handlers))
	}
	for i := 0; i < 500; i++ {
		h := handlers[rng.Intn(len(handlers))]
		_, err := v.Invoke(h,
			dex.Int64(rng.Int63n(app.Config.ParamDomain)),
			dex.Int64(rng.Int63n(app.Config.ParamDomain)))
		if err != nil {
			t.Fatalf("event %d on %s: %v", i, h, err)
		}
	}
	if len(v.Profile()) == 0 {
		t.Error("profiler should have counts")
	}
}

func TestGeneratedAppHasQCs(t *testing.T) {
	app, err := Generate(Config{Name: "qcful", Seed: 8, TargetLOC: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var weak, medium, strong, inLoop int
	for _, m := range app.File.Methods() {
		for _, q := range cfg.FindQCs(app.File, m) {
			switch q.Kind {
			case cfg.Weak:
				weak++
			case cfg.Medium:
				medium++
			case cfg.Strong:
				strong++
			}
			if q.InLoop {
				inLoop++
			}
		}
	}
	if weak == 0 || medium == 0 || strong == 0 {
		t.Errorf("QC mix incomplete: weak=%d medium=%d strong=%d", weak, medium, strong)
	}
	total := weak + medium + strong
	if total < 20 {
		t.Errorf("too few QCs for a 3k LOC app: %d", total)
	}
	t.Logf("QCs: weak=%d medium=%d strong=%d (inLoop=%d)", weak, medium, strong, inLoop)
}

func TestGeneratedAppStats(t *testing.T) {
	app, err := Generate(Config{Name: "stats", Seed: 15, TargetLOC: 5000, EnvVars: 9})
	if err != nil {
		t.Fatal(err)
	}
	if app.LOC < 3000 || app.LOC > 8000 {
		t.Errorf("LOC = %d, want ≈5000", app.LOC)
	}
	if len(app.EnvVarNames) != 9 {
		t.Errorf("env vars = %d", len(app.EnvVarNames))
	}
	if len(app.Handlers) < 4 {
		t.Errorf("handlers = %d", len(app.Handlers))
	}
	if len(app.IntFieldRefs) == 0 || len(app.StrFieldRefs) == 0 {
		t.Error("field refs missing")
	}
}

func TestNamedApps(t *testing.T) {
	for _, name := range NamedApps {
		app, err := NamedApp(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.Name != name {
			t.Errorf("name = %q", app.Name)
		}
		if err := dex.ValidateLinked(app.File); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := NamedApp("NoSuchApp"); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestAndroFishVariableEntropy(t *testing.T) {
	app, err := NamedApp("AndroFish")
	if err != nil {
		t.Fatal(err)
	}
	v := newVM(t, app.File)
	// Drive the fish handlers; record distinct values per Figure 3 var.
	uniq := map[string]map[int64]bool{}
	for _, ref := range AndroFishVars {
		uniq[ref] = map[int64]bool{}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		var h string
		switch i % 3 {
		case 0:
			h = "App.onFishMove"
		case 1:
			h = "App.onFishSpawn"
		default:
			h = "App.onFishTap"
		}
		if _, err := v.Invoke(h, dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))); err != nil {
			t.Fatal(err)
		}
		for _, ref := range AndroFishVars {
			uniq[ref][v.Static(ref).Int] = true
		}
	}
	// Figure 3's shape: dir has few values; posX/posY many.
	if n := len(uniq["App.dir"]); n > 4 {
		t.Errorf("dir values = %d, want <= 4", n)
	}
	if n := len(uniq["App.width"]); n > 8 {
		t.Errorf("width values = %d, want <= 8", n)
	}
	if n := len(uniq["App.posX"]); n < 100 {
		t.Errorf("posX values = %d, want many", n)
	}
	if n := len(uniq["App.posY"]); n < 50 {
		t.Errorf("posY values = %d, want many", n)
	}
	if len(uniq["App.posX"]) <= len(uniq["App.dir"]) {
		t.Error("entropy ordering broken")
	}
}

func TestCorpusSpecs(t *testing.T) {
	if CorpusSize() != 963 {
		t.Errorf("corpus size = %d, want 963 (paper §8)", CorpusSize())
	}
	if len(Categories) != 8 {
		t.Errorf("categories = %d, want 8", len(Categories))
	}
}

func TestSampleCategoryGeneratesValidApps(t *testing.T) {
	spec := Categories[0]
	count := 0
	err := SampleCategory(spec, 3, func(app *App) error {
		count++
		if app.Category != spec.Name {
			t.Errorf("category = %q", app.Category)
		}
		return dex.ValidateLinked(app.File)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("sampled %d apps, want 3", count)
	}
}

func TestCountStmts(t *testing.T) {
	body := []Stmt{
		Assign(LocalRef("x"), IntLit(1)),
		If(Truthy(LocalRef("x")),
			[]Stmt{Do(APICall(dex.APILog, StrLit("y")))},
			[]Stmt{RetVoid()}),
		Switch(LocalRef("x"), []Case{{Val: 1, Body: []Stmt{RetVoid()}}}, []Stmt{RetVoid()}),
	}
	// 7 statements + 4 closing-brace lines for the non-empty blocks.
	if got := CountStmts(body); got != 11 {
		t.Errorf("CountStmts = %d, want 11", got)
	}
}
