package report

import (
	"reflect"
	"testing"

	"bombdroid/internal/obs"
)

// scriptedSink fails or succeeds on command, letting tests drive the
// breaker through an exact state schedule.
type scriptedSink struct {
	ok        bool
	delivered int
}

func (s *scriptedSink) Deliver(Event, int64) error {
	if !s.ok {
		return ErrSinkDown
	}
	s.delivered++
	return nil
}

// TestBreakerTransitionSequence drives the breaker through a full
// trip → failed probe → successful probe cycle and asserts the exact
// transition log: the state machine, not just the final state.
func TestBreakerTransitionSequence(t *testing.T) {
	sink := &scriptedSink{}
	p := NewPipeline(sink,
		WithBaseBackoffMs(100), WithMaxBackoffMs(100),
		WithBreakerThreshold(2), WithBreakerCooldownMs(1000), WithSeed(1))
	p.Submit(Event{App: "a", Bomb: "b1", User: "u"}, 0)
	p.Submit(Event{App: "a", Bomb: "b2", User: "u"}, 0)

	// t=0: two consecutive failures trip the breaker.
	p.Tick(0)
	// t=1000: cooldown over; the half-open probe fails and re-opens.
	p.Tick(1000)
	// t=2000: the sink recovers; the probe succeeds and closes, then
	// the remaining entry drains.
	sink.ok = true
	p.Tick(2000)

	want := []BreakerTransition{
		{From: "closed", To: "open", AtMs: 0},
		{From: "open", To: "half-open", AtMs: 1000},
		{From: "half-open", To: "open", AtMs: 1000},
		{From: "open", To: "half-open", AtMs: 2000},
		{From: "half-open", To: "closed", AtMs: 2000},
	}
	if got := p.BreakerTransitions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("transition log = %+v\nwant %+v", got, want)
	}
	if sink.delivered != 2 {
		t.Fatalf("delivered = %d, want 2", sink.delivered)
	}
	if p.BreakerState() != "closed" {
		t.Fatalf("final state = %s, want closed", p.BreakerState())
	}
	st := p.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1 (only closed→open counts)", st.BreakerTrips)
	}
	// The labeled transition counters mirror the log.
	reg := p.Obs()
	if got := reg.Counter(obs.L("report_breaker_transitions_total", "from", "half-open", "to", "open")).Value(); got != 1 {
		t.Fatalf("half-open→open counter = %d, want 1", got)
	}
	if got := reg.Gauge("report_breaker_state").Value(); got != breakerClosed {
		t.Fatalf("breaker state gauge = %d, want closed", got)
	}
}

// TestStatsIsThinWrapperOverObs pins the satellite contract: the
// Stats struct reads the same counters the registry exposes.
func TestStatsIsThinWrapperOverObs(t *testing.T) {
	sink := NewMemorySink()
	p := NewPipeline(sink, WithSeed(2))
	for i := 0; i < 5; i++ {
		p.Submit(Event{App: "a", Bomb: "b", User: string(rune('u' + i))}, 0)
	}
	p.Submit(Event{App: "a", Bomb: "b", User: "u"}, 0) // duplicate
	p.Tick(0)

	st := p.Stats()
	reg := p.Obs()
	pairs := map[string]int64{
		"report_submitted_total":  st.Submitted,
		"report_accepted_total":   st.Accepted,
		"report_duplicates_total": st.Duplicates,
		"report_delivered_total":  st.Delivered,
		"report_attempts_total":   st.Attempts,
	}
	for name, want := range pairs {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	if st.Submitted != 6 || st.Accepted != 5 || st.Duplicates != 1 || st.Delivered != 5 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestDeadLetterDepthGauge tracks the ledger through max-attempts
// exhaustion and queue overflow.
func TestDeadLetterDepthGauge(t *testing.T) {
	sink := &scriptedSink{} // always failing
	p := NewPipeline(sink,
		WithQueueCap(2), WithMaxAttempts(1), WithBreakerThreshold(100), WithSeed(3))
	p.Submit(Event{App: "a", Bomb: "b1", User: "u"}, 0)
	p.Submit(Event{App: "a", Bomb: "b2", User: "u"}, 0)
	p.Submit(Event{App: "a", Bomb: "b3", User: "u"}, 0) // overflow → dead letter
	p.Tick(0)                                           // both queued entries exhaust their single attempt

	depth := p.Obs().Gauge("report_dead_letter_depth").Value()
	if want := int64(len(p.DeadLetters())); depth != want {
		t.Fatalf("dead-letter depth gauge = %d, ledger has %d", depth, want)
	}
	if depth != 3 {
		t.Fatalf("dead-letter depth = %d, want 3", depth)
	}
	if got := p.Obs().Gauge("report_queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth gauge = %d, want 0 after exhaustion", got)
	}
}
