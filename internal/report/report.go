// Package report models the market-notification path of decentralized
// repackaging detection at population scale. The paper's response
// scheme includes "notifying the app vendor or the market server";
// that channel is lossy, slow, and occasionally down, and the devices
// on the sending side resubmit freely. This package makes the path
// dependable anyway: a bounded ingestion queue, per-event retry with
// exponential backoff and jitter, a circuit breaker that trips on
// sustained sink failure, idempotent deduplication keyed on
// bomb-site × user, and a dead-letter ledger for events the pipeline
// ultimately could not place — so each unique detection reaches the
// vendor exactly once despite drops, duplicates, and outages.
//
// The pipeline runs on virtual time (the same clock the vm and sim
// packages use), which keeps every retry schedule and breaker window
// deterministic and replayable. All methods are safe for concurrent
// use.
package report

import (
	"errors"
	"math/rand"
	"sync"

	"bombdroid/internal/obs"
)

// Event is one detection report emitted by a device when a bomb's
// repackaging check fired. The JSON form is the wire format of the
// market ingestion protocol (one object per line, see internal/market).
type Event struct {
	App    string `json:"app"`     // package name
	Bomb   string `json:"bomb"`    // bomb site: the payload class that detected
	User   string `json:"user"`    // reporting device/user identity
	TimeMs int64  `json:"time_ms"` // virtual time of the detection on-device
	Info   string `json:"info"`    // response payload (public key seen, digest, …)
}

// Key identifies a unique detection: the same bomb site reported by
// the same user is one piece of evidence no matter how often the
// device resubmits it.
func (e Event) Key() string { return e.App + "\x1f" + e.Bomb + "\x1f" + e.User }

// Sink is the vendor/market ingestion endpoint. Deliver is handed the
// pipeline's virtual time so implementations (and fault injectors)
// can model outage windows.
type Sink interface {
	Deliver(ev Event, nowMs int64) error
}

// TracedSink is the optional extension a sink implements to carry a
// report trace across its hop (HTTPSink propagates the trace ID in a
// request header and stamps wall-clock network/server times back onto
// the ctx). The pipeline uses it automatically when the sink supports
// it and the event has a live trace; plain sinks keep working
// unchanged.
type TracedSink interface {
	Sink
	DeliverTraced(ev Event, tc *obs.TraceCtx, nowMs int64) error
}

// MemorySink records delivered events — the in-process stand-in for
// the market server, and the oracle exactly-once tests check against.
type MemorySink struct {
	mu    sync.Mutex
	log   []Event
	byKey map[string]int
}

// NewMemorySink returns an empty sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{byKey: make(map[string]int)}
}

// Deliver records the event and always succeeds. The zero value is
// usable: the key index is initialised on first delivery.
func (s *MemorySink) Deliver(ev Event, _ int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey == nil {
		s.byKey = make(map[string]int)
	}
	s.log = append(s.log, ev)
	s.byKey[ev.Key()]++
	return nil
}

// Delivered returns a copy of the delivery log in order.
func (s *MemorySink) Delivered() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.log...)
}

// Count returns how many times the event with the given key was
// delivered.
func (s *MemorySink) Count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// UniqueKeys returns the number of distinct keys delivered.
func (s *MemorySink) UniqueKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// MaxPerKey returns the largest per-key delivery count (1 on an
// exactly-once run, 0 when nothing was delivered).
func (s *MemorySink) MaxPerKey() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for _, n := range s.byKey {
		if n > max {
			max = n
		}
	}
	return max
}

// ErrSinkDown is a generic delivery failure for sinks that do not
// wrap a more specific cause.
var ErrSinkDown = errors.New("report: sink unavailable")

// DeadLetter is one event the pipeline gave up on, with why and when.
type DeadLetter struct {
	Event  Event
	Reason string
	AtMs   int64
}

// Config tunes the pipeline. Zero values select the defaults noted on
// each field.
type Config struct {
	QueueCap          int     // bounded buffer size (default 1024)
	MaxAttempts       int     // delivery attempts per event (default 8)
	BaseBackoffMs     int64   // first retry delay (default 200)
	MaxBackoffMs      int64   // backoff ceiling (default 60_000)
	JitterFrac        float64 // ± fraction of backoff randomized (default 0.25)
	BreakerThreshold  int     // consecutive failures that trip the breaker (default 5)
	BreakerCooldownMs int64   // open duration before a half-open probe (default 5_000)
	Seed              int64   // jitter RNG seed (deterministic schedules)

	// Tracer, when non-nil, mints a report-lifecycle trace for every
	// accepted event: per-attempt annotations through retry/breaker,
	// propagation over TracedSink hops, closed on delivery or abort.
	// Nil (the default) disables tracing at zero cost.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoffMs == 0 {
		c.BaseBackoffMs = 200
	}
	if c.MaxBackoffMs == 0 {
		c.MaxBackoffMs = 60_000
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.25
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldownMs == 0 {
		c.BreakerCooldownMs = 5_000
	}
	return c
}

// Stats is a snapshot of pipeline counters. Since the obs rework the
// struct is a thin read of the pipeline's private metrics registry —
// the counters themselves live in obs and are what campaigns merge.
type Stats struct {
	Submitted    int64 // Submit calls
	Accepted     int64 // events that entered the queue
	Duplicates   int64 // absorbed by idempotent dedup
	Delivered    int64 // events the sink accepted
	Attempts     int64 // delivery attempts (including failures)
	Retries      int64 // attempts rescheduled after a failure
	DeadLettered int64 // events moved to the ledger
	Overflow     int64 // events refused at the queue bound
	BreakerTrips int64 // closed→open transitions
}

// Circuit-breaker states. The gauge report_breaker_state carries the
// numeric value; the transition log and labels carry the names.
const (
	breakerClosed int64 = iota
	breakerOpen
	breakerHalfOpen
)

var breakerNames = map[int64]string{
	breakerClosed:   "closed",
	breakerOpen:     "open",
	breakerHalfOpen: "half-open",
}

// BreakerTransition is one state change of the circuit breaker, in
// virtual time. The pipeline keeps a bounded in-order log of these so
// tests (and operators) can assert the exact closed→open→half-open
// sequence a fault schedule produced.
type BreakerTransition struct {
	From string `json:"from"`
	To   string `json:"to"`
	AtMs int64  `json:"at_ms"`
}

// breakerLogCap bounds the transition log; a chaos campaign with a
// flapping sink should not grow memory without bound.
const breakerLogCap = 4096

// entry is one queued event with its retry state.
type entry struct {
	ev       Event
	attempts int
	dueMs    int64
	seq      int64 // FIFO tiebreak among equal due times
	tc       *obs.TraceCtx
}

// Pipeline is the resilient ingestion queue in front of a Sink.
//
// Every pipeline owns a private obs registry so its counters stay
// per-instance (Stats() would otherwise read sums across pipelines);
// callers that want campaign- or process-wide totals merge with
// p.Obs().MergeInto(shared) — counter/histogram merges are
// commutative, so totals are independent of pipeline finish order.
type Pipeline struct {
	mu   sync.Mutex
	cfg  Config
	sink Sink
	rng  *rand.Rand

	seen  map[string]bool
	queue []*entry
	dead  []DeadLetter
	seq   int64

	// circuit breaker state
	consecFails int
	brState     int64
	reopenMs    int64 // when open: earliest half-open probe time
	transitions []BreakerTransition

	// metrics, pre-resolved once in New so the per-event path does no
	// registry lookups
	reg        *obs.Registry
	cSubmitted *obs.Counter
	cAccepted  *obs.Counter
	cDupes     *obs.Counter
	cDelivered *obs.Counter
	cAttempts  *obs.Counter
	cRetries   *obs.Counter
	cDead      *obs.Counter
	cOverflow  *obs.Counter
	cTrips     *obs.Counter
	cBackoffMs *obs.Counter
	gQueue     *obs.Gauge
	gDeadDepth *obs.Gauge
	gBreaker   *obs.Gauge
}

// New builds a pipeline in front of sink from a full Config. Zero
// fields resolve to DefaultConfig values. Most callers should prefer
// NewPipeline, which states deviations from the defaults explicitly.
func New(sink Sink, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	return &Pipeline{
		cfg:  cfg,
		sink: sink,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		seen: make(map[string]bool),

		reg:        reg,
		cSubmitted: reg.Counter("report_submitted_total"),
		cAccepted:  reg.Counter("report_accepted_total"),
		cDupes:     reg.Counter("report_duplicates_total"),
		cDelivered: reg.Counter("report_delivered_total"),
		cAttempts:  reg.Counter("report_attempts_total"),
		cRetries:   reg.Counter("report_retries_total"),
		cDead:      reg.Counter("report_dead_letter_total"),
		cOverflow:  reg.Counter("report_overflow_total"),
		cTrips:     reg.Counter("report_breaker_trips_total"),
		cBackoffMs: reg.Counter("report_backoff_ms_total"),
		gQueue:     reg.Gauge("report_queue_depth"),
		gDeadDepth: reg.Gauge("report_dead_letter_depth"),
		gBreaker:   reg.Gauge("report_breaker_state"),
	}
}

// Obs returns the pipeline's private metrics registry. Merge it into
// a shared registry for cross-pipeline totals; reading it directly is
// always per-instance.
func (p *Pipeline) Obs() *obs.Registry { return p.reg }

// Tracer returns the tracer this pipeline mints report traces from
// (nil when tracing is off) — loadgen reads percentiles and exemplars
// through it after a campaign.
func (p *Pipeline) Tracer() *obs.Tracer { return p.cfg.Tracer }

// setBreakerLocked moves the breaker state machine, recording the
// transition in the log, the state gauge, and a labeled counter that
// survives registry merges.
func (p *Pipeline) setBreakerLocked(to int64, nowMs int64) {
	if p.brState == to {
		return
	}
	from := p.brState
	p.brState = to
	p.gBreaker.Set(to)
	if len(p.transitions) < breakerLogCap {
		p.transitions = append(p.transitions, BreakerTransition{
			From: breakerNames[from], To: breakerNames[to], AtMs: nowMs,
		})
	}
	p.reg.Counter(obs.L("report_breaker_transitions_total",
		"from", breakerNames[from], "to", breakerNames[to])).Inc()
}

// Submit offers one detection event to the pipeline at virtual time
// nowMs. Duplicates of an already-seen key are absorbed; an event
// arriving at a full queue is dead-lettered (the bound is load
// shedding, not silent loss). Returns true when the event entered the
// queue.
func (p *Pipeline) Submit(ev Event, nowMs int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cSubmitted.Inc()
	if p.seen[ev.Key()] {
		p.cDupes.Inc()
		return false
	}
	if len(p.queue) >= p.cfg.QueueCap {
		p.cOverflow.Inc()
		p.deadLetterLocked(ev, p.cfg.Tracer.Mint(ev.Key(), ev.TimeMs, nowMs),
			"queue overflow", nowMs)
		return false
	}
	p.seen[ev.Key()] = true
	p.cAccepted.Inc()
	p.seq++
	// The trace opens here: detonation stamp from the event's own
	// virtual time, pipeline-entry stamp from the submit clock. A nil
	// Tracer mints a nil ctx and every downstream touch is a no-op.
	tc := p.cfg.Tracer.Mint(ev.Key(), ev.TimeMs, nowMs)
	p.queue = append(p.queue, &entry{ev: ev, dueMs: nowMs, seq: p.seq, tc: tc})
	p.gQueue.Set(int64(len(p.queue)))
	return true
}

// Tick attempts delivery of every queued entry due at nowMs,
// respecting the circuit breaker. It returns how many events were
// delivered during this tick.
func (p *Pipeline) Tick(nowMs int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	delivered := 0
	for {
		e := p.popDueLocked(nowMs)
		if e == nil {
			break
		}
		if p.brState == breakerOpen {
			if nowMs < p.reopenMs {
				// Fast-fail window: hold the entry without burning an
				// attempt; it becomes due again at the probe time.
				e.tc.Stamp("breaker-hold", nowMs)
				e.dueMs = p.reopenMs
				p.pushLocked(e)
				continue
			}
			// This entry is the half-open probe.
			p.setBreakerLocked(breakerHalfOpen, nowMs)
		}
		p.cAttempts.Inc()
		err := p.deliverLocked(e, nowMs)
		if err == nil {
			delivered++
			p.cDelivered.Inc()
			p.consecFails = 0
			p.setBreakerLocked(breakerClosed, nowMs)
			e.tc.Attempt(nowMs, "ok", 0)
			p.cfg.Tracer.Close(e.tc, nowMs)
			continue
		}
		p.consecFails++
		e.attempts++
		if p.brState == breakerHalfOpen || p.consecFails >= p.cfg.BreakerThreshold {
			// Trip (or re-trip after a failed half-open probe). Only
			// closed→open counts as a trip, matching the pre-obs stats.
			if p.brState == breakerClosed {
				p.cTrips.Inc()
			}
			p.setBreakerLocked(breakerOpen, nowMs)
			p.reopenMs = nowMs + p.cfg.BreakerCooldownMs
		}
		if e.attempts >= p.cfg.MaxAttempts {
			e.tc.Attempt(nowMs, attemptOutcome(err), 0)
			p.deadLetterLocked(e.ev, e.tc, "max attempts", nowMs)
			continue
		}
		p.cRetries.Inc()
		d := p.backoffLocked(e.attempts)
		p.cBackoffMs.Add(d)
		e.tc.Attempt(nowMs, attemptOutcome(err), d)
		e.dueMs = nowMs + d
		p.pushLocked(e)
		if p.brState == breakerOpen {
			// Nothing else will get through until the probe window.
			break
		}
	}
	p.gQueue.Set(int64(len(p.queue)))
	return delivered
}

// deliverLocked calls the sink without holding delivery-order state;
// the pipeline lock stays held (sinks are expected to be fast or to
// model latency in virtual time, not wall time). A TracedSink with a
// live trace gets the ctx so the hop can propagate and stamp it.
func (p *Pipeline) deliverLocked(e *entry, nowMs int64) error {
	if ts, ok := p.sink.(TracedSink); ok && e.tc != nil {
		return ts.DeliverTraced(e.ev, e.tc, nowMs)
	}
	return p.sink.Deliver(e.ev, nowMs)
}

// attemptOutcome labels a delivery failure for trace annotations,
// separating "slow down" from "down".
func attemptOutcome(err error) string {
	if IsBackpressure(err) {
		return "backpressure"
	}
	return "err"
}

// popDueLocked removes and returns the earliest due entry at nowMs.
func (p *Pipeline) popDueLocked(nowMs int64) *entry {
	best := -1
	for i, e := range p.queue {
		if e.dueMs > nowMs {
			continue
		}
		if best == -1 || e.dueMs < p.queue[best].dueMs ||
			(e.dueMs == p.queue[best].dueMs && e.seq < p.queue[best].seq) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	e := p.queue[best]
	p.queue[best] = p.queue[len(p.queue)-1]
	p.queue = p.queue[:len(p.queue)-1]
	return e
}

func (p *Pipeline) pushLocked(e *entry) { p.queue = append(p.queue, e) }

func (p *Pipeline) deadLetterLocked(ev Event, tc *obs.TraceCtx, reason string, nowMs int64) {
	p.cDead.Inc()
	p.cfg.Tracer.Abort(tc, nowMs, reason)
	p.dead = append(p.dead, DeadLetter{Event: ev, Reason: reason, AtMs: nowMs})
	p.gDeadDepth.Set(int64(len(p.dead)))
}

// backoffLocked computes the delay before attempt n+1: exponential in
// the attempt count, capped, with ±JitterFrac randomization so a
// population of retrying devices does not thundering-herd the sink.
func (p *Pipeline) backoffLocked(attempts int) int64 {
	b := p.cfg.BaseBackoffMs
	for i := 1; i < attempts && b < p.cfg.MaxBackoffMs; i++ {
		b *= 2
	}
	if b > p.cfg.MaxBackoffMs {
		b = p.cfg.MaxBackoffMs
	}
	j := 1 + p.cfg.JitterFrac*(2*p.rng.Float64()-1)
	d := int64(float64(b) * j)
	if d < 1 {
		d = 1
	}
	return d
}

// NextDueMs returns the earliest time any queued entry becomes due,
// or -1 when the queue is empty.
func (p *Pipeline) NextDueMs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	due := int64(-1)
	for _, e := range p.queue {
		if due == -1 || e.dueMs < due {
			due = e.dueMs
		}
	}
	return due
}

// Pending returns the number of queued (undelivered, not yet
// dead-lettered) events.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Flush advances virtual time from nowMs, ticking at each due point,
// until the queue drains or deadlineMs passes. It returns the virtual
// time reached. Entries still pending at the deadline are
// dead-lettered so the ledger accounts for every accepted event.
func (p *Pipeline) Flush(nowMs, deadlineMs int64) int64 {
	sp := p.reg.StartSpan("report", nowMs)
	defer func() { sp.End(nowMs) }()
	for {
		p.Tick(nowMs)
		due := p.NextDueMs()
		if due == -1 {
			return nowMs
		}
		if due <= nowMs {
			due = nowMs + 1
		}
		if due > deadlineMs {
			break
		}
		nowMs = due
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.queue {
		p.deadLetterLocked(e.ev, e.tc, "flush deadline", deadlineMs)
	}
	p.queue = nil
	p.gQueue.Set(0)
	nowMs = deadlineMs
	return deadlineMs
}

// Stats returns a snapshot of the counters — a thin read of the
// pipeline's obs registry, kept for existing callers.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Submitted:    p.cSubmitted.Value(),
		Accepted:     p.cAccepted.Value(),
		Duplicates:   p.cDupes.Value(),
		Delivered:    p.cDelivered.Value(),
		Attempts:     p.cAttempts.Value(),
		Retries:      p.cRetries.Value(),
		DeadLettered: p.cDead.Value(),
		Overflow:     p.cOverflow.Value(),
		BreakerTrips: p.cTrips.Value(),
	}
}

// DeadLetters returns a copy of the ledger.
func (p *Pipeline) DeadLetters() []DeadLetter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]DeadLetter(nil), p.dead...)
}

// BreakerOpen reports whether the circuit breaker is currently open
// (fast-fail window; a pending half-open probe still counts as open
// to callers, as before the explicit state machine).
func (p *Pipeline) BreakerOpen() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.brState != breakerClosed
}

// BreakerState returns the breaker state name: "closed", "open" or
// "half-open".
func (p *Pipeline) BreakerState() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return breakerNames[p.brState]
}

// BreakerTransitions returns a copy of the breaker's state-transition
// log in virtual-time order (bounded at breakerLogCap entries).
func (p *Pipeline) BreakerTransitions() []BreakerTransition {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]BreakerTransition(nil), p.transitions...)
}
