// Package report models the market-notification path of decentralized
// repackaging detection at population scale. The paper's response
// scheme includes "notifying the app vendor or the market server";
// that channel is lossy, slow, and occasionally down, and the devices
// on the sending side resubmit freely. This package makes the path
// dependable anyway: a bounded ingestion queue, per-event retry with
// exponential backoff and jitter, a circuit breaker that trips on
// sustained sink failure, idempotent deduplication keyed on
// bomb-site × user, and a dead-letter ledger for events the pipeline
// ultimately could not place — so each unique detection reaches the
// vendor exactly once despite drops, duplicates, and outages.
//
// The pipeline runs on virtual time (the same clock the vm and sim
// packages use), which keeps every retry schedule and breaker window
// deterministic and replayable. All methods are safe for concurrent
// use.
package report

import (
	"errors"
	"math/rand"
	"sync"
)

// Event is one detection report emitted by a device when a bomb's
// repackaging check fired.
type Event struct {
	App    string // package name
	Bomb   string // bomb site: the payload class that detected
	User   string // reporting device/user identity
	TimeMs int64  // virtual time of the detection on-device
	Info   string // response payload (public key seen, digest, …)
}

// Key identifies a unique detection: the same bomb site reported by
// the same user is one piece of evidence no matter how often the
// device resubmits it.
func (e Event) Key() string { return e.App + "\x1f" + e.Bomb + "\x1f" + e.User }

// Sink is the vendor/market ingestion endpoint. Deliver is handed the
// pipeline's virtual time so implementations (and fault injectors)
// can model outage windows.
type Sink interface {
	Deliver(ev Event, nowMs int64) error
}

// MemorySink records delivered events — the in-process stand-in for
// the market server, and the oracle exactly-once tests check against.
type MemorySink struct {
	mu    sync.Mutex
	log   []Event
	byKey map[string]int
}

// NewMemorySink returns an empty sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{byKey: make(map[string]int)}
}

// Deliver records the event and always succeeds. The zero value is
// usable: the key index is initialised on first delivery.
func (s *MemorySink) Deliver(ev Event, _ int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey == nil {
		s.byKey = make(map[string]int)
	}
	s.log = append(s.log, ev)
	s.byKey[ev.Key()]++
	return nil
}

// Delivered returns a copy of the delivery log in order.
func (s *MemorySink) Delivered() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.log...)
}

// Count returns how many times the event with the given key was
// delivered.
func (s *MemorySink) Count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// UniqueKeys returns the number of distinct keys delivered.
func (s *MemorySink) UniqueKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// MaxPerKey returns the largest per-key delivery count (1 on an
// exactly-once run, 0 when nothing was delivered).
func (s *MemorySink) MaxPerKey() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for _, n := range s.byKey {
		if n > max {
			max = n
		}
	}
	return max
}

// ErrSinkDown is a generic delivery failure for sinks that do not
// wrap a more specific cause.
var ErrSinkDown = errors.New("report: sink unavailable")

// DeadLetter is one event the pipeline gave up on, with why and when.
type DeadLetter struct {
	Event  Event
	Reason string
	AtMs   int64
}

// Config tunes the pipeline. Zero values select the defaults noted on
// each field.
type Config struct {
	QueueCap          int     // bounded buffer size (default 1024)
	MaxAttempts       int     // delivery attempts per event (default 8)
	BaseBackoffMs     int64   // first retry delay (default 200)
	MaxBackoffMs      int64   // backoff ceiling (default 60_000)
	JitterFrac        float64 // ± fraction of backoff randomized (default 0.25)
	BreakerThreshold  int     // consecutive failures that trip the breaker (default 5)
	BreakerCooldownMs int64   // open duration before a half-open probe (default 5_000)
	Seed              int64   // jitter RNG seed (deterministic schedules)
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoffMs == 0 {
		c.BaseBackoffMs = 200
	}
	if c.MaxBackoffMs == 0 {
		c.MaxBackoffMs = 60_000
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.25
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldownMs == 0 {
		c.BreakerCooldownMs = 5_000
	}
	return c
}

// Stats is a snapshot of pipeline counters.
type Stats struct {
	Submitted    int64 // Submit calls
	Accepted     int64 // events that entered the queue
	Duplicates   int64 // absorbed by idempotent dedup
	Delivered    int64 // events the sink accepted
	Attempts     int64 // delivery attempts (including failures)
	Retries      int64 // attempts rescheduled after a failure
	DeadLettered int64 // events moved to the ledger
	Overflow     int64 // events refused at the queue bound
	BreakerTrips int64 // closed→open transitions
}

// entry is one queued event with its retry state.
type entry struct {
	ev       Event
	attempts int
	dueMs    int64
	seq      int64 // FIFO tiebreak among equal due times
}

// Pipeline is the resilient ingestion queue in front of a Sink.
type Pipeline struct {
	mu   sync.Mutex
	cfg  Config
	sink Sink
	rng  *rand.Rand

	seen  map[string]bool
	queue []*entry
	dead  []DeadLetter
	stats Stats
	seq   int64

	// circuit breaker state
	consecFails int
	open        bool
	reopenMs    int64 // when open: earliest half-open probe time
}

// New builds a pipeline in front of sink.
func New(sink Sink, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		cfg:  cfg,
		sink: sink,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		seen: make(map[string]bool),
	}
}

// Submit offers one detection event to the pipeline at virtual time
// nowMs. Duplicates of an already-seen key are absorbed; an event
// arriving at a full queue is dead-lettered (the bound is load
// shedding, not silent loss). Returns true when the event entered the
// queue.
func (p *Pipeline) Submit(ev Event, nowMs int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Submitted++
	if p.seen[ev.Key()] {
		p.stats.Duplicates++
		return false
	}
	if len(p.queue) >= p.cfg.QueueCap {
		p.stats.Overflow++
		p.deadLetterLocked(ev, "queue overflow", nowMs)
		return false
	}
	p.seen[ev.Key()] = true
	p.stats.Accepted++
	p.seq++
	p.queue = append(p.queue, &entry{ev: ev, dueMs: nowMs, seq: p.seq})
	return true
}

// Tick attempts delivery of every queued entry due at nowMs,
// respecting the circuit breaker. It returns how many events were
// delivered during this tick.
func (p *Pipeline) Tick(nowMs int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	delivered := 0
	for {
		e := p.popDueLocked(nowMs)
		if e == nil {
			break
		}
		if p.open {
			if nowMs < p.reopenMs {
				// Fast-fail window: hold the entry without burning an
				// attempt; it becomes due again at the probe time.
				e.dueMs = p.reopenMs
				p.pushLocked(e)
				continue
			}
			// Half-open: this entry is the probe; fall through.
		}
		p.stats.Attempts++
		err := p.deliverLocked(e.ev, nowMs)
		if err == nil {
			delivered++
			p.stats.Delivered++
			p.consecFails = 0
			p.open = false
			continue
		}
		p.consecFails++
		e.attempts++
		if p.open || p.consecFails >= p.cfg.BreakerThreshold {
			// Trip (or re-trip after a failed half-open probe).
			if !p.open {
				p.stats.BreakerTrips++
			}
			p.open = true
			p.reopenMs = nowMs + p.cfg.BreakerCooldownMs
		}
		if e.attempts >= p.cfg.MaxAttempts {
			p.stats.DeadLettered++
			p.dead = append(p.dead, DeadLetter{Event: e.ev, Reason: "max attempts", AtMs: nowMs})
			continue
		}
		p.stats.Retries++
		e.dueMs = nowMs + p.backoffLocked(e.attempts)
		p.pushLocked(e)
		if p.open {
			// Nothing else will get through until the probe window.
			break
		}
	}
	return delivered
}

// deliverLocked calls the sink without holding delivery-order state;
// the pipeline lock stays held (sinks are expected to be fast or to
// model latency in virtual time, not wall time).
func (p *Pipeline) deliverLocked(ev Event, nowMs int64) error {
	return p.sink.Deliver(ev, nowMs)
}

// popDueLocked removes and returns the earliest due entry at nowMs.
func (p *Pipeline) popDueLocked(nowMs int64) *entry {
	best := -1
	for i, e := range p.queue {
		if e.dueMs > nowMs {
			continue
		}
		if best == -1 || e.dueMs < p.queue[best].dueMs ||
			(e.dueMs == p.queue[best].dueMs && e.seq < p.queue[best].seq) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	e := p.queue[best]
	p.queue[best] = p.queue[len(p.queue)-1]
	p.queue = p.queue[:len(p.queue)-1]
	return e
}

func (p *Pipeline) pushLocked(e *entry) { p.queue = append(p.queue, e) }

func (p *Pipeline) deadLetterLocked(ev Event, reason string, nowMs int64) {
	p.stats.DeadLettered++
	p.dead = append(p.dead, DeadLetter{Event: ev, Reason: reason, AtMs: nowMs})
}

// backoffLocked computes the delay before attempt n+1: exponential in
// the attempt count, capped, with ±JitterFrac randomization so a
// population of retrying devices does not thundering-herd the sink.
func (p *Pipeline) backoffLocked(attempts int) int64 {
	b := p.cfg.BaseBackoffMs
	for i := 1; i < attempts && b < p.cfg.MaxBackoffMs; i++ {
		b *= 2
	}
	if b > p.cfg.MaxBackoffMs {
		b = p.cfg.MaxBackoffMs
	}
	j := 1 + p.cfg.JitterFrac*(2*p.rng.Float64()-1)
	d := int64(float64(b) * j)
	if d < 1 {
		d = 1
	}
	return d
}

// NextDueMs returns the earliest time any queued entry becomes due,
// or -1 when the queue is empty.
func (p *Pipeline) NextDueMs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	due := int64(-1)
	for _, e := range p.queue {
		if due == -1 || e.dueMs < due {
			due = e.dueMs
		}
	}
	return due
}

// Pending returns the number of queued (undelivered, not yet
// dead-lettered) events.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Flush advances virtual time from nowMs, ticking at each due point,
// until the queue drains or deadlineMs passes. It returns the virtual
// time reached. Entries still pending at the deadline are
// dead-lettered so the ledger accounts for every accepted event.
func (p *Pipeline) Flush(nowMs, deadlineMs int64) int64 {
	for {
		p.Tick(nowMs)
		due := p.NextDueMs()
		if due == -1 {
			return nowMs
		}
		if due <= nowMs {
			due = nowMs + 1
		}
		if due > deadlineMs {
			break
		}
		nowMs = due
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.queue {
		p.deadLetterLocked(e.ev, "flush deadline", deadlineMs)
	}
	p.queue = nil
	return deadlineMs
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DeadLetters returns a copy of the ledger.
func (p *Pipeline) DeadLetters() []DeadLetter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]DeadLetter(nil), p.dead...)
}

// BreakerOpen reports whether the circuit breaker is currently open.
func (p *Pipeline) BreakerOpen() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.open
}
