// Integration tests for the HTTP sink: the device-side pipeline
// retrying through a flaky market endpoint. External test package so
// the test can stand up net/http servers without entangling the
// report package itself with httptest.
package report_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"bombdroid/internal/report"
)

// TestHTTPSinkRetryVsBreaker drives the pipeline against a market
// endpoint that is down for its first several requests: the breaker
// must trip during the outage, stop hammering the server, and every
// event must still land exactly once after recovery.
func TestHTTPSinkRetryVsBreaker(t *testing.T) {
	var calls atomic.Int64
	const failFirst = 7
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failFirst {
			http.Error(w, "market down", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"accepted":1,"duplicates":0}`)
	}))
	defer srv.Close()

	sink := &report.HTTPSink{URL: srv.URL, Client: srv.Client()}
	p := report.NewPipeline(sink,
		report.WithBaseBackoffMs(100), report.WithMaxBackoffMs(1_000),
		report.WithBreakerThreshold(3), report.WithBreakerCooldownMs(2_000),
		report.WithMaxAttempts(100), report.WithSeed(1))

	const n = 5
	for i := 0; i < n; i++ {
		p.Submit(report.Event{App: "a", Bomb: fmt.Sprintf("b%d", i), User: "u"}, 0)
	}
	p.Flush(0, 10*60_000)

	st := p.Stats()
	if st.Delivered != n {
		t.Fatalf("delivered = %d, want %d (dead: %+v)", st.Delivered, n, p.DeadLetters())
	}
	if st.Retries == 0 {
		t.Error("outage produced no retries")
	}
	if st.BreakerTrips == 0 {
		t.Error("sustained 500s never tripped the breaker")
	}
	if got := p.BreakerState(); got != "closed" {
		t.Errorf("breaker ended %q, want closed", got)
	}
	if st.DeadLettered != 0 {
		t.Errorf("%d events dead-lettered; retry budget should outlast the outage", st.DeadLettered)
	}
	// The breaker's fast-fail window means the server saw far fewer
	// requests than a naive retry loop would have sent.
	if got := calls.Load(); got != st.Attempts {
		t.Errorf("server saw %d requests, pipeline counted %d attempts", got, st.Attempts)
	}
}

// TestHTTPSinkStatusMapping pins the response→error contract: 2xx nil,
// 429 ErrBackpressure (still an ErrSinkDown for the retry machinery),
// anything else ErrSinkDown, transport failure ErrSinkDown.
func TestHTTPSinkStatusMapping(t *testing.T) {
	var status atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := int(status.Load())
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
	}))
	sink := &report.HTTPSink{URL: srv.URL, Client: srv.Client()}
	ev := report.Event{App: "a", Bomb: "b", User: "u"}

	status.Store(http.StatusOK)
	if err := sink.Deliver(ev, 0); err != nil {
		t.Fatalf("200: %v", err)
	}
	status.Store(http.StatusTooManyRequests)
	err := sink.Deliver(ev, 0)
	if !report.IsBackpressure(err) {
		t.Fatalf("429: got %v, want backpressure", err)
	}
	if !errors.Is(err, report.ErrSinkDown) {
		t.Error("backpressure must still satisfy errors.Is(_, ErrSinkDown)")
	}
	status.Store(http.StatusInternalServerError)
	if err := sink.Deliver(ev, 0); !errors.Is(err, report.ErrSinkDown) {
		t.Fatalf("500: got %v, want ErrSinkDown", err)
	}
	srv.Close()
	if err := sink.Deliver(ev, 0); !errors.Is(err, report.ErrSinkDown) {
		t.Fatalf("transport error: got %v, want ErrSinkDown", err)
	}
}
