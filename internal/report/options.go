package report

import (
	"fmt"

	"bombdroid/internal/obs"
)

// This file is the pipeline's public configuration contract. The
// historical constructor New(sink, Config{...}) forced every caller —
// campaign runners, the market daemon, tests — to hand-roll partial
// Config literals and trust the private withDefaults to patch the
// holes. NewPipeline makes the defaults explicit instead: it starts
// from DefaultConfig and applies functional options, validating the
// result, so a caller states only what it means to change.

// DefaultConfig returns the pipeline defaults — exactly the values a
// zero Config resolves to inside New. It is part of the public
// contract and pinned by TestDefaultConfigPinned.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Validate rejects configurations no schedule can satisfy. New and
// NewPipeline call it after defaulting; exported so flag-driven
// callers (cmd/marketd, cmd/loadgen) can fail fast with a message.
func (c Config) Validate() error {
	switch {
	case c.QueueCap < 0:
		return fmt.Errorf("report: QueueCap %d < 0", c.QueueCap)
	case c.MaxAttempts < 0:
		return fmt.Errorf("report: MaxAttempts %d < 0", c.MaxAttempts)
	case c.BaseBackoffMs < 0 || c.MaxBackoffMs < 0:
		return fmt.Errorf("report: negative backoff (base %d, max %d)", c.BaseBackoffMs, c.MaxBackoffMs)
	case c.MaxBackoffMs > 0 && c.BaseBackoffMs > c.MaxBackoffMs:
		return fmt.Errorf("report: BaseBackoffMs %d exceeds MaxBackoffMs %d", c.BaseBackoffMs, c.MaxBackoffMs)
	case c.JitterFrac < 0 || c.JitterFrac > 1:
		return fmt.Errorf("report: JitterFrac %v outside [0,1]", c.JitterFrac)
	case c.BreakerThreshold < 0 || c.BreakerCooldownMs < 0:
		return fmt.Errorf("report: negative breaker tuning (threshold %d, cooldown %d)", c.BreakerThreshold, c.BreakerCooldownMs)
	}
	return nil
}

// Option adjusts one pipeline setting on top of DefaultConfig.
type Option func(*Config)

// WithQueueCap bounds the ingestion queue.
func WithQueueCap(n int) Option { return func(c *Config) { c.QueueCap = n } }

// WithMaxAttempts bounds delivery attempts per event.
func WithMaxAttempts(n int) Option { return func(c *Config) { c.MaxAttempts = n } }

// WithBaseBackoffMs sets the first retry delay.
func WithBaseBackoffMs(ms int64) Option { return func(c *Config) { c.BaseBackoffMs = ms } }

// WithMaxBackoffMs sets the backoff ceiling.
func WithMaxBackoffMs(ms int64) Option { return func(c *Config) { c.MaxBackoffMs = ms } }

// WithJitterFrac sets the ± fraction of backoff randomized per retry.
func WithJitterFrac(f float64) Option { return func(c *Config) { c.JitterFrac = f } }

// WithBreakerThreshold sets how many consecutive failures trip the
// circuit breaker.
func WithBreakerThreshold(n int) Option { return func(c *Config) { c.BreakerThreshold = n } }

// WithBreakerCooldownMs sets how long the breaker stays open before a
// half-open probe.
func WithBreakerCooldownMs(ms int64) Option { return func(c *Config) { c.BreakerCooldownMs = ms } }

// WithSeed seeds the jitter RNG (schedules are deterministic per seed).
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithTracer attaches a report-lifecycle tracer: every accepted event
// gets a deterministic trace from Submit to delivery ack (or abort),
// annotated through retries and breaker transitions and propagated
// across TracedSink hops. Nil (the default) keeps tracing off.
func WithTracer(t *obs.Tracer) Option { return func(c *Config) { c.Tracer = t } }

// NewPipeline is the canonical constructor: DefaultConfig plus the
// given options. It panics on a configuration Validate rejects — an
// invalid option combination is a programmer error, and the pipeline
// has no error return to smuggle it through.
func NewPipeline(sink Sink, opts ...Option) *Pipeline {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return New(sink, cfg)
}
