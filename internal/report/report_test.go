package report

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func ev(bomb, user string) Event {
	return Event{App: "app", Bomb: bomb, User: user, TimeMs: 0, Info: "ko"}
}

// flaky fails deliveries according to a script: failUntilMs makes
// every delivery fail before that virtual time; failFirst makes the
// first n deliveries fail regardless of time.
type flaky struct {
	inner       *MemorySink
	failUntilMs int64
	failFirst   int
	calls       int
}

func (s *flaky) Deliver(e Event, nowMs int64) error {
	s.calls++
	if s.calls <= s.failFirst {
		return ErrSinkDown
	}
	if nowMs < s.failUntilMs {
		return ErrSinkDown
	}
	return s.inner.Deliver(e, nowMs)
}

func TestDeliverAndDedup(t *testing.T) {
	sink := NewMemorySink()
	p := NewPipeline(sink)
	if !p.Submit(ev("b1", "u1"), 0) {
		t.Fatal("first submit rejected")
	}
	// The device resubmits the same detection three more times.
	for i := 0; i < 3; i++ {
		if p.Submit(ev("b1", "u1"), int64(i)) {
			t.Fatal("duplicate entered the queue")
		}
	}
	p.Submit(ev("b1", "u2"), 0) // same bomb, different user: distinct evidence
	p.Tick(0)
	if got := sink.Count(ev("b1", "u1").Key()); got != 1 {
		t.Errorf("delivered %d copies, want exactly 1", got)
	}
	if sink.UniqueKeys() != 2 {
		t.Errorf("unique keys = %d, want 2", sink.UniqueKeys())
	}
	st := p.Stats()
	if st.Duplicates != 3 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetryWithBackoffRecovers(t *testing.T) {
	sink := NewMemorySink()
	fs := &flaky{inner: sink, failFirst: 3}
	p := NewPipeline(fs, WithBaseBackoffMs(100), WithMaxBackoffMs(1000), WithSeed(7))
	p.Submit(ev("b", "u"), 0)
	end := p.Flush(0, 60_000)
	if sink.Count(ev("b", "u").Key()) != 1 {
		t.Fatalf("event not delivered after transient failures (flushed to %dms)", end)
	}
	st := p.Stats()
	if st.Retries != 3 {
		t.Errorf("retries = %d, want 3", st.Retries)
	}
	if st.DeadLettered != 0 {
		t.Errorf("dead letters = %d, want 0", st.DeadLettered)
	}
}

func TestBackoffIsExponentialAndJittered(t *testing.T) {
	p := NewPipeline(NewMemorySink(), WithBaseBackoffMs(100), WithMaxBackoffMs(10_000), WithJitterFrac(0.25), WithSeed(1))
	prev := int64(0)
	for attempts := 1; attempts <= 5; attempts++ {
		d := p.backoffLocked(attempts)
		lo := int64(float64(int64(100)<<(attempts-1)) * 0.74)
		hi := int64(float64(int64(100)<<(attempts-1)) * 1.26)
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %dms outside [%d,%d]", attempts, d, lo, hi)
		}
		if d <= prev/2 {
			t.Errorf("backoff not growing: %d after %d", d, prev)
		}
		prev = d
	}
	// Cap respected.
	if d := p.backoffLocked(30); d > int64(10_000*1.26) {
		t.Errorf("backoff %d exceeds cap", d)
	}
}

func TestBackoffDeterministicAcrossRuns(t *testing.T) {
	a := NewPipeline(NewMemorySink(), WithSeed(42))
	b := NewPipeline(NewMemorySink(), WithSeed(42))
	for i := 1; i < 6; i++ {
		if x, y := a.backoffLocked(i), b.backoffLocked(i); x != y {
			t.Fatalf("same seed diverged at attempt %d: %d vs %d", i, x, y)
		}
	}
}

func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	sink := NewMemorySink()
	fs := &flaky{inner: sink, failUntilMs: 20_000}
	p := NewPipeline(fs,
		WithBaseBackoffMs(500), WithMaxBackoffMs(2_000),
		WithBreakerThreshold(3), WithBreakerCooldownMs(4_000),
		WithMaxAttempts(50), WithSeed(3))
	for i := 0; i < 10; i++ {
		p.Submit(ev(fmt.Sprintf("b%d", i), "u"), 0)
	}
	p.Tick(0)
	if !p.BreakerOpen() {
		t.Fatal("breaker did not trip after sustained failure")
	}
	st := p.Stats()
	if st.BreakerTrips != 1 {
		t.Errorf("trips = %d, want 1", st.BreakerTrips)
	}
	// While open, ticks must not hammer the sink.
	calls := fs.calls
	p.Tick(1_000)
	if fs.calls != calls {
		t.Errorf("breaker open but sink saw %d extra calls", fs.calls-calls)
	}
	// After the outage every event must land, exactly once each.
	p.Flush(1_000, 300_000)
	if sink.UniqueKeys() != 10 {
		t.Fatalf("delivered %d unique, want 10 (dead: %v)", sink.UniqueKeys(), p.DeadLetters())
	}
	if sink.MaxPerKey() != 1 {
		t.Errorf("max deliveries per key = %d, want 1", sink.MaxPerKey())
	}
	if p.BreakerOpen() {
		t.Error("breaker still open after recovery")
	}
}

func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	fs := &flaky{inner: NewMemorySink(), failUntilMs: 1 << 60} // never recovers
	p := NewPipeline(fs, WithMaxAttempts(4), WithBaseBackoffMs(10), WithBreakerThreshold(100), WithSeed(2))
	p.Submit(ev("b", "u"), 0)
	p.Flush(0, 1_000_000)
	st := p.Stats()
	if st.DeadLettered != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
	dl := p.DeadLetters()
	if len(dl) != 1 || dl[0].Reason != "max attempts" || dl[0].Event.Bomb != "b" {
		t.Fatalf("ledger = %+v", dl)
	}
	if st.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", st.Attempts)
	}
}

func TestQueueBoundShedsToLedger(t *testing.T) {
	// A sink that never succeeds, so the queue cannot drain.
	fs := &flaky{inner: NewMemorySink(), failUntilMs: 1 << 60}
	p := NewPipeline(fs, WithQueueCap(4), WithBreakerThreshold(1000))
	for i := 0; i < 10; i++ {
		p.Submit(ev(fmt.Sprintf("b%d", i), "u"), 0)
	}
	st := p.Stats()
	if st.Accepted != 4 || st.Overflow != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if len(p.DeadLetters()) != 6 {
		t.Errorf("overflowed events must be ledgered, got %d", len(p.DeadLetters()))
	}
}

func TestFlushDeadlineLedgersRemainder(t *testing.T) {
	fs := &flaky{inner: NewMemorySink(), failUntilMs: 1 << 60}
	p := NewPipeline(fs, WithMaxAttempts(1_000), WithBaseBackoffMs(100), WithBreakerThreshold(1_000))
	p.Submit(ev("b", "u"), 0)
	p.Flush(0, 5_000)
	if p.Pending() != 0 {
		t.Error("flush left entries pending")
	}
	dl := p.DeadLetters()
	if len(dl) != 1 || dl[0].Reason != "flush deadline" {
		t.Fatalf("ledger = %+v", dl)
	}
}

// TestConcurrentSubmitAndTick exercises the pipeline under -race:
// many device goroutines submitting (with duplicates) while a
// collector goroutine ticks.
func TestConcurrentSubmitAndTick(t *testing.T) {
	sink := NewMemorySink()
	p := NewPipeline(sink, WithQueueCap(10_000))
	const users, perUser = 16, 50
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				e := ev(fmt.Sprintf("b%d", i), fmt.Sprintf("u%d", u))
				p.Submit(e, int64(i))
				p.Submit(e, int64(i)) // duplicate from the same device
			}
		}(u)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 1000; i++ {
			p.Tick(i * 10)
		}
	}()
	wg.Wait()
	<-done
	p.Flush(100_000, 200_000)
	if sink.UniqueKeys() != users*perUser {
		t.Fatalf("unique = %d, want %d", sink.UniqueKeys(), users*perUser)
	}
	if sink.MaxPerKey() != 1 {
		t.Errorf("max per key = %d, want 1", sink.MaxPerKey())
	}
	st := p.Stats()
	if st.Duplicates != users*perUser {
		t.Errorf("duplicates = %d, want %d", st.Duplicates, users*perUser)
	}
}

func TestSinkDownErrorIsErrors(t *testing.T) {
	if !errors.Is(ErrSinkDown, ErrSinkDown) {
		t.Fatal("sentinel broken")
	}
}

// TestDefaultConfigPinned pins the public defaults contract: the
// values a zero Config resolves to. Changing any of these changes
// every deployed retry schedule, so the change must be deliberate.
func TestDefaultConfigPinned(t *testing.T) {
	want := Config{
		QueueCap:          1024,
		MaxAttempts:       8,
		BaseBackoffMs:     200,
		MaxBackoffMs:      60_000,
		JitterFrac:        0.25,
		BreakerThreshold:  5,
		BreakerCooldownMs: 5_000,
		Seed:              0,
	}
	if got := DefaultConfig(); got != want {
		t.Fatalf("DefaultConfig() = %+v, want %+v", got, want)
	}
	// Options land on the right fields and leave the rest at defaults.
	cfg := DefaultConfig()
	for _, o := range []Option{WithQueueCap(7), WithMaxAttempts(3), WithSeed(99)} {
		o(&cfg)
	}
	if cfg.QueueCap != 7 || cfg.MaxAttempts != 3 || cfg.Seed != 99 || cfg.BaseBackoffMs != 200 {
		t.Fatalf("options misapplied: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Config{
		{QueueCap: -1},
		{MaxAttempts: -2},
		{BaseBackoffMs: -1},
		{BaseBackoffMs: 500, MaxBackoffMs: 100},
		{JitterFrac: 1.5},
		{BreakerThreshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPipeline accepted an invalid option set")
		}
	}()
	NewPipeline(NewMemorySink(), WithQueueCap(-5))
}
