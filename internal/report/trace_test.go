package report

import (
	"encoding/json"
	"testing"

	"bombdroid/internal/obs"
)

// flakySink fails the first n deliveries then succeeds.
type flakySink struct {
	fails int
	MemorySink
}

func (s *flakySink) Deliver(ev Event, nowMs int64) error {
	if s.fails > 0 {
		s.fails--
		return ErrSinkDown
	}
	return s.MemorySink.Deliver(ev, nowMs)
}

func TestTraceLifecycleThroughRetries(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, obs.TracerConfig{Seed: 1, SampleN: 1})
	sink := &flakySink{fails: 2}
	p := NewPipeline(sink, WithTracer(tr), WithJitterFrac(0), WithSeed(1))

	ev := Event{App: "a", Bomb: "b", User: "u", TimeMs: 100}
	if !p.Submit(ev, 150) {
		t.Fatalf("submit refused")
	}
	end := p.Flush(150, 10*60_000)

	s := reg.Snapshot()
	if s.Counters["traces_closed_total"] != 1 {
		t.Fatalf("traces_closed_total = %d, want 1", s.Counters["traces_closed_total"])
	}
	exs := tr.Exemplars()
	if len(exs) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Outcome != "delivered" || ex.Attempts != 3 {
		t.Fatalf("exemplar = %+v, want delivered after 3 attempts", ex)
	}
	if ex.DetonateMs != 100 {
		t.Fatalf("detonate stamp = %d, want the event's own TimeMs 100", ex.DetonateMs)
	}
	// Two failures then the success; failures carry their backoff.
	if len(ex.AttemptLog) != 3 ||
		ex.AttemptLog[0].Outcome != "err" || ex.AttemptLog[0].BackoffMs <= 0 ||
		ex.AttemptLog[2].Outcome != "ok" {
		t.Fatalf("attempt log = %+v", ex.AttemptLog)
	}
	// e2e covers detonation→final delivery on the virtual clock.
	if got, want := s.Histograms["trace_e2e_ms"].Sum, end-100; got > want || got <= 0 {
		t.Fatalf("trace_e2e_ms sum = %d, flush ended at %d", got, end)
	}
	if s.Histograms["trace_queue_wait_ms"].Sum != 0 {
		t.Fatalf("queue wait = %d, want 0 (first attempt at submit time)", s.Histograms["trace_queue_wait_ms"].Sum)
	}
}

func TestTraceAbortOnDeadLetter(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, obs.TracerConfig{Seed: 1, SampleN: 1})
	sink := &flakySink{fails: 1 << 30} // never succeeds
	p := NewPipeline(sink, WithTracer(tr), WithMaxAttempts(3), WithJitterFrac(0))

	p.Submit(Event{App: "a", Bomb: "b", User: "u"}, 0)
	p.Flush(0, 10*60_000)

	s := reg.Snapshot()
	if s.Counters["traces_aborted_total"] != 1 {
		t.Fatalf("traces_aborted_total = %d, want 1", s.Counters["traces_aborted_total"])
	}
	if s.Counters["traces_closed_total"] != 0 {
		t.Fatalf("a dead-lettered trace closed as delivered")
	}
	exs := tr.Exemplars()
	if len(exs) != 1 || exs[0].Outcome != "max attempts" || exs[0].Attempts != 3 {
		t.Fatalf("abort exemplar = %+v", exs)
	}
}

func TestTraceBreakerHoldStamped(t *testing.T) {
	tr := obs.NewTracer(nil, obs.TracerConfig{Seed: 1, SampleN: 1})
	// Threshold 1: the first failure trips the breaker; a second event
	// then gets held without burning attempts.
	sink := &flakySink{fails: 1}
	p := NewPipeline(sink, WithTracer(tr),
		WithBreakerThreshold(1), WithBreakerCooldownMs(5_000), WithJitterFrac(0))

	p.Submit(Event{App: "a", Bomb: "b", User: "u1"}, 0)
	p.Tick(0) // fails, trips breaker
	p.Submit(Event{App: "a", Bomb: "b", User: "u2"}, 10)
	p.Tick(10) // u2 held by open breaker
	p.Flush(10, 10*60_000)

	held := false
	for _, ex := range tr.Exemplars() {
		for _, st := range ex.Stages {
			if st.Name == "breaker-hold" {
				held = true
			}
		}
	}
	if !held {
		t.Fatalf("no exemplar carries a breaker-hold stamp: %+v", tr.Exemplars())
	}
}

func TestTraceOverflowAborted(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, obs.TracerConfig{Seed: 1, SampleN: 1})
	sink := &flakySink{fails: 1 << 30}
	p := NewPipeline(sink, WithTracer(tr), WithQueueCap(1))

	p.Submit(Event{App: "a", Bomb: "b", User: "u1"}, 0)
	p.Submit(Event{App: "a", Bomb: "b", User: "u2"}, 0) // overflows
	if got := reg.Snapshot().Counters["traces_aborted_total"]; got != 1 {
		t.Fatalf("traces_aborted_total = %d, want 1 (overflow)", got)
	}
	found := false
	for _, ex := range tr.Exemplars() {
		if ex.Outcome == "queue overflow" {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow abort left no exemplar: %+v", tr.Exemplars())
	}
}

// TestTracedSnapshotDeterministic pins the tentpole's determinism
// contract at the pipeline level: two runs over the same events — one
// sink failing, retries, breaker traffic — produce byte-identical
// deterministic snapshots including every trace_* series.
func TestTracedSnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(reg, obs.TracerConfig{Seed: 99, SampleN: 4})
		sink := &flakySink{fails: 7}
		p := NewPipeline(sink, WithTracer(tr), WithSeed(99), WithBreakerThreshold(3))
		for i := 0; i < 200; i++ {
			p.Submit(Event{App: "app", Bomb: "b" + itoa(i%5), User: "u" + itoa(i)},
				int64(i)*10)
			p.Tick(int64(i) * 10)
		}
		p.Flush(2000, 10*60_000)
		p.Obs().MergeInto(reg)
		b, err := json.Marshal(reg.SnapshotDeterministic())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("traced deterministic snapshots differ")
	}
}

func itoa(i int) string {
	var b [20]byte
	n := len(b)
	if i == 0 {
		return "0"
	}
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
