package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bombdroid/internal/obs"
)

// ErrBackpressure is returned by HTTPSink.Deliver when the market
// daemon sheds load (HTTP 429). It wraps ErrSinkDown, so existing
// retry/breaker logic treats it as any other delivery failure while
// callers that care can errors.Is for it specifically.
var ErrBackpressure = fmt.Errorf("market backpressure: %w", ErrSinkDown)

// HTTPSink delivers events to a market ingestion endpoint (see
// internal/market and cmd/marketd): one POST per Deliver carrying a
// single JSON-lines record. It closes the paper's decentralized loop
// over a real network hop — device pipeline → HTTP → market WAL —
// with the pipeline's retry, backoff, and breaker machinery handling
// the hop's failures.
//
// Deliver is synchronous and does not batch: the pipeline's contract
// is that a nil return means the sink accepted the event, and the
// market side only acks after its WAL commit. Bulk traffic that wants
// batched POSTs should use market.Client directly.
//
// HTTPSink also implements TracedSink: with a live trace the POST
// carries obs.TraceHeader, the wall-clock round-trip lands on the ctx
// as network time, and the market's obs.ServerTimingHeader response
// header (receive → post-WAL-flush ack, microseconds) is stamped back
// so the breakdown can separate the wire from the daemon's flush.
type HTTPSink struct {
	// URL is the full ingestion endpoint, e.g.
	// "http://127.0.0.1:8444/v1/reports".
	URL string
	// Client overrides http.DefaultClient (tests inject timeouts).
	Client *http.Client
}

// Deliver POSTs the event and maps the response onto the pipeline's
// failure model: 2xx is success, 429 is ErrBackpressure, anything
// else (including transport errors) wraps ErrSinkDown.
func (s *HTTPSink) Deliver(ev Event, _ int64) error {
	return s.post(ev, nil)
}

// DeliverTraced is Deliver with trace propagation: the trace ID rides
// the request header and the ctx collects wall-clock network and
// server-side stamps. Virtual time is not involved — wall stamps feed
// only Volatile metrics.
func (s *HTTPSink) DeliverTraced(ev Event, tc *obs.TraceCtx, _ int64) error {
	return s.post(ev, tc)
}

func (s *HTTPSink) post(ev Event, tc *obs.TraceCtx) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest(http.MethodPost, s.URL, bytes.NewReader(append(body, '\n')))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSinkDown, err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	var start time.Time
	if tc != nil {
		req.Header.Set(obs.TraceHeader, tc.ID.String())
		start = time.Now()
	}
	resp, err := client.Do(req)
	if tc != nil {
		tc.StampNetworkNs(time.Since(start).Nanoseconds())
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSinkDown, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if tc != nil {
		if us, err := strconv.ParseInt(resp.Header.Get(obs.ServerTimingHeader), 10, 64); err == nil && us > 0 {
			tc.StampServerNs(us * 1_000)
		}
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return ErrBackpressure
	default:
		return fmt.Errorf("%w: market returned %s", ErrSinkDown, resp.Status)
	}
}

var (
	_ Sink       = (*HTTPSink)(nil)
	_ TracedSink = (*HTTPSink)(nil)
)

// IsBackpressure reports whether a delivery failure was the market
// shedding load, letting callers distinguish "slow down" from "down".
func IsBackpressure(err error) bool { return errors.Is(err, ErrBackpressure) }
