package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// ErrBackpressure is returned by HTTPSink.Deliver when the market
// daemon sheds load (HTTP 429). It wraps ErrSinkDown, so existing
// retry/breaker logic treats it as any other delivery failure while
// callers that care can errors.Is for it specifically.
var ErrBackpressure = fmt.Errorf("market backpressure: %w", ErrSinkDown)

// HTTPSink delivers events to a market ingestion endpoint (see
// internal/market and cmd/marketd): one POST per Deliver carrying a
// single JSON-lines record. It closes the paper's decentralized loop
// over a real network hop — device pipeline → HTTP → market WAL —
// with the pipeline's retry, backoff, and breaker machinery handling
// the hop's failures.
//
// Deliver is synchronous and does not batch: the pipeline's contract
// is that a nil return means the sink accepted the event, and the
// market side only acks after its WAL commit. Bulk traffic that wants
// batched POSTs should use market.Client directly.
type HTTPSink struct {
	// URL is the full ingestion endpoint, e.g.
	// "http://127.0.0.1:8444/v1/reports".
	URL string
	// Client overrides http.DefaultClient (tests inject timeouts).
	Client *http.Client
}

// Deliver POSTs the event and maps the response onto the pipeline's
// failure model: 2xx is success, 429 is ErrBackpressure, anything
// else (including transport errors) wraps ErrSinkDown.
func (s *HTTPSink) Deliver(ev Event, _ int64) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(s.URL, "application/x-ndjson", bytes.NewReader(append(body, '\n')))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSinkDown, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return ErrBackpressure
	default:
		return fmt.Errorf("%w: market returned %s", ErrSinkDown, resp.Status)
	}
}

var _ Sink = (*HTTPSink)(nil)

// IsBackpressure reports whether a delivery failure was the market
// shedding load, letting callers distinguish "slow down" from "down".
func IsBackpressure(err error) bool { return errors.Is(err, ErrBackpressure) }
