package dex

import (
	"fmt"
)

// Validate checks structural well-formedness of the whole file:
// class/method name uniqueness, register bounds, branch/switch targets
// inside the method, string-pool and blob references in range, and
// invoke references that resolve (either to a method in this file or
// left dangling deliberately — payload files reference host methods,
// so unresolved invokes are reported via the allowUnresolved flag on
// ValidateLinked instead).
func Validate(f *File) error {
	return validate(f, true)
}

// ValidateLinked is like Validate but also requires every OpInvoke
// target to resolve within the file. Use it on app files that are
// about to be installed stand-alone.
func ValidateLinked(f *File) error {
	return validate(f, false)
}

func validate(f *File, allowUnresolved bool) error {
	seenClass := make(map[string]bool, len(f.Classes))
	for _, c := range f.Classes {
		if c.Name == "" {
			return fmt.Errorf("dex: class with empty name")
		}
		if seenClass[c.Name] {
			return fmt.Errorf("dex: duplicate class %q", c.Name)
		}
		seenClass[c.Name] = true

		seenField := make(map[string]bool, len(c.Fields))
		for _, fd := range c.Fields {
			if fd.Name == "" {
				return fmt.Errorf("dex: class %s: field with empty name", c.Name)
			}
			if seenField[fd.Name] {
				return fmt.Errorf("dex: class %s: duplicate field %q", c.Name, fd.Name)
			}
			seenField[fd.Name] = true
		}

		seenMethod := make(map[string]bool, len(c.Methods))
		for _, m := range c.Methods {
			if m.Name == "" {
				return fmt.Errorf("dex: class %s: method with empty name", c.Name)
			}
			if seenMethod[m.Name] {
				return fmt.Errorf("dex: class %s: duplicate method %q", c.Name, m.Name)
			}
			seenMethod[m.Name] = true
			if m.Class != c.Name {
				return fmt.Errorf("dex: method %s.%s has stale class %q", c.Name, m.Name, m.Class)
			}
			if err := validateMethod(f, m, allowUnresolved); err != nil {
				return fmt.Errorf("dex: %s: %w", m.FullName(), err)
			}
		}
	}
	return nil
}

func validateMethod(f *File, m *Method, allowUnresolved bool) error {
	if m.NumArgs < 0 || m.NumRegs < m.NumArgs {
		return fmt.Errorf("bad register layout: args=%d regs=%d", m.NumArgs, m.NumRegs)
	}
	n := int32(len(m.Code))
	checkTarget := func(pc int, t int32) error {
		if t < 0 || t >= n {
			return fmt.Errorf("pc %d: branch target %d out of range [0,%d)", pc, t, n)
		}
		return nil
	}
	checkReg := func(pc int, r int32) error {
		if r < 0 || int(r) >= m.NumRegs {
			return fmt.Errorf("pc %d: register %d out of range [0,%d)", pc, r, m.NumRegs)
		}
		return nil
	}
	checkStr := func(pc int, idx int64) error {
		if idx < 0 || idx >= int64(len(f.Strings)) {
			return fmt.Errorf("pc %d: string index %d out of range", pc, idx)
		}
		return nil
	}

	for pc, in := range m.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("pc %d: invalid opcode %d", pc, in.Op)
		}
		var err error
		switch in.Op {
		case OpNop:
		case OpConstInt:
			err = checkReg(pc, in.A)
		case OpConstStr:
			if err = checkReg(pc, in.A); err == nil {
				err = checkStr(pc, in.Imm)
			}
		case OpMove, OpNeg, OpNot:
			if err = checkReg(pc, in.A); err == nil {
				err = checkReg(pc, in.B)
			}
		case OpAddK:
			if err = checkReg(pc, in.A); err == nil {
				err = checkReg(pc, in.B)
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
			if err = checkReg(pc, in.A); err == nil {
				if err = checkReg(pc, in.B); err == nil {
					err = checkReg(pc, in.C)
				}
			}
		case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
			if err = checkReg(pc, in.A); err == nil {
				if err = checkReg(pc, in.B); err == nil {
					err = checkTarget(pc, in.C)
				}
			}
		case OpIfEqz, OpIfNez:
			if err = checkReg(pc, in.A); err == nil {
				err = checkTarget(pc, in.C)
			}
		case OpGoto:
			err = checkTarget(pc, in.C)
		case OpSwitch:
			if err = checkReg(pc, in.A); err != nil {
				break
			}
			if in.Imm < 0 || in.Imm >= int64(len(m.Tables)) {
				err = fmt.Errorf("pc %d: switch table %d out of range", pc, in.Imm)
				break
			}
			t := m.Tables[in.Imm]
			if err = checkTarget(pc, t.Default); err != nil {
				break
			}
			for _, cs := range t.Cases {
				if err = checkTarget(pc, cs.Target); err != nil {
					break
				}
			}
		case OpInvoke:
			if in.A != -1 {
				if err = checkReg(pc, in.A); err != nil {
					break
				}
			}
			if err = checkArgWindow(pc, m, in); err != nil {
				break
			}
			if err = checkStr(pc, in.Imm); err != nil {
				break
			}
			if !allowUnresolved && f.Method(f.Str(in.Imm)) == nil {
				err = fmt.Errorf("pc %d: unresolved invoke target %q", pc, f.Str(in.Imm))
			}
		case OpCallAPI:
			if in.A != -1 {
				if err = checkReg(pc, in.A); err != nil {
					break
				}
			}
			if err = checkArgWindow(pc, m, in); err != nil {
				break
			}
			if !API(in.Imm).Valid() {
				err = fmt.Errorf("pc %d: invalid API id %d", pc, in.Imm)
			}
		case OpReturn:
			err = checkReg(pc, in.A)
		case OpReturnVoid:
		case OpGetStatic:
			if err = checkReg(pc, in.A); err == nil {
				err = checkStr(pc, in.Imm)
			}
		case OpPutStatic:
			if err = checkReg(pc, in.A); err == nil {
				err = checkStr(pc, in.Imm)
			}
		case OpNewArr, OpArrLen:
			if err = checkReg(pc, in.A); err == nil {
				err = checkReg(pc, in.B)
			}
		case OpALoad, OpAStore:
			if err = checkReg(pc, in.A); err == nil {
				if err = checkReg(pc, in.B); err == nil {
					err = checkReg(pc, in.C)
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func checkArgWindow(pc int, m *Method, in Instr) error {
	if in.C < 0 {
		return fmt.Errorf("pc %d: negative arg count %d", pc, in.C)
	}
	if in.C == 0 {
		return nil
	}
	if in.B < 0 || int(in.B)+int(in.C) > m.NumRegs {
		return fmt.Errorf("pc %d: arg window [%d,%d) outside %d registers",
			pc, in.B, in.B+in.C, m.NumRegs)
	}
	return nil
}
