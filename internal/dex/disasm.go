package dex

import (
	"fmt"
	"strings"
)

// Disassemble renders the whole file as text. The output is what the
// "text search" adversary analysis greps through, so it faithfully
// shows every string literal, API name, and field reference an
// attacker could pattern-match.
func Disassemble(f *File) string {
	var b strings.Builder
	for _, c := range f.Classes {
		fmt.Fprintf(&b, "class %s {\n", c.Name)
		for _, fd := range c.Fields {
			fmt.Fprintf(&b, "  static %s = %s\n", fd.Name, fd.Init)
		}
		for _, m := range c.Methods {
			b.WriteString(DisassembleMethod(f, m))
		}
		b.WriteString("}\n")
	}
	if len(f.Blobs) > 0 {
		for i, blob := range f.Blobs {
			fmt.Fprintf(&b, "blob %d: %d bytes\n", i, len(blob))
		}
	}
	return b.String()
}

// DisassembleMethod renders one method with per-instruction addresses.
func DisassembleMethod(f *File, m *Method) string {
	var b strings.Builder
	flags := ""
	if m.IsHandler() {
		flags += " handler"
	}
	if m.Flags&FlagInit != 0 {
		flags += " init"
	}
	if m.IsSynthetic() {
		flags += " synthetic"
	}
	fmt.Fprintf(&b, "  method %s(args=%d regs=%d)%s {\n", m.Name, m.NumArgs, m.NumRegs, flags)
	for pc, in := range m.Code {
		fmt.Fprintf(&b, "    %4d: %s\n", pc, FormatInstr(f, m, in))
	}
	b.WriteString("  }\n")
	return b.String()
}

// FormatInstr renders a single instruction.
func FormatInstr(f *File, m *Method, in Instr) string {
	switch in.Op {
	case OpNop, OpReturnVoid:
		return in.Op.String()
	case OpConstInt:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.A, in.Imm)
	case OpConstStr:
		return fmt.Sprintf("%s r%d, %q", in.Op, in.A, f.Str(in.Imm))
	case OpMove, OpNeg, OpNot, OpNewArr, OpArrLen:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpAddK:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpALoad, OpAStore:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
		return fmt.Sprintf("%s r%d, r%d -> %d", in.Op, in.A, in.B, in.C)
	case OpIfEqz, OpIfNez:
		return fmt.Sprintf("%s r%d -> %d", in.Op, in.A, in.C)
	case OpGoto:
		return fmt.Sprintf("%s -> %d", in.Op, in.C)
	case OpSwitch:
		var parts []string
		if int(in.Imm) < len(m.Tables) {
			t := m.Tables[in.Imm]
			for _, cs := range t.Cases {
				parts = append(parts, fmt.Sprintf("%d->%d", cs.Match, cs.Target))
			}
			parts = append(parts, fmt.Sprintf("default->%d", t.Default))
		}
		return fmt.Sprintf("%s r%d {%s}", in.Op, in.A, strings.Join(parts, ", "))
	case OpInvoke:
		return fmt.Sprintf("%s r%d = %s(r%d..%d)", in.Op, in.A, f.Str(in.Imm), in.B, int(in.B)+int(in.C)-1)
	case OpCallAPI:
		return fmt.Sprintf("%s r%d = %s(r%d..%d)", in.Op, in.A, API(in.Imm).Name(), in.B, int(in.B)+int(in.C)-1)
	case OpReturn:
		return fmt.Sprintf("%s r%d", in.Op, in.A)
	case OpGetStatic:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.A, f.Str(in.Imm))
	case OpPutStatic:
		return fmt.Sprintf("%s %s, r%d", in.Op, f.Str(in.Imm), in.A)
	}
	return fmt.Sprintf("%s A=%d B=%d C=%d Imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
}
