package dex

import (
	"bytes"
	"encoding/binary"
)

// Binary format ("GDEX"):
//
//	magic   "GDEX"
//	version uvarint (currently 1)
//	strings uvarint count, then len-prefixed bytes
//	blobs   uvarint count, then len-prefixed bytes
//	classes uvarint count, then per class:
//	  name, fields (name + value), methods
//	  per method: name, args, regs, flags, code, switch tables
//
// All integers use varint (signed values zigzag-encoded); the format
// is deterministic, so Encode is a pure function of the File and the
// round-trip property Decode(Encode(f)) == f holds structurally.

const (
	magic         = "GDEX"
	formatVersion = 1
)

type encoder struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf.Write(b)
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) value(v Value) {
	e.buf.WriteByte(byte(v.Kind))
	switch v.Kind {
	case KindInt, KindHandle:
		e.varint(v.Int)
	case KindStr:
		e.string(v.Str)
	case KindBytes:
		e.bytes(v.Bytes)
	case KindArr:
		if v.Arr == nil {
			e.uvarint(0)
			return
		}
		e.uvarint(uint64(len(*v.Arr)))
		for _, el := range *v.Arr {
			e.value(el)
		}
	}
}

func (e *encoder) instr(in Instr) {
	e.buf.WriteByte(byte(in.Op))
	e.varint(int64(in.A))
	e.varint(int64(in.B))
	e.varint(int64(in.C))
	e.varint(in.Imm)
}

func (e *encoder) method(m *Method) {
	e.string(m.Name)
	e.uvarint(uint64(m.NumArgs))
	e.uvarint(uint64(m.NumRegs))
	e.buf.WriteByte(byte(m.Flags))
	e.uvarint(uint64(len(m.Code)))
	for _, in := range m.Code {
		e.instr(in)
	}
	e.uvarint(uint64(len(m.Tables)))
	for _, t := range m.Tables {
		e.uvarint(uint64(len(t.Cases)))
		for _, c := range t.Cases {
			e.varint(c.Match)
			e.varint(int64(c.Target))
		}
		e.varint(int64(t.Default))
	}
}

// Encode serializes the file to its binary form.
func Encode(f *File) []byte {
	var e encoder
	e.buf.WriteString(magic)
	e.uvarint(formatVersion)

	e.uvarint(uint64(len(f.Strings)))
	for _, s := range f.Strings {
		e.string(s)
	}
	e.uvarint(uint64(len(f.Blobs)))
	for _, b := range f.Blobs {
		e.bytes(b)
	}
	e.uvarint(uint64(len(f.Classes)))
	for _, c := range f.Classes {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Fields)))
		for _, fd := range c.Fields {
			e.string(fd.Name)
			e.value(fd.Init)
		}
		e.uvarint(uint64(len(c.Methods)))
		for _, m := range c.Methods {
			e.method(m)
		}
	}
	return e.buf.Bytes()
}
