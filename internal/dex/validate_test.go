package dex

import (
	"strings"
	"testing"
)

func validFile(t *testing.T) *File {
	t.Helper()
	f := NewFile()
	b := NewBuilder(f, "main", 1)
	r := b.Reg()
	b.ConstInt(r, 5)
	b.Branch(OpIfEq, 0, r, "hit")
	b.ReturnVoid()
	b.Label("hit")
	b.CallAPI(-1, APILog, func() int32 { s := b.Reg(); b.ConstStr(s, "hit"); return s }())
	b.ReturnVoid()
	m := b.MustFinish()
	c := &Class{Name: "App", Fields: []Field{{Name: "count", Init: Int64(0)}}}
	c.AddMethod(m)
	if err := f.AddClass(c); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidateAccepts(t *testing.T) {
	f := validFile(t)
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(f *File)
		want string
	}{
		{"branch out of range", func(f *File) {
			f.Classes[0].Methods[0].Code[1].C = 99
		}, "target"},
		{"register out of range", func(f *File) {
			f.Classes[0].Methods[0].Code[0].A = 50
		}, "register"},
		{"bad opcode", func(f *File) {
			f.Classes[0].Methods[0].Code[0].Op = Op(250)
		}, "opcode"},
		{"bad string index", func(f *File) {
			for i, in := range f.Classes[0].Methods[0].Code {
				if in.Op == OpConstStr {
					f.Classes[0].Methods[0].Code[i].Imm = 999
				}
			}
			// Ensure at least one const-str exists for the mutation.
			f.Classes[0].Methods[0].Code = append([]Instr{{Op: OpConstStr, A: 0, Imm: 999}},
				f.Classes[0].Methods[0].Code...)
			fixBranchShift(f.Classes[0].Methods[0], 1)
		}, "string index"},
		{"bad API", func(f *File) {
			for i, in := range f.Classes[0].Methods[0].Code {
				if in.Op == OpCallAPI {
					f.Classes[0].Methods[0].Code[i].Imm = 9999
				}
			}
		}, "API"},
		{"duplicate class", func(f *File) {
			f.Classes = append(f.Classes, &Class{Name: "App"})
		}, "duplicate class"},
		{"duplicate method", func(f *File) {
			m := f.Classes[0].Methods[0].Clone()
			f.Classes[0].AddMethod(m)
		}, "duplicate method"},
		{"duplicate field", func(f *File) {
			f.Classes[0].Fields = append(f.Classes[0].Fields, Field{Name: "count"})
		}, "duplicate field"},
		{"bad arg window", func(f *File) {
			for i, in := range f.Classes[0].Methods[0].Code {
				if in.Op == OpCallAPI {
					f.Classes[0].Methods[0].Code[i].B = 40
				}
			}
		}, "arg window"},
		{"regs below args", func(f *File) {
			f.Classes[0].Methods[0].NumRegs = 0
		}, "register layout"},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile(t)
			tc.fn(f)
			err := Validate(f)
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func fixBranchShift(m *Method, by int32) {
	for i := range m.Code {
		if m.Code[i].Op.IsBranch() {
			m.Code[i].C += by
		}
	}
	for i := range m.Tables {
		m.Tables[i].Default += by
		for j := range m.Tables[i].Cases {
			m.Tables[i].Cases[j].Target += by
		}
	}
}

func TestValidateLinkedUnresolvedInvoke(t *testing.T) {
	f := validFile(t)
	b := NewBuilder(f, "caller", 0)
	b.Invoke(-1, "Ghost.method")
	m := b.MustFinish()
	f.Classes[0].AddMethod(m)
	if err := Validate(f); err != nil {
		t.Fatalf("Validate should allow unresolved invokes: %v", err)
	}
	if err := ValidateLinked(f); err == nil {
		t.Fatal("ValidateLinked should reject unresolved invokes")
	}
}

func TestValidateSwitchTargets(t *testing.T) {
	f := validFile(t)
	m := f.Classes[0].Methods[0]
	m.Tables = append(m.Tables, SwitchTable{
		Cases:   []SwitchCase{{Match: 1, Target: 0}},
		Default: 50, // out of range
	})
	m.Code = append([]Instr{{Op: OpSwitch, A: 0, Imm: 0}}, m.Code...)
	fixBranchShift(m, 1)
	m.Tables[0].Default = 50
	if err := Validate(f); err == nil {
		t.Fatal("bad switch default accepted")
	}
}

func TestFileHelpers(t *testing.T) {
	f := validFile(t)
	if f.Class("App") == nil || f.Class("Nope") != nil {
		t.Error("Class lookup broken")
	}
	if f.Method("App.main") == nil || f.Method("App.nope") != nil || f.Method("Nope.main") != nil {
		t.Error("Method lookup broken")
	}
	if f.Method("noDotName") != nil {
		t.Error("undotted name should not resolve")
	}
	if len(f.Methods()) != 1 {
		t.Error("Methods enumeration broken")
	}
	if f.InstrCount() == 0 {
		t.Error("InstrCount broken")
	}
	idx := f.Intern("hello")
	if f.Str(idx) != "hello" {
		t.Error("Intern/Str broken")
	}
	if f.Str(-1) != "" || f.Str(1<<30) != "" {
		t.Error("out-of-range Str should be empty")
	}
	if got, ok := f.Lookup("hello"); !ok || got != idx {
		t.Error("Lookup broken")
	}
	if _, ok := f.Lookup("absent"); ok {
		t.Error("Lookup of absent string should fail")
	}
	bi := f.AddBlob([]byte{1, 2, 3})
	if bi != 0 || f.BlobBytes() != 3 {
		t.Error("blob accounting broken")
	}
	if err := f.AddClass(&Class{Name: "App"}); err == nil {
		t.Error("duplicate AddClass should fail")
	}
	f2 := NewFile()
	f2.Classes = append(f2.Classes, &Class{Name: "Z"}, &Class{Name: "A"})
	f2.SortClasses()
	if f2.Classes[0].Name != "A" {
		t.Error("SortClasses broken")
	}
}

func TestDisassembleMentionsEverything(t *testing.T) {
	f := validFile(t)
	f.AddBlob([]byte{9, 9})
	out := Disassemble(f)
	for _, want := range []string{"class App", "method main", "if-eq", "log", "blob 0", "static count"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestFormatInstrAllOps(t *testing.T) {
	f := validFile(t)
	m := &Method{Name: "x", NumRegs: 4, Tables: []SwitchTable{{Cases: []SwitchCase{{Match: 1, Target: 0}}, Default: 0}}}
	for op := Op(0); op < opMax; op++ {
		in := Instr{Op: op, A: 0, B: 1, C: 2}
		if op == OpSwitch {
			in.Imm = 0
		}
		s := FormatInstr(f, m, in)
		if s == "" {
			t.Errorf("empty rendering for %s", op)
		}
	}
}
