package dex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrBadMagic reports that a byte stream is not a GDEX file. The bomb
// runtime relies on it: decrypting a payload with the wrong key yields
// garbage that fails this check (and the authentication tag before it).
var ErrBadMagic = errors.New("dex: bad magic (not a GDEX file)")

// Decoding limits guard against corrupt or adversarial inputs blowing
// up memory; they are far above anything the generators produce.
const (
	maxPoolEntries = 1 << 22
	maxEntryBytes  = 1 << 26
)

type decoder struct {
	r *bytes.Reader
}

func (d *decoder) uvarint() (uint64, error) {
	return binary.ReadUvarint(d.r)
}

func (d *decoder) varint() (int64, error) {
	return binary.ReadVarint(d.r)
}

func (d *decoder) count(what string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, fmt.Errorf("dex: reading %s count: %w", what, err)
	}
	if v > maxPoolEntries {
		return 0, fmt.Errorf("dex: %s count %d exceeds limit", what, v)
	}
	return int(v), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxEntryBytes {
		return nil, fmt.Errorf("dex: entry of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (d *decoder) string() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (d *decoder) value() (Value, error) {
	k, err := d.r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	v := Value{Kind: ValueKind(k)}
	switch v.Kind {
	case KindNil:
	case KindInt, KindHandle:
		v.Int, err = d.varint()
	case KindStr:
		v.Str, err = d.string()
	case KindBytes:
		v.Bytes, err = d.bytes()
	case KindArr:
		var n int
		n, err = d.count("array")
		if err != nil {
			return Value{}, err
		}
		s := make([]Value, n)
		for i := range s {
			if s[i], err = d.value(); err != nil {
				return Value{}, err
			}
		}
		v.Arr = &s
	default:
		return Value{}, fmt.Errorf("dex: unknown value kind %d", k)
	}
	return v, err
}

func (d *decoder) instr() (Instr, error) {
	op, err := d.r.ReadByte()
	if err != nil {
		return Instr{}, err
	}
	var in Instr
	in.Op = Op(op)
	if !in.Op.Valid() {
		return Instr{}, fmt.Errorf("dex: unknown opcode %d", op)
	}
	for _, dst := range []*int32{&in.A, &in.B, &in.C} {
		v, err := d.varint()
		if err != nil {
			return Instr{}, err
		}
		*dst = int32(v)
	}
	if in.Imm, err = d.varint(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

func (d *decoder) method() (*Method, error) {
	m := &Method{}
	var err error
	if m.Name, err = d.string(); err != nil {
		return nil, err
	}
	args, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	regs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	m.NumArgs, m.NumRegs = int(args), int(regs)
	fl, err := d.r.ReadByte()
	if err != nil {
		return nil, err
	}
	m.Flags = MethodFlags(fl)

	n, err := d.count("instruction")
	if err != nil {
		return nil, err
	}
	m.Code = make([]Instr, n)
	for i := range m.Code {
		if m.Code[i], err = d.instr(); err != nil {
			return nil, fmt.Errorf("dex: method %s pc %d: %w", m.Name, i, err)
		}
	}

	nt, err := d.count("switch table")
	if err != nil {
		return nil, err
	}
	m.Tables = make([]SwitchTable, nt)
	for i := range m.Tables {
		nc, err := d.count("switch case")
		if err != nil {
			return nil, err
		}
		cases := make([]SwitchCase, nc)
		for j := range cases {
			if cases[j].Match, err = d.varint(); err != nil {
				return nil, err
			}
			t, err := d.varint()
			if err != nil {
				return nil, err
			}
			cases[j].Target = int32(t)
		}
		def, err := d.varint()
		if err != nil {
			return nil, err
		}
		m.Tables[i] = SwitchTable{Cases: cases, Default: int32(def)}
	}
	return m, nil
}

// Decode parses a binary GDEX file.
func Decode(data []byte) (*File, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	d := decoder{r: bytes.NewReader(data[len(magic):])}

	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("dex: unsupported format version %d", ver)
	}

	f := &File{}
	ns, err := d.count("string")
	if err != nil {
		return nil, err
	}
	f.Strings = make([]string, ns)
	for i := range f.Strings {
		if f.Strings[i], err = d.string(); err != nil {
			return nil, err
		}
	}

	nb, err := d.count("blob")
	if err != nil {
		return nil, err
	}
	if nb > 0 {
		f.Blobs = make([][]byte, nb)
		for i := range f.Blobs {
			if f.Blobs[i], err = d.bytes(); err != nil {
				return nil, err
			}
		}
	}

	nc, err := d.count("class")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nc; i++ {
		c := &Class{}
		if c.Name, err = d.string(); err != nil {
			return nil, err
		}
		nf, err := d.count("field")
		if err != nil {
			return nil, err
		}
		c.Fields = make([]Field, nf)
		for j := range c.Fields {
			if c.Fields[j].Name, err = d.string(); err != nil {
				return nil, err
			}
			if c.Fields[j].Init, err = d.value(); err != nil {
				return nil, err
			}
		}
		nm, err := d.count("method")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nm; j++ {
			m, err := d.method()
			if err != nil {
				return nil, fmt.Errorf("dex: class %s: %w", c.Name, err)
			}
			c.AddMethod(m)
		}
		if err := f.AddClass(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}
