package dex

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
	}{
		{Nil(), KindNil},
		{Int64(42), KindInt},
		{Bool(true), KindInt},
		{Str("x"), KindStr},
		{Bytes([]byte{1}), KindBytes},
		{NewArr(3), KindArr},
		{Handle(7), KindHandle},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.kind)
		}
	}
	if Bool(true).Int != 1 || Bool(false).Int != 0 {
		t.Error("Bool mapping wrong")
	}
	if a := NewArr(3); len(*a.Arr) != 3 {
		t.Error("NewArr length wrong")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Int64(1), Int64(-5), Str("a"), Bytes([]byte{0}), NewArr(1), Handle(2)}
	falsy := []Value{Nil(), Int64(0), Str(""), Bytes(nil), NewArr(0), Handle(0)}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%s should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%s should be falsy", v)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int64(3).Equal(Int64(3)) || Int64(3).Equal(Int64(4)) {
		t.Error("int equality wrong")
	}
	if !Str("ab").Equal(Str("ab")) || Str("ab").Equal(Str("ba")) {
		t.Error("string equality wrong")
	}
	if Int64(0).Equal(Nil()) || Int64(0).Equal(Str("")) {
		t.Error("cross-kind equality must be false")
	}
	a, b := NewArr(2), NewArr(2)
	if a.Equal(b) {
		t.Error("distinct arrays must compare unequal (reference identity)")
	}
	if !a.Equal(a) {
		t.Error("array must equal itself")
	}
	if !Bytes([]byte("xy")).Equal(Bytes([]byte("xy"))) {
		t.Error("bytes equality wrong")
	}
}

// Property: Repr is injective on ints and on strings, and equal values
// share a Repr. This underpins the bomb key derivation Hash(Repr(X)|salt).
func TestReprInjective(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		ra, rb := string(Int64(a).Repr()), string(Int64(b).Repr())
		return (a == b) == (ra == rb)
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a, b string) bool {
		ra, rb := string(Str(a).Repr()), string(Str(b).Repr())
		return (a == b) == (ra == rb)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReprCrossKindDistinct(t *testing.T) {
	// An int and a string that "look" the same must not collide:
	// otherwise an attacker could substitute operand kinds to derive keys.
	if string(Int64(7).Repr()) == string(Str("7").Repr()) {
		t.Error("int 7 and string \"7\" must have distinct Repr")
	}
}

func TestValueString(t *testing.T) {
	for _, v := range []Value{Nil(), Int64(9), Str("s"), Bytes([]byte{1, 2}), NewArr(2), Handle(3)} {
		if v.String() == "" || v.String() == "?" {
			t.Errorf("bad String for kind %v", v.Kind)
		}
	}
	if (Value{Kind: KindArr}).String() != "arr(nil)" {
		t.Error("nil array rendering wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindStr.String() != "str" {
		t.Error("kind names wrong")
	}
	if ValueKind(99).String() != "kind(99)" {
		t.Error("unknown kind rendering wrong")
	}
}
