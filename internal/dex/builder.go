package dex

import (
	"fmt"
)

// Builder assembles one method, managing register allocation and
// label-based branch targets so callers never compute instruction
// indices by hand. Every code generator in the repository (the app
// generator's compiler, the bomb constructor, the SSN baseline) sits
// on top of it.
type Builder struct {
	file   *File
	method *Method

	labels    map[string]int32 // label -> resolved pc
	branchFix map[int]string   // pc of branch -> label
	switchFix map[int][]string // table index -> case labels (last = default)
	nextReg   int32
	maxReg    int32
	err       error
}

// NewBuilder starts a method with the given name and argument count.
// Argument registers are r0..rNumArgs-1; Reg allocates above them.
func NewBuilder(f *File, name string, numArgs int) *Builder {
	return &Builder{
		file:      f,
		method:    &Method{Name: name, NumArgs: numArgs},
		labels:    make(map[string]int32),
		branchFix: make(map[int]string),
		switchFix: make(map[int][]string),
		nextReg:   int32(numArgs),
		maxReg:    int32(numArgs),
	}
}

// File returns the file the builder interns strings into.
func (b *Builder) File() *File { return b.file }

// SetFlags sets the method flags.
func (b *Builder) SetFlags(fl MethodFlags) { b.method.Flags = fl }

// Reg allocates a fresh scratch register.
func (b *Builder) Reg() int32 {
	r := b.nextReg
	b.nextReg++
	if b.nextReg > b.maxReg {
		b.maxReg = b.nextReg
	}
	return r
}

// Regs allocates n contiguous scratch registers, returning the first.
func (b *Builder) Regs(n int) int32 {
	r := b.nextReg
	b.nextReg += int32(n)
	if b.nextReg > b.maxReg {
		b.maxReg = b.nextReg
	}
	return r
}

// Release returns the register high-water mark to r, allowing reuse of
// scratch registers between statements. Registers at or above r must
// not be live.
func (b *Builder) Release(r int32) { b.nextReg = r }

// Mark returns the current register high-water mark for a later
// Release.
func (b *Builder) Mark() int32 { return b.nextReg }

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int32 { return int32(len(b.method.Code)) }

// Emit appends a raw instruction and returns its pc.
func (b *Builder) Emit(in Instr) int {
	b.method.Code = append(b.method.Code, in)
	return len(b.method.Code) - 1
}

// Label binds name to the next instruction's address. Rebinding a
// label is an error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("dex: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// ConstInt emits dst = v.
func (b *Builder) ConstInt(dst int32, v int64) {
	b.Emit(Instr{Op: OpConstInt, A: dst, B: -1, C: -1, Imm: v})
}

// ConstStr emits dst = s (interning s).
func (b *Builder) ConstStr(dst int32, s string) {
	b.Emit(Instr{Op: OpConstStr, A: dst, B: -1, C: -1, Imm: b.file.Intern(s)})
}

// Move emits dst = src.
func (b *Builder) Move(dst, src int32) {
	b.Emit(Instr{Op: OpMove, A: dst, B: src, C: -1})
}

// Arith emits dst = x op y for a three-register arithmetic op.
func (b *Builder) Arith(op Op, dst, x, y int32) {
	b.Emit(Instr{Op: op, A: dst, B: x, C: y})
}

// AddK emits dst = x + k.
func (b *Builder) AddK(dst, x int32, k int64) {
	b.Emit(Instr{Op: OpAddK, A: dst, B: x, C: -1, Imm: k})
}

// Branch emits a two-register conditional branch to label.
func (b *Builder) Branch(op Op, x, y int32, label string) {
	pc := b.Emit(Instr{Op: op, A: x, B: y, C: -1})
	b.branchFix[pc] = label
}

// BranchZ emits a zero-test branch to label.
func (b *Builder) BranchZ(op Op, x int32, label string) {
	pc := b.Emit(Instr{Op: op, A: x, B: -1, C: -1})
	b.branchFix[pc] = label
}

// Goto emits an unconditional jump to label.
func (b *Builder) Goto(label string) {
	pc := b.Emit(Instr{Op: OpGoto, A: -1, B: -1, C: -1})
	b.branchFix[pc] = label
}

// Switch emits a table switch on reg. Case i jumps to caseLabels[i]
// on matching matches[i]; defaultLabel handles everything else.
func (b *Builder) Switch(reg int32, matches []int64, caseLabels []string, defaultLabel string) {
	if len(matches) != len(caseLabels) {
		b.fail(fmt.Errorf("dex: switch with %d matches but %d labels", len(matches), len(caseLabels)))
		return
	}
	t := SwitchTable{Cases: make([]SwitchCase, len(matches))}
	for i, mv := range matches {
		t.Cases[i].Match = mv
	}
	idx := len(b.method.Tables)
	b.method.Tables = append(b.method.Tables, t)
	b.switchFix[idx] = append(append([]string(nil), caseLabels...), defaultLabel)
	b.Emit(Instr{Op: OpSwitch, A: reg, B: -1, C: -1, Imm: int64(idx)})
}

// Invoke emits dst = full(args...), copying args into a contiguous
// window. Pass dst = -1 for a void call.
func (b *Builder) Invoke(dst int32, full string, args ...int32) {
	base := b.argWindow(args)
	b.Emit(Instr{Op: OpInvoke, A: dst, B: base, C: int32(len(args)), Imm: b.file.Intern(full)})
}

// CallAPI emits dst = api(args...), copying args into a contiguous
// window. Pass dst = -1 for a void call.
func (b *Builder) CallAPI(dst int32, api API, args ...int32) {
	base := b.argWindow(args)
	b.Emit(Instr{Op: OpCallAPI, A: dst, B: base, C: int32(len(args)), Imm: int64(api)})
}

func (b *Builder) argWindow(args []int32) int32 {
	if len(args) == 0 {
		return 0
	}
	// Already contiguous: reuse in place.
	contiguous := true
	for i := 1; i < len(args); i++ {
		if args[i] != args[0]+int32(i) {
			contiguous = false
			break
		}
	}
	if contiguous {
		return args[0]
	}
	base := b.Regs(len(args))
	for i, a := range args {
		b.Move(base+int32(i), a)
	}
	return base
}

// GetStatic emits dst = Class.Field.
func (b *Builder) GetStatic(dst int32, ref string) {
	b.Emit(Instr{Op: OpGetStatic, A: dst, B: -1, C: -1, Imm: b.file.Intern(ref)})
}

// PutStatic emits Class.Field = src.
func (b *Builder) PutStatic(ref string, src int32) {
	b.Emit(Instr{Op: OpPutStatic, A: src, B: -1, C: -1, Imm: b.file.Intern(ref)})
}

// Return emits return reg.
func (b *Builder) Return(reg int32) {
	b.Emit(Instr{Op: OpReturn, A: reg, B: -1, C: -1})
}

// ReturnVoid emits a void return.
func (b *Builder) ReturnVoid() {
	b.Emit(Instr{Op: OpReturnVoid, A: -1, B: -1, C: -1})
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Finish resolves all labels and returns the completed method. The
// method always ends in a terminator (a void return is appended if
// control can fall off the end).
func (b *Builder) Finish() (*Method, error) {
	if b.err != nil {
		return nil, b.err
	}
	endLabel := false
	for _, t := range b.labels {
		if int(t) == len(b.method.Code) {
			endLabel = true
			break
		}
	}
	if n := len(b.method.Code); n == 0 || endLabel || !b.method.Code[n-1].Op.IsTerminator() {
		// Either control can fall off the end or a label targets the
		// end-of-code address; both need a real instruction there.
		b.ReturnVoid()
	}
	for pc, label := range b.branchFix {
		t, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("dex: undefined label %q", label)
		}
		b.method.Code[pc].C = t
	}
	for idx, labels := range b.switchFix {
		t := &b.method.Tables[idx]
		for i := range t.Cases {
			target, ok := b.labels[labels[i]]
			if !ok {
				return nil, fmt.Errorf("dex: undefined switch label %q", labels[i])
			}
			t.Cases[i].Target = target
		}
		def, ok := b.labels[labels[len(labels)-1]]
		if !ok {
			return nil, fmt.Errorf("dex: undefined switch default %q", labels[len(labels)-1])
		}
		t.Default = def
	}
	b.method.NumRegs = int(b.maxReg)
	if b.method.NumRegs < b.method.NumArgs {
		b.method.NumRegs = b.method.NumArgs
	}
	return b.method, nil
}

// MustFinish is Finish for generators whose input is known-valid;
// it panics on error.
func (b *Builder) MustFinish() *Method {
	m, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return m
}
