package dex

import (
	"math/rand"
	"testing"
)

// FuzzDecode: arbitrary byte streams must never panic the decoder —
// the runtime feeds it attacker-controlled payload blobs after
// decryption failures would have been caught, but defence in depth
// demands totality.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("GDEX"))
	f.Add([]byte("GDEXgarbage"))
	f.Add(Encode(NewFile()))
	rf := randomFile(rand.New(rand.NewSource(9)))
	f.Add(Encode(rf))
	enc := Encode(rf)
	f.Add(enc[:len(enc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode again stably.
		second, err := Decode(Encode(file))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(second.Classes) != len(file.Classes) {
			t.Fatal("unstable decode")
		}
	})
}

// FuzzAssemble: arbitrary source text must never panic the assembler.
func FuzzAssemble(f *testing.F) {
	f.Add(sampleAsm)
	f.Add("class C\nmethod m 0\n  nop\nend\nendclass")
	f.Add("class\nmethod\nend")
	f.Add(";;;\nblob 00")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Assemble(src)
		if err != nil {
			return
		}
		if err := Validate(file); err != nil {
			t.Fatalf("assembler produced an invalid file: %v", err)
		}
	})
}
