package dex

import (
	"strings"
	"testing"
)

const sampleAsm = `
; A small app in assembly form.
class App
field count int 0
field title str "start"

method bump 0 handler
  get-static r0, App.count
  add-k r0, r0, 1
  put-static App.count, r0
  return r0
end

method classify 1
  switch r0, [1=@one 2=@two], @other
one:
  const-int r1, 10
  return r1
two:
  const-int r1, 20
  return r1
other:
  const-int r1, -1
  return r1
end

method greet 1 synthetic
  const-str r1, "hi there"
  call-api r2, concat, r1, 2   ; r1,r2 window is illustrative
  return r1
end

method loop 0
  const-int r0, 0
  const-int r1, 5
top:
  if-ge r0, r1, @done
  add-k r0, r0, 1
  goto @top
done:
  return r0
end
endclass
blob 0a0bff
`

func TestAssembleBasics(t *testing.T) {
	f, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Class("App")
	if c == nil {
		t.Fatal("class missing")
	}
	if len(c.Fields) != 2 || c.Fields[1].Init.Str != "start" {
		t.Errorf("fields = %+v", c.Fields)
	}
	if got := len(c.Methods); got != 4 {
		t.Fatalf("methods = %d", got)
	}
	if !c.Method("bump").IsHandler() {
		t.Error("bump should be a handler")
	}
	if !c.Method("greet").IsSynthetic() {
		t.Error("greet should be synthetic")
	}
	if len(f.Blobs) != 1 || len(f.Blobs[0]) != 3 {
		t.Errorf("blobs = %v", f.Blobs)
	}
	if err := ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
	// The switch assembled with resolved targets.
	sw := c.Method("classify")
	if len(sw.Tables) != 1 || len(sw.Tables[0].Cases) != 2 {
		t.Fatalf("switch table = %+v", sw.Tables)
	}
}

func TestAssembleRoundTripThroughCodec(t *testing.T) {
	f, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	if !filesEqual(f, g) {
		t.Error("assembled file does not survive the codec")
	}
}

func TestAssembledCodeRuns(t *testing.T) {
	// Full toolchain smoke: assemble, then verify the loop's shape via
	// the disassembler (the vm package cannot be imported here; the
	// instrument tests execute assembled-equivalent code).
	f, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(f)
	for _, want := range []string{"if-ge", "goto", "switch", `"hi there"`, "App.count"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"method outside class", "method m 0\nend"},
		{"field outside class", "field x int 1"},
		{"unknown op", "class C\nmethod m 0\n  frobnicate r0\nend\nendclass"},
		{"unknown api", "class C\nmethod m 0\n  call-api -, noSuchApi, r0, 0\nend\nendclass"},
		{"bad register", "class C\nmethod m 0\n  const-int rx, 1\nend\nendclass"},
		{"undefined label", "class C\nmethod m 0\n  goto @missing\nend\nendclass"},
		{"missing end", "class C\nmethod m 0\n  nop"},
		{"missing endclass", "class C\nmethod m 0\n  nop\nend"},
		{"nested class", "class C\nclass D"},
		{"bad blob", "blob zz"},
		{"bad switch", "class C\nmethod m 1\n  switch r0, [oops], @d\nd:\nend\nendclass"},
		{"unknown flag", "class C\nmethod m 0 sparkly\nend\nendclass"},
		{"bad string", `class C` + "\nmethod m 0\n  const-str r0, unquoted\nend\nendclass"},
		{"duplicate class", "class C\nendclass\nclass C\nendclass"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Errorf("%s: assembled successfully", tc.name)
			}
		})
	}
}

func TestAssembleComments(t *testing.T) {
	src := `
class C
method m 0 ; trailing comment on method
  const-str r0, "semi;colon inside string"  ; comment after
  call-api -, log, r0, 1
end
endclass`
	f, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Lookup("semi;colon inside string"); !ok {
		t.Error("string literal with semicolon mangled by comment stripping")
	}
}

func TestAssembleNegativeAndHexInts(t *testing.T) {
	src := `
class C
field magic int 0xfff000
method m 0
  const-int r0, -42
  const-int r1, 0x1f
  return r0
end
endclass`
	f, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Class("C").Fields[0].Init.Int != 0xfff000 {
		t.Error("hex field value wrong")
	}
	code := f.Class("C").Method("m").Code
	if code[0].Imm != -42 || code[1].Imm != 0x1f {
		t.Errorf("const imms = %d, %d", code[0].Imm, code[1].Imm)
	}
}
