package dex

import (
	"strings"
	"testing"
)

func TestBuilderBranchResolution(t *testing.T) {
	f := NewFile()
	b := NewBuilder(f, "abs", 1)
	r := b.Reg()
	b.Move(r, 0)
	b.BranchZ(OpIfNez, r, "done") // if r != 0 goto done... then negate
	b.ConstInt(r, 0)
	b.Label("done")
	zero := b.Reg()
	b.ConstInt(zero, 0)
	b.Branch(OpIfGe, r, zero, "pos")
	neg := b.Reg()
	b.Emit(Instr{Op: OpNeg, A: r, B: r, C: -1})
	_ = neg
	b.Label("pos")
	b.Return(r)
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRegs < 3 {
		t.Errorf("NumRegs = %d, want >= 3", m.NumRegs)
	}
	for pc, in := range m.Code {
		if in.Op.IsBranch() && (in.C < 0 || int(in.C) >= len(m.Code)) {
			t.Errorf("pc %d: unresolved branch target %d", pc, in.C)
		}
	}
	if err := Validate(fileWith(f, m)); err != nil {
		t.Fatal(err)
	}
}

func fileWith(f *File, m *Method) *File {
	c := &Class{Name: "T"}
	c.AddMethod(m)
	g := f.Clone()
	g.Classes = append(g.Classes, c)
	return g
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 0)
	b.Goto("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined label should fail")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 0)
	b.Label("x")
	b.ConstInt(b.Reg(), 1)
	b.Label("x")
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate label should fail")
	}
}

func TestBuilderTrailingLabel(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 0)
	b.Goto("end")
	b.Label("end")
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	last := m.Code[len(m.Code)-1]
	if last.Op != OpReturnVoid {
		t.Errorf("trailing label must be backed by a return, got %s", last.Op)
	}
	if got := m.Code[0].C; int(got) != len(m.Code)-1 {
		t.Errorf("goto targets %d, want %d", got, len(m.Code)-1)
	}
}

func TestBuilderTrailingLabelAfterTerminator(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 1)
	b.BranchZ(OpIfEqz, 0, "skip")
	b.Return(0)
	b.Label("skip")
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if int(m.Code[0].C) >= len(m.Code) {
		t.Error("label after terminator left dangling")
	}
}

func TestBuilderSwitch(t *testing.T) {
	f := NewFile()
	b := NewBuilder(f, "pick", 1)
	out := b.Reg()
	b.Switch(0, []int64{1, 2}, []string{"one", "two"}, "other")
	b.Label("one")
	b.ConstInt(out, 100)
	b.Return(out)
	b.Label("two")
	b.ConstInt(out, 200)
	b.Return(out)
	b.Label("other")
	b.ConstInt(out, -1)
	b.Return(out)
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) != 1 {
		t.Fatalf("tables = %d", len(m.Tables))
	}
	tab := m.Tables[0]
	if len(tab.Cases) != 2 || tab.Cases[0].Target == 0 || tab.Default == 0 {
		t.Errorf("switch table unresolved: %+v", tab)
	}
	if err := Validate(fileWith(f, m)); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSwitchArityMismatch(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 1)
	b.Switch(0, []int64{1}, []string{"a", "b"}, "d")
	if _, err := b.Finish(); err == nil {
		t.Fatal("mismatched switch arity should fail")
	}
}

func TestBuilderArgWindowContiguous(t *testing.T) {
	f := NewFile()
	b := NewBuilder(f, "m", 0)
	r0 := b.Regs(2)
	b.ConstStr(r0, "a")
	b.ConstStr(r0+1, "b")
	before := b.PC()
	b.CallAPI(r0, APIStrConcat, r0, r0+1)
	m := b.MustFinish()
	call := m.Code[before]
	if call.Op != OpCallAPI || call.B != r0 || call.C != 2 {
		t.Errorf("contiguous args should be used in place: %+v", call)
	}
}

func TestBuilderArgWindowScattered(t *testing.T) {
	f := NewFile()
	b := NewBuilder(f, "m", 0)
	x := b.Reg()
	b.ConstStr(x, "a")
	_ = b.Reg() // hole
	y := b.Reg()
	b.ConstStr(y, "b")
	b.CallAPI(x, APIStrConcat, x, y)
	m := b.MustFinish()
	// Scattered args force copies into a fresh window before the call.
	var call *Instr
	for i := range m.Code {
		if m.Code[i].Op == OpCallAPI {
			call = &m.Code[i]
		}
	}
	if call == nil {
		t.Fatal("no call emitted")
	}
	if call.B == x {
		t.Error("scattered args should have been copied to a new window")
	}
	if err := Validate(fileWith(f, m)); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReleaseReusesRegisters(t *testing.T) {
	b := NewBuilder(NewFile(), "m", 0)
	mark := b.Mark()
	r1 := b.Reg()
	b.ConstInt(r1, 1)
	b.Release(mark)
	r2 := b.Reg()
	if r1 != r2 {
		t.Errorf("released register not reused: %d vs %d", r1, r2)
	}
}

func TestBuilderStatics(t *testing.T) {
	f := NewFile()
	b := NewBuilder(f, "bump", 0)
	r := b.Reg()
	b.GetStatic(r, "App.count")
	b.AddK(r, r, 1)
	b.PutStatic("App.count", r)
	m := b.MustFinish()
	dis := DisassembleMethod(f, m)
	if !strings.Contains(dis, "App.count") {
		t.Errorf("field ref missing from disassembly:\n%s", dis)
	}
}

func TestMustFinishPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinish should panic on error")
		}
	}()
	b := NewBuilder(NewFile(), "m", 0)
	b.Goto("missing")
	b.MustFinish()
}
