package dex

import "testing"

func TestOpString(t *testing.T) {
	for op := Op(0); op < opMax; op++ {
		s := op.String()
		if s == "" {
			t.Errorf("op %d has empty name", op)
		}
		if len(s) > 4 && s[:3] == "op(" {
			t.Errorf("op %d has no registered name", op)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	if !OpNop.Valid() || !OpArrLen.Valid() {
		t.Error("defined ops should be valid")
	}
	if opMax.Valid() || Op(255).Valid() {
		t.Error("out-of-range ops should be invalid")
	}
}

func TestBranchClassification(t *testing.T) {
	branches := []Op{OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe, OpIfEqz, OpIfNez, OpGoto}
	seen := make(map[Op]bool)
	for _, op := range branches {
		seen[op] = true
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	for op := Op(0); op < opMax; op++ {
		if op.IsBranch() != seen[op] {
			t.Errorf("%s branch classification mismatch", op)
		}
	}
	if OpGoto.IsCondBranch() {
		t.Error("goto is not conditional")
	}
	if !OpIfEq.IsCondBranch() {
		t.Error("if-eq is conditional")
	}
}

func TestTerminators(t *testing.T) {
	for _, op := range []Op{OpGoto, OpReturn, OpReturnVoid} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Op{OpIfEq, OpSwitch, OpAdd, OpInvoke} {
		if op.IsTerminator() {
			t.Errorf("%s should not be a terminator", op)
		}
	}
}

func TestNegate(t *testing.T) {
	pairs := [][2]Op{
		{OpIfEq, OpIfNe}, {OpIfLt, OpIfGe}, {OpIfGt, OpIfLe}, {OpIfEqz, OpIfNez},
	}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate(%s) <-> %s failed", p[0], p[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Negate on goto should panic")
		}
	}()
	OpGoto.Negate()
}

func TestAPINames(t *testing.T) {
	for a := APIInvalid + 1; a < apiMax; a++ {
		name := a.Name()
		if name == "" || (len(name) > 4 && name[:4] == "api(") {
			t.Errorf("API %d has no name", a)
		}
		if got := APIByName(name); got != a {
			t.Errorf("APIByName(%q) = %v, want %v", name, got, a)
		}
		if a.Cost() <= 0 {
			t.Errorf("API %s has non-positive cost", name)
		}
	}
	if APIByName("noSuchCall") != APIInvalid {
		t.Error("unknown name should map to APIInvalid")
	}
	if APIInvalid.Valid() || apiMax.Valid() {
		t.Error("sentinels must be invalid")
	}
	if !APIGetPublicKey.Valid() {
		t.Error("getPublicKey must be valid")
	}
}

func TestGetPublicKeyNameMatchesPaper(t *testing.T) {
	// The text-search attack greps for this exact token (paper §2.1).
	if APIGetPublicKey.Name() != "getPublicKey" {
		t.Fatalf("name = %q", APIGetPublicKey.Name())
	}
}
