package dex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// filesEqual compares files structurally (nil and empty slices are
// interchangeable).
func filesEqual(a, b *File) bool {
	if len(a.Strings) != len(b.Strings) || len(a.Blobs) != len(b.Blobs) || len(a.Classes) != len(b.Classes) {
		return false
	}
	for i := range a.Strings {
		if a.Strings[i] != b.Strings[i] {
			return false
		}
	}
	for i := range a.Blobs {
		if string(a.Blobs[i]) != string(b.Blobs[i]) {
			return false
		}
	}
	for i := range a.Classes {
		ca, cb := a.Classes[i], b.Classes[i]
		if ca.Name != cb.Name || len(ca.Fields) != len(cb.Fields) || len(ca.Methods) != len(cb.Methods) {
			return false
		}
		for j := range ca.Fields {
			if ca.Fields[j].Name != cb.Fields[j].Name || !ca.Fields[j].Init.Equal(cb.Fields[j].Init) {
				// Arrays compare by identity; fields in tests avoid them.
				return false
			}
		}
		for j := range ca.Methods {
			if !methodsEqual(ca.Methods[j], cb.Methods[j]) {
				return false
			}
		}
	}
	return true
}

func methodsEqual(a, b *Method) bool {
	if a.Name != b.Name || a.Class != b.Class || a.NumArgs != b.NumArgs ||
		a.NumRegs != b.NumRegs || a.Flags != b.Flags ||
		len(a.Code) != len(b.Code) || len(a.Tables) != len(b.Tables) {
		return false
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			return false
		}
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.Default != tb.Default || len(ta.Cases) != len(tb.Cases) {
			return false
		}
		for j := range ta.Cases {
			if ta.Cases[j] != tb.Cases[j] {
				return false
			}
		}
	}
	return true
}

// randomFile builds an arbitrary structurally plausible file from a
// seeded source; it is the generator for the round-trip property.
func randomFile(rng *rand.Rand) *File {
	f := NewFile()
	for i, n := 0, rng.Intn(6); i < n; i++ {
		f.Intern(randString(rng))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		f.AddBlob(b)
	}
	for ci, nc := 0, 1+rng.Intn(3); ci < nc; ci++ {
		c := &Class{Name: "C" + string(rune('A'+ci))}
		for fi, nf := 0, rng.Intn(4); fi < nf; fi++ {
			c.Fields = append(c.Fields, Field{
				Name: "f" + string(rune('a'+fi)),
				Init: randValue(rng),
			})
		}
		for mi, nm := 0, 1+rng.Intn(4); mi < nm; mi++ {
			m := &Method{
				Name:    "m" + string(rune('a'+mi)),
				NumArgs: rng.Intn(3),
				Flags:   MethodFlags(rng.Intn(8)),
			}
			m.NumRegs = m.NumArgs + rng.Intn(6)
			codeLen := 1 + rng.Intn(12)
			for pc := 0; pc < codeLen; pc++ {
				m.Code = append(m.Code, Instr{
					Op:  Op(rng.Intn(NumOps)),
					A:   int32(rng.Intn(8) - 1),
					B:   int32(rng.Intn(8) - 1),
					C:   int32(rng.Intn(codeLen)),
					Imm: rng.Int63n(1000) - 500,
				})
			}
			for ti, nt := 0, rng.Intn(2); ti < nt; ti++ {
				t := SwitchTable{Default: int32(rng.Intn(codeLen))}
				for si, ns := 0, rng.Intn(4); si < ns; si++ {
					t.Cases = append(t.Cases, SwitchCase{
						Match:  int64(si * 3),
						Target: int32(rng.Intn(codeLen)),
					})
				}
				m.Tables = append(m.Tables, t)
			}
			c.AddMethod(m)
		}
		f.Classes = append(f.Classes, c)
	}
	return f
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	return string(b)
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Nil()
	case 1:
		return Int64(rng.Int63n(2000) - 1000)
	case 2:
		return Str(randString(rng))
	default:
		b := make([]byte, rng.Intn(10))
		rng.Read(b)
		return Bytes(b)
	}
}

// Property: Decode(Encode(f)) is structurally identical to f.
func TestCodecRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		f := randomFile(rand.New(rand.NewSource(seed)))
		got, err := Decode(Encode(f))
		if err != nil {
			t.Logf("seed %d: decode error: %v", seed, err)
			return false
		}
		return filesEqual(f, got)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is deterministic.
func TestEncodeDeterministic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		f := randomFile(rand.New(rand.NewSource(seed)))
		return string(Encode(f)) == string(Encode(f.Clone()))
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a dex file")); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
	if _, err := Decode(nil); err != ErrBadMagic {
		t.Errorf("nil input: want ErrBadMagic, got %v", err)
	}
	// Truncations after a valid magic must error, never panic.
	f := randomFile(rand.New(rand.NewSource(1)))
	enc := Encode(f)
	for cut := len(magic); cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			// Some prefixes may decode if counts happen to read short,
			// but the shortest ones must fail.
			if cut < len(magic)+2 {
				t.Errorf("truncation at %d decoded successfully", cut)
			}
		}
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	var e encoder
	e.buf.WriteString(magic)
	e.uvarint(formatVersion)
	e.uvarint(uint64(maxPoolEntries) + 1) // absurd string count
	if _, err := Decode(e.buf.Bytes()); err == nil {
		t.Error("huge count should be rejected")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	var e encoder
	e.buf.WriteString(magic)
	e.uvarint(99)
	if _, err := Decode(e.buf.Bytes()); err == nil {
		t.Error("bad version should be rejected")
	}
}

func TestDecodeRejectsUnknownOpcode(t *testing.T) {
	f := NewFile()
	c := &Class{Name: "C"}
	c.AddMethod(&Method{Name: "m", NumRegs: 1, Code: []Instr{{Op: OpNop}}})
	f.Classes = append(f.Classes, c)
	enc := Encode(f)
	// The opcode byte of the only instruction is followed by 4 varints;
	// find it by encoding a marker: corrupt the last 5 bytes' first.
	enc[len(enc)-7] = 0xEE // inside the method body; op byte region
	if _, err := Decode(enc); err == nil {
		t.Skip("corruption did not land on the opcode byte")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := randomFile(rand.New(rand.NewSource(42)))
	g := f.Clone()
	if !filesEqual(f, g) {
		t.Fatal("clone differs from original")
	}
	g.Strings[0] = "mutated"
	g.Classes[0].Methods[0].Code[0].Imm = 424242
	if f.Strings[0] == "mutated" {
		t.Error("clone shares string pool")
	}
	if f.Classes[0].Methods[0].Code[0].Imm == 424242 {
		t.Error("clone shares code")
	}
}
