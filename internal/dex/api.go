package dex

import "fmt"

// API identifies an Android-framework / runtime intrinsic invoked by
// OpCallAPI. The set mirrors what the paper's apps, bombs, and the SSN
// baseline need from the platform: certificate and manifest access,
// environment/sensor reads, string methods, the bomb runtime
// (hash / decrypt-and-load / invoke-payload), detection responses, and
// the reflection entry point SSN hides behind.
type API uint16

// Framework and intrinsic API identifiers.
const (
	APIInvalid API = iota

	// Package/certificate access (repackaging detection sources).
	APIGetPublicKey      // () -> Str: hex public key of the installed certificate
	APIGetManifestDigest // (name Str) -> Str: per-file digest from MANIFEST.MF
	APIGetResourceString // (idx Int) -> Str: entry from strings.xml
	APIStegoExtract      // (s Str) -> Str: digest fragment hidden in a resource string
	APICodeDigest        // (class Str) -> Str: runtime digest of a loaded class body

	// Environment, time, sensors (inner-trigger sources).
	APIGetEnvStr   // (name Str) -> Str: device property, e.g. "brand"
	APIGetEnvInt   // (name Str) -> Int: device property, e.g. "api_level"
	APITimeMillis  // () -> Int: virtual wall clock
	APIGPSLatE6    // () -> Int: latitude microdegrees
	APIGPSLonE6    // () -> Int: longitude microdegrees
	APISensorLight // () -> Int: ambient light (lux)
	APISensorTempC // () -> Int: temperature (°C)
	APIRandInt     // (bound Int) -> Int in [0, bound)
	APIRandPercent // () -> Int in [0, 10000): SSN's rand() scaled by 1e4
	APILog         // (msg Str) -> void
	APIUIDraw      // (complexity Int) -> void: cost-bearing UI update
	APIPlaySound   // (id Int) -> void: cost-bearing media call
	APIVibrate     // (ms Int) -> void

	// String methods (QC-eligible comparisons and helpers).
	APIStrEquals     // (a, b Str) -> Int 0/1
	APIStrStartsWith // (a, prefix Str) -> Int 0/1
	APIStrEndsWith   // (a, suffix Str) -> Int 0/1
	APIStrContains   // (a, sub Str) -> Int 0/1
	APIStrConcat     // (a, b Str) -> Str
	APIStrLen        // (a Str) -> Int
	APIStrSubstr     // (a Str, lo, hi Int) -> Str
	APIStrCharAt     // (a Str, i Int) -> Int
	APIStrFromInt    // (v Int) -> Str
	APIStrToInt      // (a Str) -> Int (0 on parse failure)
	APIStrHashCode   // (a Str) -> Int (Java String.hashCode)

	// Bomb runtime.
	APISHA1Hex     // (x Value, salt Str) -> Str: hex SHA-1 of Repr(x)|salt
	APIDecryptLoad // (blob Int, x Value, salt Str) -> Handle: decrypt
	//               Blobs[blob] under KDF(x|salt), decode, install classes
	APIInvokePayload // (h Handle, args...) -> Value: run payload entry

	// Detection responses (paper §4.2).
	APIReportPiracy // (info Str) -> void: send report to the developer
	APIWarnUser     // (msg Str) -> void: dialog/toast warning
	APICrash        // () -> aborts the app
	APILeakMemory   // (kb Int) -> void: grow a static leak
	APISpinLoop     // (ms Int) -> void: burn virtual time (freeze)
	APIDelayBomb    // (ms Int, kind Int) -> void: schedule a delayed response (SSN)

	// Reflection (SSN's concealment vehicle).
	APIReflectCall // (name Str, args...) -> dispatches the named API
	APIDeobfuscate // (s Str, key Int) -> Str: XOR-deobfuscate a name

	apiMax // sentinel; keep last
)

// NumAPIs is the number of defined API identifiers.
const NumAPIs = int(apiMax)

type apiInfo struct {
	name string // Java-flavoured reflection name
	cost int64  // virtual-clock ticks per call
}

var apiInfos = [...]apiInfo{
	APIInvalid:           {"<invalid>", 0},
	APIGetPublicKey:      {"getPublicKey", 180},
	APIGetManifestDigest: {"getManifestDigest", 150},
	APIGetResourceString: {"getResourceString", 40},
	APIStegoExtract:      {"stegoExtract", 60},
	APICodeDigest:        {"codeDigest", 220},
	APIGetEnvStr:         {"getEnvString", 30},
	APIGetEnvInt:         {"getEnvInt", 30},
	APITimeMillis:        {"currentTimeMillis", 10},
	APIGPSLatE6:          {"getLatitude", 80},
	APIGPSLonE6:          {"getLongitude", 80},
	APISensorLight:       {"getLightLux", 50},
	APISensorTempC:       {"getTemperature", 50},
	APIRandInt:           {"randInt", 12},
	APIRandPercent:       {"randPercent", 12},
	APILog:               {"log", 25},
	APIUIDraw:            {"uiDraw", 120},
	APIPlaySound:         {"playSound", 90},
	APIVibrate:           {"vibrate", 40},
	APIStrEquals:         {"equals", 8},
	APIStrStartsWith:     {"startsWith", 8},
	APIStrEndsWith:       {"endsWith", 8},
	APIStrContains:       {"contains", 10},
	APIStrConcat:         {"concat", 12},
	APIStrLen:            {"length", 4},
	APIStrSubstr:         {"substring", 10},
	APIStrCharAt:         {"charAt", 4},
	APIStrFromInt:        {"toString", 10},
	APIStrToInt:          {"parseInt", 10},
	APIStrHashCode:       {"hashCode", 10},
	APISHA1Hex:           {"sha1Hex", 60},
	APIDecryptLoad:       {"decryptLoad", 400},
	APIInvokePayload:     {"invokePayload", 30},
	APIReportPiracy:      {"reportPiracy", 200},
	APIWarnUser:          {"warnUser", 100},
	APICrash:             {"crash", 10},
	APILeakMemory:        {"leakMemory", 30},
	APISpinLoop:          {"spinLoop", 10},
	APIDelayBomb:         {"delayBomb", 20},
	APIReflectCall:       {"reflectCall", 90},
	APIDeobfuscate:       {"deobfuscate", 20},
}

// Valid reports whether a is a defined API identifier.
func (a API) Valid() bool { return a > APIInvalid && a < apiMax }

// Name returns the reflection name of the API (the string SSN
// obfuscates, and the text an attacker greps for).
func (a API) Name() string {
	if int(a) < len(apiInfos) && apiInfos[a].name != "" {
		return apiInfos[a].name
	}
	return fmt.Sprintf("api(%d)", uint16(a))
}

// Cost returns the virtual-clock ticks one call consumes, on top of
// per-instruction accounting. Costs are rough relative magnitudes of
// framework-call latency (a binder call costs far more than a string
// compare) so that the overhead evaluation has a realistic cost model.
func (a API) Cost() int64 {
	if int(a) < len(apiInfos) {
		return apiInfos[a].cost
	}
	return 10
}

// APIByName resolves a reflection name to its API id, returning
// APIInvalid when unknown. This is the dispatch used by
// APIReflectCall.
func APIByName(name string) API {
	return apiNameIndex[name]
}

var apiNameIndex = func() map[string]API {
	m := make(map[string]API, len(apiInfos))
	for i, inf := range apiInfos {
		if API(i) == APIInvalid || inf.name == "" {
			continue
		}
		m[inf.name] = API(i)
	}
	return m
}()
