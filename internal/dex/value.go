package dex

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the dynamic type of a Value.
type ValueKind uint8

// Value kinds.
const (
	KindNil    ValueKind = iota
	KindInt              // 64-bit signed integer (also booleans: 0/1)
	KindStr              // immutable string
	KindBytes            // opaque byte blob (encrypted payloads etc.)
	KindArr              // mutable reference to a slice of Values
	KindHandle           // runtime handle (loaded payload id) in Int
)

var kindNames = [...]string{
	KindNil:    "nil",
	KindInt:    "int",
	KindStr:    "str",
	KindBytes:  "bytes",
	KindArr:    "arr",
	KindHandle: "handle",
}

// String returns the kind's name.
func (k ValueKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is the dynamically typed slot stored in registers, static
// fields, and arrays. The zero Value is nil.
type Value struct {
	Kind  ValueKind
	Int   int64
	Str   string
	Bytes []byte
	Arr   *[]Value
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int64 wraps an integer.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Bool wraps a boolean as 0/1.
func Bool(b bool) Value {
	if b {
		return Int64(1)
	}
	return Int64(0)
}

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindStr, Str: s} }

// Bytes wraps a byte blob.
func Bytes(b []byte) Value { return Value{Kind: KindBytes, Bytes: b} }

// NewArr allocates an array value of the given length.
func NewArr(n int) Value {
	s := make([]Value, n)
	return Value{Kind: KindArr, Arr: &s}
}

// Handle wraps a runtime handle id.
func Handle(id int64) Value { return Value{Kind: KindHandle, Int: id} }

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// Truthy reports whether v counts as true in a zero-test branch:
// nonzero integers/handles, nonempty strings/blobs/arrays.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindNil:
		return false
	case KindInt, KindHandle:
		return v.Int != 0
	case KindStr:
		return v.Str != ""
	case KindBytes:
		return len(v.Bytes) != 0
	case KindArr:
		return v.Arr != nil && len(*v.Arr) != 0
	}
	return false
}

// Equal reports deep equality of two values. Arrays compare by
// reference identity (aliasing semantics), matching Java == on objects.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNil:
		return true
	case KindInt, KindHandle:
		return v.Int == o.Int
	case KindStr:
		return v.Str == o.Str
	case KindBytes:
		return string(v.Bytes) == string(o.Bytes)
	case KindArr:
		return v.Arr == o.Arr
	}
	return false
}

// Repr returns a canonical byte representation of the value, used as
// key material when a bomb derives its decryption key from the trigger
// operand: Hash(Repr(X) | salt). Two equal values always share a Repr,
// and within a kind the mapping is injective.
func (v Value) Repr() []byte {
	switch v.Kind {
	case KindInt:
		return []byte("i:" + strconv.FormatInt(v.Int, 10))
	case KindStr:
		return append([]byte("s:"), v.Str...)
	case KindBytes:
		return append([]byte("b:"), v.Bytes...)
	case KindHandle:
		return []byte("h:" + strconv.FormatInt(v.Int, 10))
	default:
		return []byte("nil")
	}
}

// String renders the value for disassembly and debug output.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindStr:
		return strconv.Quote(v.Str)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.Bytes))
	case KindArr:
		if v.Arr == nil {
			return "arr(nil)"
		}
		return fmt.Sprintf("arr[%d]", len(*v.Arr))
	case KindHandle:
		return fmt.Sprintf("handle(%d)", v.Int)
	}
	return "?"
}
