// Package dex defines the register-based bytecode that stands in for
// Dalvik bytecode in this reproduction. A dex.File is the unit the
// BombDroid pipeline instruments, the VM executes, and the APK
// container packages; it supports binary round-tripping, structural
// validation, and disassembly.
//
// The instruction set deliberately mirrors the parts of Dalvik/Java
// bytecode the paper's analyses care about: equality branches
// (IFEQ/IFNE/IF_ICMPEQ/IF_ICMPNE), table switches, string comparison
// calls (equals/startsWith/endsWith), static fields, and dynamic code
// loading — everything needed for qualified-condition discovery, bomb
// injection, and payload extraction.
package dex

import "fmt"

// Op identifies a bytecode operation.
type Op uint8

// Instruction opcodes. The comments give the operand roles:
// A, B, C are register indices unless noted; Imm is an immediate.
const (
	OpNop Op = iota

	// Constants and moves.
	OpConstInt // A = Imm
	OpConstStr // A = strings[Imm]
	OpMove     // A = B

	// Integer arithmetic, A = B op C.
	OpAdd
	OpSub
	OpMul
	OpDiv // traps on zero divisor
	OpRem // traps on zero divisor
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg  // A = -B
	OpNot  // A = ^B
	OpAddK // A = B + Imm

	// Branches. C is the branch target (instruction index).
	OpIfEq  // if A == B goto C   (IF_ICMPEQ)
	OpIfNe  // if A != B goto C   (IF_ICMPNE)
	OpIfLt  // if A <  B goto C
	OpIfLe  // if A <= B goto C
	OpIfGt  // if A >  B goto C
	OpIfGe  // if A >= B goto C
	OpIfEqz // if A == 0 goto C   (IFEQ)
	OpIfNez // if A != 0 goto C   (IFNE)
	OpGoto  // goto C

	// OpSwitch dispatches on register A using Tables[Imm] (TABLESWITCH).
	OpSwitch

	// Calls. Imm names the target; args live in registers [B, B+C).
	OpInvoke  // A = invoke strings[Imm](regs B..B+C-1); A == -1 for void
	OpCallAPI // A = api(Imm)(regs B..B+C-1); A == -1 for void

	// Returns.
	OpReturn     // return A
	OpReturnVoid // return

	// Static fields. Imm is a string-pool index of "Class.Field".
	OpGetStatic // A = statics[strings[Imm]]
	OpPutStatic // statics[strings[Imm]] = A

	// Arrays of values.
	OpNewArr // A = new array of length reg B
	OpALoad  // A = B[C]
	OpAStore // A[B] = C
	OpArrLen // A = len(B)

	opMax // sentinel; keep last
)

// NumOps is the number of defined opcodes.
const NumOps = int(opMax)

var opNames = [...]string{
	OpNop:        "nop",
	OpConstInt:   "const-int",
	OpConstStr:   "const-str",
	OpMove:       "move",
	OpAdd:        "add",
	OpSub:        "sub",
	OpMul:        "mul",
	OpDiv:        "div",
	OpRem:        "rem",
	OpAnd:        "and",
	OpOr:         "or",
	OpXor:        "xor",
	OpShl:        "shl",
	OpShr:        "shr",
	OpNeg:        "neg",
	OpNot:        "not",
	OpAddK:       "add-k",
	OpIfEq:       "if-eq",
	OpIfNe:       "if-ne",
	OpIfLt:       "if-lt",
	OpIfLe:       "if-le",
	OpIfGt:       "if-gt",
	OpIfGe:       "if-ge",
	OpIfEqz:      "if-eqz",
	OpIfNez:      "if-nez",
	OpGoto:       "goto",
	OpSwitch:     "switch",
	OpInvoke:     "invoke",
	OpCallAPI:    "call-api",
	OpReturn:     "return",
	OpReturnVoid: "return-void",
	OpGetStatic:  "get-static",
	OpPutStatic:  "put-static",
	OpNewArr:     "new-arr",
	OpALoad:      "aload",
	OpAStore:     "astore",
	OpArrLen:     "arr-len",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opMax }

// IsBranch reports whether the instruction's C operand is a branch
// target (conditional branches and goto; OpSwitch targets live in its
// table instead).
func (o Op) IsBranch() bool {
	switch o {
	case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe, OpIfEqz, OpIfNez, OpGoto:
		return true
	}
	return false
}

// IsCondBranch reports whether o is a conditional branch (falls through
// when the condition is false).
func (o Op) IsCondBranch() bool {
	return o.IsBranch() && o != OpGoto
}

// IsTerminator reports whether control never falls through to the next
// instruction.
func (o Op) IsTerminator() bool {
	switch o {
	case OpGoto, OpReturn, OpReturnVoid:
		return true
	}
	return false
}

// Negate returns the conditional branch with the opposite condition.
// It panics if o is not a conditional branch.
func (o Op) Negate() Op {
	switch o {
	case OpIfEq:
		return OpIfNe
	case OpIfNe:
		return OpIfEq
	case OpIfLt:
		return OpIfGe
	case OpIfGe:
		return OpIfLt
	case OpIfGt:
		return OpIfLe
	case OpIfLe:
		return OpIfGt
	case OpIfEqz:
		return OpIfNez
	case OpIfNez:
		return OpIfEqz
	}
	panic("dex: Negate on non-conditional op " + o.String())
}

// IsArith reports whether o is a two-register integer arithmetic
// instruction (A = B op C).
func (o Op) IsArith() bool {
	return o >= OpAdd && o <= OpShr
}

// IsIfCmp reports whether o is a two-register compare-and-branch
// (IF_ICMPxx); the zero-test forms IfEqz/IfNez are not included.
func (o Op) IsIfCmp() bool {
	return o >= OpIfEq && o <= OpIfGe
}

// UsesStringImm reports whether Imm indexes the string pool.
func (o Op) UsesStringImm() bool {
	switch o {
	case OpConstStr, OpInvoke, OpGetStatic, OpPutStatic:
		return true
	}
	return false
}

// Instr is a single bytecode instruction. Operand meaning depends on
// the opcode; unused register operands are conventionally -1.
type Instr struct {
	Op      Op
	A, B, C int32
	Imm     int64
}

// SwitchCase is one arm of a table switch.
type SwitchCase struct {
	Match  int64 // value compared against the switch register
	Target int32 // instruction index jumped to on match
}

// SwitchTable is the jump table for an OpSwitch instruction.
type SwitchTable struct {
	Cases   []SwitchCase
	Default int32 // target when no case matches
}
