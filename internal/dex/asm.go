package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler syntax — a line-oriented textual form of a dex file,
// complementing the disassembler for hand-written test programs and
// tooling round-trips:
//
//	class App
//	field count int 0
//	field title str "start"
//	method bump 0 handler
//	  get-static r0, App.count
//	  add-k r0, r0, 1
//	  put-static App.count, r0
//	  return r0
//	end
//	method spin 0
//	top:
//	  goto @top
//	end
//	endclass
//	blob 0a0b0c
//
// Registers are rN; branch targets are @label; string literals are
// Go-quoted; API calls use `call-api rDst, name, rBase, argc` with
// `-` as the void destination; invokes use
// `invoke rDst, Class.Method, rBase, argc`. Switches:
//
//	switch r0, [1=@one 2=@two], @default
type asmParser struct {
	file   *File
	lineNo int
}

// Assemble parses the textual form into a File.
func Assemble(src string) (*File, error) {
	p := &asmParser{file: NewFile()}
	lines := strings.Split(src, "\n")

	var curClass *Class
	type pendingMethod struct {
		name    string
		numArgs int
		flags   MethodFlags
		lines   []string
		lineNos []int
	}
	var curMethod *pendingMethod

	flush := func() error {
		if curMethod == nil {
			return nil
		}
		m, err := p.assembleMethod(curMethod.name, curMethod.numArgs, curMethod.flags, curMethod.lines, curMethod.lineNos)
		if err != nil {
			return err
		}
		curClass.AddMethod(m)
		curMethod = nil
		return nil
	}

	for i, raw := range lines {
		p.lineNo = i + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if curMethod != nil && line != "end" {
			curMethod.lines = append(curMethod.lines, line)
			curMethod.lineNos = append(curMethod.lineNos, i+1)
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "class":
			if curClass != nil {
				return nil, p.errf("nested class")
			}
			if len(fields) != 2 {
				return nil, p.errf("class wants a name")
			}
			curClass = &Class{Name: fields[1]}
		case "endclass":
			if curClass == nil {
				return nil, p.errf("endclass without class")
			}
			if err := p.file.AddClass(curClass); err != nil {
				return nil, p.errf("%v", err)
			}
			curClass = nil
		case "field":
			if curClass == nil {
				return nil, p.errf("field outside class")
			}
			fd, err := p.parseField(line)
			if err != nil {
				return nil, err
			}
			curClass.Fields = append(curClass.Fields, fd)
		case "method":
			if curClass == nil {
				return nil, p.errf("method outside class")
			}
			if len(fields) < 3 {
				return nil, p.errf("method wants: method <name> <numArgs> [flags]")
			}
			numArgs, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, p.errf("bad arg count %q", fields[2])
			}
			var flags MethodFlags
			if len(fields) > 3 {
				for _, fl := range strings.Split(fields[3], ",") {
					switch fl {
					case "handler":
						flags |= FlagHandler
					case "init":
						flags |= FlagInit
					case "synthetic":
						flags |= FlagSynthetic
					default:
						return nil, p.errf("unknown flag %q", fl)
					}
				}
			}
			curMethod = &pendingMethod{name: fields[1], numArgs: numArgs, flags: flags}
		case "end":
			if err := flush(); err != nil {
				return nil, err
			}
		case "blob":
			if len(fields) != 2 {
				return nil, p.errf("blob wants hex bytes")
			}
			b, err := hexDecode(fields[1])
			if err != nil {
				return nil, p.errf("bad blob: %v", err)
			}
			p.file.AddBlob(b)
		default:
			return nil, p.errf("unexpected %q", fields[0])
		}
	}
	if curMethod != nil {
		return nil, fmt.Errorf("dex asm: method %q missing end", curMethod.name)
	}
	if curClass != nil {
		return nil, fmt.Errorf("dex asm: class %q missing endclass", curClass.Name)
	}
	if err := Validate(p.file); err != nil {
		return nil, fmt.Errorf("dex asm: assembled file invalid: %w", err)
	}
	return p.file, nil
}

func stripComment(line string) string {
	// Comments start with ';' outside string literals.
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';':
			if !inStr {
				return strings.TrimSpace(line[:i])
			}
		}
	}
	return strings.TrimSpace(line)
}

func (p *asmParser) errf(format string, a ...any) error {
	return fmt.Errorf("dex asm: line %d: %s", p.lineNo, fmt.Sprintf(format, a...))
}

// parseField parses `field <name> <kind> <value>`.
func (p *asmParser) parseField(line string) (Field, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Field{}, p.errf("field wants: field <name> <kind> [value]")
	}
	fd := Field{Name: fields[1]}
	switch fields[2] {
	case "int":
		if len(fields) != 4 {
			return Field{}, p.errf("int field wants a value")
		}
		v, err := strconv.ParseInt(fields[3], 0, 64)
		if err != nil {
			return Field{}, p.errf("bad int %q", fields[3])
		}
		fd.Init = Int64(v)
	case "str":
		rest := strings.TrimSpace(line[strings.Index(line, "str")+3:])
		s, err := strconv.Unquote(rest)
		if err != nil {
			return Field{}, p.errf("bad string %q", rest)
		}
		fd.Init = Str(s)
	case "nil":
		fd.Init = Nil()
	default:
		return Field{}, p.errf("unknown field kind %q", fields[2])
	}
	return fd, nil
}

// assembleMethod parses method body lines using a Builder.
func (p *asmParser) assembleMethod(name string, numArgs int, flags MethodFlags, lines []string, lineNos []int) (*Method, error) {
	b := NewBuilder(p.file, name, numArgs)
	b.SetFlags(flags)
	maxReg := int32(numArgs) - 1

	reg := func(tok string) (int32, error) {
		tok = strings.TrimSuffix(tok, ",")
		if tok == "-" {
			return -1, nil
		}
		if !strings.HasPrefix(tok, "r") {
			return 0, fmt.Errorf("expected register, got %q", tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad register %q", tok)
		}
		if int32(n) > maxReg {
			maxReg = int32(n)
		}
		return int32(n), nil
	}
	imm := func(tok string) (int64, error) {
		return strconv.ParseInt(strings.TrimSuffix(tok, ","), 0, 64)
	}
	label := func(tok string) (string, error) {
		tok = strings.TrimSuffix(tok, ",")
		if !strings.HasPrefix(tok, "@") {
			return "", fmt.Errorf("expected @label, got %q", tok)
		}
		return tok[1:], nil
	}

	for li, line := range lines {
		p.lineNo = lineNos[li]
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			b.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		toks := strings.Fields(line)
		op, ok := opByName[toks[0]]
		if !ok {
			return nil, p.errf("unknown op %q", toks[0])
		}
		var err error
		switch op {
		case OpNop:
			b.Emit(Instr{Op: OpNop, A: -1, B: -1, C: -1})
		case OpReturnVoid:
			b.ReturnVoid()
		case OpConstInt:
			err = p.arg2(toks, func(dst int32, v int64) { b.ConstInt(dst, v) }, reg, imm)
		case OpAddK:
			if len(toks) != 4 {
				return nil, p.errf("add-k wants 3 operands")
			}
			var dst, src int32
			var k int64
			if dst, err = reg(toks[1]); err == nil {
				if src, err = reg(toks[2]); err == nil {
					if k, err = imm(toks[3]); err == nil {
						b.AddK(dst, src, k)
					}
				}
			}
		case OpConstStr:
			if len(toks) < 3 {
				return nil, p.errf("const-str wants rDst, \"lit\"")
			}
			dst, rerr := reg(toks[1])
			if rerr != nil {
				return nil, p.errf("%v", rerr)
			}
			lit := strings.TrimSpace(line[strings.Index(line, toks[1])+len(toks[1]):])
			lit = strings.TrimPrefix(strings.TrimSpace(lit), ",")
			s, uerr := strconv.Unquote(strings.TrimSpace(lit))
			if uerr != nil {
				return nil, p.errf("bad string literal: %v", uerr)
			}
			b.ConstStr(dst, s)
		case OpMove, OpNeg, OpNot, OpNewArr, OpArrLen:
			err = p.regreg(toks, func(a, bb int32) {
				b.Emit(Instr{Op: op, A: a, B: bb, C: -1})
			}, reg)
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpALoad, OpAStore:
			err = p.regregreg(toks, func(a, bb, c int32) {
				b.Emit(Instr{Op: op, A: a, B: bb, C: c})
			}, reg)
		case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
			if len(toks) != 4 {
				return nil, p.errf("%s wants rA, rB, @label", op)
			}
			var x, y int32
			var lbl string
			if x, err = reg(toks[1]); err == nil {
				if y, err = reg(toks[2]); err == nil {
					if lbl, err = label(toks[3]); err == nil {
						b.Branch(op, x, y, lbl)
					}
				}
			}
		case OpIfEqz, OpIfNez:
			if len(toks) != 3 {
				return nil, p.errf("%s wants rA, @label", op)
			}
			var x int32
			var lbl string
			if x, err = reg(toks[1]); err == nil {
				if lbl, err = label(toks[2]); err == nil {
					b.BranchZ(op, x, lbl)
				}
			}
		case OpGoto:
			if len(toks) != 2 {
				return nil, p.errf("goto wants @label")
			}
			var lbl string
			if lbl, err = label(toks[1]); err == nil {
				b.Goto(lbl)
			}
		case OpSwitch:
			err = p.parseSwitch(b, line, toks, reg)
		case OpInvoke:
			if len(toks) != 5 {
				return nil, p.errf("invoke wants rDst, Class.Method, rBase, argc")
			}
			var dst, base int32
			var argc int64
			if dst, err = reg(toks[1]); err == nil {
				if base, err = reg(toks[3]); err == nil {
					if argc, err = imm(toks[4]); err == nil {
						b.Emit(Instr{Op: OpInvoke, A: dst, B: base, C: int32(argc),
							Imm: p.file.Intern(strings.TrimSuffix(toks[2], ","))})
					}
				}
			}
		case OpCallAPI:
			if len(toks) != 5 {
				return nil, p.errf("call-api wants rDst, name, rBase, argc")
			}
			api := APIByName(strings.TrimSuffix(toks[2], ","))
			if !api.Valid() {
				return nil, p.errf("unknown API %q", toks[2])
			}
			var dst, base int32
			var argc int64
			if dst, err = reg(toks[1]); err == nil {
				if base, err = reg(toks[3]); err == nil {
					if argc, err = imm(toks[4]); err == nil {
						b.Emit(Instr{Op: OpCallAPI, A: dst, B: base, C: int32(argc), Imm: int64(api)})
					}
				}
			}
		case OpReturn:
			if len(toks) != 2 {
				return nil, p.errf("return wants a register")
			}
			var x int32
			if x, err = reg(toks[1]); err == nil {
				b.Return(x)
			}
		case OpGetStatic:
			if len(toks) != 3 {
				return nil, p.errf("get-static wants rDst, Class.Field")
			}
			var dst int32
			if dst, err = reg(toks[1]); err == nil {
				b.GetStatic(dst, strings.TrimSuffix(toks[2], ","))
			}
		case OpPutStatic:
			if len(toks) != 3 {
				return nil, p.errf("put-static wants Class.Field, rSrc")
			}
			var src int32
			if src, err = reg(toks[2]); err == nil {
				b.PutStatic(strings.TrimSuffix(toks[1], ","), src)
			}
		default:
			return nil, p.errf("op %q not supported in assembly", op)
		}
		if err != nil {
			return nil, p.errf("%v", err)
		}
	}
	m, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("dex asm: method %s: %w", name, err)
	}
	if int(maxReg)+1 > m.NumRegs {
		m.NumRegs = int(maxReg) + 1
	}
	return m, nil
}

// parseSwitch handles: switch r0, [1=@one 2=@two], @default
func (p *asmParser) parseSwitch(b *Builder, line string, toks []string, reg func(string) (int32, error)) error {
	if len(toks) < 3 {
		return fmt.Errorf("switch wants: switch rX, [v=@label …], @default")
	}
	r, err := reg(toks[1])
	if err != nil {
		return err
	}
	lb := strings.Index(line, "[")
	rb := strings.Index(line, "]")
	if lb < 0 || rb < lb {
		return fmt.Errorf("switch wants a [v=@label …] table")
	}
	var matches []int64
	var caseLabels []string
	for _, pair := range strings.Fields(line[lb+1 : rb]) {
		eq := strings.Index(pair, "=@")
		if eq < 0 {
			return fmt.Errorf("bad switch case %q", pair)
		}
		v, err := strconv.ParseInt(pair[:eq], 0, 64)
		if err != nil {
			return fmt.Errorf("bad switch value %q", pair[:eq])
		}
		matches = append(matches, v)
		caseLabels = append(caseLabels, pair[eq+2:])
	}
	rest := strings.TrimSpace(line[rb+1:])
	rest = strings.TrimPrefix(rest, ",")
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return fmt.Errorf("switch wants @default after the table")
	}
	b.Switch(r, matches, caseLabels, rest[1:])
	return nil
}

func (p *asmParser) arg2(toks []string, emit func(int32, int64), reg func(string) (int32, error), imm func(string) (int64, error)) error {
	if len(toks) != 3 {
		return fmt.Errorf("%s wants 2 operands", toks[0])
	}
	r, err := reg(toks[1])
	if err != nil {
		return err
	}
	v, err := imm(toks[2])
	if err != nil {
		return err
	}
	emit(r, v)
	return nil
}

func (p *asmParser) regreg(toks []string, emit func(int32, int32), reg func(string) (int32, error)) error {
	if len(toks) != 3 {
		return fmt.Errorf("%s wants 2 registers", toks[0])
	}
	a, err := reg(toks[1])
	if err != nil {
		return err
	}
	b, err := reg(toks[2])
	if err != nil {
		return err
	}
	emit(a, b)
	return nil
}

func (p *asmParser) regregreg(toks []string, emit func(int32, int32, int32), reg func(string) (int32, error)) error {
	if len(toks) != 4 {
		return fmt.Errorf("%s wants 3 registers", toks[0])
	}
	a, err := reg(toks[1])
	if err != nil {
		return err
	}
	b, err := reg(toks[2])
	if err != nil {
		return err
	}
	c, err := reg(toks[3])
	if err != nil {
		return err
	}
	emit(a, b, c)
	return nil
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}()

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		v, err := strconv.ParseUint(s[i*2:i*2+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}
