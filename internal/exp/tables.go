package exp

import (
	"fmt"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/cfg"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/sim"
	"bombdroid/internal/vm"
)

// Table1Row mirrors one row of paper Table 1.
type Table1Row struct {
	Category     string
	Apps         int
	AvgLOC       int
	AvgCandidate int
	AvgQCs       int
	AvgEnvVars   int
}

// Table1 computes the static characteristics of the corpus. With
// AppsPerCategory == 0 it generates all 963 apps.
func Table1(sc Scale) ([]Table1Row, error) {
	sc = sc.withDefaults()
	var rows []Table1Row
	for _, spec := range appgen.Categories {
		var nApps, loc, cand, qcs, env int
		visit := func(app *appgen.App) error {
			nApps++
			loc += app.LOC
			methods := len(app.File.Methods())
			// Candidate methods = all but the top-10% hot (paper §7.1).
			cand += methods - methods/10
			for _, m := range app.File.Methods() {
				// Count distinct condition sites (a switch is one
				// site regardless of its case count), matching how a
				// static tool reports "the number of existing QCs".
				sites := map[int]bool{}
				for _, q := range cfg.FindQCs(app.File, m) {
					if !q.InLoop {
						sites[q.CondPC] = true
					}
				}
				qcs += len(sites)
			}
			env += len(app.EnvVarNames)
			return nil
		}
		var err error
		if sc.AppsPerCategory > 0 {
			err = appgen.SampleCategory(spec, sc.AppsPerCategory, visit)
		} else {
			err = appgen.GenerateCategory(spec, visit)
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Category:     spec.Name,
			Apps:         spec.Apps,
			AvgLOC:       loc / nApps,
			AvgCandidate: cand / nApps,
			AvgQCs:       qcs / nApps,
			AvgEnvVars:   env / nApps,
		})
	}
	return rows, nil
}

// Table2Row mirrors one row of paper Table 2.
type Table2Row struct {
	App        string
	Bombs      int
	Existing   int
	Artificial int
	Bogus      int // extra visibility; the paper folds these elsewhere
}

// Table2 reports injected logic bombs for the named apps.
func Table2(sc Scale) ([]Table2Row, error) {
	sc = sc.withDefaults()
	var rows []Table2Row
	for _, name := range sc.Apps {
		p, err := Prepare(name, sc.ProfileEvents)
		if err != nil {
			return nil, err
		}
		st := p.Result.Stats
		rows = append(rows, Table2Row{
			App:        name,
			Bombs:      st.Bombs(),
			Existing:   st.BombsExisting,
			Artificial: st.BombsArtificial,
			Bogus:      st.BombsBogus,
		})
	}
	return rows, nil
}

// Table3Row mirrors one row of paper Table 3.
type Table3Row struct {
	App      string
	MinSec   float64
	MaxSec   float64
	AvgSec   float64
	Success  int
	Sessions int
}

// Table3 measures time to the first triggered bomb across user
// sessions on population devices (testers vary configurations between
// runs; sessions start at arbitrary wall-clock times).
func Table3(sc Scale) ([]Table3Row, error) {
	sc = sc.withDefaults()
	var rows []Table3Row
	for _, name := range sc.Apps {
		p, err := Prepare(name, sc.ProfileEvents)
		if err != nil {
			return nil, err
		}
		cr, err := sim.RunCampaign(p.Pirated, p.Surface, sc.SessionsPerApp,
			int64(sc.SessionCapMin)*60_000, seedFor(name)+7)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			App:      name,
			MinSec:   float64(cr.MinMs) / 1000,
			MaxSec:   float64(cr.MaxMs) / 1000,
			AvgSec:   float64(cr.AvgMs) / 1000,
			Success:  cr.Successes,
			Sessions: cr.Sessions,
		})
	}
	return rows, nil
}

// Table4Row mirrors one row of paper Table 4: per-fuzzer percentage of
// outer trigger conditions satisfied within the fuzzing budget.
type Table4Row struct {
	App       string
	Monkey    float64
	PUMA      float64
	Hooker    float64
	Dynodroid float64
}

// Table4 fuzzes the pirated app in the attacker's lab with all four
// generators.
func Table4(sc Scale) ([]Table4Row, error) {
	sc = sc.withDefaults()
	var rows []Table4Row
	for _, name := range sc.Apps {
		p, err := Prepare(name, sc.ProfileEvents)
		if err != nil {
			return nil, err
		}
		real := p.RealBlobs()
		// Each cell averages three independent campaigns (fresh lab VM
		// and fuzzer state per run) to damp seed noise.
		pct := func(mk func() fuzz.Fuzzer, ui bool) (float64, error) {
			const runs = 3
			total := 0.0
			for r := 0; r < runs; r++ {
				v, err := vm.NewUnverified(p.Pirated, android.EmulatorLab(1)[0], vm.Options{Seed: seedFor(name) + int64(r)})
				if err != nil {
					return 0, err
				}
				opts := fuzz.Options{
					DurationMs: int64(sc.FuzzMinutes) * 60_000,
					Seed:       seedFor(name) + 11 + int64(r)*977,
				}
				if ui {
					opts.HandlerScreens = p.App.HandlerScreens
					opts.ScreenField = p.App.ScreenField
					opts.WatchFields = p.App.IntFieldRefs
				}
				res := fuzz.Run(v, mk(), p.App.Config.ParamDomain, opts)
				if len(real) > 0 {
					total += 100 * float64(countReal(res.OuterSatisfied, real)) / float64(len(real))
				}
			}
			return total / runs, nil
		}
		row := Table4Row{App: name}
		if row.Monkey, err = pct(func() fuzz.Fuzzer { return fuzz.Monkey{} }, false); err != nil {
			return nil, err
		}
		if row.PUMA, err = pct(func() fuzz.Fuzzer { return fuzz.PUMA{} }, true); err != nil {
			return nil, err
		}
		if row.Hooker, err = pct(func() fuzz.Fuzzer { return &fuzz.AndroidHooker{} }, true); err != nil {
			return nil, err
		}
		if row.Dynodroid, err = pct(func() fuzz.Fuzzer { return fuzz.NewDynodroid() }, true); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5Row mirrors one row of paper Table 5.
type Table5Row struct {
	App         string
	TaSec       float64 // original app compute time (virtual)
	TbSec       float64 // protected app compute time (virtual)
	OverheadPct float64
	SizePct     float64 // §8.4 code size increase
}

// Table5 replays the same Dynodroid event stream against the original
// and the protected build and compares app compute time (virtual
// clock minus the identical idle gaps). Code-size increase rides
// along since it uses the same pair of packages.
func Table5(sc Scale) ([]Table5Row, error) {
	sc = sc.withDefaults()
	var rows []Table5Row
	for _, name := range sc.Apps {
		p, err := Prepare(name, sc.ProfileEvents)
		if err != nil {
			return nil, err
		}
		var ta, tb int64
		for run := 0; run < sc.OverheadRuns; run++ {
			seed := seedFor(name) + int64(run)*997
			a, err := computeTicks(p.Original, p, sc.OverheadEvents, seed)
			if err != nil {
				return nil, err
			}
			b, err := computeTicks(p.Protected, p, sc.OverheadEvents, seed)
			if err != nil {
				return nil, err
			}
			ta += a
			tb += b
		}
		overhead := 100 * float64(tb-ta) / float64(ta)
		size := 100 * float64(p.Protected.TotalSize()-p.Original.TotalSize()) / float64(p.Original.TotalSize())
		rows = append(rows, Table5Row{
			App:         name,
			TaSec:       float64(ta) / float64(vm.TicksPerMilli) / 1000,
			TbSec:       float64(tb) / float64(vm.TicksPerMilli) / 1000,
			OverheadPct: overhead,
			SizePct:     size,
		})
	}
	return rows, nil
}

// computeTicks runs an identical event stream and returns the app's
// compute ticks — total virtual time minus the inter-event idle gaps,
// which are the same for both builds.
func computeTicks(pkg *apk.Package, p *PreparedApp, events int, seed int64) (int64, error) {
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: seed})
	if err != nil {
		return 0, err
	}
	const gapMs = 250
	r := fuzz.Run(v, fuzz.NewDynodroid(), p.App.Config.ParamDomain, fuzz.Options{
		DurationMs:     1 << 40,
		EventGapMs:     gapMs,
		MaxEvents:      events,
		Seed:           seed,
		HandlerScreens: p.App.HandlerScreens,
		ScreenField:    p.App.ScreenField,
		WatchFields:    p.App.IntFieldRefs,
	})
	idle := int64(r.Events) * gapMs * vm.TicksPerMilli
	compute := v.NowTicks() - idle
	if compute < 1 {
		return 0, fmt.Errorf("exp: degenerate compute time for %s", pkg.Name)
	}
	return compute, nil
}
