package exp

import (
	"context"
	"fmt"
	"log"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/cfg"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/sim"
	"bombdroid/internal/vm"
)

// Table1Row mirrors one row of paper Table 1.
type Table1Row struct {
	Category     string
	Apps         int
	AvgLOC       int
	AvgCandidate int
	AvgQCs       int
	AvgEnvVars   int
}

// Table1 computes the static characteristics of the corpus. With
// AppsPerCategory == 0 it generates all 963 apps. Categories are
// independent generation jobs, so they fan across the worker pool.
func Table1(sc Scale) ([]Table1Row, error) { return Table1Ctx(context.Background(), sc) }

// Table1Ctx is Table1 with cancellation via ctx.
func Table1Ctx(ctx context.Context, sc Scale) ([]Table1Row, error) {
	return forIndexed(ctx, sc, len(appgen.Categories), func(ci int) (Table1Row, error) {
		spec := appgen.Categories[ci]
		var nApps, loc, cand, qcs, env int
		visit := func(app *appgen.App) error {
			nApps++
			loc += app.LOC
			methods := len(app.File.Methods())
			// Candidate methods = all but the top-10% hot (paper §7.1).
			cand += methods - methods/10
			for _, m := range app.File.Methods() {
				// Count distinct condition sites (a switch is one
				// site regardless of its case count), matching how a
				// static tool reports "the number of existing QCs".
				sites := map[int]bool{}
				for _, q := range cfg.FindQCs(app.File, m) {
					if !q.InLoop {
						sites[q.CondPC] = true
					}
				}
				qcs += len(sites)
			}
			env += len(app.EnvVarNames)
			return nil
		}
		var err error
		if sc.AppsPerCategory > 0 {
			err = appgen.SampleCategory(spec, sc.AppsPerCategory, visit)
		} else {
			err = appgen.GenerateCategory(spec, visit)
		}
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Category:     spec.Name,
			Apps:         spec.Apps,
			AvgLOC:       loc / nApps,
			AvgCandidate: cand / nApps,
			AvgQCs:       qcs / nApps,
			AvgEnvVars:   env / nApps,
		}, nil
	})
}

// Table2Row mirrors one row of paper Table 2.
type Table2Row struct {
	App        string
	Bombs      int
	Existing   int
	Artificial int
	Bogus      int // extra visibility; the paper folds these elsewhere
}

// Table2 reports injected logic bombs for the named apps.
func Table2(sc Scale) ([]Table2Row, error) { return Table2Ctx(context.Background(), sc) }

// Table2Ctx is Table2 with cancellation via ctx.
func Table2Ctx(ctx context.Context, sc Scale) ([]Table2Row, error) {
	return mapApps(ctx, sc, func(_ Scale, name string, p *PreparedApp) (Table2Row, error) {
		st := p.Result.Stats
		return Table2Row{
			App:        name,
			Bombs:      st.Bombs(),
			Existing:   st.BombsExisting,
			Artificial: st.BombsArtificial,
			Bogus:      st.BombsBogus,
		}, nil
	})
}

// Table3Row mirrors one row of paper Table 3.
type Table3Row struct {
	App      string
	MinSec   float64
	MaxSec   float64
	AvgSec   float64
	Success  int
	Sessions int
}

// Table3 measures time to the first triggered bomb across user
// sessions on population devices (testers vary configurations between
// runs; sessions start at arbitrary wall-clock times).
func Table3(sc Scale) ([]Table3Row, error) { return Table3Ctx(context.Background(), sc) }

// Table3Ctx is Table3 with cancellation via ctx: the per-app campaign
// workers stop claiming sessions when ctx fires.
func Table3Ctx(ctx context.Context, sc Scale) ([]Table3Row, error) {
	return mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) (Table3Row, error) {
		cr, err := sim.Run(ctx, p.Pirated, p.Surface, sim.CampaignOptions{
			N: sc.SessionsPerApp, CapMs: int64(sc.SessionCapMin) * 60_000,
			Seed: seedFor(name) + 7, Workers: sc.Workers, Reg: sc.Obs,
		})
		if err != nil {
			return Table3Row{}, err
		}
		minMs := cr.MinMs
		if cr.Successes == 0 || minMs >= sim.NoFirstTrigger {
			// RunCampaign already normalizes MinMs on its zero-success
			// path; this guard keeps the 1<<62 accumulator sentinel out
			// of MinSec even if a future aggregation path skips the
			// reset.
			minMs = 0
		}
		return Table3Row{
			App:      name,
			MinSec:   float64(minMs) / 1000,
			MaxSec:   float64(cr.MaxMs) / 1000,
			AvgSec:   float64(cr.AvgMs) / 1000,
			Success:  cr.Successes,
			Sessions: cr.Sessions,
		}, nil
	})
}

// Table4Row mirrors one row of paper Table 4: per-fuzzer percentage of
// outer trigger conditions satisfied within the fuzzing budget.
// RealBombs is the denominator behind the percentages; when it is 0
// the row's cells are "nothing to trigger" markers rather than
// genuine 0% coverage, and FormatTable4 renders them as n/a.
type Table4Row struct {
	App       string
	Monkey    float64
	PUMA      float64
	Hooker    float64
	Dynodroid float64
	RealBombs int
}

// table4Fuzzers is the generator column order of paper Table 4. Each
// cell builds a fresh fuzzer instance: fuzzer state (Dynodroid
// scores, AndroidHooker history) is per-instance and unsynchronized,
// so instances must never be shared across cells or goroutines.
var table4Fuzzers = []struct {
	mk func() fuzz.Fuzzer
	ui bool
}{
	{func() fuzz.Fuzzer { return fuzz.Monkey{} }, false},
	{func() fuzz.Fuzzer { return fuzz.PUMA{} }, true},
	{func() fuzz.Fuzzer { return &fuzz.AndroidHooker{} }, true},
	{func() fuzz.Fuzzer { return fuzz.NewDynodroid() }, true},
}

// Table4 fuzzes the pirated app in the attacker's lab with all four
// generators. Each cell averages three independent campaigns (fresh
// lab VM and fuzzer state per run) to damp seed noise; the whole
// 4-fuzzer × 3-run grid fans across the worker pool per app, on top
// of the per-app fan-out.
func Table4(sc Scale) ([]Table4Row, error) { return Table4Ctx(context.Background(), sc) }

// Table4Ctx is Table4 with cancellation via ctx.
func Table4Ctx(ctx context.Context, sc Scale) ([]Table4Row, error) {
	const runs = 3
	return mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) (Table4Row, error) {
		real := p.RealBlobs()
		row := Table4Row{App: name, RealBombs: len(real)}
		if len(real) == 0 {
			// Explicit marker instead of silently averaging zero cells:
			// a 0% cell means the fuzzer failed, an n/a row means there
			// was nothing to trigger.
			log.Printf("exp: Table4: %s has no real bombs; reporting n/a row", name)
			return row, nil
		}
		cells, err := forIndexed(ctx, sc, len(table4Fuzzers)*runs, func(c int) (float64, error) {
			fz, r := table4Fuzzers[c/runs], c%runs
			// Seeds are keyed to the run index exactly as the serial
			// engine keyed them, so the grid is cell-order independent.
			v, err := vm.NewUnverified(p.Pirated, android.EmulatorLab(1)[0], vm.Options{Seed: seedFor(name) + int64(r)})
			if err != nil {
				return 0, err
			}
			opts := fuzz.Options{
				DurationMs: int64(sc.FuzzMinutes) * 60_000,
				Seed:       seedFor(name) + 11 + int64(r)*977,
				Obs:        sc.Obs,
			}
			if fz.ui {
				opts.HandlerScreens = p.App.HandlerScreens
				opts.ScreenField = p.App.ScreenField
				opts.WatchFields = p.App.IntFieldRefs
			}
			res := fuzz.Run(v, fz.mk(), p.App.Config.ParamDomain, opts)
			return 100 * float64(countReal(res.OuterSatisfied, real)) / float64(len(real)), nil
		})
		if err != nil {
			return row, err
		}
		avg := func(fi int) float64 {
			total := 0.0
			for r := 0; r < runs; r++ {
				total += cells[fi*runs+r]
			}
			return total / runs
		}
		row.Monkey, row.PUMA, row.Hooker, row.Dynodroid = avg(0), avg(1), avg(2), avg(3)
		return row, nil
	})
}

// Table5Row mirrors one row of paper Table 5.
type Table5Row struct {
	App         string
	TaSec       float64 // original app compute time (virtual)
	TbSec       float64 // protected app compute time (virtual)
	OverheadPct float64
	SizePct     float64 // §8.4 code size increase
}

// Table5 replays the same Dynodroid event stream against the original
// and the protected build and compares app compute time (virtual
// clock minus the identical idle gaps). Code-size increase rides
// along since it uses the same pair of packages.
func Table5(sc Scale) ([]Table5Row, error) { return Table5Ctx(context.Background(), sc) }

// Table5Ctx is Table5 with cancellation via ctx.
func Table5Ctx(ctx context.Context, sc Scale) ([]Table5Row, error) {
	return mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) (Table5Row, error) {
		// Each run replays one seed's event stream against both builds;
		// runs are independent, so they fan across the pool and their
		// tick counts sum by run index.
		ticks, err := forIndexed(ctx, sc, sc.OverheadRuns, func(run int) ([2]int64, error) {
			seed := seedFor(name) + int64(run)*997
			a, err := computeTicks(p.Original, p, sc.OverheadEvents, seed)
			if err != nil {
				return [2]int64{}, err
			}
			b, err := computeTicks(p.Protected, p, sc.OverheadEvents, seed)
			if err != nil {
				return [2]int64{}, err
			}
			return [2]int64{a, b}, nil
		})
		if err != nil {
			return Table5Row{}, err
		}
		var ta, tb int64
		for _, t := range ticks {
			ta += t[0]
			tb += t[1]
		}
		overhead := 100 * float64(tb-ta) / float64(ta)
		size := 100 * float64(p.Protected.TotalSize()-p.Original.TotalSize()) / float64(p.Original.TotalSize())
		return Table5Row{
			App:         name,
			TaSec:       float64(ta) / float64(vm.TicksPerMilli) / 1000,
			TbSec:       float64(tb) / float64(vm.TicksPerMilli) / 1000,
			OverheadPct: overhead,
			SizePct:     size,
		}, nil
	})
}

// computeTicks runs an identical event stream and returns the app's
// compute ticks — total virtual time minus the inter-event idle gaps,
// which are the same for both builds.
func computeTicks(pkg *apk.Package, p *PreparedApp, events int, seed int64) (int64, error) {
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: seed})
	if err != nil {
		return 0, err
	}
	const gapMs = 250
	r := fuzz.Run(v, fuzz.NewDynodroid(), p.App.Config.ParamDomain, fuzz.Options{
		DurationMs:     1 << 40,
		EventGapMs:     gapMs,
		MaxEvents:      events,
		Seed:           seed,
		HandlerScreens: p.App.HandlerScreens,
		ScreenField:    p.App.ScreenField,
		WatchFields:    p.App.IntFieldRefs,
	})
	idle := int64(r.Events) * gapMs * vm.TicksPerMilli
	compute := v.NowTicks() - idle
	if compute < 1 {
		return 0, fmt.Errorf("exp: degenerate compute time for %s", pkg.Name)
	}
	return compute, nil
}
