package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"bombdroid/internal/obs"
)

// TestTablesDeterministicAcrossWorkers pins the headline contract of
// the parallel evaluation engine: Workers:1 and Workers:8 produce
// identical rows for every table and figure, because seeds derive
// from item identity (app name, session index, grid cell) rather
// than from scheduling order.
func TestTablesDeterministicAcrossWorkers(t *testing.T) {
	serial := Quick()
	serial.Workers = 1
	par := Quick()
	par.Workers = 8

	gens := []struct {
		name string
		run  func(Scale) (any, error)
	}{
		{"Table1", func(sc Scale) (any, error) { return Table1(sc) }},
		{"Table2", func(sc Scale) (any, error) { return Table2(sc) }},
		{"Table3", func(sc Scale) (any, error) { return Table3(sc) }},
		{"Table4", func(sc Scale) (any, error) { return Table4(sc) }},
		{"Table5", func(sc Scale) (any, error) { return Table5(sc) }},
		{"Figure4", func(sc Scale) (any, error) { return Figure4(sc) }},
		{"Figure5", func(sc Scale) (any, error) { return Figure5(sc) }},
	}
	for _, g := range gens {
		want, err := g.run(serial)
		if err != nil {
			t.Fatalf("%s workers=1: %v", g.name, err)
		}
		got, err := g.run(par)
		if err != nil {
			t.Fatalf("%s workers=8: %v", g.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s differs across worker counts:\nserial:   %+v\nparallel: %+v", g.name, want, got)
		}
	}
}

// TestMetricsDeterministicAcrossWorkers extends the same contract to
// the obs layer: with metrics enabled, the deterministic snapshot
// (virtual-time counters and histograms; volatile scheduler-dependent
// series excluded) is byte-identical between Workers:1 and Workers:8.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	snapshot := func(workers int) []byte {
		sc := Quick()
		sc.Workers = workers
		sc.Obs = obs.NewRegistry()
		for name, gen := range map[string]func(Scale) error{
			"Table3": func(sc Scale) error { _, err := Table3(sc); return err },
			"Table4": func(sc Scale) error { _, err := Table4(sc); return err },
		} {
			if err := gen(sc); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
		}
		b, err := sc.Obs.SnapshotDeterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := snapshot(1)
	par := snapshot(8)
	if !bytes.Equal(serial, par) {
		t.Errorf("deterministic metrics snapshot differs across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s",
			serial, par)
	}
	// Sanity: the snapshot is not trivially empty.
	var snap obs.Snapshot
	if err := json.Unmarshal(serial, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sim_sessions_total"] == 0 {
		t.Error("snapshot carries no campaign counters; the test proved nothing")
	}
	if h, ok := snap.Histograms["sim_trigger_latency_ms"]; !ok || h.Count == 0 {
		t.Error("snapshot carries no trigger-latency observations")
	}
}

// TestPrepareOnceUnderContention hammers a cold Prepare key from
// eight goroutines: the per-key once must run the pipeline exactly
// one time and hand every caller the same PreparedApp.
func TestPrepareOnceUnderContention(t *testing.T) {
	// 1207 is an oddball event count no other test uses, so the key is
	// cold regardless of test order; PrepareRuns deltas stay immune to
	// whatever earlier tests already cached.
	const events = 1207
	before := PrepareRuns()
	apps := make([]*PreparedApp, 8)
	var wg sync.WaitGroup
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Prepare("SWJournal", events)
			if err != nil {
				t.Errorf("Prepare: %v", err)
				return
			}
			apps[i] = p
		}(i)
	}
	wg.Wait()
	if d := PrepareRuns() - before; d != 1 {
		t.Errorf("pipeline ran %d times under contention, want 1", d)
	}
	for i, p := range apps {
		if p != apps[0] {
			t.Errorf("caller %d got a different PreparedApp instance", i)
		}
	}
	// A later wave is a pure cache hit.
	if _, err := Prepare("SWJournal", events); err != nil {
		t.Fatal(err)
	}
	if d := PrepareRuns() - before; d != 1 {
		t.Errorf("pipeline re-ran after warm cache: %d runs", d)
	}
}

// TestPrepareSharedAcrossTables is the report-invocation contract:
// after one table has prepared a scale's apps, every further table
// and figure of the same scale rides the cache — zero extra pipeline
// runs, the way a single `cmd/report -all` prepares each app once.
func TestPrepareSharedAcrossTables(t *testing.T) {
	sc := tiny()
	if _, err := Table2(sc); err != nil { // warms (app, ProfileEvents) keys
		t.Fatal(err)
	}
	before := PrepareRuns()
	if _, err := Table3(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Table5(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure4(sc); err != nil {
		t.Fatal(err)
	}
	if d := PrepareRuns() - before; d != 0 {
		t.Errorf("later tables re-ran the prepare pipeline %d times, want 0", d)
	}
}
