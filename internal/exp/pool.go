package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the evaluation engine's worker pool. Every table,
// figure, and extra fans its independent work items (apps, user
// sessions, fuzzer cells) across up to Scale.Workers goroutines.
//
// Determinism discipline: parallelism must never change a single
// byte of any table. Three rules enforce that:
//
//  1. Every work item derives all of its randomness from a seed keyed
//     to its own index (seed+i*101 for sessions, seedFor(name)+... for
//     apps and cells) — never from a shared RNG consumed in run order.
//  2. Results merge by item index, never by completion order.
//  3. Errors are reported lowest-index-first, so a failing run fails
//     identically at any worker count.

// workerCount resolves a Scale.Workers setting: <= 0 means one worker
// per available CPU, 1 is fully serial, anything else is the bound.
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// forIndexed runs fn(i) for every i in [0,n) on up to workers
// goroutines and returns the n results merged by index. The serial
// path (workers == 1, or n < 2) does not spawn goroutines at all, so
// Workers: 1 preserves the engine's original single-threaded
// behavior exactly. Work is handed out through an atomic counter;
// which worker executes an item is scheduler-dependent, but per the
// seeding discipline above the item's result is not.
func forIndexed[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers = workerCount(workers); workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mapApps prepares every app in sc.Apps (cache-deduplicated, so
// concurrent tables cost one pipeline run per app) and applies fn,
// returning one result per app in Scale order.
func mapApps[T any](sc Scale, fn func(name string, p *PreparedApp) (T, error)) ([]T, error) {
	return forIndexed(sc.Workers, len(sc.Apps), func(i int) (T, error) {
		name := sc.Apps[i]
		p, err := Prepare(name, sc.ProfileEvents)
		if err != nil {
			var zero T
			return zero, err
		}
		return fn(name, p)
	})
}
