package exp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bombdroid/internal/obs"
)

// This file is the evaluation engine's worker pool. Every table,
// figure, and extra fans its independent work items (apps, user
// sessions, fuzzer cells) across up to Scale.Workers goroutines.
//
// Determinism discipline: parallelism must never change a single
// byte of any table. Three rules enforce that:
//
//  1. Every work item derives all of its randomness from a seed keyed
//     to its own index (seed+i*101 for sessions, seedFor(name)+... for
//     apps and cells) — never from a shared RNG consumed in run order.
//  2. Results merge by item index, never by completion order.
//  3. Errors are reported lowest-index-first, so a failing run fails
//     identically at any worker count.
//
// Pool metrics follow the same split the rest of the obs layer uses:
// task and batch counts are deterministic (same work at any worker
// count); task wall latency, live queue depth, worker count, and the
// per-worker utilization profile depend on the scheduler and are
// registered Volatile.

// workerCount resolves a Scale.Workers setting: <= 0 means one worker
// per available CPU, 1 is fully serial, anything else is the bound.
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// poolTaskBucketsNs buckets task wall time from ~1µs to ~4min.
var poolTaskBucketsNs = obs.ExpBuckets(1_000, 8, 9)

// ForIndexed runs fn(i) for every i in [0,n) on up to sc.Workers
// goroutines and returns the n results merged by index (the
// evaluation pool, exported for command-line batch drivers). The
// serial path (workers == 1, or n < 2) does not spawn goroutines at
// all, so Workers: 1 preserves the engine's original single-threaded
// behavior exactly. Work is handed out through an atomic counter;
// which worker executes an item is scheduler-dependent, but per the
// seeding discipline above the item's result is not.
//
// Cancelling ctx stops workers from claiming further items; the call
// then returns the partially filled slice (unclaimed indices hold
// zero values) together with ctx.Err(), so batch drivers can report
// what completed. An item error still returns (nil, err),
// lowest-index-first, exactly as before.
//
// When sc.Obs is set, every batch reports queue depth, task latency,
// and per-worker utilization to it.
func ForIndexed[T any](ctx context.Context, sc Scale, n int, fn func(i int) (T, error)) ([]T, error) {
	return forIndexed(ctx, sc, n, fn)
}

func forIndexed[T any](ctx context.Context, sc Scale, n int, fn func(i int) (T, error)) ([]T, error) {
	sc = sc.withDefaults()
	reg := sc.Obs
	workers := workerCount(sc.Workers)
	if workers > n {
		workers = n
	}
	var depth *obs.Gauge
	var taskNs *obs.Histogram
	if reg != nil {
		reg.Counter("exp_pool_batches_total").Inc()
		reg.Counter("exp_pool_tasks_total").Add(int64(n))
		reg.Gauge("exp_pool_workers_max", obs.Volatile()).SetMax(int64(workers))
		depth = reg.Gauge("exp_pool_queue_depth", obs.Volatile())
		taskNs = reg.Histogram("exp_pool_task_wall_ns", poolTaskBucketsNs, obs.Volatile())
		depth.Add(int64(n))
	}
	runTask := func(worker, i int) (T, error) {
		if reg == nil {
			return fn(i)
		}
		t0 := time.Now()
		v, err := fn(i)
		taskNs.Observe(time.Since(t0).Nanoseconds())
		depth.Add(-1)
		reg.Counter(obs.L("exp_pool_worker_tasks_total", "worker", workerLabel(worker)), obs.Volatile()).Inc()
		return v, err
	}

	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := runTask(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = runTask(w, i)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// workerLabel formats small worker indices without fmt (the pool hot
// path should not allocate through Sprintf for a label).
func workerLabel(w int) string {
	if w < 10 {
		return string([]byte{'0' + byte(w)})
	}
	return string([]byte{'0' + byte(w/10%10), '0' + byte(w%10)})
}

// mapApps is the shared scale/pool plumbing every per-app experiment
// goes through: it resolves Scale defaults once, prepares every app in
// sc.Apps (cache-deduplicated, so concurrent tables cost one pipeline
// run per app), and applies fn, returning one result per app in Scale
// order. fn receives the defaulted Scale, so experiment bodies read
// resolved knobs (SessionsPerApp, FuzzMinutes, …) without calling
// withDefaults themselves.
func mapApps[T any](ctx context.Context, sc Scale, fn func(sc Scale, name string, p *PreparedApp) (T, error)) ([]T, error) {
	sc = sc.withDefaults()
	return forIndexed(ctx, sc, len(sc.Apps), func(i int) (T, error) {
		name := sc.Apps[i]
		p, err := PrepareCtx(ctx, name, sc.ProfileEvents)
		if err != nil {
			var zero T
			return zero, err
		}
		return fn(sc, name, p)
	})
}
