package exp

import (
	"context"
	"fmt"

	"bombdroid/internal/chaos"
	"bombdroid/internal/report"
	"bombdroid/internal/sim"
)

// ChaosRow is one (app, fault profile) campaign outcome: did the bomb
// lifecycle fail closed, and did the report pipeline stay
// exactly-once despite the channel faults?
type ChaosRow struct {
	App         string
	Profile     string
	Sessions    int
	Triggered   int
	VMFaults    int // bomb-path faults contained in fail-closed VMs
	Rejects     int // corrupted images cleanly rejected at load
	Panics      int // must be 0
	Breaker     bool
	Unique      int // unique detections submitted
	Delivered   int // unique detections the market received
	ExactlyOnce bool
	DeadLetters int
}

// chaosProfiles is the experiment's fault grid: clean baseline, the
// mild profile, and a harsh profile with a market outage layered on.
var chaosProfiles = []struct {
	profile chaos.Profile
	outage  bool
}{
	{chaos.None, false},
	{chaos.Mild, false},
	{chaos.Overlay(chaos.Harsh, chaos.Profile{Name: "outage"}), true},
}

// ChaosResilience runs fault-injection campaigns over the prepared
// pirated apps. The paper's asymmetry argument (§2) is that attackers
// must analyse while users merely run; this experiment adds the
// operational half of that claim — detection keeps working, and never
// hurts an honest user's app, when devices and networks misbehave.
func ChaosResilience(sc Scale) ([]ChaosRow, error) {
	return ChaosResilienceCtx(context.Background(), sc)
}

// ChaosResilienceCtx is ChaosResilience with cancellation via ctx.
func ChaosResilienceCtx(ctx context.Context, sc Scale) ([]ChaosRow, error) {
	// Apps fan across the pool; each app's three fault profiles stay
	// serial (they share nothing, but three cheap campaigns per app do
	// not justify another nesting level).
	perApp, err := mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) ([]ChaosRow, error) {
		capMs := int64(sc.SessionCapMin) * 60_000
		var rows []ChaosRow
		for _, pc := range chaosProfiles {
			opts := sim.ChaosOptions{
				Sessions: sc.SessionsPerApp,
				CapMs:    capMs,
				Seed:     seedFor(name) ^ 0x0C0C,
				Profile:  pc.profile,
				Obs:      sc.Obs,
			}
			if pc.outage {
				// Market down for the first quarter of the campaign —
				// long enough to trip the breaker, short enough that the
				// retry budget survives it. Detection events are sparse
				// (only report-kind responses reach the pipeline), so the
				// breaker threshold is lowered to keep the trip observable
				// at quick scales.
				opts.SinkOutages = [][2]int64{{0, int64(sc.SessionsPerApp) * capMs / 4}}
				opts.Pipeline = []report.Option{
					report.WithMaxAttempts(200), report.WithMaxBackoffMs(5 * 60_000),
					report.WithBreakerThreshold(3),
				}
			}
			cr, err := sim.RunChaos(ctx, p.Pirated, p.Surface, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ChaosRow{
				App: name, Profile: pc.profile.Name,
				Sessions: cr.Sessions, Triggered: cr.Successes,
				VMFaults: cr.VMFaults, Rejects: cr.InstallRejects,
				Panics: cr.Panics, Breaker: cr.BreakerTripped,
				Unique: cr.UniqueDetects, Delivered: cr.SinkUnique,
				ExactlyOnce: cr.ExactlyOnce(), DeadLetters: cr.DeadLetters,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []ChaosRow
	for _, r := range perApp {
		rows = append(rows, r...)
	}
	return rows, nil
}

// FormatChaos renders the chaos-resilience campaign grid.
func FormatChaos(rows []ChaosRow) string {
	var out [][]string
	for _, r := range rows {
		once := "yes"
		if !r.ExactlyOnce {
			once = "NO"
		}
		breaker := "-"
		if r.Breaker {
			breaker = "tripped"
		}
		out = append(out, []string{
			r.App, r.Profile,
			fmt.Sprintf("%d/%d", r.Triggered, r.Sessions),
			fmt.Sprint(r.VMFaults), fmt.Sprint(r.Rejects), fmt.Sprint(r.Panics),
			breaker,
			fmt.Sprintf("%d/%d", r.Delivered, r.Unique),
			once, fmt.Sprint(r.DeadLetters),
		})
	}
	return RenderTable("Chaos resilience (fail-closed lifecycle + exactly-once reporting)",
		[]string{"App", "Profile", "trig", "contained", "rejects", "panics",
			"breaker", "delivered", "once", "dead"}, out)
}
