package exp

import (
	"strings"
	"testing"
)

// tiny returns a minimal-cost scale for unit tests.
func tiny() Scale {
	return Scale{
		AppsPerCategory: 1,
		SessionsPerApp:  4,
		SessionCapMin:   10,
		FuzzMinutes:     4,
		OverheadEvents:  800,
		OverheadRuns:    1,
		ProfileEvents:   1_200,
		AnalystHours:    1,
		Apps:            []string{"AndroFish", "Hash Droid"},
	}
}

func TestPrepareCachesAndPipelines(t *testing.T) {
	p1, err := Prepare("AndroFish", 1200)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prepare("AndroFish", 1200)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Prepare should cache")
	}
	if len(p1.Result.Bombs) == 0 {
		t.Fatal("no bombs injected")
	}
	if p1.Protected.PublicKeyHex() != p1.Original.PublicKeyHex() {
		t.Error("protected app must keep the developer key")
	}
	if p1.Pirated.PublicKeyHex() == p1.Original.PublicKeyHex() {
		t.Error("pirated app must have a different key")
	}
	if len(p1.Profile) == 0 {
		t.Error("profiling produced nothing")
	}
	if p1.Result.Stats.HotExcluded == 0 {
		t.Error("hot methods should be excluded with a profile present")
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	rows, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 categories", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Apps
		if r.AvgLOC <= 0 || r.AvgCandidate <= 0 || r.AvgQCs <= 0 || r.AvgEnvVars <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Category, r)
		}
	}
	if total != 963 {
		t.Errorf("corpus size = %d, want 963", total)
	}
	// Shape: Development (largest LOC) > Game (smallest).
	var game, dev Table1Row
	for _, r := range rows {
		if r.Category == "Game" {
			game = r
		}
		if r.Category == "Development" {
			dev = r
		}
	}
	if dev.AvgLOC <= game.AvgLOC {
		t.Errorf("Development LOC (%d) should exceed Game (%d)", dev.AvgLOC, game.AvgLOC)
	}
	if dev.AvgCandidate <= game.AvgCandidate {
		t.Error("larger apps should have more candidate methods")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Game") || !strings.Contains(out, "Development") {
		t.Error("formatting lost categories")
	}
}

func TestTable2InjectionCounts(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Bombs != r.Existing+r.Artificial {
			t.Errorf("%s: bombs %d != existing %d + artificial %d", r.App, r.Bombs, r.Existing, r.Artificial)
		}
		if r.Existing == 0 || r.Artificial == 0 {
			t.Errorf("%s: missing bomb source: %+v", r.App, r)
		}
	}
	if FormatTable2(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestTable3FirstTriggerTimes(t *testing.T) {
	rows, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Success == 0 {
			t.Errorf("%s: no session triggered (paper: 50/50)", r.App)
			continue
		}
		if r.MinSec < 2 {
			t.Errorf("%s: min %.1fs below app launch floor", r.App, r.MinSec)
		}
		if r.MinSec > r.AvgSec || r.AvgSec > r.MaxSec {
			t.Errorf("%s: ordering broken min=%.0f avg=%.0f max=%.0f", r.App, r.MinSec, r.AvgSec, r.MaxSec)
		}
	}
	if FormatTable3(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestTable4FuzzerOrdering(t *testing.T) {
	rows, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var mSum, dSum float64
	for _, r := range rows {
		mSum += r.Monkey
		dSum += r.Dynodroid
		for _, v := range []float64{r.Monkey, r.PUMA, r.Hooker, r.Dynodroid} {
			if v < 0 || v > 100 {
				t.Errorf("%s: percentage %v out of range", r.App, v)
			}
		}
	}
	if dSum < mSum {
		t.Errorf("Dynodroid total (%.1f) below Monkey (%.1f) — paper ordering broken", dSum, mSum)
	}
	if dSum == 0 {
		t.Error("Dynodroid satisfied nothing")
	}
	if FormatTable4(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestTable5OverheadSmall(t *testing.T) {
	rows, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OverheadPct < -2 {
			t.Errorf("%s: negative overhead %.1f%%", r.App, r.OverheadPct)
		}
		if r.OverheadPct > 25 {
			t.Errorf("%s: overhead %.1f%% way above the paper's ~2.6%%", r.App, r.OverheadPct)
		}
		if r.SizePct <= 0 || r.SizePct > 60 {
			t.Errorf("%s: size increase %.1f%% implausible", r.App, r.SizePct)
		}
	}
	if FormatTable5(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestFigure3EntropyOrdering(t *testing.T) {
	series, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[string]int{}
	for _, s := range series {
		uniq[s.Var] = s.Unique
		if len(s.Samples) < 4 {
			t.Errorf("%s: too few samples", s.Var)
		}
	}
	if uniq["App.posX"] <= uniq["App.dir"] {
		t.Errorf("posX unique (%d) should exceed dir (%d)", uniq["App.posX"], uniq["App.dir"])
	}
	if out := FormatFigure3(series); !strings.Contains(out, "posX") {
		t.Error("formatting lost variables")
	}
}

func TestFigure4StrengthMix(t *testing.T) {
	rows, err := Figure4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ExistWeak+r.ExistMedium+r.ExistStrong == 0 {
			t.Errorf("%s: no existing bombs", r.App)
		}
		// Paper Figure 4b: artificial QCs are medium-to-strong only.
		if r.ArtMedium+r.ArtStrong == 0 {
			t.Errorf("%s: no artificial bombs", r.App)
		}
	}
	if FormatFigure4(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestFigure5PlateausLow(t *testing.T) {
	series, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.PctByMin) == 0 {
			t.Fatalf("%s: empty series", s.App)
		}
		// Monotone non-decreasing.
		for i := 1; i < len(s.PctByMin); i++ {
			if s.PctByMin[i] < s.PctByMin[i-1] {
				t.Errorf("%s: series decreased", s.App)
			}
		}
		// The paper's headline: the vast majority stays dormant.
		if s.FinalPct > 40 {
			t.Errorf("%s: %.1f%% triggered — far beyond the paper's ≤6.4%%", s.App, s.FinalPct)
		}
	}
	if FormatFigure5(series) == "" {
		t.Error("empty formatting")
	}
}

func TestFalsePositivesZero(t *testing.T) {
	rows, err := FalsePositives(tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Responses != 0 {
			t.Errorf("%s: %d false positives", r.App, r.Responses)
		}
	}
	if FormatFPResults(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestCodeSizeBand(t *testing.T) {
	rows, avg, err := CodeSize(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Errorf("avg size increase %.1f%%", avg)
	}
	if FormatSizeRows(rows, avg) == "" {
		t.Error("empty formatting")
	}
}

func TestHumanAnalystMinority(t *testing.T) {
	rows, err := HumanAnalystStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Pct > 50 {
			t.Errorf("%s: analyst triggered %.1f%%", r.App, r.Pct)
		}
	}
	if FormatAnalystRows(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestResilienceMatrixVerdicts(t *testing.T) {
	rows, err := ResilienceMatrix(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("matrix too small: %d rows", len(rows))
	}
	byCell := map[string]bool{}
	for _, r := range rows {
		byCell[r.Attack+"|"+r.Protection] = r.Defeated
	}
	mustDefeat := [][2]string{
		{"text search", "naive"},
		{"symbolic execution", "naive"},
		{"symbolic execution", "ssn"},
		{"forced execution", "naive"},
		{"instrumentation (rand→0)", "ssn"},
	}
	for _, c := range mustDefeat {
		if !byCell[c[0]+"|"+c[1]] {
			t.Errorf("%s should defeat %s", c[0], c[1])
		}
	}
	mustResist := [][2]string{
		{"text search", "bombdroid"},
		{"symbolic execution", "bombdroid"},
		{"forced execution", "bombdroid"},
		{"slicing+execution", "bombdroid"},
	}
	for _, c := range mustResist {
		if byCell[c[0]+"|"+c[1]] {
			t.Errorf("bombdroid should resist %s", c[0])
		}
	}
	if FormatMatrix(rows) == "" {
		t.Error("empty formatting")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable("T", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("bad render:\n%s", out)
	}
	if spark(nil) != "" {
		t.Error("empty spark should be empty")
	}
	if spark([]int64{1, 5, 9}) == "" {
		t.Error("spark lost data")
	}
	if spark([]int64{3, 3, 3}) == "" {
		t.Error("constant spark should render")
	}
}
