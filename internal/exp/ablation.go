package exp

import (
	"context"
	"fmt"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/attack"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

// AblationRow is one design-choice measurement pair.
type AblationRow struct {
	Name    string
	With    string // measurement with the paper's design choice
	Without string // measurement with it ablated
	Verdict string
}

// ablationFixture builds the shared app/package pair.
func ablationFixture(seed int64) (*appgen.App, *apk.Package, *apk.KeyPair, error) {
	app, err := appgen.Generate(appgen.Config{
		Name: "ablate", Seed: seed, TargetLOC: 2000, QCPerMethod: 1.2,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	key, err := apk.NewKeyPair(seed)
	if err != nil {
		return nil, nil, nil, err
	}
	pkg, err := apk.Sign(apk.Build("ablate", app.File, apk.Resources{Strings: []string{"x"}}), key)
	if err != nil {
		return nil, nil, nil, err
	}
	return app, pkg, key, nil
}

// Ablations runs every DESIGN.md §6 ablation and returns the rows.
func Ablations(seed int64) ([]AblationRow, error) {
	return AblationsCtx(context.Background(), seed)
}

// AblationsCtx is the canonical ablation runner: the five
// design-choice measurements run in order, and ctx is checked between
// them, so a cancelled run stops at the next stage boundary.
func AblationsCtx(ctx context.Context, seed int64) ([]AblationRow, error) {
	app, pkg, key, err := ablationFixture(seed)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow

	// 1. Per-bomb vs global salt: duplicate derived keys.
	dup := func(opts core.Options) (int, error) {
		_, res, err := core.ProtectPackage(pkg, key, opts)
		if err != nil {
			return 0, err
		}
		seen := map[string]int{}
		for _, b := range res.Bombs {
			seen[b.Salt+"|"+b.Const.String()]++
		}
		dups := 0
		for _, n := range seen {
			if n > 1 {
				dups += n - 1
			}
		}
		return dups, nil
	}
	salted, err := dup(core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	global, err := dup(core.Options{Seed: seed, GlobalSalt: "fixed"})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "per-bomb salt",
		With:    fmt.Sprintf("%d shareable (salt,const) pairs", salted),
		Without: fmt.Sprintf("%d shareable pairs under a global salt", global),
		Verdict: "unique salts prevent rainbow-table sharing (§5.1)",
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Rainbow-table cost (same axis, measured as precomputation).
	rb := func(globalSalt string) (attack.RainbowResult, error) {
		prot, _, err := core.ProtectPackage(pkg, key, core.Options{Seed: seed, GlobalSalt: globalSalt})
		if err != nil {
			return attack.RainbowResult{}, err
		}
		file, err := prot.DexFile()
		if err != nil {
			return attack.RainbowResult{}, err
		}
		return attack.Rainbow(file, attack.SmallIntCandidates(512)), nil
	}
	rbSalted, err := rb("")
	if err != nil {
		return nil, err
	}
	rbGlobal, err := rb("shared")
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "rainbow-table cost",
		With:    fmt.Sprintf("%d tables / %d hashes precomputed", rbSalted.TablesBuilt, rbSalted.HashesComputed),
		Without: fmt.Sprintf("%d table / %d hashes under a global salt", rbGlobal.TablesBuilt, rbGlobal.HashesComputed),
		Verdict: "per-bomb salts multiply precomputation by the bomb count",
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// 2. Double vs single trigger: lab fuzzing exposure.
	trig := func(single bool) (float64, error) {
		prot, res, err := core.ProtectPackage(pkg, key, core.Options{Seed: seed, SingleTrigger: single})
		if err != nil {
			return 0, err
		}
		attacker, err := apk.NewKeyPair(seed ^ 0xABC)
		if err != nil {
			return 0, err
		}
		pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{})
		if err != nil {
			return 0, err
		}
		v, err := vm.NewUnverified(pirated, android.EmulatorLab(1)[0], vm.Options{Seed: 2})
		if err != nil {
			return 0, err
		}
		r := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
			DurationMs: 60 * 60_000, Seed: 3,
			HandlerScreens: app.HandlerScreens, ScreenField: app.ScreenField,
			WatchFields: app.IntFieldRefs,
		})
		total := len(res.RealBombs())
		if total == 0 {
			return 0, nil
		}
		return 100 * float64(len(r.DetectionRuns)) / float64(total), nil
	}
	double, err := trig(false)
	if err != nil {
		return nil, err
	}
	single, err := trig(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "double-trigger bombs",
		With:    fmt.Sprintf("%.1f%% of bombs exposed by 1 h lab Dynodroid", double),
		Without: fmt.Sprintf("%.1f%% exposed with single triggers", single),
		Verdict: "inner env conditions keep bombs dormant in the lab (§6)",
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// 3. Weaving + bogus bombs vs clean deletion.
	corrupt := func(noWeave bool) (float64, error) {
		opts := core.Options{Seed: seed, NoWeave: noWeave}
		if noWeave {
			opts.BogusFrac = -1
		}
		prot, _, err := core.ProtectPackage(pkg, key, opts)
		if err != nil {
			return 0, err
		}
		file, err := prot.DexFile()
		if err != nil {
			return 0, err
		}
		del := attack.DeleteSuspiciousCode(file)
		attacker, err := apk.NewKeyPair(seed ^ 0xDEF)
		if err != nil {
			return 0, err
		}
		broken, err := apk.Sign(apk.Build("ablate", del.File, pkg.Res), attacker)
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(3))
		dev := android.SamplePopulation("u", rng)
		vb, err := vm.New(broken, dev.Clone(), vm.Options{Seed: 4})
		if err != nil {
			return 0, err
		}
		vp, err := vm.New(prot, dev.Clone(), vm.Options{Seed: 4})
		if err != nil {
			return 0, err
		}
		diverged := 0
		const events = 400
		for i := 0; i < events; i++ {
			h := app.Handlers[rng.Intn(len(app.Handlers))]
			x, y := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
			_, e1 := vb.Invoke(h, x, y)
			_, e2 := vp.Invoke(h, x, y)
			if vm.AbnormalExit(e1) != vm.AbnormalExit(e2) {
				diverged++
				continue
			}
			for _, ref := range app.IntFieldRefs {
				if !vb.Static(ref).Equal(vp.Static(ref)) {
					diverged++
					break
				}
			}
		}
		return 100 * float64(diverged) / float64(events), nil
	}
	woven, err := corrupt(false)
	if err != nil {
		return nil, err
	}
	unwoven, err := corrupt(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "code weaving + bogus bombs",
		With:    fmt.Sprintf("%.0f%% behaviour corruption after clean deletion", woven),
		Without: fmt.Sprintf("%.0f%% corruption without weaving", unwoven),
		Verdict: "deletion is deterred by woven app code (§3.4, G4)",
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// 4. α sweep.
	var counts []string
	for _, alpha := range []float64{0.10, 0.25, 0.50} {
		_, res, err := core.ProtectPackage(pkg, key, core.Options{Seed: seed, Alpha: alpha})
		if err != nil {
			return nil, err
		}
		counts = append(counts, fmt.Sprintf("α=%.2f→%d", alpha, res.Stats.BombsArtificial))
	}
	rows = append(rows, AblationRow{
		Name:    "artificial-QC density α",
		With:    fmt.Sprintf("%s artificial bombs", counts[1]),
		Without: fmt.Sprintf("sweep: %s, %s, %s", counts[0], counts[1], counts[2]),
		Verdict: "bomb count scales linearly with α (§7.2)",
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// 5. §10 muting.
	mute := func(on bool) (int, error) {
		prot, _, err := core.ProtectPackage(pkg, key, core.Options{
			Seed: seed, SingleTrigger: true, MuteAfterFirst: on,
			Responses: []vm.ResponseKind{vm.RespWarn},
		})
		if err != nil {
			return 0, err
		}
		attacker, err := apk.NewKeyPair(seed ^ 0x777)
		if err != nil {
			return 0, err
		}
		pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{})
		if err != nil {
			return 0, err
		}
		v, err := vm.NewUnverified(pirated, android.EmulatorLab(1)[0], vm.Options{Seed: 5})
		if err != nil {
			return 0, err
		}
		r := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
			DurationMs: 30 * 60_000, Seed: 6,
			HandlerScreens: app.HandlerScreens, ScreenField: app.ScreenField,
		})
		return len(r.DetectionRuns), nil
	}
	loud, err := mute(false)
	if err != nil {
		return nil, err
	}
	quiet, err := mute(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "§10 muting (extension)",
		With:    fmt.Sprintf("%d bombs exposed with muting", quiet),
		Without: fmt.Sprintf("%d exposed without", loud),
		Verdict: "after the first response, remaining bombs stay hidden",
	})

	return rows, nil
}

// FormatAblations renders the ablation rows.
func FormatAblations(rows []AblationRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Name, r.With, r.Without, r.Verdict})
	}
	return RenderTable("Design-choice ablations (DESIGN.md §6)",
		[]string{"Choice", "with", "ablated", "verdict"}, out)
}
