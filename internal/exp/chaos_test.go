package exp

import (
	"strings"
	"testing"
)

func TestChaosResilienceGrid(t *testing.T) {
	sc := tiny()
	sc.Apps = []string{"AndroFish"}
	rows, err := ChaosResilience(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(chaosProfiles) {
		t.Fatalf("rows = %d, want one per profile (%d)", len(rows), len(chaosProfiles))
	}
	for _, r := range rows {
		if r.Panics != 0 {
			t.Errorf("%s/%s: %d panics — fail-closed invariant broken", r.App, r.Profile, r.Panics)
		}
		if !r.ExactlyOnce {
			t.Errorf("%s/%s: delivered %d of %d unique detections", r.App, r.Profile, r.Delivered, r.Unique)
		}
	}
	if rows[0].Profile != "none" || rows[0].VMFaults != 0 || rows[0].Rejects != 0 {
		t.Errorf("clean baseline row injected faults: %+v", rows[0])
	}
	out := FormatChaos(rows)
	if !strings.Contains(out, "AndroFish") || !strings.Contains(out, "harsh+outage") {
		t.Errorf("format missing expected cells:\n%s", out)
	}
}
