package exp

import (
	"context"

	"bombdroid/internal/android"
	"bombdroid/internal/appgen"
	"bombdroid/internal/cfg"
	"bombdroid/internal/core"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

// Figure3Series is one program variable's sampled trajectory
// (paper Figure 3: six AndroFish variables over an hour of Dynodroid,
// sampled once per minute).
type Figure3Series struct {
	Var     string
	Samples []int64
	Unique  int
}

// Figure3 replays the paper's entropy visualization on AndroFish.
func Figure3(sc Scale) ([]Figure3Series, error) { return Figure3Ctx(context.Background(), sc) }

// Figure3Ctx is Figure3 with cancellation via ctx: the minute-by-
// minute sampling loop stops at the first cancelled minute.
func Figure3Ctx(ctx context.Context, sc Scale) ([]Figure3Series, error) {
	sc = sc.withDefaults()
	p, err := PrepareCtx(ctx, "AndroFish", sc.ProfileEvents)
	if err != nil {
		return nil, err
	}
	v, err := vm.New(p.Original, android.EmulatorLab(1)[0], vm.Options{Seed: 2})
	if err != nil {
		return nil, err
	}
	series := make([]Figure3Series, len(appgen.AndroFishVars))
	for i, name := range appgen.AndroFishVars {
		series[i].Var = name
	}
	fz := fuzz.NewDynodroid()
	minutes := sc.FuzzMinutes
	if minutes < 10 {
		minutes = 10
	}
	for min := 0; min < minutes; min++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fuzz.Run(v, fz, p.App.Config.ParamDomain, fuzz.Options{
			DurationMs:     60_000,
			Seed:           int64(min) * 3,
			HandlerScreens: p.App.HandlerScreens,
			ScreenField:    p.App.ScreenField,
			WatchFields:    appgen.AndroFishVars,
		})
		for i, name := range appgen.AndroFishVars {
			series[i].Samples = append(series[i].Samples, v.Static(name).Int)
		}
	}
	for i := range series {
		uniq := map[int64]bool{}
		for _, s := range series[i].Samples {
			uniq[s] = true
		}
		series[i].Unique = len(uniq)
	}
	return series, nil
}

// Figure4Row is one app's outer-trigger strength histogram (paper
// Figure 4a/4b: weak/medium/strong for existing and artificial QCs).
type Figure4Row struct {
	App string
	// Existing-QC bombs by strength.
	ExistWeak, ExistMedium, ExistStrong int
	// Artificial-QC bombs by strength.
	ArtMedium, ArtStrong int
}

// Figure4 tallies trigger strength per named app.
func Figure4(sc Scale) ([]Figure4Row, error) { return Figure4Ctx(context.Background(), sc) }

// Figure4Ctx is Figure4 with cancellation via ctx.
func Figure4Ctx(ctx context.Context, sc Scale) ([]Figure4Row, error) {
	return mapApps(ctx, sc, func(_ Scale, name string, p *PreparedApp) (Figure4Row, error) {
		row := Figure4Row{App: name}
		for _, b := range p.Result.Bombs {
			switch b.Source {
			case core.SourceExisting:
				switch b.Strength {
				case cfg.Weak:
					row.ExistWeak++
				case cfg.Medium:
					row.ExistMedium++
				case cfg.Strong:
					row.ExistStrong++
				}
			case core.SourceArtificial:
				if b.Strength == cfg.Strong {
					row.ArtStrong++
				} else {
					row.ArtMedium++
				}
			}
		}
		return row, nil
	})
}

// Figure5Series is one app's per-minute cumulative percentage of
// bombs fully triggered by Dynodroid (paper Figure 5: plateaus below
// ~6.4% well before the hour ends).
type Figure5Series struct {
	App        string
	PctByMin   []float64
	FinalPct   float64
	TotalBombs int
}

// Figure5 fuzzes each pirated app with Dynodroid in the attacker lab
// and samples the triggered-bomb percentage each minute. Apps fan
// across the worker pool; each app's minute-by-minute loop stays
// serial because trigger state accumulates in one VM and one fuzzer.
func Figure5(sc Scale) ([]Figure5Series, error) { return Figure5Ctx(context.Background(), sc) }

// Figure5Ctx is Figure5 with cancellation via ctx: each app's
// minute-by-minute fuzzing loop stops at the first cancelled minute.
func Figure5Ctx(ctx context.Context, sc Scale) ([]Figure5Series, error) {
	return mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) (Figure5Series, error) {
		total := len(p.Result.RealBombs())
		v, err := vm.NewUnverified(p.Pirated, android.EmulatorLab(1)[0], vm.Options{Seed: seedFor(name) + 3})
		if err != nil {
			return Figure5Series{}, err
		}
		fz := fuzz.NewDynodroid()
		s := Figure5Series{App: name, TotalBombs: total}
		for min := 0; min < sc.FuzzMinutes; min++ {
			if err := ctx.Err(); err != nil {
				return Figure5Series{}, err
			}
			fuzz.Run(v, fz, p.App.Config.ParamDomain, fuzz.Options{
				DurationMs:     60_000,
				Seed:           seedFor(name) + int64(min),
				HandlerScreens: p.App.HandlerScreens,
				ScreenField:    p.App.ScreenField,
				WatchFields:    p.App.IntFieldRefs,
			})
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(realDetections(v, p)) / float64(total)
			}
			s.PctByMin = append(s.PctByMin, pct)
		}
		if n := len(s.PctByMin); n > 0 {
			s.FinalPct = s.PctByMin[n-1]
		}
		return s, nil
	})
}

// realDetections counts distinct real bombs whose detection ran.
func realDetections(v *vm.VM, p *PreparedApp) int {
	ids := map[string]bool{}
	for _, b := range p.Result.RealBombs() {
		ids[b.ID] = true
	}
	n := 0
	for id := range v.DetectionRuns() {
		if ids[id] {
			n++
		}
	}
	return n
}
