package exp

import (
	"testing"

	"bombdroid/internal/apk"
)

// goldenProtectedDigests pins the packed bytes of every named app's
// protected package at the Quick profiling scale (2500 events). The
// staged engine refactor, the artifact cache, and any worker count
// must all reproduce these bytes exactly — a change here means the
// protection pipeline's output drifted, which invalidates every
// digest-comparison bomb already in the field.
var goldenProtectedDigests = map[string]string{
	"AndroFish":     "50732564ccfcc955ece7ccc6a8cc4096bdc485bbaf42f5d40e62471e8b7596a8",
	"Angulo":        "54b0d9068ba658b16bd50c639128b51c0250749b43c5ac84543b3be23b49b366",
	"SWJournal":     "daf2a9bcbd9b46425c28e1df45cf942b54c098eed9e6e0e0d59b341cb21e76af",
	"Calendar":      "b2a454863a6e6ffa874cfcc7e0bb335a8ffc54b94a51c952c2a9834fb1135568",
	"BRouter":       "f0ef501faafee87fa2dd47bbb07a023011ad8a227fbbd9cca23da871a736b77a",
	"Binaural Beat": "07f3d72ce82c3991dc5561d9b4280cdfd52089c600fff9142c4e33bd1d3dc7e3",
	"Hash Droid":    "e27a896d051c68866e42f0dd48a1624b4965d96a1fdd7c32d7edaf8419cacd89",
	"CatLog":        "b0ba1e677e3c2eddd8c4523d213ea4c8e0f1c0282be195e393c389ba9224186e",
}

func TestProtectedOutputGoldenDigests(t *testing.T) {
	for name, want := range goldenProtectedDigests {
		p, err := Prepare(name, 2500)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		packed, err := apk.Pack(p.Protected)
		if err != nil {
			t.Fatalf("%s: pack: %v", name, err)
		}
		if got := apk.DigestHex(packed); got != want {
			t.Errorf("%s: protected package digest drifted:\n got %s\nwant %s", name, got, want)
		}
	}
}
