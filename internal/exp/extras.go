package exp

import (
	"context"
	"fmt"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/attack"
	"bombdroid/internal/baseline"
	"bombdroid/internal/cfg"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/symexec"
	"bombdroid/internal/vm"
)

// FPResult reports the §8.4 false-positive experiment.
type FPResult struct {
	App           string
	VirtualHours  int
	Responses     int
	DetectionRuns int // detections that executed and stayed silent
}

// FalsePositives runs Dynodroid on the *genuine* protected app for
// hours; any response is a false positive (the paper reports zero).
func FalsePositives(sc Scale, hours int) ([]FPResult, error) {
	return FalsePositivesCtx(context.Background(), sc, hours)
}

// FalsePositivesCtx is FalsePositives with cancellation via ctx.
func FalsePositivesCtx(ctx context.Context, sc Scale, hours int) ([]FPResult, error) {
	return mapApps(ctx, sc, func(_ Scale, name string, p *PreparedApp) (FPResult, error) {
		v, err := vm.New(p.Protected, android.EmulatorLab(2)[1], vm.Options{Seed: seedFor(name) + 21})
		if err != nil {
			return FPResult{}, err
		}
		r := fuzz.Run(v, fuzz.NewDynodroid(), p.App.Config.ParamDomain, fuzz.Options{
			DurationMs:     int64(hours) * 3_600_000,
			Seed:           seedFor(name) + 22,
			HandlerScreens: p.App.HandlerScreens,
			ScreenField:    p.App.ScreenField,
			WatchFields:    p.App.IntFieldRefs,
		})
		runs := 0
		for _, c := range r.DetectionRuns {
			runs += int(c)
		}
		return FPResult{
			App: name, VirtualHours: hours,
			Responses: len(r.Responses), DetectionRuns: runs,
		}, nil
	})
}

// SizeRow reports code-size growth for one app (§8.4: 8–13%, avg 9.7%).
type SizeRow struct {
	App         string
	BeforeBytes int
	AfterBytes  int
	IncreasePct float64
}

// CodeSize measures package growth across the named apps.
func CodeSize(sc Scale) ([]SizeRow, float64, error) {
	return CodeSizeCtx(context.Background(), sc)
}

// CodeSizeCtx is CodeSize with cancellation via ctx.
func CodeSizeCtx(ctx context.Context, sc Scale) ([]SizeRow, float64, error) {
	rows, err := mapApps(ctx, sc, func(_ Scale, name string, p *PreparedApp) (SizeRow, error) {
		before := p.Original.TotalSize()
		after := p.Protected.TotalSize()
		pct := 100 * float64(after-before) / float64(before)
		return SizeRow{App: name, BeforeBytes: before, AfterBytes: after, IncreasePct: pct}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.IncreasePct
	}
	return rows, sum / float64(len(rows)), nil
}

// AnalystRow reports the §8.3.2 human-analyst study for one app.
type AnalystRow struct {
	App       string
	Hours     int
	Triggered int
	Total     int
	Pct       float64
}

// HumanAnalystStudy gives each app to a skilled analyst with env
// mutation for the configured hours (paper: 20h, ≤9.3% triggered).
func HumanAnalystStudy(sc Scale) ([]AnalystRow, error) {
	return HumanAnalystStudyCtx(context.Background(), sc)
}

// HumanAnalystStudyCtx is HumanAnalystStudy with cancellation via ctx.
func HumanAnalystStudyCtx(ctx context.Context, sc Scale) ([]AnalystRow, error) {
	return mapApps(ctx, sc, func(sc Scale, name string, p *PreparedApp) (AnalystRow, error) {
		total := len(p.Result.RealBombs())
		ar, err := attack.HumanAnalyst(p.Pirated, p.App.Config.ParamDomain, total,
			sc.AnalystHours, p.App.HandlerScreens, p.App.ScreenField, seedFor(name)+31)
		if err != nil {
			return AnalystRow{}, err
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ar.BombsTriggered) / float64(total)
		}
		return AnalystRow{
			App: name, Hours: sc.AnalystHours,
			Triggered: ar.BombsTriggered, Total: total, Pct: pct,
		}, nil
	})
}

// MatrixRow is one (attack, protection) cell of the resilience matrix.
type MatrixRow struct {
	Attack     string
	Protection string
	Outcome    string
	Defeated   bool // attack defeated the protection
}

// ResilienceMatrix runs the §2.1 attack suite against naive bombs,
// SSN, and BombDroid on one generated app, reproducing the paper's
// qualitative table: every attack defeats at least one baseline and
// none defeats BombDroid.
func ResilienceMatrix(seed int64) ([]MatrixRow, error) {
	return ResilienceMatrixCtx(context.Background(), seed)
}

// ResilienceMatrixCtx is the canonical resilience-matrix runner: the
// attack stages run in order and ctx is checked between them, so a
// cancelled run stops at the next attack boundary.
func ResilienceMatrixCtx(ctx context.Context, seed int64) ([]MatrixRow, error) {
	app, err := appgen.Generate(appgen.Config{Name: "matrix", Seed: seed, TargetLOC: 1200})
	if err != nil {
		return nil, err
	}
	key, err := apk.NewKeyPair(seed)
	if err != nil {
		return nil, err
	}
	res := apk.Resources{Strings: []string{"hello"}, Author: "dev"}
	orig, err := apk.Sign(apk.Build("matrix", app.File, res), key)
	if err != nil {
		return nil, err
	}
	ko := key.PublicKeyHex()

	prot, protRes, err := core.ProtectPackage(orig, key, core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	protFile, err := prot.DexFile()
	if err != nil {
		return nil, err
	}
	naive, err := baseline.ProtectNaive(app.File, ko, baseline.NaiveOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	ssn, err := baseline.ProtectSSN(app.File, ko, baseline.SSNOptions{Seed: seed, InvokeProb: 0.5})
	if err != nil {
		return nil, err
	}

	var rows []MatrixRow
	add := func(attackName, protection, outcome string, defeated bool) {
		rows = append(rows, MatrixRow{
			Attack: attackName, Protection: protection,
			Outcome: outcome, Defeated: defeated,
		})
	}

	// Text search (§2.1).
	naiveHits := attack.FindToken(attack.TextSearch(naive.File), "getPublicKey")
	ssnHits := attack.FindToken(attack.TextSearch(ssn.File), "getPublicKey")
	bdHits := attack.FindToken(attack.TextSearch(protFile), "getPublicKey")
	add("text search", "naive", fmt.Sprintf("%d getPublicKey sites located", naiveHits), naiveHits > 0)
	add("text search", "ssn", "token hidden by reflection (but reflectCall visible)", ssnHits > 0)
	add("text search", "bombdroid", "detection code encrypted; token absent", bdHits > 0)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Symbolic execution / path exploration (G1).
	nsum := symexec.Analyze(naive.File, symexec.Options{Targets: []dex.API{dex.APIGetPublicKey}})
	ssum := symexec.Analyze(ssn.File, symexec.Options{Targets: []dex.API{dex.APIReflectCall}})
	bsum := symexec.Analyze(protFile, symexec.Options{Targets: []dex.API{dex.APIDecryptLoad}})
	add("symbolic execution", "naive",
		fmt.Sprintf("%d detection paths solved", len(nsum.SolvedHits())), len(nsum.SolvedHits()) > 0)
	add("symbolic execution", "ssn",
		fmt.Sprintf("%d reflected-call paths solved (probabilistic gate bypassed)", len(ssum.SolvedHits())),
		len(ssum.SolvedHits()) > 0)
	add("symbolic execution", "bombdroid",
		fmt.Sprintf("%d/%d decrypt paths unsolvable (uninterpreted hash)",
			len(bsum.UnsolvableHits()), len(bsum.Hits)), len(bsum.SolvedHits()) > 0)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Forced execution (§2.1 circumventing trigger conditions).
	appRes := apk.Resources{Strings: []string{"hello"}, Author: "dev"}
	nvForce, err := attack.ForcedExecution(naive.File, appRes, seed)
	if err != nil {
		return nil, err
	}
	bdForce, err := attack.ForcedExecution(protFile, appRes, seed)
	if err != nil {
		return nil, err
	}
	add("forced execution", "naive",
		fmt.Sprintf("%d detection sites revealed by forcing", nvForce.ForcedOnlyReveals),
		nvForce.ForcedOnlyReveals > 0)
	// Sealed payloads open only under their true key: a payload that
	// ran was *legitimately triggered* (its key was in a register),
	// never circumvented. Circumvention attempts are exactly the runs
	// that died in failed decryption. Tally both: the attack is
	// defeated (per the paper's G2) because zero payloads executed
	// without their keys.
	legitFires := len(bdForce.RevealedIDs)
	weakFires := 0
	for id := range bdForce.RevealedIDs {
		for _, b := range protRes.Bombs {
			if b.ID == id && b.Strength == cfg.Weak {
				weakFires++
			}
		}
	}
	add("forced execution", "bombdroid",
		fmt.Sprintf("0 payloads ran without their key; %d fired via naturally-satisfied triggers (%d weak); %d circumvention attempts died in decryption",
			legitFires, weakFires, bdForce.Corrupted),
		false)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Code instrumentation: rand-hook against SSN.
	ssnPkg, err := apk.Sign(apk.Build("matrix", ssn.File, res), key)
	if err != nil {
		return nil, err
	}
	attacker, err := apk.NewKeyPair(seed ^ 0x99)
	if err != nil {
		return nil, err
	}
	ssnPirated, err := apk.Repackage(ssnPkg, attacker, apk.RepackOptions{})
	if err != nil {
		return nil, err
	}
	v, err := vm.NewUnverified(ssnPirated, android.EmulatorLab(1)[0], vm.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	v.Hook(dex.APIRandPercent, func(vm.APICall) (dex.Value, bool, error) {
		return dex.Int64(0), true, nil
	})
	exposed := 0
	v.Observe(func(call vm.APICall) {
		if call.API == dex.APIGetPublicKey {
			exposed++
		}
	})
	fuzz.Run(v, fuzz.PUMA{}, app.Config.ParamDomain, fuzz.Options{DurationMs: 3 * 60_000, Seed: seed})
	add("instrumentation (rand→0)", "ssn",
		fmt.Sprintf("probabilistic gate made deterministic; %d detections exposed", exposed), exposed > 0)
	add("instrumentation (rand→0)", "bombdroid",
		"no probabilistic gate to force; triggers are data-dependent", false)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Program slicing + slice execution (HARVESTER).
	bdSlices, err := attack.ExecuteSlices(protFile, appRes, seed)
	if err != nil {
		return nil, err
	}
	add("slicing+execution", "bombdroid",
		fmt.Sprintf("%d slices executed, %d payloads revealed, %d corrupted",
			bdSlices.Executed, bdSlices.Revealed, bdSlices.Corrupted), bdSlices.Revealed > 0)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Brute force against keys (§5.1).
	bf := attack.BruteForce(protFile, attack.BruteForceOptions{IntBudget: 1 << 10})
	add("brute force (2^10 budget)", "bombdroid",
		fmt.Sprintf("%d/%d keys cracked (weak booleans and small in-domain ints)",
			len(bf.Cracked), bf.Sites),
		len(bf.Cracked) == bf.Sites && bf.Sites > 0)

	return rows, nil
}
