package exp

import (
	"fmt"
	"strings"
)

// RenderTable renders rows as a fixed-width text table.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Category, fmt.Sprint(r.Apps), fmt.Sprint(r.AvgLOC),
			fmt.Sprint(r.AvgCandidate), fmt.Sprint(r.AvgQCs), fmt.Sprint(r.AvgEnvVars),
		})
	}
	return RenderTable("Table 1: static characteristics",
		[]string{"Category", "#apps", "avg LOC", "avg candidate methods", "avg existing QCs", "avg env vars"}, out)
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, fmt.Sprint(r.Bombs), fmt.Sprint(r.Existing),
			fmt.Sprint(r.Artificial), fmt.Sprint(r.Bogus),
		})
	}
	return RenderTable("Table 2: injected logic bombs",
		[]string{"App", "bombs", "existing QCs", "artificial QCs", "(bogus)"}, out)
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%.0f", r.MinSec),
			fmt.Sprintf("%.0f", r.MaxSec),
			fmt.Sprintf("%.0f", r.AvgSec),
			fmt.Sprintf("%d/%d", r.Success, r.Sessions),
		})
	}
	return RenderTable("Table 3: time to trigger the first logic bomb",
		[]string{"App", "min (s)", "max (s)", "avg (s)", "success"}, out)
}

// FormatTable4 renders Table 4. Rows with no real bombs render as
// n/a: a 0.0 cell means the fuzzer satisfied nothing, an n/a cell
// means there was nothing to satisfy.
func FormatTable4(rows []Table4Row) string {
	var out [][]string
	for _, r := range rows {
		cell := func(v float64) string {
			if r.RealBombs == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.1f", v)
		}
		out = append(out, []string{
			r.App, cell(r.Monkey), cell(r.PUMA), cell(r.Hooker), cell(r.Dynodroid),
		})
	}
	return RenderTable("Table 4: % outer trigger conditions satisfied",
		[]string{"App", "Monkey", "PUMA", "AndroidHooker", "Dynodroid"}, out)
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%.2f", r.TaSec),
			fmt.Sprintf("%.2f", r.TbSec),
			fmt.Sprintf("%.1f", r.OverheadPct),
			fmt.Sprintf("%.1f", r.SizePct),
		})
	}
	return RenderTable("Table 5: execution time overhead (+ §8.4 code size)",
		[]string{"App", "Ta (s)", "Tb (s)", "overhead %", "size +%"}, out)
}

// FormatFigure3 renders the entropy series as sparkline-style rows.
func FormatFigure3(series []Figure3Series) string {
	var b strings.Builder
	b.WriteString("Figure 3: AndroFish program variables over time (unique values)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-12s unique=%-6d %s\n", s.Var, s.Unique, spark(s.Samples))
	}
	return b.String()
}

// spark renders samples as a unicode sparkline.
func spark(xs []int64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) * int64(len(levels)-1) / (hi - lo))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// FormatFigure4 renders the strength histograms.
func FormatFigure4(rows []Figure4Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprint(r.ExistWeak), fmt.Sprint(r.ExistMedium), fmt.Sprint(r.ExistStrong),
			fmt.Sprint(r.ArtMedium), fmt.Sprint(r.ArtStrong),
		})
	}
	return RenderTable("Figure 4: strength of outer trigger conditions",
		[]string{"App", "exist weak", "exist medium", "exist strong", "artif medium", "artif strong"}, out)
}

// FormatFigure5 renders the triggered-bomb time series.
func FormatFigure5(series []Figure5Series) string {
	var b strings.Builder
	b.WriteString("Figure 5: % bombs triggered by Dynodroid per minute\n")
	for _, s := range series {
		pts := make([]int64, len(s.PctByMin))
		for i, p := range s.PctByMin {
			pts[i] = int64(p * 10)
		}
		fmt.Fprintf(&b, "%-14s final=%5.1f%% of %-4d %s\n", s.App, s.FinalPct, s.TotalBombs, spark(pts))
	}
	return b.String()
}

// FormatFPResults renders the false-positive study.
func FormatFPResults(rows []FPResult) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, fmt.Sprint(r.VirtualHours), fmt.Sprint(r.DetectionRuns), fmt.Sprint(r.Responses),
		})
	}
	return RenderTable("§8.4 false positives (genuine app under Dynodroid)",
		[]string{"App", "hours", "silent detections", "responses (FPs)"}, out)
}

// FormatSizeRows renders the code-size study.
func FormatSizeRows(rows []SizeRow, avg float64) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, fmt.Sprint(r.BeforeBytes), fmt.Sprint(r.AfterBytes), fmt.Sprintf("%.1f", r.IncreasePct),
		})
	}
	s := RenderTable("§8.4 code size increase",
		[]string{"App", "before (B)", "after (B)", "+%"}, out)
	return s + fmt.Sprintf("average: %.1f%%\n", avg)
}

// FormatAnalystRows renders the human-analyst study.
func FormatAnalystRows(rows []AnalystRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, fmt.Sprint(r.Hours),
			fmt.Sprintf("%d/%d", r.Triggered, r.Total),
			fmt.Sprintf("%.1f", r.Pct),
		})
	}
	return RenderTable("§8.3.2 human analysts (env mutation allowed)",
		[]string{"App", "hours", "triggered", "%"}, out)
}

// FormatMatrix renders the resilience matrix.
func FormatMatrix(rows []MatrixRow) string {
	var out [][]string
	for _, r := range rows {
		verdict := "resists"
		if r.Defeated {
			verdict = "DEFEATED"
		}
		out = append(out, []string{r.Attack, r.Protection, verdict, r.Outcome})
	}
	return RenderTable("Resilience matrix (attack × protection)",
		[]string{"Attack", "Protection", "Verdict", "Outcome"}, out)
}
