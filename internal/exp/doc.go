// Package exp regenerates every table and figure in the paper's
// evaluation (§8): Table 1 (corpus statics), Table 2 (injected
// bombs), Table 3 (time to first trigger), Table 4 (fuzzer outer-
// trigger coverage), Table 5 (execution overhead), Figure 3 (program-
// variable entropy), Figure 4 (trigger strength), Figure 5 (bombs
// triggered by Dynodroid over an hour) — plus the §8.3.2 human-
// analyst study, the §8.4 false-positive and code-size measurements,
// and a resilience matrix pitting every §2.1 attack against naive
// bombs, SSN, and BombDroid. Both cmd/report and the repository's
// benchmarks drive these entry points; Scale shrinks workloads for
// quick runs.
//
// # API convention: ctx-first
//
// Every experiment has one canonical entry point that takes a
// context.Context as its first parameter — Table3Ctx, Figure5Ctx,
// ChaosResilienceCtx, AblationsCtx, ResilienceMatrixCtx, and so on.
// The canonical function owns the whole implementation: cancellation
// is checked between work items (and between stages for the staged
// runners), so a fired context stops the run at the next boundary and
// returns ctx.Err(). The context-free name (Table3, Figure5, …) is a
// one-line convenience wrapper that passes context.Background(); it
// exists for REPL-style callers and carries no logic of its own. New
// experiments must follow the same shape: implement the Ctx variant,
// wrap it, never fork the body.
//
// Scale defaulting follows the same single-owner rule: the pool
// helpers (mapApps, forIndexed) resolve Scale defaults exactly once
// and hand the resolved Scale to the experiment body, so individual
// experiments never call withDefaults themselves.
package exp
