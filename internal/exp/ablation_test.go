package exp

import "testing"

func TestAblations(t *testing.T) {
	rows, err := Ablations(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s: %s | %s", r.Name, r.With, r.Without)
	}
	if FormatAblations(rows) == "" {
		t.Error("empty formatting")
	}
}
