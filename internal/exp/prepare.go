package exp

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/artifact"
	"bombdroid/internal/core"
	"bombdroid/internal/obs"
	"bombdroid/internal/sim"
	"bombdroid/internal/vm"
)

// Scale trades fidelity for runtime. Full reproduces the paper's
// workloads; Quick shrinks session counts and durations for tests and
// benchmarks.
type Scale struct {
	// Table 1.
	AppsPerCategory int // 0 = all (Table 1's 963-app corpus)
	// Table 3.
	SessionsPerApp int // paper: 50
	SessionCapMin  int // paper: 60
	// Table 4 / Figure 5.
	FuzzMinutes int // paper: 60
	// Table 5.
	OverheadEvents int // paper: 20,000
	OverheadRuns   int // paper: 50 (we default lower; it is an average)
	// Profiling.
	ProfileEvents int // paper: 10,000
	// §8.3.2.
	AnalystHours int // paper: 20
	// Apps to evaluate (defaults to the paper's eight).
	Apps []string
	// Workers bounds evaluation parallelism: apps across tables,
	// sessions within campaigns, and fuzzer cells all fan out across
	// up to Workers goroutines. 0 means one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 preserves the original
	// single-threaded behavior. Any setting produces byte-identical
	// tables — see pool.go for the seeding discipline.
	Workers int
	// Obs, when set, collects evaluation metrics: pool utilization,
	// campaign/session counters, the Table 3 trigger-latency
	// histogram, VM opcode profiles, and merged report-pipeline
	// counters. Deterministic metrics in it are byte-identical at any
	// Workers setting (see obs.SnapshotDeterministic). Nil disables
	// all instrumentation.
	Obs *obs.Registry
}

// Full is the paper-sized workload.
func Full() Scale {
	return Scale{
		AppsPerCategory: 0,
		SessionsPerApp:  50,
		SessionCapMin:   60,
		FuzzMinutes:     60,
		OverheadEvents:  20_000,
		OverheadRuns:    5,
		ProfileEvents:   10_000,
		AnalystHours:    20,
		Apps:            appgen.NamedApps,
	}
}

// Quick is a reduced workload for tests and benchmarks.
func Quick() Scale {
	return Scale{
		AppsPerCategory: 4,
		SessionsPerApp:  8,
		SessionCapMin:   20,
		FuzzMinutes:     10,
		OverheadEvents:  3_000,
		OverheadRuns:    2,
		ProfileEvents:   2_500,
		AnalystHours:    2,
		Apps:            []string{"AndroFish", "SWJournal", "Hash Droid"},
	}
}

func (s Scale) withDefaults() Scale {
	if s.SessionsPerApp == 0 {
		s.SessionsPerApp = 8
	}
	if s.SessionCapMin == 0 {
		s.SessionCapMin = 20
	}
	if s.FuzzMinutes == 0 {
		s.FuzzMinutes = 10
	}
	if s.OverheadEvents == 0 {
		s.OverheadEvents = 3_000
	}
	if s.OverheadRuns == 0 {
		s.OverheadRuns = 2
	}
	if s.ProfileEvents == 0 {
		s.ProfileEvents = 2_500
	}
	if s.AnalystHours == 0 {
		s.AnalystHours = 2
	}
	if len(s.Apps) == 0 {
		s.Apps = appgen.NamedApps
	}
	return s
}

// PreparedApp is a named evaluation app taken through the whole
// Figure-1 pipeline: generated, profiled (Dynodroid + Traceview),
// protected, developer-signed, and attacker-repackaged.
type PreparedApp struct {
	App       *appgen.App
	DevKey    *apk.KeyPair
	Original  *apk.Package // signed, unprotected
	Protected *apk.Package // signed, protected
	Pirated   *apk.Package // protected + attacker re-sign
	Result    *core.Result
	Profile   map[string]int64
	Surface   sim.Surface
	// Run records how the protection engine satisfied this prepare:
	// artifact keys, per-stage wall timings, and cache hits.
	Run core.RunInfo
}

// prepStore is the process-wide content-addressed artifact store. It
// replaces the old (name, profileEvents)-keyed sync.Once map: the
// generated original, the engine's profile/analyze/result artifacts,
// and the fully prepared app are all cached here, addressed by
// content digests + option fingerprints. The per-key singleflight in
// artifact.Store gives the same guarantee the Once map did — one
// pipeline run per key no matter how many goroutines ask — while
// letting a re-run with different late-stage options reuse the
// expensive profiling artifacts. The bound is sized far above the
// eight-app corpus, so prepared apps keep their pointer identity for
// the life of the process.
var (
	prepStore = artifact.NewStore(1 << 30)
	prepRuns  atomic.Int64
)

// PrepareStore exposes the shared artifact store (read-only use:
// stats for benchmarks and batch manifests).
func PrepareStore() *artifact.Store { return prepStore }

// genArtifact is the tier-1 cached artifact: the generated, signed,
// unprotected app. Its key covers only the app name — generation is
// fully determined by it.
type genArtifact struct {
	name     string
	app      *appgen.App
	devKey   *apk.KeyPair
	original *apk.Package
}

func genApp(name string) (*genArtifact, error) {
	key := artifact.NewFingerprint("exp/gen/v1").Str(name).Done()
	v, _, err := prepStore.Do(key, func() (any, int64, error) {
		g, err := buildOriginal(name)
		if err != nil {
			return nil, 0, err
		}
		return g, int64(g.original.TotalSize()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*genArtifact), nil
}

// buildOriginal generates a named app and packages it the way a
// developer would: assets, resource strings, and a signature.
func buildOriginal(name string) (*genArtifact, error) {
	app, err := appgen.NamedApp(name)
	if err != nil {
		return nil, err
	}
	seed := seedFor(name)
	devKey, err := apk.NewKeyPair(seed)
	if err != nil {
		return nil, err
	}
	// Real F-Droid packages bundle assets and library code far beyond
	// the app's own logic; model that footprint so relative size
	// metrics (§8.4) have a realistic denominator. ~70 B of assets
	// per LOC approximates small open-source APKs (hundreds of KB for
	// a 3k-LOC app).
	assets := make([]byte, app.LOC*70)
	arnd := rand.New(rand.NewSource(seed))
	arnd.Read(assets)
	res := apk.Resources{
		Strings: []string{"Welcome to " + name, "Settings", "About",
			"Rate this app", "Share", "Help", "Licenses"},
		Author: name + " devs",
		Icon:   assets,
	}
	original, err := apk.Sign(apk.Build(name, app.File, res), devKey)
	if err != nil {
		return nil, err
	}
	return &genArtifact{name: name, app: app, devKey: devKey, original: original}, nil
}

// Prepare builds (and caches) the pipeline output for a named app.
// One cmd/report invocation prepares each app exactly once no matter
// how many tables and figures ask for it, or from how many
// goroutines. The cache key is content-addressed: the original
// package's digests plus the profiling and tuning options — not the
// app's name.
func Prepare(name string, profileEvents int) (*PreparedApp, error) {
	return PrepareCtx(context.Background(), name, profileEvents)
}

// PrepareCtx is Prepare with cancellation. Concurrent callers of the
// same key share one pipeline run; that run observes the first
// caller's context.
func PrepareCtx(ctx context.Context, name string, profileEvents int) (*PreparedApp, error) {
	g, err := genApp(name)
	if err != nil {
		return nil, err
	}
	t := protectTuning[name] // zero tuning for unknown apps
	key := artifact.NewFingerprint("exp/prepared/v1").
		Key(core.InputKey(g.original)).
		Int(int64(profileEvents)).
		F64(t.existingFrac).F64(t.alpha).F64(t.bogusFrac).
		Done()
	v, _, err := prepStore.Do(key, func() (any, int64, error) {
		prepRuns.Add(1)
		p, err := prepare(ctx, g, profileEvents)
		if err != nil {
			return nil, 0, err
		}
		size := int64(p.Protected.TotalSize() + p.Pirated.TotalSize())
		return p, size, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*PreparedApp), nil
}

// PrepareRuns reports how many times the full generate+profile+inject
// pipeline has actually executed in this process — the probe behind
// the prepare-once guarantee. Cache hits do not advance it.
func PrepareRuns() int64 { return prepRuns.Load() }

// protectTuning calibrates per-app bomb densities so injection counts
// land near paper Table 2 (AndroFish 36+31, … BRouter 144+119).
var protectTuning = map[string]struct {
	existingFrac float64
	alpha        float64
	bogusFrac    float64
}{
	"AndroFish":     {0.60, 0.34, 0.25},
	"Angulo":        {0.52, 0.30, 0.25},
	"SWJournal":     {0.42, 0.38, 0.25},
	"Calendar":      {0.55, 0.30, 0.25},
	"BRouter":       {0.56, 0.42, 0.25},
	"Binaural Beat": {0.75, 0.33, 0.25},
	"Hash Droid":    {0.66, 0.28, 0.25},
	"CatLog":        {0.54, 0.35, 0.25},
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7FFF_FFFF)
}

// prepare runs the protect-sign-repackage half of the pipeline on an
// already generated app, through the staged engine. Wall-clock
// timings follow the obs volatile-series convention: every series
// below is Volatile, so SnapshotDeterministic never sees them and
// stays byte-stable at any cache state or worker count.
func prepare(ctx context.Context, g *genArtifact, profileEvents int) (*PreparedApp, error) {
	reg := obs.Default()
	t0 := time.Now()
	app, name := g.app, g.name
	seed := seedFor(name)

	opts := core.Options{Seed: seed}
	if t, ok := protectTuning[name]; ok {
		opts.ExistingFrac = t.existingFrac
		opts.Alpha = t.alpha
		opts.BogusFrac = t.bogusFrac
	}
	// Step 2 of Fig. 1 (profiling on a stock device) plus injection
	// run inside the engine; its per-stage wall histograms and cache
	// counters land on the default registry as Volatile series.
	watch := append(append([]string{}, app.IntFieldRefs...), app.StrFieldRefs...)
	watch = append(watch, app.BoolFieldRefs...)
	eng := &core.Engine{
		Opts: opts,
		Prof: core.ProfileConfig{
			Events: profileEvents,
			Domain: app.Config.ParamDomain,
			Seed:   seed,
			Watch:  watch,
		},
		Cache: prepStore,
		Obs:   reg,
	}
	prot, err := eng.Run(ctx, g.original)
	if err != nil {
		return nil, err
	}

	// The developer signing step — the half the paper's workflow ships
	// back to the developer.
	protected, err := apk.Sign(prot.Unsigned, g.devKey)
	if err != nil {
		return nil, err
	}
	attacker, err := apk.NewKeyPair(seed ^ 0x5151)
	if err != nil {
		return nil, err
	}
	pirated, err := apk.Repackage(protected, attacker, apk.RepackOptions{
		NewAuthor: "repack inc", NewIcon: []byte{0xFF, 0xD8, 0xFF},
	})
	if err != nil {
		return nil, err
	}
	reg.Counter("exp_prepare_runs_total", obs.Volatile()).Inc()
	reg.Counter("exp_prepare_wall_ms_total", obs.Volatile()).Add(time.Since(t0).Milliseconds())
	return &PreparedApp{
		App: app, DevKey: g.devKey, Original: g.original, Protected: protected,
		Pirated: pirated, Result: prot.Result, Profile: prot.Profile,
		Surface: sim.SurfaceOf(app),
		Run:     prot.Info,
	}, nil
}

// RealBlobs returns the blob indices of real (non-bogus) bombs.
func (p *PreparedApp) RealBlobs() map[int64]bool {
	out := map[int64]bool{}
	for _, b := range p.Result.RealBombs() {
		out[b.BlobIdx] = true
	}
	return out
}

// InstallPirated boots the pirated app on a device without signature
// checks (attacker lab) or with them (user devices use vm.New).
func (p *PreparedApp) InstallPirated(dev *android.Device, seed int64) (*vm.VM, error) {
	return vm.New(p.Pirated, dev, vm.Options{Seed: seed})
}

// countReal counts how many of the given blob indices are real bombs.
func countReal(blobs []int64, real map[int64]bool) int {
	n := 0
	for _, b := range blobs {
		if real[b] {
			n++
		}
	}
	return n
}
