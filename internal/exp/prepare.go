// Package exp regenerates every table and figure in the paper's
// evaluation (§8): Table 1 (corpus statics), Table 2 (injected
// bombs), Table 3 (time to first trigger), Table 4 (fuzzer outer-
// trigger coverage), Table 5 (execution overhead), Figure 3 (program-
// variable entropy), Figure 4 (trigger strength), Figure 5 (bombs
// triggered by Dynodroid over an hour) — plus the §8.3.2 human-
// analyst study, the §8.4 false-positive and code-size measurements,
// and a resilience matrix pitting every §2.1 attack against naive
// bombs, SSN, and BombDroid. Both cmd/report and the repository's
// benchmarks drive these entry points; Scale shrinks workloads for
// quick runs.
package exp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/obs"
	"bombdroid/internal/sim"
	"bombdroid/internal/vm"
)

// Scale trades fidelity for runtime. Full reproduces the paper's
// workloads; Quick shrinks session counts and durations for tests and
// benchmarks.
type Scale struct {
	// Table 1.
	AppsPerCategory int // 0 = all (Table 1's 963-app corpus)
	// Table 3.
	SessionsPerApp int // paper: 50
	SessionCapMin  int // paper: 60
	// Table 4 / Figure 5.
	FuzzMinutes int // paper: 60
	// Table 5.
	OverheadEvents int // paper: 20,000
	OverheadRuns   int // paper: 50 (we default lower; it is an average)
	// Profiling.
	ProfileEvents int // paper: 10,000
	// §8.3.2.
	AnalystHours int // paper: 20
	// Apps to evaluate (defaults to the paper's eight).
	Apps []string
	// Workers bounds evaluation parallelism: apps across tables,
	// sessions within campaigns, and fuzzer cells all fan out across
	// up to Workers goroutines. 0 means one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 preserves the original
	// single-threaded behavior. Any setting produces byte-identical
	// tables — see pool.go for the seeding discipline.
	Workers int
	// Obs, when set, collects evaluation metrics: pool utilization,
	// campaign/session counters, the Table 3 trigger-latency
	// histogram, VM opcode profiles, and merged report-pipeline
	// counters. Deterministic metrics in it are byte-identical at any
	// Workers setting (see obs.SnapshotDeterministic). Nil disables
	// all instrumentation.
	Obs *obs.Registry
}

// Full is the paper-sized workload.
func Full() Scale {
	return Scale{
		AppsPerCategory: 0,
		SessionsPerApp:  50,
		SessionCapMin:   60,
		FuzzMinutes:     60,
		OverheadEvents:  20_000,
		OverheadRuns:    5,
		ProfileEvents:   10_000,
		AnalystHours:    20,
		Apps:            appgen.NamedApps,
	}
}

// Quick is a reduced workload for tests and benchmarks.
func Quick() Scale {
	return Scale{
		AppsPerCategory: 4,
		SessionsPerApp:  8,
		SessionCapMin:   20,
		FuzzMinutes:     10,
		OverheadEvents:  3_000,
		OverheadRuns:    2,
		ProfileEvents:   2_500,
		AnalystHours:    2,
		Apps:            []string{"AndroFish", "SWJournal", "Hash Droid"},
	}
}

func (s Scale) withDefaults() Scale {
	if s.SessionsPerApp == 0 {
		s.SessionsPerApp = 8
	}
	if s.SessionCapMin == 0 {
		s.SessionCapMin = 20
	}
	if s.FuzzMinutes == 0 {
		s.FuzzMinutes = 10
	}
	if s.OverheadEvents == 0 {
		s.OverheadEvents = 3_000
	}
	if s.OverheadRuns == 0 {
		s.OverheadRuns = 2
	}
	if s.ProfileEvents == 0 {
		s.ProfileEvents = 2_500
	}
	if s.AnalystHours == 0 {
		s.AnalystHours = 2
	}
	if len(s.Apps) == 0 {
		s.Apps = appgen.NamedApps
	}
	return s
}

// PreparedApp is a named evaluation app taken through the whole
// Figure-1 pipeline: generated, profiled (Dynodroid + Traceview),
// protected, developer-signed, and attacker-repackaged.
type PreparedApp struct {
	App       *appgen.App
	DevKey    *apk.KeyPair
	Original  *apk.Package // signed, unprotected
	Protected *apk.Package // signed, protected
	Pirated   *apk.Package // protected + attacker re-sign
	Result    *core.Result
	Profile   map[string]int64
	Surface   sim.Surface
}

// prepEntry is one memoized pipeline run. The per-key sync.Once lets
// concurrent Prepare calls for *different* apps run in parallel while
// duplicate calls for the same key block on the one in-flight run
// instead of repeating it — a global mutex around prepare() would
// serialize the whole evaluation behind its slowest app.
type prepEntry struct {
	once sync.Once
	p    *PreparedApp
	err  error
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*prepEntry{}
	prepRuns  atomic.Int64
)

// Prepare builds (and caches) the pipeline output for a named app,
// keyed by (name, profileEvents). One cmd/report invocation prepares
// each app exactly once no matter how many tables and figures ask
// for it, or from how many goroutines.
func Prepare(name string, profileEvents int) (*PreparedApp, error) {
	key := fmt.Sprintf("%s/%d", name, profileEvents)
	prepMu.Lock()
	e, ok := prepCache[key]
	if !ok {
		e = &prepEntry{}
		prepCache[key] = e
	}
	prepMu.Unlock()
	e.once.Do(func() {
		prepRuns.Add(1)
		e.p, e.err = prepare(name, profileEvents)
	})
	return e.p, e.err
}

// PrepareRuns reports how many times the full generate+profile+inject
// pipeline has actually executed in this process — the probe behind
// the prepare-once guarantee. Cache hits do not advance it.
func PrepareRuns() int64 { return prepRuns.Load() }

// protectTuning calibrates per-app bomb densities so injection counts
// land near paper Table 2 (AndroFish 36+31, … BRouter 144+119).
var protectTuning = map[string]struct {
	existingFrac float64
	alpha        float64
	bogusFrac    float64
}{
	"AndroFish":     {0.60, 0.34, 0.25},
	"Angulo":        {0.52, 0.30, 0.25},
	"SWJournal":     {0.42, 0.38, 0.25},
	"Calendar":      {0.55, 0.30, 0.25},
	"BRouter":       {0.56, 0.42, 0.25},
	"Binaural Beat": {0.75, 0.33, 0.25},
	"Hash Droid":    {0.66, 0.28, 0.25},
	"CatLog":        {0.54, 0.35, 0.25},
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7FFF_FFFF)
}

// wallMs is the wall clock in ms for the prepare spans — operator
// timing only, never compared across runs (the spans are Volatile).
func wallMs() int64 { return time.Now().UnixMilli() }

func prepare(name string, profileEvents int) (*PreparedApp, error) {
	// The prepare pipeline is wall-clock work (it happens once per app
	// per process, outside any virtual campaign), so its spans go to
	// the process-default registry as Volatile.
	sp := obs.Default().StartVolatileSpan("prepare", wallMs())
	spGen := sp.Child("generate", wallMs())
	app, err := appgen.NamedApp(name)
	if err != nil {
		return nil, err
	}
	seed := seedFor(name)
	devKey, err := apk.NewKeyPair(seed)
	if err != nil {
		return nil, err
	}
	// Real F-Droid packages bundle assets and library code far beyond
	// the app's own logic; model that footprint so relative size
	// metrics (§8.4) have a realistic denominator. ~70 B of assets
	// per LOC approximates small open-source APKs (hundreds of KB for
	// a 3k-LOC app).
	assets := make([]byte, app.LOC*70)
	arnd := rand.New(rand.NewSource(seed))
	arnd.Read(assets)
	res := apk.Resources{
		Strings: []string{"Welcome to " + name, "Settings", "About",
			"Rate this app", "Share", "Help", "Licenses"},
		Author: name + " devs",
		Icon:   assets,
	}
	original, err := apk.Sign(apk.Build(name, app.File, res), devKey)
	if err != nil {
		return nil, err
	}
	spGen.End(wallMs())

	// Step 2 of Fig. 1: profiling run on a stock device.
	spProf := sp.Child("profile", wallMs())
	watch := append(append([]string{}, app.IntFieldRefs...), app.StrFieldRefs...)
	watch = append(watch, app.BoolFieldRefs...)
	profVM, err := vm.New(original, android.EmulatorLab(1)[0], vm.Options{Seed: seed, Profile: true})
	if err != nil {
		return nil, err
	}
	profile, fieldVals := fuzz.Profile(profVM, app.Config.ParamDomain, profileEvents, watch, seed)
	spProf.End(wallMs())

	opts := core.Options{
		Seed:        seed,
		Profile:     profile,
		FieldValues: fieldVals,
	}
	if t, ok := protectTuning[name]; ok {
		opts.ExistingFrac = t.existingFrac
		opts.Alpha = t.alpha
		opts.BogusFrac = t.bogusFrac
	}
	// Injection (bomb construction + payload encryption) and the
	// developer signing step are timed separately — the sign half is
	// the part the paper's workflow ships back to the developer.
	spInj := sp.Child("inject", wallMs())
	unsigned, result, err := core.BuildProtected(original, opts)
	if err != nil {
		return nil, err
	}
	spInj.End(wallMs())
	spSign := sp.Child("sign", wallMs())
	protected, err := apk.Sign(unsigned, devKey)
	if err != nil {
		return nil, err
	}
	spSign.End(wallMs())

	spRep := sp.Child("repackage", wallMs())
	attacker, err := apk.NewKeyPair(seed ^ 0x5151)
	if err != nil {
		return nil, err
	}
	pirated, err := apk.Repackage(protected, attacker, apk.RepackOptions{
		NewAuthor: "repack inc", NewIcon: []byte{0xFF, 0xD8, 0xFF},
	})
	if err != nil {
		return nil, err
	}
	spRep.End(wallMs())
	sp.End(wallMs())
	return &PreparedApp{
		App: app, DevKey: devKey, Original: original, Protected: protected,
		Pirated: pirated, Result: result, Profile: profile,
		Surface: sim.SurfaceOf(app),
	}, nil
}

// RealBlobs returns the blob indices of real (non-bogus) bombs.
func (p *PreparedApp) RealBlobs() map[int64]bool {
	out := map[int64]bool{}
	for _, b := range p.Result.RealBombs() {
		out[b.BlobIdx] = true
	}
	return out
}

// InstallPirated boots the pirated app on a device without signature
// checks (attacker lab) or with them (user devices use vm.New).
func (p *PreparedApp) InstallPirated(dev *android.Device, seed int64) (*vm.VM, error) {
	return vm.New(p.Pirated, dev, vm.Options{Seed: seed})
}

// countReal counts how many of the given blob indices are real bombs.
func countReal(blobs []int64, real map[int64]bool) int {
	n := 0
	for _, b := range blobs {
		if real[b] {
			n++
		}
	}
	return n
}
