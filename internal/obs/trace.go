package obs

// Distributed report-lifecycle tracing, zero-dep like the rest of the
// package. A TraceCtx is minted when a detonation event enters the
// device-side report pipeline, collects stage stamps and per-attempt
// annotations as the event survives dedup, retries, and breaker
// transitions, rides an HTTP header to the market daemon, and is
// closed when the market acks after its WAL flush — yielding the
// per-report latency breakdown the paper's convergence claim (§3.5)
// actually turns on: queue wait, backoff, network, group-commit flush.
//
// Determinism rules (the same contract the metrics layer keeps):
//
//   - Trace IDs are hashed from a seed and the event key, never drawn
//     from an RNG or the wall clock, so the ID — and therefore the
//     head-based sampling decision — is identical at any worker count.
//   - Everything recorded into non-volatile metrics is measured in
//     virtual milliseconds (detonation time, queue wait, backoff).
//     Wall-clock stamps (network round-trip, server flush time) land
//     only in Volatile series.
//   - Exemplar retention keeps the slowest-N closed traces by
//     (e2e, trace ID) — a total order — so the retained set is a pure
//     function of the closed-trace multiset, independent of close
//     order.
//
// All Tracer methods are safe for concurrent use; a TraceCtx is owned
// by one goroutine at a time (the pipeline mutates it under its own
// lock). A nil *Tracer and a nil *TraceCtx are no-ops everywhere, so
// instrumented code needs no "is tracing on?" branches.

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// HTTP header names the trace crosses process boundaries through:
// the device side sends TraceHeader on ingestion POSTs; the market
// side answers with ServerTimingHeader carrying its receive→ack wall
// time in microseconds. Defined here (the package both sides import)
// so the two ends cannot drift.
const (
	TraceHeader        = "X-Bombdroid-Trace"
	ServerTimingHeader = "X-Bombdroid-Server-Us"
)

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [2]uint64

// String renders the ID in the fixed 32-hex-digit wire form.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id[0], id[1]) }

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id[0] == 0 && id[1] == 0 }

// MarshalJSON renders the ID as its hex string.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// ParseTraceID parses the 32-hex-digit wire form (the header value the
// market side extracts). It rejects anything else.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q is not 32 hex digits", s)
	}
	for half := 0; half < 2; half++ {
		var v uint64
		for _, c := range s[half*16 : half*16+16] {
			switch {
			case c >= '0' && c <= '9':
				v = v<<4 | uint64(c-'0')
			case c >= 'a' && c <= 'f':
				v = v<<4 | uint64(c-'a'+10)
			case c >= 'A' && c <= 'F':
				v = v<<4 | uint64(c-'A'+10)
			default:
				return TraceID{}, fmt.Errorf("obs: trace id %q is not hex", s)
			}
		}
		id[half] = v
	}
	return id, nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes s with the given basis (seeding the basis derives
// independent hash families from one function).
func fnv64a(basis uint64, s string) uint64 {
	h := basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// StageStamp is one named point in a trace's life, on the clock the
// stage runs on (virtual ms device-side, wall ns for network hops —
// the Name says which; see TraceCtx.StampWall).
type StageStamp struct {
	Name string `json:"name"`
	AtMs int64  `json:"at_ms"`
}

// Attempt annotates one delivery attempt: when it ran, how it ended
// ("ok", "err", "breaker-hold"), and the backoff scheduled after it.
type Attempt struct {
	N         int    `json:"n"`
	AtMs      int64  `json:"at_ms"`
	Outcome   string `json:"outcome"`
	BackoffMs int64  `json:"backoff_ms,omitempty"`
}

// TraceCtx is one in-flight report trace. The pipeline owns it from
// mint to close; only sampled traces retain stamps and annotations
// (head-based sampling — the decision is made at mint from the ID, so
// it is identical on every run and at any worker count).
type TraceCtx struct {
	ID         TraceID
	DetonateMs int64 // virtual time of the detonation on-device
	SubmitMs   int64 // virtual time the event entered the pipeline

	sampled bool
	// Set by the pipeline as the trace advances; -1 = not yet.
	firstAttemptMs int64
	backoffMs      int64 // total backoff charged across retries
	attempts       int
	stages         []StageStamp
	attemptLog     []Attempt
	serverNs       int64 // market-side receive→post-flush-ack, wall ns
	networkNs      int64 // device-side POST round-trip, wall ns
}

// Sampled reports whether this trace retains stamps and annotations
// and is an exemplar candidate.
func (tc *TraceCtx) Sampled() bool { return tc != nil && tc.sampled }

// Stamp records a named stage at a virtual-time point. Retained only
// on sampled traces; always safe to call. The stage log is bounded
// like the attempt log — a breaker flapping for hours must not grow
// an unbounded stamp list on a sampled trace.
func (tc *TraceCtx) Stamp(name string, atMs int64) {
	if tc == nil || !tc.sampled || len(tc.stages) >= maxAttemptLog {
		return
	}
	tc.stages = append(tc.stages, StageStamp{Name: name, AtMs: atMs})
}

// Attempt records one delivery attempt. The first attempt also pins
// the queue-wait boundary (tracked on every trace, sampled or not).
func (tc *TraceCtx) Attempt(atMs int64, outcome string, backoffMs int64) {
	if tc == nil {
		return
	}
	tc.attempts++
	if tc.firstAttemptMs < 0 {
		tc.firstAttemptMs = atMs
	}
	tc.backoffMs += backoffMs
	if !tc.sampled || len(tc.attemptLog) >= maxAttemptLog {
		return
	}
	tc.attemptLog = append(tc.attemptLog, Attempt{
		N: tc.attempts, AtMs: atMs, Outcome: outcome, BackoffMs: backoffMs,
	})
}

// StampServerNs records the market-side receive→ack wall time the
// HTTP response header carried back (ack-after-WAL-flush, so this is
// queue wait plus group-commit flush on the daemon).
func (tc *TraceCtx) StampServerNs(ns int64) {
	if tc != nil && ns > tc.serverNs {
		tc.serverNs = ns
	}
}

// StampNetworkNs records the device-side POST round-trip wall time.
func (tc *TraceCtx) StampNetworkNs(ns int64) {
	if tc != nil {
		tc.networkNs += ns
	}
}

// maxAttemptLog bounds a sampled trace's attempt annotations; a
// pipeline configured for hundreds of attempts must not grow an
// unbounded log per stuck event.
const maxAttemptLog = 64

// Exemplar is one closed trace retained for slow-path forensics.
type Exemplar struct {
	ID          TraceID      `json:"id"`
	E2EMs       int64        `json:"e2e_ms"`
	QueueWaitMs int64        `json:"queue_wait_ms"`
	BackoffMs   int64        `json:"backoff_ms"`
	Attempts    int          `json:"attempts"`
	Outcome     string       `json:"outcome"` // "delivered" or the abort reason
	DetonateMs  int64        `json:"detonate_ms"`
	ServerUs    int64        `json:"server_us,omitempty"`
	NetworkUs   int64        `json:"network_us,omitempty"`
	Stages      []StageStamp `json:"stages,omitempty"`
	AttemptLog  []Attempt    `json:"attempt_log,omitempty"`
}

// TracerConfig tunes a Tracer; zero fields take the noted defaults.
type TracerConfig struct {
	Seed        int64 // trace-ID hash seed (IDs and sampling are per-seed deterministic)
	SampleN     int   // head-based sampling: 1-in-N traces keep stamps (default 16, 1 = all)
	ExemplarCap int   // slowest closed traces retained (default 32)
	WindowMs    int64 // sliding-window histogram width, virtual ms (default 1h)
	Windows     int   // windows retained (default 48)
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.SampleN == 0 {
		c.SampleN = 16
	}
	if c.ExemplarCap == 0 {
		c.ExemplarCap = 32
	}
	if c.WindowMs == 0 {
		c.WindowMs = 3_600_000
	}
	if c.Windows == 0 {
		c.Windows = 48
	}
	return c
}

// Tracer mints and closes report traces, recording closed-trace
// latency breakdowns into the registry:
//
//	trace_e2e_ms         detonation → delivery ack (virtual)
//	trace_queue_wait_ms  submit → first attempt (virtual)
//	trace_backoff_ms     total retry backoff charged (virtual)
//	trace_network_us     POST round-trips, wall (Volatile)
//	trace_server_us      market receive → post-flush ack, wall (Volatile)
//	traces_closed_total / traces_aborted_total / traces_sampled_total
//
// plus a sliding-window view of trace_e2e_ms (Windows()) and bounded
// slowest-N exemplar retention (Exemplars()).
type Tracer struct {
	cfg TracerConfig
	reg *Registry

	cClosed  *Counter
	cAborted *Counter
	cSampled *Counter
	hE2E     *Histogram
	hQueue   *Histogram
	hBackoff *Histogram
	hNetUs   *Histogram
	hSrvUs   *Histogram
	wE2E     *WindowedHistogram

	mu        sync.Mutex
	exemplars []Exemplar // sorted slowest-first by (E2EMs desc, ID asc)
}

// NewTracer builds a tracer over reg (nil reg = detached metrics, the
// tracer still works for exemplars and windows).
func NewTracer(reg *Registry, cfg TracerConfig) *Tracer {
	cfg = cfg.withDefaults()
	wallBuckets := ExpBuckets(50, 4, 12) // 50µs … ~800ms in µs
	return &Tracer{
		cfg:      cfg,
		reg:      reg,
		cClosed:  reg.Counter("traces_closed_total"),
		cAborted: reg.Counter("traces_aborted_total"),
		cSampled: reg.Counter("traces_sampled_total"),
		hE2E:     reg.Histogram("trace_e2e_ms", LatencyBucketsMs),
		hQueue:   reg.Histogram("trace_queue_wait_ms", LatencyBucketsMs),
		hBackoff: reg.Histogram("trace_backoff_ms", LatencyBucketsMs),
		hNetUs:   reg.Histogram("trace_network_us", wallBuckets, Volatile()),
		hSrvUs:   reg.Histogram("trace_server_us", wallBuckets, Volatile()),
		wE2E:     NewWindowedHistogram(LatencyBucketsMs, cfg.WindowMs, cfg.Windows),
	}
}

// Mint opens a trace for the event with the given key: ID hashed from
// (seed, key), detonation stamp detonateMs, pipeline entry nowMs. The
// sampling decision is head-based — taken here, from the ID alone.
// Nil-safe: a nil tracer returns a nil ctx, and every TraceCtx method
// accepts one.
func (t *Tracer) Mint(key string, detonateMs, nowMs int64) *TraceCtx {
	if t == nil {
		return nil
	}
	id := TraceID{
		fnv64a(fnvOffset64^uint64(t.cfg.Seed), key),
		fnv64a(fnvOffset64+uint64(t.cfg.Seed)*fnvPrime64+1, key),
	}
	tc := &TraceCtx{
		ID:             id,
		DetonateMs:     detonateMs,
		SubmitMs:       nowMs,
		firstAttemptMs: -1,
		sampled:        t.cfg.SampleN <= 1 || id[1]%uint64(t.cfg.SampleN) == 0,
	}
	if tc.sampled {
		t.cSampled.Inc()
		tc.stages = append(tc.stages, StageStamp{Name: "submit", AtMs: nowMs})
	}
	return tc
}

// Close finishes a delivered trace at virtual time nowMs, recording
// the latency breakdown and retaining the trace as an exemplar when
// sampled. Safe on nil tracer or ctx.
func (t *Tracer) Close(tc *TraceCtx, nowMs int64) {
	if t == nil || tc == nil {
		return
	}
	t.finish(tc, nowMs, "delivered")
}

// Abort finishes a trace that will never be delivered (dead-lettered,
// queue overflow) with the given reason. Aborted traces count and
// retain exemplars but do not pollute the delivery-latency histograms.
func (t *Tracer) Abort(tc *TraceCtx, nowMs int64, reason string) {
	if t == nil || tc == nil {
		return
	}
	t.cAborted.Inc()
	t.exemplar(tc, nowMs, reason)
}

func (t *Tracer) finish(tc *TraceCtx, nowMs int64, outcome string) {
	t.cClosed.Inc()
	e2e := nowMs - tc.DetonateMs
	t.hE2E.Observe(e2e)
	t.wE2E.Observe(e2e, nowMs)
	if tc.firstAttemptMs >= 0 {
		t.hQueue.Observe(tc.firstAttemptMs - tc.SubmitMs)
	}
	t.hBackoff.Observe(tc.backoffMs)
	if tc.networkNs > 0 {
		t.hNetUs.Observe(tc.networkNs / 1_000)
	}
	if tc.serverNs > 0 {
		t.hSrvUs.Observe(tc.serverNs / 1_000)
	}
	if tc.sampled {
		t.exemplar(tc, nowMs, outcome)
	}
}

// exemplar offers a finished trace to the slowest-N retention set.
func (t *Tracer) exemplar(tc *TraceCtx, nowMs int64, outcome string) {
	if !tc.sampled {
		return
	}
	ex := Exemplar{
		ID:          tc.ID,
		E2EMs:       nowMs - tc.DetonateMs,
		QueueWaitMs: queueWait(tc),
		BackoffMs:   tc.backoffMs,
		Attempts:    tc.attempts,
		Outcome:     outcome,
		DetonateMs:  tc.DetonateMs,
		ServerUs:    tc.serverNs / 1_000,
		NetworkUs:   tc.networkNs / 1_000,
		Stages:      tc.stages,
		AttemptLog:  tc.attemptLog,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Insert into the slowest-first order; (E2EMs desc, ID asc) is a
	// total order, so the retained set is close-order independent.
	i := sort.Search(len(t.exemplars), func(i int) bool {
		e := t.exemplars[i]
		if e.E2EMs != ex.E2EMs {
			return e.E2EMs < ex.E2EMs
		}
		return exemplarIDLess(ex.ID, e.ID)
	})
	if i >= t.cfg.ExemplarCap {
		return
	}
	t.exemplars = append(t.exemplars, Exemplar{})
	copy(t.exemplars[i+1:], t.exemplars[i:])
	t.exemplars[i] = ex
	if len(t.exemplars) > t.cfg.ExemplarCap {
		t.exemplars = t.exemplars[:t.cfg.ExemplarCap]
	}
}

func exemplarIDLess(a, b TraceID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func queueWait(tc *TraceCtx) int64 {
	if tc.firstAttemptMs < 0 {
		return 0
	}
	return tc.firstAttemptMs - tc.SubmitMs
}

// Exemplars returns the retained slowest closed traces, slowest first.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Exemplar(nil), t.exemplars...)
}

// E2E exposes the cumulative end-to-end latency histogram (virtual
// ms), the series loadgen derives its summary percentiles from.
func (t *Tracer) E2E() *Histogram {
	if t == nil {
		return nil
	}
	return t.hE2E
}

// Windows exposes the sliding-window view of trace_e2e_ms.
func (t *Tracer) Windows() []WindowSnapshot {
	if t == nil {
		return nil
	}
	return t.wE2E.Windows()
}

// WindowSnapshot is one retained window of a WindowedHistogram.
type WindowSnapshot struct {
	// Index is the absolute window number: observations with
	// atMs in [Index*WidthMs, (Index+1)*WidthMs) land here.
	Index   int64             `json:"index"`
	StartMs int64             `json:"start_ms"`
	Hist    HistogramSnapshot `json:"hist"`
}

// WindowedHistogram buckets observations into fixed-width time
// windows and retains the most recent `keep` of them — the data shape
// behind "what does the tail look like *lately*", which a cumulative
// histogram can't answer. Windows are keyed by absolute index
// (atMs / widthMs), so two tracers fed the same observations retain
// identical windows regardless of arrival order, as long as every
// observation falls within the retained horizon; stragglers older
// than the horizon are dropped and counted.
type WindowedHistogram struct {
	bounds  []int64
	widthMs int64
	keep    int

	mu      sync.Mutex
	windows map[int64]*Histogram
	maxIdx  int64
	started bool
	dropped int64
}

// NewWindowedHistogram builds a windowed histogram with the given
// bucket bounds, window width, and retention count.
func NewWindowedHistogram(bounds []int64, widthMs int64, keep int) *WindowedHistogram {
	if widthMs <= 0 {
		widthMs = 3_600_000
	}
	if keep <= 0 {
		keep = 48
	}
	return &WindowedHistogram{
		bounds:  append([]int64(nil), bounds...),
		widthMs: widthMs,
		keep:    keep,
		windows: make(map[int64]*Histogram),
	}
}

// Observe records v into the window containing atMs, evicting windows
// that fall out of the retention horizon.
func (w *WindowedHistogram) Observe(v, atMs int64) {
	idx := atMs / w.widthMs
	if atMs < 0 {
		idx-- // floor division for negative virtual times
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started || idx > w.maxIdx {
		w.maxIdx = idx
		w.started = true
		for old := range w.windows {
			if old <= w.maxIdx-int64(w.keep) {
				delete(w.windows, old)
			}
		}
	}
	if idx <= w.maxIdx-int64(w.keep) {
		w.dropped++
		return
	}
	h := w.windows[idx]
	if h == nil {
		h = NewHistogram(w.bounds)
		w.windows[idx] = h
	}
	h.Observe(v)
}

// Windows returns the retained windows, oldest first.
func (w *WindowedHistogram) Windows() []WindowSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WindowSnapshot, 0, len(w.windows))
	for idx, h := range w.windows {
		out = append(out, WindowSnapshot{Index: idx, StartMs: idx * w.widthMs, Hist: h.snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Dropped returns how many observations fell behind the retention
// horizon (late stragglers a bounded window cannot hold).
func (w *WindowedHistogram) Dropped() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// MergeInto folds this windowed histogram into dst, window by
// absolute index — the windowed counterpart of Registry.MergeInto,
// used when per-node or per-campaign tracers are aggregated into one
// fleet view. Windows with the same index add bucket-wise; the merged
// horizon advances to the newer of the two maxima, and source windows
// (or whole-window contents already evicted on either side) that fall
// behind it are folded into dst's dropped count, exactly as if their
// observations had arrived late at dst. Source dropped counts carry
// over too. Merging is commutative in the totals: any merge order
// retains the same windows and the same retained+dropped accounting.
// Panics if the bucket bounds or window widths differ — those are
// configuration errors, not data.
func (w *WindowedHistogram) MergeInto(dst *WindowedHistogram) {
	if w == nil || dst == nil || w == dst {
		return
	}
	// Lock ordering: the two locks are only ever taken together here,
	// and callers merge disjoint sources into one dst, so ordering by
	// role is safe.
	w.mu.Lock()
	defer w.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if w.widthMs != dst.widthMs {
		panic(fmt.Sprintf("obs: windowed histograms merged with mismatched widths (%dms vs %dms)", w.widthMs, dst.widthMs))
	}
	if len(w.bounds) != len(dst.bounds) {
		panic("obs: windowed histograms merged with mismatched buckets")
	}
	for i := range w.bounds {
		if w.bounds[i] != dst.bounds[i] {
			panic("obs: windowed histograms merged with mismatched buckets")
		}
	}
	dst.dropped += w.dropped
	if !w.started {
		return
	}
	if !dst.started || w.maxIdx > dst.maxIdx {
		dst.maxIdx = w.maxIdx
		dst.started = true
		for old := range dst.windows {
			if old <= dst.maxIdx-int64(dst.keep) {
				h := dst.windows[old]
				dst.dropped += h.count.Load()
				delete(dst.windows, old)
			}
		}
	}
	for idx, sh := range w.windows {
		if idx <= dst.maxIdx-int64(dst.keep) {
			dst.dropped += sh.count.Load()
			continue
		}
		dh := dst.windows[idx]
		if dh == nil {
			dh = NewHistogram(dst.bounds)
			dst.windows[idx] = dh
		}
		if len(dh.counts) != len(sh.counts) {
			panic("obs: windowed histograms merged with mismatched buckets")
		}
		for i := range sh.counts {
			dh.counts[i].Add(sh.counts[i].Load())
		}
		dh.sum.Add(sh.sum.Load())
		dh.count.Add(sh.count.Load())
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram
// snapshot by linear interpolation within the owning bucket, the
// usual Prometheus-style estimator. The +Inf bucket clamps to its
// lower bound. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	lower := 0.0
	for i, b := range s.Buckets {
		prev := cum
		cum += b.N
		if float64(cum) >= rank && b.N > 0 {
			if b.Le == "+Inf" {
				return lower // clamp: no upper edge to interpolate toward
			}
			var upper float64
			fmt.Sscanf(b.Le, "%g", &upper)
			frac := 0.0
			if b.N > 0 {
				frac = (rank - float64(prev)) / float64(b.N)
			}
			return lower + (upper-lower)*frac
		}
		if i < len(s.Buckets)-1 && b.Le != "+Inf" {
			fmt.Sscanf(b.Le, "%g", &lower)
		}
	}
	return lower
}
