package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("second fetch returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", []int64{1, 2}).Observe(1)
	sp := r.StartSpan("root", 0)
	sp.Child("leaf", 1).End(2)
	sp.End(5)
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	r.MergeInto(NewRegistry())
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []Bucket{{"10", 2}, {"100", 2}, {"+Inf", 1}}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Count != 5 || s.Sum != 1122 {
		t.Fatalf("count/sum = %d/%d, want 5/1122", s.Count, s.Sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestVolatileExcludedFromDeterministicSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total").Add(1)
	r.Counter("wall_total", Volatile()).Add(9)
	r.Histogram("wall_ns", []int64{1}, Volatile()).Observe(2)
	r.StartSpan("phase", 0).End(3) // span log is volatile by construction

	full := r.Snapshot()
	if _, ok := full.Counters["wall_total"]; !ok {
		t.Fatal("full snapshot dropped the volatile counter")
	}
	if len(full.Spans) != 1 {
		t.Fatalf("full snapshot has %d spans, want 1", len(full.Spans))
	}
	det := r.SnapshotDeterministic()
	if _, ok := det.Counters["wall_total"]; ok {
		t.Fatal("deterministic snapshot kept a volatile counter")
	}
	if _, ok := det.Histograms["wall_ns"]; ok {
		t.Fatal("deterministic snapshot kept a volatile histogram")
	}
	if len(det.Spans) != 0 {
		t.Fatal("deterministic snapshot kept the span log")
	}
	if det.Counters["stable_total"] != 1 {
		t.Fatal("deterministic snapshot lost the stable counter")
	}
}

// TestSnapshotJSONByteStable pins the byte-identity property the
// cross-worker determinism tests rely on: the same metric values
// marshal to the same bytes regardless of registration or update
// order.
func TestSnapshotJSONByteStable(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Histogram("lat_ms", []int64{1, 10}).Observe(5)
		b, err := r.SnapshotDeterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"alpha_total", "beta_total", "gamma_total"})
	b := build([]string{"gamma_total", "alpha_total", "beta_total"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ by registration order:\n%s\n---\n%s", a, b)
	}
	var round Snapshot
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestSpanHierarchyAndHistogram(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("session", 100)
	det := root.Child("detonate", 150)
	det.End(175)
	root.End(400)

	log := r.SpanLog()
	if len(log) != 2 {
		t.Fatalf("span log has %d records, want 2", len(log))
	}
	if log[0].Path != "session/detonate" || log[0].DurMs != 25 {
		t.Fatalf("child span = %+v", log[0])
	}
	if log[1].Path != "session" || log[1].DurMs != 300 {
		t.Fatalf("root span = %+v", log[1])
	}
	h := r.Histogram("span_session_ms", LatencyBucketsMs)
	if h.Count() != 1 || h.Sum() != 300 {
		t.Fatalf("span histogram count/sum = %d/%d, want 1/300", h.Count(), h.Sum())
	}
}

func TestSpanLogBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanLogCap+50; i++ {
		r.StartSpan("s", int64(i)).End(int64(i) + 1)
	}
	log := r.SpanLog()
	if len(log) != spanLogCap {
		t.Fatalf("span log grew to %d, cap is %d", len(log), spanLogCap)
	}
	if log[len(log)-1].StartMs != int64(spanLogCap+49) {
		t.Fatal("span log did not keep the newest records")
	}
}

func TestMergeInto(t *testing.T) {
	a, b, dst := NewRegistry(), NewRegistry(), NewRegistry()
	a.Counter("n_total").Add(2)
	b.Counter("n_total").Add(3)
	a.Gauge("depth").Add(4)
	b.Gauge("depth").Add(1)
	a.Histogram("lat", []int64{10}).Observe(5)
	b.Histogram("lat", []int64{10}).Observe(50)
	a.Counter("wall", Volatile()).Add(1)

	a.MergeInto(dst)
	b.MergeInto(dst)
	if got := dst.Counter("n_total").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := dst.Gauge("depth").Value(); got != 5 {
		t.Fatalf("merged gauge = %d, want 5", got)
	}
	h := dst.Histogram("lat", []int64{10})
	if h.Count() != 2 || h.Sum() != 55 {
		t.Fatalf("merged histogram count/sum = %d/%d, want 2/55", h.Count(), h.Sum())
	}
	det := dst.SnapshotDeterministic()
	if _, ok := det.Counters["wall"]; ok {
		t.Fatal("volatility lost in merge")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("vm_op_total", "op", "add")).Add(3)
	r.Counter(L("vm_op_total", "op", "move")).Add(1)
	r.Gauge("queue_depth").Set(2)
	r.Histogram("lat_ms", []int64{10, 100}).Observe(7)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vm_op_total counter",
		`vm_op_total{op="add"} 3`,
		`vm_op_total{op="move"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="10"} 1`,
		`lat_ms_bucket{le="100"} 1`,
		`lat_ms_bucket{le="+Inf"} 1`,
		"lat_ms_sum 7",
		"lat_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE vm_op_total"); n != 1 {
		t.Errorf("labeled family declared %d times, want 1", n)
	}
}

// TestConcurrentUse exercises every metric type from many goroutines;
// meaningful under -race.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []int64{10, 100}).Observe(int64(i % 200))
				sp := r.StartSpan("w", int64(i))
				sp.End(int64(i + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}
