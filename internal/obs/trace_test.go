package obs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := TraceID{0xdeadbeefcafef00d, 0x0123456789abcdef}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	got, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if got != id {
		t.Fatalf("round trip: got %v want %v", got, id)
	}
	for _, bad := range []string{"", "abc", s[:31], s + "0", "zz" + s[2:]} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted malformed input", bad)
		}
	}
	// Upper-case hex parses too (header values may be canonicalized).
	if _, err := ParseTraceID("ABCDEF0123456789ABCDEF0123456789"); err != nil {
		t.Errorf("upper-case hex rejected: %v", err)
	}
}

func TestMintDeterministic(t *testing.T) {
	a := NewTracer(nil, TracerConfig{Seed: 42})
	b := NewTracer(nil, TracerConfig{Seed: 42})
	c := NewTracer(nil, TracerConfig{Seed: 43})
	for _, key := range []string{"app\x1fbomb\x1fuser", "x", ""} {
		ta, tb := a.Mint(key, 0, 0), b.Mint(key, 0, 0)
		if ta.ID != tb.ID {
			t.Fatalf("same seed+key minted different IDs: %v vs %v", ta.ID, tb.ID)
		}
		if ta.Sampled() != tb.Sampled() {
			t.Fatalf("same seed+key made different sampling decisions")
		}
		if tc := c.Mint(key, 0, 0); tc.ID == ta.ID {
			t.Fatalf("different seeds minted the same ID for %q", key)
		}
	}
	if a.Mint("k1", 0, 0).ID == a.Mint("k2", 0, 0).ID {
		t.Fatalf("different keys minted the same ID")
	}
}

func TestSamplingRateRoughlyHeadBased(t *testing.T) {
	tr := NewTracer(nil, TracerConfig{Seed: 7, SampleN: 16})
	sampled := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if tr.Mint(string(rune('a'+i%26))+"-"+string(rune('0'+i%10))+"-"+itoa(i), 0, 0).Sampled() {
			sampled++
		}
	}
	// 1-in-16 with generous slack: the decision is a hash-bit test.
	if sampled < n/64 || sampled > n/4 {
		t.Fatalf("sampled %d of %d, want roughly 1 in 16", sampled, n)
	}
	all := NewTracer(nil, TracerConfig{Seed: 7, SampleN: 1})
	if !all.Mint("k", 0, 0).Sampled() {
		t.Fatalf("SampleN=1 must sample everything")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestCloseRecordsBreakdown(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Seed: 1, SampleN: 1})
	tc := tr.Mint("app\x1fb0\x1fu0", 100, 150) // detonated at 100, submitted at 150
	tc.Attempt(250, "err", 400)                // first attempt at 250, backoff 400
	tc.Attempt(650, "ok", 0)
	tc.StampNetworkNs(3_000_000)
	tc.StampServerNs(2_000_000)
	tr.Close(tc, 700)

	s := reg.Snapshot()
	if got := s.Counters["traces_closed_total"]; got != 1 {
		t.Fatalf("traces_closed_total = %d, want 1", got)
	}
	if got := s.Histograms["trace_e2e_ms"].Sum; got != 600 {
		t.Fatalf("trace_e2e_ms sum = %d, want 600 (700-100)", got)
	}
	if got := s.Histograms["trace_queue_wait_ms"].Sum; got != 100 {
		t.Fatalf("trace_queue_wait_ms sum = %d, want 100 (250-150)", got)
	}
	if got := s.Histograms["trace_backoff_ms"].Sum; got != 400 {
		t.Fatalf("trace_backoff_ms sum = %d, want 400", got)
	}
	if got := s.Histograms["trace_network_us"].Sum; got != 3000 {
		t.Fatalf("trace_network_us sum = %d, want 3000", got)
	}
	if got := s.Histograms["trace_server_us"].Sum; got != 2000 {
		t.Fatalf("trace_server_us sum = %d, want 2000", got)
	}
	// Wall-clock series must not leak into the deterministic view.
	det := reg.SnapshotDeterministic()
	if _, ok := det.Histograms["trace_network_us"]; ok {
		t.Fatalf("trace_network_us leaked into SnapshotDeterministic")
	}
	if _, ok := det.Histograms["trace_server_us"]; ok {
		t.Fatalf("trace_server_us leaked into SnapshotDeterministic")
	}
	if _, ok := det.Histograms["trace_e2e_ms"]; !ok {
		t.Fatalf("trace_e2e_ms missing from SnapshotDeterministic")
	}

	exs := tr.Exemplars()
	if len(exs) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Outcome != "delivered" || ex.Attempts != 2 || ex.E2EMs != 600 {
		t.Fatalf("exemplar = %+v", ex)
	}
	if len(ex.AttemptLog) != 2 || ex.AttemptLog[0].Outcome != "err" || ex.AttemptLog[1].Outcome != "ok" {
		t.Fatalf("attempt log = %+v", ex.AttemptLog)
	}
	if _, err := json.Marshal(ex); err != nil {
		t.Fatalf("exemplar does not marshal: %v", err)
	}
}

func TestAbortCountsSeparately(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Seed: 1, SampleN: 1})
	tc := tr.Mint("k", 0, 0)
	tr.Abort(tc, 50, "dead-letter")
	s := reg.Snapshot()
	if s.Counters["traces_aborted_total"] != 1 {
		t.Fatalf("traces_aborted_total = %d, want 1", s.Counters["traces_aborted_total"])
	}
	if s.Histograms["trace_e2e_ms"].Count != 0 {
		t.Fatalf("aborted trace polluted the delivery histogram")
	}
	exs := tr.Exemplars()
	if len(exs) != 1 || exs[0].Outcome != "dead-letter" {
		t.Fatalf("abort exemplar = %+v", exs)
	}
}

func TestExemplarRetentionOrderIndependent(t *testing.T) {
	// Two tracers see the same closed traces in different orders; the
	// retained slowest-N sets must be identical.
	mk := func(perm []int) []Exemplar {
		tr := NewTracer(nil, TracerConfig{Seed: 9, SampleN: 1, ExemplarCap: 8})
		for _, i := range perm {
			tc := tr.Mint("key-"+itoa(i), 0, 0)
			tr.Close(tc, int64(i%13)*100) // duplicate e2e values exercise the ID tiebreak
		}
		return tr.Exemplars()
	}
	perm := make([]int, 64)
	for i := range perm {
		perm[i] = i
	}
	base := mk(perm)
	if len(base) != 8 {
		t.Fatalf("retained %d exemplars, want cap 8", len(base))
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.E2EMs < b.E2EMs {
			t.Fatalf("exemplars not slowest-first at %d: %d < %d", i, a.E2EMs, b.E2EMs)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := mk(perm)
		if len(got) != len(base) {
			t.Fatalf("trial %d: retained %d, want %d", trial, len(got), len(base))
		}
		for i := range got {
			if got[i].ID != base[i].ID || got[i].E2EMs != base[i].E2EMs {
				t.Fatalf("trial %d: exemplar %d differs: %v vs %v", trial, i, got[i].ID, base[i].ID)
			}
		}
	}
}

func TestWindowedHistogram(t *testing.T) {
	w := NewWindowedHistogram(LatencyBucketsMs, 1000, 3)
	w.Observe(5, 100)   // window 0
	w.Observe(7, 1500)  // window 1
	w.Observe(9, 3500)  // window 3 -> evicts window 0
	w.Observe(1, 200)   // window 0 again: behind horizon, dropped
	w.Observe(11, 1600) // window 1 still retained
	ws := w.Windows()
	// Windows are sparse: only 1 and 3 ever saw an observation.
	if len(ws) != 2 {
		t.Fatalf("retained %d windows, want 2: %+v", len(ws), ws)
	}
	if ws[0].Index != 1 || ws[0].Hist.Count != 2 {
		t.Fatalf("window[0] = %+v, want index 1 count 2", ws[0])
	}
	if ws[1].Index != 3 || ws[1].Hist.Count != 1 || ws[1].StartMs != 3000 {
		t.Fatalf("window[1] = %+v, want index 3 count 1 start 3000", ws[1])
	}
	if w.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", w.Dropped())
	}
}

func TestWindowedOrderIndependent(t *testing.T) {
	type obsv struct{ v, at int64 }
	obsvs := []obsv{{5, 100}, {7, 1500}, {9, 3500}, {11, 1600}, {2, 2100}}
	mk := func(order []int) []WindowSnapshot {
		w := NewWindowedHistogram(LatencyBucketsMs, 1000, 8)
		for _, i := range order {
			w.Observe(obsvs[i].v, obsvs[i].at)
		}
		return w.Windows()
	}
	base := mk([]int{0, 1, 2, 3, 4})
	got := mk([]int{4, 3, 2, 1, 0})
	bj, _ := json.Marshal(base)
	gj, _ := json.Marshal(got)
	if string(bj) != string(gj) {
		t.Fatalf("window retention is order dependent:\n%s\nvs\n%s", bj, gj)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket le=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // bucket le=1000
	}
	s := h.snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %g, want in (0,10]", q)
	}
	if q := s.Quantile(0.99); q <= 100 || q > 1000 {
		t.Fatalf("p99 = %g, want in (100,1000]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	// Values past the last bound clamp to the last finite edge.
	h2 := NewHistogram([]int64{10})
	h2.Observe(9999)
	if q := h2.snapshot().Quantile(0.5); q != 10 {
		t.Fatalf("+Inf quantile = %g, want clamp to 10", q)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.Mint("k", 0, 0)
	if tc != nil {
		t.Fatalf("nil tracer minted a ctx")
	}
	// All of these must be no-ops, not panics.
	tc.Stamp("x", 1)
	tc.Attempt(1, "ok", 0)
	tc.StampServerNs(5)
	tc.StampNetworkNs(5)
	if tc.Sampled() {
		t.Fatalf("nil ctx reports sampled")
	}
	tr.Close(tc, 10)
	tr.Abort(tc, 10, "r")
	if tr.Exemplars() != nil || tr.Windows() != nil || tr.E2E() != nil {
		t.Fatalf("nil tracer leaked state")
	}
}

func TestAttemptLogBounded(t *testing.T) {
	tr := NewTracer(nil, TracerConfig{Seed: 1, SampleN: 1})
	tc := tr.Mint("k", 0, 0)
	for i := 0; i < maxAttemptLog+50; i++ {
		tc.Attempt(int64(i), "err", 1)
	}
	if len(tc.attemptLog) != maxAttemptLog {
		t.Fatalf("attempt log grew to %d, want cap %d", len(tc.attemptLog), maxAttemptLog)
	}
	if tc.attempts != maxAttemptLog+50 {
		t.Fatalf("attempt count = %d, want %d", tc.attempts, maxAttemptLog+50)
	}
}
