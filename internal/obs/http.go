package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug exposes a registry's live metrics plus the standard Go
// debug handlers on addr: /metrics (Prometheus text), /metrics.json
// (the JSON snapshot), /debug/pprof/* and /debug/vars. It binds
// synchronously (so a bad address fails the caller) and serves in the
// background; it returns a stop function that closes the server and
// the bound address (useful when addr asked for port 0). A private
// mux — rather than http.DefaultServeMux — keeps repeated runs in one
// process, as in CLI tests, from panicking on duplicate registration.
//
// Both cmd/report and cmd/marketd hang their operator endpoints off
// this one helper, so every daemon in the repo exposes the same
// debugging surface.
func ServeDebug(addr string, reg *Registry) (func(), string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	RegisterMetricsHandlers(mux, reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return func() { srv.Close() }, ln.Addr().String(), nil
}

// RegisterMetricsHandlers mounts /metrics and /metrics.json for reg on
// an existing mux — for daemons (cmd/marketd) that fold the metrics
// surface into their main listener instead of a separate debug port.
func RegisterMetricsHandlers(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if b, err := reg.Snapshot().JSON(); err == nil {
			w.Write(append(b, '\n'))
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
