package obs

import (
	"testing"
)

// TestMergeIntoLabeledSeriesStayDistinct: merging registries must
// treat same-name-different-labels series as distinct metrics — the
// label set is part of the identity, not decoration.
func TestMergeIntoLabeledSeriesStayDistinct(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter(L("ingest_total", "shard", "0")).Add(5)
	a.Counter(L("ingest_total", "shard", "1")).Add(7)
	b.Counter(L("ingest_total", "shard", "0")).Add(11)
	b.Counter(L("ingest_total", "shard", "2")).Add(13)

	dst := NewRegistry()
	a.MergeInto(dst)
	b.MergeInto(dst)

	snap := dst.Snapshot()
	want := map[string]int64{
		`ingest_total{shard="0"}`: 16,
		`ingest_total{shard="1"}`: 7,
		`ingest_total{shard="2"}`: 13,
	}
	for name, n := range want {
		if got := snap.Counters[name]; got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
	if len(snap.Counters) != len(want) {
		t.Errorf("got %d counters (%v), want %d", len(snap.Counters), snap.Counters, len(want))
	}
}

func TestMergeIntoLabeledHistogramsExact(t *testing.T) {
	bounds := []int64{10, 100}
	a := NewRegistry()
	b := NewRegistry()
	a.Histogram(L("lat_us", "node", "n0"), bounds).Observe(5)
	a.Histogram(L("lat_us", "node", "n0"), bounds).Observe(50)
	b.Histogram(L("lat_us", "node", "n0"), bounds).Observe(500)
	b.Histogram(L("lat_us", "node", "n1"), bounds).Observe(7)

	dst := NewRegistry()
	// Merge order must not matter.
	b.MergeInto(dst)
	a.MergeInto(dst)

	snap := dst.Snapshot()
	h0 := snap.Histograms[`lat_us{node="n0"}`]
	if h0.Count != 3 || h0.Sum != 555 {
		t.Errorf(`lat_us{node="n0"} count/sum = %d/%d, want 3/555`, h0.Count, h0.Sum)
	}
	if got := h0.Buckets[0].N; got != 1 { // ≤10: the 5
		t.Errorf("bucket le=10 = %d, want 1", got)
	}
	h1 := snap.Histograms[`lat_us{node="n1"}`]
	if h1.Count != 1 || h1.Sum != 7 {
		t.Errorf(`lat_us{node="n1"} count/sum = %d/%d, want 1/7`, h1.Count, h1.Sum)
	}
}

func TestMergeIntoPreservesVolatility(t *testing.T) {
	src := NewRegistry()
	src.Counter("flaky_total", Volatile()).Add(3)
	src.Counter("stable_total").Add(4)
	dst := NewRegistry()
	src.MergeInto(dst)
	det := dst.SnapshotDeterministic()
	if _, ok := det.Counters["flaky_total"]; ok {
		t.Error("volatile counter leaked into the deterministic snapshot after merge")
	}
	if det.Counters["stable_total"] != 4 {
		t.Errorf("stable_total = %d, want 4", det.Counters["stable_total"])
	}
}

func windowTotals(w *WindowedHistogram) (retained int64, windows []int64) {
	for _, ws := range w.Windows() {
		retained += ws.Hist.Count
		windows = append(windows, ws.Index)
	}
	return retained, windows
}

// TestWindowedMergeDisjointWindows: windows merge by absolute index,
// so two sources observing different periods interleave losslessly.
func TestWindowedMergeDisjointWindows(t *testing.T) {
	bounds := []int64{10, 100}
	a := NewWindowedHistogram(bounds, 1000, 8)
	b := NewWindowedHistogram(bounds, 1000, 8)
	a.Observe(5, 0)    // window 0
	a.Observe(5, 2500) // window 2
	b.Observe(50, 1200) // window 1
	b.Observe(50, 3700) // window 3

	dst := NewWindowedHistogram(bounds, 1000, 8)
	a.MergeInto(dst)
	b.MergeInto(dst)

	retained, windows := windowTotals(dst)
	if retained != 4 {
		t.Fatalf("retained = %d, want 4", retained)
	}
	if len(windows) != 4 || windows[0] != 0 || windows[3] != 3 {
		t.Fatalf("windows = %v, want [0 1 2 3]", windows)
	}
	if dst.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", dst.Dropped())
	}

	// Same-index windows add bucket-wise.
	c := NewWindowedHistogram(bounds, 1000, 8)
	c.Observe(500, 1100) // window 1 again
	c.MergeInto(dst)
	for _, ws := range dst.Windows() {
		if ws.Index == 1 && (ws.Hist.Count != 2 || ws.Hist.Sum != 550) {
			t.Errorf("window 1 count/sum = %d/%d, want 2/550", ws.Hist.Count, ws.Hist.Sum)
		}
	}
}

// TestWindowedMergeRespectsHorizon: a merge that advances the horizon
// evicts stale windows on both sides into the dropped count — exactly
// what would have happened had the observations arrived late.
func TestWindowedMergeRespectsHorizon(t *testing.T) {
	bounds := []int64{10}
	old := NewWindowedHistogram(bounds, 1000, 2) // keep 2 windows
	old.Observe(1, 0) // window 0 — far behind by merge time
	old.Observe(1, 1000)

	fresh := NewWindowedHistogram(bounds, 1000, 2)
	fresh.Observe(1, 9000) // window 9

	dst := NewWindowedHistogram(bounds, 1000, 2)
	old.MergeInto(dst)   // dst now holds windows 0 and 1
	fresh.MergeInto(dst) // horizon jumps to window 9; 0 and 1 fall out

	retained, windows := windowTotals(dst)
	if retained != 1 || len(windows) != 1 || windows[0] != 9 {
		t.Fatalf("retained/windows = %d/%v, want 1/[9]", retained, windows)
	}
	if dst.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2 (both stale windows folded)", dst.Dropped())
	}

	// Commutativity of the totals: merging in the other order retains
	// the same windows and the same retained+dropped accounting.
	dst2 := NewWindowedHistogram(bounds, 1000, 2)
	fresh.MergeInto(dst2)
	old.MergeInto(dst2)
	retained2, windows2 := windowTotals(dst2)
	if retained2 != retained || len(windows2) != len(windows) || windows2[0] != windows[0] {
		t.Errorf("order-dependent retention: %d/%v vs %d/%v", retained, windows, retained2, windows2)
	}
	if dst2.Dropped() != dst.Dropped() {
		t.Errorf("order-dependent drops: %d vs %d", dst.Dropped(), dst2.Dropped())
	}
}

func TestWindowedMergeCarriesDroppedCounts(t *testing.T) {
	bounds := []int64{10}
	src := NewWindowedHistogram(bounds, 1000, 2)
	src.Observe(1, 5000)
	src.Observe(1, 100) // straggler: dropped at the source
	if src.Dropped() != 1 {
		t.Fatalf("source dropped = %d, want 1", src.Dropped())
	}
	dst := NewWindowedHistogram(bounds, 1000, 2)
	src.MergeInto(dst)
	if dst.Dropped() != 1 {
		t.Errorf("dropped = %d, want the source's straggler carried over", dst.Dropped())
	}
}

func TestWindowedMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched widths did not panic")
		}
	}()
	a := NewWindowedHistogram([]int64{10}, 1000, 2)
	b := NewWindowedHistogram([]int64{10}, 2000, 2)
	a.MergeInto(b)
}
