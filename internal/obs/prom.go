package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the full registry (volatile metrics
// included) in the Prometheus text exposition format. Labeled metrics
// registered via L() group under their base name with a single TYPE
// line; histograms expand to cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()

	type sample struct {
		name string
		kind string
		emit func(io.Writer) error
	}
	families := map[string][]sample{}
	add := func(name, kind string, emit func(io.Writer) error) {
		base, _ := splitName(name)
		families[base] = append(families[base], sample{name: name, kind: kind, emit: emit})
	}
	for name, v := range s.Counters {
		name, v := name, v
		add(name, "counter", func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		})
	}
	for name, v := range s.Gauges {
		name, v := name, v
		add(name, "gauge", func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		})
	}
	for name, h := range s.Histograms {
		name, h := name, h
		add(name, "histogram", func(w io.Writer) error {
			base, labels := splitName(name)
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.N
				if _, err := fmt.Fprintf(w, "%s %d\n",
					seriesName(base+"_bucket", labels, fmt.Sprintf("le=%q", b.Le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(base+"_sum", labels, ""), h.Sum); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s %d\n", seriesName(base+"_count", labels, ""), h.Count)
			return err
		})
	}

	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		samples := families[base]
		sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, samples[0].kind); err != nil {
			return err
		}
		for _, smp := range samples {
			if err := smp.emit(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash → \\, double quote → \", line feed →
// \n. Nothing else is touched — the format transmits all other bytes
// (including multi-byte UTF-8) raw.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// UnescapeLabelValue reverses EscapeLabelValue. Unknown escape
// sequences keep the escaped character verbatim (the scrape-side
// convention), and a trailing lone backslash is preserved.
func UnescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' || i == len(v)-1 {
			b.WriteByte(v[i])
			continue
		}
		i++
		switch v[i] {
		case 'n':
			b.WriteByte('\n')
		default: // \\ and \" — and anything unknown — keep the char
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// splitName separates `vm_op_total{op="add"}` into base "vm_op_total"
// and label body `op="add"` (empty when unlabeled).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// seriesName assembles base + combined label block from the metric's
// own labels and an extra (possibly empty) label like le="5".
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}
