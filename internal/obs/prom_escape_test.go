package obs

import (
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\three\"here\n", `all\\three\"here\n`},
		{"日本語 raw UTF-8", "日本語 raw UTF-8"}, // %q would \u-escape this
		{"tab\tstays", "tab\tstays"},        // only \ " \n are special
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
		if back := UnescapeLabelValue(EscapeLabelValue(c.in)); back != c.in {
			t.Errorf("unescape(escape(%q)) = %q", c.in, back)
		}
	}
	// Scrape-side leniency: unknown escapes keep the char, trailing
	// lone backslash survives.
	if got := UnescapeLabelValue(`a\zb`); got != "azb" {
		t.Errorf(`UnescapeLabelValue(a\zb) = %q, want "azb"`, got)
	}
	if got := UnescapeLabelValue(`tail\`); got != `tail\` {
		t.Errorf(`UnescapeLabelValue(tail\) = %q`, got)
	}
}

// parseLabels pulls the label map out of one exposition series name,
// walking quoted values with escape awareness — a miniature of what a
// real scraper does, which is exactly what the round-trip must satisfy.
func parseLabels(t *testing.T, series string) map[string]string {
	t.Helper()
	i := strings.IndexByte(series, '{')
	j := strings.LastIndexByte(series, '}')
	if i < 0 || j < i {
		t.Fatalf("series %q has no label block", series)
	}
	body := series[i+1 : j]
	out := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			t.Fatalf("malformed label body at %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		// Find the closing quote, skipping escaped characters.
		end := -1
		for k := 0; k < len(rest); k++ {
			if rest[k] == '\\' {
				k++
				continue
			}
			if rest[k] == '"' {
				end = k
				break
			}
		}
		if end < 0 {
			t.Fatalf("unterminated label value in %q", body)
		}
		out[key] = UnescapeLabelValue(rest[:end])
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return out
}

func TestPrometheusLabelRoundTrip(t *testing.T) {
	evil := []string{
		`C:\apps\mal"ware.apk`,
		"multi\nline\napp",
		`trailing\`,
		`"`,
		"清华 BombDroid β",
		"plain-app",
	}
	r := NewRegistry()
	for i, v := range evil {
		r.Counter(L("app_reports_total", "app", v)).Add(int64(i) + 1)
	}
	// A labeled histogram exercises the seriesName le-merge path too.
	r.Histogram(L("app_latency_ms", "app", evil[0]), []int64{10, 100}).Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()

	// Every line must stay one line: raw newlines in label values
	// would split a series across lines and corrupt the exposition.
	recovered := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series := line[:sp]
		if !strings.Contains(series, "{") {
			continue
		}
		labels := parseLabels(t, series)
		if app, ok := labels["app"]; ok {
			recovered[app] = true
		}
	}
	for _, v := range evil {
		if !recovered[v] {
			t.Errorf("label value %q did not round-trip through the exposition;\n%s", v, text)
		}
	}

	// The histogram's own label must coexist with the injected le label.
	if !strings.Contains(text, `app_latency_ms_bucket{app="C:\\apps\\mal\"ware.apk",le="10"}`) {
		t.Errorf("escaped histogram bucket series missing:\n%s", text)
	}
}
