// Package obs is the repository's zero-dependency observability
// substrate: atomic counters, gauges, fixed-bucket histograms, and
// hierarchical spans, gathered in a Registry that snapshots to both
// JSON and Prometheus text exposition format.
//
// The evaluation engine is deterministic by contract — every table is
// byte-identical at any worker count — and the metrics layer is built
// to preserve that property rather than erode it. Two rules make it
// work:
//
//  1. Deterministic metrics are measured in *virtual* time (campaign
//     ms, VM ticks) and merged only through commutative operations
//     (counter adds, bucket adds), so final values are independent of
//     goroutine scheduling.
//  2. Anything inherently scheduler-dependent — wall-clock task
//     latency, per-worker utilization, the span log — is registered
//     Volatile and excluded from SnapshotDeterministic, the snapshot
//     the determinism tests compare.
//
// All metric types are safe for concurrent use. Registry constructors
// are nil-receiver safe: a nil *Registry hands back detached metrics
// that record into themselves but appear in no snapshot, so
// instrumented code never needs an "is observability on?" branch.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they are not checked
// on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size histogram. Bounds are
// inclusive upper edges; one implicit +Inf bucket catches the rest.
// Observations are three atomic adds, no allocation.
type Histogram struct {
	bounds []int64 // sorted, immutable after construction
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a detached histogram (registered ones come from
// Registry.Histogram). Bounds must be sorted ascending.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below Le. The +Inf bucket has Le == "+Inf".
type Bucket struct {
	Le string `json:"le"`
	N  int64  `json:"n"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
}

// Snapshot returns the histogram's current buckets, count, and sum —
// the input HistogramSnapshot.Quantile estimates percentiles from.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// HistogramAccum is a single-goroutine accumulator over a histogram's
// buckets: Observe is plain adds (no atomics), Flush publishes the
// batch into the shared histogram and clears. Hot loops that already
// buffer their counters (the VM's per-opcode array) use it to keep
// per-event observations off the atomic path; flushed adds commute,
// so parallel accumulators into one histogram stay deterministic.
type HistogramAccum struct {
	h      *Histogram
	counts []int64
	sum    int64
	count  int64
}

// Accum returns a new accumulator feeding h on Flush.
func (h *Histogram) Accum() *HistogramAccum {
	return &HistogramAccum{h: h, counts: make([]int64, len(h.counts))}
}

// Observe records one value locally.
func (a *HistogramAccum) Observe(v int64) {
	i := sort.Search(len(a.h.bounds), func(i int) bool { return v <= a.h.bounds[i] })
	a.counts[i]++
	a.sum += v
	a.count++
}

// Flush publishes the accumulated observations into the underlying
// histogram and resets the accumulator.
func (a *HistogramAccum) Flush() {
	if a.count == 0 {
		return
	}
	for i, n := range a.counts {
		if n != 0 {
			a.h.counts[i].Add(n)
			a.counts[i] = 0
		}
	}
	a.h.sum.Add(a.sum)
	a.h.count.Add(a.count)
	a.sum, a.count = 0, 0
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprint(h.bounds[i])
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, N: h.counts[i].Load()})
	}
	return out
}

// ExpBuckets returns n bucket bounds growing geometrically from start
// by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// Shared bucket layouts, so the same quantity is bucketed identically
// across layers and merges stay well-defined.
var (
	// LatencyBucketsMs suits virtual-millisecond latencies from an
	// event gap up to a full session hour.
	LatencyBucketsMs = []int64{10, 50, 100, 500, 1_000, 5_000, 10_000,
		30_000, 60_000, 300_000, 600_000, 1_800_000, 3_600_000}
	// TickBuckets suits per-Invoke VM step counts.
	TickBuckets = ExpBuckets(8, 4, 10)
)

// metric kinds inside the registry.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

type entry struct {
	kind     int
	volatile bool
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// Option tags a metric at registration time.
type Option func(*entry)

// Volatile marks a metric as scheduler-dependent: it appears in
// Snapshot and the Prometheus exposition but not in
// SnapshotDeterministic.
func Volatile() Option { return func(e *entry) { e.volatile = true } }

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is usable everywhere and
// records nothing.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry

	spanMu sync.Mutex
	spans  []SpanRecord
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs expose.
func Default() *Registry { return defaultRegistry }

// L formats a metric name with label pairs in Prometheus form:
// L("vm_op_total", "op", "add") == `vm_op_total{op="add"}`.
// Pairs must come in (key, value) order. Label values are escaped per
// the text exposition format (EscapeLabelValue) — backslash, double
// quote, and newline only; all other bytes, including non-ASCII
// UTF-8, pass through raw (Go's %q would \u-escape them, which the
// format does not define).
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) get(name string, kind int, opts []Option, mk func(e *entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{kind: kind}
	mk(e)
	for _, o := range opts {
		o(e)
	}
	r.metrics[name] = e
	return e
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a detached counter.
func (r *Registry) Counter(name string, opts ...Option) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.get(name, kindCounter, opts, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a detached gauge.
func (r *Registry) Gauge(name string, opts ...Option) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.get(name, kindGauge, opts, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls keep the original bounds). A nil
// registry returns a detached histogram.
func (r *Registry) Histogram(name string, bounds []int64, opts ...Option) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	return r.get(name, kindHistogram, opts, func(e *entry) { e.h = NewHistogram(bounds) }).h
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
// encoding/json emits map keys sorted, so marshaling a snapshot of
// deterministic metrics is byte-stable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	entries := make(map[string]*entry, len(r.metrics))
	for n, e := range r.metrics {
		entries[n] = e
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		e := entries[n]
		if e.volatile && !includeVolatile {
			continue
		}
		switch e.kind {
		case kindCounter:
			s.Counters[n] = e.c.Value()
		case kindGauge:
			s.Gauges[n] = e.g.Value()
		case kindHistogram:
			s.Histograms[n] = e.h.snapshot()
		}
	}
	if includeVolatile {
		s.Spans = r.SpanLog()
	}
	return s
}

// Snapshot copies every metric, volatile ones and the span log
// included — the operator's view.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(true) }

// SnapshotDeterministic copies only metrics whose final values are
// independent of goroutine scheduling — the view the determinism
// tests compare byte for byte across worker counts.
func (r *Registry) SnapshotDeterministic() Snapshot { return r.snapshot(false) }

// JSON renders the snapshot as indented, key-sorted JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// MergeInto adds this registry's metrics into dst: counters and
// histogram buckets add, gauges add (callers wanting last-write or
// max semantics should publish those directly into the shared
// registry). Metrics keep their volatility marking. Merging is
// commutative, so parallel campaigns merging per-campaign registries
// produce scheduling-independent totals.
func (r *Registry) MergeInto(dst *Registry) {
	if r == nil || dst == nil || r == dst {
		return
	}
	r.mu.Lock()
	entries := make(map[string]*entry, len(r.metrics))
	for n, e := range r.metrics {
		entries[n] = e
	}
	r.mu.Unlock()
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := entries[n]
		var opts []Option
		if e.volatile {
			opts = append(opts, Volatile())
		}
		switch e.kind {
		case kindCounter:
			dst.Counter(n, opts...).Add(e.c.Value())
		case kindGauge:
			dst.Gauge(n, opts...).Add(e.g.Value())
		case kindHistogram:
			dh := dst.Histogram(n, e.h.bounds, opts...)
			if len(dh.counts) != len(e.h.counts) {
				panic(fmt.Sprintf("obs: histogram %q merged with mismatched buckets", n))
			}
			for i := range e.h.counts {
				dh.counts[i].Add(e.h.counts[i].Load())
			}
			dh.sum.Add(e.h.sum.Load())
			dh.count.Add(e.h.count.Load())
		}
	}
	for _, rec := range r.SpanLog() {
		dst.recordSpan(rec)
	}
}
