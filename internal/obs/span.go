package obs

// Hierarchical spans: named, nested phases of the pipeline
// (inject → encrypt → sign, or session → detonate → report), timed on
// whatever clock the caller passes — virtual campaign milliseconds in
// deterministic code, wall milliseconds in operator tooling.
//
// Ending a span does two things: the duration lands in a per-path
// histogram ("span_<path>_ms", deterministic when fed virtual time),
// and the completed span is appended to the registry's bounded span
// log (always volatile — completion order is scheduling-dependent
// under parallel campaigns).

// SpanRecord is one completed span in the registry's span log.
type SpanRecord struct {
	Path    string `json:"path"` // "/"-joined span names, root first
	StartMs int64  `json:"start_ms"`
	DurMs   int64  `json:"dur_ms"`
}

// Span is one open phase. Spans are single-goroutine values, like the
// VMs and sessions they time.
type Span struct {
	reg      *Registry
	path     string
	startMs  int64
	volatile bool
}

// spanLogCap bounds the span log; older completions are dropped
// (it is a debugging window, not an accounting record).
const spanLogCap = 512

// StartSpan opens a root span at nowMs on the caller's clock. Safe on
// a nil registry (the span still times, but records nowhere).
func (r *Registry) StartSpan(name string, nowMs int64) *Span {
	return &Span{reg: r, path: name, startMs: nowMs}
}

// StartVolatileSpan opens a root span whose duration histogram is
// registered Volatile — for spans timed on the wall clock (operator
// tooling, the prepare pipeline) rather than virtual time.
func (r *Registry) StartVolatileSpan(name string, nowMs int64) *Span {
	return &Span{reg: r, path: name, startMs: nowMs, volatile: true}
}

// Child opens a nested span; its path is parent/name. Volatility is
// inherited.
func (s *Span) Child(name string, nowMs int64) *Span {
	return &Span{reg: s.reg, path: s.path + "/" + name, startMs: nowMs, volatile: s.volatile}
}

// Path returns the span's "/"-joined path.
func (s *Span) Path() string { return s.path }

// End closes the span at nowMs, recording its duration in the
// per-path histogram and the span log.
func (s *Span) End(nowMs int64) {
	if s.reg == nil {
		return
	}
	dur := nowMs - s.startMs
	var opts []Option
	if s.volatile {
		opts = append(opts, Volatile())
	}
	s.reg.Histogram("span_"+pathMetric(s.path)+"_ms", LatencyBucketsMs, opts...).Observe(dur)
	s.reg.recordSpan(SpanRecord{Path: s.path, StartMs: s.startMs, DurMs: dur})
}

// pathMetric flattens a span path into a metric-name-safe suffix.
func pathMetric(path string) string {
	b := []byte(path)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// recordSpan appends to the bounded span log.
func (r *Registry) recordSpan(rec SpanRecord) {
	if r == nil {
		return
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if len(r.spans) >= spanLogCap {
		copy(r.spans, r.spans[1:])
		r.spans[len(r.spans)-1] = rec
		return
	}
	r.spans = append(r.spans, rec)
}

// SpanLog returns a copy of the completed-span log, oldest first.
func (r *Registry) SpanLog() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}
