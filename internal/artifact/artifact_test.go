package artifact

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFingerprintInjective(t *testing.T) {
	// Adjacent fields must not alias across boundaries.
	a := NewFingerprint("d").Str("ab").Str("c").Done()
	b := NewFingerprint("d").Str("a").Str("bc").Done()
	if a == b {
		t.Error("field boundaries alias")
	}
	// Domains separate identical field sequences.
	if NewFingerprint("x").Int(1).Done() == NewFingerprint("y").Int(1).Done() {
		t.Error("domains do not separate keys")
	}
	// Types separate identical bit patterns.
	if NewFingerprint("d").Int(0).Done() == NewFingerprint("d").F64(0).Done() {
		t.Error("field types do not separate keys")
	}
	// Same inputs, same key.
	if NewFingerprint("d").Str("a").Bool(true).Done() != NewFingerprint("d").Str("a").Bool(true).Done() {
		t.Error("fingerprint is not deterministic")
	}
	// Done is a snapshot, not a finalizer.
	f := NewFingerprint("d").Str("a")
	k1 := f.Done()
	k2 := f.Int(2).Done()
	if k1 == k2 {
		t.Error("Done must snapshot, later fields must change the key")
	}
}

func TestStoreGetPut(t *testing.T) {
	s := NewStore(1000)
	k := KeyOf("t", []byte("a"))
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store hit")
	}
	s.Put(k, "v", 10)
	v, ok := s.Get(k)
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.SizeBytes != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(30)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf("t", []byte{byte(i)})
		s.Put(keys[i], i, 10)
	}
	// 4×10 bytes over a 30-byte cap: the oldest key is gone.
	if _, ok := s.Get(keys[0]); ok {
		t.Error("LRU victim survived")
	}
	for _, k := range keys[1:] {
		if _, ok := s.Get(k); !ok {
			t.Errorf("recent key %s evicted", k[:8])
		}
	}
	// Touching keys[1] protects it from the next eviction round.
	s.Get(keys[1])
	s.Put(KeyOf("t", []byte("new")), "x", 10)
	if _, ok := s.Get(keys[1]); !ok {
		t.Error("recently-used key evicted before older ones")
	}
	if _, ok := s.Get(keys[2]); ok {
		t.Error("least-recently-used key survived")
	}
	if s.Stats().Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Stats().Evictions)
	}
}

func TestStoreOversizedArtifactNotCached(t *testing.T) {
	s := NewStore(5)
	k := KeyOf("t", []byte("big"))
	s.Put(k, "x", 10)
	if _, ok := s.Get(k); ok {
		t.Error("artifact larger than the store bound was cached")
	}
}

func TestDoSingleflight(t *testing.T) {
	s := NewStore(1 << 20)
	k := KeyOf("t", []byte("once"))
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	vals := make([]any, 16)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := s.Do(k, func() (any, int64, error) {
				builds.Add(1)
				return "built", 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times under contention, want 1", n)
	}
	for i, v := range vals {
		if v.(string) != "built" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	// Warm key: no rebuild, hit reported.
	_, hit, err := s.Do(k, func() (any, int64, error) {
		builds.Add(1)
		return nil, 0, nil
	})
	if err != nil || !hit || builds.Load() != 1 {
		t.Errorf("warm Do: hit=%v builds=%d err=%v", hit, builds.Load(), err)
	}
}

func TestDoErrorsNotCached(t *testing.T) {
	s := NewStore(1 << 20)
	k := KeyOf("t", []byte("err"))
	boom := errors.New("boom")
	if _, _, err := s.Do(k, func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := s.Do(k, func() (any, int64, error) { return "ok", 2, nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Errorf("retry after error: v=%v hit=%v err=%v (errors must not be cached)", v, hit, err)
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get(KeyOf("t")); ok {
		t.Error("nil store hit")
	}
	s.Put(KeyOf("t"), 1, 1) // must not panic
	ran := false
	v, hit, err := s.Do(KeyOf("t"), func() (any, int64, error) { ran = true; return 7, 1, nil })
	if err != nil || hit || v.(int) != 7 || !ran {
		t.Errorf("nil-store Do: v=%v hit=%v ran=%v err=%v", v, hit, ran, err)
	}
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Error("nil store reports occupancy")
	}
}

func TestStoreConcurrencySmoke(t *testing.T) {
	s := NewStore(500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := KeyOf("t", []byte(fmt.Sprint(i % 37)))
				if _, ok := s.Get(k); !ok {
					s.Put(k, i, int64(i%50))
				}
				s.Do(k, func() (any, int64, error) { return g, 10, nil })
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.SizeBytes > st.CapBytes {
		t.Errorf("size %d exceeds cap %d", st.SizeBytes, st.CapBytes)
	}
}
