// Package artifact is a content-addressed artifact store for the
// staged protection engine. Stage outputs (profiling runs, analysis
// results, whole protected builds) are cached under a SHA-256 key of
// their inputs' canonical encodings plus an options fingerprint, so
// re-protecting an unchanged app — or re-running with only a
// late-stage option changed — skips the expensive early stages
// entirely.
//
// The store is an in-memory LRU with a total size bound, safe for
// concurrent use, with per-key singleflight semantics: concurrent
// builders of the same cold key run the build function once and share
// its result, the way exp.Prepare deduplicates pipeline runs across
// parallel tables. Errors are never cached — a failed build leaves
// the key cold so a later caller can retry.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
)

// Key is the hex SHA-256 content address of an artifact.
type Key string

// Fingerprint accumulates canonical field encodings into a Key. Every
// field is length-prefixed, so adjacent fields can never alias
// ("ab"+"c" vs "a"+"bc") and key derivations stay injective over
// their inputs.
type Fingerprint struct {
	h [32]byte // running state: chained SHA-256 of the fields so far
}

// NewFingerprint starts a fingerprint in the given domain. Distinct
// domains ("profile/v1", "protect/v1") can never collide even over
// identical field sequences.
func NewFingerprint(domain string) *Fingerprint {
	f := &Fingerprint{}
	f.Str(domain)
	return f
}

func (f *Fingerprint) mix(tag byte, b []byte) *Fingerprint {
	h := sha256.New()
	h.Write(f.h[:])
	var hdr [9]byte
	hdr[0] = tag
	binary.BigEndian.PutUint64(hdr[1:], uint64(len(b)))
	h.Write(hdr[:])
	h.Write(b)
	h.Sum(f.h[:0])
	return f
}

// Bytes mixes a raw byte field.
func (f *Fingerprint) Bytes(b []byte) *Fingerprint { return f.mix('b', b) }

// Str mixes a string field.
func (f *Fingerprint) Str(s string) *Fingerprint { return f.mix('s', []byte(s)) }

// Strs mixes a string-slice field, preserving order and length.
func (f *Fingerprint) Strs(ss []string) *Fingerprint {
	f.Int(int64(len(ss)))
	for _, s := range ss {
		f.Str(s)
	}
	return f
}

// Int mixes an integer field.
func (f *Fingerprint) Int(v int64) *Fingerprint {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return f.mix('i', b[:])
}

// F64 mixes a float field by its IEEE-754 bits.
func (f *Fingerprint) F64(v float64) *Fingerprint {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return f.mix('f', b[:])
}

// Bool mixes a boolean field.
func (f *Fingerprint) Bool(v bool) *Fingerprint {
	if v {
		return f.mix('t', []byte{1})
	}
	return f.mix('t', []byte{0})
}

// Key mixes a previously derived key, chaining stage caches
// (the analyze key covers the profile key that fed it).
func (f *Fingerprint) Key(k Key) *Fingerprint { return f.mix('k', []byte(k)) }

// Done returns the accumulated key. The fingerprint may keep
// accumulating afterwards; Done is a snapshot.
func (f *Fingerprint) Done() Key { return Key(hex.EncodeToString(f.h[:])) }

// KeyOf is the one-shot form: a key over raw byte parts.
func KeyOf(domain string, parts ...[]byte) Key {
	f := NewFingerprint(domain)
	for _, p := range parts {
		f.Bytes(p)
	}
	return f.Done()
}

// entry is one cached artifact, a node of the LRU list.
type entry struct {
	key        Key
	val        any
	size       int64
	prev, next *entry // LRU list: head = most recently used
}

// call is one in-flight build being awaited by Do callers.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Stats is a point-in-time view of store effectiveness.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	SizeBytes int64 `json:"size_bytes"`
	CapBytes  int64 `json:"cap_bytes"`
}

// Store is the bounded content-addressed cache. A nil *Store is
// usable everywhere: Get always misses, Put is a no-op, and Do builds
// without caching — engine code never branches on "is caching on?".
type Store struct {
	mu       sync.Mutex
	cap      int64
	size     int64
	entries  map[Key]*entry
	head     *entry
	tail     *entry
	inflight map[Key]*call

	hits, misses, evictions atomic.Int64
}

// NewStore returns a store bounded to capBytes of artifact payload
// (as reported by callers; keys and bookkeeping are not charged).
func NewStore(capBytes int64) *Store {
	return &Store{
		cap:      capBytes,
		entries:  make(map[Key]*entry),
		inflight: make(map[Key]*call),
	}
}

// unlink removes e from the LRU list.
func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (s *Store) pushFront(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Get returns the artifact under k, marking it recently used.
func (s *Store) Get(k Key) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.unlink(e)
	s.pushFront(e)
	return e.val, true
}

// Put stores v under k, charging size bytes against the bound and
// evicting least-recently-used artifacts until it fits. An artifact
// larger than the whole bound is not stored at all.
func (s *Store) Put(k Key, v any, size int64) {
	if s == nil || size > s.cap {
		return
	}
	if size < 0 {
		size = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.size += size - e.size
		e.val, e.size = v, size
		s.unlink(e)
		s.pushFront(e)
	} else {
		e := &entry{key: k, val: v, size: size}
		s.entries[k] = e
		s.pushFront(e)
		s.size += size
	}
	for s.size > s.cap && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.size -= victim.size
		s.evictions.Add(1)
	}
}

// Do returns the artifact under k, building it with build on a cold
// key. Concurrent Do calls for the same cold key run build exactly
// once and share its result — the waiters block, they do not rebuild.
// hit reports whether the value came from cache (waiting on another
// caller's in-flight build counts as a hit: the work was not
// repeated). Build errors propagate to every waiter and are not
// cached. On a nil store, build runs unconditionally and nothing is
// retained.
func (s *Store) Do(k Key, build func() (any, int64, error)) (v any, hit bool, err error) {
	if s == nil {
		v, _, err = build()
		return v, false, err
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.hits.Add(1)
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		return e.val, true, nil
	}
	if c, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		// The leader's Put may already have been evicted under memory
		// pressure; hand back the leader's value directly.
		return c.val, true, nil
	}
	c := &call{done: make(chan struct{})}
	s.inflight[k] = c
	s.misses.Add(1)
	s.mu.Unlock()

	var size int64
	c.val, size, c.err = build()
	if c.err == nil {
		s.Put(k, c.val, size)
	}
	s.mu.Lock()
	delete(s.inflight, k)
	s.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Len returns the number of cached artifacts.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns cumulative hit/miss/eviction counts and current
// occupancy.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	entries, size, capBytes := len(s.entries), s.size, s.cap
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
		SizeBytes: size,
		CapBytes:  capBytes,
	}
}
