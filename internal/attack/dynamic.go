package attack

import (
	"fmt"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

// lab installs a (possibly invalid-signature) dex file on an attacker
// emulator: attackers "are allowed to hack and modify their own
// Android systems arbitrarily" (§2.2), so verification is skipped.
func lab(file *dex.File, res apk.Resources, seed int64) (*vm.VM, error) {
	attacker, err := apk.NewKeyPair(0xA77AC4 + seed)
	if err != nil {
		return nil, err
	}
	pkg, err := apk.Sign(apk.Build("victim", file, res), attacker)
	if err != nil {
		return nil, err
	}
	return vm.NewUnverified(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: seed})
}

// ForcedExecutionResult reports a forced-sampled-execution attack.
type ForcedExecutionResult struct {
	BranchesForced  int
	PayloadRevealed int // detection code executed during forced runs
	// ForcedOnlyReveals counts reveals that did NOT also occur in the
	// unmutated control run with the same inputs — i.e. what the
	// *forcing itself* bought the attacker. Bombs whose trigger value
	// the inputs happened to satisfy legitimately (weak c=0 bombs,
	// mostly) fire either way and are excluded here.
	ForcedOnlyReveals int
	Corrupted         int // runs dying in decrypt failures / faults
	CleanRuns         int
	// RevealedIDs names the payload classes that executed during
	// forced runs — necessarily via their true keys (decryption admits
	// no other way), so every entry was naturally triggerable with the
	// attacker's inputs. Cross-reference with bomb strength to see
	// that only weak triggers appear here.
	RevealedIDs map[string]bool
}

// ForcedExecution circumvents trigger conditions (§2.1): for every
// conditional branch near a suspicious call it rewrites the branch to
// unconditionally take / skip, then runs the containing method with
// arbitrary arguments on a lab emulator. Against cleartext bombs this
// walks straight into the detection code; against BombDroid the
// forced path reaches decryptLoad with a wrong key and the app
// corrupts instead of revealing anything.
func ForcedExecution(file *dex.File, res apk.Resources, seed int64) (ForcedExecutionResult, error) {
	out := ForcedExecutionResult{RevealedIDs: map[string]bool{}}
	suspicious := map[dex.API]bool{
		dex.APIDecryptLoad: true, dex.APIGetPublicKey: true,
		dex.APIGetManifestDigest: true, dex.APICodeDigest: true,
		dex.APIReflectCall: true,
	}
	const window = 24 // branch-to-call distance the attacker considers

	for _, m := range file.Methods() {
		if m.IsSynthetic() {
			continue
		}
		// Candidate branches: conditionals within `window` pcs before a
		// suspicious call.
		var branchPCs []int
		for pc, in := range m.Code {
			if !in.Op.IsCondBranch() {
				continue
			}
			for look := pc + 1; look < len(m.Code) && look <= pc+window; look++ {
				li := m.Code[look]
				if li.Op == dex.OpCallAPI && suspicious[dex.API(li.Imm)] {
					branchPCs = append(branchPCs, pc)
					break
				}
			}
		}
		// Control: the same method, same inputs, no forcing.
		controlRevealed := false
		if len(branchPCs) > 0 {
			v, err := lab(file, res, seed)
			if err != nil {
				return out, fmt.Errorf("attack: lab install: %w", err)
			}
			v.Observe(func(call vm.APICall) {
				switch call.API {
				case dex.APIGetPublicKey, dex.APIGetManifestDigest, dex.APICodeDigest:
					controlRevealed = true
				}
			})
			args := make([]dex.Value, m.NumArgs)
			for i := range args {
				args[i] = dex.Int64(int64(i))
			}
			v.Invoke(m.FullName(), args...)
		}
		for _, pc := range branchPCs {
			for _, force := range []bool{true, false} {
				mut := file.Clone()
				mm := mut.Method(m.FullName())
				if force {
					// Take the branch unconditionally.
					mm.Code[pc] = dex.Instr{Op: dex.OpGoto, A: -1, B: -1, C: mm.Code[pc].C}
				} else {
					// Never take it.
					mm.Code[pc] = dex.Instr{Op: dex.OpNop, A: -1, B: -1, C: -1}
				}
				out.BranchesForced++
				v, err := lab(mut, res, seed)
				if err != nil {
					return out, fmt.Errorf("attack: lab install: %w", err)
				}
				// Detection code executing at all counts as revealed —
				// app code never touches these APIs itself, whether the
				// detection sits in cleartext (naive, SSN via
				// reflection) or inside a decrypted payload.
				revealed := false
				v.Observe(func(call vm.APICall) {
					switch call.API {
					case dex.APIGetPublicKey, dex.APIGetManifestDigest, dex.APICodeDigest:
						revealed = true
						if call.InPayload != "" {
							out.RevealedIDs[call.InPayload] = true
						}
					}
				})
				args := make([]dex.Value, m.NumArgs)
				for i := range args {
					args[i] = dex.Int64(int64(i))
				}
				_, runErr := v.Invoke(m.FullName(), args...)
				switch {
				case revealed:
					out.PayloadRevealed++
					if !controlRevealed {
						out.ForcedOnlyReveals++
					}
				case vm.IsDecryptFailure(runErr) || vm.IsRuntimeFault(runErr):
					out.Corrupted++
				default:
					out.CleanRuns++
				}
			}
		}
	}
	return out, nil
}

// RevealDirect counts suspicious detection calls executed during a
// forced run outside payload context — used to show naive bombs and
// SSN leak under forcing while BombDroid does not.
func RevealDirect(file *dex.File, res apk.Resources, seed int64) (int, error) {
	v, err := lab(file, res, seed)
	if err != nil {
		return 0, err
	}
	direct := 0
	v.Observe(func(call vm.APICall) {
		if call.InPayload == "" && call.API == dex.APIGetPublicKey {
			direct++
		}
	})
	rng := rand.New(rand.NewSource(seed))
	for _, init := range v.InitMethods() {
		v.Invoke(init)
	}
	for _, m := range file.Methods() {
		if m.IsSynthetic() {
			continue
		}
		// Force every conditional to both sides across two runs of the
		// method with junk args.
		args := make([]dex.Value, m.NumArgs)
		for i := range args {
			args[i] = dex.Int64(rng.Int63n(1 << 20))
		}
		v.Invoke(m.FullName(), args...)
	}
	return direct, nil
}

// SliceExecutionResult reports the HARVESTER attack.
type SliceExecutionResult struct {
	Slices       int
	Executed     int
	Revealed     int // payload behaviour uncovered
	Corrupted    int // decrypt failures
	OtherFailure int
}

// ExecuteSlices extracts and runs every backward slice ending at a
// decryptLoad. The slice carries the hash plumbing but not the true
// trigger value, so execution yields decrypt failures, not payload
// code (the paper: "As BombDroid applies encryption on payloads, it
// is infeasible to directly execute payload without discovering the
// key").
func ExecuteSlices(file *dex.File, res apk.Resources, seed int64) (SliceExecutionResult, error) {
	var out SliceExecutionResult
	slices := BackwardSlices(file, dex.APIDecryptLoad)
	out.Slices = len(slices)
	for _, sl := range slices {
		harness, err := ExtractSliceMethod(file, sl)
		if err != nil {
			out.OtherFailure++
			continue
		}
		v, err := lab(harness, res, seed)
		if err != nil {
			return out, err
		}
		revealed := false
		v.Observe(func(call vm.APICall) {
			if call.InPayload != "" {
				revealed = true
			}
		})
		_, runErr := v.Invoke("SliceHarness.slice")
		out.Executed++
		switch {
		case revealed:
			out.Revealed++
		case vm.IsDecryptFailure(runErr):
			out.Corrupted++
		case runErr != nil:
			out.OtherFailure++
		}
	}
	return out, nil
}

// HookResult reports a debugger/hooking campaign.
type HookResult struct {
	FuzzedMinutes  int64
	BombsTriggered int // payloads located because they fired
	Suppressed     int // detections neutralized by the hook
}

// HookCampaign runs a fuzzing campaign with getPublicKey hooked to
// return a fake original key (the vtable-hijack of §4.1). Only bombs
// that actually fire are located; dormant bombs stay invisible, which
// is why the paper pairs hooking with (ineffective) fuzzing.
func HookCampaign(pkg *apk.Package, domain int64, durationMs int64, fakeKey string, seed int64) (HookResult, error) {
	v, err := vm.NewUnverified(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: seed})
	if err != nil {
		return HookResult{}, err
	}
	suppressed := 0
	v.Hook(dex.APIGetPublicKey, func(call vm.APICall) (dex.Value, bool, error) {
		if call.InPayload != "" {
			suppressed++
		}
		return dex.Str(fakeKey), true, nil
	})
	r := fuzz.Run(v, fuzz.NewDynodroid(), domain, fuzz.Options{
		DurationMs: durationMs, Seed: seed,
	})
	return HookResult{
		FuzzedMinutes:  r.VirtualMillis / 60_000,
		BombsTriggered: len(r.DetectionRuns),
		Suppressed:     suppressed,
	}, nil
}

// AnalystResult reports the §8.3.2 human-analyst experiment.
type AnalystResult struct {
	Sessions       int
	HoursSpent     int64
	BombsTriggered int
	TotalBombs     int
}

// HumanAnalyst models the paper's skilled analysts: hours of guided
// fuzzing split across sessions, mutating environment variable values
// between sessions ("allowed to apply any tools … and mutate
// environment variables' values"). triggerable counts against the
// total bombs given.
func HumanAnalyst(pkg *apk.Package, domain int64, totalBombs int, hours int, handlerScreens map[string]int64, screenField string, seed int64) (AnalystResult, error) {
	rng := rand.New(rand.NewSource(seed))
	triggered := map[string]bool{}
	sessions := hours * 2 // half-hour sessions
	names := android.Names()
	for s := 0; s < sessions; s++ {
		labDevices := android.EmulatorLab(5)
		v, err := vm.NewUnverified(pkg, labDevices[s%len(labDevices)].Clone(), vm.Options{Seed: seed + int64(s)})
		if err != nil {
			return AnalystResult{}, err
		}
		// Mutate a handful of environment variables per session.
		for k := 0; k < 6; k++ {
			name := names[rng.Intn(len(names))]
			spec := android.Spec(name)
			if spec == nil {
				continue
			}
			if spec.Kind == android.VarStr {
				v.Device().MutateEnv(name, 0, spec.StrVals[rng.Intn(len(spec.StrVals))].Val)
			} else {
				lo, hi := spec.Lo, spec.Hi
				if len(spec.IntWeights) > 0 {
					lo, hi = spec.IntWeights[0].Val, spec.IntWeights[len(spec.IntWeights)-1].Val
				}
				span := hi - lo + 1
				if span < 1 {
					span = 1
				}
				v.Device().MutateEnv(name, lo+rng.Int63n(span), "")
			}
		}
		v.SetClockMillis(rng.Int63n(7 * 86_400_000))
		r := fuzz.Run(v, fuzz.NewDynodroid(), domain, fuzz.Options{
			DurationMs:     30 * 60_000,
			Seed:           seed + int64(s)*31,
			HandlerScreens: handlerScreens,
			ScreenField:    screenField,
		})
		for id := range r.DetectionRuns {
			triggered[id] = true
		}
	}
	return AnalystResult{
		Sessions:       sessions,
		HoursSpent:     int64(hours),
		BombsTriggered: len(triggered),
		TotalBombs:     totalBombs,
	}, nil
}
