package attack

import (
	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

// DebuggerResult reports a §2.1 "Debugging" campaign: run the
// repackaged app under a debugger, and whenever suspicious symptoms
// arise (a response fires) trace back through the instruction history
// to the detection and response code.
type DebuggerResult struct {
	FuzzedMinutes int64
	Symptoms      int // responses observed
	// LocatedBombs maps payload class -> host method the trace led to.
	// Only bombs that actually fired can be located — dormant bombs
	// leave no trace, which is the defence's point.
	LocatedBombs map[string]string
}

// Debugger fuzzes the app with tracing enabled and, on each symptom,
// walks the trace backwards to the decryptLoad site that launched the
// offending payload.
func Debugger(pkg *apk.Package, domain int64, durationMs int64, seed int64) (DebuggerResult, error) {
	v, err := vm.NewUnverified(pkg, android.EmulatorLab(1)[0], vm.Options{
		Seed: seed, TraceDepth: 4096,
	})
	if err != nil {
		return DebuggerResult{}, err
	}
	res := DebuggerResult{LocatedBombs: map[string]string{}}

	locate := func() {
		trace := v.Trace()
		// Walk backwards: the most recent payload-context entry names
		// the bomb; the decryptLoad call before it names the host.
		for i := len(trace) - 1; i >= 0; i-- {
			e := trace[i]
			if e.InPayload == "" {
				continue
			}
			bomb := e.InPayload
			host := "?"
			for j := i; j >= 0; j-- {
				if trace[j].InPayload == "" {
					host = trace[j].Method
					break
				}
			}
			res.LocatedBombs[bomb] = host
			return
		}
	}
	v.Observe(func(call vm.APICall) {
		switch call.API {
		case dex.APICrash, dex.APIWarnUser, dex.APILeakMemory,
			dex.APISpinLoop, dex.APIReportPiracy, dex.APIDelayBomb:
			if call.InPayload != "" {
				res.Symptoms++
				locate()
			}
		}
	})

	r := fuzz.Run(v, fuzz.NewDynodroid(), domain, fuzz.Options{
		DurationMs: durationMs, Seed: seed,
	})
	res.FuzzedMinutes = r.VirtualMillis / 60_000
	return res, nil
}
