// Package attack is the adversary toolbox from the paper's threat
// model (§2.1) and resilience evaluation (§8.3): text search, brute
// force against bomb keys, code deletion, forced execution
// (circumventing trigger conditions), HARVESTER-style backward
// slicing, debugger/hook-based call interception, and the human
// analyst with environment mutation. Each attack consumes a protected
// app and reports what it managed to locate, reveal, crack, or break
// — the numbers behind the resilience matrix.
package attack

import (
	"fmt"
	"sort"
	"strings"

	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// SuspiciousTokens are the text patterns an attacker greps a
// disassembled app for (paper §2.1, "Text search").
var SuspiciousTokens = []string{
	"getPublicKey", "getManifestDigest", "codeDigest", "stegoExtract",
	"decryptLoad", "invokePayload", "sha1Hex", "reflectCall", "deobfuscate",
}

// TextFinding is one matched token.
type TextFinding struct {
	Token string
	Count int
}

// TextSearch greps the disassembly. Against naive bombs it pinpoints
// detection calls directly; against BombDroid it sees only the
// hash/decrypt plumbing — present at real AND bogus bombs alike, with
// the interesting code encrypted.
func TextSearch(f *dex.File) []TextFinding {
	dis := dex.Disassemble(f)
	var out []TextFinding
	for _, tok := range SuspiciousTokens {
		if n := strings.Count(dis, tok); n > 0 {
			out = append(out, TextFinding{Token: tok, Count: n})
		}
	}
	return out
}

// FindToken reports the count for one token.
func FindToken(fs []TextFinding, token string) int {
	for _, f := range fs {
		if f.Token == token {
			return f.Count
		}
	}
	return 0
}

// BombSite is a bomb's outer trigger as recovered from the bytecode:
// everything an attacker can read — salt, published hash, blob index —
// and nothing they cannot (the constant).
type BombSite struct {
	Method  string
	PC      int // pc of the sha1Hex call
	Salt    string
	Hc      string
	BlobIdx int64
}

// ScanBombSites pattern-matches the outer-trigger plumbing in every
// method: a sha1Hex call whose salt operand is a constant string,
// followed by a string-equality against a constant 40-hex-digit value
// and a decryptLoad. This is exactly the recon a determined attacker
// performs before a brute-force attack (§5.1).
func ScanBombSites(f *dex.File) []BombSite {
	var out []BombSite
	for _, m := range f.Methods() {
		sites := scanMethod(f, m)
		out = append(out, sites...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func scanMethod(f *dex.File, m *dex.Method) []BombSite {
	var out []BombSite
	strConsts := map[int32]string{}
	intConsts := map[int32]int64{}
	type hashInfo struct {
		pc   int
		salt string
	}
	hashes := map[int32]hashInfo{}
	hcOf := map[int32]string{} // equality result reg -> Hc

	for pc, in := range m.Code {
		switch in.Op {
		case dex.OpConstStr:
			strConsts[in.A] = f.Str(in.Imm)
		case dex.OpConstInt:
			intConsts[in.A] = in.Imm
		case dex.OpCallAPI:
			switch dex.API(in.Imm) {
			case dex.APISHA1Hex:
				if in.C == 2 {
					if salt, ok := strConsts[in.B+1]; ok {
						hashes[in.A] = hashInfo{pc: pc, salt: salt}
					}
				}
			case dex.APIStrEquals:
				if in.C == 2 {
					if h, ok := hashes[in.B]; ok {
						if hc, ok2 := strConsts[in.B+1]; ok2 && len(hc) == 40 {
							hcOf[in.A] = hc
							// Remember which hash produced it.
							hashes[in.A] = h
						}
					}
				}
			case dex.APIDecryptLoad:
				if in.C == 3 {
					if blob, ok := intConsts[in.B]; ok {
						// Attribute to the most recent hash compare.
						var best *BombSite
						for reg, hc := range hcOf {
							h := hashes[reg]
							site := BombSite{
								Method: m.FullName(), PC: h.pc,
								Salt: h.salt, Hc: hc, BlobIdx: blob,
							}
							if best == nil || h.pc > best.PC {
								b := site
								best = &b
							}
						}
						if best != nil {
							out = append(out, *best)
							hcOf = map[int32]string{}
						}
					}
				}
			}
		}
	}
	return out
}

// BruteForceOptions bounds the key search.
type BruteForceOptions struct {
	// IntBudget is how many integer candidates to try per site
	// (0 .. IntBudget-1 plus small negatives).
	IntBudget int64
	// Dictionary is the attacker's candidate string list — typically
	// the app's own string pool plus common words (§10: "understanding
	// the semantics of the branch conditions can help guess keys").
	Dictionary []string
}

// CrackedKey is one recovered bomb key.
type CrackedKey struct {
	Site BombSite
	Key  dex.Value
}

// BruteForceResult summarizes the attack.
type BruteForceResult struct {
	Sites    int
	Cracked  []CrackedKey
	Attempts int64
	// DomainEstimates maps site index -> search-space size the
	// attacker faces when the budget fails (|dom(X)| * t, §5.1).
	DomainEstimates map[int]string
}

// BruteForce enumerates candidate trigger values against each site's
// published (salt, Hc) pair. No runtime is needed: the hash test is
// offline, exactly as a real attacker would run it.
func BruteForce(f *dex.File, opts BruteForceOptions) BruteForceResult {
	if opts.IntBudget == 0 {
		opts.IntBudget = 1 << 16
	}
	if opts.Dictionary == nil {
		opts.Dictionary = f.Strings
	}
	sites := ScanBombSites(f)
	res := BruteForceResult{Sites: len(sites), DomainEstimates: map[int]string{}}
	for i, site := range sites {
		key, attempts, ok := crackSite(site, opts)
		res.Attempts += attempts
		if ok {
			res.Cracked = append(res.Cracked, CrackedKey{Site: site, Key: key})
		} else {
			res.DomainEstimates[i] = "2^64 ints × t + full string space (budget exhausted)"
		}
	}
	return res
}

func crackSite(site BombSite, opts BruteForceOptions) (dex.Value, int64, bool) {
	attempts := int64(0)
	try := func(v dex.Value) bool {
		attempts++
		return lockbox.HashHex(v, site.Salt) == site.Hc
	}
	// Booleans and small ints first (weak/medium strength ordering).
	for v := int64(-4); v < opts.IntBudget; v++ {
		if try(dex.Int64(v)) {
			return dex.Int64(v), attempts, true
		}
	}
	for _, s := range opts.Dictionary {
		if try(dex.Str(s)) {
			return dex.Str(s), attempts, true
		}
	}
	return dex.Value{}, attempts, false
}

// DeletionResult reports a code-deletion attack.
type DeletionResult struct {
	SitesDeleted int
	File         *dex.File
}

// DeleteSuspiciousCode excises every bomb site wholesale — the
// "trivial attack" of §2.1, done competently: from each sha1Hex call
// through the matching invokePayload, everything (guard branch
// included) becomes a nop, so no dangling plumbing remains. Because
// woven bombs carry original app code inside their payloads and bogus
// bombs are indistinguishable from real ones, the excision silently
// removes app behaviour; callers measure the damage by running the
// result.
func DeleteSuspiciousCode(f *dex.File) DeletionResult {
	out := f.Clone()
	res := DeletionResult{File: out}
	nop := dex.Instr{Op: dex.OpNop, A: -1, B: -1, C: -1}
	const window = 30
	for _, m := range out.Methods() {
		for pc := 0; pc < len(m.Code); pc++ {
			in := m.Code[pc]
			if in.Op != dex.OpCallAPI || dex.API(in.Imm) != dex.APISHA1Hex {
				continue
			}
			end := -1
			for look := pc; look < len(m.Code) && look <= pc+window; look++ {
				li := m.Code[look]
				if li.Op == dex.OpCallAPI && dex.API(li.Imm) == dex.APIInvokePayload {
					end = look
					break
				}
			}
			if end < 0 {
				// A hash with no payload launch nearby: drop the call
				// alone.
				m.Code[pc] = nop
				res.SitesDeleted++
				continue
			}
			for i := pc; i <= end; i++ {
				m.Code[i] = nop
			}
			res.SitesDeleted++
			pc = end
		}
	}
	return res
}

// Slice is a backward program slice ending at a sensitive call
// (HARVESTER, §2.1 "Circumventing trigger conditions").
type Slice struct {
	Method   string
	TargetPC int
	API      dex.API
	PCs      []int // contributing instructions, ascending
}

// BackwardSlices computes intra-method backward slices from every
// occurrence of the target APIs, following register def-use chains
// (statics conservatively included via their loads).
func BackwardSlices(f *dex.File, targets ...dex.API) []Slice {
	tset := map[dex.API]bool{}
	for _, t := range targets {
		tset[t] = true
	}
	var out []Slice
	for _, m := range f.Methods() {
		for pc, in := range m.Code {
			if in.Op != dex.OpCallAPI || !tset[dex.API(in.Imm)] {
				continue
			}
			out = append(out, Slice{
				Method:   m.FullName(),
				TargetPC: pc,
				API:      dex.API(in.Imm),
				PCs:      sliceFrom(m, pc),
			})
		}
	}
	return out
}

// sliceFrom walks def-use chains backward from the call at target.
func sliceFrom(m *dex.Method, target int) []int {
	need := cfg.NewRegSet(m.NumRegs)
	uses, _ := cfg.UsesDefs(m.Code[target])
	for _, u := range uses {
		need.Add(u)
	}
	include := map[int]bool{target: true}
	for pc := target - 1; pc >= 0; pc-- {
		in := m.Code[pc]
		iuses, idefs := cfg.UsesDefs(in)
		defsNeeded := false
		for _, d := range idefs {
			if need.Has(d) {
				defsNeeded = true
			}
		}
		if !defsNeeded {
			continue
		}
		include[pc] = true
		for _, d := range idefs {
			need.Remove(d)
		}
		for _, u := range iuses {
			need.Add(u)
		}
	}
	pcs := make([]int, 0, len(include))
	for pc := range include {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// ExtractSliceMethod materializes a slice as a runnable method (the
// HARVESTER move: execute the extracted slice to uncover payload
// behaviour). Branches inside the slice are dropped — the slice is
// the straight-line data flow into the target call, detached from the
// conditions guarding it.
func ExtractSliceMethod(f *dex.File, sl Slice) (*dex.File, error) {
	src := f.Method(sl.Method)
	if src == nil {
		return nil, fmt.Errorf("attack: method %s not found", sl.Method)
	}
	out := f.Clone()
	b := dex.NewBuilder(out, "slice", 0)
	_ = b.Regs(src.NumRegs) // same register numbering as the original
	for _, pc := range sl.PCs {
		in := src.Code[pc]
		if in.Op.IsBranch() || in.Op == dex.OpSwitch ||
			in.Op == dex.OpReturn || in.Op == dex.OpReturnVoid {
			continue
		}
		b.Emit(in)
	}
	b.ReturnVoid()
	m, err := b.Finish()
	if err != nil {
		return nil, err
	}
	cl := &dex.Class{Name: "SliceHarness"}
	cl.AddMethod(m)
	if err := out.AddClass(cl); err != nil {
		return nil, err
	}
	return out, nil
}
