package attack

import (
	"testing"

	"bombdroid/internal/apk"
)

// The debugger locates only bombs that fire — a small minority — and
// attributes each to its true host method.
func TestDebuggerLocatesOnlyFiredBombs(t *testing.T) {
	fx := build(t, 149)
	attacker, err := apk.NewKeyPair(4000)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(fx.prot, attacker, apk.RepackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Debugger(pirated, fx.app.Config.ParamDomain, 30*60_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := len(fx.protRes.RealBombs())
	t.Logf("debugger: %d symptoms, located %d/%d bombs", res.Symptoms, len(res.LocatedBombs), total)
	if len(res.LocatedBombs) >= total/2 {
		t.Errorf("debugging located %d/%d bombs — dormancy broken", len(res.LocatedBombs), total)
	}
	// Every located bomb's attribution must match ground truth.
	hostOf := map[string]string{}
	for _, b := range fx.protRes.Bombs {
		hostOf[b.ID] = b.Method
	}
	for bomb, host := range res.LocatedBombs {
		want, ok := hostOf[bomb]
		if !ok {
			t.Errorf("located unknown bomb %q", bomb)
			continue
		}
		if host != want {
			t.Errorf("bomb %s attributed to %s, truth %s", bomb, host, want)
		}
	}
}
