package attack

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/baseline"
	"bombdroid/internal/cfg"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

type fixture struct {
	app     *appgen.App
	devKey  *apk.KeyPair
	prot    *apk.Package // BombDroid-protected, signed
	protRes *core.Result
	naive   *baseline.NaiveResult
	ssn     *baseline.SSNResult
	res     apk.Resources
}

func build(t *testing.T, seed int64) *fixture {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{
		Name: "atk", Seed: seed, TargetLOC: 2000, QCPerMethod: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(51)
	if err != nil {
		t.Fatal(err)
	}
	res := apk.Resources{Strings: []string{"Play", "Quit"}, Author: "dev"}
	orig, err := apk.Sign(apk.Build("atk", app.File, res), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, protRes, err := core.ProtectPackage(orig, key, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := baseline.ProtectNaive(app.File, key.PublicKeyHex(), baseline.NaiveOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ssn, err := baseline.ProtectSSN(app.File, key.PublicKeyHex(), baseline.SSNOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{app: app, devKey: key, prot: prot, protRes: protRes, naive: naive, ssn: ssn, res: res}
}

func TestTextSearchDifferentiatesProtections(t *testing.T) {
	fx := build(t, 101)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	bombdroid := TextSearch(protFile)
	naive := TextSearch(fx.naive.File)
	ssn := TextSearch(fx.ssn.File)

	if FindToken(bombdroid, "getPublicKey") != 0 {
		t.Error("BombDroid must not expose getPublicKey to text search")
	}
	if FindToken(bombdroid, "sha1Hex") == 0 {
		t.Error("bomb plumbing should be visible (it is encrypted, not hidden)")
	}
	if FindToken(naive, "getPublicKey") == 0 {
		t.Error("naive bombs must be found by text search")
	}
	if FindToken(ssn, "getPublicKey") != 0 {
		t.Error("SSN hides the name string")
	}
	if FindToken(ssn, "reflectCall") == 0 {
		t.Error("SSN's reflection machinery is visible")
	}
}

func TestScanBombSitesMatchesGroundTruth(t *testing.T) {
	fx := build(t, 103)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	sites := ScanBombSites(protFile)
	if len(sites) == 0 {
		t.Fatal("no bomb sites recovered")
	}
	// Every scanned site corresponds to a ground-truth bomb (salt is
	// unique per bomb).
	saltToBomb := map[string]core.Bomb{}
	for _, b := range fx.protRes.Bombs {
		saltToBomb[b.Salt] = b
	}
	for _, s := range sites {
		if _, ok := saltToBomb[s.Salt]; !ok {
			t.Errorf("scanned site salt %q matches no bomb", s.Salt)
		}
	}
	if len(sites) != len(fx.protRes.Bombs) {
		t.Errorf("scanner found %d sites, ground truth has %d bombs",
			len(sites), len(fx.protRes.Bombs))
	}
}

func TestBruteForceCracksByStrength(t *testing.T) {
	fx := build(t, 107)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	res := BruteForce(protFile, BruteForceOptions{IntBudget: 1 << 12})
	if res.Sites == 0 {
		t.Fatal("no sites")
	}
	crackedSalts := map[string]bool{}
	for _, c := range res.Cracked {
		crackedSalts[c.Site.Salt] = true
	}
	var weakCracked, weakTotal, strongCracked, strongTotal int
	for _, b := range fx.protRes.Bombs {
		switch b.Strength {
		case cfg.Weak:
			weakTotal++
			if crackedSalts[b.Salt] {
				weakCracked++
			}
		case cfg.Strong:
			strongTotal++
			if crackedSalts[b.Salt] {
				strongCracked++
			}
		}
	}
	if weakTotal > 0 && weakCracked != weakTotal {
		t.Errorf("weak (boolean) bombs must all crack: %d/%d", weakCracked, weakTotal)
	}
	// Verify cracked keys are genuine.
	for _, c := range res.Cracked {
		b := func() *core.Bomb {
			for i := range fx.protRes.Bombs {
				if fx.protRes.Bombs[i].Salt == c.Site.Salt {
					return &fx.protRes.Bombs[i]
				}
			}
			return nil
		}()
		if b == nil {
			continue
		}
		if !c.Key.Equal(b.Const) {
			t.Errorf("cracked key %v != true constant %v", c.Key, b.Const)
		}
	}
	t.Logf("cracked %d/%d sites (weak %d/%d, strong %d/%d), %d attempts",
		len(res.Cracked), res.Sites, weakCracked, weakTotal, strongCracked, strongTotal, res.Attempts)
}

func TestBruteForceSaltPreventsRainbowSharing(t *testing.T) {
	// Two bombs with the same constant have different (salt, Hc)
	// pairs: one precomputed table cannot serve both (§5.1).
	fx := build(t, 109)
	protFile, _ := fx.prot.DexFile()
	sites := ScanBombSites(protFile)
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s.Hc] {
			t.Fatalf("duplicate Hc across bombs — salts are not doing their job")
		}
		seen[s.Hc] = true
	}
}

func TestDeletionCorruptsProtectedApp(t *testing.T) {
	fx := build(t, 113)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	del := DeleteSuspiciousCode(protFile)
	if del.SitesDeleted == 0 {
		t.Fatal("nothing deleted")
	}
	// Run the mutilated app as a user would; compare against the
	// intact protected app.
	attacker, _ := apk.NewKeyPair(5051)
	broken, err := apk.Sign(apk.Build("atk", del.File, fx.res), attacker)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	dev := android.SamplePopulation("u", rng)
	vb, err := vm.New(broken, dev.Clone(), vm.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := vm.New(fx.prot, dev.Clone(), vm.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	refs := append(append([]string{}, fx.app.IntFieldRefs...), fx.app.StrFieldRefs...)
	refs = append(refs, fx.app.BoolFieldRefs...)
	diverged := false
	for i := 0; i < 4000 && !diverged; i++ {
		h := fx.app.Handlers[rng.Intn(len(fx.app.Handlers))]
		a, b := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
		_, err1 := vb.Invoke(h, a, b)
		_, err2 := vp.Invoke(h, a, b)
		if vm.AbnormalExit(err1) != vm.AbnormalExit(err2) {
			diverged = true
		}
		for _, ref := range refs {
			if !vb.Static(ref).Equal(vp.Static(ref)) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("deleting all bomb sites should corrupt app behaviour (weaving)")
	}
}

func TestForcedExecutionRevealsNaiveNotBombDroid(t *testing.T) {
	fx := build(t, 127)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	bd, err := ForcedExecution(protFile, fx.res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bd.BranchesForced == 0 {
		t.Fatal("no branches forced on the protected app")
	}
	if bd.ForcedOnlyReveals != 0 {
		t.Errorf("forcing alone revealed %d BombDroid payloads — encryption should prevent this", bd.ForcedOnlyReveals)
	}
	if bd.Corrupted == 0 {
		t.Error("forced decryption should corrupt at least some runs")
	}

	nv, err := ForcedExecution(fx.naive.File, fx.res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nv.ForcedOnlyReveals == 0 {
		t.Error("forcing must reveal naive detection code")
	}
	t.Logf("bombdroid: forced=%d revealed=%d forced-only=%d corrupted=%d | naive: forced=%d forced-only=%d",
		bd.BranchesForced, bd.PayloadRevealed, bd.ForcedOnlyReveals, bd.Corrupted,
		nv.BranchesForced, nv.ForcedOnlyReveals)
}

func TestSlicingFailsOnBombDroid(t *testing.T) {
	fx := build(t, 131)
	protFile, err := fx.prot.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	slices := BackwardSlices(protFile, dex.APIDecryptLoad)
	if len(slices) == 0 {
		t.Fatal("no slices found")
	}
	for _, sl := range slices {
		if len(sl.PCs) < 2 {
			t.Errorf("slice at %s:%d suspiciously small", sl.Method, sl.TargetPC)
		}
	}
	res, err := ExecuteSlices(protFile, fx.res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 {
		t.Fatal("no slices executed")
	}
	if res.Revealed != 0 {
		t.Errorf("slice execution revealed %d payloads — should be impossible without keys", res.Revealed)
	}
	if res.Corrupted == 0 {
		t.Error("slice execution should die in decrypt failures")
	}
	t.Logf("slices=%d executed=%d corrupted=%d other=%d",
		res.Slices, res.Executed, res.Corrupted, res.OtherFailure)
}

func TestHookCampaignOnlyLocatesFiredBombs(t *testing.T) {
	fx := build(t, 137)
	attacker, _ := apk.NewKeyPair(2222)
	pirated, err := apk.Repackage(fx.prot, attacker, apk.RepackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := HookCampaign(pirated, fx.app.Config.ParamDomain, 30*60_000, fx.devKey.PublicKeyHex(), 4)
	if err != nil {
		t.Fatal(err)
	}
	total := len(fx.protRes.RealBombs())
	if hr.BombsTriggered >= total {
		t.Errorf("hooking located %d/%d bombs — most must stay dormant", hr.BombsTriggered, total)
	}
	t.Logf("hook campaign: located %d/%d bombs in %d minutes, %d checks suppressed",
		hr.BombsTriggered, total, hr.FuzzedMinutes, hr.Suppressed)
}

func TestHumanAnalystTriggersMinority(t *testing.T) {
	fx := build(t, 139)
	attacker, _ := apk.NewKeyPair(3131)
	pirated, err := apk.Repackage(fx.prot, attacker, apk.RepackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(fx.protRes.RealBombs())
	ar, err := HumanAnalyst(pirated, fx.app.Config.ParamDomain, total, 2,
		fx.app.HandlerScreens, fx.app.ScreenField, 5)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(ar.BombsTriggered) / float64(max(1, ar.TotalBombs))
	if frac > 0.5 {
		t.Errorf("analyst triggered %.0f%% of bombs; defence collapsed", frac*100)
	}
	t.Logf("analyst: %d sessions, %d/%d bombs (%.1f%%)", ar.Sessions, ar.BombsTriggered, ar.TotalBombs, frac*100)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
