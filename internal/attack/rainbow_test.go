package attack

import (
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
)

// Salt economics (paper §5.1): per-bomb salts force one table per
// bomb; a single global salt lets one table serve all of them.
func TestRainbowSaltEconomics(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{
		Name: "rb", Seed: 6, TargetLOC: 1400, QCPerMethod: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(14)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("rb", app.File, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}

	protect := func(globalSalt string) int {
		prot, _, err := core.ProtectPackage(orig, key, core.Options{Seed: 6, GlobalSalt: globalSalt})
		if err != nil {
			t.Fatal(err)
		}
		file, err := prot.DexFile()
		if err != nil {
			t.Fatal(err)
		}
		res := Rainbow(file, SmallIntCandidates(1024))
		if res.Sites == 0 {
			t.Fatal("no sites")
		}
		if res.Cracked == 0 {
			t.Error("small-int candidates should crack the weak/small bombs")
		}
		t.Logf("globalSalt=%q: %d sites, %d cracked, %d tables, %d hashes",
			globalSalt, res.Sites, res.Cracked, res.TablesBuilt, res.HashesComputed)
		return res.TablesBuilt
	}

	perBombTables := protect("")
	globalTables := protect("shared-salt")
	if globalTables != 1 {
		t.Errorf("global salt should need exactly 1 table, got %d", globalTables)
	}
	if perBombTables <= 1 {
		t.Errorf("per-bomb salts should force many tables, got %d", perBombTables)
	}
	if perBombTables < 10*globalTables {
		t.Errorf("salting should multiply precomputation cost: %d vs %d tables",
			perBombTables, globalTables)
	}
}
