package attack

import (
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// RainbowResult reports a precomputed-table attack (paper §5.1:
// "attackers may attempt to apply rainbow attacks, which use a
// precomputed table for reversing hash functions. However, … such
// attacks can be defeated by mixing a unique plaintext salt (for each
// bomb) into the hash computation").
type RainbowResult struct {
	Sites          int
	Cracked        int
	TablesBuilt    int   // one per distinct salt observed
	HashesComputed int64 // total precomputation cost
}

// Rainbow precomputes hash tables over a candidate key space and looks
// every bomb's Hc up in them. Tables are salt-specific: with one
// global salt a single table serves every bomb; with per-bomb salts
// the attacker pays the full precomputation cost once per bomb, which
// is exactly the defence's point.
func Rainbow(f *dex.File, candidates []dex.Value) RainbowResult {
	sites := ScanBombSites(f)
	res := RainbowResult{Sites: len(sites)}

	tables := map[string]map[string]bool{}
	for _, site := range sites {
		table, ok := tables[site.Salt]
		if !ok {
			table = make(map[string]bool, len(candidates))
			for _, c := range candidates {
				table[lockbox.HashHex(c, site.Salt)] = true
				res.HashesComputed++
			}
			tables[site.Salt] = table
			res.TablesBuilt++
		}
		if table[site.Hc] {
			res.Cracked++
		}
	}
	return res
}

// SmallIntCandidates builds the candidate space a table would be
// precomputed over: all integers in [0, n) plus booleans.
func SmallIntCandidates(n int64) []dex.Value {
	out := make([]dex.Value, 0, n+2)
	for v := int64(-1); v <= n; v++ {
		out = append(out, dex.Int64(v))
	}
	return out
}
