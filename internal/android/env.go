// Package android models the device side of the paper's setting: the
// environment variables inner trigger conditions read (hardware,
// software, time, sensors — §6), their population-wide distributions
// (the Dashboards/AppBrain statistics BombDroid consults when it
// builds inner conditions with a target satisfaction probability), and
// concrete devices sampled from those distributions. Attackers run a
// handful of emulator profiles; users are draws from the population —
// that asymmetry (difference D1 in the paper) is what the package
// exists to reproduce.
package android

import (
	"fmt"
	"math/rand"
	"sort"
)

// VarKind is the type of an environment variable's value.
type VarKind uint8

// Variable kinds.
const (
	VarInt VarKind = iota
	VarStr
)

// WeightedStr is one possible string value with its population share.
type WeightedStr struct {
	Val    string
	Weight float64
}

// EnvSpec describes one environment variable: its name (the string
// apps pass to getEnvString/getEnvInt), its kind, and its population
// distribution. Integer variables are uniform over [Lo, Hi] unless
// IntWeights is set; string variables are drawn from StrVals.
type EnvSpec struct {
	Name       string
	Kind       VarKind
	Lo, Hi     int64         // VarInt: inclusive range
	IntWeights []WeightedInt // VarInt: optional non-uniform support
	StrVals    []WeightedStr // VarStr: weighted support
	Dynamic    bool          // re-sampled per read (time, sensors)
}

// WeightedInt is one possible integer value with its population share.
type WeightedInt struct {
	Val    int64
	Weight float64
}

// Domain returns the number of distinct values the variable can take —
// the |dom(X)| a brute-force key attack must search (paper §5.1).
func (s *EnvSpec) Domain() int64 {
	switch s.Kind {
	case VarStr:
		return int64(len(s.StrVals))
	default:
		if len(s.IntWeights) > 0 {
			return int64(len(s.IntWeights))
		}
		return s.Hi - s.Lo + 1
	}
}

// sample draws a value according to the distribution.
func (s *EnvSpec) sample(rng *rand.Rand) (int64, string) {
	switch s.Kind {
	case VarStr:
		return 0, pickStr(rng, s.StrVals)
	default:
		if len(s.IntWeights) > 0 {
			return pickInt(rng, s.IntWeights), ""
		}
		return s.Lo + rng.Int63n(s.Hi-s.Lo+1), ""
	}
}

func pickStr(rng *rand.Rand, vals []WeightedStr) string {
	total := 0.0
	for _, v := range vals {
		total += v.Weight
	}
	x := rng.Float64() * total
	for _, v := range vals {
		x -= v.Weight
		if x <= 0 {
			return v.Val
		}
	}
	return vals[len(vals)-1].Val
}

func pickInt(rng *rand.Rand, vals []WeightedInt) int64 {
	total := 0.0
	for _, v := range vals {
		total += v.Weight
	}
	x := rng.Float64() * total
	for _, v := range vals {
		x -= v.Weight
		if x <= 0 {
			return v.Val
		}
	}
	return vals[len(vals)-1].Val
}

// Catalog returns the environment-variable catalog, mirroring the
// paper's §6 list: hardware environment and status, software
// environment, and time/sensor values. The distributions are
// plausible 2017-era Android population shares.
func Catalog() []*EnvSpec {
	return catalog
}

// Spec returns the catalog entry for name, or nil.
func Spec(name string) *EnvSpec { return catalogIndex[name] }

// Names returns all catalog variable names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for _, s := range catalog {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

var catalog = []*EnvSpec{
	// Hardware environment and status.
	{Name: "manufacturer", Kind: VarStr, StrVals: []WeightedStr{
		{"samsung", 0.29}, {"xiaomi", 0.13}, {"huawei", 0.12}, {"oppo", 0.09},
		{"vivo", 0.08}, {"motorola", 0.06}, {"lge", 0.05}, {"google", 0.03},
		{"oneplus", 0.03}, {"sony", 0.02}, {"htc", 0.02}, {"asus", 0.02},
		{"lenovo", 0.02}, {"zte", 0.02}, {"tcl", 0.02},
	}},
	{Name: "brand", Kind: VarStr, StrVals: []WeightedStr{
		{"galaxy", 0.29}, {"redmi", 0.13}, {"honor", 0.12}, {"reno", 0.09},
		{"iqoo", 0.08}, {"moto", 0.06}, {"velvet", 0.05}, {"pixel", 0.03},
		{"nord", 0.03}, {"xperia", 0.02}, {"desire", 0.02}, {"zenfone", 0.02},
		{"other", 0.06},
	}},
	{Name: "board", Kind: VarStr, StrVals: []WeightedStr{
		{"msm8998", 0.18}, {"exynos8895", 0.16}, {"sdm845", 0.15},
		{"kirin960", 0.12}, {"mt6757", 0.11}, {"msm8953", 0.10},
		{"sdm660", 0.09}, {"universal", 0.09},
	}},
	{Name: "bootloader", Kind: VarStr, StrVals: []WeightedStr{
		{"u-boot-1", 0.25}, {"u-boot-2", 0.25}, {"aboot-17", 0.20},
		{"aboot-18", 0.15}, {"lk-3", 0.15},
	}},
	{Name: "cpu_abi", Kind: VarStr, StrVals: []WeightedStr{
		{"arm64-v8a", 0.74}, {"armeabi-v7a", 0.22}, {"x86_64", 0.03}, {"x86", 0.01},
	}},
	{Name: "screen_w", Kind: VarInt, IntWeights: []WeightedInt{
		{720, 0.35}, {1080, 0.45}, {1440, 0.12}, {480, 0.08},
	}},
	{Name: "screen_h", Kind: VarInt, IntWeights: []WeightedInt{
		{1280, 0.35}, {1920, 0.40}, {2560, 0.12}, {2160, 0.08}, {854, 0.05},
	}},
	{Name: "density_dpi", Kind: VarInt, IntWeights: []WeightedInt{
		{240, 0.20}, {320, 0.35}, {480, 0.30}, {640, 0.15},
	}},
	{Name: "flash_gb", Kind: VarInt, IntWeights: []WeightedInt{
		{16, 0.15}, {32, 0.30}, {64, 0.30}, {128, 0.18}, {256, 0.07},
	}},
	{Name: "mac_hash", Kind: VarInt, Lo: 0, Hi: 1<<24 - 1},
	{Name: "serial_hash", Kind: VarInt, Lo: 0, Hi: 1<<24 - 1},
	{Name: "battery_pct", Kind: VarInt, Lo: 1, Hi: 100, Dynamic: true},

	// Software environment.
	{Name: "os_version", Kind: VarInt, IntWeights: []WeightedInt{
		{19, 0.08}, {21, 0.10}, {22, 0.12}, {23, 0.22}, {24, 0.20},
		{25, 0.14}, {26, 0.10}, {27, 0.04},
	}},
	{Name: "api_level", Kind: VarInt, IntWeights: []WeightedInt{
		{19, 0.08}, {21, 0.10}, {22, 0.12}, {23, 0.22}, {24, 0.20},
		{25, 0.14}, {26, 0.10}, {27, 0.04},
	}},
	{Name: "patch_level", Kind: VarInt, Lo: 0, Hi: 35},
	{Name: "locale", Kind: VarStr, StrVals: []WeightedStr{
		{"en_US", 0.22}, {"zh_CN", 0.16}, {"es_ES", 0.09}, {"pt_BR", 0.08},
		{"hi_IN", 0.08}, {"ru_RU", 0.06}, {"ja_JP", 0.05}, {"de_DE", 0.05},
		{"fr_FR", 0.05}, {"ko_KR", 0.04}, {"it_IT", 0.03}, {"tr_TR", 0.03},
		{"id_ID", 0.03}, {"ar_SA", 0.03}, {"other", 0.10},
	}},
	{Name: "ip_a", Kind: VarInt, Lo: 1, Hi: 223},
	{Name: "ip_b", Kind: VarInt, Lo: 0, Hi: 255},
	{Name: "ip_c", Kind: VarInt, Lo: 0, Hi: 255},
	{Name: "ip_d", Kind: VarInt, Lo: 1, Hi: 254},
	{Name: "timezone_off", Kind: VarInt, Lo: -11, Hi: 14},

	// Time and sensors (dynamic).
	{Name: "time_hour", Kind: VarInt, Lo: 0, Hi: 23, Dynamic: true},
	{Name: "time_dow", Kind: VarInt, Lo: 0, Hi: 6, Dynamic: true},
	{Name: "time_min", Kind: VarInt, Lo: 0, Hi: 59, Dynamic: true},
	{Name: "gps_lat_e6", Kind: VarInt, Lo: -60_000_000, Hi: 70_000_000},
	{Name: "gps_lon_e6", Kind: VarInt, Lo: -180_000_000, Hi: 180_000_000},
	{Name: "light_lux", Kind: VarInt, Lo: 0, Hi: 10_000, Dynamic: true},
	{Name: "temp_c", Kind: VarInt, Lo: -10, Hi: 40, Dynamic: true},
}

var catalogIndex = func() map[string]*EnvSpec {
	m := make(map[string]*EnvSpec, len(catalog))
	for _, s := range catalog {
		if _, dup := m[s.Name]; dup {
			panic(fmt.Sprintf("android: duplicate env var %q", s.Name))
		}
		m[s.Name] = s
	}
	return m
}()
