package android

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstraintEvalAndProb(t *testing.T) {
	d := EmulatorLab(1)[0] // ip = 10.0.2.15, api 23, manufacturer lge
	cases := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{Var: "ip_c", Op: OpEq, Val: 2}, true},
		{Constraint{Var: "ip_c", Op: OpNe, Val: 2}, false},
		{Constraint{Var: "ip_c", Op: OpLt, Val: 3}, true},
		{Constraint{Var: "ip_c", Op: OpGt, Val: 3}, false},
		{Constraint{Var: "ip_c", Op: OpIn, Lo: 0, Hi: 5}, true},
		{Constraint{Var: "ip_c", Op: OpIn, Lo: 101, Hi: 131}, false},
		{Constraint{Var: "manufacturer", Op: OpEq, StrVal: "lge"}, true},
		{Constraint{Var: "manufacturer", Op: OpNe, StrVal: "lge"}, false},
		{Constraint{Var: "manufacturer", Op: OpEq, StrVal: "sony"}, false},
		{Constraint{Var: "nonexistent", Op: OpEq, Val: 1}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(d, 0); got != tc.want {
			t.Errorf("%s on emulator = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestPaperIPExample(t *testing.T) {
	// Paper §7.3: "101 < C < 132 has p = 30/256".
	c := Constraint{Var: "ip_c", Op: OpIn, Lo: 102, Hi: 131}
	if got, want := c.Prob(), 30.0/256.0; got != want {
		t.Errorf("Prob = %v, want %v", got, want)
	}
}

func TestConstraintProbEdges(t *testing.T) {
	if p := (Constraint{Var: "ip_c", Op: OpNe, Val: 7}).Prob(); p != 255.0/256.0 {
		t.Errorf("Ne prob = %v", p)
	}
	if p := (Constraint{Var: "ip_c", Op: OpEq, Val: 999}).Prob(); p != 0 {
		t.Errorf("out-of-range Eq prob = %v", p)
	}
	if p := (Constraint{Var: "bogus", Op: OpEq, Val: 1}).Prob(); p != 0 {
		t.Errorf("unknown var prob = %v", p)
	}
	// Weighted int var.
	p := (Constraint{Var: "api_level", Op: OpGt, Val: 23}).Prob()
	if p < 0.4 || p > 0.6 {
		t.Errorf("api_level > 23 prob = %v, want ~0.48", p)
	}
	// Weighted string var.
	ps := (Constraint{Var: "manufacturer", Op: OpEq, StrVal: "samsung"}).Prob()
	if ps < 0.25 || ps > 0.35 {
		t.Errorf("samsung prob = %v", ps)
	}
}

// Property: Prob agrees with the empirical satisfaction frequency over
// sampled devices, for static variables.
func TestProbMatchesEmpirical(t *testing.T) {
	conds := []Constraint{
		{Var: "ip_c", Op: OpIn, Lo: 102, Hi: 131},
		{Var: "manufacturer", Op: OpEq, StrVal: "samsung"},
		{Var: "api_level", Op: OpGt, Val: 23},
		{Var: "flash_gb", Op: OpEq, Val: 64},
	}
	rng := rand.New(rand.NewSource(21))
	const n = 30000
	hits := make([]int, len(conds))
	for i := 0; i < n; i++ {
		d := SamplePopulation("u", rng)
		for j, c := range conds {
			if c.Eval(d, 0) {
				hits[j]++
			}
		}
	}
	for j, c := range conds {
		got := float64(hits[j]) / n
		want := c.Prob()
		if diff := got - want; diff > 0.015 || diff < -0.015 {
			t.Errorf("%s: empirical %.3f vs analytic %.3f", c, got, want)
		}
	}
}

func TestInnerCondEval(t *testing.T) {
	d := EmulatorLab(1)[0]
	sat := Constraint{Var: "ip_c", Op: OpEq, Val: 2}
	unsat := Constraint{Var: "ip_c", Op: OpEq, Val: 9}
	and := InnerCond{Constraints: []Constraint{sat, unsat}}
	or := InnerCond{Constraints: []Constraint{sat, unsat}, AnyOf: true}
	if and.Eval(d, 0) {
		t.Error("conjunction with false term should fail")
	}
	if !or.Eval(d, 0) {
		t.Error("disjunction with true term should hold")
	}
	if !(InnerCond{}).Eval(d, 0) {
		t.Error("empty condition is vacuously true")
	}
	if (InnerCond{}).Prob() != 1 {
		t.Error("empty condition prob should be 1")
	}
	if and.String() == "" || or.String() == "" || (InnerCond{}).String() != "true" {
		t.Error("String rendering broken")
	}
}

func TestInnerCondProbCombinators(t *testing.T) {
	a := Constraint{Var: "ip_c", Op: OpIn, Lo: 0, Hi: 127} // 1/2
	b := Constraint{Var: "ip_b", Op: OpIn, Lo: 0, Hi: 63}  // 1/4
	and := InnerCond{Constraints: []Constraint{a, b}}
	if p := and.Prob(); p != 0.125 {
		t.Errorf("conjunction prob = %v, want 0.125", p)
	}
	e1 := Constraint{Var: "manufacturer", Op: OpEq, StrVal: "sony"}
	e2 := Constraint{Var: "manufacturer", Op: OpEq, StrVal: "htc"}
	or := InnerCond{Constraints: []Constraint{e1, e2}, AnyOf: true}
	if p := or.Prob(); p <= e1.Prob() || p >= e1.Prob()+e2.Prob()+1e-9 {
		t.Errorf("disjunction prob = %v", p)
	}
}

// Property: BuildInnerCond always lands in the requested band and
// evaluates consistently with its declared probability over the
// population.
func TestBuildInnerCondProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ic := BuildInnerCond(rng, 0.1, 0.2)
		p := ic.Prob()
		return p >= 0.1-1e-9 && p <= 0.2+1e-9
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildInnerCondEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const users = 4000
	devices := make([]*Device, users)
	for i := range devices {
		devices[i] = SamplePopulation("u", rng)
	}
	// Average satisfaction over many conditions should sit inside the
	// configured band.
	const conds = 60
	sum := 0.0
	for i := 0; i < conds; i++ {
		ic := BuildInnerCond(rng, 0.1, 0.2)
		hits := 0
		for _, d := range devices {
			// Random read time scatters dynamic variables.
			if ic.Eval(d, rng.Int63n(7*86_400_000)) {
				hits++
			}
		}
		sum += float64(hits) / users
	}
	avg := sum / conds
	if avg < 0.08 || avg > 0.25 {
		t.Errorf("average empirical satisfaction %.3f outside plausible band", avg)
	}
}

func TestBuildInnerCondPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid range should panic")
		}
	}()
	BuildInnerCond(rand.New(rand.NewSource(1)), 0.5, 0.1)
}

func TestEmulatorsRarelySatisfyInnerConds(t *testing.T) {
	// The design premise (D1): conditions tuned to p∈[0.1,0.2] over the
	// population hold on few of the attacker's fixed emulator configs.
	rng := rand.New(rand.NewSource(99))
	lab := EmulatorLab(5)
	const conds = 200
	sat := 0
	for i := 0; i < conds; i++ {
		ic := BuildInnerCond(rng, 0.1, 0.2)
		for _, d := range lab {
			if ic.Eval(d, 1_800_000) {
				sat++
			}
		}
	}
	frac := float64(sat) / float64(conds*len(lab))
	if frac > 0.3 {
		t.Errorf("emulators satisfy %.2f of inner conditions; lab too diverse", frac)
	}
}

func TestCmpOpString(t *testing.T) {
	for _, o := range []CmpOp{OpEq, OpNe, OpLt, OpGt, OpIn} {
		if o.String() == "?" {
			t.Errorf("missing name for op %d", o)
		}
	}
	if CmpOp(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}
