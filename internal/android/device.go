package android

import (
	"fmt"
	"math/rand"
	"sort"
)

// Device is one concrete Android device: a fixed assignment to every
// static environment variable plus per-device dynamics (sensors, time
// offsets) that vary between reads. Devices come from two sources:
// draws from the user population (SamplePopulation) and the attacker's
// small emulator lab (EmulatorLab).
type Device struct {
	ID     string
	ints   map[string]int64
	strs   map[string]string
	tzOff  int64 // hours, cached from timezone_off
	jitter *rand.Rand
}

// SamplePopulation draws a device from the population distributions.
// Deterministic given rng state.
func SamplePopulation(id string, rng *rand.Rand) *Device {
	d := &Device{
		ID:     id,
		ints:   make(map[string]int64, len(catalog)),
		strs:   make(map[string]string, 8),
		jitter: rand.New(rand.NewSource(rng.Int63())),
	}
	for _, s := range catalog {
		iv, sv := s.sample(rng)
		if s.Kind == VarStr {
			d.strs[s.Name] = sv
		} else {
			d.ints[s.Name] = iv
		}
	}
	d.tzOff = d.ints["timezone_off"]
	return d
}

// Emulator describes one attacker lab configuration: the fields the
// paper's testers vary between runs (device type, SDK version,
// CPU/ABI, §8.2) with everything else at emulator defaults.
type Emulator struct {
	Name         string
	Manufacturer string
	CPUABI       string
	APILevel     int64
	ScreenW      int64
	ScreenH      int64
}

// NewEmulator materializes an emulator configuration as a Device.
// Emulator defaults are conspicuous: generic board, x86 ABI unless
// overridden, IP in the 10.0.2.x NAT range, null-island GPS — the
// homogeneity that keeps inner triggers dormant in the attacker lab.
func NewEmulator(cfg Emulator, seed int64) *Device {
	d := &Device{
		ID:     "emulator-" + cfg.Name,
		ints:   make(map[string]int64, len(catalog)),
		strs:   make(map[string]string, 8),
		jitter: rand.New(rand.NewSource(seed)),
	}
	d.strs["manufacturer"] = cfg.Manufacturer
	d.strs["brand"] = "generic"
	d.strs["board"] = "goldfish"
	d.strs["bootloader"] = "unknown"
	d.strs["cpu_abi"] = cfg.CPUABI
	d.strs["locale"] = "en_US"
	d.ints["screen_w"] = cfg.ScreenW
	d.ints["screen_h"] = cfg.ScreenH
	d.ints["density_dpi"] = 320
	d.ints["flash_gb"] = 32
	d.ints["mac_hash"] = 0x5254_00 // QEMU OUI prefix
	d.ints["serial_hash"] = seed & 0xFFFFFF
	d.ints["battery_pct"] = 100
	d.ints["os_version"] = cfg.APILevel
	d.ints["api_level"] = cfg.APILevel
	d.ints["patch_level"] = 12
	d.ints["ip_a"], d.ints["ip_b"], d.ints["ip_c"], d.ints["ip_d"] = 10, 0, 2, 15
	d.ints["timezone_off"] = 0
	d.ints["gps_lat_e6"], d.ints["gps_lon_e6"] = 0, 0
	return d
}

// EmulatorLab returns the attacker's emulator fleet: n configurations
// drawn from the handful of distinct setups an attacker can afford to
// maintain (paper observation D1). n is capped at the lab catalog size.
func EmulatorLab(n int) []*Device {
	cfgs := []Emulator{
		{"nexus5-api23", "lge", "armeabi-v7a", 23, 1080, 1920},
		{"pixel-api25", "google", "arm64-v8a", 25, 1080, 1920},
		{"generic-api19", "unknown", "x86", 19, 720, 1280},
		{"nexus7-api22", "asus", "armeabi-v7a", 22, 1200, 1920},
		{"pixel2-api26", "google", "arm64-v8a", 26, 1080, 1920},
		{"galaxy-api24", "samsung", "arm64-v8a", 24, 1440, 2560},
		{"generic-api21", "unknown", "x86", 21, 768, 1280},
		{"oneplus-api25", "oneplus", "arm64-v8a", 25, 1080, 1920},
	}
	if n > len(cfgs) {
		n = len(cfgs)
	}
	out := make([]*Device, n)
	for i := 0; i < n; i++ {
		out[i] = NewEmulator(cfgs[i], int64(i+1))
	}
	return out
}

// GetInt reads an integer environment variable. Dynamic variables
// (time, sensors) are derived from the supplied virtual clock and the
// device's jitter stream; static ones return the fixed assignment.
// Unknown names return 0, matching a framework default.
func (d *Device) GetInt(name string, clockMillis int64) int64 {
	spec := Spec(name)
	if spec == nil || spec.Kind != VarInt {
		return 0
	}
	if !spec.Dynamic {
		return d.ints[name]
	}
	switch name {
	case "time_hour":
		return ((clockMillis/3_600_000)%24 + d.tzOff + 24) % 24
	case "time_min":
		return (clockMillis / 60_000) % 60
	case "time_dow":
		return (clockMillis / 86_400_000) % 7
	case "battery_pct":
		base := d.ints[name]
		drain := (clockMillis / 600_000) % 40 // ~1%/10min cycle
		v := base - drain
		if v < 5 {
			v = 5
		}
		return v
	case "light_lux":
		// Diurnal curve plus per-read jitter.
		h := ((clockMillis/3_600_000)%24 + d.tzOff + 24) % 24
		base := int64(0)
		if h >= 7 && h <= 19 {
			base = 4000
		} else {
			base = 40
		}
		return base + d.jitter.Int63n(500)
	case "temp_c":
		return 15 + d.jitter.Int63n(15)
	default:
		return d.ints[name]
	}
}

// GetStr reads a string environment variable; unknown names return "".
func (d *Device) GetStr(name string) string {
	return d.strs[name]
}

// Has reports whether the device carries the named variable.
func (d *Device) Has(name string) bool {
	if _, ok := d.ints[name]; ok {
		return true
	}
	_, ok := d.strs[name]
	return ok
}

// MutateEnv overrides one variable, modelling the paper's human
// analysts who "mutate environment variables' values" (§8.3.2) on a
// hacked attacker device. Integer variables parse from val's int
// field; string variables from its str field.
func (d *Device) MutateEnv(name string, intVal int64, strVal string) error {
	spec := Spec(name)
	if spec == nil {
		return fmt.Errorf("android: unknown env var %q", name)
	}
	if spec.Kind == VarStr {
		d.strs[name] = strVal
	} else {
		d.ints[name] = intVal
		if name == "timezone_off" {
			d.tzOff = intVal
		}
	}
	return nil
}

// Clone returns an independent copy (same static assignment, forked
// jitter stream).
func (d *Device) Clone() *Device {
	n := &Device{
		ID:     d.ID,
		ints:   make(map[string]int64, len(d.ints)),
		strs:   make(map[string]string, len(d.strs)),
		tzOff:  d.tzOff,
		jitter: rand.New(rand.NewSource(d.jitter.Int63())),
	}
	for k, v := range d.ints {
		n.ints[k] = v
	}
	for k, v := range d.strs {
		n.strs[k] = v
	}
	return n
}

// String summarizes the device's distinguishing fields.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s/%s api%d)", d.ID, d.strs["manufacturer"], d.strs["cpu_abi"], d.ints["api_level"])
}

// Fingerprint returns a deterministic summary of all static fields,
// useful in tests asserting device diversity.
func (d *Device) Fingerprint() string {
	keys := make([]string, 0, len(d.ints)+len(d.strs))
	for k := range d.ints {
		keys = append(keys, k)
	}
	for k := range d.strs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		if s, ok := d.strs[k]; ok {
			out += k + "=" + s + ";"
		} else {
			out += fmt.Sprintf("%s=%d;", k, d.ints[k])
		}
	}
	return out
}
