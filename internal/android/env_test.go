package android

import (
	"math"
	"math/rand"
	"testing"
)

func TestCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if s.Name == "" {
			t.Fatal("empty var name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate var %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Kind {
		case VarStr:
			if len(s.StrVals) == 0 {
				t.Errorf("%s: string var with no support", s.Name)
			}
			for _, v := range s.StrVals {
				if v.Weight <= 0 {
					t.Errorf("%s: non-positive weight for %q", s.Name, v.Val)
				}
			}
		case VarInt:
			if len(s.IntWeights) == 0 && s.Hi < s.Lo {
				t.Errorf("%s: empty range", s.Name)
			}
		}
		if s.Domain() <= 0 {
			t.Errorf("%s: non-positive domain", s.Name)
		}
	}
	// Paper-named variables must exist (§6 examples).
	for _, want := range []string{"manufacturer", "board", "bootloader", "brand",
		"cpu_abi", "mac_hash", "serial_hash", "flash_gb", "api_level",
		"os_version", "ip_c", "gps_lat_e6", "light_lux", "temp_c", "time_hour"} {
		if Spec(want) == nil {
			t.Errorf("catalog missing %q", want)
		}
	}
	if Spec("no_such_var") != nil {
		t.Error("unknown var should have nil spec")
	}
	if len(Names()) != len(Catalog()) {
		t.Error("Names length mismatch")
	}
}

func TestSamplePopulationRespectsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		d := SamplePopulation("u", rng)
		for _, s := range Catalog() {
			if !d.Has(s.Name) {
				t.Fatalf("device missing %q", s.Name)
			}
			if s.Kind == VarStr {
				got := d.GetStr(s.Name)
				found := false
				for _, v := range s.StrVals {
					if v.Val == got {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s = %q outside support", s.Name, got)
				}
			} else if !s.Dynamic {
				got := d.GetInt(s.Name, 0)
				if len(s.IntWeights) > 0 {
					found := false
					for _, v := range s.IntWeights {
						if v.Val == got {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s = %d outside weighted support", s.Name, got)
					}
				} else if got < s.Lo || got > s.Hi {
					t.Fatalf("%s = %d outside [%d,%d]", s.Name, got, s.Lo, s.Hi)
				}
			}
		}
	}
}

func TestPopulationDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prints := map[string]bool{}
	for i := 0; i < 100; i++ {
		prints[SamplePopulation("u", rng).Fingerprint()] = true
	}
	if len(prints) < 95 {
		t.Errorf("population not diverse: %d distinct of 100", len(prints))
	}
}

func TestEmulatorLabHomogeneity(t *testing.T) {
	lab := EmulatorLab(5)
	if len(lab) != 5 {
		t.Fatalf("lab size = %d", len(lab))
	}
	for _, d := range lab {
		if d.GetStr("board") != "goldfish" {
			t.Errorf("%s: board = %q, want goldfish", d.ID, d.GetStr("board"))
		}
		if d.GetInt("ip_a", 0) != 10 || d.GetInt("ip_c", 0) != 2 {
			t.Errorf("%s: not in emulator NAT range", d.ID)
		}
		if d.GetInt("gps_lat_e6", 0) != 0 {
			t.Errorf("%s: emulator GPS should be null island", d.ID)
		}
	}
	if got := len(EmulatorLab(100)); got > 8 {
		t.Errorf("lab should cap at catalog size, got %d", got)
	}
}

func TestDynamicVars(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := SamplePopulation("u", rng)
	d.MutateEnv("timezone_off", 0, "")
	hour0 := d.GetInt("time_hour", 0)
	hour5 := d.GetInt("time_hour", 5*3_600_000)
	if hour5 != (hour0+5)%24 {
		t.Errorf("time_hour progression wrong: %d then %d", hour0, hour5)
	}
	if m := d.GetInt("time_min", 61*60_000); m != 1 {
		t.Errorf("time_min = %d, want 1", m)
	}
	if dow := d.GetInt("time_dow", 8*86_400_000); dow != 1 {
		t.Errorf("time_dow = %d, want 1", dow)
	}
	day := d.GetInt("light_lux", 12*3_600_000)
	night := d.GetInt("light_lux", 2*3_600_000)
	if day < night {
		t.Errorf("day lux %d < night lux %d", day, night)
	}
	if b := d.GetInt("battery_pct", 0); b < 5 || b > 100 {
		t.Errorf("battery out of range: %d", b)
	}
	if d.GetInt("no_such", 0) != 0 || d.GetStr("no_such") != "" {
		t.Error("unknown vars should read as zero values")
	}
}

func TestMutateEnv(t *testing.T) {
	d := EmulatorLab(1)[0]
	if err := d.MutateEnv("manufacturer", 0, "samsung"); err != nil {
		t.Fatal(err)
	}
	if d.GetStr("manufacturer") != "samsung" {
		t.Error("string mutation lost")
	}
	if err := d.MutateEnv("api_level", 27, ""); err != nil {
		t.Fatal(err)
	}
	if d.GetInt("api_level", 0) != 27 {
		t.Error("int mutation lost")
	}
	if err := d.MutateEnv("bogus", 1, "x"); err == nil {
		t.Error("unknown var mutation should fail")
	}
	if err := d.MutateEnv("timezone_off", 5, ""); err != nil {
		t.Fatal(err)
	}
	if h := d.GetInt("time_hour", 0); h != 5 {
		t.Errorf("timezone mutation not applied to clock: hour = %d", h)
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := SamplePopulation("u", rng)
	c := d.Clone()
	if c.Fingerprint() != d.Fingerprint() {
		t.Error("clone differs")
	}
	c.MutateEnv("api_level", 99, "")
	if d.GetInt("api_level", 0) == 99 {
		t.Error("clone shares state")
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}

// Empirical check: sampled manufacturer frequencies approximate the
// declared weights.
func TestSamplingMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 20000
	count := map[string]int{}
	for i := 0; i < n; i++ {
		count[SamplePopulation("u", rng).GetStr("manufacturer")]++
	}
	spec := Spec("manufacturer")
	total := 0.0
	for _, v := range spec.StrVals {
		total += v.Weight
	}
	for _, v := range spec.StrVals {
		want := v.Weight / total
		got := float64(count[v.Val]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: freq %.3f, want %.3f", v.Val, got, want)
		}
	}
}
