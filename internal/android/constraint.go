package android

import (
	"fmt"
	"math/rand"
	"strings"
)

// CmpOp is a comparison operator in an inner trigger constraint
// ("f(env) op r", paper §6).
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota // x == v
	OpNe              // x != v
	OpLt              // x < v
	OpGt              // x > v
	OpIn              // lo <= x <= hi (the paper's "101 < C < 132" form)
)

// String returns the operator symbol.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpIn:
		return "in"
	}
	return "?"
}

// Constraint is one environment comparison. For string variables only
// OpEq/OpNe are meaningful and StrVal carries the operand; for integer
// variables Val carries it (Lo/Hi for OpIn).
type Constraint struct {
	Var    string
	Op     CmpOp
	Val    int64
	Lo, Hi int64
	StrVal string
}

// Eval evaluates the constraint against a device at a clock reading.
func (c Constraint) Eval(d *Device, clockMillis int64) bool {
	spec := Spec(c.Var)
	if spec == nil {
		return false
	}
	if spec.Kind == VarStr {
		got := d.GetStr(c.Var)
		switch c.Op {
		case OpEq:
			return got == c.StrVal
		case OpNe:
			return got != c.StrVal
		}
		return false
	}
	got := d.GetInt(c.Var, clockMillis)
	switch c.Op {
	case OpEq:
		return got == c.Val
	case OpNe:
		return got != c.Val
	case OpLt:
		return got < c.Val
	case OpGt:
		return got > c.Val
	case OpIn:
		return got >= c.Lo && got <= c.Hi
	}
	return false
}

// Prob returns the population probability that the constraint holds,
// computed from the catalog distribution (assuming dynamic variables
// are uniform over their range at a random read).
func (c Constraint) Prob() float64 {
	spec := Spec(c.Var)
	if spec == nil {
		return 0
	}
	if spec.Kind == VarStr {
		p := 0.0
		total := 0.0
		for _, v := range spec.StrVals {
			total += v.Weight
			if v.Val == c.StrVal {
				p += v.Weight
			}
		}
		if total == 0 {
			return 0
		}
		p /= total
		if c.Op == OpNe {
			return 1 - p
		}
		return p
	}
	sat := func(x int64) bool {
		switch c.Op {
		case OpEq:
			return x == c.Val
		case OpNe:
			return x != c.Val
		case OpLt:
			return x < c.Val
		case OpGt:
			return x > c.Val
		case OpIn:
			return x >= c.Lo && x <= c.Hi
		}
		return false
	}
	if len(spec.IntWeights) > 0 {
		p, total := 0.0, 0.0
		for _, v := range spec.IntWeights {
			total += v.Weight
			if sat(v.Val) {
				p += v.Weight
			}
		}
		return p / total
	}
	n := spec.Hi - spec.Lo + 1
	if n <= 0 {
		return 0
	}
	// Closed-form counting; ranges are small except mac/serial/gps,
	// where only OpIn/OpLt/OpGt make sense and count directly.
	var count int64
	switch c.Op {
	case OpEq:
		if c.Val >= spec.Lo && c.Val <= spec.Hi {
			count = 1
		}
	case OpNe:
		count = n
		if c.Val >= spec.Lo && c.Val <= spec.Hi {
			count--
		}
	case OpLt:
		count = clamp64(c.Val-spec.Lo, 0, n)
	case OpGt:
		count = clamp64(spec.Hi-c.Val, 0, n)
	case OpIn:
		lo, hi := max64(c.Lo, spec.Lo), min64(c.Hi, spec.Hi)
		count = clamp64(hi-lo+1, 0, n)
	}
	return float64(count) / float64(n)
}

// String renders the constraint.
func (c Constraint) String() string {
	spec := Spec(c.Var)
	if spec != nil && spec.Kind == VarStr {
		return fmt.Sprintf("%s %s %q", c.Var, c.Op, c.StrVal)
	}
	if c.Op == OpIn {
		return fmt.Sprintf("%d <= %s <= %d", c.Lo, c.Var, c.Hi)
	}
	return fmt.Sprintf("%s %s %d", c.Var, c.Op, c.Val)
}

// InnerCond is a quantifier-free formula over environment constraints:
// a conjunction (AnyOf=false) or disjunction (AnyOf=true) of
// constraints, matching the paper's "&&/|| concatenated" form.
type InnerCond struct {
	Constraints []Constraint
	AnyOf       bool
}

// Eval evaluates the formula on a device.
func (ic InnerCond) Eval(d *Device, clockMillis int64) bool {
	if len(ic.Constraints) == 0 {
		return true
	}
	for _, c := range ic.Constraints {
		ok := c.Eval(d, clockMillis)
		if ic.AnyOf && ok {
			return true
		}
		if !ic.AnyOf && !ok {
			return false
		}
	}
	return !ic.AnyOf
}

// Prob returns the satisfaction probability over the population,
// treating distinct variables as independent. Disjunctions are built
// over the same variable with disjoint equalities, so their
// probabilities add; conjunctions multiply.
func (ic InnerCond) Prob() float64 {
	if len(ic.Constraints) == 0 {
		return 1
	}
	if ic.AnyOf {
		p := 0.0
		for _, c := range ic.Constraints {
			p += c.Prob()
		}
		if p > 1 {
			p = 1
		}
		return p
	}
	p := 1.0
	for _, c := range ic.Constraints {
		p *= c.Prob()
	}
	return p
}

// String renders the formula.
func (ic InnerCond) String() string {
	if len(ic.Constraints) == 0 {
		return "true"
	}
	parts := make([]string, len(ic.Constraints))
	for i, c := range ic.Constraints {
		parts[i] = c.String()
	}
	sep := " && "
	if ic.AnyOf {
		sep = " || "
	}
	return strings.Join(parts, sep)
}

// BuildInnerCond constructs a random inner trigger condition whose
// population satisfaction probability lies in [pLo, pHi] — the
// customizable range the paper sets to [0.1, 0.2] (§7.3). The shape
// varies: an integer window over a high-cardinality variable, a
// disjunction of weighted string equalities, or a conjunction across
// two variables.
func BuildInnerCond(rng *rand.Rand, pLo, pHi float64) InnerCond {
	if pLo <= 0 || pHi <= pLo {
		panic("android: invalid probability range")
	}
	target := pLo + rng.Float64()*(pHi-pLo)
	for attempt := 0; attempt < 64; attempt++ {
		var ic InnerCond
		switch rng.Intn(3) {
		case 0:
			ic = windowCond(rng, target)
		case 1:
			ic = strDisjunction(rng, target)
		default:
			ic = conjunction(rng, target)
		}
		if p := ic.Prob(); p >= pLo && p <= pHi {
			return ic
		}
	}
	// Fallback: an ip_c window has fully controllable probability.
	w := int64(target * 256)
	if w < 1 {
		w = 1
	}
	lo := rng.Int63n(256 - w)
	return InnerCond{Constraints: []Constraint{{Var: "ip_c", Op: OpIn, Lo: lo, Hi: lo + w - 1}}}
}

// windowCond picks a uniform integer variable and a window of mass ≈ p.
func windowCond(rng *rand.Rand, p float64) InnerCond {
	// Only variables whose population/read distribution really is
	// uniform, so Prob() is exact (light_lux and battery follow
	// non-uniform dynamics and are excluded).
	uniformVars := []string{"ip_b", "ip_c", "ip_d", "mac_hash", "serial_hash", "patch_level", "time_hour", "gps_lat_e6", "gps_lon_e6"}
	name := uniformVars[rng.Intn(len(uniformVars))]
	spec := Spec(name)
	n := spec.Hi - spec.Lo + 1
	w := int64(p * float64(n))
	if w < 1 {
		w = 1
	}
	if w >= n {
		w = n - 1
	}
	lo := spec.Lo
	if n-w > 0 {
		lo += rng.Int63n(n - w)
	}
	return InnerCond{Constraints: []Constraint{{Var: name, Op: OpIn, Lo: lo, Hi: lo + w - 1}}}
}

// strDisjunction accumulates weighted string equalities up to mass ≈ p.
func strDisjunction(rng *rand.Rand, p float64) InnerCond {
	strVars := []string{"manufacturer", "brand", "board", "locale", "bootloader"}
	name := strVars[rng.Intn(len(strVars))]
	spec := Spec(name)
	vals := append([]WeightedStr(nil), spec.StrVals...)
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	total := 0.0
	for _, v := range vals {
		total += v.Weight
	}
	var ic InnerCond
	ic.AnyOf = true
	mass := 0.0
	for _, v := range vals {
		share := v.Weight / total
		if mass+share > p*1.25 {
			continue
		}
		ic.Constraints = append(ic.Constraints, Constraint{Var: name, Op: OpEq, StrVal: v.Val})
		mass += share
		if mass >= p*0.8 {
			break
		}
	}
	if len(ic.Constraints) == 0 {
		ic.Constraints = append(ic.Constraints, Constraint{Var: name, Op: OpEq, StrVal: vals[0].Val})
	}
	return ic
}

// conjunction combines a wide window with a second coarse predicate.
func conjunction(rng *rand.Rand, p float64) InnerCond {
	// First factor: a coarse platform predicate.
	first := Constraint{Var: "api_level", Op: OpGt, Val: 23}
	q1 := first.Prob()
	// Second factor: window with mass p/q1.
	rest := p / q1
	if rest > 0.9 {
		rest = 0.9
	}
	w := windowCond(rng, rest)
	return InnerCond{Constraints: []Constraint{first, w.Constraints[0]}}
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
