package vm

import (
	"fmt"

	"bombdroid/internal/dex"
)

// arenaChunk is the frame arena's chunk size in register slots. Bigger
// than any generated method's frame, small enough that a campaign VM
// retains only a few KB; frames larger than a chunk (possible only in
// hand-built or corrupted code) fall back to a one-off allocation.
const arenaChunk = 256

// frameArena hands out register files for qcall frames with
// stack-discipline lifetime: mark at frame entry, release at frame
// exit. Chunks are retained for the VM's lifetime, so the steady-state
// session loop allocates no frames at all. A VM is single-goroutine by
// contract, and frames nest strictly (calls, payload invokes, hook
// reentry all push/pop in LIFO order), so a pair of cursor ints is the
// whole bookkeeping.
type frameArena struct {
	chunks [][]dex.Value
	ci     int // current chunk
	off    int // next free slot in chunks[ci]
}

type arenaMark struct{ ci, off int }

func (a *frameArena) mark() arenaMark { return arenaMark{a.ci, a.off} }

func (a *frameArena) release(m arenaMark) { a.ci, a.off = m.ci, m.off }

// get returns a zeroed register window of length n. The reference
// free-list zeroes recycled frames too (the frame-reuse contract in
// frame_test.go), so a recycled window is indistinguishable from a
// fresh allocation.
func (a *frameArena) get(n int) []dex.Value {
	if n > arenaChunk {
		return make([]dex.Value, n)
	}
	for {
		if a.ci == len(a.chunks) {
			a.chunks = append(a.chunks, make([]dex.Value, arenaChunk))
		}
		if c := a.chunks[a.ci]; a.off+n <= len(c) {
			s := c[a.off : a.off+n : a.off+n]
			a.off += n
			for i := range s {
				s[i] = dex.Value{}
			}
			return s
		}
		a.ci++
		a.off = 0
	}
}

// qfault builds a bytecode fault. It lives out of line (with typeFault)
// so the dispatch loop carries no per-frame error closures — the
// reference interpreter allocates two closures per call frame for
// this; here faults cost nothing until one actually fires.
func qfault(qm *qmethod, pc int, format string, a ...any) error {
	return &RuntimeError{Method: qm.full, PC: pc, Reason: fmt.Sprintf(format, a...)}
}

// typeFault is the int-typecheck failure path.
func typeFault(qm *qmethod, pc int, k dex.ValueKind) error {
	return &RuntimeError{Method: qm.full, PC: pc,
		Reason: fmt.Sprintf("expected int, got %s", k)}
}

// fuseStep charges the second half of a fused pair exactly as a
// separate dispatch would have: one step, one tick, the budget check,
// then obs and trace under the second instruction's own pc and opcode.
// Ordering matters for byte-identical budget exhaustion: a pair split
// by MaxSteps must fail at the same step with the same ledger state as
// two plain dispatches.
func (v *VM) fuseStep(qm *qmethod, pc int, in *qinstr, inPayload string) error {
	v.steps++
	v.clock++
	if v.steps > v.opts.MaxSteps {
		return ErrBudget
	}
	if v.obsOps != nil {
		v.obsOps[in.op2]++
	}
	if v.trace != nil {
		v.recordTrace(qm.full, pc+1, in.op2, inPayload)
	}
	return nil
}

// fuseArith2 executes the arithmetic second half of a fused pair.
func fuseArith2(qm *qmethod, pc int, in *qinstr, regs []dex.Value) error {
	x := regs[in.b2]
	if x.Kind != dex.KindInt {
		return typeFault(qm, pc+1, x.Kind)
	}
	y := regs[in.c2]
	if y.Kind != dex.KindInt {
		return typeFault(qm, pc+1, y.Kind)
	}
	r, err := arith(in.op2, x.Int, y.Int)
	if err != nil {
		return qfault(qm, pc+1, "%v", err)
	}
	regs[in.a2] = dex.Int64(r)
	return nil
}

// qcond evaluates the conditional-branch second half of a fused pair,
// replicating each reference branch's operand checks at pc.
func qcond(qm *qmethod, pc int, op dex.Op, regs []dex.Value, a, b int32) (bool, error) {
	switch op {
	case dex.OpIfEq:
		return regs[a].Equal(regs[b]), nil
	case dex.OpIfNe:
		return !regs[a].Equal(regs[b]), nil
	case dex.OpIfEqz:
		return !regs[a].Truthy(), nil
	case dex.OpIfNez:
		return regs[a].Truthy(), nil
	}
	x := regs[a]
	if x.Kind != dex.KindInt {
		return false, typeFault(qm, pc, x.Kind)
	}
	y := regs[b]
	if y.Kind != dex.KindInt {
		return false, typeFault(qm, pc, y.Kind)
	}
	switch op {
	case dex.OpIfLt:
		return x.Int < y.Int, nil
	case dex.OpIfLe:
		return x.Int <= y.Int, nil
	case dex.OpIfGt:
		return x.Int > y.Int, nil
	default:
		return x.Int >= y.Int, nil
	}
}

// qcall executes one quickened frame. It is the steady-state
// counterpart of call() in exec.go and must stay observationally
// byte-identical to it — results, error strings, step counts, clock
// ticks, obs tallies, trace entries — a contract enforced by the
// differential harness. Registers come from the per-VM frame arena;
// register indices are used unchecked just like the reference loop, so
// out-of-range registers in unvalidated code fault via the contained
// panic in Invoke, with identical messages.
func (v *VM) qcall(u *unit, inPayload string, qm *qmethod, args []dex.Value, depth int) (dex.Value, error) {
	if depth > v.opts.MaxDepth {
		return dex.Nil(), ErrDepth
	}
	m := qm.m
	if len(args) != m.NumArgs {
		return dex.Nil(), &RuntimeError{Method: qm.full, PC: -1,
			Reason: fmt.Sprintf("arity mismatch: got %d args, want %d", len(args), m.NumArgs)}
	}
	if m.NumRegs < 0 || m.NumRegs > maxFrameRegs {
		return dex.Nil(), &RuntimeError{Method: qm.full, PC: -1,
			Reason: fmt.Sprintf("register count %d outside [0,%d]", m.NumRegs, maxFrameRegs)}
	}
	if v.opts.Profile {
		v.profile[qm.full]++
	}
	mk := v.arena.mark()
	defer v.arena.release(mk)
	regs := v.arena.get(m.NumRegs)
	copy(regs, args)

	pc := 0
	code := qm.code
	// Hoisted loop invariants: obsOps and trace are fixed at VM
	// construction, maxSteps at option resolution. Loading them once
	// keeps the per-instruction prologue to increments and registers
	// instead of repeated pointer chases through v (the obs-off and
	// obs-on paths both pay these loads every dispatch).
	obsOps := v.obsOps
	tracing := v.trace != nil
	maxSteps := v.opts.MaxSteps
	for {
		in := &code[pc]
		if in.op < qFirstReal {
			// qEnd (control fell off the end) or qTrap (a branch whose
			// encoded target was out of range; imm holds the original
			// target). Both reproduce the reference bounds-check fault
			// and, like it, charge no step.
			at := pc
			if in.op == qTrap {
				at = int(in.imm)
			}
			return dex.Nil(), qfault(qm, at, "control fell outside the method")
		}
		v.steps++
		v.clock++
		if v.steps > maxSteps {
			return dex.Nil(), ErrBudget
		}
		if obsOps != nil {
			obsOps[in.srcOp]++
		}
		if tracing {
			v.recordTrace(qm.full, pc, in.srcOp, inPayload)
		}
		switch in.op {
		case qNop:

		case qConstInt:
			regs[in.a] = dex.Int64(in.imm)

		case qConstStr:
			regs[in.a] = u.q.strs[in.imm]

		case qMove:
			regs[in.a] = regs[in.b]

		case qArith:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.c]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			r, err := arith(in.srcOp, x.Int, y.Int)
			if err != nil {
				return dex.Nil(), qfault(qm, pc, "%v", err)
			}
			regs[in.a] = dex.Int64(r)

		case qNeg:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			regs[in.a] = dex.Int64(-x.Int)

		case qNot:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			regs[in.a] = dex.Int64(^x.Int)

		case qAddK:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			regs[in.a] = dex.Int64(x.Int + in.imm)

		case qIfEq:
			if regs[in.a].Equal(regs[in.b]) {
				pc = int(in.c)
				continue
			}

		case qIfNe:
			if !regs[in.a].Equal(regs[in.b]) {
				pc = int(in.c)
				continue
			}

		case qIfLt:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.b]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			if x.Int < y.Int {
				pc = int(in.c)
				continue
			}

		case qIfLe:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.b]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			if x.Int <= y.Int {
				pc = int(in.c)
				continue
			}

		case qIfGt:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.b]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			if x.Int > y.Int {
				pc = int(in.c)
				continue
			}

		case qIfGe:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.b]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			if x.Int >= y.Int {
				pc = int(in.c)
				continue
			}

		case qIfEqz:
			if !regs[in.a].Truthy() {
				pc = int(in.c)
				continue
			}

		case qIfNez:
			if regs[in.a].Truthy() {
				pc = int(in.c)
				continue
			}

		case qGoto:
			pc = int(in.c)
			continue

		case qSwitch:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			t := &qm.tables[in.imm]
			lo, hi := 0, len(t.matches)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if t.matches[mid] < x.Int {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			tg := t.def
			if lo < len(t.matches) && t.matches[lo] == x.Int {
				tg = t.targets[lo]
			}
			pc = int(tg)
			continue

		case qSwitchMissing:
			x := regs[in.a]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			return dex.Nil(), qfault(qm, pc, "switch table %d missing", in.imm)

		case qInvoke:
			tg := &u.q.targets[in.imm]
			res, err := v.qcall(tg.u, inPayload, tg.qm, regs[in.b:int(in.b)+int(in.c)], depth+1)
			if err != nil {
				return dex.Nil(), err
			}
			if in.a != -1 {
				regs[in.a] = res
			}

		case qInvokeUnresolved:
			return dex.Nil(), qfault(qm, pc, "unresolved invoke %q", u.file.Str(in.imm))

		case qInvokeBadWindow, qCallAPIBadWindow:
			return dex.Nil(), qfault(qm, pc, "arg window [%d,%d) outside %d registers",
				in.b, int(in.b)+int(in.c), len(regs))

		case qCallAPI:
			res, err := v.callAPI(u, inPayload, qm.full, dex.API(in.imm), regs[in.b:int(in.b)+int(in.c)], depth)
			if err != nil {
				return dex.Nil(), err
			}
			if in.a != -1 {
				regs[in.a] = res
			}

		case qReturn:
			return regs[in.a], nil

		case qReturnVoid:
			return dex.Nil(), nil

		case qGetStatic:
			regs[in.a] = v.staticVals[in.imm]

		case qPutStatic:
			v.staticVals[in.imm] = regs[in.a]
			v.staticSet[in.imm] = true

		case qNewArr:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			if x.Int < 0 || x.Int > 1<<20 {
				return dex.Nil(), qfault(qm, pc, "bad array length %d", x.Int)
			}
			regs[in.a] = dex.NewArr(int(x.Int))

		case qALoad:
			arr := regs[in.b]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), qfault(qm, pc, "aload on %s", arr.Kind)
			}
			iv := regs[in.c]
			if iv.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, iv.Kind)
			}
			if iv.Int < 0 || int(iv.Int) >= len(*arr.Arr) {
				return dex.Nil(), qfault(qm, pc, "index %d out of bounds %d", iv.Int, len(*arr.Arr))
			}
			regs[in.a] = (*arr.Arr)[iv.Int]

		case qAStore:
			arr := regs[in.a]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), qfault(qm, pc, "astore on %s", arr.Kind)
			}
			iv := regs[in.b]
			if iv.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, iv.Kind)
			}
			if iv.Int < 0 || int(iv.Int) >= len(*arr.Arr) {
				return dex.Nil(), qfault(qm, pc, "index %d out of bounds %d", iv.Int, len(*arr.Arr))
			}
			(*arr.Arr)[iv.Int] = regs[in.c]

		case qArrLen:
			arr := regs[in.b]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), qfault(qm, pc, "arr-len on %s", arr.Kind)
			}
			regs[in.a] = dex.Int64(int64(len(*arr.Arr)))

		case qBadOp:
			return dex.Nil(), qfault(qm, pc, "invalid opcode %d", in.srcOp)

		case qFuseConstArith:
			regs[in.a] = dex.Int64(in.imm)
			if err := v.fuseStep(qm, pc, in, inPayload); err != nil {
				return dex.Nil(), err
			}
			if err := fuseArith2(qm, pc, in, regs); err != nil {
				return dex.Nil(), err
			}
			pc += 2
			continue

		case qFuseConstIf:
			regs[in.a] = dex.Int64(in.imm)
			if err := v.fuseStep(qm, pc, in, inPayload); err != nil {
				return dex.Nil(), err
			}
			taken, err := qcond(qm, pc+1, in.op2, regs, in.a2, in.b2)
			if err != nil {
				return dex.Nil(), err
			}
			if taken {
				pc = int(in.c2)
				continue
			}
			pc += 2
			continue

		case qFuseALoadArith:
			arr := regs[in.b]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), qfault(qm, pc, "aload on %s", arr.Kind)
			}
			iv := regs[in.c]
			if iv.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, iv.Kind)
			}
			if iv.Int < 0 || int(iv.Int) >= len(*arr.Arr) {
				return dex.Nil(), qfault(qm, pc, "index %d out of bounds %d", iv.Int, len(*arr.Arr))
			}
			regs[in.a] = (*arr.Arr)[iv.Int]
			if err := v.fuseStep(qm, pc, in, inPayload); err != nil {
				return dex.Nil(), err
			}
			if err := fuseArith2(qm, pc, in, regs); err != nil {
				return dex.Nil(), err
			}
			pc += 2
			continue

		case qFuseArithIf:
			x := regs[in.b]
			if x.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, x.Kind)
			}
			y := regs[in.c]
			if y.Kind != dex.KindInt {
				return dex.Nil(), typeFault(qm, pc, y.Kind)
			}
			r, err := arith(in.srcOp, x.Int, y.Int)
			if err != nil {
				return dex.Nil(), qfault(qm, pc, "%v", err)
			}
			regs[in.a] = dex.Int64(r)
			if err := v.fuseStep(qm, pc, in, inPayload); err != nil {
				return dex.Nil(), err
			}
			taken, err := qcond(qm, pc+1, in.op2, regs, in.a2, in.b2)
			if err != nil {
				return dex.Nil(), err
			}
			if taken {
				pc = int(in.c2)
				continue
			}
			pc += 2
			continue

		default:
			return dex.Nil(), qfault(qm, pc, "invalid opcode %d", in.srcOp)
		}
		pc++
	}
}
