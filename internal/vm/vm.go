// Package vm is the ART-stand-in runtime: a register-machine
// interpreter over dex bytecode with the Android framework surface the
// paper's apps, bombs, and attacks need — certificate and manifest
// access, environment and sensor reads, dynamic loading of decrypted
// payload dex blobs, API hooking (for instrumentation attacks), a
// Traceview-style method profiler, and a virtual clock that prices
// instructions and framework calls so the overhead evaluation has a
// realistic cost model.
package vm

import (
	"fmt"
	"math/rand"
	"sort"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/obs"
)

// TicksPerMilli converts virtual-clock ticks to milliseconds. One
// instruction costs one tick (~0.5 µs, interpreter-grade dispatch).
const TicksPerMilli = 2000

// Defaults for execution limits.
const (
	DefaultMaxSteps = 4_000_000
	DefaultMaxDepth = 128
)

// ResponseKind classifies a detection response (paper §4.2).
type ResponseKind uint8

// Response kinds.
const (
	RespCrash ResponseKind = iota
	RespFreeze
	RespLeak
	RespWarn
	RespReport
)

// String returns the kind name.
func (k ResponseKind) String() string {
	switch k {
	case RespCrash:
		return "crash"
	case RespFreeze:
		return "freeze"
	case RespLeak:
		return "leak"
	case RespWarn:
		return "warn"
	case RespReport:
		return "report"
	}
	return "?"
}

// ResponseEvent records one fired response.
type ResponseEvent struct {
	TimeMillis int64
	BombID     string // payload class that fired ("" outside payloads)
	Kind       ResponseKind
	Info       string
}

// APICall describes one framework call, as seen by hooks and
// observers.
type APICall struct {
	API  dex.API
	Args []dex.Value
	// InPayload names the executing payload class, or "" in app code.
	InPayload string
	Method    string // full name of the calling method
}

// Hook intercepts a framework call. Returning handled=true substitutes
// result (and err) for the real implementation — the vehicle for the
// paper's code-instrumentation attacks (forcing rand() to 0, faking
// getPublicKey, vtable hijacking).
type Hook func(call APICall) (result dex.Value, handled bool, err error)

// Observer watches every framework call without altering it (the
// debugger / call-tracing attacks).
type Observer func(call APICall)

// unit is one loaded dex file (the app, or a decrypted payload).
type unit struct {
	file    *dex.File
	methods map[string]*dex.Method
	// resolved is the precomputed invoke-target table: the unit's own
	// methods shadowing the app's (payload-local helpers win). Built
	// once at load time so the interpreter's OpInvoke path is a single
	// map hit instead of two lookups per call.
	resolved map[string]resolvedMethod
	// q is the quickened program (quicken.go), built after resolved.
	q *qprog
}

// resolvedMethod is one precomputed invoke target.
type resolvedMethod struct {
	m *dex.Method
	u *unit
}

func newUnit(f *dex.File) *unit {
	u := &unit{file: f, methods: make(map[string]*dex.Method)}
	for _, m := range f.Methods() {
		u.methods[m.FullName()] = m
	}
	return u
}

// buildResolved fills the unit's invoke-target table. app is the host
// application unit (the fallback namespace); for the app unit itself
// pass the unit as its own host.
func (u *unit) buildResolved(app *unit) {
	u.resolved = make(map[string]resolvedMethod, len(u.methods)+len(app.methods))
	for name, m := range app.methods {
		u.resolved[name] = resolvedMethod{m: m, u: app}
	}
	for name, m := range u.methods {
		u.resolved[name] = resolvedMethod{m: m, u: u}
	}
}

type delayedResponse struct {
	dueTicks int64
	kind     ResponseKind
	bombID   string
	info     string
}

// Options configures a VM.
type Options struct {
	MaxSteps int64 // per top-level Invoke; DefaultMaxSteps if 0
	MaxDepth int   // call depth; DefaultMaxDepth if 0
	Seed     int64 // runtime RNG seed (rand(), UI jitter)
	Profile  bool  // count method invocations (Traceview)
	// TraceDepth enables a ring buffer of the last N executed
	// instructions — the debugger's view when tracing back from a
	// suspicious symptom (paper §2.1, "Debugging").
	TraceDepth int
	// FailClosed enables graceful degradation of the bomb lifecycle:
	// a fault while decrypting or executing a payload (corrupted
	// ciphertext, undecodable blob, runtime fault inside the bomb) is
	// recorded in the fault ledger and the app continues with its
	// normal semantics instead of aborting. Deliberate detection
	// responses (crash bombs) are NOT suppressed — they are behaviour,
	// not faults. Chaos campaigns run with this set; the default
	// preserves the paper's semantics where a mutilated bomb corrupts
	// the app.
	FailClosed bool
	// BlobFault, when set, intercepts every sealed-payload read —
	// the storage-fault seam chaos injection uses to corrupt or
	// truncate ciphertexts after install (Android verifies signatures
	// at install time only; later flash corruption is the app's
	// problem).
	BlobFault func(blob int64, sealed []byte) []byte
	// Reference selects the retained reference interpreter (exec.go)
	// instead of the quickened one (qexec.go). The two are
	// observationally byte-identical — results, traces, fault ledgers,
	// obs opcode counts — a contract the differential harness enforces;
	// the reference path exists as that harness's oracle and costs one
	// branch per top-level Invoke otherwise.
	Reference bool
	// Obs, when set, collects VM execution metrics into the registry:
	// per-opcode execution counts (vm_op_total{op=...}), a per-Invoke
	// dispatch-step histogram (vm_invoke_steps, virtual ticks), and
	// response/fault counters. Opcode counts accumulate in a plain
	// per-VM array on the hot path and publish only on FlushObs, so
	// the instrumented interpreter loop stays allocation- and
	// atomic-free; with Obs nil the loop pays a single predictable
	// branch. All quantities are virtual-time, so campaign metrics are
	// deterministic at any worker count.
	Obs *obs.Registry
}

// FaultEvent is one fail-closed degradation the VM absorbed.
type FaultEvent struct {
	TimeMillis int64
	Blob       int64  // blob index for decrypt faults, -1 otherwise
	Bomb       string // payload class for execution faults ("" if unknown)
	Kind       string // "decrypt" or "payload-exec"
	Err        string
}

// TraceEntry is one executed instruction in the debugger's ring
// buffer.
type TraceEntry struct {
	Method    string
	PC        int
	Op        dex.Op
	InPayload string
}

// VM executes one installed app on one device.
type VM struct {
	app  *unit
	pkg  *apk.Package
	dev  *android.Device
	opts Options

	// Statics live in a slot array: staticIdx (shared with the image,
	// read-only) maps names assigned at load time; staticExtra (lazy,
	// per-VM) covers names first seen at runtime — SetStatic from
	// attack drivers, payload fields loaded by decryptLoad. staticSet
	// tracks which slots were ever written (or declared), standing in
	// for the old map's key-existence semantics.
	staticIdx   map[string]int32
	staticExtra map[string]int32
	staticVals  []dex.Value
	staticSet   []bool

	clock int64 // ticks
	rng   *rand.Rand

	hooks     map[dex.API]Hook
	observers []Observer

	profile map[string]int64

	payloads     map[int64]*payloadUnit // handle -> unit
	decryptCache map[int64]int64        // blob index -> handle
	nextHandle   int64
	outerFired   map[int64]bool // blob index -> authenticated decrypt seen

	bombChecks map[string]int64 // payload class -> detection checks run
	faults     []FaultEvent     // fail-closed degradations absorbed
	responses  []ResponseEvent
	reports    []string
	warnings   []string
	logs       []string
	leakKB     int64
	delayed    []delayedResponse

	steps int64 // consumed within current top-level Invoke

	// freeRegs is a free-list of frame register slices reused across
	// call() frames. A VM is single-goroutine by contract (campaigns
	// parallelize by building one VM per session), so no locking.
	freeRegs [][]dex.Value

	// arena hands out qcall frames (qexec.go); same single-goroutine
	// contract as freeRegs.
	arena frameArena

	trace     []TraceEntry // ring buffer when TraceDepth > 0
	traceNext int
	traceFull bool

	// Metrics plumbing (nil unless Options.Obs was set). obsOps is the
	// hot-path accumulator — a plain array indexed by opcode, flushed
	// to the pre-resolved registry counters in obsOpCtrs by FlushObs.
	obsOps         []int64
	obsOpCtrs      []*obs.Counter
	obsInvokes     *obs.Counter
	obsInvokesBuf  int64 // buffered vm_invokes_total, published by FlushObs
	obsInvokeSteps *obs.HistogramAccum
	obsResponses   []*obs.Counter // indexed by ResponseKind
	obsFaults      *obs.Counter
}

type payloadUnit struct {
	u          *unit
	entryClass string
}

// New installs a verified package on a device. Installation fails if
// the package does not verify (the system rejects it) or its dex does
// not decode and link.
func New(p *apk.Package, dev *android.Device, opts Options) (*VM, error) {
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("vm: install rejected: %w", err)
	}
	return NewUnverified(p, dev, opts)
}

// NewUnverified installs without signature verification — what a
// developer-mode attacker does with a locally modified build that was
// never re-signed. User-side installs go through New.
//
// Loading goes through the process-global image cache: decoding,
// validation, linking, and quickening run once per distinct dex blob;
// every further install of the same bytes (a campaign installing one
// app on hundreds of devices) shares the immutable image and copies
// only the mutable static slots.
func NewUnverified(p *apk.Package, dev *android.Device, opts Options) (*VM, error) {
	img, err := loadImage(p.Dex)
	if err != nil {
		return nil, err
	}
	return newVM(img, p, dev, opts), nil
}

// newVM assembles a VM over a prebuilt image. The fuzz harness calls
// it directly with unvalidated images; user code goes through New /
// NewUnverified.
func newVM(img *image, p *apk.Package, dev *android.Device, opts Options) *VM {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	v := &VM{
		app:          img.unit,
		pkg:          p,
		dev:          dev,
		opts:         opts,
		staticIdx:    img.staticIdx,
		staticVals:   append([]dex.Value(nil), img.staticInit...),
		staticSet:    append([]bool(nil), img.staticSet...),
		rng:          rand.New(rand.NewSource(opts.Seed)),
		hooks:        make(map[dex.API]Hook),
		profile:      make(map[string]int64),
		payloads:     make(map[int64]*payloadUnit),
		decryptCache: make(map[int64]int64),
		outerFired:   make(map[int64]bool),
		bombChecks:   make(map[string]int64),
	}
	if opts.TraceDepth > 0 {
		v.trace = make([]TraceEntry, opts.TraceDepth)
	}
	if opts.Obs != nil {
		v.obsOps = make([]int64, dex.NumOps)
		v.obsOpCtrs = make([]*obs.Counter, dex.NumOps)
		for op := 0; op < dex.NumOps; op++ {
			v.obsOpCtrs[op] = opts.Obs.Counter(obs.L("vm_op_total", "op", dex.Op(op).String()))
		}
		v.obsInvokes = opts.Obs.Counter("vm_invokes_total")
		v.obsInvokeSteps = opts.Obs.Histogram("vm_invoke_steps", obs.TickBuckets).Accum()
		v.obsResponses = make([]*obs.Counter, RespReport+1)
		for k := RespCrash; k <= RespReport; k++ {
			v.obsResponses[k] = opts.Obs.Counter(obs.L("vm_responses_total", "kind", k.String()))
		}
		v.obsFaults = opts.Obs.Counter("vm_faults_total")
	}
	return v
}

// FlushObs publishes the VM's locally accumulated metrics — opcode
// counts, the invoke counter, the dispatch-steps histogram — to the
// Options.Obs registry and clears the accumulators. Drivers call it
// at session end; it is a no-op without Obs. Everything published
// commutes (counter/bucket adds), so flush order across parallel
// sessions cannot change final totals.
func (v *VM) FlushObs() {
	if v.obsOps == nil {
		return
	}
	for op, n := range v.obsOps {
		if n != 0 {
			v.obsOpCtrs[op].Add(n)
			v.obsOps[op] = 0
		}
	}
	if v.obsInvokesBuf != 0 {
		v.obsInvokes.Add(v.obsInvokesBuf)
		v.obsInvokesBuf = 0
	}
	v.obsInvokeSteps.Flush()
}

// maxFreeFrames bounds the register free-list; deeper recursion just
// allocates as before.
const maxFreeFrames = DefaultMaxDepth

// getRegs returns a zeroed register file of length n, reusing a
// retired frame when one fits.
func (v *VM) getRegs(n int) []dex.Value {
	if k := len(v.freeRegs); k > 0 {
		s := v.freeRegs[k-1]
		v.freeRegs = v.freeRegs[:k-1]
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = dex.Value{}
			}
			return s
		}
	}
	return make([]dex.Value, n)
}

// putRegs retires a frame's register file for reuse.
func (v *VM) putRegs(s []dex.Value) {
	if len(v.freeRegs) < maxFreeFrames {
		v.freeRegs = append(v.freeRegs, s)
	}
}

// Trace returns the ring buffer contents, oldest first. Empty unless
// Options.TraceDepth was set.
func (v *VM) Trace() []TraceEntry {
	if v.trace == nil {
		return nil
	}
	if !v.traceFull {
		return append([]TraceEntry(nil), v.trace[:v.traceNext]...)
	}
	out := make([]TraceEntry, 0, len(v.trace))
	out = append(out, v.trace[v.traceNext:]...)
	out = append(out, v.trace[:v.traceNext]...)
	return out
}

// recordTrace appends to the ring buffer.
func (v *VM) recordTrace(method string, pc int, op dex.Op, inPayload string) {
	v.trace[v.traceNext] = TraceEntry{Method: method, PC: pc, Op: op, InPayload: inPayload}
	v.traceNext++
	if v.traceNext == len(v.trace) {
		v.traceNext = 0
		v.traceFull = true
	}
}

// Device returns the device the app runs on.
func (v *VM) Device() *android.Device { return v.dev }

// Package returns the installed package.
func (v *VM) Package() *apk.Package { return v.pkg }

// File returns the app's loaded dex file (the attacker reads it; user
// code does not).
func (v *VM) File() *dex.File { return v.app.file }

// NowMillis returns the virtual wall clock.
func (v *VM) NowMillis() int64 { return v.clock / TicksPerMilli }

// NowTicks returns the raw virtual clock.
func (v *VM) NowTicks() int64 { return v.clock }

// SetClockMillis positions the virtual clock (sessions start at
// arbitrary times of day).
func (v *VM) SetClockMillis(ms int64) { v.clock = ms * TicksPerMilli }

// Hook installs an API hook, replacing any previous hook for that API.
func (v *VM) Hook(api dex.API, h Hook) { v.hooks[api] = h }

// Unhook removes an API hook.
func (v *VM) Unhook(api dex.API) { delete(v.hooks, api) }

// Observe registers a call observer.
func (v *VM) Observe(o Observer) { v.observers = append(v.observers, o) }

// Handlers lists the app's event handler methods in deterministic
// order — the surface fuzzers and users drive.
func (v *VM) Handlers() []string {
	var out []string
	for name, m := range v.app.methods {
		if m.IsHandler() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// InitMethods lists FlagInit entry points in deterministic order.
func (v *VM) InitMethods() []string {
	var out []string
	for name, m := range v.app.methods {
		if m.Flags&dex.FlagInit != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// staticSlot looks up the slot for a static name: load-assigned slots
// first (shared, read-only), then this VM's runtime extensions.
func (v *VM) staticSlot(name string) (int32, bool) {
	if idx, ok := v.staticIdx[name]; ok {
		return idx, true
	}
	idx, ok := v.staticExtra[name]
	return idx, ok
}

// ensureStatic returns the slot for name, extending this VM's static
// table if the name was never seen at load time.
func (v *VM) ensureStatic(name string) int32 {
	if idx, ok := v.staticSlot(name); ok {
		return idx
	}
	idx := int32(len(v.staticVals))
	if v.staticExtra == nil {
		v.staticExtra = make(map[string]int32)
	}
	v.staticExtra[name] = idx
	v.staticVals = append(v.staticVals, dex.Value{})
	v.staticSet = append(v.staticSet, false)
	return idx
}

// Static reads a static field value ("Class.Field").
func (v *VM) Static(ref string) dex.Value {
	if idx, ok := v.staticSlot(ref); ok {
		return v.staticVals[idx]
	}
	return dex.Nil()
}

// SetStatic writes a static field (used by forced-execution attacks
// that prepare program state).
func (v *VM) SetStatic(ref string, val dex.Value) {
	idx := v.ensureStatic(ref)
	v.staticVals[idx] = val
	v.staticSet[idx] = true
}

// Profile returns a copy of the method invocation counts.
func (v *VM) Profile() map[string]int64 {
	out := make(map[string]int64, len(v.profile))
	for k, c := range v.profile {
		out[k] = c
	}
	return out
}

// ResetProfile clears invocation counts.
func (v *VM) ResetProfile() { v.profile = make(map[string]int64) }

// OuterTriggered returns the blob indices whose sealed payloads were
// successfully authenticated — exactly the bombs whose outer trigger
// condition was satisfied with the true constant (Table 4's metric).
func (v *VM) OuterTriggered() []int64 {
	out := make([]int64, 0, len(v.outerFired))
	for idx := range v.outerFired {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DetectionRuns returns, per payload class, how many times its
// repackaging check executed (both triggers satisfied — Figure 5's
// metric). On a non-repackaged app these checks run and stay silent.
func (v *VM) DetectionRuns() map[string]int64 {
	out := make(map[string]int64, len(v.bombChecks))
	for k, c := range v.bombChecks {
		out[k] = c
	}
	return out
}

// Faults returns the fail-closed degradations absorbed so far (empty
// unless Options.FailClosed is set).
func (v *VM) Faults() []FaultEvent {
	return append([]FaultEvent(nil), v.faults...)
}

// recordFault appends to the fault ledger.
func (v *VM) recordFault(blob int64, bomb, kind string, err error) {
	if v.obsFaults != nil {
		v.obsFaults.Inc()
	}
	v.faults = append(v.faults, FaultEvent{
		TimeMillis: v.NowMillis(), Blob: blob, Bomb: bomb, Kind: kind, Err: err.Error(),
	})
}

// Responses returns fired responses in order.
func (v *VM) Responses() []ResponseEvent {
	return append([]ResponseEvent(nil), v.responses...)
}

// PiracyReports returns the reports sent to the developer.
func (v *VM) PiracyReports() []string {
	return append([]string(nil), v.reports...)
}

// Warnings returns user-facing warnings shown so far.
func (v *VM) Warnings() []string {
	return append([]string(nil), v.warnings...)
}

// Logs returns the app log.
func (v *VM) Logs() []string { return append([]string(nil), v.logs...) }

// LeakKB returns accumulated leaked memory.
func (v *VM) LeakKB() int64 { return v.leakKB }

// AdvanceIdle advances the clock by idle milliseconds (between UI
// events) and fires any due delayed responses. A due crash response
// returns a CrashError.
func (v *VM) AdvanceIdle(ms int64) error {
	v.clock += ms * TicksPerMilli
	var remaining []delayedResponse
	var crash error
	for _, d := range v.delayed {
		if d.dueTicks > v.clock {
			remaining = append(remaining, d)
			continue
		}
		if err := v.fireResponse(d.kind, d.bombID, d.info); err != nil && crash == nil {
			crash = err
		}
	}
	v.delayed = remaining
	return crash
}

// PendingDelayed reports how many delayed responses are armed.
func (v *VM) PendingDelayed() int { return len(v.delayed) }

// fireResponse records a response and applies its effect.
func (v *VM) fireResponse(kind ResponseKind, bombID, info string) error {
	if v.obsResponses != nil && int(kind) < len(v.obsResponses) {
		v.obsResponses[kind].Inc()
	}
	v.responses = append(v.responses, ResponseEvent{
		TimeMillis: v.NowMillis(), BombID: bombID, Kind: kind, Info: info,
	})
	switch kind {
	case RespCrash:
		return &CrashError{BombID: bombID, Reason: "detection response"}
	case RespFreeze:
		v.clock += 30_000 * TicksPerMilli // half-minute UI freeze
	case RespLeak:
		v.leakKB += 4096
	case RespWarn:
		v.warnings = append(v.warnings, info)
	case RespReport:
		v.reports = append(v.reports, info)
	}
	return nil
}
