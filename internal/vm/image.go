package vm

import (
	"fmt"
	"sync"

	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
)

// image is the shareable, immutable product of loading one dex blob:
// the linked unit (with its quickened program) plus the static-field
// slot layout and initial values. Installing the same package bytes on
// many devices — the shape of every campaign — reuses one image; each
// VM copies only the mutable static value/set arrays. Everything else
// is read-only after buildImage returns, which is what makes
// cross-goroutine sharing safe (VMs never mutate their file, methods,
// resolved table, or quickened code).
type image struct {
	unit *unit
	// staticIdx maps "Class.Field" to its slot. Declared fields and
	// names referenced by Get/PutStatic all get load-time slots;
	// staticSet distinguishes declared (true) from merely referenced
	// (false), preserving the reference interpreter's map-key-existence
	// semantics (decryptLoad only applies a payload field's initializer
	// when the key did not already exist).
	staticIdx  map[string]int32
	staticInit []dex.Value
	staticSet  []bool
}

// slotFor returns the slot for name, assigning the next one on first
// use. Only valid during buildImage; afterwards the image is frozen.
func (img *image) slotFor(name string) int32 {
	if idx, ok := img.staticIdx[name]; ok {
		return idx
	}
	idx := int32(len(img.staticInit))
	img.staticIdx[name] = idx
	img.staticInit = append(img.staticInit, dex.Value{})
	img.staticSet = append(img.staticSet, false)
	return idx
}

// buildImage links and quickens a decoded file. It performs no
// validation — callers decide how much to trust the input (New runs
// dex.Validate first; the fuzz harness deliberately does not).
func buildImage(file *dex.File) *image {
	u := newUnit(file)
	u.buildResolved(u)
	img := &image{unit: u, staticIdx: make(map[string]int32)}
	// Declared fields first (later duplicate declarations overwrite,
	// matching the old map's semantics), then quickening assigns slots
	// to any additional names Get/PutStatic reference.
	for _, c := range file.Classes {
		for _, fd := range c.Fields {
			idx := img.slotFor(c.Name + "." + fd.Name)
			img.staticInit[idx] = fd.Init
			img.staticSet[idx] = true
		}
	}
	quickenUnit(u, img.slotFor)
	return img
}

// The process-global image cache, keyed by the sha256 of the dex
// bytes — the content itself, never a manifest or package digest, so a
// tampered package can't alias a stale image. Decode/validate/link/
// quicken then run once per distinct dex blob no matter how many
// devices install it; for a Table 3 campaign that converts the
// dominant per-session cost into a single cache hit.
const imageCacheCap = 64

type imageEntry struct {
	once sync.Once
	img  *image
	err  error
}

var (
	imageMu    sync.Mutex
	imageCache = map[string]*imageEntry{}
	imageLRU   []string // oldest first
)

// loadImage returns the cached image for dexBytes, building it on
// first use. Errors are cached too: a corrupt blob fails every install
// identically without re-decoding. The build runs outside the cache
// lock (per-entry sync.Once), so a slow build never blocks loads of
// other images.
func loadImage(dexBytes []byte) (*image, error) {
	key := apk.DigestHex(dexBytes)
	imageMu.Lock()
	e, ok := imageCache[key]
	if ok {
		// Touch: move key to the back of the eviction order.
		for i, k := range imageLRU {
			if k == key {
				imageLRU = append(append(imageLRU[:i:i], imageLRU[i+1:]...), key)
				break
			}
		}
	} else {
		e = &imageEntry{}
		imageCache[key] = e
		imageLRU = append(imageLRU, key)
		if len(imageLRU) > imageCacheCap {
			delete(imageCache, imageLRU[0])
			imageLRU = imageLRU[1:]
		}
	}
	imageMu.Unlock()
	e.once.Do(func() {
		file, err := dex.Decode(dexBytes)
		if err != nil {
			e.err = fmt.Errorf("vm: bad dex: %w", err)
			return
		}
		if err := dex.Validate(file); err != nil {
			e.err = fmt.Errorf("vm: dex validation: %w", err)
			return
		}
		e.img = buildImage(file)
	})
	return e.img, e.err
}
