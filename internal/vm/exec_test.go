package vm

import (
	"testing"

	"bombdroid/internal/dex"
)

func TestArithSemantics(t *testing.T) {
	// Go defines MinInt64 / -1 == MinInt64 (two's complement wrap),
	// so the interpreter inherits a total, defined semantics.
	const minInt = -1 << 63
	got, err := arith(dex.OpDiv, minInt, -1)
	if err != nil {
		t.Fatalf("defined overflow case errored: %v", err)
	}
	if got != minInt {
		t.Errorf("MinInt64 / -1 = %d", got)
	}
	if _, err := arith(dex.OpDiv, 1, 0); err == nil {
		t.Error("division by zero must fault")
	}
	if _, err := arith(dex.OpRem, 1, 0); err == nil {
		t.Error("remainder by zero must fault")
	}
	// Shift counts are masked, never undefined.
	if got, _ := arith(dex.OpShl, 1, 200); got != 1<<(200&63) {
		t.Errorf("shl mask wrong: %d", got)
	}
	if got, _ := arith(dex.OpShr, -8, 1); got != -4 {
		t.Errorf("arithmetic shr: %d", got)
	}
	if _, err := arith(dex.OpMove, 1, 2); err == nil {
		t.Error("non-arithmetic op must be rejected")
	}
	cases := map[dex.Op][3]int64{
		dex.OpAdd: {3, 4, 7},
		dex.OpSub: {3, 4, -1},
		dex.OpMul: {3, 4, 12},
		dex.OpDiv: {12, 4, 3},
		dex.OpRem: {13, 4, 1},
		dex.OpAnd: {0b1100, 0b1010, 0b1000},
		dex.OpOr:  {0b1100, 0b1010, 0b1110},
		dex.OpXor: {0b1100, 0b1010, 0b0110},
	}
	for op, c := range cases {
		if got, err := arith(op, c[0], c[1]); err != nil || got != c[2] {
			t.Errorf("%s(%d,%d) = %d, %v; want %d", op, c[0], c[1], got, err, c[2])
		}
	}
}
