package vm

import (
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
)

// fuzzVM assembles a VM around file WITHOUT install-time validation —
// the interpreter's worst case: executing code that was corrupted in
// memory after every check already passed. buildImage (and with it the
// quickening pass) runs on the raw file directly, so quickening itself
// is exercised as a total function over garbage input.
func fuzzVM(file *dex.File, opts Options) *VM {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 24
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return newVM(buildImage(file), &apk.Package{Name: "fuzz"}, android.EmulatorLab(1)[0], opts)
}

// runAllMethods drives every method with zero-value arguments; the
// assertion is simply that nothing panics — faults must surface as
// returned errors.
func runAllMethods(file *dex.File, opts Options) {
	v := fuzzVM(file, opts)
	for _, m := range file.Methods() {
		if m.NumArgs < 0 || m.NumArgs > 8 {
			continue
		}
		args := make([]dex.Value, m.NumArgs)
		_, _ = v.Invoke(m.FullName(), args...)
	}
}

// badFile builds a file with one method of raw (unvalidated) code.
func badFile(numRegs int, code []dex.Instr, tables ...dex.SwitchTable) *dex.File {
	f := dex.NewFile()
	c := &dex.Class{Name: "Bad"}
	c.AddMethod(&dex.Method{Name: "m", NumArgs: 0, NumRegs: numRegs, Code: code, Tables: tables})
	_ = f.AddClass(c)
	return f
}

// TestExecMalformedNoPanic pins the malformed-input classes the chaos
// model cares about: each must come back as a returned error, never a
// panic, even though none of these files would pass validation.
func TestExecMalformedNoPanic(t *testing.T) {
	cases := map[string]*dex.File{
		"register out of range": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 100, B: -1, C: -1, Imm: 7},
			{Op: dex.OpReturnVoid},
		}),
		"negative register": badFile(2, []dex.Instr{
			{Op: dex.OpMove, A: -5, B: 0, C: -1},
			{Op: dex.OpReturnVoid},
		}),
		"branch target out of range": badFile(1, []dex.Instr{
			{Op: dex.OpGoto, A: -1, B: -1, C: 999},
		}),
		"negative branch target": badFile(1, []dex.Instr{
			{Op: dex.OpGoto, A: -1, B: -1, C: -7},
		}),
		"arg window outside frame": badFile(2, []dex.Instr{
			{Op: dex.OpCallAPI, A: -1, B: 1, C: 40, Imm: int64(dex.APILog)},
			{Op: dex.OpReturnVoid},
		}),
		"huge register count": badFile(1<<30, []dex.Instr{
			{Op: dex.OpReturnVoid},
		}),
		"missing switch table": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 3},
			{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 9},
			{Op: dex.OpReturnVoid},
		}),
		"switch target out of range": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 3},
			{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 0},
			{Op: dex.OpReturnVoid},
		}, dex.SwitchTable{Cases: []dex.SwitchCase{{Match: 3, Target: 500}}, Default: -2}),
		"truncated method body": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 1},
			// control falls off the end: no return instruction
		}),
	}
	for name, file := range cases {
		v := fuzzVM(file, Options{})
		_, err := v.Invoke("Bad.m")
		if err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		if !IsRuntimeFault(err) {
			t.Errorf("%s: error %v is not a RuntimeError", name, err)
		}
	}
}

// FuzzExec: whatever decodes must execute without panicking, with or
// without validation having been run first. Faults in the bytecode
// surface as errors; the fuzzer asserts totality, not semantics.
func FuzzExec(f *testing.F) {
	f.Add(dex.Encode(dex.NewFile()))
	good := dex.NewFile()
	c := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "x", Init: dex.Int64(1)}}}
	c.AddMethod(&dex.Method{Name: "run", NumArgs: 0, NumRegs: 4, Code: []dex.Instr{
		{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 41},
		{Op: dex.OpAddK, A: 1, B: 0, C: -1, Imm: 1},
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},
	}})
	_ = good.AddClass(c)
	f.Add(dex.Encode(good))
	f.Add(dex.Encode(badFile(1, []dex.Instr{
		{Op: dex.OpConstInt, A: 100, B: -1, C: -1, Imm: 7},
		{Op: dex.OpReturnVoid},
	})))
	f.Add(dex.Encode(badFile(2, []dex.Instr{
		{Op: dex.OpCallAPI, A: 0, B: 0, C: 2, Imm: int64(dex.APIDecryptLoad)},
		{Op: dex.OpReturnVoid},
	})))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := dex.Decode(data)
		if err != nil {
			return
		}
		// Deliberately skip dex.Validate: exec must be total anyway.
		runAllMethods(file, Options{})
		runAllMethods(file, Options{FailClosed: true})
	})
}
