package vm

import (
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/obs"
)

// installObsApp is installApp with a metrics registry attached.
func installObsApp(t *testing.T, f *dex.File, reg *obs.Registry) *VM {
	t.Helper()
	devKey, err := apk.NewKeyPair(101)
	if err != nil {
		t.Fatal(err)
	}
	patched := patchPayloadKey(t, f, devKey.PublicKeyHex())
	pkg, err := apk.Sign(apk.Build("test.app", patched, apk.Resources{
		Strings: []string{"Tap to start"}, Author: "dev", Icon: []byte{1},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(pkg, android.EmulatorLab(1)[0], Options{Seed: 7, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestObsOpcodeCountsAndInvokeHistogram: the instrumented VM counts
// executed opcodes exactly and publishes them only on FlushObs, while
// the dispatch-step histogram records one observation per top-level
// Invoke.
func TestObsOpcodeCountsAndInvokeHistogram(t *testing.T) {
	f, _ := buildTestApp(t)
	reg := obs.NewRegistry()
	v := installObsApp(t, f, reg)

	// App.add executes exactly 2 instructions: OpAdd, OpReturn.
	mustInvoke(t, v, "App.add", dex.Int64(2), dex.Int64(3))

	addCtr := reg.Counter(obs.L("vm_op_total", "op", dex.OpAdd.String()))
	if addCtr.Value() != 0 {
		t.Fatal("opcode counts published before FlushObs")
	}
	v.FlushObs()
	if got := addCtr.Value(); got != 1 {
		t.Fatalf("add count = %d, want 1", got)
	}
	retCtr := reg.Counter(obs.L("vm_op_total", "op", dex.OpReturn.String()))
	if got := retCtr.Value(); got != 1 {
		t.Fatalf("return count = %d, want 1", got)
	}

	if got := reg.Counter("vm_invokes_total").Value(); got != 1 {
		t.Fatalf("vm_invokes_total = %d, want 1", got)
	}
	h := reg.Histogram("vm_invoke_steps", obs.TickBuckets)
	if h.Count() != 1 || h.Sum() != 2 {
		t.Fatalf("invoke-steps histogram count/sum = %d/%d, want 1/2", h.Count(), h.Sum())
	}

	// A second flush publishes nothing new.
	v.FlushObs()
	if got := addCtr.Value(); got != 1 {
		t.Fatalf("re-flush double-counted: %d", got)
	}
}

// TestObsResponseCounter: detection responses tally per kind.
func TestObsResponseCounter(t *testing.T) {
	f, _ := buildTestApp(t)
	reg := obs.NewRegistry()
	v := installObsApp(t, f, reg)
	// forceDecrypt detonates the crash bomb on a genuine app? No — on
	// the genuine app the payload sees the developer key and stays
	// silent. Fire a response directly through the delayed path.
	if err := v.fireResponse(RespWarn, "Bomb0", "w"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.L("vm_responses_total", "kind", "warn")).Value(); got != 1 {
		t.Fatalf("warn responses = %d, want 1", got)
	}
}

// TestObsOffLeavesNoTrace: without Options.Obs the VM allocates no
// metrics state, and FlushObs is a harmless no-op.
func TestObsOffLeavesNoTrace(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	if v.obsOps != nil || v.obsInvokes != nil {
		t.Fatal("metrics state allocated without Options.Obs")
	}
	v.FlushObs()
	mustInvoke(t, v, "App.add", dex.Int64(1), dex.Int64(2))
}

// TestObsDeterministicAcrossRuns: two identical sessions produce
// byte-identical deterministic snapshots — the per-VM property behind
// the campaign-level workers-1-vs-8 guarantee.
func TestObsDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		f, _ := buildTestApp(t)
		reg := obs.NewRegistry()
		v := installObsApp(t, f, reg)
		mustInvoke(t, v, "App.sum3")
		mustInvoke(t, v, "App.classify", dex.Int64(2))
		mustInvoke(t, v, "App.callAdd")
		v.FlushObs()
		b, err := reg.SnapshotDeterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("VM metrics not deterministic:\n%s\n---\n%s", a, b)
	}
}
