package vm

import (
	"errors"
	"fmt"
)

// Sentinel errors for abnormal termination.
var (
	// ErrBudget reports that the per-invocation step budget was
	// exhausted (runaway loop or a freeze response).
	ErrBudget = errors.New("vm: step budget exhausted")
	// ErrDepth reports call-stack overflow.
	ErrDepth = errors.New("vm: call depth exceeded")
)

// CrashError is an app abort: a deliberate crash response, or the
// fallout of corrupted code (the fate of apps whose woven bombs were
// deleted, and of forced execution into sealed payloads).
type CrashError struct {
	BombID string // payload that crashed the app ("" when not a bomb)
	Reason string
}

// Error implements error.
func (e *CrashError) Error() string {
	if e.BombID != "" {
		return fmt.Sprintf("vm: app crashed (bomb %s): %s", e.BombID, e.Reason)
	}
	return "vm: app crashed: " + e.Reason
}

// IsCrash reports whether err is (or wraps) a CrashError.
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// RuntimeError is a bytecode-level fault: type confusion, division by
// zero, bad array index, unresolved invoke — how corruption from code
// deletion manifests (paper §3.4: "instability, visualization errors,
// incorrect computation, or crashes").
type RuntimeError struct {
	Method string
	PC     int
	Reason string
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime fault in %s at pc %d: %s", e.Method, e.PC, e.Reason)
}

// IsRuntimeFault reports whether err is (or wraps) a RuntimeError.
func IsRuntimeFault(err error) bool {
	var re *RuntimeError
	return errors.As(err, &re)
}

// DecryptError reports that a sealed bomb payload failed to
// authenticate: either an attack forced execution into the bomb
// without the true trigger value, or deleted/rewritten code corrupted
// the key material. The app dies either way.
type DecryptError struct {
	Blob int64
}

// Error implements error.
func (e *DecryptError) Error() string {
	return fmt.Sprintf("vm: payload blob %d failed to decrypt (app corrupted)", e.Blob)
}

// IsDecryptFailure reports whether err is (or wraps) a DecryptError.
func IsDecryptFailure(err error) bool {
	var de *DecryptError
	return errors.As(err, &de)
}

// AbnormalExit reports whether err represents any user-visible app
// failure (crash, fault, hang) as opposed to clean termination.
func AbnormalExit(err error) bool {
	return err != nil && (IsCrash(err) || IsRuntimeFault(err) || IsDecryptFailure(err) ||
		errors.Is(err, ErrBudget) || errors.Is(err, ErrDepth))
}
