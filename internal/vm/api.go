package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// maxLogLines bounds the retained app log.
const maxLogLines = 16_384

// callAPI dispatches one framework/intrinsic call. Hooks run first
// (instrumentation attacks substitute results); observers always see
// the call. caller is the full name of the calling method — a
// precomputed string rather than a *dex.Method so the quickened path
// never formats a name per call.
func (v *VM) callAPI(u *unit, inPayload string, caller string, api dex.API, args []dex.Value, depth int) (dex.Value, error) {
	v.clock += api.Cost()
	call := APICall{API: api, Args: args, InPayload: inPayload, Method: caller}
	for _, o := range v.observers {
		o(call)
	}
	if h, ok := v.hooks[api]; ok {
		if res, handled, err := h(call); handled {
			return res, err
		}
	}
	return v.dispatch(u, inPayload, api, args, depth)
}

func (v *VM) dispatch(u *unit, inPayload string, api dex.API, args []dex.Value, depth int) (dex.Value, error) {
	bad := func(format string, a ...any) (dex.Value, error) {
		return dex.Nil(), &RuntimeError{Method: api.Name(), PC: -1, Reason: fmt.Sprintf(format, a...)}
	}
	str := func(i int) (string, bool) {
		if i >= len(args) || args[i].Kind != dex.KindStr {
			return "", false
		}
		return args[i].Str, true
	}
	num := func(i int) (int64, bool) {
		if i >= len(args) || args[i].Kind != dex.KindInt {
			return 0, false
		}
		return args[i].Int, true
	}

	switch api {
	case dex.APIGetPublicKey:
		if inPayload != "" {
			v.bombChecks[inPayload]++
		}
		return dex.Str(v.pkg.PublicKeyHex()), nil

	case dex.APIGetManifestDigest:
		name, ok := str(0)
		if !ok {
			return bad("getManifestDigest wants a string")
		}
		if inPayload != "" {
			v.bombChecks[inPayload]++
		}
		return dex.Str(v.pkg.Manifest.DigestOf(name)), nil

	case dex.APIGetResourceString:
		idx, ok := num(0)
		if !ok {
			return bad("getResourceString wants an int")
		}
		if idx < 0 || int(idx) >= len(v.pkg.Res.Strings) {
			return dex.Str(""), nil
		}
		return dex.Str(v.pkg.Res.Strings[idx]), nil

	case dex.APIStegoExtract:
		s, ok := str(0)
		if !ok {
			return bad("stegoExtract wants a string")
		}
		return dex.Str(apk.ExtractFromString(s)), nil

	case dex.APICodeDigest:
		name, ok := str(0)
		if !ok {
			return bad("codeDigest wants a string")
		}
		if inPayload != "" {
			v.bombChecks[inPayload]++
		}
		return dex.Str(v.classDigest(name)), nil

	case dex.APIGetEnvStr:
		name, ok := str(0)
		if !ok {
			return bad("getEnvString wants a string")
		}
		return dex.Str(v.dev.GetStr(name)), nil

	case dex.APIGetEnvInt:
		name, ok := str(0)
		if !ok {
			return bad("getEnvInt wants a string")
		}
		return dex.Int64(v.dev.GetInt(name, v.NowMillis())), nil

	case dex.APITimeMillis:
		return dex.Int64(v.NowMillis()), nil

	case dex.APIGPSLatE6:
		return dex.Int64(v.dev.GetInt("gps_lat_e6", v.NowMillis())), nil

	case dex.APIGPSLonE6:
		return dex.Int64(v.dev.GetInt("gps_lon_e6", v.NowMillis())), nil

	case dex.APISensorLight:
		return dex.Int64(v.dev.GetInt("light_lux", v.NowMillis())), nil

	case dex.APISensorTempC:
		return dex.Int64(v.dev.GetInt("temp_c", v.NowMillis())), nil

	case dex.APIRandInt:
		bound, ok := num(0)
		if !ok || bound <= 0 {
			return dex.Int64(0), nil
		}
		return dex.Int64(v.rng.Int63n(bound)), nil

	case dex.APIRandPercent:
		return dex.Int64(v.rng.Int63n(10_000)), nil

	case dex.APILog:
		s, _ := str(0)
		if len(v.logs) < maxLogLines {
			v.logs = append(v.logs, s)
		}
		return dex.Nil(), nil

	case dex.APIUIDraw, dex.APIPlaySound, dex.APIVibrate:
		// Cost-bearing framework work with no observable state.
		return dex.Nil(), nil

	case dex.APIStrEquals, dex.APIStrStartsWith, dex.APIStrEndsWith, dex.APIStrContains:
		a, ok1 := str(0)
		b, ok2 := str(1)
		if !ok1 || !ok2 {
			return bad("%s wants two strings", api.Name())
		}
		var r bool
		switch api {
		case dex.APIStrEquals:
			r = a == b
		case dex.APIStrStartsWith:
			r = strings.HasPrefix(a, b)
		case dex.APIStrEndsWith:
			r = strings.HasSuffix(a, b)
		default:
			r = strings.Contains(a, b)
		}
		return dex.Bool(r), nil

	case dex.APIStrConcat:
		a, ok1 := str(0)
		b, ok2 := str(1)
		if !ok1 || !ok2 {
			return bad("concat wants two strings")
		}
		return dex.Str(a + b), nil

	case dex.APIStrLen:
		a, ok := str(0)
		if !ok {
			return bad("length wants a string")
		}
		return dex.Int64(int64(len(a))), nil

	case dex.APIStrSubstr:
		a, ok := str(0)
		lo, ok1 := num(1)
		hi, ok2 := num(2)
		if !ok || !ok1 || !ok2 {
			return bad("substring wants (str, int, int)")
		}
		if lo < 0 || hi > int64(len(a)) || lo > hi {
			return bad("substring bounds [%d,%d) on %d bytes", lo, hi, len(a))
		}
		return dex.Str(a[lo:hi]), nil

	case dex.APIStrCharAt:
		a, ok := str(0)
		i, ok1 := num(1)
		if !ok || !ok1 {
			return bad("charAt wants (str, int)")
		}
		if i < 0 || int(i) >= len(a) {
			return bad("charAt index %d on %d bytes", i, len(a))
		}
		return dex.Int64(int64(a[i])), nil

	case dex.APIStrFromInt:
		x, ok := num(0)
		if !ok {
			return bad("toString wants an int")
		}
		return dex.Str(strconv.FormatInt(x, 10)), nil

	case dex.APIStrToInt:
		a, ok := str(0)
		if !ok {
			return bad("parseInt wants a string")
		}
		x, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
		if err != nil {
			return dex.Int64(0), nil
		}
		return dex.Int64(x), nil

	case dex.APIStrHashCode:
		a, ok := str(0)
		if !ok {
			return bad("hashCode wants a string")
		}
		var h int32
		for i := 0; i < len(a); i++ {
			h = 31*h + int32(a[i])
		}
		return dex.Int64(int64(h)), nil

	case dex.APISHA1Hex:
		if len(args) != 2 {
			return bad("sha1Hex wants (value, salt)")
		}
		salt, ok := str(1)
		if !ok {
			return bad("sha1Hex salt must be a string")
		}
		return dex.Str(lockbox.HashHex(args[0], salt)), nil

	case dex.APIDecryptLoad:
		return v.decryptLoad(inPayload, args)

	case dex.APIInvokePayload:
		return v.invokePayload(inPayload, args, depth)

	case dex.APIReportPiracy:
		info, _ := str(0)
		v.reports = append(v.reports, info)
		v.responses = append(v.responses, ResponseEvent{
			TimeMillis: v.NowMillis(), BombID: inPayload, Kind: RespReport, Info: info,
		})
		return dex.Nil(), nil

	case dex.APIWarnUser:
		msg, _ := str(0)
		v.warnings = append(v.warnings, msg)
		v.responses = append(v.responses, ResponseEvent{
			TimeMillis: v.NowMillis(), BombID: inPayload, Kind: RespWarn, Info: msg,
		})
		return dex.Nil(), nil

	case dex.APICrash:
		v.responses = append(v.responses, ResponseEvent{
			TimeMillis: v.NowMillis(), BombID: inPayload, Kind: RespCrash,
		})
		return dex.Nil(), &CrashError{BombID: inPayload, Reason: "detection response"}

	case dex.APILeakMemory:
		kb, _ := num(0)
		if kb < 0 {
			kb = 0
		}
		v.leakKB += kb
		v.responses = append(v.responses, ResponseEvent{
			TimeMillis: v.NowMillis(), BombID: inPayload, Kind: RespLeak,
			Info: strconv.FormatInt(kb, 10) + "KB",
		})
		return dex.Nil(), nil

	case dex.APISpinLoop:
		ms, _ := num(0)
		if ms < 0 {
			ms = 0
		}
		v.clock += ms * TicksPerMilli
		v.responses = append(v.responses, ResponseEvent{
			TimeMillis: v.NowMillis(), BombID: inPayload, Kind: RespFreeze,
			Info: strconv.FormatInt(ms, 10) + "ms",
		})
		return dex.Nil(), nil

	case dex.APIDelayBomb:
		ms, ok := num(0)
		kind, ok2 := num(1)
		if !ok || !ok2 {
			return bad("delayBomb wants (ms, kind)")
		}
		if kind < 0 || kind > int64(RespReport) {
			return bad("delayBomb kind %d out of range", kind)
		}
		v.delayed = append(v.delayed, delayedResponse{
			dueTicks: v.clock + ms*TicksPerMilli,
			kind:     ResponseKind(kind),
			bombID:   inPayload,
		})
		return dex.Nil(), nil

	case dex.APIReflectCall:
		name, ok := str(0)
		if !ok {
			return bad("reflectCall wants a name string")
		}
		target := dex.APIByName(name)
		if !target.Valid() || target == dex.APIReflectCall {
			return bad("reflectCall: unknown target %q", name)
		}
		// Dispatch through callAPI so hooks on the *target* API apply:
		// reflection hides the name from text search, not from runtime
		// interception (paper §2.1).
		return v.callAPI(u, inPayload, "java.lang.reflect", target, args[1:], depth)

	case dex.APIDeobfuscate:
		s, ok := str(0)
		key, ok2 := num(1)
		if !ok || !ok2 {
			return bad("deobfuscate wants (hexstr, key)")
		}
		raw, err := hex.DecodeString(s)
		if err != nil {
			return bad("deobfuscate: %v", err)
		}
		for i := range raw {
			raw[i] ^= byte(key)
		}
		return dex.Str(string(raw)), nil
	}
	return bad("unimplemented API %s", api.Name())
}

// classDigest hashes loaded code (disassembly form) — the basis of
// code snippet scanning. It sees the *runtime* state: an
// attacker-modified method changes the digest. The name may be a
// class ("App") or a single method ("App.render").
func (v *VM) classDigest(name string) string {
	if m := v.app.methods[name]; m != nil {
		return CodeDigest(v.app.file, m)
	}
	c := v.app.file.Class(name)
	if c == nil {
		return ""
	}
	h := sha256.New()
	for _, m := range c.Methods {
		h.Write([]byte(dex.DisassembleMethod(v.app.file, m)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CodeDigest computes the digest APICodeDigest reports for a single
// method — exported so the protector can precompute expected values
// for snippet-scanning bombs.
func CodeDigest(f *dex.File, m *dex.Method) string {
	sum := sha256.Sum256([]byte(dex.DisassembleMethod(f, m)))
	return hex.EncodeToString(sum[:])
}

// decryptLoad implements APIDecryptLoad: authenticate, decode, and
// validate a sealed payload, install its classes, return a handle.
// Failure is a DecryptError — app corruption from the user's point of
// view — unless the VM runs FailClosed, in which case the fault is
// ledgered and a nil handle returned so the app keeps its normal
// semantics (the bomb simply never opens).
func (v *VM) decryptLoad(inPayload string, args []dex.Value) (dex.Value, error) {
	if len(args) != 3 || args[0].Kind != dex.KindInt || args[2].Kind != dex.KindStr {
		return dex.Nil(), &RuntimeError{Method: "decryptLoad", PC: -1, Reason: "wants (blobIdx, value, salt)"}
	}
	blobIdx := args[0].Int
	if blobIdx < 0 || blobIdx >= int64(len(v.app.file.Blobs)) {
		return dex.Nil(), &RuntimeError{Method: "decryptLoad", PC: -1, Reason: fmt.Sprintf("no blob %d", blobIdx)}
	}
	if h, ok := v.decryptCache[blobIdx]; ok {
		// One-time decryption effort, cached thereafter (paper §8.4,
		// reason 3 for the low overhead).
		return dex.Handle(h), nil
	}
	failClosed := func(err error) (dex.Value, error) {
		if v.opts.FailClosed {
			v.recordFault(blobIdx, inPayload, "decrypt", err)
			return dex.Nil(), nil
		}
		return dex.Nil(), &DecryptError{Blob: blobIdx}
	}
	sealed := v.app.file.Blobs[blobIdx]
	if v.opts.BlobFault != nil {
		sealed = v.opts.BlobFault(blobIdx, sealed)
	}
	plain, err := lockbox.OpenValue(sealed, args[1], args[2].Str)
	if err != nil {
		return failClosed(err)
	}
	file, err := dex.Decode(plain)
	if err != nil {
		return failClosed(err)
	}
	// An authenticated payload is still untrusted input to the
	// interpreter until it passes the same structural validation the
	// installer applies to app dex.
	if err := dex.Validate(file); err != nil {
		return failClosed(err)
	}
	pu := newUnit(file)
	pu.buildResolved(v.app)
	entry := ""
	for _, c := range file.Classes {
		if c.Method("run") != nil {
			entry = c.Name
		}
		for _, fd := range c.Fields {
			// A payload field initializer applies only if the name was
			// never declared or written before — the staticSet bit is
			// the slot table's stand-in for map-key existence.
			idx := v.ensureStatic(c.Name + "." + fd.Name)
			if !v.staticSet[idx] {
				v.staticVals[idx] = fd.Init
				v.staticSet[idx] = true
			}
		}
	}
	if entry == "" {
		return failClosed(fmt.Errorf("payload has no entry class"))
	}
	// Quicken the payload against this VM's static table; slots the
	// payload references beyond the shared image extend staticExtra.
	quickenUnit(pu, v.ensureStatic)
	v.nextHandle++
	h := v.nextHandle
	v.payloads[h] = &payloadUnit{u: pu, entryClass: entry}
	v.decryptCache[blobIdx] = h
	v.outerFired[blobIdx] = true
	return dex.Handle(h), nil
}

// invokePayload implements APIInvokePayload. Under FailClosed a nil
// handle (a decrypt that degraded gracefully upstream) is a silent
// no-op, and a fault inside the payload is ledgered rather than
// aborting the app — but a deliberate crash response still crashes:
// that is bomb behaviour, not a fault.
func (v *VM) invokePayload(inPayload string, args []dex.Value, depth int) (dex.Value, error) {
	if len(args) < 1 || args[0].Kind != dex.KindHandle {
		if v.opts.FailClosed && len(args) >= 1 && args[0].Kind == dex.KindNil {
			return dex.Nil(), nil // degraded decrypt upstream; skip the bomb
		}
		return dex.Nil(), &RuntimeError{Method: "invokePayload", PC: -1, Reason: "wants a payload handle"}
	}
	pu, ok := v.payloads[args[0].Int]
	if !ok {
		return dex.Nil(), &RuntimeError{Method: "invokePayload", PC: -1, Reason: fmt.Sprintf("stale handle %d", args[0].Int)}
	}
	entryName := pu.entryClass + ".run"
	var res dex.Value
	var err error
	if v.opts.Reference {
		entry := pu.u.methods[entryName]
		if entry == nil {
			return dex.Nil(), &RuntimeError{Method: "invokePayload", PC: -1, Reason: "payload has no entry"}
		}
		res, err = v.call(pu.u, pu.entryClass, entry, args[1:], depth+1)
	} else {
		entry := pu.u.q.byName[entryName]
		if entry == nil {
			return dex.Nil(), &RuntimeError{Method: "invokePayload", PC: -1, Reason: "payload has no entry"}
		}
		res, err = v.qcall(pu.u, pu.entryClass, entry, args[1:], depth+1)
	}
	if err != nil && v.opts.FailClosed && !IsCrash(err) {
		v.recordFault(-1, pu.entryClass, "payload-exec", err)
		return dex.Nil(), nil
	}
	return res, err
}
