package vm

import (
	"fmt"

	"bombdroid/internal/dex"
)

// Invoke runs a method of the installed app by full name, resetting
// the step budget. It is the entry point drivers (fuzzers, user
// sessions, attacks) use to dispatch events.
//
// Invoke never panics: malformed bytecode that slipped past
// validation (or was corrupted in memory after it) surfaces as a
// RuntimeError, the same fate as any other bytecode-level fault.
func (v *VM) Invoke(full string, args ...dex.Value) (res dex.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = dex.Nil()
			err = &RuntimeError{Method: full, PC: -1,
				Reason: fmt.Sprintf("contained panic: %v", r)}
		}
	}()
	v.steps = 0
	if v.opts.Reference {
		m, ok := v.app.methods[full]
		if !ok {
			return dex.Nil(), fmt.Errorf("vm: no such method %q", full)
		}
		res, err = v.call(v.app, "", m, args, 0)
	} else {
		qm := v.app.q.byName[full]
		if qm == nil {
			return dex.Nil(), fmt.Errorf("vm: no such method %q", full)
		}
		res, err = v.qcall(v.app, "", qm, args, 0)
	}
	if v.obsInvokes != nil {
		// Dispatch-time profile in virtual ticks: one buffered
		// observation per top-level Invoke, published with the opcode
		// accumulator by FlushObs — the whole Invoke path is free of
		// atomics.
		v.obsInvokesBuf++
		v.obsInvokeSteps.Observe(v.steps)
	}
	return res, err
}

// maxFrameRegs bounds a single frame's register file — far above
// anything generated code uses, low enough that a corrupt register
// count cannot exhaust memory before validation would have caught it.
const maxFrameRegs = 1 << 16

// call executes one frame. inPayload carries the payload class name
// when executing decrypted bomb code.
func (v *VM) call(u *unit, inPayload string, m *dex.Method, args []dex.Value, depth int) (dex.Value, error) {
	if depth > v.opts.MaxDepth {
		return dex.Nil(), ErrDepth
	}
	if len(args) != m.NumArgs {
		return dex.Nil(), &RuntimeError{Method: m.FullName(), PC: -1,
			Reason: fmt.Sprintf("arity mismatch: got %d args, want %d", len(args), m.NumArgs)}
	}
	if m.NumRegs < 0 || m.NumRegs > maxFrameRegs {
		return dex.Nil(), &RuntimeError{Method: m.FullName(), PC: -1,
			Reason: fmt.Sprintf("register count %d outside [0,%d]", m.NumRegs, maxFrameRegs)}
	}
	if v.opts.Profile {
		v.profile[m.FullName()]++
	}
	// Frames recycle retired register files instead of allocating one
	// per call — the dominant per-Invoke allocation (BenchmarkInvoke).
	// Returned Values are struct copies and arrays have their own
	// backing store, so nothing escapes the frame through the slice.
	regs := v.getRegs(m.NumRegs)
	defer v.putRegs(regs)
	copy(regs, args)

	fault := func(pc int, format string, a ...any) error {
		return &RuntimeError{Method: m.FullName(), PC: pc, Reason: fmt.Sprintf(format, a...)}
	}
	intOf := func(pc int, val dex.Value) (int64, error) {
		if val.Kind != dex.KindInt {
			return 0, fault(pc, "expected int, got %s", val.Kind)
		}
		return val.Int, nil
	}

	pc := 0
	code := m.Code
	for {
		if pc < 0 || pc >= len(code) {
			return dex.Nil(), fault(pc, "control fell outside the method")
		}
		v.steps++
		v.clock++
		if v.steps > v.opts.MaxSteps {
			return dex.Nil(), ErrBudget
		}
		in := code[pc]
		if v.obsOps != nil {
			v.obsOps[in.Op]++
		}
		if v.trace != nil {
			v.recordTrace(m.FullName(), pc, in.Op, inPayload)
		}
		switch in.Op {
		case dex.OpNop:

		case dex.OpConstInt:
			regs[in.A] = dex.Int64(in.Imm)

		case dex.OpConstStr:
			regs[in.A] = dex.Str(u.file.Str(in.Imm))

		case dex.OpMove:
			regs[in.A] = regs[in.B]

		case dex.OpAdd, dex.OpSub, dex.OpMul, dex.OpDiv, dex.OpRem,
			dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpShl, dex.OpShr:
			x, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			y, err := intOf(pc, regs[in.C])
			if err != nil {
				return dex.Nil(), err
			}
			r, err := arith(in.Op, x, y)
			if err != nil {
				return dex.Nil(), fault(pc, "%v", err)
			}
			regs[in.A] = dex.Int64(r)

		case dex.OpNeg:
			x, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			regs[in.A] = dex.Int64(-x)

		case dex.OpNot:
			x, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			regs[in.A] = dex.Int64(^x)

		case dex.OpAddK:
			x, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			regs[in.A] = dex.Int64(x + in.Imm)

		case dex.OpIfEq:
			if regs[in.A].Equal(regs[in.B]) {
				pc = int(in.C)
				continue
			}

		case dex.OpIfNe:
			if !regs[in.A].Equal(regs[in.B]) {
				pc = int(in.C)
				continue
			}

		case dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
			x, err := intOf(pc, regs[in.A])
			if err != nil {
				return dex.Nil(), err
			}
			y, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			var taken bool
			switch in.Op {
			case dex.OpIfLt:
				taken = x < y
			case dex.OpIfLe:
				taken = x <= y
			case dex.OpIfGt:
				taken = x > y
			default:
				taken = x >= y
			}
			if taken {
				pc = int(in.C)
				continue
			}

		case dex.OpIfEqz:
			if !regs[in.A].Truthy() {
				pc = int(in.C)
				continue
			}

		case dex.OpIfNez:
			if regs[in.A].Truthy() {
				pc = int(in.C)
				continue
			}

		case dex.OpGoto:
			pc = int(in.C)
			continue

		case dex.OpSwitch:
			x, err := intOf(pc, regs[in.A])
			if err != nil {
				return dex.Nil(), err
			}
			if in.Imm < 0 || in.Imm >= int64(len(m.Tables)) {
				return dex.Nil(), fault(pc, "switch table %d missing", in.Imm)
			}
			t := m.Tables[in.Imm]
			target := t.Default
			for _, cs := range t.Cases {
				if cs.Match == x {
					target = cs.Target
					break
				}
			}
			pc = int(target)
			continue

		case dex.OpInvoke:
			name := u.file.Str(in.Imm)
			callee, cu := v.resolve(u, name)
			if callee == nil {
				return dex.Nil(), fault(pc, "unresolved invoke %q", name)
			}
			if in.B < 0 || in.C < 0 || int(in.B)+int(in.C) > len(regs) {
				return dex.Nil(), fault(pc, "arg window [%d,%d) outside %d registers", in.B, int(in.B)+int(in.C), len(regs))
			}
			callArgs := regs[in.B : int(in.B)+int(in.C)]
			res, err := v.call(cu, inPayload, callee, callArgs, depth+1)
			if err != nil {
				return dex.Nil(), err
			}
			if in.A != -1 {
				regs[in.A] = res
			}

		case dex.OpCallAPI:
			if in.B < 0 || in.C < 0 || int(in.B)+int(in.C) > len(regs) {
				return dex.Nil(), fault(pc, "arg window [%d,%d) outside %d registers", in.B, int(in.B)+int(in.C), len(regs))
			}
			callArgs := regs[in.B : int(in.B)+int(in.C)]
			res, err := v.callAPI(u, inPayload, m.FullName(), dex.API(in.Imm), callArgs, depth)
			if err != nil {
				return dex.Nil(), err
			}
			if in.A != -1 {
				regs[in.A] = res
			}

		case dex.OpReturn:
			return regs[in.A], nil

		case dex.OpReturnVoid:
			return dex.Nil(), nil

		case dex.OpGetStatic:
			regs[in.A] = v.Static(u.file.Str(in.Imm))

		case dex.OpPutStatic:
			v.SetStatic(u.file.Str(in.Imm), regs[in.A])

		case dex.OpNewArr:
			n, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			if n < 0 || n > 1<<20 {
				return dex.Nil(), fault(pc, "bad array length %d", n)
			}
			regs[in.A] = dex.NewArr(int(n))

		case dex.OpALoad:
			arr := regs[in.B]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), fault(pc, "aload on %s", arr.Kind)
			}
			i, err := intOf(pc, regs[in.C])
			if err != nil {
				return dex.Nil(), err
			}
			if i < 0 || int(i) >= len(*arr.Arr) {
				return dex.Nil(), fault(pc, "index %d out of bounds %d", i, len(*arr.Arr))
			}
			regs[in.A] = (*arr.Arr)[i]

		case dex.OpAStore:
			arr := regs[in.A]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), fault(pc, "astore on %s", arr.Kind)
			}
			i, err := intOf(pc, regs[in.B])
			if err != nil {
				return dex.Nil(), err
			}
			if i < 0 || int(i) >= len(*arr.Arr) {
				return dex.Nil(), fault(pc, "index %d out of bounds %d", i, len(*arr.Arr))
			}
			(*arr.Arr)[i] = regs[in.C]

		case dex.OpArrLen:
			arr := regs[in.B]
			if arr.Kind != dex.KindArr || arr.Arr == nil {
				return dex.Nil(), fault(pc, "arr-len on %s", arr.Kind)
			}
			regs[in.A] = dex.Int64(int64(len(*arr.Arr)))

		default:
			return dex.Nil(), fault(pc, "invalid opcode %d", in.Op)
		}
		pc++
	}
}

// resolve finds an invoke target: the calling unit's own methods
// first (payload-local helpers), then the app. Both namespaces are
// flattened into the unit's resolved table at load time, so the hot
// path is one lookup.
func (v *VM) resolve(u *unit, name string) (*dex.Method, *unit) {
	if r, ok := u.resolved[name]; ok {
		return r.m, r.u
	}
	return nil, nil
}

func arith(op dex.Op, x, y int64) (int64, error) {
	switch op {
	case dex.OpAdd:
		return x + y, nil
	case dex.OpSub:
		return x - y, nil
	case dex.OpMul:
		return x * y, nil
	case dex.OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case dex.OpRem:
		if y == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return x % y, nil
	case dex.OpAnd:
		return x & y, nil
	case dex.OpOr:
		return x | y, nil
	case dex.OpXor:
		return x ^ y, nil
	case dex.OpShl:
		return x << (uint64(y) & 63), nil
	case dex.OpShr:
		return x >> (uint64(y) & 63), nil
	}
	return 0, fmt.Errorf("not an arithmetic op: %s", op)
}
