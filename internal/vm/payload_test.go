package vm

import (
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// TestPayloadCallsBackIntoApp pins the cross-unit linking rule: a
// decrypted payload resolves its own methods first and falls back to
// the app's — woven code keeps calling the host's helpers.
func TestPayloadCallsBackIntoApp(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "n", Init: dex.Int64(0)}}}

	// App.bump(): n += 10.
	b := dex.NewBuilder(f, "bump", 0)
	r := b.Reg()
	b.GetStatic(r, "App.n")
	b.AddK(r, r, 10)
	b.PutStatic("App.n", r)
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())

	// Payload: run(x) { App.bump(); Payload.local(); }
	pf := dex.NewFile()
	pcl := &dex.Class{Name: "P", Fields: []dex.Field{{Name: "seen", Init: dex.Int64(0)}}}
	pb := dex.NewBuilder(pf, "run", 1)
	pb.Invoke(-1, "App.bump")
	pb.Invoke(-1, "P.local")
	pb.ReturnVoid()
	pcl.AddMethod(pb.MustFinish())
	lb := dex.NewBuilder(pf, "local", 0)
	lr := lb.Reg()
	lb.GetStatic(lr, "P.seen")
	lb.AddK(lr, lr, 1)
	lb.PutStatic("P.seen", lr)
	lb.ReturnVoid()
	pcl.AddMethod(lb.MustFinish())
	if err := pf.AddClass(pcl); err != nil {
		t.Fatal(err)
	}

	const salt = "xsalt"
	c := dex.Int64(5)
	sealed, err := lockbox.SealValue(dex.Encode(pf), c, salt)
	if err != nil {
		t.Fatal(err)
	}
	blob := f.AddBlob(sealed)

	// App.fire(x): h = decryptLoad(blob, x, salt); invokePayload(h, x)
	b = dex.NewBuilder(f, "fire", 1)
	args := b.Regs(3)
	b.ConstInt(args, blob)
	b.Move(args+1, 0)
	b.ConstStr(args+2, salt)
	h := b.Reg()
	b.Emit(dex.Instr{Op: dex.OpCallAPI, A: h, B: args, C: 3, Imm: int64(dex.APIDecryptLoad)})
	x2 := b.Reg()
	b.Move(x2, 0)
	b.CallAPI(-1, dex.APIInvokePayload, h, x2)
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())

	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(33)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("x", f, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(pkg, android.EmulatorLab(1)[0], Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Invoke("App.fire", dex.Int64(5)); err != nil {
		t.Fatal(err)
	}
	if got := v.Static("App.n"); got.Int != 10 {
		t.Errorf("payload -> app call: n = %v", got)
	}
	if got := v.Static("P.seen"); got.Int != 1 {
		t.Errorf("payload-local call: seen = %v", got)
	}
	// Second detonation reuses the cached decrypt and runs again.
	if _, err := v.Invoke("App.fire", dex.Int64(5)); err != nil {
		t.Fatal(err)
	}
	if got := v.Static("App.n"); got.Int != 20 {
		t.Errorf("second run: n = %v", got)
	}
	// Payload statics installed once, not reset by the cache hit.
	if got := v.Static("P.seen"); got.Int != 2 {
		t.Errorf("second run: seen = %v", got)
	}
}

// TestPayloadWithoutEntryRejected: a decrypted unit lacking run() is a
// corrupt payload.
func TestPayloadWithoutEntryRejected(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}

	pf := dex.NewFile()
	pcl := &dex.Class{Name: "P"}
	pb := dex.NewBuilder(pf, "notRun", 0)
	pb.ReturnVoid()
	pcl.AddMethod(pb.MustFinish())
	if err := pf.AddClass(pcl); err != nil {
		t.Fatal(err)
	}
	sealed, err := lockbox.SealValue(dex.Encode(pf), dex.Int64(1), "s")
	if err != nil {
		t.Fatal(err)
	}
	blob := f.AddBlob(sealed)

	b := dex.NewBuilder(f, "fire", 0)
	args := b.Regs(3)
	b.ConstInt(args, blob)
	b.ConstInt(args+1, 1)
	b.ConstStr(args+2, "s")
	h := b.Reg()
	b.Emit(dex.Instr{Op: dex.OpCallAPI, A: h, B: args, C: 3, Imm: int64(dex.APIDecryptLoad)})
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())
	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}

	key, err := apk.NewKeyPair(34)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("x", f, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(pkg, android.EmulatorLab(1)[0], Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.Invoke("App.fire")
	if !IsDecryptFailure(err) {
		t.Errorf("entry-less payload should be a decrypt failure: %v", err)
	}
}
