package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/obs"
)

// The differential harness: every behaviour the quickened interpreter
// exhibits must be byte-identical to the retained reference
// interpreter — results, error strings, step counts, virtual clock,
// traces, fault ledgers, responses, logs, profiles, obs opcode
// tallies, and static state. These tests drive paired VMs (one per
// path) through the appgen corpus, the payload lifecycle, the
// malformed-input classes, and random instruction streams, comparing
// after every Invoke. scripts/verify.sh runs them as the differential
// smoke (-run 'TestDifferential').

// diffPair is a quickened/reference VM pair over the same package.
type diffPair struct {
	q, r *VM
}

// newDiffPair installs pkg twice with identical options (bar the
// interpreter selection). Each VM gets its own device instance and obs
// registry so nothing is shared but the immutable image.
func newDiffPair(t *testing.T, pkg *apk.Package, opts Options) *diffPair {
	t.Helper()
	build := func(ref bool) *VM {
		o := opts
		o.Reference = ref
		o.Obs = obs.NewRegistry()
		v, err := New(pkg, android.EmulatorLab(1)[0], o)
		if err != nil {
			t.Fatalf("install (reference=%v): %v", ref, err)
		}
		return v
	}
	return &diffPair{q: build(false), r: build(true)}
}

// valueEq compares two dex.Values structurally. Arrays compare by
// contents (the pointers necessarily differ across VMs), with a depth
// cap against self-referential arrays built by hostile code.
func valueEq(a, b dex.Value, depth int) bool {
	if a.Kind != b.Kind || a.Int != b.Int || a.Str != b.Str {
		return false
	}
	if string(a.Bytes) != string(b.Bytes) {
		return false
	}
	if a.Kind == dex.KindArr {
		if (a.Arr == nil) != (b.Arr == nil) {
			return false
		}
		if a.Arr == nil {
			return true
		}
		if len(*a.Arr) != len(*b.Arr) {
			return false
		}
		if depth == 0 {
			return true
		}
		for i := range *a.Arr {
			if !valueEq((*a.Arr)[i], (*b.Arr)[i], depth-1) {
				return false
			}
		}
	}
	return true
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// invoke drives one method on both VMs and asserts the per-call
// contract: same result, same error, same step count, same clock.
func (p *diffPair) invoke(t *testing.T, full string, args ...dex.Value) {
	t.Helper()
	qres, qerr := p.q.Invoke(full, args...)
	rres, rerr := p.r.Invoke(full, args...)
	if es, er := errStr(qerr), errStr(rerr); es != er {
		t.Fatalf("%s: errors diverge:\n  quickened: %s\n  reference: %s", full, es, er)
	}
	if !valueEq(qres, rres, 8) {
		t.Fatalf("%s: results diverge: quickened %v, reference %v", full, qres, rres)
	}
	if p.q.steps != p.r.steps {
		t.Fatalf("%s: step counts diverge: quickened %d, reference %d", full, p.q.steps, p.r.steps)
	}
	if p.q.NowTicks() != p.r.NowTicks() {
		t.Fatalf("%s: clocks diverge: quickened %d, reference %d", full, p.q.NowTicks(), p.r.NowTicks())
	}
}

// finish asserts the whole-session contract once a scenario is done.
func (p *diffPair) finish(t *testing.T) {
	t.Helper()
	// Obs opcode tallies, before any flush.
	if p.q.obsOps != nil || p.r.obsOps != nil {
		for op := range p.q.obsOps {
			if p.q.obsOps[op] != p.r.obsOps[op] {
				t.Errorf("obs op count for %s diverges: quickened %d, reference %d",
					dex.Op(op), p.q.obsOps[op], p.r.obsOps[op])
			}
		}
	}
	// Trace ring buffers.
	qt, rt := p.q.Trace(), p.r.Trace()
	if len(qt) != len(rt) {
		t.Fatalf("trace lengths diverge: quickened %d, reference %d", len(qt), len(rt))
	}
	for i := range qt {
		if qt[i] != rt[i] {
			t.Fatalf("trace[%d] diverges:\n  quickened: %+v\n  reference: %+v", i, qt[i], rt[i])
		}
	}
	// Fault ledger.
	qf, rf := p.q.Faults(), p.r.Faults()
	if len(qf) != len(rf) {
		t.Fatalf("fault ledgers diverge: quickened %d, reference %d", len(qf), len(rf))
	}
	for i := range qf {
		if qf[i] != rf[i] {
			t.Errorf("fault[%d] diverges:\n  quickened: %+v\n  reference: %+v", i, qf[i], rf[i])
		}
	}
	// Responses, logs, warnings, reports, leaks.
	qresp, rresp := p.q.Responses(), p.r.Responses()
	if len(qresp) != len(rresp) {
		t.Fatalf("response counts diverge: quickened %d, reference %d", len(qresp), len(rresp))
	}
	for i := range qresp {
		if qresp[i] != rresp[i] {
			t.Errorf("response[%d] diverges: %+v vs %+v", i, qresp[i], rresp[i])
		}
	}
	ql, rl := p.q.Logs(), p.r.Logs()
	if len(ql) != len(rl) {
		t.Fatalf("log lengths diverge: quickened %d, reference %d", len(ql), len(rl))
	}
	for i := range ql {
		if ql[i] != rl[i] {
			t.Errorf("log[%d] diverges: %q vs %q", i, ql[i], rl[i])
		}
	}
	if p.q.LeakKB() != p.r.LeakKB() {
		t.Errorf("leakKB diverges: %d vs %d", p.q.LeakKB(), p.r.LeakKB())
	}
	// Profile (method invocation counts).
	qp, rp := p.q.Profile(), p.r.Profile()
	if len(qp) != len(rp) {
		t.Errorf("profile sizes diverge: quickened %d, reference %d", len(qp), len(rp))
	}
	for k, n := range qp {
		if rp[k] != n {
			t.Errorf("profile[%s] diverges: quickened %d, reference %d", k, n, rp[k])
		}
	}
	// Static state: compare through the name-indexed view so slot
	// numbering differences (there should be none, but the contract is
	// about values) cannot mask a real divergence.
	for name := range p.q.staticIdx {
		if !valueEq(p.q.Static(name), p.r.Static(name), 8) {
			t.Errorf("static %q diverges: %v vs %v", name, p.q.Static(name), p.r.Static(name))
		}
	}
	for name := range p.q.staticExtra {
		if !valueEq(p.q.Static(name), p.r.Static(name), 8) {
			t.Errorf("static %q diverges: %v vs %v", name, p.q.Static(name), p.r.Static(name))
		}
	}
	// Bomb bookkeeping.
	qo, ro := p.q.OuterTriggered(), p.r.OuterTriggered()
	if fmt.Sprint(qo) != fmt.Sprint(ro) {
		t.Errorf("outer-trigger sets diverge: %v vs %v", qo, ro)
	}
	qd, rd := p.q.DetectionRuns(), p.r.DetectionRuns()
	if len(qd) != len(rd) {
		t.Errorf("detection-run maps diverge: %v vs %v", qd, rd)
	}
	for k, n := range qd {
		if rd[k] != n {
			t.Errorf("detectionRuns[%s] diverges: %d vs %d", k, n, rd[k])
		}
	}
}

// signApp wraps a dex file into a signed package.
func signApp(t *testing.T, name string, f *dex.File) *apk.Package {
	t.Helper()
	key, err := apk.NewKeyPair(31)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build(name, f, apk.Resources{Strings: []string{"s"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestDifferentialCorpus executes a cross-section of the appgen corpus
// (one app per Table 1 category) on both interpreter paths: every init
// method, then a deterministic pseudo-random event storm over the
// app's handler surface with idle gaps — the same shape sim sessions
// drive.
func TestDifferentialCorpus(t *testing.T) {
	var apps []*appgen.App
	if err := appgen.SampleCorpus(1, func(a *appgen.App) error {
		apps = append(apps, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(apps) != len(appgen.Categories) {
		t.Fatalf("sampled %d apps, want one per category (%d)", len(apps), len(appgen.Categories))
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			pkg := signApp(t, app.Name, app.File)
			p := newDiffPair(t, pkg, Options{Seed: 11, Profile: true, TraceDepth: 128})
			for _, init := range p.q.InitMethods() {
				p.invoke(t, init)
			}
			handlers := p.q.Handlers()
			if len(handlers) == 0 {
				t.Fatal("corpus app has no handlers")
			}
			rng := rand.New(rand.NewSource(app.Config.Seed))
			dom := app.Config.ParamDomain
			if dom <= 0 {
				dom = 16
			}
			for ev := 0; ev < 120; ev++ {
				h := handlers[rng.Intn(len(handlers))]
				p.invoke(t, h, dex.Int64(rng.Int63n(dom)), dex.Int64(rng.Int63n(dom)))
				gap := 200 + rng.Int63n(500)
				if err1, err2 := p.q.AdvanceIdle(gap), p.r.AdvanceIdle(gap); errStr(err1) != errStr(err2) {
					t.Fatalf("AdvanceIdle errors diverge: %v vs %v", err1, err2)
				}
			}
			p.finish(t)
		})
	}
}

// TestDifferentialPayload executes the full bomb lifecycle — sealed
// decrypt, payload quickening at runtime, detection check, crash
// response — on both paths, over both the clean and the repackaged
// package.
func TestDifferentialPayload(t *testing.T) {
	f, _ := buildTestApp(t)
	for _, repackaged := range []bool{false, true} {
		name := "clean"
		if repackaged {
			name = "repackaged"
		}
		t.Run(name, func(t *testing.T) {
			devKey, err := apk.NewKeyPair(101)
			if err != nil {
				t.Fatal(err)
			}
			patched := patchPayloadKey(t, f, devKey.PublicKeyHex())
			pkg, err := apk.Sign(apk.Build("test.app", patched, apk.Resources{
				Strings: []string{"Tap to start"}, Author: "dev", Icon: []byte{1},
			}), devKey)
			if err != nil {
				t.Fatal(err)
			}
			if repackaged {
				attacker, err := apk.NewKeyPair(999)
				if err != nil {
					t.Fatal(err)
				}
				pkg, err = apk.Repackage(pkg, attacker, apk.RepackOptions{NewAuthor: "pirate"})
				if err != nil {
					t.Fatal(err)
				}
			}
			p := newDiffPair(t, pkg, Options{Seed: 7, Profile: true, TraceDepth: 256})
			p.invoke(t, "App.add", dex.Int64(20), dex.Int64(22))
			p.invoke(t, "App.classify", dex.Int64(2))
			p.invoke(t, "App.classify", dex.Int64(99))
			p.invoke(t, "App.bump")
			p.invoke(t, "App.bump")
			p.invoke(t, "App.sum3")
			p.invoke(t, "App.greet", dex.Str("user"))
			p.invoke(t, "App.callAdd")
			p.invoke(t, "App.readEnv")
			p.invoke(t, "App.armBomb", dex.Int64(5))    // wrong constant: bomb stays sealed
			p.invoke(t, "App.armBomb", dex.Int64(1234)) // true constant: decrypt + detonate path
			p.invoke(t, "App.add", dex.Int64(1))        // arity mismatch fault
			p.invoke(t, "App.spin")                     // budget exhaustion
			p.invoke(t, "App.recurse")                  // depth exhaustion
			p.invoke(t, "App.nope")                     // no such method
			p.finish(t)
		})
	}
}

// TestDifferentialPayloadFailClosed pins the fault-ledger parity when
// a corrupted sealed blob degrades gracefully under FailClosed.
func TestDifferentialPayloadFailClosed(t *testing.T) {
	f, _ := buildTestApp(t)
	devKey, err := apk.NewKeyPair(101)
	if err != nil {
		t.Fatal(err)
	}
	patched := patchPayloadKey(t, f, devKey.PublicKeyHex())
	pkg, err := apk.Sign(apk.Build("test.app", patched, apk.Resources{
		Strings: []string{"x"}, Author: "dev", Icon: []byte{1},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(blob int64, sealed []byte) []byte {
		bad := append([]byte(nil), sealed...)
		if len(bad) > 0 {
			bad[len(bad)/2] ^= 0xFF
		}
		return bad
	}
	p := newDiffPair(t, pkg, Options{Seed: 7, FailClosed: true, BlobFault: corrupt})
	p.invoke(t, "App.armBomb", dex.Int64(1234))
	p.invoke(t, "App.forceDecrypt", dex.Int64(0))
	if len(p.q.Faults()) == 0 {
		t.Fatal("corrupted blob produced no ledgered fault")
	}
	p.finish(t)
}

// TestDifferentialMalformed runs the malformed-input classes from the
// fuzz suite on both paths: faults must match byte-for-byte, including
// the contained-panic cases.
func TestDifferentialMalformed(t *testing.T) {
	cases := map[string]*dex.File{
		"register out of range": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 100, B: -1, C: -1, Imm: 7},
			{Op: dex.OpReturnVoid},
		}),
		"negative register": badFile(2, []dex.Instr{
			{Op: dex.OpMove, A: -5, B: 0, C: -1},
			{Op: dex.OpReturnVoid},
		}),
		"branch target out of range": badFile(1, []dex.Instr{
			{Op: dex.OpGoto, A: -1, B: -1, C: 999},
		}),
		"negative branch target": badFile(1, []dex.Instr{
			{Op: dex.OpGoto, A: -1, B: -1, C: -7},
		}),
		"arg window outside frame": badFile(2, []dex.Instr{
			{Op: dex.OpCallAPI, A: -1, B: 1, C: 40, Imm: int64(dex.APILog)},
			{Op: dex.OpReturnVoid},
		}),
		"huge register count": badFile(1<<30, []dex.Instr{
			{Op: dex.OpReturnVoid},
		}),
		"missing switch table": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 3},
			{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 9},
			{Op: dex.OpReturnVoid},
		}),
		"switch target out of range": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 3},
			{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 0},
			{Op: dex.OpReturnVoid},
		}, dex.SwitchTable{Cases: []dex.SwitchCase{{Match: 3, Target: 500}}, Default: -2}),
		"truncated method body": badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 1},
		}),
		"unresolved invoke": badFile(2, []dex.Instr{
			{Op: dex.OpInvoke, A: -1, B: 0, C: 0, Imm: 12345},
			{Op: dex.OpReturnVoid},
		}),
		"invalid opcode": badFile(1, []dex.Instr{
			{Op: dex.Op(200), A: 0, B: 0, C: 0},
			{Op: dex.OpReturnVoid},
		}),
		"type confusion arith": badFile(2, []dex.Instr{
			{Op: dex.OpConstStr, A: 0, B: -1, C: -1, Imm: 0},
			{Op: dex.OpAdd, A: 1, B: 0, C: 0},
			{Op: dex.OpReturnVoid},
		}),
		"division by zero": badFile(2, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 0},
			{Op: dex.OpDiv, A: 1, B: 0, C: 0},
			{Op: dex.OpReturnVoid},
		}),
	}
	for name, file := range cases {
		file := file
		t.Run(name, func(t *testing.T) {
			// Via fuzzVM: no validation, quickening over raw garbage.
			vq := fuzzVM(file, Options{TraceDepth: 32})
			vr := fuzzVM(file, Options{TraceDepth: 32, Reference: true})
			qres, qerr := vq.Invoke("Bad.m")
			rres, rerr := vr.Invoke("Bad.m")
			if errStr(qerr) != errStr(rerr) {
				t.Fatalf("errors diverge:\n  quickened: %s\n  reference: %s", errStr(qerr), errStr(rerr))
			}
			if !valueEq(qres, rres, 8) {
				t.Fatalf("results diverge: %v vs %v", qres, rres)
			}
			if vq.steps != vr.steps || vq.NowTicks() != vr.NowTicks() {
				t.Fatalf("accounting diverges: steps %d/%d, ticks %d/%d",
					vq.steps, vr.steps, vq.NowTicks(), vr.NowTicks())
			}
			qt, rt := vq.Trace(), vr.Trace()
			if len(qt) != len(rt) {
				t.Fatalf("trace lengths diverge: %d vs %d", len(qt), len(rt))
			}
			for i := range qt {
				if qt[i] != rt[i] {
					t.Fatalf("trace[%d] diverges: %+v vs %+v", i, qt[i], rt[i])
				}
			}
		})
	}
}

// TestDifferentialRandomCode sweeps random instruction streams —
// including invalid opcodes, out-of-range registers, wild branch
// targets, and accidental fusable dyads — through both paths. This is
// the fuzz-seed leg of the harness: quickening must be a total,
// semantics-preserving rewrite over arbitrary input.
func TestDifferentialRandomCode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const numFiles = 60
	for fi := 0; fi < numFiles; fi++ {
		n := 4 + rng.Intn(24)
		code := make([]dex.Instr, n)
		for i := range code {
			code[i] = dex.Instr{
				Op:  dex.Op(rng.Intn(dex.NumOps + 3)), // a bit past opMax: invalid ops too
				A:   int32(rng.Intn(10) - 2),
				B:   int32(rng.Intn(10) - 2),
				C:   int32(rng.Intn(n+6) - 3),
				Imm: int64(rng.Intn(20) - 4),
			}
		}
		var tables []dex.SwitchTable
		if rng.Intn(2) == 0 {
			tables = append(tables, dex.SwitchTable{
				Cases: []dex.SwitchCase{
					{Match: int64(rng.Intn(6)), Target: int32(rng.Intn(n+4) - 2)},
					{Match: int64(rng.Intn(6)), Target: int32(rng.Intn(n+4) - 2)},
				},
				Default: int32(rng.Intn(n+4) - 2),
			})
		}
		file := badFile(6, code, tables...)
		// Trace on for some files; obs accounting comes with fuzzVM's
		// nil registry either way, so compare steps/clock/result only.
		opts := Options{MaxSteps: 2_000, MaxDepth: 8}
		if fi%3 == 0 {
			opts.TraceDepth = 64
		}
		vq := fuzzVM(file, opts)
		ro := opts
		ro.Reference = true
		vr := fuzzVM(file, ro)
		qres, qerr := vq.Invoke("Bad.m")
		rres, rerr := vr.Invoke("Bad.m")
		if errStr(qerr) != errStr(rerr) {
			t.Fatalf("file %d: errors diverge:\n  quickened: %s\n  reference: %s\n  code: %+v",
				fi, errStr(qerr), errStr(rerr), code)
		}
		if !valueEq(qres, rres, 8) {
			t.Fatalf("file %d: results diverge: %v vs %v\n  code: %+v", fi, qres, rres, code)
		}
		if vq.steps != vr.steps || vq.NowTicks() != vr.NowTicks() {
			t.Fatalf("file %d: accounting diverges: steps %d/%d ticks %d/%d\n  code: %+v",
				fi, vq.steps, vr.steps, vq.NowTicks(), vr.NowTicks(), code)
		}
		qt, rt := vq.Trace(), vr.Trace()
		if len(qt) != len(rt) {
			t.Fatalf("file %d: trace lengths diverge: %d vs %d", fi, len(qt), len(rt))
		}
		for i := range qt {
			if qt[i] != rt[i] {
				t.Fatalf("file %d: trace[%d] diverges: %+v vs %+v", fi, i, qt[i], rt[i])
			}
		}
	}
}
