package vm

import (
	"sort"

	"bombdroid/internal/dex"
)

// This file implements the load-time quickening pass: every method's
// dex code is rewritten once, at class load, into an internal
// executable form the dispatch loop in qexec.go runs directly.
//
// The rewrite buys three things the generic interpreter pays for on
// every executed instruction:
//
//   - Operand resolution. OpInvoke/OpConstStr/OpGetStatic/OpPutStatic
//     carry string-pool indices; the reference loop turns those into a
//     pool read plus a map probe per execution. Quickening resolves
//     them once: invokes become indices into a per-unit target table
//     (riding the flattened resolved table built at link time),
//     statics become slot numbers in a per-VM value array, and const
//     strings become prebuilt dex.Values.
//
//   - Control-flow safety without a hot bounds check. All branch and
//     switch targets are range-checked here. qcode is parallel-indexed
//     with the original pcs, followed by an end sentinel at len(code)
//     and one trap instruction per distinct out-of-range target; bad
//     targets are rewritten to their trap, which reproduces the
//     reference bounds-check fault (same message, same PC = the
//     original bad target) only if the jump is actually taken. The
//     dispatch loop therefore never needs `pc < 0 || pc >= len` per
//     instruction.
//
//   - Superinstructions. The dominant dyads in the generated corpus
//     (per the obs opcode counters: const-int feeding arithmetic or a
//     compare-and-branch, aload feeding arithmetic, arithmetic feeding
//     a compare-and-branch) fuse into single handlers that charge both
//     halves' steps/ticks/obs/trace exactly as two dispatches would.
//     Fusion never relocates code: the fused instruction lives at the
//     first pc and the second pc keeps its plain form, so a jump into
//     the middle of a pair executes the unfused second instruction —
//     no branch-target analysis or pc remapping required.
//
// Quickening is total: it never rejects code. Malformed input that
// validation would refuse (fuzzed or corrupted-in-memory images) is
// rewritten to forms that fault at execution time with byte-identical
// errors to the reference interpreter, enforced by the differential
// harness in differential_test.go.

// qop is an internal (quickened) opcode.
type qop uint8

const (
	// qEnd sits at index len(code): control fell off the end of the
	// method. qTrap replaces an out-of-range branch target; its imm
	// holds the original target for the fault message. Both are
	// handled before the step/obs prefix, mirroring the reference
	// loop's bounds check, which charges nothing.
	qEnd qop = iota
	qTrap

	qNop
	qConstInt
	qConstStr
	qMove
	qArith
	qNeg
	qNot
	qAddK
	qIfEq
	qIfNe
	qIfLt
	qIfLe
	qIfGt
	qIfGe
	qIfEqz
	qIfNez
	qGoto
	qSwitch
	qSwitchMissing
	qInvoke
	qInvokeUnresolved
	qInvokeBadWindow
	qCallAPI
	qCallAPIBadWindow
	qReturn
	qReturnVoid
	qGetStatic
	qPutStatic
	qNewArr
	qALoad
	qAStore
	qArrLen
	qBadOp

	// Fused superinstructions: first half's operands in a/b/c/imm,
	// second half's in op2/a2/b2/c2.
	qFuseConstArith // const-int ; arith
	qFuseConstIf    // const-int ; if
	qFuseALoadArith // aload ; arith
	qFuseArithIf    // arith ; if
)

// qFirstReal is the first qop that executes the standard
// step/budget/obs/trace prefix; qEnd and qTrap run before it.
const qFirstReal = qNop

// qinstr is one quickened instruction. srcOp keeps the original
// opcode for obs accounting, trace entries, and as the operation
// selector for qArith/qBadOp; op2 and the *2 operands carry the second
// half of a fused pair.
type qinstr struct {
	op         qop
	srcOp      dex.Op
	op2        dex.Op
	a, b, c    int32
	a2, b2, c2 int32
	imm        int64
}

// qtable is a switch table sorted by match value for binary search.
// Duplicated match values keep their original order (stable sort +
// leftmost-equal search), preserving the reference first-match-wins
// linear scan. All targets, including def, are already range-checked
// and trap-rewritten.
type qtable struct {
	matches []int64
	targets []int32
	def     int32
}

// qmethod is one quickened method. full is the precomputed
// "Class.Method" name reused by the profile, trace, RuntimeError, and
// APICall paths, which otherwise re-format it per call.
type qmethod struct {
	m      *dex.Method
	full   string
	code   []qinstr
	tables []qtable
}

// qtarget is one pre-resolved invoke target.
type qtarget struct {
	qm *qmethod
	u  *unit
}

// qprog is a unit's quickened program: its methods plus the shared
// operand tables quickened code indexes into.
type qprog struct {
	byName   map[string]*qmethod
	byMethod map[*dex.Method]*qmethod
	targets  []qtarget
	// strs pre-wraps the string pool as dex.Values; the extra final
	// slot holds "" so out-of-range const-str indices (possible in
	// unvalidated code) stay a plain array read.
	strs []dex.Value
}

// quickenUnit builds u.q. slotFor assigns (or looks up) the static
// slot for a "Class.Field" name; for the shared app image it fills the
// image's slot table, for payload units loaded at runtime it extends
// the owning VM's. Invoke targets resolve through u.resolved, so
// buildResolved must have run first.
func quickenUnit(u *unit, slotFor func(string) int32) {
	q := &qprog{
		byName:   make(map[string]*qmethod, len(u.methods)),
		byMethod: make(map[*dex.Method]*qmethod, len(u.methods)),
	}
	q.strs = make([]dex.Value, len(u.file.Strings)+1)
	for i, s := range u.file.Strings {
		q.strs[i] = dex.Str(s)
	}
	q.strs[len(u.file.Strings)] = dex.Str("")
	u.q = q

	// Phase 1: shells, so self- and mutually-recursive invoke targets
	// resolve to stable *qmethod pointers during phase 2.
	for name, m := range u.methods {
		qm := &qmethod{m: m, full: name}
		q.byName[name] = qm
		q.byMethod[m] = qm
	}
	// Phase 2 in file order: the targets table layout must not depend
	// on map iteration order.
	for _, m := range u.file.Methods() {
		if qm := q.byMethod[m]; qm != nil {
			quickenMethod(u, qm, slotFor)
		}
	}
}

// quickenMethod rewrites one method's code.
func quickenMethod(u *unit, qm *qmethod, slotFor func(string) int32) {
	m := qm.m
	n := len(m.Code)
	code := make([]qinstr, n+1)
	code[n] = qinstr{op: qEnd}
	traps := map[int32]int32{}
	// target range-checks a branch target. Targets in [0, n] encode
	// directly — n is the end sentinel, which faults exactly like the
	// reference `pc >= len(code)` check. Anything else becomes a trap.
	target := func(t int32) int32 {
		if t >= 0 && int(t) <= n {
			return t
		}
		ti, ok := traps[t]
		if !ok {
			ti = int32(len(code))
			code = append(code, qinstr{op: qTrap, imm: int64(t)})
			traps[t] = ti
		}
		return ti
	}

	for pc := 0; pc < n; pc++ {
		in := m.Code[pc]
		qi := qinstr{srcOp: in.Op, a: in.A, b: in.B, c: in.C, imm: in.Imm}
		switch {
		case in.Op == dex.OpNop:
			qi.op = qNop
		case in.Op == dex.OpConstInt:
			qi.op = qConstInt
		case in.Op == dex.OpConstStr:
			qi.op = qConstStr
			if in.Imm < 0 || in.Imm >= int64(len(u.file.Strings)) {
				qi.imm = int64(len(u.file.Strings)) // the shared "" slot
			}
		case in.Op == dex.OpMove:
			qi.op = qMove
		case in.Op.IsArith():
			qi.op = qArith
		case in.Op == dex.OpNeg:
			qi.op = qNeg
		case in.Op == dex.OpNot:
			qi.op = qNot
		case in.Op == dex.OpAddK:
			qi.op = qAddK
		case in.Op.IsIfCmp(), in.Op == dex.OpIfEqz, in.Op == dex.OpIfNez, in.Op == dex.OpGoto:
			qi.op = qIfEq + qop(in.Op-dex.OpIfEq)
			qi.c = target(in.C)
		case in.Op == dex.OpSwitch:
			if in.Imm < 0 || in.Imm >= int64(len(m.Tables)) {
				qi.op = qSwitchMissing // imm keeps the index for the message
			} else {
				qi.op = qSwitch
				qi.imm = int64(len(qm.tables))
				qm.tables = append(qm.tables, quickenTable(m.Tables[in.Imm], target))
			}
		case in.Op == dex.OpInvoke:
			r, ok := u.resolved[u.file.Str(in.Imm)]
			var tq *qmethod
			if ok {
				tq = r.u.q.byMethod[r.m]
			}
			switch {
			case tq == nil:
				qi.op = qInvokeUnresolved // imm keeps the string index
			case in.B < 0 || in.C < 0 || int(in.B)+int(in.C) > m.NumRegs:
				qi.op = qInvokeBadWindow
			default:
				qi.op = qInvoke
				qi.imm = int64(len(u.q.targets))
				u.q.targets = append(u.q.targets, qtarget{qm: tq, u: r.u})
			}
		case in.Op == dex.OpCallAPI:
			if in.B < 0 || in.C < 0 || int(in.B)+int(in.C) > m.NumRegs {
				qi.op = qCallAPIBadWindow
			} else {
				qi.op = qCallAPI
			}
		case in.Op == dex.OpReturn:
			qi.op = qReturn
		case in.Op == dex.OpReturnVoid:
			qi.op = qReturnVoid
		case in.Op == dex.OpGetStatic:
			qi.op = qGetStatic
			qi.imm = int64(slotFor(u.file.Str(in.Imm)))
		case in.Op == dex.OpPutStatic:
			qi.op = qPutStatic
			qi.imm = int64(slotFor(u.file.Str(in.Imm)))
		case in.Op == dex.OpNewArr:
			qi.op = qNewArr
		case in.Op == dex.OpALoad:
			qi.op = qALoad
		case in.Op == dex.OpAStore:
			qi.op = qAStore
		case in.Op == dex.OpArrLen:
			qi.op = qArrLen
		default:
			qi.op = qBadOp
		}
		code[pc] = qi
	}

	// Fusion pass. Greedy over every position: replacing code[pc] with
	// a fused form leaves code[pc+1] intact, so overlapping pairs and
	// jumps into the middle of a pair both stay correct.
	for pc := 0; pc+1 < n; pc++ {
		first := code[pc]
		second := code[pc+1]
		var fop qop
		switch {
		case first.op == qConstInt && second.op == qArith:
			fop = qFuseConstArith
		case first.op == qConstInt && isQIf(second.op):
			fop = qFuseConstIf
		case first.op == qALoad && second.op == qArith:
			fop = qFuseALoadArith
		case first.op == qArith && isQIf(second.op):
			fop = qFuseArithIf
		default:
			continue
		}
		first.op = fop
		first.op2 = second.srcOp
		first.a2, first.b2, first.c2 = second.a, second.b, second.c
		code[pc] = first
	}
	qm.code = code
}

// isQIf reports whether op is a quickened conditional branch.
func isQIf(op qop) bool { return op >= qIfEq && op <= qIfNez }

// quickenTable sorts one switch table for binary search, range-checking
// every target through the trap allocator.
func quickenTable(t dex.SwitchTable, target func(int32) int32) qtable {
	type pair struct {
		m int64
		t int32
	}
	ps := make([]pair, len(t.Cases))
	for i, cs := range t.Cases {
		ps[i] = pair{cs.Match, target(cs.Target)}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].m < ps[j].m })
	qt := qtable{
		def:     target(t.Default),
		matches: make([]int64, len(ps)),
		targets: make([]int32, len(ps)),
	}
	for i, p := range ps {
		qt.matches[i] = p.m
		qt.targets[i] = p.t
	}
	return qt
}
