package vm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
)

// apiHarness compiles a one-off method that calls one API and returns
// its result, then runs it.
type apiHarness struct {
	t   *testing.T
	res apk.Resources
	dev *android.Device
}

func newAPIHarness(t *testing.T) *apiHarness {
	rng := rand.New(rand.NewSource(42))
	return &apiHarness{
		t: t,
		res: apk.Resources{
			Strings: []string{"plain", apk.HideInString("cover text", "deadbeef00112233", rng)},
			Author:  "author", Icon: []byte{1, 2, 3},
		},
		dev: android.EmulatorLab(1)[0],
	}
}

// run builds method `m` with the given body emitter and invokes it.
func (h *apiHarness) run(build func(b *dex.Builder)) (dex.Value, *VM, error) {
	h.t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 0)
	build(b)
	m, err := b.Finish()
	if err != nil {
		h.t.Fatal(err)
	}
	cl := &dex.Class{Name: "T"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		h.t.Fatal(err)
	}
	key, err := apk.NewKeyPair(55)
	if err != nil {
		h.t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("t", f, h.res), key)
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := New(pkg, h.dev, Options{Seed: 3})
	if err != nil {
		h.t.Fatal(err)
	}
	res, err := v.Invoke("T.m")
	return res, v, err
}

func TestAPIResourceAndStego(t *testing.T) {
	h := newAPIHarness(t)
	// getResourceString(1) |> stegoExtract
	res, _, err := h.run(func(b *dex.Builder) {
		idx := b.Reg()
		b.ConstInt(idx, 1)
		s := b.Reg()
		b.CallAPI(s, dex.APIGetResourceString, idx)
		out := b.Reg()
		b.CallAPI(out, dex.APIStegoExtract, s)
		b.Return(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Str != "deadbeef00112233" {
		t.Errorf("stego extract = %q", res.Str)
	}
	// Out-of-range resource reads as empty.
	res, _, err = h.run(func(b *dex.Builder) {
		idx := b.Reg()
		b.ConstInt(idx, 99)
		s := b.Reg()
		b.CallAPI(s, dex.APIGetResourceString, idx)
		b.Return(s)
	})
	if err != nil || res.Str != "" {
		t.Errorf("oob resource = %q, %v", res.Str, err)
	}
}

func TestAPIManifestDigest(t *testing.T) {
	h := newAPIHarness(t)
	res, v, err := h.run(func(b *dex.Builder) {
		n := b.Reg()
		b.ConstStr(n, apk.EntryIcon)
		d := b.Reg()
		b.CallAPI(d, dex.APIGetManifestDigest, n)
		b.Return(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Str != v.Package().Manifest.DigestOf(apk.EntryIcon) {
		t.Error("manifest digest mismatch")
	}
	if len(res.Str) != 64 {
		t.Errorf("digest length %d", len(res.Str))
	}
}

func TestAPICodeDigestMethodLevel(t *testing.T) {
	h := newAPIHarness(t)
	res, v, err := h.run(func(b *dex.Builder) {
		n := b.Reg()
		b.ConstStr(n, "T.m")
		d := b.Reg()
		b.CallAPI(d, dex.APICodeDigest, n)
		b.Return(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := CodeDigest(v.File(), v.File().Method("T.m"))
	if res.Str != want {
		t.Error("method digest mismatch")
	}
	// Class-level digest and unknown names.
	res, _, err = h.run(func(b *dex.Builder) {
		n := b.Reg()
		b.ConstStr(n, "NoSuch")
		d := b.Reg()
		b.CallAPI(d, dex.APICodeDigest, n)
		b.Return(d)
	})
	if err != nil || res.Str != "" {
		t.Errorf("unknown class digest = %q, %v", res.Str, err)
	}
}

func TestAPIStringHelpers(t *testing.T) {
	h := newAPIHarness(t)
	res, _, err := h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, "hello world")
		lo := b.Reg()
		b.ConstInt(lo, 6)
		hi := b.Reg()
		b.ConstInt(hi, 11)
		sub := b.Reg()
		b.CallAPI(sub, dex.APIStrSubstr, s, lo, hi)
		n := b.Reg()
		b.CallAPI(n, dex.APIStrToInt, sub) // "world" -> 0
		l := b.Reg()
		b.CallAPI(l, dex.APIStrLen, sub)
		sum := b.Reg()
		b.Arith(dex.OpAdd, sum, n, l)
		b.Return(sum)
	})
	if err != nil || res.Int != 5 {
		t.Errorf("string pipeline = %v, %v", res, err)
	}
	// parseInt on a real number; charAt; hashCode stability.
	res, _, err = h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, " 42 ")
		n := b.Reg()
		b.CallAPI(n, dex.APIStrToInt, s)
		b.Return(n)
	})
	if err != nil || res.Int != 42 {
		t.Errorf("parseInt = %v", res)
	}
	res, _, err = h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, "abc")
		h1 := b.Reg()
		b.CallAPI(h1, dex.APIStrHashCode, s)
		b.Return(h1)
	})
	if err != nil || res.Int != 96354 { // Java's "abc".hashCode()
		t.Errorf("hashCode = %v", res)
	}
	// Substring bounds fault.
	_, _, err = h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, "ab")
		lo := b.Reg()
		b.ConstInt(lo, 0)
		hi := b.Reg()
		b.ConstInt(hi, 99)
		sub := b.Reg()
		b.CallAPI(sub, dex.APIStrSubstr, s, lo, hi)
		b.Return(sub)
	})
	if !IsRuntimeFault(err) {
		t.Errorf("oob substring: %v", err)
	}
	// charAt fault.
	_, _, err = h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, "ab")
		i := b.Reg()
		b.ConstInt(i, 5)
		c := b.Reg()
		b.CallAPI(c, dex.APIStrCharAt, s, i)
		b.Return(c)
	})
	if !IsRuntimeFault(err) {
		t.Errorf("oob charAt: %v", err)
	}
}

func TestAPIResponsesRecordEvents(t *testing.T) {
	h := newAPIHarness(t)
	_, v, err := h.run(func(b *dex.Builder) {
		kb := b.Reg()
		b.ConstInt(kb, 128)
		b.CallAPI(-1, dex.APILeakMemory, kb)
		ms := b.Reg()
		b.ConstInt(ms, 500)
		b.CallAPI(-1, dex.APISpinLoop, ms)
		msg := b.Reg()
		b.ConstStr(msg, "beware")
		b.CallAPI(-1, dex.APIWarnUser, msg)
		info := b.Reg()
		b.ConstStr(info, "piracy!")
		b.CallAPI(-1, dex.APIReportPiracy, info)
		b.ReturnVoid()
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.LeakKB() != 128 {
		t.Errorf("leak = %d", v.LeakKB())
	}
	events := v.Responses()
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	kinds := map[ResponseKind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, want := range []ResponseKind{RespLeak, RespFreeze, RespWarn, RespReport} {
		if !kinds[want] {
			t.Errorf("missing %s event", want)
		}
	}
	if got := v.Warnings(); len(got) != 1 || got[0] != "beware" {
		t.Errorf("warnings = %v", got)
	}
	if got := v.PiracyReports(); len(got) != 1 || got[0] != "piracy!" {
		t.Errorf("reports = %v", got)
	}
}

func TestAPIDelayedCrash(t *testing.T) {
	h := newAPIHarness(t)
	_, v, err := h.run(func(b *dex.Builder) {
		args := b.Regs(2)
		b.ConstInt(args, 2_000)
		b.ConstInt(args+1, int64(RespCrash))
		b.CallAPI(-1, dex.APIDelayBomb, args, args+1)
		b.ReturnVoid()
	})
	if err != nil {
		t.Fatal(err)
	}
	err = v.AdvanceIdle(5_000)
	if !IsCrash(err) {
		t.Errorf("delayed crash should fire on idle: %v", err)
	}
	if len(v.Responses()) != 1 || v.Responses()[0].Kind != RespCrash {
		t.Errorf("responses = %+v", v.Responses())
	}
}

func TestAPIArgumentValidation(t *testing.T) {
	h := newAPIHarness(t)
	// Wrong arg types fault rather than panic.
	for _, api := range []dex.API{
		dex.APIGetManifestDigest, dex.APIStegoExtract, dex.APIGetEnvStr,
		dex.APIGetEnvInt, dex.APIStrEquals, dex.APIStrConcat, dex.APIStrLen,
		dex.APIDeobfuscate,
	} {
		api := api
		_, _, err := h.run(func(b *dex.Builder) {
			x := b.Reg()
			b.ConstInt(x, 1) // int where a string is expected
			r := b.Reg()
			b.CallAPI(r, api, x)
			b.ReturnVoid()
		})
		if !IsRuntimeFault(err) {
			t.Errorf("%s with wrong args: %v", api.Name(), err)
		}
	}
	// decryptLoad with a bad blob index.
	_, _, err := h.run(func(b *dex.Builder) {
		args := b.Regs(3)
		b.ConstInt(args, 42) // no such blob
		b.ConstInt(args+1, 1)
		b.ConstStr(args+2, "salt")
		r := b.Reg()
		b.Emit(dex.Instr{Op: dex.OpCallAPI, A: r, B: args, C: 3, Imm: int64(dex.APIDecryptLoad)})
		b.ReturnVoid()
	})
	if !IsRuntimeFault(err) {
		t.Errorf("bad blob index: %v", err)
	}
	// invokePayload with a stale handle.
	_, _, err = h.run(func(b *dex.Builder) {
		hreg := b.Reg()
		b.ConstInt(hreg, 7) // not a handle kind
		b.CallAPI(-1, dex.APIInvokePayload, hreg)
		b.ReturnVoid()
	})
	if !IsRuntimeFault(err) {
		t.Errorf("bad handle: %v", err)
	}
}

func TestAPIDeobfuscateErrors(t *testing.T) {
	h := newAPIHarness(t)
	_, _, err := h.run(func(b *dex.Builder) {
		args := b.Regs(2)
		b.ConstStr(args, "zz-not-hex")
		b.ConstInt(args+1, 0x5A)
		r := b.Reg()
		b.Emit(dex.Instr{Op: dex.OpCallAPI, A: r, B: args, C: 2, Imm: int64(dex.APIDeobfuscate)})
		b.ReturnVoid()
	})
	if !IsRuntimeFault(err) {
		t.Errorf("bad hex: %v", err)
	}
}

func TestAPIRandAndSensors(t *testing.T) {
	h := newAPIHarness(t)
	res, _, err := h.run(func(b *dex.Builder) {
		bound := b.Reg()
		b.ConstInt(bound, 10)
		r := b.Reg()
		b.CallAPI(r, dex.APIRandInt, bound)
		b.Return(r)
	})
	if err != nil || res.Int < 0 || res.Int >= 10 {
		t.Errorf("randInt = %v, %v", res, err)
	}
	// randInt(0) is 0, not a fault.
	res, _, err = h.run(func(b *dex.Builder) {
		bound := b.Reg()
		b.ConstInt(bound, 0)
		r := b.Reg()
		b.CallAPI(r, dex.APIRandInt, bound)
		b.Return(r)
	})
	if err != nil || res.Int != 0 {
		t.Errorf("randInt(0) = %v, %v", res, err)
	}
	for _, api := range []dex.API{dex.APIGPSLatE6, dex.APIGPSLonE6, dex.APISensorLight, dex.APISensorTempC, dex.APITimeMillis, dex.APIRandPercent} {
		api := api
		if _, _, err := h.run(func(b *dex.Builder) {
			r := b.Reg()
			b.CallAPI(r, api)
			b.Return(r)
		}); err != nil {
			t.Errorf("%s: %v", api.Name(), err)
		}
	}
}

func TestLogCapAndContents(t *testing.T) {
	h := newAPIHarness(t)
	_, v, err := h.run(func(b *dex.Builder) {
		s := b.Reg()
		b.ConstStr(s, "line")
		i := b.Reg()
		lim := b.Reg()
		b.ConstInt(i, 0)
		b.ConstInt(lim, 50)
		b.Label("top")
		b.Branch(dex.OpIfGe, i, lim, "done")
		b.CallAPI(-1, dex.APILog, s)
		b.AddK(i, i, 1)
		b.Goto("top")
		b.Label("done")
		b.ReturnVoid()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.Logs()); got != 50 {
		t.Errorf("logs = %d", got)
	}
	if !strings.HasPrefix(v.Logs()[0], "line") {
		t.Error("log content mangled")
	}
}

func TestReflectCallGuards(t *testing.T) {
	h := newAPIHarness(t)
	// Reflecting into reflectCall itself is rejected.
	_, _, err := h.run(func(b *dex.Builder) {
		n := b.Reg()
		b.ConstStr(n, "reflectCall")
		r := b.Reg()
		b.CallAPI(r, dex.APIReflectCall, n)
		b.ReturnVoid()
	})
	if !IsRuntimeFault(err) {
		t.Errorf("recursive reflection: %v", err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatal("expected RuntimeError")
	}
}
