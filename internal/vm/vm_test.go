package vm

import (
	"errors"
	"strings"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// buildTestApp assembles a small app exercising most of the
// instruction set, plus a sealed bomb payload at blob 0 triggered by
// App.armBomb(x) with constant 1234.
func buildTestApp(t *testing.T) (*dex.File, string) {
	t.Helper()
	f := dex.NewFile()
	app := &dex.Class{Name: "App", Fields: []dex.Field{
		{Name: "count", Init: dex.Int64(0)},
		{Name: "title", Init: dex.Str("start")},
	}}

	// add(a, b) = a + b
	b := dex.NewBuilder(f, "add", 2)
	r := b.Reg()
	b.Arith(dex.OpAdd, r, 0, 1)
	b.Return(r)
	app.AddMethod(b.MustFinish())

	// classify(x): switch -> 10/20/-1
	b = dex.NewBuilder(f, "classify", 1)
	out := b.Reg()
	b.Switch(0, []int64{1, 2}, []string{"one", "two"}, "other")
	b.Label("one")
	b.ConstInt(out, 10)
	b.Return(out)
	b.Label("two")
	b.ConstInt(out, 20)
	b.Return(out)
	b.Label("other")
	b.ConstInt(out, -1)
	b.Return(out)
	app.AddMethod(b.MustFinish())

	// bump(): count++ via statics, returns new count
	b = dex.NewBuilder(f, "bump", 0)
	r = b.Reg()
	b.GetStatic(r, "App.count")
	b.AddK(r, r, 1)
	b.PutStatic("App.count", r)
	b.Return(r)
	app.AddMethod(b.MustFinish())

	// sum3(): arrays — build [1,2,3], sum it
	b = dex.NewBuilder(f, "sum3", 0)
	n := b.Reg()
	arr := b.Reg()
	b.ConstInt(n, 3)
	b.Emit(dex.Instr{Op: dex.OpNewArr, A: arr, B: n, C: -1})
	idx := b.Reg()
	val := b.Reg()
	for i := int64(0); i < 3; i++ {
		b.ConstInt(idx, i)
		b.ConstInt(val, i+1)
		b.Emit(dex.Instr{Op: dex.OpAStore, A: arr, B: idx, C: val})
	}
	acc := b.Reg()
	b.ConstInt(acc, 0)
	ln := b.Reg()
	b.Emit(dex.Instr{Op: dex.OpArrLen, A: ln, B: arr, C: -1})
	i := b.Reg()
	b.ConstInt(i, 0)
	b.Label("loop")
	b.Branch(dex.OpIfGe, i, ln, "done")
	cur := b.Reg()
	b.Emit(dex.Instr{Op: dex.OpALoad, A: cur, B: arr, C: i})
	b.Arith(dex.OpAdd, acc, acc, cur)
	b.AddK(i, i, 1)
	b.Goto("loop")
	b.Label("done")
	b.Return(acc)
	app.AddMethod(b.MustFinish())

	// greet(name) = "hi " + name, logs it
	b = dex.NewBuilder(f, "greet", 1)
	pre := b.Reg()
	b.ConstStr(pre, "hi ")
	outS := b.Reg()
	b.CallAPI(outS, dex.APIStrConcat, pre, 0)
	b.CallAPI(-1, dex.APILog, outS)
	b.Return(outS)
	app.AddMethod(b.MustFinish())

	// callAdd() = add(20, 22) via invoke
	b = dex.NewBuilder(f, "callAdd", 0)
	a1 := b.Regs(2)
	b.ConstInt(a1, 20)
	b.ConstInt(a1+1, 22)
	res := b.Reg()
	b.Invoke(res, "App.add", a1, a1+1)
	b.Return(res)
	app.AddMethod(b.MustFinish())

	// readEnv() = api_level
	b = dex.NewBuilder(f, "readEnv", 0)
	nameReg := b.Reg()
	b.ConstStr(nameReg, "api_level")
	res = b.Reg()
	b.CallAPI(res, dex.APIGetEnvInt, nameReg)
	b.Return(res)
	app.AddMethod(b.MustFinish())

	// Payload: run() checks the public key and crashes on mismatch.
	pf := dex.NewFile()
	pc := &dex.Class{Name: "Bomb0"}
	pb := dex.NewBuilder(pf, "run", 0)
	pcur := pb.Reg()
	pb.CallAPI(pcur, dex.APIGetPublicKey, []int32{}...)
	ko := pb.Reg()
	pb.ConstStr(ko, "KO_PLACEHOLDER")
	eq := pb.Reg()
	pb.CallAPI(eq, dex.APIStrEquals, pcur, ko)
	pb.BranchZ(dex.OpIfNez, eq, "ok")
	pb.CallAPI(-1, dex.APICrash, []int32{}...)
	pb.Label("ok")
	pb.ReturnVoid()
	pm := pb.MustFinish()
	pm.Flags = dex.FlagSynthetic
	pc.AddMethod(pm)
	if err := pf.AddClass(pc); err != nil {
		t.Fatal(err)
	}

	// armBomb(x): if sha1(x|salt) == Hc { h = decryptLoad(0, x, salt); invoke(h) }
	const salt = "salt-test"
	cval := dex.Int64(1234)
	hc := lockbox.HashHex(cval, salt)
	sealed, err := lockbox.SealValue(dex.Encode(pf), cval, salt)
	if err != nil {
		t.Fatal(err)
	}
	blob := f.AddBlob(sealed)

	b = dex.NewBuilder(f, "armBomb", 1)
	saltReg := b.Reg()
	b.ConstStr(saltReg, salt)
	h := b.Reg()
	b.CallAPI(h, dex.APISHA1Hex, 0, saltReg)
	hcReg := b.Reg()
	b.ConstStr(hcReg, hc)
	eq2 := b.Reg()
	b.CallAPI(eq2, dex.APIStrEquals, h, hcReg)
	b.BranchZ(dex.OpIfEqz, eq2, "skip")
	blobReg := b.Reg()
	b.ConstInt(blobReg, blob)
	hd := b.Reg()
	b.CallAPI(hd, dex.APIDecryptLoad, blobReg, 0, saltReg)
	b.CallAPI(-1, dex.APIInvokePayload, hd)
	b.Label("skip")
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())

	// forceDecrypt(x): calls decryptLoad unconditionally (what forced
	// execution does).
	b = dex.NewBuilder(f, "forceDecrypt", 1)
	saltReg = b.Reg()
	b.ConstStr(saltReg, salt)
	blobReg = b.Reg()
	b.ConstInt(blobReg, blob)
	hd = b.Reg()
	b.CallAPI(hd, dex.APIDecryptLoad, blobReg, 0, saltReg)
	b.CallAPI(-1, dex.APIInvokePayload, hd)
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())

	// spin(): endless loop (budget test)
	b = dex.NewBuilder(f, "spin", 0)
	b.Label("top")
	b.Goto("top")
	app.AddMethod(b.MustFinish())

	// recurse(): unbounded recursion (depth test)
	b = dex.NewBuilder(f, "recurse", 0)
	b.Invoke(-1, "App.recurse")
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())

	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	return f, hc
}

// installApp signs and installs the file, patching KO_PLACEHOLDER with
// the actual developer key so the payload detects honestly.
func installApp(t *testing.T, f *dex.File, repackaged bool) *VM {
	t.Helper()
	devKey, err := apk.NewKeyPair(101)
	if err != nil {
		t.Fatal(err)
	}
	// Patch Ko: payloads carry the developer's public key.
	patched := patchPayloadKey(t, f, devKey.PublicKeyHex())
	pkg, err := apk.Sign(apk.Build("test.app", patched, apk.Resources{
		Strings: []string{"Tap to start"}, Author: "dev", Icon: []byte{1},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	if repackaged {
		attacker, err := apk.NewKeyPair(999)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err = apk.Repackage(pkg, attacker, apk.RepackOptions{NewAuthor: "pirate"})
		if err != nil {
			t.Fatal(err)
		}
	}
	dev := android.EmulatorLab(1)[0]
	v, err := New(pkg, dev, Options{Seed: 7, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// patchPayloadKey reseals blob 0 with KO replaced by the real key.
func patchPayloadKey(t *testing.T, f *dex.File, ko string) *dex.File {
	t.Helper()
	if len(f.Blobs) == 0 {
		return f
	}
	out := f.Clone()
	cval := dex.Int64(1234)
	const salt = "salt-test"
	plain, err := lockbox.OpenValue(out.Blobs[0], cval, salt)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := dex.Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pf.Strings {
		if s == "KO_PLACEHOLDER" {
			pf.Strings[i] = ko
		}
	}
	sealed, err := lockbox.SealValue(dex.Encode(pf), cval, salt)
	if err != nil {
		t.Fatal(err)
	}
	out.Blobs[0] = sealed
	return out
}

func mustInvoke(t *testing.T, v *VM, name string, args ...dex.Value) dex.Value {
	t.Helper()
	res, err := v.Invoke(name, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestArithmeticAndCalls(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	if got := mustInvoke(t, v, "App.add", dex.Int64(2), dex.Int64(3)); got.Int != 5 {
		t.Errorf("add = %v", got)
	}
	if got := mustInvoke(t, v, "App.callAdd"); got.Int != 42 {
		t.Errorf("callAdd = %v", got)
	}
	if got := mustInvoke(t, v, "App.sum3"); got.Int != 6 {
		t.Errorf("sum3 = %v", got)
	}
}

func TestSwitchDispatch(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	for in, want := range map[int64]int64{1: 10, 2: 20, 3: -1, -5: -1} {
		if got := mustInvoke(t, v, "App.classify", dex.Int64(in)); got.Int != want {
			t.Errorf("classify(%d) = %v, want %d", in, got.Int, want)
		}
	}
}

func TestStaticsPersistAcrossInvocations(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	if got := mustInvoke(t, v, "App.bump"); got.Int != 1 {
		t.Errorf("first bump = %v", got)
	}
	if got := mustInvoke(t, v, "App.bump"); got.Int != 2 {
		t.Errorf("second bump = %v", got)
	}
	if got := v.Static("App.count"); got.Int != 2 {
		t.Errorf("static = %v", got)
	}
	if got := v.Static("App.title"); got.Str != "start" {
		t.Errorf("title init = %v", got)
	}
}

func TestStringAPIsAndLog(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	got := mustInvoke(t, v, "App.greet", dex.Str("bob"))
	if got.Str != "hi bob" {
		t.Errorf("greet = %v", got)
	}
	logs := v.Logs()
	if len(logs) != 1 || logs[0] != "hi bob" {
		t.Errorf("logs = %v", logs)
	}
}

func TestEnvRead(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	got := mustInvoke(t, v, "App.readEnv")
	if got.Int != v.Device().GetInt("api_level", 0) {
		t.Errorf("readEnv = %v", got)
	}
}

func TestBombDormantOnWrongInput(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, true) // repackaged!
	// Wrong trigger values leave the bomb dormant even on a pirated app.
	for _, x := range []int64{0, 1, 1233, 999999} {
		mustInvoke(t, v, "App.armBomb", dex.Int64(x))
	}
	if len(v.OuterTriggered()) != 0 || len(v.Responses()) != 0 {
		t.Fatal("bomb fired without the trigger constant")
	}
}

func TestBombFiresOnRepackagedApp(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, true)
	_, err := v.Invoke("App.armBomb", dex.Int64(1234))
	if !IsCrash(err) {
		t.Fatalf("want crash on repackaged app, got %v", err)
	}
	if len(v.OuterTriggered()) != 1 {
		t.Error("outer trigger not recorded")
	}
	runs := v.DetectionRuns()
	if runs["Bomb0"] == 0 {
		t.Error("detection check not attributed to payload")
	}
	resp := v.Responses()
	if len(resp) != 1 || resp[0].Kind != RespCrash || resp[0].BombID != "Bomb0" {
		t.Errorf("responses = %+v", resp)
	}
}

func TestBombSilentOnGenuineApp(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false) // original signature
	mustInvoke(t, v, "App.armBomb", dex.Int64(1234))
	if len(v.Responses()) != 0 {
		t.Fatal("false positive: response on genuine app")
	}
	if v.DetectionRuns()["Bomb0"] == 0 {
		t.Error("detection should have run (and stayed silent)")
	}
}

func TestDecryptCacheIsOneTimeEffort(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	mustInvoke(t, v, "App.armBomb", dex.Int64(1234))
	mustInvoke(t, v, "App.armBomb", dex.Int64(1234))
	if v.DetectionRuns()["Bomb0"] != 2 {
		t.Errorf("detection runs = %v, want 2", v.DetectionRuns()["Bomb0"])
	}
	if len(v.OuterTriggered()) != 1 {
		t.Error("same blob should appear once")
	}
}

func TestForcedDecryptFails(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, true)
	_, err := v.Invoke("App.forceDecrypt", dex.Int64(42)) // wrong value
	if !IsDecryptFailure(err) {
		t.Fatalf("forced execution should corrupt, got %v", err)
	}
	if !AbnormalExit(err) {
		t.Error("decrypt failure is an abnormal exit")
	}
	if len(v.OuterTriggered()) != 0 {
		t.Error("failed decrypt must not count as outer trigger")
	}
}

func TestHookSubstitutesResult(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, true)
	// Attacker hooks getPublicKey to return the original key — the
	// vtable-hijack attack from §4.1.
	devKey, _ := apk.NewKeyPair(101)
	v.Hook(dex.APIGetPublicKey, func(call APICall) (dex.Value, bool, error) {
		return dex.Str(devKey.PublicKeyHex()), true, nil
	})
	mustInvoke(t, v, "App.armBomb", dex.Int64(1234))
	if len(v.Responses()) != 0 {
		t.Error("hooked key should suppress detection")
	}
	v.Unhook(dex.APIGetPublicKey)
	_, err := v.Invoke("App.armBomb", dex.Int64(1234))
	if !IsCrash(err) {
		t.Error("after unhooking, detection should fire")
	}
}

func TestObserverSeesCalls(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, true)
	var seen []string
	v.Observe(func(call APICall) { seen = append(seen, call.API.Name()) })
	v.Invoke("App.armBomb", dex.Int64(1234))
	joined := strings.Join(seen, ",")
	for _, want := range []string{"sha1Hex", "decryptLoad", "invokePayload", "getPublicKey"} {
		if !strings.Contains(joined, want) {
			t.Errorf("observer missed %s in %s", want, joined)
		}
	}
}

func TestBudgetAndDepth(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	if _, err := v.Invoke("App.spin"); !errors.Is(err, ErrBudget) {
		t.Errorf("spin: want ErrBudget, got %v", err)
	}
	if _, err := v.Invoke("App.recurse"); !errors.Is(err, ErrDepth) {
		t.Errorf("recurse: want ErrDepth, got %v", err)
	}
	if _, err := v.Invoke("App.noSuchMethod"); err == nil {
		t.Error("unknown method should error")
	}
}

func TestRuntimeFaults(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}
	// div(a, b) = a / b
	b := dex.NewBuilder(f, "div", 2)
	r := b.Reg()
	b.Arith(dex.OpDiv, r, 0, 1)
	b.Return(r)
	app.AddMethod(b.MustFinish())
	// typeErr(): "x" + 1 (arith on string)
	b = dex.NewBuilder(f, "typeErr", 0)
	s := b.Reg()
	b.ConstStr(s, "x")
	o := b.Reg()
	b.ConstInt(o, 1)
	r2 := b.Reg()
	b.Arith(dex.OpAdd, r2, s, o)
	b.Return(r2)
	app.AddMethod(b.MustFinish())
	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}

	v := installApp(t, f, false)
	if _, err := v.Invoke("App.div", dex.Int64(6), dex.Int64(2)); err != nil {
		t.Errorf("6/2 failed: %v", err)
	}
	_, err := v.Invoke("App.div", dex.Int64(1), dex.Int64(0))
	if !IsRuntimeFault(err) {
		t.Errorf("div by zero: %v", err)
	}
	_, err = v.Invoke("App.typeErr")
	if !IsRuntimeFault(err) {
		t.Errorf("type confusion: %v", err)
	}
	if !AbnormalExit(err) {
		t.Error("runtime fault is abnormal")
	}
}

func TestDelayedResponses(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}
	b := dex.NewBuilder(f, "delay", 0)
	ms := b.Regs(2)
	b.ConstInt(ms, 5000)
	b.ConstInt(ms+1, int64(RespWarn))
	b.CallAPI(-1, dex.APIDelayBomb, ms, ms+1)
	b.ReturnVoid()
	app.AddMethod(b.MustFinish())
	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	v := installApp(t, f, false)
	mustInvoke(t, v, "App.delay")
	if v.PendingDelayed() != 1 {
		t.Fatal("delayed response not armed")
	}
	if err := v.AdvanceIdle(1000); err != nil {
		t.Fatal(err)
	}
	if len(v.Responses()) != 0 {
		t.Error("fired too early")
	}
	if err := v.AdvanceIdle(5000); err != nil {
		t.Fatal(err)
	}
	resp := v.Responses()
	if len(resp) != 1 || resp[0].Kind != RespWarn {
		t.Errorf("responses = %+v", resp)
	}
	if v.PendingDelayed() != 0 {
		t.Error("delayed queue not drained")
	}
}

func TestReflectionAndDeobfuscation(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}
	// SSN-style: name = deobfuscate(obf, key); key2 = reflectCall(name)
	obf := make([]byte, len("getPublicKey"))
	for i, c := range []byte("getPublicKey") {
		obf[i] = c ^ 0x5A
	}
	b := dex.NewBuilder(f, "reflected", 0)
	so := b.Reg()
	b.ConstStr(so, hexEncode(obf))
	k := b.Reg()
	b.ConstInt(k, 0x5A)
	name := b.Reg()
	b.CallAPI(name, dex.APIDeobfuscate, so, k)
	res := b.Reg()
	b.CallAPI(res, dex.APIReflectCall, name)
	b.Return(res)
	app.AddMethod(b.MustFinish())
	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	v := installApp(t, f, false)
	got := mustInvoke(t, v, "App.reflected")
	if got.Str != v.Package().PublicKeyHex() {
		t.Errorf("reflected getPublicKey = %q", got.Str)
	}
	// A hook on the *target* API intercepts reflected calls too.
	v.Hook(dex.APIGetPublicKey, func(call APICall) (dex.Value, bool, error) {
		return dex.Str("faked"), true, nil
	})
	if got := mustInvoke(t, v, "App.reflected"); got.Str != "faked" {
		t.Error("hook did not intercept reflected call")
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, x := range b {
		out = append(out, digits[x>>4], digits[x&0xF])
	}
	return string(out)
}

func TestProfilerCounts(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	for i := 0; i < 5; i++ {
		mustInvoke(t, v, "App.callAdd")
	}
	prof := v.Profile()
	if prof["App.callAdd"] != 5 {
		t.Errorf("callAdd count = %d", prof["App.callAdd"])
	}
	if prof["App.add"] != 5 {
		t.Errorf("add count = %d (inner calls must profile)", prof["App.add"])
	}
	v.ResetProfile()
	if len(v.Profile()) != 0 {
		t.Error("reset did not clear profile")
	}
}

func TestClockAdvances(t *testing.T) {
	f, _ := buildTestApp(t)
	v := installApp(t, f, false)
	t0 := v.NowTicks()
	mustInvoke(t, v, "App.sum3")
	if v.NowTicks() <= t0 {
		t.Error("clock did not advance")
	}
	v.SetClockMillis(12_345)
	if v.NowMillis() != 12_345 {
		t.Errorf("NowMillis = %d", v.NowMillis())
	}
	if err := v.AdvanceIdle(100); err != nil {
		t.Fatal(err)
	}
	if v.NowMillis() != 12_445 {
		t.Errorf("after idle: %d", v.NowMillis())
	}
}

func TestInstallRejectsTamperedPackage(t *testing.T) {
	f, _ := buildTestApp(t)
	devKey, _ := apk.NewKeyPair(101)
	pkg, err := apk.Sign(apk.Build("x", f, apk.Resources{}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Dex[0] ^= 0xFF
	if _, err := New(pkg, android.EmulatorLab(1)[0], Options{}); err == nil {
		t.Fatal("tampered package must not install")
	}
}

func TestHandlersAndInitLists(t *testing.T) {
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}
	for _, spec := range []struct {
		name  string
		flags dex.MethodFlags
	}{
		{"onCreate", dex.FlagInit},
		{"onTap", dex.FlagHandler},
		{"onSwipe", dex.FlagHandler},
		{"helper", 0},
	} {
		b := dex.NewBuilder(f, spec.name, 0)
		b.ReturnVoid()
		m := b.MustFinish()
		m.Flags = spec.flags
		app.AddMethod(m)
	}
	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	v := installApp(t, f, false)
	h := v.Handlers()
	if len(h) != 2 || h[0] != "App.onSwipe" && h[0] != "App.onTap" {
		t.Errorf("handlers = %v", h)
	}
	if got := v.InitMethods(); len(got) != 1 || got[0] != "App.onCreate" {
		t.Errorf("init methods = %v", got)
	}
}

func TestResponseKindString(t *testing.T) {
	for k := RespCrash; k <= RespReport; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d missing name", k)
		}
	}
	if ResponseKind(99).String() != "?" {
		t.Error("unknown kind should render ?")
	}
}
