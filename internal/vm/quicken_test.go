package vm

import (
	"fmt"
	"strings"
	"testing"

	"bombdroid/internal/dex"
)

// qmOf quickens a raw file and returns the named method's quickened
// form for structural assertions.
func qmOf(t *testing.T, file *dex.File, name string) *qmethod {
	t.Helper()
	img := buildImage(file)
	qm := img.unit.q.byName[name]
	if qm == nil {
		t.Fatalf("no quickened method %q", name)
	}
	return qm
}

// TestQuickenSwitchTableSorted pins the load-time switch rewrite:
// matches sorted ascending for binary search, every target (including
// the default) resolved to an index inside the quickened code — the
// dispatch loop trusts these without rechecking.
func TestQuickenSwitchTableSorted(t *testing.T) {
	f := badFile(2, []dex.Instr{
		{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 0},
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 1},
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 2},
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 3},
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},
	}, dex.SwitchTable{Cases: []dex.SwitchCase{
		{Match: 9, Target: 1}, {Match: -4, Target: 2}, {Match: 3, Target: 3},
	}, Default: 4})
	qm := qmOf(t, f, "Bad.m")
	if len(qm.tables) != 1 {
		t.Fatalf("got %d quickened tables, want 1", len(qm.tables))
	}
	qt := qm.tables[0]
	wantM := []int64{-4, 3, 9}
	wantT := []int32{2, 3, 1}
	for i := range wantM {
		if qt.matches[i] != wantM[i] || qt.targets[i] != wantT[i] {
			t.Fatalf("sorted table[%d] = (%d,%d), want (%d,%d)",
				i, qt.matches[i], qt.targets[i], wantM[i], wantT[i])
		}
	}
	for i, tg := range append(append([]int32(nil), qt.targets...), qt.def) {
		if tg < 0 || int(tg) >= len(qm.code) {
			t.Fatalf("target %d = %d escapes quickened code [0,%d)", i, tg, len(qm.code))
		}
	}
}

// TestQuickenSwitchDuplicateMatch pins first-match-wins among
// duplicated match values — the reference interpreter's linear scan
// takes the earliest case, so the stable sort plus leftmost-equal
// binary search must too.
func TestQuickenSwitchDuplicateMatch(t *testing.T) {
	f := badFile(2, []dex.Instr{
		{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 7},
		{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 0},
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 111}, // pc 2: first case
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 222}, // pc 4: duplicate case
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},
	}, dex.SwitchTable{Cases: []dex.SwitchCase{
		{Match: 7, Target: 2}, {Match: 7, Target: 4},
	}, Default: 2})
	for _, ref := range []bool{false, true} {
		v := fuzzVM(f, Options{Reference: ref})
		res, err := v.Invoke("Bad.m")
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		if res.Int != 111 {
			t.Errorf("reference=%v: duplicate match took value %d, want 111 (first case)", ref, res.Int)
		}
	}
}

// TestQuickenMalformedSwitchTargets is the regression test for
// load-time bounds checking of switch targets: a table pointing at
// pc 500 (and a default of -2) must fault only when the bad arm is
// actually selected, with the reference interpreter's exact error —
// including the original out-of-range pc.
func TestQuickenMalformedSwitchTargets(t *testing.T) {
	mk := func(sel int64) *dex.File {
		return badFile(1, []dex.Instr{
			{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: sel},
			{Op: dex.OpSwitch, A: 0, B: -1, C: -1, Imm: 0},
			{Op: dex.OpReturnVoid},
		}, dex.SwitchTable{Cases: []dex.SwitchCase{{Match: 3, Target: 500}}, Default: -2})
	}
	for _, tc := range []struct {
		sel    int64
		wantPC int
	}{
		{sel: 3, wantPC: 500}, // matched case target out of range
		{sel: 8, wantPC: -2},  // default target out of range
	} {
		for _, ref := range []bool{false, true} {
			v := fuzzVM(mk(tc.sel), Options{Reference: ref})
			_, err := v.Invoke("Bad.m")
			if err == nil {
				t.Fatalf("sel=%d reference=%v: expected a fault", tc.sel, ref)
			}
			want := fmt.Sprintf("at pc %d: control fell outside the method", tc.wantPC)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("sel=%d reference=%v: fault %q does not contain %q", tc.sel, ref, err, want)
			}
		}
	}
	// The quickened table itself must hold no out-of-range indices:
	// bad targets are rewritten to in-range trap instructions.
	qm := qmOf(t, mk(3), "Bad.m")
	qt := qm.tables[0]
	for _, tg := range append(append([]int32(nil), qt.targets...), qt.def) {
		if tg < 0 || int(tg) >= len(qm.code) {
			t.Fatalf("quickened switch target %d escapes code [0,%d)", tg, len(qm.code))
		}
	}
}

// TestQuickenFusesDyads pins that the dominant dyads actually fuse,
// and that the second instruction of a pair keeps its plain form (the
// jump-into-the-middle guarantee).
func TestQuickenFusesDyads(t *testing.T) {
	f := badFile(4, []dex.Instr{
		{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 2}, // pc 0: fuses with pc 1
		{Op: dex.OpAdd, A: 1, B: 0, C: 0},                // pc 1: plain form kept
		{Op: dex.OpConstInt, A: 2, B: -1, C: -1, Imm: 4}, // pc 2: fuses with pc 3
		{Op: dex.OpIfLt, A: 1, B: 2, C: 6},               // pc 3
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},           // pc 4 (not taken: 4 < 4 false)
		{Op: dex.OpNop},                                  // pc 5
		{Op: dex.OpReturn, A: 2, B: -1, C: -1},           // pc 6
	})
	qm := qmOf(t, f, "Bad.m")
	if qm.code[0].op != qFuseConstArith {
		t.Errorf("pc 0: op %d, want qFuseConstArith", qm.code[0].op)
	}
	if qm.code[1].op != qArith {
		t.Errorf("pc 1: op %d, want plain qArith (jump target form)", qm.code[1].op)
	}
	if qm.code[2].op != qFuseConstIf {
		t.Errorf("pc 2: op %d, want qFuseConstIf", qm.code[2].op)
	}
	if qm.code[0].op2 != dex.OpAdd {
		t.Errorf("fused pair lost its second opcode: %v", qm.code[0].op2)
	}
	for _, ref := range []bool{false, true} {
		v := fuzzVM(f, Options{Reference: ref})
		res, err := v.Invoke("Bad.m")
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		if res.Int != 4 {
			t.Errorf("reference=%v: got %d, want 4", ref, res.Int)
		}
	}
}

// TestQuickenFusedBudgetParity pins mid-pair accounting: when the step
// budget runs out between the two halves of a fused pair, the
// quickened path must fail at exactly the same step, clock tick, and
// error as two reference dispatches.
func TestQuickenFusedBudgetParity(t *testing.T) {
	f := badFile(4, []dex.Instr{
		{Op: dex.OpConstInt, A: 0, B: -1, C: -1, Imm: 2},
		{Op: dex.OpAdd, A: 1, B: 0, C: 0},
		{Op: dex.OpReturn, A: 1, B: -1, C: -1},
	})
	run := func(ref bool) (int64, int64, error) {
		v := fuzzVM(f, Options{Reference: ref, MaxSteps: 1})
		_, err := v.Invoke("Bad.m")
		return v.steps, v.NowTicks(), err
	}
	qs, qc, qerr := run(false)
	rs, rc, rerr := run(true)
	if qerr != ErrBudget || rerr != ErrBudget {
		t.Fatalf("errors: quickened %v, reference %v, want ErrBudget", qerr, rerr)
	}
	if qs != rs || qc != rc {
		t.Errorf("mid-pair budget state diverged: quickened (steps=%d, ticks=%d), reference (steps=%d, ticks=%d)",
			qs, qc, rs, rc)
	}
}

// TestQuickenConstStrOutOfRange pins the shared ""-slot rewrite for
// out-of-range string indices in unvalidated code.
func TestQuickenConstStrOutOfRange(t *testing.T) {
	f := badFile(1, []dex.Instr{
		{Op: dex.OpConstStr, A: 0, B: -1, C: -1, Imm: 999},
		{Op: dex.OpReturn, A: 0, B: -1, C: -1},
	})
	for _, ref := range []bool{false, true} {
		v := fuzzVM(f, Options{Reference: ref})
		res, err := v.Invoke("Bad.m")
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		if res.Kind != dex.KindStr || res.Str != "" {
			t.Errorf("reference=%v: got %v, want empty string", ref, res)
		}
	}
}
