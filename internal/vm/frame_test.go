package vm

import (
	"testing"

	"bombdroid/internal/dex"
)

// buildFrameApp is a tiny app for frame-recycling tests: fresh()
// returns a register that is never written, dirty() scribbles over a
// wide register file, and chain() stacks frames via nested invokes.
func buildFrameApp(t *testing.T) *dex.File {
	t.Helper()
	f := dex.NewFile()
	app := &dex.Class{Name: "App"}

	// fresh() returns an untouched register: must always be Nil, even
	// when the frame rides a recycled register slice.
	b := dex.NewBuilder(f, "fresh", 0)
	r := b.Reg()
	b.Return(r)
	app.AddMethod(b.MustFinish())

	// dirty() fills a wide register file with non-zero values.
	b = dex.NewBuilder(f, "dirty", 0)
	for i := int64(0); i < 24; i++ {
		b.ConstInt(b.Reg(), 1000+i)
	}
	out := b.Reg()
	b.ConstInt(out, 1)
	b.Return(out)
	app.AddMethod(b.MustFinish())

	// add(a, b) and chain() = add(add(1,2), 4) exercise nested frames
	// so caller and callee recycle through the same free list.
	b = dex.NewBuilder(f, "add", 2)
	r = b.Reg()
	b.Arith(dex.OpAdd, r, 0, 1)
	b.Return(r)
	app.AddMethod(b.MustFinish())

	b = dex.NewBuilder(f, "chain", 0)
	a := b.Regs(2)
	b.ConstInt(a, 1)
	b.ConstInt(a+1, 2)
	inner := b.Reg()
	b.Invoke(inner, "App.add", a, a+1)
	four := b.Reg()
	b.ConstInt(four, 4)
	res := b.Reg()
	b.Invoke(res, "App.add", inner, four)
	b.Return(res)
	app.AddMethod(b.MustFinish())

	if err := f.AddClass(app); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFrameReuseZeroesRegisters pins the frame free-list contract: a
// recycled register slice must be indistinguishable from a fresh one.
// dirty() retires a slice full of stale ints; fresh() then picks it up
// and must still observe Nil in its unwritten register.
func TestFrameReuseZeroesRegisters(t *testing.T) {
	v := installApp(t, buildFrameApp(t), false)
	if got := mustInvoke(t, v, "App.fresh"); got.Kind != dex.KindNil {
		t.Fatalf("fresh frame register = %v, want Nil", got)
	}
	if got := mustInvoke(t, v, "App.dirty"); got.Int != 1 {
		t.Fatalf("dirty = %v, want 1", got)
	}
	if got := mustInvoke(t, v, "App.fresh"); got.Kind != dex.KindNil {
		t.Fatalf("recycled frame register = %v, want Nil (stale value leaked)", got)
	}
}

// TestFrameReuseNestedCalls runs a nested-invoke chain repeatedly so
// frames cycle through the free list at several depths; results must
// stay stable across reuse.
func TestFrameReuseNestedCalls(t *testing.T) {
	v := installApp(t, buildFrameApp(t), false)
	for i := 0; i < 50; i++ {
		if got := mustInvoke(t, v, "App.chain"); got.Int != 7 {
			t.Fatalf("iteration %d: chain = %v, want 7", i, got)
		}
	}
}
