package sim

import (
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/chaos"
	"bombdroid/internal/core"
	"bombdroid/internal/report"
	"bombdroid/internal/vm"
)

// chaosPrepared builds a pirated protected app whose bombs all
// respond with RespReport, so every detonation feeds the report
// pipeline — the configuration the exactly-once assertion needs.
func chaosPrepared(t *testing.T, seed int64) (*apk.Package, Surface) {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "chaos", Seed: seed, TargetLOC: 1500})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(71)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("chaos", app.File, apk.Resources{Strings: []string{"a"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := core.ProtectPackage(orig, key, core.Options{
		Seed:      seed,
		Responses: []vm.ResponseKind{vm.RespReport},
	})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(919)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		t.Fatal(err)
	}
	return pirated, SurfaceOf(app)
}

// TestChaosCampaignFailsClosedAndDeliversExactlyOnce is the PR's
// acceptance campaign: ciphertext corruption + dex bit rot + env
// misreporting on the devices, drop/dup/delay/reorder on the event
// channel, and a market outage spanning the first stretch of the
// campaign to force a circuit-breaker trip. The invariants:
//
//  1. zero panics — every bomb-path fault fails closed;
//  2. the report pipeline delivers each unique detection exactly
//     once despite the channel faults and the mid-campaign outage.
func TestChaosCampaignFailsClosedAndDeliversExactlyOnce(t *testing.T) {
	pirated, surf := chaosPrepared(t, 301)
	capMs := int64(20 * 60_000)
	profile := chaos.Overlay(chaos.Harsh, chaos.Profile{
		Name:        "campaign",
		CorruptBlob: 0.5, TruncateBlob: 0.2, BitFlipDex: 0.3,
		DropEvent: 0.05,
	})
	cr, err := RunChaosCampaign(pirated, surf, ChaosOptions{
		Sessions: 12,
		CapMs:    capMs,
		Seed:     5,
		Profile:  profile,
		// Market down for sessions 0-4: submissions there must retry
		// through a tripped breaker and settle after recovery.
		SinkOutages: [][2]int64{{0, 5 * capMs}},
		Pipeline: report.Config{
			MaxAttempts:  200,
			MaxBackoffMs: 5 * 60_000,
			Seed:         5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos campaign: %d/%d sessions triggered, %d reports, %d unique, "+
		"vmFaults=%d installRejects=%d panics=%d breaker=%v dead=%d faults=%v pipeline=%+v",
		cr.Successes, cr.Sessions, cr.Reports, cr.UniqueDetects,
		cr.VMFaults, cr.InstallRejects, cr.Panics, cr.BreakerTripped,
		cr.DeadLetters, cr.Faults, cr.Pipeline)

	if cr.Panics != 0 {
		t.Fatalf("%d sessions panicked — a bomb-path fault escaped containment", cr.Panics)
	}
	if cr.VMFaults == 0 && cr.InstallRejects == 0 {
		t.Error("campaign injected no bomb-path faults; profile rates too low to prove anything")
	}
	if cr.UniqueDetects == 0 {
		t.Fatal("no detections submitted; campaign exercised nothing")
	}
	if !cr.ExactlyOnce() {
		t.Errorf("exactly-once violated: %d unique submitted, %d unique delivered, max per key %d",
			cr.UniqueDetects, cr.SinkUnique, cr.SinkMaxPerKey)
	}
	if !cr.BreakerTripped {
		t.Error("market outage never tripped the circuit breaker")
	}
	if cr.DeadLetters != 0 {
		t.Errorf("%d events dead-lettered; retry budget should outlast the outage", cr.DeadLetters)
	}
	if cr.Pipeline.Duplicates == 0 {
		t.Error("no duplicate submissions were injected/deduped")
	}
	if cr.Pipeline.Retries == 0 {
		t.Error("no retries happened; outage did not bite")
	}
}

// TestChaosCampaignDeterministic: the same seed reproduces the same
// campaign bit for bit — the property that makes a failing campaign
// debuggable.
func TestChaosCampaignDeterministic(t *testing.T) {
	pirated, surf := chaosPrepared(t, 303)
	run := func() ChaosCampaignResult {
		cr, err := RunChaosCampaign(pirated, surf, ChaosOptions{
			Sessions: 4, CapMs: 10 * 60_000, Seed: 9, Profile: chaos.Mild,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	a, b := run(), run()
	if a.Successes != b.Successes || a.Reports != b.Reports ||
		a.VMFaults != b.VMFaults || a.UniqueDetects != b.UniqueDetects ||
		a.Pipeline != b.Pipeline {
		t.Errorf("campaign not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Error("fault tallies diverged")
	}
	for k, v := range a.Faults {
		if b.Faults[k] != v {
			t.Errorf("fault %q: %d vs %d", k, v, b.Faults[k])
		}
	}
}

// TestChaosCampaignCleanProfileMatchesNormal: under the zero profile
// the chaos path reduces to an ordinary campaign — no faults, no
// rejects, and detections still flow.
func TestChaosCampaignCleanProfileMatchesNormal(t *testing.T) {
	pirated, surf := chaosPrepared(t, 305)
	cr, err := RunChaosCampaign(pirated, surf, ChaosOptions{
		Sessions: 6, CapMs: 30 * 60_000, Seed: 11, Profile: chaos.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Panics != 0 || cr.InstallRejects != 0 || cr.VMFaults != 0 {
		t.Errorf("zero profile injected faults: %+v", cr)
	}
	if cr.UniqueDetects == 0 || !cr.ExactlyOnce() {
		t.Errorf("clean campaign should deliver its detections exactly once: %+v", cr)
	}
	if cr.BreakerTripped {
		t.Error("breaker tripped with a healthy sink")
	}
}
