package sim

import (
	"context"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/chaos"
	"bombdroid/internal/core"
	"bombdroid/internal/report"
	"bombdroid/internal/vm"
)

// chaosPrepared builds a pirated protected app whose bombs all
// respond with RespReport, so every detonation feeds the report
// pipeline — the configuration the exactly-once assertion needs.
func chaosPrepared(t *testing.T, seed int64) (*apk.Package, Surface) {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "chaos", Seed: seed, TargetLOC: 1500})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(71)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("chaos", app.File, apk.Resources{Strings: []string{"a"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := core.ProtectPackage(orig, key, core.Options{
		Seed:      seed,
		Responses: []vm.ResponseKind{vm.RespReport},
	})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(919)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		t.Fatal(err)
	}
	return pirated, SurfaceOf(app)
}

// TestChaosCampaignFailsClosedAndDeliversExactlyOnce is the PR's
// acceptance campaign: ciphertext corruption + dex bit rot + env
// misreporting on the devices, drop/dup/delay/reorder on the event
// channel, and a market outage spanning the first stretch of the
// campaign to force a circuit-breaker trip. The invariants:
//
//  1. zero panics — every bomb-path fault fails closed;
//  2. the report pipeline delivers each unique detection exactly
//     once despite the channel faults and the mid-campaign outage.
func TestChaosCampaignFailsClosedAndDeliversExactlyOnce(t *testing.T) {
	pirated, surf := chaosPrepared(t, 301)
	capMs := int64(20 * 60_000)
	profile := chaos.Overlay(chaos.Harsh, chaos.Profile{
		Name:        "campaign",
		CorruptBlob: 0.5, TruncateBlob: 0.2, BitFlipDex: 0.3,
		DropEvent: 0.05,
	})
	cr, err := RunChaos(context.Background(), pirated, surf, ChaosOptions{
		Sessions: 12,
		CapMs:    capMs,
		Seed:     5,
		Profile:  profile,
		// Market down for sessions 0-4: submissions there must retry
		// through a tripped breaker and settle after recovery.
		SinkOutages: [][2]int64{{0, 5 * capMs}},
		Pipeline: []report.Option{
			report.WithMaxAttempts(200),
			report.WithMaxBackoffMs(5 * 60_000),
			report.WithSeed(5),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos campaign: %d/%d sessions triggered, %d reports, %d unique, "+
		"vmFaults=%d installRejects=%d panics=%d breaker=%v dead=%d faults=%v pipeline=%+v",
		cr.Successes, cr.Sessions, cr.Reports, cr.UniqueDetects,
		cr.VMFaults, cr.InstallRejects, cr.Panics, cr.BreakerTripped,
		cr.DeadLetters, cr.Faults, cr.Pipeline)

	if cr.Panics != 0 {
		t.Fatalf("%d sessions panicked — a bomb-path fault escaped containment", cr.Panics)
	}
	if cr.VMFaults == 0 && cr.InstallRejects == 0 {
		t.Error("campaign injected no bomb-path faults; profile rates too low to prove anything")
	}
	if cr.UniqueDetects == 0 {
		t.Fatal("no detections submitted; campaign exercised nothing")
	}
	if !cr.ExactlyOnce() {
		t.Errorf("exactly-once violated: %d unique submitted, %d unique delivered, max per key %d",
			cr.UniqueDetects, cr.SinkUnique, cr.SinkMaxPerKey)
	}
	if !cr.BreakerTripped {
		t.Error("market outage never tripped the circuit breaker")
	}
	if cr.DeadLetters != 0 {
		t.Errorf("%d events dead-lettered; retry budget should outlast the outage", cr.DeadLetters)
	}
	if cr.Pipeline.Duplicates == 0 {
		t.Error("no duplicate submissions were injected/deduped")
	}
	if cr.Pipeline.Retries == 0 {
		t.Error("no retries happened; outage did not bite")
	}
}

// TestChaosCampaignDeterministic: the same seed reproduces the same
// campaign bit for bit — the property that makes a failing campaign
// debuggable.
func TestChaosCampaignDeterministic(t *testing.T) {
	pirated, surf := chaosPrepared(t, 303)
	run := func() ChaosCampaignResult {
		cr, err := RunChaos(context.Background(), pirated, surf, ChaosOptions{
			Sessions: 4, CapMs: 10 * 60_000, Seed: 9, Profile: chaos.Mild,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	a, b := run(), run()
	if a.Successes != b.Successes || a.Reports != b.Reports ||
		a.VMFaults != b.VMFaults || a.UniqueDetects != b.UniqueDetects ||
		a.Pipeline != b.Pipeline {
		t.Errorf("campaign not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if len(a.Faults) != len(b.Faults) {
		t.Error("fault tallies diverged")
	}
	for k, v := range a.Faults {
		if b.Faults[k] != v {
			t.Errorf("fault %q: %d vs %d", k, v, b.Faults[k])
		}
	}
}

// TestChaosBreakerTransitionsAndGauges runs the Harsh-with-outage
// grid cell and checks the obs view of the pipeline: the breaker's
// state-transition log replays exactly under virtual time, every
// transition is a legal edge of the state machine, and the
// dead-letter depth gauge tracks the ledger.
func TestChaosBreakerTransitionsAndGauges(t *testing.T) {
	pirated, surf := chaosPrepared(t, 307)
	capMs := int64(20 * 60_000)
	opts := ChaosOptions{
		Sessions: 10,
		CapMs:    capMs,
		Seed:     13,
		Profile:  chaos.Overlay(chaos.Harsh, chaos.Profile{Name: "outage"}),
		// Outage long enough to trip and re-trip; breaker threshold
		// lowered so sparse detection events still reach it (the same
		// shaping exp.ChaosResilience uses).
		SinkOutages: [][2]int64{{0, int64(10) * capMs / 4}},
		Pipeline: []report.Option{
			report.WithMaxAttempts(200), report.WithMaxBackoffMs(5 * 60_000),
			report.WithBreakerThreshold(3),
		},
	}
	run := func() ChaosCampaignResult {
		cr, err := RunChaos(context.Background(), pirated, surf, opts)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	a, b := run(), run()

	if len(a.Breaker) == 0 {
		t.Fatal("outage campaign produced no breaker transitions")
	}
	// Virtual time makes the transition sequence replayable exactly.
	if len(a.Breaker) != len(b.Breaker) {
		t.Fatalf("transition logs differ in length: %d vs %d", len(a.Breaker), len(b.Breaker))
	}
	for i := range a.Breaker {
		if a.Breaker[i] != b.Breaker[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a.Breaker[i], b.Breaker[i])
		}
	}
	// Every transition is a legal edge, chained from "closed".
	legal := map[string]map[string]bool{
		"closed":    {"open": true},
		"open":      {"half-open": true},
		"half-open": {"open": true, "closed": true},
	}
	state := "closed"
	lastMs := int64(-1)
	for i, tr := range a.Breaker {
		if tr.From != state {
			t.Fatalf("transition %d: from %q, machine was in %q", i, tr.From, state)
		}
		if !legal[tr.From][tr.To] {
			t.Fatalf("transition %d: illegal edge %s→%s", i, tr.From, tr.To)
		}
		if tr.AtMs < lastMs {
			t.Fatalf("transition %d: time went backwards (%d after %d)", i, tr.AtMs, lastMs)
		}
		state, lastMs = tr.To, tr.AtMs
	}
	if state != "closed" {
		t.Errorf("breaker ended %q; the flushed pipeline should have recovered", state)
	}
	trips := 0
	for _, tr := range a.Breaker {
		if tr.From == "closed" && tr.To == "open" {
			trips++
		}
	}
	if int64(trips) != a.Pipeline.BreakerTrips {
		t.Errorf("log has %d closed→open edges, BreakerTrips counter says %d",
			trips, a.Pipeline.BreakerTrips)
	}

	// The merged campaign registry carries the pipeline gauges: dead
	// letter depth equals the ledger, queue fully drained.
	if got, want := a.Obs.Gauge("report_dead_letter_depth").Value(), int64(a.DeadLetters); got != want {
		t.Errorf("dead-letter depth gauge = %d, ledger has %d", got, want)
	}
	if got := a.Obs.Gauge("report_queue_depth").Value(); got != 0 {
		t.Errorf("queue depth gauge = %d after flush, want 0", got)
	}
	if a.Obs.Counter("report_backoff_ms_total").Value() == 0 {
		t.Error("outage produced no accumulated backoff")
	}
}

// TestChaosCampaignCleanProfileMatchesNormal: under the zero profile
// the chaos path reduces to an ordinary campaign — no faults, no
// rejects, and detections still flow.
func TestChaosCampaignCleanProfileMatchesNormal(t *testing.T) {
	pirated, surf := chaosPrepared(t, 305)
	cr, err := RunChaos(context.Background(), pirated, surf, ChaosOptions{
		Sessions: 6, CapMs: 30 * 60_000, Seed: 11, Profile: chaos.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Panics != 0 || cr.InstallRejects != 0 || cr.VMFaults != 0 {
		t.Errorf("zero profile injected faults: %+v", cr)
	}
	if cr.UniqueDetects == 0 || !cr.ExactlyOnce() {
		t.Errorf("clean campaign should deliver its detections exactly once: %+v", cr)
	}
	if cr.BreakerTripped {
		t.Error("breaker tripped with a healthy sink")
	}
}
