package sim

import (
	"context"
	"fmt"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/chaos"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
	"bombdroid/internal/vm"
)

// ChaosOptions configures a fault-injected campaign.
type ChaosOptions struct {
	Sessions int
	CapMs    int64
	Seed     int64
	Profile  chaos.Profile
	// SinkOutages schedules market-side outage windows in campaign
	// virtual ms ([start,end)); deliveries inside a window fail, which
	// should trip and later recover the pipeline's circuit breaker.
	SinkOutages [][2]int64
	// Pipeline adjusts the report pipeline configuration on top of
	// report.DefaultConfig. The campaign seeds the pipeline's jitter
	// RNG from Seed unless a report.WithSeed option here overrides it.
	Pipeline []report.Option
	// Sink is the terminal sink behind the faulted channel (nil = a
	// fresh report.MemorySink). cmd/loadgen points this at a
	// report.HTTPSink to replay a chaos campaign's event stream into a
	// live marketd. The SinkUnique/SinkMaxPerKey result fields are
	// only populated for a *report.MemorySink, where the campaign can
	// see per-key counts.
	Sink report.Sink
	// Obs, when set, receives the campaign's metrics: the campaign runs
	// against a private registry (so per-campaign numbers stay exact)
	// which is merged into Obs at the end.
	Obs *obs.Registry
}

// ChaosCampaignResult aggregates a campaign run under fault
// injection: the ordinary campaign metrics, plus everything needed to
// check the two resilience invariants — the bomb lifecycle failed
// closed (no panics, faults contained and ledgered) and the report
// pipeline delivered each unique detection exactly once.
type ChaosCampaignResult struct {
	CampaignResult
	Profile        string
	Faults         map[string]int // injector tallies by fault kind
	VMFaults       int            // bomb-path faults contained by fail-closed VMs
	Panics         int            // sessions that panicked (must be 0)
	InstallRejects int            // corrupted images cleanly rejected at load
	BreakerTripped bool           // the circuit breaker opened at least once
	Pipeline       report.Stats
	UniqueDetects  int // distinct (app,bomb,user) detections submitted
	SinkUnique     int // distinct detections the market actually received
	SinkMaxPerKey  int // 1 on an exactly-once run
	DeadLetters    int
	// Obs is the campaign's metrics registry (session counters, VM
	// opcode profile, fault-injection tallies, merged pipeline
	// counters). The int fields above are thin reads of it, kept for
	// existing callers.
	Obs *obs.Registry
	// Breaker is the pipeline's breaker state-transition log in
	// virtual-time order.
	Breaker []report.BreakerTransition
}

// ExactlyOnce reports whether every unique submitted detection
// reached the sink exactly one time.
func (r ChaosCampaignResult) ExactlyOnce() bool {
	return r.SinkUnique == r.UniqueDetects && (r.UniqueDetects == 0 || r.SinkMaxPerKey == 1)
}

// RunChaosCampaign plays a fault-injected campaign with background
// context.
//
// Deprecated: use RunChaos.
func RunChaosCampaign(pkg *apk.Package, surf Surface, opts ChaosOptions) (ChaosCampaignResult, error) {
	return RunChaos(context.Background(), pkg, surf, opts)
}

// RunChaosCampaignCtx is RunChaosCampaign with cancellation.
//
// Deprecated: use RunChaos.
func RunChaosCampaignCtx(ctx context.Context, pkg *apk.Package, surf Surface, opts ChaosOptions) (ChaosCampaignResult, error) {
	return RunChaos(ctx, pkg, surf, opts)
}

// RunChaos plays a population of user sessions against the packaged
// app with the profile's faults injected at every layer: ciphertext
// corruption at decrypt time, dex bit rot at load time, environment
// misreporting at read time, and channel faults (drop/dup/delay/
// reorder plus scheduled outages) between the devices and the market
// sink. It is the canonical chaos-campaign entry point.
//
// Sessions run on a shared campaign clock: session i occupies the
// window [i*CapMs, (i+1)*CapMs). The report pipeline is ticked as the
// campaign advances and flushed at the end, so delayed and retried
// events settle before the result is assembled.
//
// Cancelling ctx stops the campaign between sessions and inside each
// session's event loop, returning ctx.Err() with whatever was
// aggregated so far discarded.
func RunChaos(ctx context.Context, pkg *apk.Package, surf Surface, opts ChaosOptions) (ChaosCampaignResult, error) {
	if opts.Sessions == 0 {
		opts.Sessions = 20
	}
	if opts.CapMs == 0 {
		opts.CapMs = 60 * 60_000
	}
	inj := chaos.NewInjector(opts.Profile, opts.Seed)
	sink := opts.Sink
	if sink == nil {
		sink = report.NewMemorySink()
	}
	// Caller options are applied after the campaign's seed default, so
	// report.WithSeed in opts.Pipeline wins — same precedence the old
	// Config-based field had.
	pipeOpts := append([]report.Option{report.WithSeed(opts.Seed)}, opts.Pipeline...)
	pipe := report.NewPipeline(&chaos.FlakySink{Inner: sink, Inj: inj, Outages: opts.SinkOutages}, pipeOpts...)

	// The campaign tallies live in a private registry (the ad-hoc
	// counter fields this struct used to carry are now thin reads of
	// it); opts.Obs receives a merge at the end.
	reg := obs.NewRegistry()
	cVMFaults := reg.Counter("chaos_vm_faults_total")
	cPanics := reg.Counter("chaos_panics_total")
	cRejects := reg.Counter("chaos_install_rejects_total")

	out := ChaosCampaignResult{
		CampaignResult: CampaignResult{Sessions: opts.Sessions, MinMs: 1 << 62},
		Profile:        opts.Profile.Name,
		Obs:            reg,
	}
	submitted := make(map[string]bool)
	var sum int64

	for i := 0; i < opts.Sessions; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		base := int64(i) * opts.CapMs
		user := fmt.Sprintf("user%d", i)
		seed := opts.Seed + int64(i)*101
		dev := android.SamplePopulation(user, chaosRng(seed))

		sr, vmFaults, outcome := runChaosSession(ctx, pkg, surf, dev, inj, SessionOptions{
			CapMs: opts.CapMs, Seed: seed, StartClockMs: -1, Obs: reg,
		})
		cVMFaults.Add(int64(vmFaults))
		switch outcome {
		case sessionPanicked:
			cPanics.Inc()
			continue
		case sessionRejected:
			cRejects.Inc()
			continue
		}

		if sr.Triggered {
			out.Successes++
			sum += sr.TimeToFirstMs
			if sr.TimeToFirstMs < out.MinMs {
				out.MinMs = sr.TimeToFirstMs
			}
			if sr.TimeToFirstMs > out.MaxMs {
				out.MaxMs = sr.TimeToFirstMs
			}
		}
		if sr.AbnormalExit || len(sr.Responses) > 0 {
			out.Complaints++
		}

		// Detections leave the device over the faulted channel: each
		// RespReport becomes a detection event, possibly duplicated,
		// delayed, or swapped with its neighbour before submission.
		// TimeMs is the detonation's true position on the campaign
		// clock — the session window start plus the response's offset
		// into the session — so downstream latency breakdowns (trace
		// e2e, market verdict timelines) measure from detonation, not
		// from the window edge.
		var batch []report.Event
		for _, r := range sr.Responses {
			if r.Kind != vm.RespReport {
				continue
			}
			out.Reports++
			detMs := base + (r.TimeMillis - sr.StartClockMs)
			ev := report.Event{App: pkg.Name, Bomb: r.BombID, User: user, TimeMs: detMs, Info: r.Info}
			if inj.Hit(opts.Profile.DelayEvent, "event-delay") {
				ev.TimeMs += inj.DelayMs()
			}
			batch = append(batch, ev)
			if inj.Hit(opts.Profile.DupEvent, "event-dup") {
				batch = append(batch, ev)
			}
		}
		for j := 1; j < len(batch); j++ {
			if inj.Hit(opts.Profile.ReorderEvent, "event-reorder") {
				batch[j-1], batch[j] = batch[j], batch[j-1]
			}
		}
		for _, ev := range batch {
			submitted[ev.Key()] = true
			pipe.Submit(ev, ev.TimeMs)
		}
		pipe.Tick(base + opts.CapMs)
		if pipe.BreakerOpen() {
			out.BreakerTripped = true
		}
	}

	endMs := int64(opts.Sessions) * opts.CapMs
	pipe.Flush(endMs, endMs+10*60_000)

	if out.Successes > 0 {
		out.AvgMs = sum / int64(out.Successes)
	} else {
		out.MinMs = 0
	}
	out.Faults = inj.Counts()
	for kind, n := range out.Faults {
		reg.Counter(obs.L("chaos_fault_injections_total", "kind", kind)).Add(int64(n))
	}
	out.VMFaults = int(cVMFaults.Value())
	out.Panics = int(cPanics.Value())
	out.InstallRejects = int(cRejects.Value())
	out.Pipeline = pipe.Stats()
	if out.Pipeline.BreakerTrips > 0 {
		out.BreakerTripped = true
	}
	out.UniqueDetects = len(submitted)
	if ms, ok := sink.(*report.MemorySink); ok {
		out.SinkUnique = ms.UniqueKeys()
		out.SinkMaxPerKey = ms.MaxPerKey()
	}
	out.DeadLetters = len(pipe.DeadLetters())
	out.Breaker = pipe.BreakerTransitions()
	pipe.Obs().MergeInto(reg)
	if opts.Obs != nil {
		reg.MergeInto(opts.Obs)
	}
	return out, nil
}

// chaosRng derives a device-sampling rng from a session seed.
func chaosRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

type sessionOutcome int

const (
	sessionRan sessionOutcome = iota
	sessionRejected
	sessionPanicked
)

// runChaosSession builds a fail-closed VM over a possibly corrupted
// image, injects env faults, and drives one session with a panic
// barrier. A corrupted image that fails to load is a clean rejection;
// a panic anywhere in the lifecycle is the invariant violation the
// harness exists to catch.
func runChaosSession(ctx context.Context, pkg *apk.Package, surf Surface, dev *android.Device, inj *chaos.Injector, opts SessionOptions) (sr SessionResult, vmFaults int, outcome sessionOutcome) {
	defer func() {
		if recover() != nil {
			outcome = sessionPanicked
		}
	}()
	opts = opts.withDefaults()

	img := pkg
	vmOpts := vm.Options{Seed: opts.Seed, FailClosed: true, BlobFault: inj.BlobFault(), Obs: opts.Obs}
	var v *vm.VM
	var err error
	if mut, hit := inj.CorruptDex(pkg.Dex); hit {
		// Post-verification image corruption: the signature already
		// passed at install, so the corrupted bytes load unverified.
		img = pkg.Clone()
		img.Dex = mut
		v, err = vm.NewUnverified(img, dev, vmOpts)
	} else {
		v, err = vm.New(img, dev, vmOpts)
	}
	if err != nil {
		return SessionResult{}, 0, sessionRejected
	}
	inj.ApplyEnvFaults(v)

	sr, err = driveSession(ctx, v, surf, opts)
	if err != nil {
		// driveSession errors are fail-closed outcomes (budget, launch
		// fault), not crashes; treat as an uneventful session.
		return SessionResult{}, len(v.Faults()), sessionRan
	}
	return sr, len(v.Faults()), sessionRan
}
