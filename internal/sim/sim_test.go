package sim

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
)

func prepared(t *testing.T, seed int64) (*apk.Package, *apk.Package, Surface, *core.Result) {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "sim", Seed: seed, TargetLOC: 1500})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(61)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("sim", app.File, apk.Resources{Strings: []string{"a"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, res, err := core.ProtectPackage(orig, key, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(909)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		t.Fatal(err)
	}
	return prot, pirated, SurfaceOf(app), res
}

func TestUserSessionTriggersOnPirated(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 201)
	rng := rand.New(rand.NewSource(7))
	triggered := 0
	var firstTimes []int64
	for i := 0; i < 12; i++ {
		dev := android.SamplePopulation("u", rng)
		sr, err := RunUserSession(pirated, surf, dev, SessionOptions{
			Seed: int64(i) * 13, StartClockMs: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Triggered {
			triggered++
			firstTimes = append(firstTimes, sr.TimeToFirstMs)
			if sr.TimeToFirstMs <= 0 || sr.TimeToFirstMs > 60*60_000 {
				t.Errorf("time to first bomb %dms out of range", sr.TimeToFirstMs)
			}
		}
		if sr.EventsPlayed == 0 {
			t.Error("session played no events")
		}
	}
	if triggered == 0 {
		t.Fatal("no user session triggered any bomb on the pirated app")
	}
	t.Logf("triggered %d/12 sessions; first-bomb times: %v", triggered, firstTimes)
}

func TestUserSessionSilentOnGenuine(t *testing.T) {
	prot, _, surf, _ := prepared(t, 203)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		dev := android.SamplePopulation("u", rng)
		sr, err := RunUserSession(prot, surf, dev, SessionOptions{
			CapMs: 10 * 60_000, Seed: int64(i) * 17, StartClockMs: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Responses) != 0 {
			t.Fatalf("false positive response on genuine app: %+v", sr.Responses)
		}
		if sr.AbnormalExit {
			t.Fatal("genuine app crashed during normal use")
		}
		// Detection may well have run (that is Triggered); it must
		// simply produce no response.
	}
}

func TestCampaignAggregation(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 207)
	cr, err := Run(context.Background(), pirated, surf, CampaignOptions{N: 15, CapMs: 45 * 60_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Sessions != 15 {
		t.Errorf("sessions = %d", cr.Sessions)
	}
	if cr.Successes == 0 {
		t.Fatal("campaign found nothing")
	}
	if cr.MinMs > cr.MaxMs || cr.AvgMs < cr.MinMs || cr.AvgMs > cr.MaxMs {
		t.Errorf("stats inconsistent: min=%d avg=%d max=%d", cr.MinMs, cr.AvgMs, cr.MaxMs)
	}
	t.Logf("campaign: %d/%d sessions, min=%.1fs avg=%.1fs max=%.1fs, %d reports, %d complaints",
		cr.Successes, cr.Sessions,
		float64(cr.MinMs)/1000, float64(cr.AvgMs)/1000, float64(cr.MaxMs)/1000,
		cr.Reports, cr.Complaints)
}

func TestCampaignOnGenuineAppHasNoComplaints(t *testing.T) {
	prot, _, surf, _ := prepared(t, 211)
	cr, err := Run(context.Background(), prot, surf, CampaignOptions{N: 6, CapMs: 8 * 60_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Complaints != 0 || cr.Reports != 0 {
		t.Errorf("genuine app produced %d complaints, %d reports", cr.Complaints, cr.Reports)
	}
}

// TestCampaignCancellation: a cancelled context aborts the campaign
// promptly at any worker count — no goroutine leaks, and the error is
// the context's, whether the cancel lands before the pool starts or
// mid-flight.
func TestCampaignCancellation(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 213)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Run(ctx, pirated, surf, CampaignOptions{N: 8, CapMs: 45 * 60_000, Seed: 3, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// Mid-flight cancellation: fire after the campaign is under way.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, pirated, surf, CampaignOptions{N: 64, CapMs: 45 * 60_000, Seed: 3, Workers: 4})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// Either the campaign finished before the cancel (nil) or it
		// reports the cancellation; both are prompt returns.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel: err = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not return after cancellation")
	}
}

// TestChaosCampaignCancellation pins the same contract for the
// fault-injected campaign runner.
func TestChaosCampaignCancellation(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 217)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunChaos(ctx, pirated, surf, ChaosOptions{Sessions: 6, Seed: 9})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
