package sim

import (
	"context"
	"reflect"
	"testing"
)

// TestCampaignWorkersDeterministic pins the parallel-campaign
// contract: any worker count produces the same CampaignResult as the
// serial path, field for field, because sessions draw per-index seeds
// and devices are sampled before the fan-out.
func TestCampaignWorkersDeterministic(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 205)
	serial, err := Run(context.Background(), pirated, surf, CampaignOptions{N: 12, CapMs: 5 * 60_000, Seed: 4242, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := Run(context.Background(), pirated, surf, CampaignOptions{N: 12, CapMs: 5 * 60_000, Seed: 4242, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: result %+v differs from serial %+v", workers, par, serial)
		}
	}
}

// TestCampaignNoSuccessesZeroMin runs a campaign whose session cap is
// too short for any bomb to fire: Successes must be 0 and the MinMs
// accumulator sentinel must not leak into the result.
func TestCampaignNoSuccessesZeroMin(t *testing.T) {
	_, pirated, surf, _ := prepared(t, 206)
	cr, err := Run(context.Background(), pirated, surf, CampaignOptions{N: 6, CapMs: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Successes != 0 {
		t.Fatalf("1ms cap still triggered %d times", cr.Successes)
	}
	if cr.MinMs != 0 {
		t.Errorf("MinMs = %d, want 0 for a campaign with no successes", cr.MinMs)
	}
	if cr.MaxMs != 0 || cr.AvgMs != 0 {
		t.Errorf("Max/Avg = %d/%d, want 0/0 with no successes", cr.MaxMs, cr.AvgMs)
	}
	if cr.Sessions != 6 {
		t.Errorf("Sessions = %d, want 6", cr.Sessions)
	}
}
