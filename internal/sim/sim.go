// Package sim simulates the user side of decentralized repackaging
// detection: ordinary users on population-sampled devices playing an
// app through its UI until a bomb detonates (the measurement behind
// Table 3), plus population-scale campaigns aggregating detections
// across many users — the "user devices are made use of to detect
// repackaging" premise.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/obs"
	"bombdroid/internal/vm"
)

// Surface is the app's event surface a user interacts with.
type Surface struct {
	Handlers       []string
	ParamDomain    int64
	HandlerScreens map[string]int64
	ScreenField    string
}

// SurfaceOf extracts the surface from a generated app.
func SurfaceOf(app *appgen.App) Surface {
	return Surface{
		Handlers:       app.Handlers,
		ParamDomain:    app.Config.ParamDomain,
		HandlerScreens: app.HandlerScreens,
		ScreenField:    app.ScreenField,
	}
}

// SessionOptions configures one user session.
type SessionOptions struct {
	CapMs      int64 // give up after this much virtual play (default 60 min)
	EventGapMs int64 // user pacing (default 450 ms)
	Seed       int64
	// StartClockMs positions the session's wall clock; users play at
	// all hours (negative = randomize from seed).
	StartClockMs int64
	// Obs, when set, receives session metrics (trigger-latency
	// histogram, session/report counters, session→detonate spans) and
	// is threaded into the VM for opcode/dispatch profiles. Sessions
	// only add to counters and observe histograms — commutative ops —
	// so a registry shared across parallel sessions stays
	// deterministic. Nil = no instrumentation, no overhead.
	Obs *obs.Registry
}

// SessionResult is one user's session outcome.
type SessionResult struct {
	Triggered     bool  // a bomb ran its detection (paper: "bomb triggered")
	TimeToFirstMs int64 // virtual ms until the first triggered bomb
	FirstBomb     string
	Responses     []vm.ResponseEvent
	// StartClockMs is the wall position the session's virtual clock
	// started at (the resolved value when SessionOptions.StartClockMs
	// asked for a randomized start). Response TimeMillis values are on
	// this clock, so TimeMillis - StartClockMs is a response's offset
	// into the session — the detonation stamp campaign aggregators put
	// on outbound report.Events.
	StartClockMs   int64
	AbnormalExit   bool // the user saw a crash/freeze
	EventsPlayed   int
	OuterSatisfied int
}

// RunUserSession plays the packaged app on the given device like a
// human user: UI-valid events on active widgets, human pacing, until
// the first bomb triggers or the cap expires.
func RunUserSession(pkg *apk.Package, surf Surface, dev *android.Device, opts SessionOptions) (SessionResult, error) {
	return RunUserSessionCtx(context.Background(), pkg, surf, dev, opts)
}

// RunUserSessionCtx is RunUserSession with cancellation: the session
// driver checks ctx between user events and returns ctx.Err() when it
// fires, so a long session unwinds within one event's work.
func RunUserSessionCtx(ctx context.Context, pkg *apk.Package, surf Surface, dev *android.Device, opts SessionOptions) (SessionResult, error) {
	opts = opts.withDefaults()
	v, err := vm.New(pkg, dev, vm.Options{Seed: opts.Seed, Obs: opts.Obs})
	if err != nil {
		return SessionResult{}, fmt.Errorf("sim: install: %w", err)
	}
	return driveSession(ctx, v, surf, opts)
}

func (opts SessionOptions) withDefaults() SessionOptions {
	if opts.CapMs == 0 {
		opts.CapMs = 60 * 60_000
	}
	if opts.EventGapMs == 0 {
		opts.EventGapMs = 450
	}
	return opts
}

// driveSession runs the user-behaviour loop against an already
// constructed VM. Chaos campaigns build their own VMs (fault hooks,
// fail-closed mode, corrupted images) and share this driver, so
// faulted and clean sessions differ only in the injected faults.
func driveSession(ctx context.Context, v *vm.VM, surf Surface, opts SessionOptions) (SessionResult, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	start := opts.StartClockMs
	if start < 0 {
		start = rng.Int63n(7 * 86_400_000)
	}
	v.SetClockMillis(start)

	// App launch: process start, resource loading, first layout. On a
	// real device this is seconds, and it bounds the fastest possible
	// detection (the paper's fastest observed trigger is 8 s).
	if err := v.AdvanceIdle(2_500 + rng.Int63n(4_000)); err != nil {
		return SessionResult{}, err
	}

	var res SessionResult
	res.StartClockMs = start
	first := int64(-1)
	v.Observe(func(call vm.APICall) {
		if call.InPayload == "" || first >= 0 {
			return
		}
		switch call.API {
		case dex.APIGetPublicKey, dex.APIGetManifestDigest, dex.APICodeDigest:
			first = v.NowMillis() - start
			res.FirstBomb = call.InPayload
		}
	})

	for _, init := range v.InitMethods() {
		if _, err := v.Invoke(init); err != nil && vm.AbnormalExit(err) {
			res.AbnormalExit = true
		}
	}
	// Steady-state buffers reused across the event loop: the candidate
	// scratch for pickActive and the Invoke argument pair (a variadic
	// call with a spread slice passes the slice itself), so a session's
	// per-event work allocates nothing.
	scratch := make([]string, 0, len(surf.Handlers))
	argbuf := make([]dex.Value, 2)
	for first < 0 && v.NowMillis()-start < opts.CapMs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		h := pickActive(rng, surf, v, scratch)
		argbuf[0] = dex.Int64(rng.Int63n(surf.ParamDomain))
		argbuf[1] = dex.Int64(rng.Int63n(surf.ParamDomain))
		_, err := v.Invoke(h, argbuf...)
		res.EventsPlayed++
		if vm.AbnormalExit(err) {
			res.AbnormalExit = true
			break
		}
		if err := v.AdvanceIdle(opts.EventGapMs + rng.Int63n(opts.EventGapMs)); err != nil {
			res.AbnormalExit = true
			break
		}
	}
	if first >= 0 {
		res.Triggered = true
		res.TimeToFirstMs = first
	} else if res.AbnormalExit {
		// The crash itself is a detonation the user experienced.
		res.Triggered = true
		res.TimeToFirstMs = v.NowMillis() - start
	}
	res.Responses = v.Responses()
	res.OuterSatisfied = len(v.OuterTriggered())
	recordSession(opts.Obs, v, res, start)
	return res, nil
}

// recordSession publishes one completed session into reg: campaign
// counters, the trigger-latency histogram behind Table 3, a
// session→detonate span pair on the virtual clock, and the VM's
// buffered opcode counts. All writes are commutative, so a registry
// shared by parallel workers aggregates deterministically.
func recordSession(reg *obs.Registry, v *vm.VM, res SessionResult, startMs int64) {
	if reg == nil {
		return
	}
	reg.Counter("sim_sessions_total").Inc()
	reg.Counter("sim_events_total").Add(int64(res.EventsPlayed))
	sp := reg.StartSpan("session", startMs)
	if res.Triggered {
		reg.Counter("sim_sessions_triggered_total").Inc()
		reg.Histogram("sim_trigger_latency_ms", obs.LatencyBucketsMs).Observe(res.TimeToFirstMs)
		sp.Child("detonate", startMs).End(startMs + res.TimeToFirstMs)
	}
	for _, r := range res.Responses {
		if r.Kind == vm.RespReport {
			reg.Counter("sim_reports_total").Inc()
		}
	}
	if res.AbnormalExit || len(res.Responses) > 0 {
		reg.Counter("sim_complaints_total").Inc()
	}
	sp.End(v.NowMillis())
	v.FlushObs()
}

// pickActive selects a UI-valid handler. scratch is a caller-owned
// reusable buffer for the candidate list (the session loop calls this
// once per event).
func pickActive(rng *rand.Rand, surf Surface, v *vm.VM, scratch []string) string {
	if len(surf.HandlerScreens) == 0 || surf.ScreenField == "" {
		return surf.Handlers[rng.Intn(len(surf.Handlers))]
	}
	cur := v.Static(surf.ScreenField).Int
	active := scratch[:0]
	for _, h := range surf.Handlers {
		if scr, ok := surf.HandlerScreens[h]; ok && scr != -1 && scr != cur {
			continue
		}
		active = append(active, h)
	}
	if len(active) == 0 {
		return surf.Handlers[rng.Intn(len(surf.Handlers))]
	}
	return active[rng.Intn(len(active))]
}

// CampaignResult aggregates many user sessions (Table 3 rows and the
// market-response scenario).
type CampaignResult struct {
	Sessions  int
	Successes int
	MinMs     int64
	MaxMs     int64
	AvgMs     int64
	// Reports is the number of piracy reports that reached the
	// developer across the population.
	Reports int
	// Complaints counts sessions with user-hostile outcomes (crash,
	// freeze, warnings) — the bad-rating pressure of §1.
	Complaints int
}

// NoFirstTrigger is the MinMs accumulator sentinel used while a
// campaign has zero successes. It never escapes: Run
// normalizes MinMs to 0 on every return path (including errors) when
// Successes == 0, so a CampaignResult in the wild satisfies the
// invariant Successes == 0 => MinMs == MaxMs == AvgMs == 0. Consumers
// defending against future aggregation paths can still compare
// against it.
const NoFirstTrigger int64 = 1 << 62

// normalize enforces the zero-successes invariant on a result whose
// MinMs may still hold the accumulator sentinel.
func (c CampaignResult) normalize() CampaignResult {
	if c.Successes == 0 || c.MinMs >= NoFirstTrigger {
		c.MinMs = 0
	}
	return c
}

// CampaignOptions configures a population campaign for Run.
type CampaignOptions struct {
	// N is the number of user sessions to play.
	N int
	// CapMs bounds each session's virtual play time (0 = 60 min, via
	// SessionOptions defaults).
	CapMs int64
	// Seed derives the population draw and every per-session seed
	// (seed + i*101).
	Seed int64
	// Workers fans sessions across goroutines: 0 = one per CPU,
	// 1 = serial. Results are identical at any worker count.
	Workers int
	// Reg, when set, receives campaign metrics. Deterministic metrics
	// (session counters, trigger-latency histogram, VM opcode profile)
	// land via commutative updates, so SnapshotDeterministic is
	// byte-identical at any worker count; wall-clock throughput lands
	// in Volatile metrics excluded from that snapshot. Nil turns all
	// instrumentation off.
	Reg *obs.Registry
}

// RunCampaign plays n user sessions on population-sampled devices,
// fanned across one worker per CPU.
//
// Deprecated: use Run.
func RunCampaign(pkg *apk.Package, surf Surface, n int, capMs int64, seed int64) (CampaignResult, error) {
	return Run(context.Background(), pkg, surf, CampaignOptions{N: n, CapMs: capMs, Seed: seed})
}

// RunCampaignWorkers plays n user sessions on up to workers goroutines.
//
// Deprecated: use Run.
func RunCampaignWorkers(pkg *apk.Package, surf Surface, n int, capMs int64, seed int64, workers int) (CampaignResult, error) {
	return Run(context.Background(), pkg, surf, CampaignOptions{N: n, CapMs: capMs, Seed: seed, Workers: workers})
}

// RunCampaignObs is RunCampaignWorkers with a context and registry.
//
// Deprecated: use Run.
func RunCampaignObs(ctx context.Context, pkg *apk.Package, surf Surface, n int, capMs int64, seed int64, workers int, reg *obs.Registry) (CampaignResult, error) {
	return Run(ctx, pkg, surf, CampaignOptions{N: n, CapMs: capMs, Seed: seed, Workers: workers, Reg: reg})
}

// Run plays opts.N user sessions on population-sampled devices — the
// canonical campaign entry point (the measurement behind Table 3 and
// the population half of the market-response scenario). The campaign
// is embarrassingly parallel by construction — the paper's detection
// cost is amortized across an independent user population — and the
// implementation keeps it deterministic:
//
//   - devices are pre-sampled serially from the campaign RNG in
//     session order, so the population draw is identical at any
//     worker count;
//   - each session derives all remaining randomness from its own
//     seed (seed + i*101) and builds its own VM from the immutable
//     package, sharing nothing mutable with its siblings;
//   - results aggregate by session index, never by completion order.
//
// Cancelling ctx stops workers from claiming further sessions and
// unwinds in-flight sessions at their next event; the campaign then
// returns the context's error with the lowest cancelled index's
// partial aggregation discarded, exactly like a session error.
func Run(ctx context.Context, pkg *apk.Package, surf Surface, opts CampaignOptions) (CampaignResult, error) {
	n, capMs, seed, workers, reg := opts.N, opts.CapMs, opts.Seed, opts.Workers, opts.Reg
	wallStart := time.Now()
	rng := rand.New(rand.NewSource(seed))
	devs := make([]*android.Device, n)
	for i := range devs {
		devs[i] = android.SamplePopulation(fmt.Sprintf("user%d", i), rng)
	}
	srs := make([]SessionResult, n)
	errs := make([]error, n)
	run := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		srs[i], errs[i] = RunUserSessionCtx(ctx, pkg, surf, devs[i], SessionOptions{
			CapMs: capMs, Seed: seed + int64(i)*101, StartClockMs: -1, Obs: reg,
		})
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Workers stopped claiming; unclaimed sessions never ran, so the
		// aggregate would undercount silently. Report the cancellation.
		return CampaignResult{Sessions: n}.normalize(), err
	}

	out := CampaignResult{Sessions: n, MinMs: NoFirstTrigger}
	var sum int64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			// Mirror the serial engine: report the lowest-index error
			// with the sessions before it aggregated.
			return out.normalize(), errs[i]
		}
		sr := srs[i]
		if sr.Triggered {
			out.Successes++
			sum += sr.TimeToFirstMs
			if sr.TimeToFirstMs < out.MinMs {
				out.MinMs = sr.TimeToFirstMs
			}
			if sr.TimeToFirstMs > out.MaxMs {
				out.MaxMs = sr.TimeToFirstMs
			}
		}
		for _, r := range sr.Responses {
			if r.Kind == vm.RespReport {
				out.Reports++
			}
		}
		if sr.AbnormalExit || len(sr.Responses) > 0 {
			out.Complaints++
		}
	}
	if out.Successes > 0 {
		out.AvgMs = sum / int64(out.Successes)
	}
	if reg != nil {
		// Wall-clock throughput is scheduler-dependent by nature, so it
		// is Volatile: visible in operator snapshots, excluded from the
		// deterministic one.
		wallMs := time.Since(wallStart).Milliseconds()
		reg.Counter("sim_campaign_wall_ms_total", obs.Volatile()).Add(wallMs)
		if wallMs > 0 {
			reg.Gauge("sim_sessions_per_sec", obs.Volatile()).Set(int64(n) * 1000 / wallMs)
		}
	}
	return out.normalize(), nil
}
