// Package fuzz implements the four blackbox input generators the
// paper evaluates attackers with (Table 4): Monkey (uniform random,
// domain-oblivious), PUMA (UI-model aware: valid events only),
// AndroidHooker (valid events plus recorded-sequence replay), and
// Dynodroid (observation-guided: biases toward handlers that keep
// producing new program states). It also provides the shared driver
// that paces events on the virtual clock and the profiling run
// BombDroid's candidate selection uses (10,000 Dynodroid events +
// Traceview, paper §7.1).
//
// Concurrency: a Fuzzer is single-goroutine state, like the VM it
// drives. Monkey and PUMA are stateless, but AndroidHooker (replay
// history) and Dynodroid (novelty scores) mutate themselves on every
// Next/Observe, so parallel campaigns must give each goroutine its
// own instance — exp's Table 4 grid constructs a fresh fuzzer per
// cell rather than sharing one across runs.
package fuzz

import (
	"math/rand"
	"sort"

	"bombdroid/internal/dex"
	"bombdroid/internal/obs"
	"bombdroid/internal/vm"
)

// Event is one UI event: a handler invocation with two int params.
type Event struct {
	Handler string
	A, B    int64
}

// Context gives fuzzers the app's event surface. Handlers is the
// full widget set; Active is the subset enabled on the current UI
// screen. UI-model-aware fuzzers (PUMA, AndroidHooker, Dynodroid)
// draw from Active; Monkey taps blindly from Handlers.
type Context struct {
	Handlers []string
	Active   []string
	Domain   int64 // valid params are [0, Domain)
	Rng      *rand.Rand
}

// active returns the UI-enabled handlers (all handlers if no UI model
// was supplied).
func (c *Context) active() []string {
	if len(c.Active) > 0 {
		return c.Active
	}
	return c.Handlers
}

// Fuzzer generates an event stream. Implementations may carry
// per-campaign mutable state and are not safe for concurrent use;
// use one instance per goroutine.
type Fuzzer interface {
	Name() string
	Next(ctx *Context) Event
	// Observe receives post-event feedback: novelty is the number of
	// watched program variables that took never-seen values.
	Observe(ev Event, novelty int, abnormal bool)
}

// Monkey sends uniformly random events, including out-of-domain
// parameters and no notion of app state — the weakest generator.
type Monkey struct{}

// Name implements Fuzzer.
func (Monkey) Name() string { return "Monkey" }

// Next implements Fuzzer.
func (Monkey) Next(ctx *Context) Event {
	// Monkey taps random screen coordinates: over half its events land
	// on no widget at all (Handler == "" — the driver burns the time
	// without dispatching), and parameter values ignore the app's
	// meaningful domain.
	if ctx.Rng.Intn(100) < 55 {
		return Event{}
	}
	span := ctx.Domain * 4
	return Event{
		Handler: ctx.Handlers[ctx.Rng.Intn(len(ctx.Handlers))],
		A:       ctx.Rng.Int63n(span),
		B:       ctx.Rng.Int63n(span),
	}
}

// Observe implements Fuzzer.
func (Monkey) Observe(Event, int, bool) {}

// PUMA drives the UI model: valid handlers with in-domain parameters,
// uniformly.
type PUMA struct{}

// Name implements Fuzzer.
func (PUMA) Name() string { return "PUMA" }

// Next implements Fuzzer.
func (PUMA) Next(ctx *Context) Event {
	act := ctx.active()
	return Event{
		Handler: act[ctx.Rng.Intn(len(act))],
		A:       ctx.Rng.Int63n(ctx.Domain),
		B:       ctx.Rng.Int63n(ctx.Domain),
	}
}

// Observe implements Fuzzer.
func (PUMA) Observe(Event, int, bool) {}

// AndroidHooker sends valid events and replays short recorded
// sequences, re-exercising state-dependent paths.
type AndroidHooker struct {
	history []Event
	replay  []Event
}

// Name implements Fuzzer.
func (h *AndroidHooker) Name() string { return "AndroidHooker" }

// Next implements Fuzzer.
func (h *AndroidHooker) Next(ctx *Context) Event {
	if len(h.replay) > 0 {
		ev := h.replay[0]
		h.replay = h.replay[1:]
		return ev
	}
	if len(h.history) > 8 && ctx.Rng.Intn(5) == 0 {
		// Replay a recorded burst.
		start := ctx.Rng.Intn(len(h.history) - 4)
		h.replay = append(h.replay, h.history[start:start+4]...)
		return h.Next(ctx)
	}
	act := ctx.active()
	ev := Event{
		Handler: act[ctx.Rng.Intn(len(act))],
		A:       ctx.Rng.Int63n(ctx.Domain),
		B:       ctx.Rng.Int63n(ctx.Domain),
	}
	if len(h.history) < 4096 {
		h.history = append(h.history, ev)
	}
	return ev
}

// Observe implements Fuzzer.
func (h *AndroidHooker) Observe(Event, int, bool) {}

// Dynodroid is observation-guided: handlers that recently produced
// novel program states are favoured, and parameters sweep the domain
// systematically instead of sampling it, so equality guards on event
// parameters are eventually covered.
type Dynodroid struct {
	scores map[string]float64
	sweep  int64
}

// NewDynodroid returns a fresh guided fuzzer.
func NewDynodroid() *Dynodroid {
	return &Dynodroid{scores: make(map[string]float64)}
}

// Name implements Fuzzer.
func (d *Dynodroid) Name() string { return "Dynodroid" }

// Next implements Fuzzer.
func (d *Dynodroid) Next(ctx *Context) Event {
	act := ctx.active()
	total := 0.0
	for _, h := range act {
		total += d.score(h)
	}
	x := ctx.Rng.Float64() * total
	handler := act[len(act)-1]
	for _, h := range act {
		x -= d.score(h)
		if x <= 0 {
			handler = h
			break
		}
	}
	d.sweep++
	a := d.sweep % ctx.Domain
	b := (d.sweep / ctx.Domain) % ctx.Domain
	if ctx.Rng.Intn(3) == 0 {
		a = ctx.Rng.Int63n(ctx.Domain)
		b = ctx.Rng.Int63n(ctx.Domain)
	}
	return Event{Handler: handler, A: a, B: b}
}

func (d *Dynodroid) score(h string) float64 {
	s, ok := d.scores[h]
	if !ok {
		return 4.0 // unexplored handlers are attractive
	}
	return 0.25 + s
}

// Observe implements Fuzzer.
func (d *Dynodroid) Observe(ev Event, novelty int, abnormal bool) {
	s := d.scores[ev.Handler]
	d.scores[ev.Handler] = s*0.95 + float64(novelty)*0.5
}

// Result aggregates one fuzzing run.
type Result struct {
	Fuzzer        string
	Events        int
	VirtualMillis int64
	// OuterSatisfied lists blob indices whose outer trigger fired.
	OuterSatisfied []int64
	// DetectionRuns maps payload class -> detection executions (both
	// triggers satisfied).
	DetectionRuns map[string]int64
	Responses     []vm.ResponseEvent
	AbnormalExits int
}

// Options paces a run.
type Options struct {
	DurationMs  int64 // virtual run length
	EventGapMs  int64 // idle between events (default 250 ms)
	MaxEvents   int   // optional hard cap
	Seed        int64
	WatchFields []string // program variables used for novelty feedback

	// UI model (appgen exposes both): handlers gated per screen and
	// the static field holding the current screen. When set, the
	// driver recomputes the active handler set before every event.
	HandlerScreens map[string]int64
	ScreenField    string

	// Obs, when set, receives per-run counters (events, abnormal
	// exits, labeled by fuzzer), a virtual-time "fuzz" span, and the
	// VM's buffered opcode counts at the end of the run. All writes
	// are commutative, so a registry shared across a parallel fuzzer
	// grid aggregates deterministically.
	Obs *obs.Registry
}

// Run drives the app under the fuzzer for the configured virtual
// duration. Crashes and faults are recorded and the session continues
// (the attacker relaunches the app), preserving accumulated trigger
// state in the VM.
func Run(v *vm.VM, fz Fuzzer, domain int64, opts Options) Result {
	if opts.EventGapMs == 0 {
		opts.EventGapMs = 250
	}
	ctx := &Context{
		Handlers: v.Handlers(),
		Domain:   domain,
		Rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	res := Result{Fuzzer: fz.Name()}
	if len(ctx.Handlers) == 0 {
		return res
	}
	for _, init := range v.InitMethods() {
		if _, err := v.Invoke(init); err != nil && vm.AbnormalExit(err) {
			res.AbnormalExits++
		}
	}
	seen := make(map[string]map[string]bool, len(opts.WatchFields))
	for _, f := range opts.WatchFields {
		seen[f] = map[string]bool{}
	}
	start := v.NowMillis()
	for {
		if opts.MaxEvents > 0 && res.Events >= opts.MaxEvents {
			break
		}
		if v.NowMillis()-start >= opts.DurationMs {
			break
		}
		if len(opts.HandlerScreens) > 0 && opts.ScreenField != "" {
			cur := v.Static(opts.ScreenField).Int
			ctx.Active = ctx.Active[:0]
			for _, h := range ctx.Handlers {
				if scr, ok := opts.HandlerScreens[h]; ok && scr != -1 && scr != cur {
					continue
				}
				ctx.Active = append(ctx.Active, h)
			}
		}
		ev := fz.Next(ctx)
		if ev.Handler == "" {
			// The event hit no widget (Monkey-style miss).
			res.Events++
			if err := v.AdvanceIdle(opts.EventGapMs); err != nil {
				res.AbnormalExits++
			}
			continue
		}
		_, err := v.Invoke(ev.Handler, dex.Int64(ev.A), dex.Int64(ev.B))
		abnormal := vm.AbnormalExit(err)
		if abnormal {
			res.AbnormalExits++
		}
		novelty := 0
		for _, f := range opts.WatchFields {
			key := v.Static(f).String()
			if !seen[f][key] {
				seen[f][key] = true
				novelty++
			}
		}
		fz.Observe(ev, novelty, abnormal)
		res.Events++
		if err := v.AdvanceIdle(opts.EventGapMs); err != nil {
			res.AbnormalExits++
		}
	}
	res.VirtualMillis = v.NowMillis() - start
	res.OuterSatisfied = v.OuterTriggered()
	res.DetectionRuns = v.DetectionRuns()
	res.Responses = v.Responses()
	if reg := opts.Obs; reg != nil {
		reg.Counter(obs.L("fuzz_events_total", "fuzzer", res.Fuzzer)).Add(int64(res.Events))
		reg.Counter(obs.L("fuzz_abnormal_exits_total", "fuzzer", res.Fuzzer)).Add(int64(res.AbnormalExits))
		reg.StartSpan("fuzz", start).End(v.NowMillis())
		v.FlushObs()
	}
	return res
}

// Profile runs the paper's §7.1 profiling pass: a Dynodroid stream of
// the given length with method counting on, returning the Traceview
// profile and the observed value sets of the watched fields — the
// inputs BombDroid's candidate selection and artificial-QC
// construction need.
func Profile(v *vm.VM, domain int64, events int, watch []string, seed int64) (map[string]int64, map[string][]dex.Value) {
	vals := make(map[string]map[string]dex.Value, len(watch))
	for _, f := range watch {
		vals[f] = map[string]dex.Value{}
	}
	ctx := &Context{Handlers: v.Handlers(), Domain: domain, Rng: rand.New(rand.NewSource(seed))}
	fz := NewDynodroid()
	for _, init := range v.InitMethods() {
		v.Invoke(init) // profiling tolerates failures
	}
	for i := 0; i < events && len(ctx.Handlers) > 0; i++ {
		ev := fz.Next(ctx)
		v.Invoke(ev.Handler, dex.Int64(ev.A), dex.Int64(ev.B))
		novelty := 0
		for _, f := range watch {
			val := v.Static(f)
			key := val.String()
			if _, ok := vals[f][key]; !ok {
				vals[f][key] = val
				novelty++
			}
		}
		fz.Observe(ev, novelty, false)
		v.AdvanceIdle(40)
	}
	// Flatten each field's value set in sorted-key order: map
	// iteration order would otherwise leak into the slice, and the
	// protector's artificial-QC constant selection reads these slices —
	// protected output must not vary from process to process.
	fieldVals := make(map[string][]dex.Value, len(vals))
	for f, m := range vals {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		vs := make([]dex.Value, 0, len(keys))
		for _, k := range keys {
			vs = append(vs, m[k])
		}
		fieldVals[f] = vs
	}
	return v.Profile(), fieldVals
}
