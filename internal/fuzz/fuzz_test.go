package fuzz_test

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

func buildProtected(t *testing.T, seed int64) (*apk.Package, *apk.Package, *core.Result, *appgen.App) {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{
		Name: "fz", Seed: seed, TargetLOC: 2600, QCPerMethod: 1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(21)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("fz", app.File, apk.Resources{Strings: []string{"x"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, res, err := core.ProtectPackage(orig, key, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(1000 + seed)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		t.Fatal(err)
	}
	return prot, pirated, res, app
}

func emulatorVM(t *testing.T, pkg *apk.Package) *vm.VM {
	t.Helper()
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 5, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAllFuzzersProduceValidEvents(t *testing.T) {
	prot, _, _, app := buildProtected(t, 41)
	for _, fz := range []fuzz.Fuzzer{fuzz.Monkey{}, fuzz.PUMA{}, &fuzz.AndroidHooker{}, fuzz.NewDynodroid()} {
		v := emulatorVM(t, prot)
		res := fuzz.Run(v, fz, app.Config.ParamDomain, fuzz.Options{DurationMs: 120_000, Seed: 1})
		if res.Events == 0 {
			t.Errorf("%s produced no events", fz.Name())
		}
		if res.VirtualMillis < 100_000 {
			t.Errorf("%s: virtual time %dms, want >= ~120s", fz.Name(), res.VirtualMillis)
		}
		if res.Fuzzer != fz.Name() {
			t.Errorf("result fuzzer label %q", res.Fuzzer)
		}
	}
}

func TestMonkeySendsOutOfDomainEvents(t *testing.T) {
	ctx := &fuzz.Context{Handlers: []string{"App.onEvent0"}, Domain: 64, Rng: rand.New(rand.NewSource(1))}
	outside, misses, hits := 0, 0, 0
	for i := 0; i < 2000; i++ {
		ev := fuzz.Monkey{}.Next(ctx)
		if ev.Handler == "" {
			misses++
			continue
		}
		hits++
		if ev.A >= 64 || ev.B >= 64 {
			outside++
		}
	}
	if misses < 800 {
		t.Errorf("Monkey should miss widgets often: %d/2000", misses)
	}
	if outside < hits/2 {
		t.Errorf("Monkey should frequently leave the valid domain: %d/%d", outside, hits)
	}
	// PUMA never leaves it.
	for i := 0; i < 1000; i++ {
		ev := fuzz.PUMA{}.Next(ctx)
		if ev.A >= 64 || ev.B >= 64 {
			t.Fatal("PUMA sent out-of-domain event")
		}
	}
}

func TestHookerReplays(t *testing.T) {
	ctx := &fuzz.Context{Handlers: []string{"h1", "h2", "h3"}, Domain: 16, Rng: rand.New(rand.NewSource(3))}
	h := &fuzz.AndroidHooker{}
	seen := map[fuzz.Event]int{}
	for i := 0; i < 2000; i++ {
		seen[h.Next(ctx)]++
	}
	replayed := 0
	for _, c := range seen {
		if c > 1 {
			replayed++
		}
	}
	if replayed == 0 {
		t.Error("Hooker never replayed an event")
	}
}

func TestDynodroidSweepsDomain(t *testing.T) {
	ctx := &fuzz.Context{Handlers: []string{"h"}, Domain: 32, Rng: rand.New(rand.NewSource(4))}
	d := fuzz.NewDynodroid()
	vals := map[int64]bool{}
	for i := 0; i < 200; i++ {
		vals[d.Next(ctx).A] = true
	}
	if len(vals) < 30 {
		t.Errorf("Dynodroid covered %d/32 parameter values; sweep broken", len(vals))
	}
}

func TestDynodroidPrefersNovelHandlers(t *testing.T) {
	ctx := &fuzz.Context{Handlers: []string{"boring", "novel"}, Domain: 8, Rng: rand.New(rand.NewSource(5))}
	d := fuzz.NewDynodroid()
	// Feed feedback: "novel" always yields novelty, "boring" never.
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		ev := d.Next(ctx)
		counts[ev.Handler]++
		novelty := 0
		if ev.Handler == "novel" {
			novelty = 3
		}
		d.Observe(ev, novelty, false)
	}
	if counts["novel"] <= counts["boring"] {
		t.Errorf("guided fuzzer ignored novelty: %v", counts)
	}
}

func TestFuzzerOrderingOnProtectedApp(t *testing.T) {
	// The paper's Table 4 ordering: Dynodroid satisfies at least as
	// many outer triggers as Monkey over the same virtual hour.
	_, pirated, res, app := buildProtected(t, 43)
	real := map[int64]bool{}
	for _, b := range res.RealBombs() {
		real[b.BlobIdx] = true
	}
	count := func(mk func() fuzz.Fuzzer) int {
		total := 0
		for seed := int64(1); seed <= 3; seed++ {
			v := emulatorVM(t, pirated)
			r := fuzz.Run(v, mk(), app.Config.ParamDomain, fuzz.Options{
				DurationMs: 3_600_000, Seed: seed,
				WatchFields:    app.IntFieldRefs,
				HandlerScreens: app.HandlerScreens,
				ScreenField:    app.ScreenField,
			})
			for _, blob := range r.OuterSatisfied {
				if real[blob] {
					total++
				}
			}
		}
		return total
	}
	monkey := count(func() fuzz.Fuzzer { return fuzz.Monkey{} })
	puma := count(func() fuzz.Fuzzer { return fuzz.PUMA{} })
	dyno := count(func() fuzz.Fuzzer { return fuzz.NewDynodroid() })
	t.Logf("outer triggers over 3 seeds: monkey=%d puma=%d dynodroid=%d (of %d real bombs)",
		monkey, puma, dyno, len(real))
	// Small fixtures saturate, so allow one-bomb noise per seed; the
	// statistically solid version of this assertion is
	// exp.TestTable4FuzzerOrdering.
	if dyno < monkey-3 {
		t.Errorf("Dynodroid (%d) should not trail Monkey (%d)", dyno, monkey)
	}
	if puma < monkey-3 {
		t.Errorf("PUMA (%d) should not trail Monkey (%d)", puma, monkey)
	}
	if dyno == 0 {
		t.Error("Dynodroid satisfied no outer trigger in an hour")
	}
}

func TestRunMaxEvents(t *testing.T) {
	prot, _, _, app := buildProtected(t, 47)
	v := emulatorVM(t, prot)
	res := fuzz.Run(v, fuzz.PUMA{}, app.Config.ParamDomain, fuzz.Options{DurationMs: 3_600_000, MaxEvents: 50, Seed: 2})
	if res.Events != 50 {
		t.Errorf("events = %d, want 50", res.Events)
	}
}

func TestProfileProducesCountsAndValues(t *testing.T) {
	prot, _, _, app := buildProtected(t, 53)
	v := emulatorVM(t, prot)
	profile, fieldVals := fuzz.Profile(v, app.Config.ParamDomain, 2000, app.IntFieldRefs, 7)
	if len(profile) == 0 {
		t.Fatal("empty profile")
	}
	// Hot helpers should dominate (they run on every event).
	var hotCount, handlerCount int64
	for name, c := range profile {
		if name == "App.helper0" {
			hotCount = c
		}
		if name == "App.onEvent0" {
			handlerCount = c
		}
	}
	if hotCount == 0 {
		t.Error("hot helper not profiled")
	}
	if hotCount < handlerCount {
		t.Errorf("hot helper (%d) should outrank a single handler (%d)", hotCount, handlerCount)
	}
	multi := 0
	for _, vals := range fieldVals {
		if len(vals) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("profiling observed no field-value diversity")
	}
}

func TestFalsePositiveFreeRunOnGenuineApp(t *testing.T) {
	// §8.4: ten virtual hours of Dynodroid on the protected,
	// *legitimately signed* app must fire zero responses.
	prot, _, _, app := buildProtected(t, 59)
	v := emulatorVM(t, prot)
	res := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
		DurationMs: 2 * 3_600_000, // two virtual hours keep the test fast
		Seed:       3, WatchFields: app.IntFieldRefs,
	})
	if len(res.Responses) != 0 {
		t.Fatalf("false positives: %+v", res.Responses)
	}
	if res.AbnormalExits != 0 {
		t.Fatalf("genuine app aborted %d times", res.AbnormalExits)
	}
	// Detections may have *run* (bombs fired) — they must simply stay
	// silent; that is the point of the experiment.
	t.Logf("outer triggers fired silently: %d", len(res.OuterSatisfied))
}
