package instrument

import (
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// buildGuarded returns a file with:
//
//	App.check(x): if (x == 42) { App.hits++ }; App.calls++; return
func buildGuarded(t *testing.T) (*dex.File, *dex.Method) {
	t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "check", 1)
	c := b.Reg()
	b.ConstInt(c, 42)
	b.Branch(dex.OpIfNe, 0, c, "join")
	tmp := b.Reg()
	b.GetStatic(tmp, "App.hits")
	b.AddK(tmp, tmp, 1)
	b.PutStatic("App.hits", tmp)
	b.Label("join")
	t2 := b.Reg()
	b.GetStatic(t2, "App.calls")
	b.AddK(t2, t2, 1)
	b.PutStatic("App.calls", t2)
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App", Fields: []dex.Field{
		{Name: "hits", Init: dex.Int64(0)},
		{Name: "calls", Init: dex.Int64(0)},
	}}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	return f, m
}

func run(t *testing.T, f *dex.File, method string, arg int64) *vm.VM {
	t.Helper()
	key, err := apk.NewKeyPair(5)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("t", f, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if method != "" {
		if _, err := v.Invoke(method, dex.Int64(arg)); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestInsertPreservesSemantics(t *testing.T) {
	f, m := buildGuarded(t)
	// Insert a no-effect sequence (log call) at the branch pc.
	logIdx := f.Intern("probe")
	insert := []dex.Instr{
		{Op: dex.OpConstStr, A: int32(m.NumRegs), B: -1, C: -1, Imm: logIdx},
		{Op: dex.OpCallAPI, A: -1, B: int32(m.NumRegs), C: 1, Imm: int64(dex.APILog)},
	}
	m.NumRegs++
	if err := InsertAt(m, 1, insert); err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(f); err != nil {
		t.Fatalf("after insertion: %v", err)
	}
	v := run(t, f, "App.check", 42)
	if v.Static("App.hits").Int != 1 || v.Static("App.calls").Int != 1 {
		t.Errorf("hit/calls = %v/%v", v.Static("App.hits"), v.Static("App.calls"))
	}
	if len(v.Logs()) != 1 {
		t.Error("probe not executed")
	}
	v = run(t, f, "App.check", 7)
	if v.Static("App.hits").Int != 0 || v.Static("App.calls").Int != 1 {
		t.Errorf("miss path broken: hits=%v calls=%v", v.Static("App.hits"), v.Static("App.calls"))
	}
}

func TestInsertRelativeBranch(t *testing.T) {
	f, m := buildGuarded(t)
	// Inserted sequence with an internal relative branch: skip its own
	// second instruction (relative target 2 == sequence length → after).
	r := int32(m.NumRegs)
	m.NumRegs++
	insert := []dex.Instr{
		{Op: dex.OpConstInt, A: r, B: -1, C: -1, Imm: 1},
		{Op: dex.OpIfNez, A: r, B: -1, C: 3}, // rel 3 == len → after
		{Op: dex.OpConstInt, A: r, B: -1, C: -1, Imm: 2},
	}
	if err := InsertAt(m, 0, insert); err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
	v := run(t, f, "App.check", 42)
	if v.Static("App.hits").Int != 1 {
		t.Error("guarded path broken after relative-branch insertion")
	}
}

func TestInsertRejectsBadRelTarget(t *testing.T) {
	_, m := buildGuarded(t)
	insert := []dex.Instr{{Op: dex.OpGoto, A: -1, B: -1, C: 99}}
	if err := InsertAt(m, 0, insert); err == nil {
		t.Fatal("out-of-sequence relative target must be rejected")
	}
	if err := InsertAt(m, 0, []dex.Instr{{Op: dex.OpSwitch, A: 0}}); err == nil {
		t.Fatal("switch in inserted code must be rejected")
	}
	if err := Splice(m, 5, 2, nil); err == nil {
		t.Fatal("inverted range must be rejected")
	}
	if err := Splice(m, 0, 999, nil); err == nil {
		t.Fatal("out-of-bounds range must be rejected")
	}
}

func TestReplaceRegionWithStub(t *testing.T) {
	f, m := buildGuarded(t)
	qcs := cfg.FindQCs(f, m)
	if len(qcs) != 1 || !qcs[0].HasThenRegion() {
		t.Fatalf("unexpected qcs: %+v", qcs)
	}
	q := qcs[0]
	// Replace the then-region with a log stub.
	idx := f.Intern("stub")
	r := int32(m.NumRegs)
	m.NumRegs++
	stub := []dex.Instr{
		{Op: dex.OpConstStr, A: r, B: -1, C: -1, Imm: idx},
		{Op: dex.OpCallAPI, A: -1, B: r, C: 1, Imm: int64(dex.APILog)},
	}
	if err := Splice(m, q.ThenStart, q.ThenEnd, stub); err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
	v := run(t, f, "App.check", 42)
	if v.Static("App.hits").Int != 0 {
		t.Error("region should be gone")
	}
	if len(v.Logs()) != 1 {
		t.Error("stub should run on trigger path")
	}
	if v.Static("App.calls").Int != 1 {
		t.Error("join code must still run")
	}
	v = run(t, f, "App.check", 1)
	if len(v.Logs()) != 0 {
		t.Error("stub must not run on miss path")
	}
}

func TestSpliceRejectsInteriorTargets(t *testing.T) {
	// A method where an external branch jumps into the region being
	// replaced must be rejected.
	f := dex.NewFile()
	m := &dex.Method{Name: "bad", NumArgs: 1, NumRegs: 2}
	m.Code = []dex.Instr{
		{Op: dex.OpIfEqz, A: 0, B: -1, C: 3},        // 0: jumps into [2,4)
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1},    // 1
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1},    // 2
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1},    // 3 <- interior target
		{Op: dex.OpReturnVoid, A: -1, B: -1, C: -1}, // 4
	}
	cl := &dex.Class{Name: "T"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	if err := Splice(m, 2, 4, nil); err == nil {
		t.Fatal("interior-targeted region must be rejected")
	}
}

func TestSpliceRelocatesSwitchTables(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "sw", 1)
	out := b.Reg()
	b.Switch(0, []int64{1}, []string{"one"}, "def")
	b.Label("one")
	b.ConstInt(out, 10)
	b.Return(out)
	b.Label("def")
	b.ConstInt(out, -1)
	b.Return(out)
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}

	oldOne := m.Tables[0].Cases[0].Target
	r := int32(m.NumRegs)
	m.NumRegs++
	if err := InsertAt(m, 0, []dex.Instr{{Op: dex.OpConstInt, A: r, B: -1, C: -1, Imm: 0}}); err != nil {
		t.Fatal(err)
	}
	if m.Tables[0].Cases[0].Target != oldOne+1 {
		t.Errorf("switch case target not relocated: %d", m.Tables[0].Cases[0].Target)
	}
	if err := dex.ValidateLinked(f); err != nil {
		t.Fatal(err)
	}
	v := run(t, f, "App.sw", 1)
	_ = v
}

func TestExtractRegionRunsIdentically(t *testing.T) {
	f, m := buildGuarded(t)
	qcs := cfg.FindQCs(f, m)
	q := qcs[0]
	g := cfg.Build(f, m)
	lv := cfg.ComputeLiveness(g)
	if !cfg.Liftable(g, lv, &q) {
		t.Fatal("expected liftable region")
	}

	// Extract into a payload file.
	pf := dex.NewFile()
	pb := dex.NewBuilder(pf, "run", 1)
	if err := ExtractRegion(f, m, q.ThenStart, q.ThenEnd, q.Reg, pb, "end"); err != nil {
		t.Fatal(err)
	}
	pb.Label("end")
	pb.ReturnVoid()
	pm := pb.MustFinish()
	pcl := &dex.Class{Name: "Payload"}
	pcl.AddMethod(pm)
	if err := pf.AddClass(pcl); err != nil {
		t.Fatal(err)
	}
	if err := dex.Validate(pf); err != nil {
		t.Fatalf("payload invalid: %v", err)
	}
	// The payload references App.hits via its own pool.
	if _, ok := pf.Lookup("App.hits"); !ok {
		t.Error("static ref not re-interned into payload pool")
	}

	// Wire the payload into an app file so the VM can run it: replace
	// the original region with nothing and call the payload... here we
	// simply install the payload as a second class and invoke run(x).
	if err := Splice(m, q.ThenStart, q.ThenEnd, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range pf.Classes {
		cc := c.Clone()
		for _, mm := range cc.Methods {
			// Re-intern the payload's strings into the app file.
			for i := range mm.Code {
				if mm.Code[i].Op.UsesStringImm() {
					mm.Code[i].Imm = f.Intern(pf.Str(mm.Code[i].Imm))
				}
			}
		}
		if err := f.AddClass(cc); err != nil {
			t.Fatal(err)
		}
	}
	v := run(t, f, "Payload.run", 42)
	if v.Static("App.hits").Int != 1 {
		t.Error("extracted region did not replicate behaviour for ϕ=c")
	}
	v = run(t, f, "Payload.run", 5)
	if v.Static("App.hits").Int != 0 {
		// The payload body itself is unconditional; the guard stays in
		// the app. Running with 5 still increments — adjust: behaviour
		// equivalence is "body effect", not guard.
		t.Log("payload body is unconditional by design")
	}
}

func TestExtractRegionRejectsReturns(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 1)
	c := b.Reg()
	b.ConstInt(c, 3)
	b.Branch(dex.OpIfNe, 0, c, "j")
	b.ReturnVoid()
	b.Label("j")
	b.ReturnVoid()
	m := b.MustFinish()
	pf := dex.NewFile()
	pb := dex.NewBuilder(pf, "run", 1)
	if err := ExtractRegion(f, m, 2, 3, 0, pb, "end"); err == nil {
		t.Fatal("return inside region must be rejected")
	}
}

func TestExtractRegionRemapsScatteredArgs(t *testing.T) {
	// Region containing an API call whose args came from scattered
	// registers — extraction must rebuild a contiguous window.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 1)
	c := b.Reg()
	b.ConstInt(c, 5)
	b.Branch(dex.OpIfNe, 0, c, "join")
	a1 := b.Reg()
	b.ConstStr(a1, "x")
	a2 := b.Reg()
	b.ConstStr(a2, "y")
	cat := b.Reg()
	b.CallAPI(cat, dex.APIStrConcat, a1, a2)
	b.CallAPI(-1, dex.APILog, cat)
	b.Label("join")
	b.ReturnVoid()
	m := b.MustFinish()

	q := cfg.FindQCs(f, m)[0]
	pf := dex.NewFile()
	pb := dex.NewBuilder(pf, "run", 1)
	if err := ExtractRegion(f, m, q.ThenStart, q.ThenEnd, q.Reg, pb, "end"); err != nil {
		t.Fatal(err)
	}
	pb.Label("end")
	pb.ReturnVoid()
	pm := pb.MustFinish()
	pcl := &dex.Class{Name: "P"}
	pcl.AddMethod(pm)
	if err := pf.AddClass(pcl); err != nil {
		t.Fatal(err)
	}
	if err := dex.Validate(pf); err != nil {
		t.Fatalf("extracted payload invalid: %v", err)
	}
}
