// Package instrument rewrites method bytecode in place — the
// Javassist stand-in (paper §7.5). It supports inserting instruction
// sequences at arbitrary points and replacing guarded regions with
// bomb stubs, relocating every branch target and switch table, and
// extracting a region into a separate payload file with registers and
// string-pool references remapped (the "code weaving" mechanism of
// §3.4).
package instrument

import (
	"fmt"

	"bombdroid/internal/dex"
)

// RelTarget marks a branch inside an inserted/replacement sequence
// whose C operand is relative to the sequence start (so a sequence can
// be built position-independently). A relative target equal to the
// sequence length jumps to the first instruction after the sequence.
// Callers tag such instructions by setting B or leaving absolute
// targets — see Splice.
//
// Convention: in the `insert` slice passed to Splice, every branch
// C-target is RELATIVE to the start of the slice. Switch instructions
// are not allowed inside inserted sequences (no table plumbing is
// needed by any caller).

// Splice replaces m.Code[s:e) with insert (relative-target form),
// shifting all surviving absolute targets. Branches outside [s,e) that
// target the interior (s, e) are rejected; targets == s now reach the
// inserted code's first instruction, and targets >= e are shifted by
// the length delta.
func Splice(m *dex.Method, s, e int, insert []dex.Instr) error {
	n := len(m.Code)
	if s < 0 || e < s || e > n {
		return fmt.Errorf("instrument: bad range [%d,%d) in %d instructions", s, e, n)
	}
	for _, in := range insert {
		if in.Op == dex.OpSwitch {
			return fmt.Errorf("instrument: switch not allowed in inserted code")
		}
	}
	delta := len(insert) - (e - s)

	reloc := func(t int32, pc int) (int32, error) {
		switch {
		case int(t) <= s:
			return t, nil
		case int(t) >= e:
			return t + int32(delta), nil
		default:
			return 0, fmt.Errorf("instrument: pc %d targets interior of replaced range [%d,%d)", pc, s, e)
		}
	}

	// Relocate survivors.
	out := make([]dex.Instr, 0, n+delta)
	appendRelocated := func(lo, hi int) error {
		for pc := lo; pc < hi; pc++ {
			in := m.Code[pc]
			if in.Op.IsBranch() {
				t, err := reloc(in.C, pc)
				if err != nil {
					return err
				}
				in.C = t
			}
			out = append(out, in)
		}
		return nil
	}
	if err := appendRelocated(0, s); err != nil {
		return err
	}
	for _, in := range insert {
		if in.Op.IsBranch() {
			rel := int(in.C)
			if rel < 0 || rel > len(insert) {
				return fmt.Errorf("instrument: inserted branch target %d outside sequence", rel)
			}
			in.C = int32(s + rel)
			if rel == len(insert) {
				in.C = int32(s + len(insert)) // first instruction after
			}
		}
		out = append(out, in)
	}
	if err := appendRelocated(e, n); err != nil {
		return err
	}

	// Switch tables.
	for ti := range m.Tables {
		t := &m.Tables[ti]
		nd, err := reloc(t.Default, -1)
		if err != nil {
			return err
		}
		t.Default = nd
		for ci := range t.Cases {
			nt, err := reloc(t.Cases[ci].Target, -1)
			if err != nil {
				return err
			}
			t.Cases[ci].Target = nt
		}
	}
	m.Code = out
	return nil
}

// InsertAt inserts a relative-target sequence before pc.
func InsertAt(m *dex.Method, pc int, insert []dex.Instr) error {
	return Splice(m, pc, pc, insert)
}

// ExtractRegion compiles m.Code[s:e) into the payload builder dst,
// remapping:
//
//   - register argReg (the trigger operand ϕ) to payload argument 0,
//   - every other register to a fresh payload register,
//   - string immediates re-interned into the payload's string pool,
//   - internal branch targets to payload labels, and the join target e
//     to the label endLabel (which the caller must define after).
//
// The caller is responsible for having checked cfg.Liftable; this
// function re-validates the cheap structural parts.
func ExtractRegion(src *dex.File, m *dex.Method, s, e int, argReg int32, dst *dex.Builder, endLabel string) error {
	if s < 0 || e > len(m.Code) || s >= e {
		return fmt.Errorf("instrument: bad region [%d,%d)", s, e)
	}
	regMap := map[int32]int32{argReg: 0}
	mapReg := func(r int32) int32 {
		if r < 0 {
			return r
		}
		if nr, ok := regMap[r]; ok {
			return nr
		}
		nr := dst.Reg()
		regMap[r] = nr
		return nr
	}
	labelFor := func(t int32) string {
		return fmt.Sprintf("w%d", t)
	}
	// Which pcs need labels?
	needLabel := map[int32]bool{}
	for pc := s; pc < e; pc++ {
		in := m.Code[pc]
		if in.Op.IsBranch() {
			if int(in.C) > s && int(in.C) < e {
				needLabel[in.C] = true
			}
		}
	}

	for pc := s; pc < e; pc++ {
		in := m.Code[pc]
		if needLabel[int32(pc)] {
			dst.Label(labelFor(int32(pc)))
		}
		switch in.Op {
		case dex.OpSwitch, dex.OpReturn, dex.OpReturnVoid:
			return fmt.Errorf("instrument: %s not liftable at pc %d", in.Op, pc)
		}
		// Remap arg-window calls before general registers: the window
		// must stay contiguous, so allocate a fresh window.
		if in.Op == dex.OpInvoke || in.Op == dex.OpCallAPI {
			argc := int(in.C)
			var newArgs []int32
			for i := 0; i < argc; i++ {
				newArgs = append(newArgs, mapReg(in.B+int32(i)))
			}
			dstReg := int32(-1)
			if in.A != -1 {
				dstReg = mapReg(in.A)
			}
			imm := in.Imm
			if in.Op == dex.OpInvoke {
				dst.Invoke(dstReg, src.Str(in.Imm), newArgs...)
				continue
			}
			dst.CallAPI(dstReg, dex.API(imm), newArgs...)
			continue
		}
		ni := in
		if in.Op.UsesStringImm() {
			ni.Imm = dst.File().Intern(src.Str(in.Imm))
		}
		switch in.Op {
		case dex.OpConstInt, dex.OpConstStr, dex.OpGetStatic, dex.OpNewArr, dex.OpArrLen:
			ni.A = mapReg(in.A)
			if in.Op == dex.OpNewArr || in.Op == dex.OpArrLen {
				ni.B = mapReg(in.B)
			}
			dst.Emit(ni)
		case dex.OpPutStatic:
			ni.A = mapReg(in.A)
			dst.Emit(ni)
		case dex.OpMove, dex.OpNeg, dex.OpNot, dex.OpAddK:
			ni.B = mapReg(in.B)
			ni.A = mapReg(in.A)
			dst.Emit(ni)
		case dex.OpAdd, dex.OpSub, dex.OpMul, dex.OpDiv, dex.OpRem,
			dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpShl, dex.OpShr,
			dex.OpALoad, dex.OpAStore:
			ni.B = mapReg(in.B)
			ni.C = mapReg(in.C)
			ni.A = mapReg(in.A)
			dst.Emit(ni)
		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
			a, b := mapReg(in.A), mapReg(in.B)
			dst.Branch(in.Op, a, b, branchLabel(in.C, e, endLabel, labelFor))
		case dex.OpIfEqz, dex.OpIfNez:
			dst.BranchZ(in.Op, mapReg(in.A), branchLabel(in.C, e, endLabel, labelFor))
		case dex.OpGoto:
			dst.Goto(branchLabel(in.C, e, endLabel, labelFor))
		case dex.OpNop:
			dst.Emit(ni)
		default:
			return fmt.Errorf("instrument: cannot lift op %s", in.Op)
		}
	}
	return nil
}

func branchLabel(t int32, e int, endLabel string, labelFor func(int32) string) string {
	if int(t) >= e {
		return endLabel
	}
	return labelFor(t)
}
