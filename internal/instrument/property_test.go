package instrument

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
)

// Property: inserting a transparent probe at any random position of
// any method of a generated app keeps the whole file valid. This is
// the invariant every bomb insertion relies on.
func TestInsertAnywhereKeepsFileValid(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{Name: "prop", Seed: 91, TargetLOC: 1200})
	if err != nil {
		t.Fatal(err)
	}
	methods := app.File.Methods()
	if err := quick.Check(func(mIdx, pos uint16) bool {
		f := app.File.Clone()
		ms := f.Methods()
		m := ms[int(mIdx)%len(ms)]
		p := int(pos) % (len(m.Code) + 1)
		r := int32(m.NumRegs)
		m.NumRegs++
		probe := []dex.Instr{
			{Op: dex.OpConstInt, A: r, B: -1, C: -1, Imm: 7},
			{Op: dex.OpCallAPI, A: -1, B: r, C: 1, Imm: int64(dex.APIUIDraw)},
		}
		if err := InsertAt(m, p, probe); err != nil {
			// Insertion is total for in-range positions.
			t.Logf("insert at %s:%d failed: %v", m.FullName(), p, err)
			return false
		}
		return dex.ValidateLinked(f) == nil
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	_ = methods
}

// Property: replacing any liftable then-region with a no-op stub and
// re-adding the region as a payload method preserves validity.
func TestSpliceRandomRegions(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{Name: "prop2", Seed: 92, TargetLOC: 1500, QCPerMethod: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tried, ok := 0, 0
	for _, m := range app.File.Methods() {
		for pc, in := range m.Code {
			if in.Op != dex.OpIfNe || rng.Intn(3) != 0 {
				continue
			}
			end := int(in.C)
			if end <= pc+1 || end > len(m.Code) {
				continue
			}
			f := app.File.Clone()
			mm := f.Method(m.FullName())
			tried++
			if err := Splice(mm, pc+1, end, nil); err != nil {
				continue // interior-targeted regions are correctly rejected
			}
			if err := dex.ValidateLinked(f); err != nil {
				t.Fatalf("splice of %s[%d,%d) broke the file: %v", m.FullName(), pc+1, end, err)
			}
			ok++
		}
	}
	if tried == 0 || ok == 0 {
		t.Skip("no spliceable regions sampled")
	}
	t.Logf("spliced %d/%d sampled regions cleanly", ok, tried)
}

// Property: semantic transparency — a probe inserted at the entry of
// every method never changes observable app state.
func TestProbeEverywherePreservesTrajectories(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{Name: "prop3", Seed: 93, TargetLOC: 1000})
	if err != nil {
		t.Fatal(err)
	}
	probed := app.File.Clone()
	for _, m := range probed.Methods() {
		r := int32(m.NumRegs)
		m.NumRegs++
		if err := InsertAt(m, 0, []dex.Instr{
			{Op: dex.OpConstInt, A: r, B: -1, C: -1, Imm: 1},
			{Op: dex.OpCallAPI, A: -1, B: r, C: 1, Imm: int64(dex.APIVibrate)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	vOrig := run(t, app.File.Clone(), "", 0) // helper from instrument_test.go
	vProbe := run(t, probed, "", 0)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		h := app.Handlers[rng.Intn(len(app.Handlers))]
		a, b := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
		if _, err := vOrig.Invoke(h, a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := vProbe.Invoke(h, a, b); err != nil {
			t.Fatalf("probed app failed where original succeeded: %v", err)
		}
	}
	for _, ref := range app.IntFieldRefs {
		if !vOrig.Static(ref).Equal(vProbe.Static(ref)) {
			t.Errorf("%s diverged under probing", ref)
		}
	}
}
