package symexec

import (
	"testing"

	"bombdroid/internal/dex"
)

func buildMethod(t *testing.T, build func(f *dex.File, b *dex.Builder)) (*dex.File, *dex.Method) {
	t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 2)
	build(f, b)
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	return f, m
}

func TestSwitchForking(t *testing.T) {
	// switch(arg0) { case 5: warn; case 9: report }: both arms must be
	// discovered and solved with the matching case constants.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		out := b.Reg()
		b.Switch(0, []int64{5, 9}, []string{"a", "b"}, "d")
		b.Label("a")
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.ConstInt(out, 0)
		b.Return(out)
		b.Label("b")
		s2 := b.Reg()
		b.ConstStr(s2, "r")
		b.CallAPI(-1, dex.APIReportPiracy, s2)
		b.ConstInt(out, 1)
		b.Return(out)
		b.Label("d")
		b.ConstInt(out, 2)
		b.Return(out)
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser, dex.APIReportPiracy}})
	byAPI := map[dex.API]Hit{}
	for _, h := range sum.SolvedHits() {
		byAPI[h.API] = h
	}
	warn, ok1 := byAPI[dex.APIWarnUser]
	rep, ok2 := byAPI[dex.APIReportPiracy]
	if !ok1 || !ok2 {
		t.Fatalf("both arms should be solved; got %v", byAPI)
	}
	if warn.Assignment["arg0"].Int != 5 {
		t.Errorf("warn arm arg0 = %v", warn.Assignment["arg0"])
	}
	if rep.Assignment["arg0"].Int != 9 {
		t.Errorf("report arm arg0 = %v", rep.Assignment["arg0"])
	}
}

func TestSwitchDefaultPath(t *testing.T) {
	// The default arm carries disequalities against every case value.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		b.Switch(0, []int64{1}, []string{"a"}, "d")
		b.Label("a")
		b.ReturnVoid()
		b.Label("d")
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	solved := sum.SolvedHits()
	if len(solved) != 1 {
		t.Fatalf("solved = %d", len(solved))
	}
	if v := solved[0].Assignment["arg0"]; v.Kind == dex.KindInt && v.Int == 1 {
		t.Errorf("default arm solved with excluded value %v", v)
	}
}

func TestMaxPathsBound(t *testing.T) {
	// A chain of N branches explodes to 2^N paths; the bound must hold.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		for i := 0; i < 24; i++ {
			k := b.Reg()
			b.ConstInt(k, int64(i))
			lbl := "skip" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			b.Branch(dex.OpIfEq, 0, k, lbl)
			b.Label(lbl)
		}
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{MaxPaths: 64})
	if sum.PathsExplored > 64 {
		t.Errorf("paths = %d, bound 64", sum.PathsExplored)
	}
}

func TestConcreteBranchesDoNotFork(t *testing.T) {
	// Constant-folded comparisons take exactly one path.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		x := b.Reg()
		y := b.Reg()
		b.ConstInt(x, 3)
		b.ConstInt(y, 4)
		b.Branch(dex.OpIfEq, x, y, "dead")
		b.ReturnVoid()
		b.Label("dead")
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	if sum.PathsExplored != 1 {
		t.Errorf("paths = %d, want 1", sum.PathsExplored)
	}
	if len(sum.Hits) != 0 {
		t.Errorf("dead code reached: %+v", sum.Hits)
	}
}

func TestFieldSymbolsSharedPerPath(t *testing.T) {
	// Two reads of the same static within a path must be the same
	// symbol: "f == 3 && f != 3" is unsatisfiable.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		r1 := b.Reg()
		b.GetStatic(r1, "App.f")
		k := b.Reg()
		b.ConstInt(k, 3)
		b.Branch(dex.OpIfNe, r1, k, "out")
		r2 := b.Reg()
		b.GetStatic(r2, "App.f")
		b.Branch(dex.OpIfEq, r2, k, "out") // so the target needs f != 3 too
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.Label("out")
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	for _, h := range sum.Hits {
		if h.Solved {
			t.Errorf("contradictory field constraints solved: %v over %v", h.Assignment, h.Constraints)
		}
	}
}

func TestPutStaticUpdatesSymbolicState(t *testing.T) {
	// f = 7; if (f == 7) warn — the write makes the read concrete.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		k := b.Reg()
		b.ConstInt(k, 7)
		b.PutStatic("App.f", k)
		r := b.Reg()
		b.GetStatic(r, "App.f")
		b.Branch(dex.OpIfNe, r, k, "out")
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.Label("out")
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	if sum.PathsExplored != 1 {
		t.Errorf("paths = %d, want 1 (no fork on concrete compare)", sum.PathsExplored)
	}
	if len(sum.Hits) != 1 {
		t.Fatalf("hits = %d", len(sum.Hits))
	}
	if !sum.Hits[0].Solved {
		t.Error("unconditionally reachable target must be solved")
	}
}

func TestEnvSymbolsKeyedByName(t *testing.T) {
	// Reading the same env var twice yields one symbol; conditions on
	// it are solvable as a pair.
	f, m := buildMethod(t, func(f *dex.File, b *dex.Builder) {
		n := b.Reg()
		b.ConstStr(n, "api_level")
		e1 := b.Reg()
		b.CallAPI(e1, dex.APIGetEnvInt, n)
		k := b.Reg()
		b.ConstInt(k, 23)
		b.Branch(dex.OpIfLe, e1, k, "out")
		n2 := b.Reg()
		b.ConstStr(n2, "api_level")
		e2 := b.Reg()
		b.CallAPI(e2, dex.APIGetEnvInt, n2)
		k2 := b.Reg()
		b.ConstInt(k2, 30)
		b.Branch(dex.OpIfGe, e2, k2, "out")
		s := b.Reg()
		b.ConstStr(s, "w")
		b.CallAPI(-1, dex.APIWarnUser, s)
		b.Label("out")
		b.ReturnVoid()
	})
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	found := false
	for _, h := range sum.SolvedHits() {
		v, ok := h.Assignment["envi:api_level"]
		if ok && v.Int > 23 && v.Int < 30 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a solved 23 < api_level < 30 path; hits: %+v", sum.Hits)
	}
}
