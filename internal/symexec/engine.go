package symexec

import (
	"fmt"

	"bombdroid/internal/dex"
)

// Options bounds an analysis.
type Options struct {
	MaxPaths int // explored paths per method (default 256)
	MaxSteps int // instructions per path (default 4096)
	// Targets are the sensitive APIs whose reachability the attacker
	// wants inputs for; empty selects the bomb-relevant set.
	Targets []dex.API
}

func (o Options) withDefaults() Options {
	if o.MaxPaths == 0 {
		o.MaxPaths = 256
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 4096
	}
	if len(o.Targets) == 0 {
		o.Targets = []dex.API{
			dex.APIDecryptLoad, dex.APIGetPublicKey, dex.APIGetManifestDigest,
			dex.APICodeDigest, dex.APIReflectCall, dex.APIDelayBomb,
			dex.APICrash, dex.APIWarnUser, dex.APIReportPiracy,
		}
	}
	return o
}

// Hit is one discovered path to a target API.
type Hit struct {
	Method      string
	PC          int
	API         dex.API
	Constraints []Constraint
	// Solved + Assignment when the solver found concrete inputs;
	// otherwise Reason explains the failure (the interesting case:
	// "uninterpreted function" for hash-guarded paths).
	Solved     bool
	Assignment map[string]dex.Value
	Reason     string
}

// Summary aggregates an analysis.
type Summary struct {
	Methods       int
	PathsExplored int
	Hits          []Hit
}

// SolvedHits returns hits with concrete inputs.
func (s *Summary) SolvedHits() []Hit {
	var out []Hit
	for _, h := range s.Hits {
		if h.Solved {
			out = append(out, h)
		}
	}
	return out
}

// UnsolvableHits returns hits the solver could not satisfy.
func (s *Summary) UnsolvableHits() []Hit {
	var out []Hit
	for _, h := range s.Hits {
		if !h.Solved {
			out = append(out, h)
		}
	}
	return out
}

// state is one path's execution state.
type state struct {
	pc      int
	regs    []*Expr
	statics map[string]*Expr
	path    []Constraint
	steps   int
}

func (s *state) fork() *state {
	n := &state{
		pc:      s.pc,
		regs:    append([]*Expr(nil), s.regs...),
		statics: make(map[string]*Expr, len(s.statics)),
		path:    append([]Constraint(nil), s.path...),
		steps:   s.steps,
	}
	for k, v := range s.statics {
		n.statics[k] = v
	}
	return n
}

// AnalyzeMethod symbolically executes one method with symbolic
// arguments, statics, and environment.
func AnalyzeMethod(f *dex.File, m *dex.Method, opts Options) *Summary {
	opts = opts.withDefaults()
	targets := map[dex.API]bool{}
	for _, t := range opts.Targets {
		targets[t] = true
	}
	sum := &Summary{Methods: 1}
	e := &engine{f: f, m: m, opts: opts, targets: targets, sum: sum}

	init := &state{
		pc:      0,
		regs:    make([]*Expr, m.NumRegs),
		statics: map[string]*Expr{},
	}
	for i := 0; i < m.NumRegs; i++ {
		if i < m.NumArgs {
			init.regs[i] = NewIntSym(fmt.Sprintf("arg%d", i))
		} else {
			init.regs[i] = NewConst(dex.Nil())
		}
	}
	e.run(init)
	return sum
}

// Analyze runs AnalyzeMethod over every non-synthetic method.
func Analyze(f *dex.File, opts Options) *Summary {
	total := &Summary{}
	for _, m := range f.Methods() {
		if m.IsSynthetic() {
			continue
		}
		s := AnalyzeMethod(f, m, opts)
		total.Methods++
		total.PathsExplored += s.PathsExplored
		total.Hits = append(total.Hits, s.Hits...)
	}
	return total
}

type engine struct {
	f       *dex.File
	m       *dex.Method
	opts    Options
	targets map[dex.API]bool
	sum     *Summary
	fresh   int
}

func (e *engine) freshName(prefix string) string {
	e.fresh++
	return fmt.Sprintf("%s#%d", prefix, e.fresh)
}

// run explores paths depth-first from st.
func (e *engine) run(st *state) {
	work := []*state{st}
	for len(work) > 0 && e.sum.PathsExplored < e.opts.MaxPaths {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		forks := e.step(cur)
		if forks == nil {
			e.sum.PathsExplored++
			continue
		}
		work = append(work, forks...)
	}
}

// step advances one state until it ends or forks; returns successor
// states (nil when the path terminated).
func (e *engine) step(st *state) []*state {
	code := e.m.Code
	for {
		if st.pc < 0 || st.pc >= len(code) || st.steps > e.opts.MaxSteps {
			return nil
		}
		st.steps++
		in := code[st.pc]
		switch in.Op {
		case dex.OpNop:

		case dex.OpConstInt:
			st.regs[in.A] = NewConst(dex.Int64(in.Imm))

		case dex.OpConstStr:
			st.regs[in.A] = NewConst(dex.Str(e.f.Str(in.Imm)))

		case dex.OpMove:
			st.regs[in.A] = st.regs[in.B]

		case dex.OpAdd, dex.OpSub:
			a, aok := asLinear(st.regs[in.B])
			b, bok := asLinear(st.regs[in.C])
			if aok && bok {
				if in.Op == dex.OpSub {
					b = scaleLin(b, -1)
				}
				st.regs[in.A] = addLin(a, b)
			} else {
				st.regs[in.A] = NewOpaque(in.Op.String(), st.regs[in.B], st.regs[in.C])
			}

		case dex.OpMul:
			a, aok := asLinear(st.regs[in.B])
			k, kok := st.regs[in.C].ConstInt()
			if aok && kok {
				st.regs[in.A] = scaleLin(a, k)
			} else if k2, ok2 := st.regs[in.B].ConstInt(); ok2 {
				if b2, ok3 := asLinear(st.regs[in.C]); ok3 {
					st.regs[in.A] = scaleLin(b2, k2)
				} else {
					st.regs[in.A] = NewOpaque("mul", st.regs[in.B], st.regs[in.C])
				}
			} else {
				st.regs[in.A] = NewOpaque("mul", st.regs[in.B], st.regs[in.C])
			}

		case dex.OpRem:
			a, aok := asLinear(st.regs[in.B])
			k, kok := st.regs[in.C].ConstInt()
			if aok && kok && k > 0 {
				st.regs[in.A] = &Expr{Kind: EMod, X: a, K: k}
			} else {
				st.regs[in.A] = NewOpaque("rem", st.regs[in.B], st.regs[in.C])
			}

		case dex.OpAddK:
			if a, ok := asLinear(st.regs[in.B]); ok {
				st.regs[in.A] = addLin(a, NewConst(dex.Int64(in.Imm)))
			} else {
				st.regs[in.A] = NewOpaque("add-k", st.regs[in.B], NewConst(dex.Int64(in.Imm)))
			}

		case dex.OpDiv, dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpShl, dex.OpShr:
			st.regs[in.A] = NewOpaque(in.Op.String(), st.regs[in.B], st.regs[in.C])

		case dex.OpNeg:
			if a, ok := asLinear(st.regs[in.B]); ok {
				st.regs[in.A] = scaleLin(a, -1)
			} else {
				st.regs[in.A] = NewOpaque("neg", st.regs[in.B])
			}

		case dex.OpNot:
			st.regs[in.A] = NewOpaque("not", st.regs[in.B])

		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
			return e.branch(st, in, cmpForOp(in.Op), st.regs[in.A], st.regs[in.B])

		case dex.OpIfEqz, dex.OpIfNez:
			cmp := CmpEq
			if in.Op == dex.OpIfNez {
				cmp = CmpNe
			}
			return e.branch(st, in, cmp, st.regs[in.A], NewConst(dex.Int64(0)))

		case dex.OpGoto:
			st.pc = int(in.C)
			continue

		case dex.OpSwitch:
			return e.switchFork(st, in)

		case dex.OpInvoke:
			// Calls are not inlined: the result is a fresh symbol.
			// (Per-method analysis visits callees independently.)
			if in.A != -1 {
				st.regs[in.A] = NewIntSym(e.freshName("ret:" + e.f.Str(in.Imm)))
			}

		case dex.OpCallAPI:
			e.apiCall(st, in)

		case dex.OpReturn, dex.OpReturnVoid:
			return nil

		case dex.OpGetStatic:
			ref := e.f.Str(in.Imm)
			v, ok := st.statics[ref]
			if !ok {
				v = NewIntSym("field:" + ref)
				st.statics[ref] = v
			}
			st.regs[in.A] = v

		case dex.OpPutStatic:
			st.statics[e.f.Str(in.Imm)] = st.regs[in.A]

		case dex.OpNewArr, dex.OpALoad, dex.OpArrLen:
			st.regs[in.A] = NewIntSym(e.freshName("arr"))

		case dex.OpAStore:
			// Heap writes are not tracked.

		default:
			return nil
		}
		st.pc++
	}
}

func cmpForOp(op dex.Op) CmpKind {
	switch op {
	case dex.OpIfEq:
		return CmpEq
	case dex.OpIfNe:
		return CmpNe
	case dex.OpIfLt:
		return CmpLt
	case dex.OpIfLe:
		return CmpLe
	case dex.OpIfGt:
		return CmpGt
	default:
		return CmpGe
	}
}

// branch forks a state on a comparison; concretely decidable
// comparisons do not fork.
func (e *engine) branch(st *state, in dex.Instr, cmp CmpKind, l, r *Expr) []*state {
	if res, decidable := evalCmpConst(cmp, l, r); decidable {
		if res {
			st.pc = int(in.C)
		} else {
			st.pc++
		}
		return []*state{st}
	}
	taken := st.fork()
	taken.pc = int(in.C)
	taken.path = append(taken.path, Constraint{Cmp: cmp, L: l, R: r})
	st.pc++
	st.path = append(st.path, Constraint{Cmp: cmp.Negate(), L: l, R: r})
	return []*state{st, taken}
}

// evalCmpConst decides a comparison when both sides are concrete.
func evalCmpConst(cmp CmpKind, l, r *Expr) (bool, bool) {
	li, lok := l.ConstInt()
	ri, rok := r.ConstInt()
	if lok && rok {
		switch cmp {
		case CmpEq:
			return li == ri, true
		case CmpNe:
			return li != ri, true
		case CmpLt:
			return li < ri, true
		case CmpLe:
			return li <= ri, true
		case CmpGt:
			return li > ri, true
		default:
			return li >= ri, true
		}
	}
	if l.Kind == EConst && r.Kind == EConst {
		eq := l.Val.Equal(r.Val)
		switch cmp {
		case CmpEq:
			return eq, true
		case CmpNe:
			return !eq, true
		}
	}
	return false, false
}

// switchFork forks a switch into its cases plus default.
func (e *engine) switchFork(st *state, in dex.Instr) []*state {
	if in.Imm < 0 || in.Imm >= int64(len(e.m.Tables)) {
		return nil
	}
	t := e.m.Tables[in.Imm]
	sel := st.regs[in.A]
	if v, ok := sel.ConstInt(); ok {
		st.pc = int(t.Default)
		for _, cs := range t.Cases {
			if cs.Match == v {
				st.pc = int(cs.Target)
			}
		}
		return []*state{st}
	}
	var out []*state
	for _, cs := range t.Cases {
		br := st.fork()
		br.pc = int(cs.Target)
		br.path = append(br.path, Constraint{Cmp: CmpEq, L: sel, R: NewConst(dex.Int64(cs.Match))})
		out = append(out, br)
	}
	def := st.fork()
	def.pc = int(t.Default)
	for _, cs := range t.Cases {
		def.path = append(def.path, Constraint{Cmp: CmpNe, L: sel, R: NewConst(dex.Int64(cs.Match))})
	}
	out = append(out, def)
	return out
}

// apiCall models framework calls symbolically and records target hits.
func (e *engine) apiCall(st *state, in dex.Instr) {
	api := dex.API(in.Imm)
	args := make([]*Expr, in.C)
	for i := int32(0); i < in.C; i++ {
		args[i] = st.regs[in.B+i]
	}
	if e.targets[api] {
		hit := Hit{
			Method:      e.m.FullName(),
			PC:          st.pc,
			API:         api,
			Constraints: append([]Constraint(nil), st.path...),
		}
		hit.Assignment, hit.Solved, hit.Reason = Solve(hit.Constraints)
		e.sum.Hits = append(e.sum.Hits, hit)
	}

	var result *Expr
	switch api {
	case dex.APIRandPercent, dex.APIRandInt, dex.APITimeMillis,
		dex.APIGPSLatE6, dex.APIGPSLonE6, dex.APISensorLight, dex.APISensorTempC:
		// Nondeterministic sources are fresh symbols: probabilistic
		// gates (SSN's rand() < 0.01) cannot stop path exploration.
		result = NewIntSym(e.freshName(api.Name()))
	case dex.APIGetEnvInt:
		result = NewIntSym(e.envName(args, "envi"))
	case dex.APIGetEnvStr:
		result = NewStrSym(e.envName(args, "envs"))
	case dex.APIStrEquals, dex.APIStrStartsWith, dex.APIStrEndsWith, dex.APIStrContains:
		if len(args) == 2 {
			if args[0].IsConst() && args[1].IsConst() {
				result = NewConst(evalStrCmpConst(api, args[0].Val.Str, args[1].Val.Str))
			} else {
				result = &Expr{Kind: EStrCmp, API: api, X: args[0], Y: args[1]}
			}
		} else {
			result = NewIntSym(e.freshName("strcmp"))
		}
	case dex.APISHA1Hex:
		// The cryptographic hash is uninterpreted: its output cannot
		// be related to its input by any constraint solver.
		result = NewOpaque("sha1Hex", args...)
	case dex.APIStrLen, dex.APIStrHashCode, dex.APIStrToInt, dex.APIStrCharAt:
		result = NewIntSym(e.freshName(api.Name()))
	case dex.APIStrConcat, dex.APIStrSubstr, dex.APIStrFromInt,
		dex.APIGetPublicKey, dex.APIGetManifestDigest, dex.APIGetResourceString,
		dex.APIStegoExtract, dex.APICodeDigest, dex.APIDeobfuscate, dex.APIReflectCall:
		result = NewStrSym(e.freshName(api.Name()))
	case dex.APIDecryptLoad, dex.APIInvokePayload:
		// Statically opaque: the payload cannot be decrypted offline.
		result = NewOpaque(api.Name(), args...)
	default:
		result = NewConst(dex.Nil())
	}
	if in.A != -1 {
		st.regs[in.A] = result
	}
}

// envName keys environment symbols by variable name when concrete, so
// two reads of the same variable share a symbol.
func (e *engine) envName(args []*Expr, prefix string) string {
	if len(args) == 1 && args[0].IsConst() {
		return prefix + ":" + args[0].Val.Str
	}
	return e.freshName(prefix)
}

func evalStrCmpConst(api dex.API, a, b string) dex.Value {
	switch api {
	case dex.APIStrEquals:
		return dex.Bool(a == b)
	case dex.APIStrStartsWith:
		return dex.Bool(len(a) >= len(b) && a[:len(b)] == b)
	case dex.APIStrEndsWith:
		return dex.Bool(len(a) >= len(b) && a[len(a)-len(b):] == b)
	default:
		return dex.Bool(strContains(a, b))
	}
}

func strContains(a, b string) bool {
	for i := 0; i+len(b) <= len(a); i++ {
		if a[i:i+len(b)] == b {
			return true
		}
	}
	return false
}
