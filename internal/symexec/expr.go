// Package symexec is the path-exploration adversary (paper §2.1,
// §5): a symbolic executor over dex bytecode with a constraint
// solver, in the style of TriggerScope/MineSweeper. Handler arguments,
// static fields, environment reads, and random values are symbolic;
// conditional branches fork; reaching a sensitive API (decryptLoad,
// getPublicKey, …) yields a path whose constraints the solver then
// tries to satisfy.
//
// The engine demonstrates the paper's central security argument: a
// plain trigger "X == c" is solved immediately (naive bombs and SSN
// fall), while the transformed trigger "sha1Hex(X|salt) == Hc" leaves
// an uninterpreted-function constraint no solver can invert, so
// BombDroid payload keys are never recovered (goal G1).
package symexec

import (
	"fmt"
	"sort"
	"strings"

	"bombdroid/internal/dex"
)

// ExprKind discriminates symbolic expressions.
type ExprKind uint8

// Expression kinds.
const (
	EConst  ExprKind = iota // concrete value
	ELin                    // linear integer expression over symbols
	EMod                    // (linear expr) mod K
	EStrSym                 // symbolic string
	EStrCmp                 // boolean result of a string comparison API
	EOpaque                 // uninterpreted function application
)

// Expr is a symbolic value.
type Expr struct {
	Kind ExprKind
	Val  dex.Value        // EConst
	Coef map[string]int64 // ELin: symbol -> coefficient
	Off  int64            // ELin offset
	X    *Expr            // EMod operand; EStrCmp left
	K    int64            // EMod modulus
	Sym  string           // EStrSym symbol name
	API  dex.API          // EStrCmp comparison
	Y    *Expr            // EStrCmp right
	Fn   string           // EOpaque function name
	Args []*Expr          // EOpaque arguments
}

// NewConst wraps a concrete value.
func NewConst(v dex.Value) *Expr { return &Expr{Kind: EConst, Val: v} }

// NewIntSym returns a fresh symbolic integer.
func NewIntSym(name string) *Expr {
	return &Expr{Kind: ELin, Coef: map[string]int64{name: 1}}
}

// NewStrSym returns a fresh symbolic string.
func NewStrSym(name string) *Expr { return &Expr{Kind: EStrSym, Sym: name} }

// NewOpaque returns an uninterpreted application.
func NewOpaque(fn string, args ...*Expr) *Expr {
	return &Expr{Kind: EOpaque, Fn: fn, Args: args}
}

// IsConst reports whether e is concrete.
func (e *Expr) IsConst() bool { return e.Kind == EConst }

// ConstInt returns the concrete integer, if e is one.
func (e *Expr) ConstInt() (int64, bool) {
	if e.Kind == EConst && e.Val.Kind == dex.KindInt {
		return e.Val.Int, true
	}
	if e.Kind == ELin && len(e.Coef) == 0 {
		return e.Off, true
	}
	return 0, false
}

// Symbols collects the symbol names appearing in e.
func (e *Expr) Symbols(into map[string]bool) {
	switch e.Kind {
	case ELin:
		for s := range e.Coef {
			into[s] = true
		}
	case EMod:
		e.X.Symbols(into)
	case EStrSym:
		into[e.Sym] = true
	case EStrCmp:
		e.X.Symbols(into)
		e.Y.Symbols(into)
	case EOpaque:
		for _, a := range e.Args {
			a.Symbols(into)
		}
	}
}

// String renders the expression.
func (e *Expr) String() string {
	switch e.Kind {
	case EConst:
		return e.Val.String()
	case ELin:
		var parts []string
		syms := make([]string, 0, len(e.Coef))
		for s := range e.Coef {
			syms = append(syms, s)
		}
		sort.Strings(syms)
		for _, s := range syms {
			c := e.Coef[s]
			if c == 1 {
				parts = append(parts, s)
			} else {
				parts = append(parts, fmt.Sprintf("%d*%s", c, s))
			}
		}
		if e.Off != 0 || len(parts) == 0 {
			parts = append(parts, fmt.Sprintf("%d", e.Off))
		}
		return strings.Join(parts, " + ")
	case EMod:
		return fmt.Sprintf("(%s mod %d)", e.X, e.K)
	case EStrSym:
		return e.Sym
	case EStrCmp:
		return fmt.Sprintf("%s(%s, %s)", e.API.Name(), e.X, e.Y)
	case EOpaque:
		var args []string
		for _, a := range e.Args {
			args = append(args, a.String())
		}
		return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(args, ", "))
	}
	return "?"
}

// addLin adds two linear expressions.
func addLin(a, b *Expr) *Expr {
	out := &Expr{Kind: ELin, Coef: map[string]int64{}, Off: a.linOff() + b.linOff()}
	for s, c := range a.linCoef() {
		out.Coef[s] += c
	}
	for s, c := range b.linCoef() {
		out.Coef[s] += c
	}
	for s, c := range out.Coef {
		if c == 0 {
			delete(out.Coef, s)
		}
	}
	return out.normalize()
}

// scaleLin multiplies a linear expression by a constant.
func scaleLin(a *Expr, k int64) *Expr {
	out := &Expr{Kind: ELin, Coef: map[string]int64{}, Off: a.linOff() * k}
	for s, c := range a.linCoef() {
		if c*k != 0 {
			out.Coef[s] = c * k
		}
	}
	return out.normalize()
}

func (e *Expr) linCoef() map[string]int64 {
	if e.Kind == ELin {
		return e.Coef
	}
	return nil
}

func (e *Expr) linOff() int64 {
	switch e.Kind {
	case ELin:
		return e.Off
	case EConst:
		return e.Val.Int
	}
	return 0
}

// normalize folds an empty linear expression to a constant.
func (e *Expr) normalize() *Expr {
	if e.Kind == ELin && len(e.Coef) == 0 {
		return NewConst(dex.Int64(e.Off))
	}
	return e
}

// asLinear views e as linear if possible (constants become offsets).
func asLinear(e *Expr) (*Expr, bool) {
	switch e.Kind {
	case ELin:
		return e, true
	case EConst:
		if e.Val.Kind == dex.KindInt {
			return &Expr{Kind: ELin, Coef: map[string]int64{}, Off: e.Val.Int}, true
		}
	}
	return nil, false
}

// CmpKind is a constraint comparison.
type CmpKind uint8

// Comparisons.
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpLt
	CmpGe
	CmpGt
	CmpLe
)

// String returns the symbol.
func (c CmpKind) String() string {
	return [...]string{"==", "!=", "<", ">=", ">", "<="}[c]
}

// Negate returns the complementary comparison.
func (c CmpKind) Negate() CmpKind {
	switch c {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpGe:
		return CmpLt
	case CmpGt:
		return CmpLe
	default:
		return CmpGt
	}
}

// Constraint is one path condition: L cmp R.
type Constraint struct {
	Cmp  CmpKind
	L, R *Expr
}

// String renders the constraint.
func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Cmp, c.R)
}
