package symexec

import (
	"fmt"

	"bombdroid/internal/dex"
)

// Solve attempts to satisfy a path's constraints, returning concrete
// symbol assignments. It handles what real trigger-analysis solvers
// handle: linear integer (in)equalities, modular equalities from
// array-index/`% k` arithmetic, and string (in)equality against
// literals. Constraints over uninterpreted functions — cryptographic
// hashes above all — are reported unsolvable with a reason, which is
// precisely the paper's G1 claim.
func Solve(cons []Constraint) (map[string]dex.Value, bool, string) {
	s := &solver{
		eq:     map[string]int64{},
		strEq:  map[string]string{},
		ne:     map[string][]int64{},
		strNe:  map[string][]string{},
		bounds: map[string]*interval{},
	}
	for _, c := range cons {
		if ok, reason := s.add(c); !ok {
			return nil, false, reason
		}
	}
	asg, ok, reason := s.finish()
	if !ok {
		return nil, false, reason
	}
	// Verify: every constraint must evaluate true (or be unevaluable
	// only because of benign Ne-against-opaque forms).
	for _, c := range cons {
		if res, known := evalConstraint(c, asg); known && !res {
			return nil, false, fmt.Sprintf("verification failed for %s", c)
		}
	}
	return asg, true, ""
}

type interval struct {
	lo, hi int64
	hasLo  bool
	hasHi  bool
}

type solver struct {
	eq     map[string]int64
	strEq  map[string]string
	ne     map[string][]int64
	strNe  map[string][]string
	bounds map[string]*interval
}

// add digests one constraint.
func (s *solver) add(c Constraint) (bool, string) {
	l, r := c.L, c.R
	// Prefer constant on the right.
	if l.IsConst() && !r.IsConst() {
		l, r = r, l
		c = Constraint{Cmp: flip(c.Cmp), L: l, R: r}
	}

	// String-comparison booleans: strcmp(x, lit) ==/!= 0.
	if l.Kind == EStrCmp {
		want, ok := wantedBool(c)
		if !ok {
			return false, "string comparison in non-boolean context"
		}
		return s.addStrCmp(l, want)
	}

	// Uninterpreted functions.
	if containsOpaque(l) || containsOpaque(r) {
		if c.Cmp == CmpNe {
			// hash(x) != const holds for almost every x: vacuous.
			return true, ""
		}
		return false, "uninterpreted function " + opaqueName(l, r) + " cannot be inverted"
	}

	// String symbol against literal.
	if l.Kind == EStrSym && r.IsConst() && r.Val.Kind == dex.KindStr {
		switch c.Cmp {
		case CmpEq:
			if prev, dup := s.strEq[l.Sym]; dup && prev != r.Val.Str {
				return false, "conflicting string equalities on " + l.Sym
			}
			s.strEq[l.Sym] = r.Val.Str
			return true, ""
		case CmpNe:
			s.strNe[l.Sym] = append(s.strNe[l.Sym], r.Val.Str)
			return true, ""
		}
		return false, "ordered comparison on strings"
	}

	// Modular equality: (lin mod K) cmp c.
	if l.Kind == EMod {
		k, kok := r.ConstInt()
		if !kok {
			return false, "modular constraint against non-constant"
		}
		return s.addMod(l, c.Cmp, k)
	}

	// Linear.
	ll, lok := asLinear(l)
	rl, rok := asLinear(r)
	if !lok || !rok {
		return false, fmt.Sprintf("unsupported constraint form %s", c)
	}
	diff := addLin(ll, scaleLin(rl, -1)) // diff cmp 0
	dl, _ := asLinear(diff)
	switch len(dl.linCoef()) {
	case 0:
		if holdsConst(c.Cmp, dl.linOff()) {
			return true, ""
		}
		return false, "contradictory constant constraint"
	case 1:
		var sym string
		var a int64
		for sname, coef := range dl.linCoef() {
			sym, a = sname, coef
		}
		return s.addSingle(sym, a, dl.linOff(), c.Cmp)
	default:
		// Multi-symbol: satisfy greedily by zeroing all but one symbol.
		var sym string
		var a int64
		for sname, coef := range dl.linCoef() {
			if _, pinned := s.eq[sname]; !pinned {
				sym, a = sname, coef
				break
			}
		}
		if sym == "" {
			return false, "over-constrained multi-symbol relation"
		}
		off := dl.linOff()
		for sname, coef := range dl.linCoef() {
			if sname == sym {
				continue
			}
			if v, pinned := s.eq[sname]; pinned {
				off += coef * v
			} else {
				s.eq[sname] = 0
			}
		}
		return s.addSingle(sym, a, off, c.Cmp)
	}
}

// addSingle handles a*x + off cmp 0.
func (s *solver) addSingle(sym string, a, off int64, cmp CmpKind) (bool, string) {
	switch cmp {
	case CmpEq:
		if off%a != 0 {
			return false, "non-integral solution for " + sym
		}
		v := -off / a
		if prev, dup := s.eq[sym]; dup && prev != v {
			return false, "conflicting equalities on " + sym
		}
		s.eq[sym] = v
	case CmpNe:
		if off%a == 0 {
			s.ne[sym] = append(s.ne[sym], -off/a)
		}
	default:
		// a*x + off cmp 0 → bound on x (sign of a matters).
		iv := s.bounds[sym]
		if iv == nil {
			iv = &interval{}
			s.bounds[sym] = iv
		}
		// Convert to x cmp' bound.
		bound, cmp2 := solveIneq(a, off, cmp)
		switch cmp2 {
		case CmpLt:
			if !iv.hasHi || bound-1 < iv.hi {
				iv.hi, iv.hasHi = bound-1, true
			}
		case CmpLe:
			if !iv.hasHi || bound < iv.hi {
				iv.hi, iv.hasHi = bound, true
			}
		case CmpGt:
			if !iv.hasLo || bound+1 > iv.lo {
				iv.lo, iv.hasLo = bound+1, true
			}
		case CmpGe:
			if !iv.hasLo || bound > iv.lo {
				iv.lo, iv.hasLo = bound, true
			}
		}
		if iv.hasLo && iv.hasHi && iv.lo > iv.hi {
			return false, "empty interval for " + sym
		}
	}
	return true, ""
}

// solveIneq converts a*x + off cmp 0 into x cmp' bound (floor
// division; exactness is restored by the final verification pass).
func solveIneq(a, off int64, cmp CmpKind) (int64, CmpKind) {
	bound := -off / a
	if a < 0 {
		switch cmp {
		case CmpLt:
			cmp = CmpGt
		case CmpLe:
			cmp = CmpGe
		case CmpGt:
			cmp = CmpLt
		case CmpGe:
			cmp = CmpLe
		}
	}
	return bound, cmp
}

// addMod handles (lin mod K) cmp v.
func (s *solver) addMod(m *Expr, cmp CmpKind, v int64) (bool, string) {
	lin := m.X
	coef := lin.linCoef()
	if len(coef) != 1 {
		return false, "multi-symbol modular constraint"
	}
	var sym string
	var a int64
	for sname, c := range coef {
		sym, a = sname, c
	}
	if a != 1 && a != -1 {
		return false, "scaled modular constraint"
	}
	switch cmp {
	case CmpEq:
		if v < 0 || v >= m.K {
			return false, "modular equality outside range"
		}
		// x ≡ (v - off) * a (mod K); choose the smallest non-negative
		// representative unless already pinned compatibly.
		want := ((v-lin.linOff())*a%m.K + m.K) % m.K
		if prev, dup := s.eq[sym]; dup {
			if ((prev%m.K)+m.K)%m.K != want {
				return false, "conflicting modular equality on " + sym
			}
			return true, ""
		}
		s.eq[sym] = want
	case CmpNe:
		// Avoid one residue: remember as inequality on the residue by
		// excluding the smallest representative (refined at finish).
		want := ((v-lin.linOff())*a%m.K + m.K) % m.K
		s.ne[sym] = append(s.ne[sym], want)
	default:
		// Range constraints on residues: accept and let verification
		// filter (residues are 0..K-1, usually compatible).
	}
	return true, ""
}

// addStrCmp handles strcmp(x, lit) being required true/false.
func (s *solver) addStrCmp(e *Expr, want bool) (bool, string) {
	x, y := e.X, e.Y
	if x.IsConst() && !y.IsConst() {
		x, y = y, x
	}
	if containsOpaque(x) || containsOpaque(y) {
		if !want {
			return true, "" // hash != literal: vacuous
		}
		return false, "uninterpreted function " + opaqueName(x, y) + " cannot be inverted"
	}
	if x.Kind != EStrSym || !y.IsConst() || y.Val.Kind != dex.KindStr {
		return false, "unsupported string comparison operands"
	}
	lit := y.Val.Str
	if want {
		// equals: x = lit; startsWith/endsWith: lit itself satisfies.
		if prev, dup := s.strEq[x.Sym]; dup && prev != lit &&
			!(e.API != dex.APIStrEquals && compatible(e.API, prev, lit)) {
			return false, "conflicting string constraints on " + x.Sym
		}
		if _, dup := s.strEq[x.Sym]; !dup {
			s.strEq[x.Sym] = lit
		}
		return true, ""
	}
	s.strNe[x.Sym] = append(s.strNe[x.Sym], lit)
	return true, ""
}

func compatible(api dex.API, val, lit string) bool {
	switch api {
	case dex.APIStrStartsWith:
		return len(val) >= len(lit) && val[:len(lit)] == lit
	case dex.APIStrEndsWith:
		return len(val) >= len(lit) && val[len(val)-len(lit):] == lit
	}
	return val == lit
}

// finish materializes an assignment.
func (s *solver) finish() (map[string]dex.Value, bool, string) {
	asg := map[string]dex.Value{}
	for sym, v := range s.eq {
		asg[sym] = dex.Int64(v)
	}
	for sym, str := range s.strEq {
		asg[sym] = dex.Str(str)
	}
	// Symbols with only bounds / disequalities: pick a value.
	pickInt := func(sym string) int64 {
		iv := s.bounds[sym]
		v := int64(0)
		if iv != nil && iv.hasLo {
			v = iv.lo
		}
		avoid := map[int64]bool{}
		for _, x := range s.ne[sym] {
			avoid[x] = true
		}
		for avoid[v] {
			v++
			if iv != nil && iv.hasHi && v > iv.hi {
				return v // verification will catch emptiness
			}
		}
		return v
	}
	for sym := range s.bounds {
		if _, done := asg[sym]; !done {
			asg[sym] = dex.Int64(pickInt(sym))
		}
	}
	for sym := range s.ne {
		if _, done := asg[sym]; !done {
			asg[sym] = dex.Int64(pickInt(sym))
		} else if asg[sym].Kind == dex.KindInt {
			for _, x := range s.ne[sym] {
				if asg[sym].Int == x {
					return nil, false, "equality conflicts with disequality on " + sym
				}
			}
		}
	}
	for sym, avoid := range s.strNe {
		if cur, done := asg[sym]; done {
			for _, a := range avoid {
				if cur.Str == a {
					return nil, false, "string equality conflicts with disequality on " + sym
				}
			}
			continue
		}
		asg[sym] = dex.Str(freshString(avoid))
	}
	return asg, true, ""
}

func freshString(avoid []string) string {
	cand := "x"
	for {
		clash := false
		for _, a := range avoid {
			if a == cand {
				clash = true
			}
		}
		if !clash {
			return cand
		}
		cand += "x"
	}
}

// wantedBool interprets "strcmp ==/!= 0" as a boolean requirement on
// the comparison result.
func wantedBool(c Constraint) (want, ok bool) {
	v, isConst := c.R.ConstInt()
	if !isConst || v != 0 {
		return false, false
	}
	switch c.Cmp {
	case CmpEq:
		return false, true
	case CmpNe:
		return true, true
	}
	return false, false
}

func flip(c CmpKind) CmpKind {
	switch c {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return c
}

func containsOpaque(e *Expr) bool {
	switch e.Kind {
	case EOpaque:
		return true
	case EMod:
		return containsOpaque(e.X)
	case EStrCmp:
		return containsOpaque(e.X) || containsOpaque(e.Y)
	}
	return false
}

func opaqueName(l, r *Expr) string {
	for _, e := range []*Expr{l, r} {
		if e.Kind == EOpaque {
			return e.Fn
		}
		if e.Kind == EStrCmp {
			if n := opaqueName(e.X, e.Y); n != "?" {
				return n
			}
		}
	}
	return "?"
}

func holdsConst(cmp CmpKind, v int64) bool {
	switch cmp {
	case CmpEq:
		return v == 0
	case CmpNe:
		return v != 0
	case CmpLt:
		return v < 0
	case CmpLe:
		return v <= 0
	case CmpGt:
		return v > 0
	default:
		return v >= 0
	}
}

// evalConstraint evaluates a constraint under an assignment; known is
// false when opaque terms block evaluation.
func evalConstraint(c Constraint, asg map[string]dex.Value) (result, known bool) {
	lv, lok := evalExpr(c.L, asg)
	rv, rok := evalExpr(c.R, asg)
	if !lok || !rok {
		return false, false
	}
	if lv.Kind == dex.KindInt && rv.Kind == dex.KindInt {
		return holdsConst(c.Cmp, lv.Int-rv.Int), true
	}
	eq := lv.Equal(rv)
	switch c.Cmp {
	case CmpEq:
		return eq, true
	case CmpNe:
		return !eq, true
	}
	return false, false
}

func evalExpr(e *Expr, asg map[string]dex.Value) (dex.Value, bool) {
	switch e.Kind {
	case EConst:
		return e.Val, true
	case ELin:
		total := e.Off
		for sym, coef := range e.Coef {
			v, ok := asg[sym]
			if !ok || v.Kind != dex.KindInt {
				return dex.Value{}, false
			}
			total += coef * v.Int
		}
		return dex.Int64(total), true
	case EMod:
		v, ok := evalExpr(e.X, asg)
		if !ok || v.Kind != dex.KindInt || e.K == 0 {
			return dex.Value{}, false
		}
		return dex.Int64(((v.Int % e.K) + e.K) % e.K), true
	case EStrSym:
		v, ok := asg[e.Sym]
		return v, ok && v.Kind == dex.KindStr
	case EStrCmp:
		x, ok1 := evalExpr(e.X, asg)
		y, ok2 := evalExpr(e.Y, asg)
		if !ok1 || !ok2 || x.Kind != dex.KindStr || y.Kind != dex.KindStr {
			return dex.Value{}, false
		}
		return evalStrCmpConst(e.API, x.Str, y.Str), true
	}
	return dex.Value{}, false
}
