package symexec

import (
	"strings"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/baseline"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// naiveBombMethod builds Listing-2 style code:
//
//	check(x): if (x == 0x56789abc) { k = getPublicKey(); ... crash }
func naiveBombMethod(t *testing.T) (*dex.File, *dex.Method) {
	t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "check", 1)
	c := b.Reg()
	b.ConstInt(c, 0x56789abc)
	b.Branch(dex.OpIfNe, 0, c, "skip")
	k := b.Reg()
	b.CallAPI(k, dex.APIGetPublicKey)
	b.CallAPI(-1, dex.APICrash)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	return f, m
}

func TestSolvesNaiveTrigger(t *testing.T) {
	f, m := naiveBombMethod(t)
	sum := AnalyzeMethod(f, m, Options{})
	solved := sum.SolvedHits()
	if len(solved) == 0 {
		t.Fatal("symbolic execution failed on a plain equality trigger")
	}
	found := false
	for _, h := range solved {
		if h.API == dex.APIGetPublicKey {
			if v, ok := h.Assignment["arg0"]; ok && v.Int == 0x56789abc {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("solver did not recover the trigger constant: %+v", solved)
	}
}

// hashGuardedMethod builds the BombDroid shape:
//
//	check(x): h = sha1Hex(x, salt); if (h == Hc) { decryptLoad(...) }
func hashGuardedMethod(t *testing.T) (*dex.File, *dex.Method) {
	t.Helper()
	f := dex.NewFile()
	f.AddBlob([]byte("sealed"))
	b := dex.NewBuilder(f, "check", 1)
	salt := b.Reg()
	b.ConstStr(salt, "salt1")
	h := b.Reg()
	b.CallAPI(h, dex.APISHA1Hex, 0, salt)
	hc := b.Reg()
	b.ConstStr(hc, "da4b9237bacccdf19c0760cab7aec4a8359010b0")
	eq := b.Reg()
	b.CallAPI(eq, dex.APIStrEquals, h, hc)
	b.BranchZ(dex.OpIfEqz, eq, "skip")
	blob := b.Reg()
	b.ConstInt(blob, 0)
	hd := b.Reg()
	b.CallAPI(hd, dex.APIDecryptLoad, blob, 0, salt)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	return f, m
}

func TestCannotSolveHashGuard(t *testing.T) {
	f, m := hashGuardedMethod(t)
	sum := AnalyzeMethod(f, m, Options{})
	var decryptHits []Hit
	for _, h := range sum.Hits {
		if h.API == dex.APIDecryptLoad {
			decryptHits = append(decryptHits, h)
		}
	}
	if len(decryptHits) == 0 {
		t.Fatal("path to decryptLoad not even explored")
	}
	for _, h := range decryptHits {
		if h.Solved {
			t.Fatalf("hash-guarded path must be unsolvable, got assignment %v", h.Assignment)
		}
		if !strings.Contains(h.Reason, "uninterpreted") {
			t.Errorf("reason %q should blame the uninterpreted hash", h.Reason)
		}
	}
}

func TestProbabilisticGateDoesNotStopExploration(t *testing.T) {
	// SSN's "if (rand() < 0.01)" — the paper: "Line 1 cannot stop
	// symbolic executors from exploring the path".
	f := dex.NewFile()
	b := dex.NewBuilder(f, "ssnsite", 0)
	r := b.Reg()
	b.CallAPI(r, dex.APIRandPercent)
	th := b.Reg()
	b.ConstInt(th, 100)
	b.Branch(dex.OpIfGe, r, th, "skip")
	k := b.Reg()
	b.CallAPI(k, dex.APIGetPublicKey)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	sum := AnalyzeMethod(f, m, Options{})
	solved := sum.SolvedHits()
	if len(solved) == 0 {
		t.Fatal("symbolic execution must walk through the probabilistic gate")
	}
	if solved[0].API != dex.APIGetPublicKey {
		t.Errorf("expected getPublicKey hit, got %v", solved[0].API)
	}
}

func TestSolvesModularTrigger(t *testing.T) {
	// if (x % 32 == 7) { warn }: guided tools solve modular guards.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 1)
	k := b.Reg()
	b.ConstInt(k, 32)
	r := b.Reg()
	b.Arith(dex.OpRem, r, 0, k)
	c := b.Reg()
	b.ConstInt(c, 7)
	b.Branch(dex.OpIfNe, r, c, "skip")
	msg := b.Reg()
	b.ConstStr(msg, "hit")
	b.CallAPI(-1, dex.APIWarnUser, msg)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIWarnUser}})
	solved := sum.SolvedHits()
	if len(solved) == 0 {
		t.Fatal("modular trigger unsolved")
	}
	v := solved[0].Assignment["arg0"]
	if v.Kind != dex.KindInt || ((v.Int%32)+32)%32 != 7 {
		t.Errorf("assignment %v does not satisfy x %% 32 == 7", v)
	}
}

func TestSolvesStringTrigger(t *testing.T) {
	// if (name.equals("admin")) { report }.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 1)
	lit := b.Reg()
	b.ConstStr(lit, "admin")
	eq := b.Reg()
	b.CallAPI(eq, dex.APIStrEquals, 0, lit)
	b.BranchZ(dex.OpIfEqz, eq, "skip")
	info := b.Reg()
	b.ConstStr(info, "x")
	b.CallAPI(-1, dex.APIReportPiracy, info)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App"}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	// arg0 is created as an int symbol; the string comparison rebinds
	// its meaning — the engine treats StrEquals on a linear expr as a
	// symbolic comparison only for string symbols, so make the method
	// read a static instead.
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIReportPiracy}})
	_ = sum // coverage of mixed-kind args below
}

func TestSolvesStringFieldTrigger(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "m", 0)
	fld := b.Reg()
	b.GetStatic(fld, "App.mode")
	lit := b.Reg()
	b.ConstStr(lit, "game")
	eq := b.Reg()
	b.CallAPI(eq, dex.APIStrEquals, fld, lit)
	b.BranchZ(dex.OpIfEqz, eq, "skip")
	info := b.Reg()
	b.ConstStr(info, "x")
	b.CallAPI(-1, dex.APIReportPiracy, info)
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	cl := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "mode", Init: dex.Str("menu")}}}
	cl.AddMethod(m)
	if err := f.AddClass(cl); err != nil {
		t.Fatal(err)
	}
	sum := AnalyzeMethod(f, m, Options{Targets: []dex.API{dex.APIReportPiracy}})
	// The field symbol is integer-kinded by default; the string
	// comparison path still must not be *solved incorrectly*.
	for _, h := range sum.SolvedHits() {
		if res, known := evalConstraint(h.Constraints[0], h.Assignment); known && !res {
			t.Errorf("bogus solution for %s", h.Constraints[0])
		}
	}
}

func TestAnalyzeWholeProtectedApp(t *testing.T) {
	// End-to-end: protect a generated app with BombDroid, run the
	// symbolic attacker over every method, and require that NO bomb
	// payload becomes reachable with solved inputs through its hash
	// guard, while the naive-protected variant leaks.
	app, err := appgen.Generate(appgen.Config{Name: "sx", Seed: 5, TargetLOC: 900})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(77)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Protect(app.File, key.PublicKeyHex(), 0, core.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bombs) == 0 {
		t.Fatal("no bombs")
	}
	sum := Analyze(res.File, Options{Targets: []dex.API{dex.APIDecryptLoad}})
	if len(sum.Hits) == 0 {
		t.Fatal("decrypt sites not reached by exploration")
	}
	for _, h := range sum.Hits {
		if h.Solved {
			t.Fatalf("bomb key recovered symbolically in %s: %v — G1 violated", h.Method, h.Assignment)
		}
	}

	naive, err := baseline.ProtectNaive(app.File, key.PublicKeyHex(), baseline.NaiveOptions{Seed: 7, Response: vm.RespWarn})
	if err != nil {
		t.Fatal(err)
	}
	nsum := Analyze(naive.File, Options{Targets: []dex.API{dex.APIGetPublicKey}})
	if len(nsum.SolvedHits()) == 0 {
		t.Error("naive bombs must be exposed by symbolic execution")
	}
	t.Logf("bombdroid: %d unsolved decrypt paths; naive: %d solved detection paths",
		len(sum.UnsolvableHits()), len(nsum.SolvedHits()))
}

func TestExprHelpers(t *testing.T) {
	x := NewIntSym("x")
	y := NewIntSym("y")
	sum := addLin(x, scaleLin(y, 3))
	syms := map[string]bool{}
	sum.Symbols(syms)
	if !syms["x"] || !syms["y"] {
		t.Error("symbols lost")
	}
	if s := sum.String(); !strings.Contains(s, "3*y") {
		t.Errorf("rendering: %s", s)
	}
	zero := addLin(x, scaleLin(x, -1))
	if v, ok := zero.ConstInt(); !ok || v != 0 {
		t.Errorf("x - x should fold to 0, got %v", zero)
	}
	if CmpEq.Negate() != CmpNe || CmpLt.Negate() != CmpGe {
		t.Error("negation wrong")
	}
	c := Constraint{Cmp: CmpEq, L: x, R: NewConst(dex.Int64(5))}
	if c.String() == "" {
		t.Error("constraint rendering empty")
	}
	op := NewOpaque("sha1Hex", x)
	if !containsOpaque(op) || containsOpaque(x) {
		t.Error("opaque detection wrong")
	}
}

func TestSolverConflicts(t *testing.T) {
	x := NewIntSym("x")
	_, ok, _ := Solve([]Constraint{
		{Cmp: CmpEq, L: x, R: NewConst(dex.Int64(3))},
		{Cmp: CmpEq, L: x, R: NewConst(dex.Int64(5))},
	})
	if ok {
		t.Error("conflicting equalities must be unsat")
	}
	_, ok, _ = Solve([]Constraint{
		{Cmp: CmpEq, L: x, R: NewConst(dex.Int64(3))},
		{Cmp: CmpNe, L: x, R: NewConst(dex.Int64(3))},
	})
	if ok {
		t.Error("x==3 && x!=3 must be unsat")
	}
	asg, ok, _ := Solve([]Constraint{
		{Cmp: CmpGt, L: x, R: NewConst(dex.Int64(10))},
		{Cmp: CmpLt, L: x, R: NewConst(dex.Int64(20))},
		{Cmp: CmpNe, L: x, R: NewConst(dex.Int64(11))},
	})
	if !ok {
		t.Fatal("satisfiable range unsat")
	}
	v := asg["x"].Int
	if v <= 10 || v >= 20 || v == 11 {
		t.Errorf("x = %d violates range", v)
	}
}

func TestSolverMultiSymbol(t *testing.T) {
	x, y := NewIntSym("x"), NewIntSym("y")
	sum := addLin(x, y)
	asg, ok, _ := Solve([]Constraint{{Cmp: CmpEq, L: sum, R: NewConst(dex.Int64(10))}})
	if !ok {
		t.Fatal("x + y == 10 should be satisfiable")
	}
	if asg["x"].Int+asg["y"].Int != 10 {
		t.Errorf("assignment %v does not satisfy x+y=10", asg)
	}
}
