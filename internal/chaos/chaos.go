// Package chaos is the fault-injection harness: a deterministic,
// seedable source of the faults a deployed bomb lifecycle actually
// meets — flash corruption garbling sealed payloads, bit rot in the
// installed dex image, devices misreporting their own environment,
// and a lossy network dropping, delaying, duplicating, or reordering
// detection events on the way to the market.
//
// The harness never asserts anything itself; it only injects. The
// invariants live with the components under test: the VM and lockbox
// must fail closed (app keeps its normal semantics, no panic), and
// the report pipeline must deliver each unique detection exactly once
// regardless of what the channel does. Campaigns in internal/sim
// drive both against profiles from this package.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"bombdroid/internal/dex"
	"bombdroid/internal/report"
	"bombdroid/internal/vm"
)

// Profile is one composable fault configuration. Every field is a
// probability in [0,1] applied per opportunity (per decrypt attempt,
// per submitted event, ...) except DelayEventMs, which scales the
// delay fault. The zero value injects nothing.
type Profile struct {
	Name string

	// Bomb-lifecycle faults (device + storage domain).
	CorruptBlob  float64 // bit-flip a sealed lockbox ciphertext before decrypt
	TruncateBlob float64 // truncate a sealed lockbox ciphertext before decrypt
	BitFlipDex   float64 // bit-flip the installed dex image before a session
	EnvMisreport float64 // perturb device environment reads (env/GPS/sensor)

	// Detection-event channel faults (network domain).
	DropEvent    float64 // sink rejects a delivery attempt
	DupEvent     float64 // event submitted twice by the device
	DelayEvent   float64 // event submission delayed
	DelayEventMs int64   // maximum delay applied when DelayEvent hits
	ReorderEvent float64 // event submitted out of arrival order

	// Storage-layer faults (market WAL + checkpoint domain), drawn by
	// marketfs.Fault per filesystem operation.
	FsWriteFail  float64 // a write fails outright, no bytes applied (ENOSPC)
	FsShortWrite float64 // a write persists only a prefix and errors
	FsSyncFail   float64 // fsync reports failure and durability does not advance
}

// Named profiles, from benign to hostile.
var (
	None = Profile{Name: "none"}
	Mild = Profile{
		Name:        "mild",
		CorruptBlob: 0.05,
		DropEvent:   0.01, DupEvent: 0.05,
		DelayEvent: 0.05, DelayEventMs: 500,
	}
	Harsh = Profile{
		Name:        "harsh",
		CorruptBlob: 0.25, TruncateBlob: 0.10,
		BitFlipDex: 0.10, EnvMisreport: 0.10,
		DropEvent: 0.10, DupEvent: 0.20,
		DelayEvent: 0.20, DelayEventMs: 2000,
		ReorderEvent: 0.20,
	}
)

// Overlay composes two profiles: every non-zero field of over
// replaces the corresponding field of base. The result is named
// "base+over" so campaign output identifies the composition.
func Overlay(base, over Profile) Profile {
	out := base
	if over.CorruptBlob != 0 {
		out.CorruptBlob = over.CorruptBlob
	}
	if over.TruncateBlob != 0 {
		out.TruncateBlob = over.TruncateBlob
	}
	if over.BitFlipDex != 0 {
		out.BitFlipDex = over.BitFlipDex
	}
	if over.EnvMisreport != 0 {
		out.EnvMisreport = over.EnvMisreport
	}
	if over.DropEvent != 0 {
		out.DropEvent = over.DropEvent
	}
	if over.DupEvent != 0 {
		out.DupEvent = over.DupEvent
	}
	if over.DelayEvent != 0 {
		out.DelayEvent = over.DelayEvent
	}
	if over.DelayEventMs != 0 {
		out.DelayEventMs = over.DelayEventMs
	}
	if over.ReorderEvent != 0 {
		out.ReorderEvent = over.ReorderEvent
	}
	if over.FsWriteFail != 0 {
		out.FsWriteFail = over.FsWriteFail
	}
	if over.FsShortWrite != 0 {
		out.FsShortWrite = over.FsShortWrite
	}
	if over.FsSyncFail != 0 {
		out.FsSyncFail = over.FsSyncFail
	}
	if base.Name != "" && over.Name != "" {
		out.Name = base.Name + "+" + over.Name
	} else if over.Name != "" {
		out.Name = over.Name
	}
	return out
}

// Injector draws faults from a profile deterministically: same seed,
// same profile, same call sequence — same faults. Safe for use from
// multiple goroutines.
type Injector struct {
	P Profile

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int
}

// NewInjector builds an injector over p seeded with seed.
func NewInjector(p Profile, seed int64) *Injector {
	return &Injector{P: p, rng: rand.New(rand.NewSource(seed)), counts: make(map[string]int)}
}

// Hit draws one fault decision at the given rate, counting kind when
// it fires. The rng advances on every call regardless of outcome, so
// fault positions are reproducible across rate changes of other
// kinds.
func (in *Injector) Hit(rate float64, kind string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := in.rng.Float64() < rate
	if hit {
		in.counts[kind]++
	}
	return hit
}

// CorruptBytes returns a copy of b with one to three bit flips at
// rng-chosen positions. Empty input comes back empty.
func (in *Injector) CorruptBytes(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, n := 0, 1+in.rng.Intn(3); i < n; i++ {
		out[in.rng.Intn(len(out))] ^= 1 << uint(in.rng.Intn(8))
	}
	return out
}

// TruncateBytes returns a prefix of b of rng-chosen length (possibly
// zero) — the torn-write storage fault.
func (in *Injector) TruncateBytes(b []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b[:in.rng.Intn(len(b))]...)
}

// DelayMs draws a delay in [1, DelayEventMs] (0 when the profile has
// no delay budget).
func (in *Injector) DelayMs() int64 {
	if in.P.DelayEventMs <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return 1 + in.rng.Int63n(in.P.DelayEventMs)
}

// Counts returns a copy of the per-kind fault tallies.
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// CountsString renders the tallies deterministically for reports.
func (in *Injector) CountsString() string {
	c := in.Counts()
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, c[k])
	}
	return s
}

// BlobFault returns the vm.Options.BlobFault hook applying the
// profile's ciphertext faults: truncation and bit flips on the sealed
// payload as read back from storage at decrypt time (post-install, so
// signature verification has already passed — exactly where flash
// corruption bites on a real device).
func (in *Injector) BlobFault() func(blob int64, sealed []byte) []byte {
	return func(blob int64, sealed []byte) []byte {
		if in.Hit(in.P.TruncateBlob, "blob-truncate") {
			return in.TruncateBytes(sealed)
		}
		if in.Hit(in.P.CorruptBlob, "blob-corrupt") {
			return in.CorruptBytes(sealed)
		}
		return sealed
	}
}

// CorruptDex bit-flips an encoded dex image per the BitFlipDex rate.
// The caller re-decodes it: a decode or validation failure there is a
// clean install-time rejection, which counts as failing closed.
func (in *Injector) CorruptDex(encoded []byte) ([]byte, bool) {
	if !in.Hit(in.P.BitFlipDex, "dex-bitflip") {
		return encoded, false
	}
	return in.CorruptBytes(encoded), true
}

// ApplyEnvFaults installs hooks on the environment-reading APIs so
// that, at the profile's EnvMisreport rate, a read returns a garbage
// value instead of the device's true state — a flaky sensor HAL. Reads
// that don't hit fall through to the real implementation.
func (in *Injector) ApplyEnvFaults(v *vm.VM) {
	misreportInt := func(kind string) vm.Hook {
		return func(vm.APICall) (dex.Value, bool, error) {
			if in.Hit(in.P.EnvMisreport, kind) {
				in.mu.Lock()
				bad := in.rng.Int63n(1 << 20)
				in.mu.Unlock()
				return dex.Int64(bad), true, nil
			}
			return dex.Nil(), false, nil
		}
	}
	v.Hook(dex.APIGetEnvStr, func(vm.APICall) (dex.Value, bool, error) {
		if in.Hit(in.P.EnvMisreport, "env-str") {
			return dex.Str("\x00corrupt\x00"), true, nil
		}
		return dex.Nil(), false, nil
	})
	v.Hook(dex.APIGetEnvInt, misreportInt("env-int"))
	v.Hook(dex.APIGPSLatE6, misreportInt("env-gps"))
	v.Hook(dex.APIGPSLonE6, misreportInt("env-gps"))
	v.Hook(dex.APISensorLight, misreportInt("env-sensor"))
	v.Hook(dex.APISensorTempC, misreportInt("env-sensor"))
}

// FlakySink wraps a report.Sink with channel faults: scheduled outage
// windows (virtual ms, [start,end)) during which every delivery
// fails, plus per-delivery drops at the profile's DropEvent rate. The
// pipeline's retry/breaker machinery is what turns this lossy channel
// back into exactly-once delivery.
type FlakySink struct {
	Inner   report.Sink
	Inj     *Injector
	Outages [][2]int64
}

// Deliver implements report.Sink.
func (s *FlakySink) Deliver(ev report.Event, nowMs int64) error {
	for _, w := range s.Outages {
		if nowMs >= w[0] && nowMs < w[1] {
			if s.Inj != nil {
				s.Inj.Hit(1, "sink-outage")
			}
			return report.ErrSinkDown
		}
	}
	if s.Inj != nil && s.Inj.Hit(s.Inj.P.DropEvent, "event-drop") {
		return report.ErrSinkDown
	}
	return s.Inner.Deliver(ev, nowMs)
}
