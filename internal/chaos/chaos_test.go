package chaos

import (
	"reflect"
	"testing"

	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
	"bombdroid/internal/report"
)

// Determinism is the harness's core promise: a campaign that found a
// bug must be replayable from its seed alone.
func TestInjectorDeterministic(t *testing.T) {
	run := func() (hits []bool, blobs [][]byte, counts map[string]int) {
		in := NewInjector(Harsh, 42)
		for i := 0; i < 200; i++ {
			hits = append(hits, in.Hit(0.3, "x"))
		}
		src := []byte("sealed payload bytes for corruption")
		for i := 0; i < 20; i++ {
			blobs = append(blobs, in.CorruptBytes(src), in.TruncateBytes(src))
		}
		return hits, blobs, in.Counts()
	}
	h1, b1, c1 := run()
	h2, b2, c2 := run()
	if !reflect.DeepEqual(h1, h2) || !reflect.DeepEqual(b1, b2) || !reflect.DeepEqual(c1, c2) {
		t.Error("same seed must reproduce the same fault sequence")
	}
	in3 := NewInjector(Harsh, 43)
	h3 := make([]bool, 200)
	for i := range h3 {
		h3[i] = in3.Hit(0.3, "x")
	}
	if reflect.DeepEqual(h1, h3) {
		t.Error("different seeds should diverge")
	}
}

func TestCorruptAndTruncateActuallyDamage(t *testing.T) {
	in := NewInjector(Harsh, 7)
	key := lockbox.DeriveKey(dex.Int64(9), "s")
	sealed, err := lockbox.Seal([]byte("payload"), key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mut := in.CorruptBytes(sealed)
		if len(mut) != len(sealed) {
			t.Fatal("CorruptBytes must preserve length")
		}
		if string(mut) == string(sealed) {
			t.Error("CorruptBytes left the blob intact")
		}
		if _, err := lockbox.Open(mut, key); err == nil {
			t.Error("lockbox accepted a corrupted blob")
		}
		trunc := in.TruncateBytes(sealed)
		if len(trunc) >= len(sealed) {
			t.Error("TruncateBytes must shorten")
		}
		if _, err := lockbox.Open(trunc, key); err == nil {
			t.Error("lockbox accepted a truncated blob")
		}
	}
	if string(sealed) != string(mustSeal(t, key)) {
		t.Error("injector mutated the caller's blob in place")
	}
}

func mustSeal(t *testing.T, key []byte) []byte {
	t.Helper()
	sealed, err := lockbox.Seal([]byte("payload"), key)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

func TestBlobFaultRespectsRates(t *testing.T) {
	// Zero profile: the hook must be an identity function.
	id := NewInjector(None, 1).BlobFault()
	blob := []byte("sealed")
	for i := 0; i < 100; i++ {
		if string(id(0, blob)) != "sealed" {
			t.Fatal("None profile corrupted a blob")
		}
	}
	// Certain profile: every blob faulted.
	all := NewInjector(Profile{TruncateBlob: 1}, 1)
	hook := all.BlobFault()
	for i := 0; i < 20; i++ {
		if len(hook(0, blob)) >= len(blob) {
			t.Fatal("TruncateBlob=1 must truncate every blob")
		}
	}
	if all.Counts()["blob-truncate"] != 20 {
		t.Errorf("counts = %v", all.Counts())
	}
}

func TestOverlayComposition(t *testing.T) {
	got := Overlay(Mild, Profile{Name: "outage", DropEvent: 0.5, ReorderEvent: 0.3})
	if got.Name != "mild+outage" {
		t.Errorf("Name = %q", got.Name)
	}
	if got.DropEvent != 0.5 || got.ReorderEvent != 0.3 {
		t.Error("overlay fields not applied")
	}
	if got.CorruptBlob != Mild.CorruptBlob || got.DelayEventMs != Mild.DelayEventMs {
		t.Error("base fields not preserved")
	}
}

func TestFlakySinkOutagesAndDrops(t *testing.T) {
	mem := &report.MemorySink{}
	in := NewInjector(Profile{DropEvent: 1}, 5)
	s := &FlakySink{Inner: mem, Inj: in, Outages: [][2]int64{{100, 200}}}
	ev := report.Event{App: "a", Bomb: "b", User: "u"}
	if err := s.Deliver(ev, 150); err != report.ErrSinkDown {
		t.Errorf("delivery inside outage window: %v", err)
	}
	if err := s.Deliver(ev, 250); err != report.ErrSinkDown {
		t.Errorf("DropEvent=1 outside window: %v", err)
	}
	if len(mem.Delivered()) != 0 {
		t.Error("faulted deliveries leaked into the sink")
	}
	in.P.DropEvent = 0
	if err := s.Deliver(ev, 250); err != nil {
		t.Errorf("clean delivery: %v", err)
	}
	if len(mem.Delivered()) != 1 {
		t.Error("clean delivery did not reach the sink")
	}
}

func TestCorruptDexRate(t *testing.T) {
	in := NewInjector(Profile{BitFlipDex: 1}, 3)
	enc := []byte("encoded dex image bytes")
	mut, hit := in.CorruptDex(enc)
	if !hit || string(mut) == string(enc) {
		t.Error("BitFlipDex=1 must corrupt")
	}
	none := NewInjector(None, 3)
	mut, hit = none.CorruptDex(enc)
	if hit || string(mut) != string(enc) {
		t.Error("zero profile must pass dex through")
	}
}
