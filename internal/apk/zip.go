package apk

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Pack writes the package as a real zip archive with the standard
// entry layout (classes.dex, res/*, META-INF/*) — the on-disk .apk
// form the command-line tools exchange.
func Pack(p *Package) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)

	write := func(name string, content []byte) error {
		w, err := zw.Create(name)
		if err != nil {
			return err
		}
		_, err = w.Write(content)
		return err
	}

	stringsDoc, err := json.Marshal(p.Res.Strings)
	if err != nil {
		return nil, fmt.Errorf("apk: encoding strings: %w", err)
	}
	var cert bytes.Buffer
	if p.Cert != nil {
		if err := p.Cert.encode(&cert); err != nil {
			return nil, fmt.Errorf("apk: encoding certificate: %w", err)
		}
	}
	manifest, err := json.Marshal(p.Manifest.Digests)
	if err != nil {
		return nil, fmt.Errorf("apk: encoding manifest: %w", err)
	}
	meta, err := json.Marshal(map[string]string{"name": p.Name, "author": p.Res.Author})
	if err != nil {
		return nil, fmt.Errorf("apk: encoding metadata: %w", err)
	}

	entries := []struct {
		name    string
		content []byte
	}{
		{EntryDex, p.Dex},
		{EntryStrings, stringsDoc},
		{EntryIcon, p.Res.Icon},
		{"meta.json", meta},
		{EntryManifest, manifest},
		{EntryCert, cert.Bytes()},
	}
	for _, e := range entries {
		if err := write(e.name, e.content); err != nil {
			return nil, fmt.Errorf("apk: writing %s: %w", e.name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: closing archive: %w", err)
	}
	return buf.Bytes(), nil
}

// Unpack parses an archive produced by Pack. It does not Verify; that
// is the installer's decision, mirroring how apktool unpacks
// regardless of signature state.
func Unpack(data []byte) (*Package, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: opening archive: %w", err)
	}
	content := make(map[string][]byte, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("apk: opening %s: %w", f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("apk: reading %s: %w", f.Name, err)
		}
		content[f.Name] = b
	}

	p := &Package{Manifest: Manifest{Digests: map[string]string{}}}
	p.Dex = content[EntryDex]
	if p.Dex == nil {
		return nil, fmt.Errorf("apk: archive missing %s", EntryDex)
	}
	if b := content[EntryStrings]; b != nil {
		if err := json.Unmarshal(b, &p.Res.Strings); err != nil {
			return nil, fmt.Errorf("apk: decoding strings: %w", err)
		}
	}
	p.Res.Icon = content[EntryIcon]
	if b := content["meta.json"]; b != nil {
		var meta map[string]string
		if err := json.Unmarshal(b, &meta); err != nil {
			return nil, fmt.Errorf("apk: decoding metadata: %w", err)
		}
		p.Name = meta["name"]
		p.Res.Author = meta["author"]
	}
	if b := content[EntryManifest]; b != nil {
		if err := json.Unmarshal(b, &p.Manifest.Digests); err != nil {
			return nil, fmt.Errorf("apk: decoding manifest: %w", err)
		}
	}
	if b := content[EntryCert]; len(b) > 0 {
		cert, err := decodeCertificate(bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		p.Cert = cert
	}
	return p, nil
}
