package apk

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"bombdroid/internal/dex"
)

// Manifest is MANIFEST.MF: the per-entry digest table the Android
// system manages after installation. App processes read it (code
// digest comparison, §4.1) but cannot modify it.
type Manifest struct {
	Digests map[string]string // entry name -> hex SHA-256
}

// DigestOf returns the recorded digest of an entry ("" if absent).
func (m Manifest) DigestOf(name string) string { return m.Digests[name] }

// EntryDigest is one manifest row in canonical order.
type EntryDigest struct {
	Entry  string
	Digest string
}

// SortedDigests renders the manifest as a slice sorted by entry name
// — the one canonical order every consumer shares (signing below, the
// market's resource fingerprints), so fingerprint bytes never depend
// on map iteration.
func (m Manifest) SortedDigests() []EntryDigest {
	out := make([]EntryDigest, 0, len(m.Digests))
	for n, d := range m.Digests {
		out = append(out, EntryDigest{Entry: n, Digest: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// canonical renders the manifest deterministically for signing.
func (m Manifest) canonical() []byte {
	var b strings.Builder
	b.WriteString("Manifest-Version: 1.0\n")
	for _, e := range m.SortedDigests() {
		fmt.Fprintf(&b, "Name: %s\nSHA-256-Digest: %s\n", e.Entry, e.Digest)
	}
	return []byte(b.String())
}

// Entry names inside the package.
const (
	EntryDex      = "classes.dex"
	EntryStrings  = "res/strings.xml"
	EntryIcon     = "res/icon.png"
	EntryAuthor   = "res/author.txt"
	EntryManifest = "META-INF/MANIFEST.MF"
	EntryCert     = "META-INF/CERT.RSA"
)

// Unsigned is a built-but-unsigned package: BombDroid's output before
// it goes back to the legitimate developer for signing (paper Fig. 1).
type Unsigned struct {
	Name string
	Dex  []byte
	Res  Resources
}

// Build assembles an unsigned package from a dex file and resources.
func Build(name string, file *dex.File, res Resources) *Unsigned {
	return &Unsigned{Name: name, Dex: dex.Encode(file), Res: res.Clone()}
}

// Package is an installed-form APK: content, manifest, certificate.
type Package struct {
	Name     string
	Dex      []byte
	Res      Resources
	Manifest Manifest
	Cert     *Certificate
}

// DigestHex returns the hex SHA-256 of content.
func DigestHex(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}

// buildManifest digests every content entry.
func buildManifest(u *Unsigned) Manifest {
	return Manifest{Digests: map[string]string{
		EntryDex:     DigestHex(u.Dex),
		EntryStrings: DigestHex(u.Res.encodeStrings()),
		EntryIcon:    DigestHex(u.Res.Icon),
		EntryAuthor:  DigestHex([]byte(u.Res.Author)),
	}}
}

// Errors returned by Sign and Repackage input validation.
var (
	ErrNilKey       = errors.New("apk: nil signing key")
	ErrEmptyPackage = errors.New("apk: empty package")
)

// Sign produces the final package under the developer's key.
func Sign(u *Unsigned, key *KeyPair) (*Package, error) {
	if key == nil || key.priv == nil {
		return nil, ErrNilKey
	}
	if u == nil || u.Name == "" || len(u.Dex) == 0 {
		return nil, ErrEmptyPackage
	}
	man := buildManifest(u)
	cert, err := key.certificate(man.canonical())
	if err != nil {
		return nil, err
	}
	return &Package{
		Name:     u.Name,
		Dex:      append([]byte(nil), u.Dex...),
		Res:      u.Res.Clone(),
		Manifest: man,
		Cert:     cert,
	}, nil
}

// Errors returned by Verify.
var (
	ErrNoCertificate  = errors.New("apk: package carries no certificate")
	ErrDigestMismatch = errors.New("apk: manifest digest mismatch")
)

// Verify performs install-time validation: every manifest digest must
// match the content, and the certificate signature must cover the
// manifest. A package that fails Verify is rejected by the system and
// never reaches a device.
func (p *Package) Verify() error {
	if p.Cert == nil {
		return ErrNoCertificate
	}
	want := buildManifest(&Unsigned{Name: p.Name, Dex: p.Dex, Res: p.Res})
	for name, digest := range want.Digests {
		if p.Manifest.DigestOf(name) != digest {
			return fmt.Errorf("%w: %s", ErrDigestMismatch, name)
		}
	}
	if len(p.Manifest.Digests) != len(want.Digests) {
		return fmt.Errorf("%w: entry count", ErrDigestMismatch)
	}
	return p.Cert.verify(p.Manifest.canonical())
}

// PublicKeyHex is the runtime getPublicKey value for this package.
func (p *Package) PublicKeyHex() string {
	if p.Cert == nil {
		return ""
	}
	return p.Cert.PublicKeyHex()
}

// DexFile decodes the package's bytecode.
func (p *Package) DexFile() (*dex.File, error) {
	return dex.Decode(p.Dex)
}

// Clone returns an independent copy.
func (p *Package) Clone() *Package {
	man := Manifest{Digests: make(map[string]string, len(p.Manifest.Digests))}
	for k, v := range p.Manifest.Digests {
		man.Digests[k] = v
	}
	var cert *Certificate
	if p.Cert != nil {
		cert = &Certificate{
			PubDER:    append([]byte(nil), p.Cert.PubDER...),
			Signature: append([]byte(nil), p.Cert.Signature...),
		}
	}
	return &Package{
		Name:     p.Name,
		Dex:      append([]byte(nil), p.Dex...),
		Res:      p.Res.Clone(),
		Manifest: man,
		Cert:     cert,
	}
}

// TotalSize returns the package's content size in bytes — the
// code-size metric denominator for §8.4.
func (p *Package) TotalSize() int {
	return len(p.Dex) + len(p.Res.encodeStrings()) + len(p.Res.Icon) + len(p.Res.Author)
}
