// Package apk models the Android application package: a zip container
// holding classes.dex, a MANIFEST.MF of per-file digests, a CERT.RSA
// developer certificate, and string resources. It implements the
// signing/verification background from paper §2.1: every developer
// owns a key pair, installation verifies the signature, and once
// installed the certificate is managed by the system and cannot be
// modified by app processes — so a repackaged app *must* expose a
// different public key.
package apk

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"math/rand"
)

// KeyPair is a developer signing identity.
type KeyPair struct {
	priv *rsa.PrivateKey
}

// keySize keeps signing fast while remaining a real RSA signature;
// the protocol, not the key length, is what the reproduction needs.
const keySize = 1024

// NewKeyPair generates a developer key pair deterministically from
// seed. The standard library's rsa.GenerateKey deliberately resists
// deterministic use, so the key is assembled directly from seeded
// primes; reproducible identities keep every experiment replayable.
func NewKeyPair(seed int64) (*KeyPair, error) {
	rng := rand.New(rand.NewSource(seed))
	p := genPrime(rng, keySize/2)
	q := genPrime(rng, keySize/2)
	for p.Cmp(q) == 0 {
		q = genPrime(rng, keySize/2)
	}
	n := new(big.Int).Mul(p, q)
	e := big.NewInt(65537)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		// gcd(e, phi) != 1 for this draw; extremely rare — reseed.
		return NewKeyPair(seed + 0x9E3779B9)
	}
	priv := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
		D:         d,
		Primes:    []*big.Int{p, q},
	}
	priv.Precompute()
	if err := priv.Validate(); err != nil {
		return nil, fmt.Errorf("apk: generated key invalid: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

var one = big.NewInt(1)

// genPrime draws a prime of the given bit length from rng.
func genPrime(rng *rand.Rand, bits int) *big.Int {
	b := make([]byte, bits/8)
	for {
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		b[0] |= 0xC0 // top two bits set so p*q reaches full length
		b[len(b)-1] |= 1
		cand := new(big.Int).SetBytes(b)
		// Walk odd numbers from the draw until prime; keeps the search
		// deterministic in rng.
		for i := 0; i < 4096; i++ {
			if cand.ProbablyPrime(24) {
				return cand
			}
			cand.Add(cand, two)
		}
	}
}

var two = big.NewInt(2)

// PublicKeyHex returns the canonical public key string — what the
// framework's getPublicKey returns and what BombDroid hard-codes into
// detection payloads as Ko.
func (k *KeyPair) PublicKeyHex() string {
	return publicKeyHex(&k.priv.PublicKey)
}

func publicKeyHex(pub *rsa.PublicKey) string {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		// Marshalling an in-memory RSA public key cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:])
}

// sign produces an RSA PKCS#1 v1.5 signature over digest material.
func (k *KeyPair) sign(material []byte) ([]byte, error) {
	sum := sha256.Sum256(material)
	sig, err := rsa.SignPKCS1v15(nil, k.priv, crypto.SHA256, sum[:])
	if err != nil {
		return nil, fmt.Errorf("apk: signing: %w", err)
	}
	return sig, nil
}

// Certificate is the CERT.RSA analogue: the developer public key plus
// the signature over the manifest.
type Certificate struct {
	PubDER    []byte
	Signature []byte
}

// certificate builds the certificate for manifest material.
func (k *KeyPair) certificate(manifest []byte) (*Certificate, error) {
	sig, err := k.sign(manifest)
	if err != nil {
		return nil, err
	}
	der, err := x509.MarshalPKIXPublicKey(&k.priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("apk: marshalling public key: %w", err)
	}
	return &Certificate{PubDER: der, Signature: sig}, nil
}

// PublicKeyHex returns the certificate's canonical public key string.
func (c *Certificate) PublicKeyHex() string {
	pub, err := x509.ParsePKIXPublicKey(c.PubDER)
	if err != nil {
		return ""
	}
	rpub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return ""
	}
	return publicKeyHex(rpub)
}

// verify checks the signature over manifest material.
func (c *Certificate) verify(manifest []byte) error {
	pub, err := x509.ParsePKIXPublicKey(c.PubDER)
	if err != nil {
		return fmt.Errorf("apk: parsing certificate key: %w", err)
	}
	rpub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return fmt.Errorf("apk: certificate key is not RSA")
	}
	sum := sha256.Sum256(manifest)
	if err := rsa.VerifyPKCS1v15(rpub, crypto.SHA256, sum[:], c.Signature); err != nil {
		return fmt.Errorf("apk: signature mismatch: %w", err)
	}
	return nil
}

// encode serializes the certificate.
func (c *Certificate) encode(w io.Writer) error {
	for _, b := range [][]byte{c.PubDER, c.Signature} {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(b))); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// decodeCertificate reads a certificate back.
func decodeCertificate(r io.Reader) (*Certificate, error) {
	read := func() ([]byte, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("apk: certificate field too large: %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	pub, err := read()
	if err != nil {
		return nil, fmt.Errorf("apk: reading certificate: %w", err)
	}
	sig, err := read()
	if err != nil {
		return nil, fmt.Errorf("apk: reading certificate: %w", err)
	}
	return &Certificate{PubDER: pub, Signature: sig}, nil
}
