package apk

import (
	"fmt"
	"math/rand"
	"strings"
)

// Resources is the res/ folder analogue: the app's string table
// (strings.xml) plus icon bytes and author metadata — the fields
// attackers replace when repackaging (paper §1).
type Resources struct {
	Strings []string
	Icon    []byte
	Author  string
}

// Clone returns an independent copy.
func (r Resources) Clone() Resources {
	return Resources{
		Strings: append([]string(nil), r.Strings...),
		Icon:    append([]byte(nil), r.Icon...),
		Author:  r.Author,
	}
}

// encodeStrings renders the string table as a strings.xml-like
// document; it is the byte form digested by the manifest.
func (r Resources) encodeStrings() []byte {
	var b strings.Builder
	b.WriteString("<resources>\n")
	for i, s := range r.Strings {
		fmt.Fprintf(&b, "  <string name=\"s%d\">%s</string>\n", i, s)
	}
	b.WriteString("</resources>\n")
	return []byte(b.String())
}

// Steganography (paper §4.1, "Code Digest Comparison"): a digest
// fragment Do is hidden inside an innocuous resource string using
// zero-width Unicode characters, so the value survives in plain sight;
// the recovery logic lives only inside encrypted payloads, so an
// attacker "does not know how to manipulate strings in strings.xml
// even when they look suspicious".
const (
	zwBit0 = '\u200b' // zero-width space      -> bit 0
	zwBit1 = '\u200c' // zero-width non-joiner -> bit 1
	zwMark = '\u200d' // zero-width joiner     -> start marker
)

// HideInString embeds secret into cover, returning the stego string.
// Bits of each secret byte are appended as zero-width runes after a
// start marker at a position derived from rng.
func HideInString(cover, secret string, rng *rand.Rand) string {
	if cover == "" {
		cover = "ok"
	}
	runes := []rune(cover)
	pos := rng.Intn(len(runes) + 1)
	var payload []rune
	payload = append(payload, zwMark)
	for _, by := range []byte(secret) {
		for bit := 7; bit >= 0; bit-- {
			if by>>uint(bit)&1 == 1 {
				payload = append(payload, zwBit1)
			} else {
				payload = append(payload, zwBit0)
			}
		}
	}
	out := make([]rune, 0, len(runes)+len(payload))
	out = append(out, runes[:pos]...)
	out = append(out, payload...)
	out = append(out, runes[pos:]...)
	return string(out)
}

// ExtractFromString recovers a hidden secret, returning "" when the
// string carries none.
func ExtractFromString(s string) string {
	var bits []byte
	started := false
	for _, r := range s {
		switch r {
		case zwMark:
			started = true
		case zwBit0:
			if started {
				bits = append(bits, 0)
			}
		case zwBit1:
			if started {
				bits = append(bits, 1)
			}
		}
	}
	if len(bits) < 8 {
		return ""
	}
	n := len(bits) / 8
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var by byte
		for j := 0; j < 8; j++ {
			by = by<<1 | bits[i*8+j]
		}
		out[i] = by
	}
	return string(out)
}

// CarriesHidden reports whether s contains stego markers. The
// adversary's text search can detect *that* something is hidden — but
// not what the recovery logic expects, which is the paper's point.
func CarriesHidden(s string) bool {
	return strings.ContainsRune(s, zwMark)
}
