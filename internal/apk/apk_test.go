package apk

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bombdroid/internal/dex"
)

func testDex(t *testing.T) *dex.File {
	t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "onCreate", 0)
	r := b.Reg()
	b.ConstInt(r, 7)
	b.PutStatic("App.state", r)
	m := b.MustFinish()
	m.Flags = dex.FlagInit
	c := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "state", Init: dex.Int64(0)}}}
	c.AddMethod(m)
	if err := f.AddClass(c); err != nil {
		t.Fatal(err)
	}
	return f
}

func testPackage(t *testing.T, seed int64) (*Package, *KeyPair) {
	t.Helper()
	key, err := NewKeyPair(seed)
	if err != nil {
		t.Fatal(err)
	}
	res := Resources{
		Strings: []string{"hello", "world"},
		Icon:    []byte{0x89, 'P', 'N', 'G'},
		Author:  "honest dev",
	}
	p, err := Sign(Build("com.example.app", testDex(t), res), key)
	if err != nil {
		t.Fatal(err)
	}
	return p, key
}

func TestKeyPairDeterministic(t *testing.T) {
	k1, err := NewKeyPair(42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKeyPair(42)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := NewKeyPair(43)
	if err != nil {
		t.Fatal(err)
	}
	if k1.PublicKeyHex() != k2.PublicKeyHex() {
		t.Error("same seed should give same key")
	}
	if k1.PublicKeyHex() == k3.PublicKeyHex() {
		t.Error("different seeds should give different keys")
	}
	if len(k1.PublicKeyHex()) != 64 {
		t.Errorf("public key hex length = %d", len(k1.PublicKeyHex()))
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	p, key := testPackage(t, 1)
	if err := p.Verify(); err != nil {
		t.Fatalf("freshly signed package must verify: %v", err)
	}
	if p.PublicKeyHex() != key.PublicKeyHex() {
		t.Error("package public key differs from signer")
	}
	if _, err := p.DexFile(); err != nil {
		t.Errorf("dex should decode: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	base, _ := testPackage(t, 1)

	t.Run("dex flip", func(t *testing.T) {
		p := base.Clone()
		p.Dex[len(p.Dex)-1] ^= 0xFF
		if p.Verify() == nil {
			t.Error("flipped dex byte must break verification")
		}
	})
	t.Run("resource edit", func(t *testing.T) {
		p := base.Clone()
		p.Res.Strings[0] = "evil"
		if p.Verify() == nil {
			t.Error("edited resource must break verification")
		}
	})
	t.Run("author swap", func(t *testing.T) {
		p := base.Clone()
		p.Res.Author = "pirate"
		if p.Verify() == nil {
			t.Error("swapped author must break verification")
		}
	})
	t.Run("manifest forgery", func(t *testing.T) {
		p := base.Clone()
		p.Dex[0] ^= 1
		p.Manifest.Digests[EntryDex] = DigestHex(p.Dex)
		if p.Verify() == nil {
			t.Error("re-digested manifest without re-signing must fail")
		}
	})
	t.Run("missing cert", func(t *testing.T) {
		p := base.Clone()
		p.Cert = nil
		if p.Verify() != ErrNoCertificate {
			t.Error("missing certificate must be reported")
		}
	})
	t.Run("extra manifest entry", func(t *testing.T) {
		p := base.Clone()
		p.Manifest.Digests["sneaky"] = DigestHex(nil)
		if p.Verify() == nil {
			t.Error("extra manifest entry must fail")
		}
	})
}

// Property: any single byte flip anywhere in the dex breaks Verify.
func TestVerifyByteFlipProperty(t *testing.T) {
	base, _ := testPackage(t, 5)
	if err := quick.Check(func(pos uint16, mask byte) bool {
		if mask == 0 {
			return true
		}
		p := base.Clone()
		i := int(pos) % len(p.Dex)
		p.Dex[i] ^= mask
		return p.Verify() != nil
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRepackageChangesPublicKey(t *testing.T) {
	victim, devKey := testPackage(t, 1)
	attacker, err := NewKeyPair(666)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := Repackage(victim, attacker, RepackOptions{NewAuthor: "pirate co"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pirated.Verify(); err != nil {
		t.Fatalf("repackaged app is validly signed and must verify: %v", err)
	}
	if pirated.PublicKeyHex() == devKey.PublicKeyHex() {
		t.Fatal("repackaging must change the public key — the detection premise")
	}
	if pirated.Res.Author != "pirate co" {
		t.Error("author not replaced")
	}
	if pirated.Name != victim.Name {
		t.Error("app name should be preserved")
	}
}

func TestRepackageInjectsMalware(t *testing.T) {
	victim, _ := testPackage(t, 1)
	attacker, _ := NewKeyPair(667)
	mal := &dex.Class{Name: "Malware"}
	mb := dex.NewBuilder(dex.NewFile(), "steal", 0)
	mb.ReturnVoid()
	mal.AddMethod(mb.MustFinish())
	pirated, err := Repackage(victim, attacker, RepackOptions{InjectClass: mal})
	if err != nil {
		t.Fatal(err)
	}
	f, err := pirated.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	if f.Class("Malware") == nil {
		t.Error("injected class missing")
	}
	if f.Class("App") == nil {
		t.Error("original class lost")
	}
}

func TestRepackageMutateDex(t *testing.T) {
	victim, _ := testPackage(t, 1)
	attacker, _ := NewKeyPair(668)
	pirated, err := Repackage(victim, attacker, RepackOptions{
		MutateDex: func(f *dex.File) error {
			f.Class("App").Methods[0].Code = []dex.Instr{{Op: dex.OpReturnVoid, A: -1, B: -1, C: -1}}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pirated.DexFile()
	if len(f.Class("App").Methods[0].Code) != 1 {
		t.Error("mutation not applied")
	}
	if err := pirated.Verify(); err != nil {
		t.Errorf("mutated+resigned app must verify: %v", err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p, _ := testPackage(t, 9)
	data, err := Pack(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Res.Author != p.Res.Author {
		t.Error("metadata lost in round trip")
	}
	if string(q.Dex) != string(p.Dex) {
		t.Error("dex bytes changed")
	}
	if len(q.Res.Strings) != len(p.Res.Strings) {
		t.Error("strings lost")
	}
	if err := q.Verify(); err != nil {
		t.Errorf("unpacked package must still verify: %v", err)
	}
	if _, err := Unpack([]byte("junk")); err == nil {
		t.Error("junk archive should fail")
	}
}

func TestStegoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	covers := []string{"Tap to start", "", "日本語テキスト", "a"}
	secrets := []string{"ab12cd", "deadbeef00", "x"}
	for _, cover := range covers {
		for _, secret := range secrets {
			s := HideInString(cover, secret, rng)
			if got := ExtractFromString(s); got != secret {
				t.Errorf("cover %q secret %q: extracted %q", cover, secret, got)
			}
			if !CarriesHidden(s) {
				t.Error("stego string should carry marker")
			}
			// The visible text is unchanged once markers are stripped.
			visible := strings.Map(func(r rune) rune {
				if r == zwBit0 || r == zwBit1 || r == zwMark {
					return -1
				}
				return r
			}, s)
			wantVisible := cover
			if cover == "" {
				wantVisible = "ok"
			}
			if visible != wantVisible {
				t.Errorf("visible text %q != cover %q", visible, wantVisible)
			}
		}
	}
	if ExtractFromString("no secrets here") != "" {
		t.Error("plain string should extract empty")
	}
	if CarriesHidden("plain") {
		t.Error("plain string should not carry markers")
	}
}

// Property: stego round-trips arbitrary ASCII secrets through
// arbitrary covers.
func TestStegoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if err := quick.Check(func(cover string, raw []byte) bool {
		secret := DigestHex(raw)[:16]
		return ExtractFromString(HideInString(cover, secret, rng)) == secret
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalSizeAndClone(t *testing.T) {
	p, _ := testPackage(t, 2)
	if p.TotalSize() <= 0 {
		t.Error("TotalSize should be positive")
	}
	q := p.Clone()
	q.Res.Icon[0] = 0
	q.Manifest.Digests[EntryDex] = "x"
	if p.Res.Icon[0] == 0 || p.Manifest.Digests[EntryDex] == "x" {
		t.Error("Clone shares state")
	}
}

// TestSignErrorPaths pins the input-validation contract: a nil or
// empty signing key and an empty package return explicit errors
// instead of panicking partway through manifest construction.
func TestSignErrorPaths(t *testing.T) {
	key, err := NewKeyPair(11)
	if err != nil {
		t.Fatal(err)
	}
	u := Build("com.example.app", testDex(t), Resources{Author: "dev"})
	if _, err := Sign(u, nil); err != ErrNilKey {
		t.Errorf("nil key: %v, want ErrNilKey", err)
	}
	if _, err := Sign(u, &KeyPair{}); err != ErrNilKey {
		t.Errorf("zero-value key: %v, want ErrNilKey", err)
	}
	if _, err := Sign(nil, key); err != ErrEmptyPackage {
		t.Errorf("nil unsigned: %v, want ErrEmptyPackage", err)
	}
	if _, err := Sign(&Unsigned{Name: "", Dex: u.Dex}, key); err != ErrEmptyPackage {
		t.Errorf("empty name: %v, want ErrEmptyPackage", err)
	}
	if _, err := Sign(&Unsigned{Name: "x", Dex: nil}, key); err != ErrEmptyPackage {
		t.Errorf("empty dex: %v, want ErrEmptyPackage", err)
	}
}

// TestRepackageErrorPaths covers the attacker-pipeline error paths:
// nil inputs fail loudly, and a mutation hook's error propagates
// instead of producing a half-repackaged app.
func TestRepackageErrorPaths(t *testing.T) {
	victim, _ := testPackage(t, 21)
	attacker, err := NewKeyPair(22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repackage(nil, attacker, RepackOptions{}); err != ErrEmptyPackage {
		t.Errorf("nil victim: %v, want ErrEmptyPackage", err)
	}
	if _, err := Repackage(victim, nil, RepackOptions{}); err != ErrNilKey {
		t.Errorf("nil attacker key: %v, want ErrNilKey", err)
	}
	wantErr := "mutation exploded"
	if _, err := Repackage(victim, attacker, RepackOptions{
		MutateDex: func(*dex.File) error { return fmt.Errorf("%s", wantErr) },
	}); err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Errorf("mutate error not propagated: %v", err)
	}
}

// TestDoubleRepackage: repackaging a repackaged app is the threat
// model iterated — it must still produce a validly signed package,
// and each hop's public key must differ from every earlier signer's.
func TestDoubleRepackage(t *testing.T) {
	victim, devKey := testPackage(t, 31)
	a1, err := NewKeyPair(32)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewKeyPair(33)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Repackage(victim, a1, RepackOptions{NewAuthor: "pirate one"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Repackage(first, a2, RepackOptions{NewAuthor: "pirate two"})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Verify(); err != nil {
		t.Errorf("double-repackaged app must still verify: %v", err)
	}
	keys := map[string]string{
		"developer":       devKey.PublicKeyHex(),
		"first attacker":  first.PublicKeyHex(),
		"second attacker": second.PublicKeyHex(),
	}
	seen := map[string]string{}
	for who, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share a public key", who, prev)
		}
		seen[k] = who
	}
	if second.Res.Author != "pirate two" {
		t.Errorf("author = %q, want the second attacker's", second.Res.Author)
	}
}

// TestSortedDigestsDeterministic pins the canonical digest ordering
// the market's fingerprint channel depends on: SortedDigests must be
// sorted by entry name, stable across repeated calls and across
// pack/unpack round trips, and its digests must change exactly when
// the underlying entry changes.
func TestSortedDigestsDeterministic(t *testing.T) {
	p, _ := testPackage(t, 1)
	ds := p.Manifest.SortedDigests()
	if len(ds) == 0 {
		t.Fatal("no digests")
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Entry >= ds[i].Entry {
			t.Fatalf("digests not strictly sorted by entry: %q then %q", ds[i-1].Entry, ds[i].Entry)
		}
	}
	if fmt.Sprint(p.Manifest.SortedDigests()) != fmt.Sprint(ds) {
		t.Fatal("repeated SortedDigests calls disagree")
	}

	// Survives the wire: unpacking a packed apk yields the same order
	// and digests.
	blob, err := Pack(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unpack(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(back.Manifest.SortedDigests()) != fmt.Sprint(ds) {
		t.Fatal("pack/unpack round trip changed SortedDigests")
	}

	// Same inputs, independent build → identical digest set; a changed
	// resource moves exactly that entry's digest.
	q, _ := testPackage(t, 2) // different signing seed, same content
	if fmt.Sprint(q.Manifest.SortedDigests()) != fmt.Sprint(ds) {
		t.Fatal("identical content produced different digests")
	}
	res := Resources{Strings: []string{"hello", "tampered"}, Icon: []byte{0x89, 'P', 'N', 'G'}, Author: "honest dev"}
	key, err := NewKeyPair(3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Sign(Build("com.example.app", testDex(t), res), key)
	if err != nil {
		t.Fatal(err)
	}
	rds := r.Manifest.SortedDigests()
	if len(rds) != len(ds) {
		t.Fatalf("entry count changed: %d vs %d", len(rds), len(ds))
	}
	var moved []string
	for i := range ds {
		if rds[i].Entry != ds[i].Entry {
			t.Fatalf("entry order changed at %d: %q vs %q", i, rds[i].Entry, ds[i].Entry)
		}
		if rds[i].Digest != ds[i].Digest {
			moved = append(moved, rds[i].Entry)
		}
	}
	if len(moved) != 1 || moved[0] != EntryStrings {
		t.Fatalf("tampering strings moved digests %v, want exactly [%s]", moved, EntryStrings)
	}
}
