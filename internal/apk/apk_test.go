package apk

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bombdroid/internal/dex"
)

func testDex(t *testing.T) *dex.File {
	t.Helper()
	f := dex.NewFile()
	b := dex.NewBuilder(f, "onCreate", 0)
	r := b.Reg()
	b.ConstInt(r, 7)
	b.PutStatic("App.state", r)
	m := b.MustFinish()
	m.Flags = dex.FlagInit
	c := &dex.Class{Name: "App", Fields: []dex.Field{{Name: "state", Init: dex.Int64(0)}}}
	c.AddMethod(m)
	if err := f.AddClass(c); err != nil {
		t.Fatal(err)
	}
	return f
}

func testPackage(t *testing.T, seed int64) (*Package, *KeyPair) {
	t.Helper()
	key, err := NewKeyPair(seed)
	if err != nil {
		t.Fatal(err)
	}
	res := Resources{
		Strings: []string{"hello", "world"},
		Icon:    []byte{0x89, 'P', 'N', 'G'},
		Author:  "honest dev",
	}
	p, err := Sign(Build("com.example.app", testDex(t), res), key)
	if err != nil {
		t.Fatal(err)
	}
	return p, key
}

func TestKeyPairDeterministic(t *testing.T) {
	k1, err := NewKeyPair(42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKeyPair(42)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := NewKeyPair(43)
	if err != nil {
		t.Fatal(err)
	}
	if k1.PublicKeyHex() != k2.PublicKeyHex() {
		t.Error("same seed should give same key")
	}
	if k1.PublicKeyHex() == k3.PublicKeyHex() {
		t.Error("different seeds should give different keys")
	}
	if len(k1.PublicKeyHex()) != 64 {
		t.Errorf("public key hex length = %d", len(k1.PublicKeyHex()))
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	p, key := testPackage(t, 1)
	if err := p.Verify(); err != nil {
		t.Fatalf("freshly signed package must verify: %v", err)
	}
	if p.PublicKeyHex() != key.PublicKeyHex() {
		t.Error("package public key differs from signer")
	}
	if _, err := p.DexFile(); err != nil {
		t.Errorf("dex should decode: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	base, _ := testPackage(t, 1)

	t.Run("dex flip", func(t *testing.T) {
		p := base.Clone()
		p.Dex[len(p.Dex)-1] ^= 0xFF
		if p.Verify() == nil {
			t.Error("flipped dex byte must break verification")
		}
	})
	t.Run("resource edit", func(t *testing.T) {
		p := base.Clone()
		p.Res.Strings[0] = "evil"
		if p.Verify() == nil {
			t.Error("edited resource must break verification")
		}
	})
	t.Run("author swap", func(t *testing.T) {
		p := base.Clone()
		p.Res.Author = "pirate"
		if p.Verify() == nil {
			t.Error("swapped author must break verification")
		}
	})
	t.Run("manifest forgery", func(t *testing.T) {
		p := base.Clone()
		p.Dex[0] ^= 1
		p.Manifest.Digests[EntryDex] = DigestHex(p.Dex)
		if p.Verify() == nil {
			t.Error("re-digested manifest without re-signing must fail")
		}
	})
	t.Run("missing cert", func(t *testing.T) {
		p := base.Clone()
		p.Cert = nil
		if p.Verify() != ErrNoCertificate {
			t.Error("missing certificate must be reported")
		}
	})
	t.Run("extra manifest entry", func(t *testing.T) {
		p := base.Clone()
		p.Manifest.Digests["sneaky"] = DigestHex(nil)
		if p.Verify() == nil {
			t.Error("extra manifest entry must fail")
		}
	})
}

// Property: any single byte flip anywhere in the dex breaks Verify.
func TestVerifyByteFlipProperty(t *testing.T) {
	base, _ := testPackage(t, 5)
	if err := quick.Check(func(pos uint16, mask byte) bool {
		if mask == 0 {
			return true
		}
		p := base.Clone()
		i := int(pos) % len(p.Dex)
		p.Dex[i] ^= mask
		return p.Verify() != nil
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRepackageChangesPublicKey(t *testing.T) {
	victim, devKey := testPackage(t, 1)
	attacker, err := NewKeyPair(666)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := Repackage(victim, attacker, RepackOptions{NewAuthor: "pirate co"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pirated.Verify(); err != nil {
		t.Fatalf("repackaged app is validly signed and must verify: %v", err)
	}
	if pirated.PublicKeyHex() == devKey.PublicKeyHex() {
		t.Fatal("repackaging must change the public key — the detection premise")
	}
	if pirated.Res.Author != "pirate co" {
		t.Error("author not replaced")
	}
	if pirated.Name != victim.Name {
		t.Error("app name should be preserved")
	}
}

func TestRepackageInjectsMalware(t *testing.T) {
	victim, _ := testPackage(t, 1)
	attacker, _ := NewKeyPair(667)
	mal := &dex.Class{Name: "Malware"}
	mb := dex.NewBuilder(dex.NewFile(), "steal", 0)
	mb.ReturnVoid()
	mal.AddMethod(mb.MustFinish())
	pirated, err := Repackage(victim, attacker, RepackOptions{InjectClass: mal})
	if err != nil {
		t.Fatal(err)
	}
	f, err := pirated.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	if f.Class("Malware") == nil {
		t.Error("injected class missing")
	}
	if f.Class("App") == nil {
		t.Error("original class lost")
	}
}

func TestRepackageMutateDex(t *testing.T) {
	victim, _ := testPackage(t, 1)
	attacker, _ := NewKeyPair(668)
	pirated, err := Repackage(victim, attacker, RepackOptions{
		MutateDex: func(f *dex.File) error {
			f.Class("App").Methods[0].Code = []dex.Instr{{Op: dex.OpReturnVoid, A: -1, B: -1, C: -1}}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pirated.DexFile()
	if len(f.Class("App").Methods[0].Code) != 1 {
		t.Error("mutation not applied")
	}
	if err := pirated.Verify(); err != nil {
		t.Errorf("mutated+resigned app must verify: %v", err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p, _ := testPackage(t, 9)
	data, err := Pack(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Res.Author != p.Res.Author {
		t.Error("metadata lost in round trip")
	}
	if string(q.Dex) != string(p.Dex) {
		t.Error("dex bytes changed")
	}
	if len(q.Res.Strings) != len(p.Res.Strings) {
		t.Error("strings lost")
	}
	if err := q.Verify(); err != nil {
		t.Errorf("unpacked package must still verify: %v", err)
	}
	if _, err := Unpack([]byte("junk")); err == nil {
		t.Error("junk archive should fail")
	}
}

func TestStegoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	covers := []string{"Tap to start", "", "日本語テキスト", "a"}
	secrets := []string{"ab12cd", "deadbeef00", "x"}
	for _, cover := range covers {
		for _, secret := range secrets {
			s := HideInString(cover, secret, rng)
			if got := ExtractFromString(s); got != secret {
				t.Errorf("cover %q secret %q: extracted %q", cover, secret, got)
			}
			if !CarriesHidden(s) {
				t.Error("stego string should carry marker")
			}
			// The visible text is unchanged once markers are stripped.
			visible := strings.Map(func(r rune) rune {
				if r == zwBit0 || r == zwBit1 || r == zwMark {
					return -1
				}
				return r
			}, s)
			wantVisible := cover
			if cover == "" {
				wantVisible = "ok"
			}
			if visible != wantVisible {
				t.Errorf("visible text %q != cover %q", visible, wantVisible)
			}
		}
	}
	if ExtractFromString("no secrets here") != "" {
		t.Error("plain string should extract empty")
	}
	if CarriesHidden("plain") {
		t.Error("plain string should not carry markers")
	}
}

// Property: stego round-trips arbitrary ASCII secrets through
// arbitrary covers.
func TestStegoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if err := quick.Check(func(cover string, raw []byte) bool {
		secret := DigestHex(raw)[:16]
		return ExtractFromString(HideInString(cover, secret, rng)) == secret
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalSizeAndClone(t *testing.T) {
	p, _ := testPackage(t, 2)
	if p.TotalSize() <= 0 {
		t.Error("TotalSize should be positive")
	}
	q := p.Clone()
	q.Res.Icon[0] = 0
	q.Manifest.Digests[EntryDex] = "x"
	if p.Res.Icon[0] == 0 || p.Manifest.Digests[EntryDex] == "x" {
		t.Error("Clone shares state")
	}
}
