package apk

import (
	"fmt"

	"bombdroid/internal/dex"
)

// RepackOptions selects the modifications a repackaging attacker
// applies before re-signing (paper §1: replace icon and author
// information, optionally insert malicious code).
type RepackOptions struct {
	NewAuthor   string
	NewIcon     []byte
	InjectClass *dex.Class // optional malware class spliced into the dex
	// MutateDex, when set, rewrites the decoded dex before repack —
	// the hook code-deletion and instrumentation attacks use.
	MutateDex func(*dex.File) error
}

// Repackage unpacks a victim package, applies the attacker's
// modifications, and re-signs with the attacker's own key — the whole
// automated pipeline the paper's threat model assumes. The output
// passes Verify (it is a validly signed app) but its public key
// necessarily differs from the original developer's.
func Repackage(victim *Package, attacker *KeyPair, opts RepackOptions) (*Package, error) {
	if victim == nil {
		return nil, ErrEmptyPackage
	}
	if attacker == nil {
		return nil, ErrNilKey
	}
	res := victim.Res.Clone()
	if opts.NewAuthor != "" {
		res.Author = opts.NewAuthor
	}
	if opts.NewIcon != nil {
		res.Icon = append([]byte(nil), opts.NewIcon...)
	}

	dexBytes := append([]byte(nil), victim.Dex...)
	if opts.InjectClass != nil || opts.MutateDex != nil {
		file, err := dex.Decode(dexBytes)
		if err != nil {
			return nil, fmt.Errorf("apk: decoding victim dex: %w", err)
		}
		if opts.InjectClass != nil {
			if err := file.AddClass(opts.InjectClass); err != nil {
				return nil, err
			}
		}
		if opts.MutateDex != nil {
			if err := opts.MutateDex(file); err != nil {
				return nil, err
			}
		}
		dexBytes = dex.Encode(file)
	}

	return Sign(&Unsigned{Name: victim.Name, Dex: dexBytes, Res: res}, attacker)
}
