package cfg

import "bombdroid/internal/dex"

// RegSet is a bitset over registers.
type RegSet []uint64

// NewRegSet returns a set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports membership.
func (s RegSet) Has(r int32) bool {
	if r < 0 || int(r)/64 >= len(s) {
		return false
	}
	return s[r/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r.
func (s RegSet) Add(r int32) {
	if r >= 0 && int(r)/64 < len(s) {
		s[r/64] |= 1 << (uint(r) % 64)
	}
}

// Remove deletes r.
func (s RegSet) Remove(r int32) {
	if r >= 0 && int(r)/64 < len(s) {
		s[r/64] &^= 1 << (uint(r) % 64)
	}
}

// UnionInto ors o into s, reporting whether s changed.
func (s RegSet) UnionInto(o RegSet) bool {
	changed := false
	for i := range s {
		if i < len(o) {
			n := s[i] | o[i]
			if n != s[i] {
				s[i] = n
				changed = true
			}
		}
	}
	return changed
}

// Clone copies the set.
func (s RegSet) Clone() RegSet { return append(RegSet(nil), s...) }

// Empty reports whether no register is present.
func (s RegSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share a register.
func (s RegSet) Intersects(o RegSet) bool {
	for i := range s {
		if i < len(o) && s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// UsesDefs returns the registers an instruction reads and writes.
func UsesDefs(in dex.Instr) (uses, defs []int32) {
	switch in.Op {
	case dex.OpNop, dex.OpGoto, dex.OpReturnVoid:
	case dex.OpConstInt, dex.OpConstStr:
		defs = append(defs, in.A)
	case dex.OpMove, dex.OpNeg, dex.OpNot, dex.OpAddK:
		uses = append(uses, in.B)
		defs = append(defs, in.A)
	case dex.OpAdd, dex.OpSub, dex.OpMul, dex.OpDiv, dex.OpRem,
		dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpShl, dex.OpShr:
		uses = append(uses, in.B, in.C)
		defs = append(defs, in.A)
	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfLe, dex.OpIfGt, dex.OpIfGe:
		uses = append(uses, in.A, in.B)
	case dex.OpIfEqz, dex.OpIfNez, dex.OpSwitch, dex.OpReturn, dex.OpPutStatic:
		uses = append(uses, in.A)
	case dex.OpInvoke, dex.OpCallAPI:
		for i := int32(0); i < in.C; i++ {
			uses = append(uses, in.B+i)
		}
		if in.A != -1 {
			defs = append(defs, in.A)
		}
	case dex.OpGetStatic:
		defs = append(defs, in.A)
	case dex.OpNewArr, dex.OpArrLen:
		uses = append(uses, in.B)
		defs = append(defs, in.A)
	case dex.OpALoad:
		uses = append(uses, in.B, in.C)
		defs = append(defs, in.A)
	case dex.OpAStore:
		// Writes through the array reference; all three are reads.
		uses = append(uses, in.A, in.B, in.C)
	}
	return uses, defs
}

// Liveness holds per-instruction live-in/live-out register sets.
type Liveness struct {
	In  []RegSet
	Out []RegSet
}

// ComputeLiveness runs the standard backward dataflow to fixpoint.
func ComputeLiveness(g *Graph) *Liveness {
	m := g.Method
	n := len(m.Code)
	lv := &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	for i := 0; i < n; i++ {
		lv.In[i] = NewRegSet(m.NumRegs)
		lv.Out[i] = NewRegSet(m.NumRegs)
	}
	if n == 0 {
		return lv
	}

	succs := func(pc int) []int {
		in := m.Code[pc]
		var out []int
		switch {
		case in.Op == dex.OpReturn || in.Op == dex.OpReturnVoid:
		case in.Op == dex.OpGoto:
			out = append(out, int(in.C))
		case in.Op.IsCondBranch():
			out = append(out, int(in.C))
			if pc+1 < n {
				out = append(out, pc+1)
			}
		case in.Op == dex.OpSwitch:
			if in.Imm >= 0 && in.Imm < int64(len(m.Tables)) {
				t := m.Tables[in.Imm]
				out = append(out, int(t.Default))
				for _, c := range t.Cases {
					out = append(out, int(c.Target))
				}
			}
		default:
			if pc+1 < n {
				out = append(out, pc+1)
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			for _, s := range succs(pc) {
				if s >= 0 && s < n && lv.Out[pc].UnionInto(lv.In[s]) {
					changed = true
				}
			}
			newIn := lv.Out[pc].Clone()
			uses, defs := UsesDefs(m.Code[pc])
			for _, d := range defs {
				newIn.Remove(d)
			}
			for _, u := range uses {
				newIn.Add(u)
			}
			if lv.In[pc].UnionInto(newIn) {
				changed = true
			}
		}
	}
	return lv
}
