package cfg

import (
	"testing"

	"bombdroid/internal/dex"
)

// guardedMethod: if (x == 42) { App.hits++ } ; return  — the canonical
// weavable shape ("if ϕ != c goto join").
func guardedMethod(f *dex.File) *dex.Method {
	b := dex.NewBuilder(f, "guarded", 1)
	c := b.Reg()
	b.ConstInt(c, 42)
	b.Branch(dex.OpIfNe, 0, c, "join")
	tmp := b.Reg()
	b.GetStatic(tmp, "App.hits")
	b.AddK(tmp, tmp, 1)
	b.PutStatic("App.hits", tmp)
	b.Label("join")
	b.ReturnVoid()
	return b.MustFinish()
}

func TestFindIntQC(t *testing.T) {
	f := dex.NewFile()
	m := guardedMethod(f)
	qcs := FindQCs(f, m)
	if len(qcs) != 1 {
		t.Fatalf("qcs = %d, want 1", len(qcs))
	}
	q := qcs[0]
	if q.Kind != Medium {
		t.Errorf("kind = %v, want medium", q.Kind)
	}
	if q.Const.Int != 42 || q.Reg != 0 {
		t.Errorf("const/reg = %v/r%d", q.Const, q.Reg)
	}
	if q.InLoop {
		t.Error("not in a loop")
	}
	if !q.HasThenRegion() {
		t.Fatal("if-ne guard must expose a then-region")
	}
	if q.CaseIdx != -1 {
		t.Error("not a switch case")
	}
}

func TestLiftableGuardedRegion(t *testing.T) {
	f := dex.NewFile()
	m := guardedMethod(f)
	g := Build(f, m)
	lv := ComputeLiveness(g)
	qcs := FindQCsWithGraph(f, m, g)
	if len(qcs) != 1 {
		t.Fatal("expected one QC")
	}
	if !Liftable(g, lv, &qcs[0]) {
		t.Error("statics-only region should be liftable")
	}
}

func TestNotLiftableWhenRegisterEscapes(t *testing.T) {
	// if (x == 7) { y = 99 } ; return y — y live at join.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "escape", 1)
	c := b.Reg()
	y := b.Reg()
	b.ConstInt(y, 0)
	b.ConstInt(c, 7)
	b.Branch(dex.OpIfNe, 0, c, "join")
	b.ConstInt(y, 99)
	b.Label("join")
	b.Return(y)
	m := b.MustFinish()
	g := Build(f, m)
	lv := ComputeLiveness(g)
	qcs := FindQCsWithGraph(f, m, g)
	if len(qcs) != 1 {
		t.Fatalf("qcs = %d", len(qcs))
	}
	if Liftable(g, lv, &qcs[0]) {
		t.Error("region writing a live-out register must not be liftable")
	}
}

func TestNotLiftableWhenRegionReturns(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "ret", 1)
	c := b.Reg()
	b.ConstInt(c, 7)
	b.Branch(dex.OpIfNe, 0, c, "join")
	b.ReturnVoid()
	b.Label("join")
	b.ReturnVoid()
	m := b.MustFinish()
	g := Build(f, m)
	lv := ComputeLiveness(g)
	qcs := FindQCsWithGraph(f, m, g)
	if len(qcs) != 1 {
		t.Fatal("expected one QC")
	}
	if Liftable(g, lv, &qcs[0]) {
		t.Error("region containing return must not be liftable")
	}
}

func TestNotLiftableWhenJumpedInto(t *testing.T) {
	// Hand-build: an external goto targets the middle of the region.
	f := dex.NewFile()
	hits := f.Intern("App.hits")
	m := &dex.Method{Name: "jumpin", NumArgs: 1, NumRegs: 3}
	m.Code = []dex.Instr{
		{Op: dex.OpConstInt, A: 1, B: -1, C: -1, Imm: 5},     // 0
		{Op: dex.OpIfEqz, A: 0, B: -1, C: 4},                 // 1: jump INTO region
		{Op: dex.OpIfNe, A: 0, B: 1, C: 6},                   // 2: the QC branch
		{Op: dex.OpGetStatic, A: 2, B: -1, C: -1, Imm: hits}, // 3
		{Op: dex.OpAddK, A: 2, B: 2, C: -1, Imm: 1},          // 4 <- jumped into
		{Op: dex.OpPutStatic, A: 2, B: -1, C: -1, Imm: hits}, // 5
		{Op: dex.OpReturnVoid, A: -1, B: -1, C: -1},          // 6
	}
	if err := dex.Validate(fileWithMethod(f, m)); err != nil {
		t.Fatal(err)
	}
	g := Build(f, m)
	lv := ComputeLiveness(g)
	qcs := FindQCsWithGraph(f, m, g)
	var target *QC
	for i := range qcs {
		if qcs[i].BranchPC == 2 {
			target = &qcs[i]
		}
	}
	if target == nil {
		t.Fatal("QC at pc 2 not found")
	}
	if Liftable(g, lv, target) {
		t.Error("region with external jump into interior must not be liftable")
	}
}

func fileWithMethod(f *dex.File, m *dex.Method) *dex.File {
	g := f.Clone()
	c := &dex.Class{Name: "T"}
	c.AddMethod(m.Clone())
	g.Classes = append(g.Classes, c)
	return g
}

func TestFindStringQC(t *testing.T) {
	// if (name.equals("admin")) { App.flag = 1 }
	f := dex.NewFile()
	b := dex.NewBuilder(f, "strqc", 1)
	lit := b.Reg()
	b.ConstStr(lit, "admin")
	eq := b.Reg()
	b.CallAPI(eq, dex.APIStrEquals, 0, lit)
	b.BranchZ(dex.OpIfEqz, eq, "join")
	tmp := b.Reg()
	b.ConstInt(tmp, 1)
	b.PutStatic("App.flag", tmp)
	b.Label("join")
	b.ReturnVoid()
	m := b.MustFinish()
	qcs := FindQCs(f, m)

	var strQC *QC
	for i := range qcs {
		if qcs[i].Kind == Strong {
			strQC = &qcs[i]
		}
	}
	if strQC == nil {
		t.Fatalf("no strong QC found in %d qcs", len(qcs))
	}
	if strQC.Const.Str != "admin" || strQC.StrOp != dex.APIStrEquals {
		t.Errorf("const=%v op=%v", strQC.Const, strQC.StrOp)
	}
	if strQC.Reg != 0 {
		t.Errorf("ϕ register = %d, want 0", strQC.Reg)
	}
	if !strQC.HasThenRegion() {
		t.Error("eqz-guarded string QC should expose then-region")
	}
}

func TestFindStartsWithQC(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "sw", 1)
	lit := b.Reg()
	b.ConstStr(lit, "http:")
	eq := b.Reg()
	b.CallAPI(eq, dex.APIStrStartsWith, 0, lit)
	b.BranchZ(dex.OpIfNez, eq, "hit")
	b.ReturnVoid()
	b.Label("hit")
	b.CallAPI(-1, dex.APIUIDraw, func() int32 { r := b.Reg(); b.ConstInt(r, 1); return r }())
	b.ReturnVoid()
	m := b.MustFinish()
	qcs := FindQCs(f, m)
	found := false
	for _, q := range qcs {
		if q.Kind == Strong && q.StrOp == dex.APIStrStartsWith && q.Const.Str == "http:" {
			found = true
		}
	}
	if !found {
		t.Error("startsWith QC not discovered")
	}
}

func TestFindSwitchQCs(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "sw", 1)
	out := b.Reg()
	b.Switch(0, []int64{10, 20, 30}, []string{"a", "b", "c"}, "d")
	for _, l := range []string{"a", "b", "c", "d"} {
		b.Label(l)
		b.ConstInt(out, 0)
		b.Return(out)
	}
	m := b.MustFinish()
	qcs := FindQCs(f, m)
	if len(qcs) != 3 {
		t.Fatalf("switch should yield 3 QCs, got %d", len(qcs))
	}
	seen := map[int64]bool{}
	for _, q := range qcs {
		if q.Kind != Medium || q.CaseIdx < 0 {
			t.Errorf("bad switch QC %+v", q)
		}
		seen[q.Const.Int] = true
	}
	if !seen[10] || !seen[20] || !seen[30] {
		t.Errorf("case constants missing: %v", seen)
	}
}

func TestFindWeakQC(t *testing.T) {
	// if (flag) {...}: a boolean zero test — weak.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "weak", 1)
	b.BranchZ(dex.OpIfEqz, 0, "skip")
	b.CallAPI(-1, dex.APIVibrate, func() int32 { r := b.Reg(); b.ConstInt(r, 5); return r }())
	b.Label("skip")
	b.ReturnVoid()
	m := b.MustFinish()
	qcs := FindQCs(f, m)
	if len(qcs) != 1 || qcs[0].Kind != Weak {
		t.Fatalf("qcs = %+v", qcs)
	}
}

func TestLoopQCsFlagged(t *testing.T) {
	// while (i != 100) { i++ } — the equality inside the loop is found
	// but marked InLoop so candidate selection can skip it.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "loopqc", 0)
	i := b.Reg()
	c := b.Reg()
	b.ConstInt(i, 0)
	b.ConstInt(c, 100)
	b.Label("head")
	b.Branch(dex.OpIfEq, i, c, "done")
	b.AddK(i, i, 1)
	b.Goto("head")
	b.Label("done")
	b.ReturnVoid()
	m := b.MustFinish()
	qcs := FindQCs(f, m)
	if len(qcs) != 1 {
		t.Fatalf("qcs = %d", len(qcs))
	}
	if !qcs[0].InLoop {
		t.Error("loop QC must be flagged InLoop")
	}
}

func TestNoQCWhenBothOperandsUnknown(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "none", 2)
	b.Branch(dex.OpIfEq, 0, 1, "x")
	b.Label("x")
	b.ReturnVoid()
	m := b.MustFinish()
	if qcs := FindQCs(f, m); len(qcs) != 0 {
		t.Errorf("variable-vs-variable compare is not a QC: %+v", qcs)
	}
}

func TestNoQCWhenBothConstant(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "cc", 0)
	x := b.Reg()
	y := b.Reg()
	b.ConstInt(x, 1)
	b.ConstInt(y, 2)
	b.Branch(dex.OpIfEq, x, y, "x")
	b.Label("x")
	b.ReturnVoid()
	m := b.MustFinish()
	if qcs := FindQCs(f, m); len(qcs) != 0 {
		t.Errorf("constant-vs-constant compare is not a usable QC: %+v", qcs)
	}
}

func TestConstTrackerInvalidation(t *testing.T) {
	// The register is overwritten by a call before the compare: no QC.
	f := dex.NewFile()
	b := dex.NewBuilder(f, "inval", 1)
	c := b.Reg()
	b.ConstInt(c, 9)
	b.CallAPI(c, dex.APITimeMillis) // clobbers the constant
	b.Branch(dex.OpIfEq, 0, c, "x")
	b.Label("x")
	b.ReturnVoid()
	m := b.MustFinish()
	if qcs := FindQCs(f, m); len(qcs) != 0 {
		t.Errorf("clobbered constant should not form a QC: %+v", qcs)
	}
}

func TestConstThroughMove(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "mv", 1)
	c := b.Reg()
	d := b.Reg()
	b.ConstInt(c, 11)
	b.Move(d, c)
	b.Branch(dex.OpIfEq, 0, d, "x")
	b.Label("x")
	b.ReturnVoid()
	m := b.MustFinish()
	qcs := FindQCs(f, m)
	if len(qcs) != 1 || qcs[0].Const.Int != 11 {
		t.Errorf("constant should propagate through move: %+v", qcs)
	}
}
