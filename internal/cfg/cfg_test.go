package cfg

import (
	"testing"

	"bombdroid/internal/dex"
)

// linearMethod: no branches.
func linearMethod(f *dex.File) *dex.Method {
	b := dex.NewBuilder(f, "linear", 1)
	r := b.Reg()
	b.ConstInt(r, 1)
	b.Arith(dex.OpAdd, r, r, 0)
	b.Return(r)
	return b.MustFinish()
}

// loopMethod: count to 10.
func loopMethod(f *dex.File) *dex.Method {
	b := dex.NewBuilder(f, "loop", 0)
	i := b.Reg()
	lim := b.Reg()
	b.ConstInt(i, 0)
	b.ConstInt(lim, 10)
	b.Label("head")
	b.Branch(dex.OpIfGe, i, lim, "done")
	b.AddK(i, i, 1)
	b.Goto("head")
	b.Label("done")
	b.Return(i)
	return b.MustFinish()
}

// diamondMethod: if (x == 5) { y = 1 } else { y = 2 }; return y.
func diamondMethod(f *dex.File) *dex.Method {
	b := dex.NewBuilder(f, "diamond", 1)
	c := b.Reg()
	y := b.Reg()
	b.ConstInt(c, 5)
	b.Branch(dex.OpIfNe, 0, c, "else")
	b.ConstInt(y, 1)
	b.Goto("join")
	b.Label("else")
	b.ConstInt(y, 2)
	b.Label("join")
	b.Return(y)
	return b.MustFinish()
}

func TestBlocksLinear(t *testing.T) {
	f := dex.NewFile()
	m := linearMethod(f)
	g := Build(f, m)
	if g.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", g.NumBlocks())
	}
	if g.InLoop(0) {
		t.Error("linear code is not in a loop")
	}
	if g.BlockOf(0) != 0 || g.BlockOf(len(m.Code)-1) != 0 {
		t.Error("blockOf mapping wrong")
	}
	if g.BlockOf(-1) != -1 || g.BlockOf(999) != -1 {
		t.Error("out-of-range BlockOf should be -1")
	}
}

func TestBlocksDiamond(t *testing.T) {
	f := dex.NewFile()
	m := diamondMethod(f)
	g := Build(f, m)
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", g.NumBlocks())
	}
	// Entry block has two successors; both lead to the join.
	entry := g.Blocks[g.BlockOf(0)]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	join := g.BlockOf(len(m.Code) - 1)
	for _, s := range entry.Succs {
		found := false
		for _, ss := range g.Blocks[s].Succs {
			if ss == join {
				found = true
			}
		}
		if !found {
			t.Errorf("branch arm %d does not reach join", s)
		}
	}
	for i := range g.Blocks {
		if g.inLoop[i] {
			t.Error("diamond has no loops")
		}
	}
	// Preds of join = both arms.
	if len(g.Blocks[join].Preds) != 2 {
		t.Errorf("join preds = %v", g.Blocks[join].Preds)
	}
}

func TestLoopDetection(t *testing.T) {
	f := dex.NewFile()
	m := loopMethod(f)
	g := Build(f, m)
	// The branch and increment participate in the cycle.
	var loopPCs, nonLoop int
	for pc := range m.Code {
		if g.InLoop(pc) {
			loopPCs++
		} else {
			nonLoop++
		}
	}
	if loopPCs == 0 {
		t.Fatal("no loop detected")
	}
	if nonLoop == 0 {
		t.Fatal("return should be outside the loop")
	}
	// The head compare is in the loop; the final return is not.
	if !g.InLoop(2) {
		t.Error("loop head should be in loop")
	}
	if g.InLoop(len(m.Code) - 1) {
		t.Error("return should not be in loop")
	}
}

func TestSelfLoop(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "self", 0)
	b.Label("top")
	b.Goto("top")
	m := b.MustFinish()
	g := Build(f, m)
	if !g.InLoop(0) {
		t.Error("self loop not detected")
	}
}

func TestSwitchEdges(t *testing.T) {
	f := dex.NewFile()
	b := dex.NewBuilder(f, "sw", 1)
	out := b.Reg()
	b.Switch(0, []int64{1, 2}, []string{"a", "b"}, "d")
	b.Label("a")
	b.ConstInt(out, 1)
	b.Return(out)
	b.Label("b")
	b.ConstInt(out, 2)
	b.Return(out)
	b.Label("d")
	b.ConstInt(out, 0)
	b.Return(out)
	m := b.MustFinish()
	g := Build(f, m)
	entry := g.Blocks[g.BlockOf(0)]
	if len(entry.Succs) != 3 {
		t.Errorf("switch successors = %v, want 3", entry.Succs)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	f := dex.NewFile()
	m := linearMethod(f)
	g := Build(f, m)
	lv := ComputeLiveness(g)
	// Arg r0 is live-in at entry (used by the add).
	if !lv.In[0].Has(0) {
		t.Error("arg should be live at entry")
	}
	// After the return nothing is live-out.
	if !lv.Out[len(m.Code)-1].Empty() {
		t.Error("nothing is live after return")
	}
}

func TestLivenessAcrossBranch(t *testing.T) {
	f := dex.NewFile()
	m := diamondMethod(f)
	g := Build(f, m)
	lv := ComputeLiveness(g)
	// y (r2) is live at the join (it is returned).
	joinPC := len(m.Code) - 1
	if !lv.In[joinPC].Has(2) {
		t.Error("y should be live at return")
	}
	// x (r0) is dead after the compare.
	if lv.In[joinPC].Has(0) {
		t.Error("x should be dead at the join")
	}
}

func TestRegSetOps(t *testing.T) {
	s := NewRegSet(70)
	s.Add(0)
	s.Add(65)
	if !s.Has(0) || !s.Has(65) || s.Has(1) {
		t.Error("Add/Has broken")
	}
	s.Remove(0)
	if s.Has(0) {
		t.Error("Remove broken")
	}
	o := NewRegSet(70)
	o.Add(3)
	if !s.Clone().UnionInto(o) {
		t.Error("union should report change")
	}
	if s.UnionInto(NewRegSet(70)) {
		t.Error("union with empty should not change")
	}
	if s.Empty() {
		t.Error("set with 65 not empty")
	}
	if !NewRegSet(10).Empty() {
		t.Error("fresh set should be empty")
	}
	a, bset := NewRegSet(10), NewRegSet(10)
	a.Add(4)
	bset.Add(4)
	if !a.Intersects(bset) {
		t.Error("Intersects broken")
	}
	bset.Remove(4)
	if a.Intersects(bset) {
		t.Error("empty intersection misreported")
	}
	// Out-of-range accesses are safe no-ops.
	s.Add(-1)
	s.Add(1000)
	if s.Has(-1) || s.Has(1000) {
		t.Error("out-of-range should be absent")
	}
}

func TestUsesDefsCoverAllOps(t *testing.T) {
	// Every opcode must be classified (even if with empty sets); guard
	// against new ops silently breaking liveness.
	for op := dex.Op(0); int(op) < dex.NumOps; op++ {
		in := dex.Instr{Op: op, A: 0, B: 1, C: 2}
		uses, defs := UsesDefs(in)
		for _, r := range append(uses, defs...) {
			if r < 0 && op != dex.OpInvoke && op != dex.OpCallAPI {
				t.Errorf("%s: negative register in uses/defs", op)
			}
		}
	}
	// Invoke with A=-1 defines nothing.
	_, defs := UsesDefs(dex.Instr{Op: dex.OpInvoke, A: -1, B: 0, C: 2})
	if len(defs) != 0 {
		t.Error("void invoke should not define")
	}
	uses, _ := UsesDefs(dex.Instr{Op: dex.OpCallAPI, A: 3, B: 1, C: 2})
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("call arg window uses = %v", uses)
	}
}

func TestEmptyMethod(t *testing.T) {
	f := dex.NewFile()
	m := &dex.Method{Name: "empty", NumRegs: 0}
	g := Build(f, m)
	if g.NumBlocks() != 0 {
		t.Error("empty method should have no blocks")
	}
	lv := ComputeLiveness(g)
	if len(lv.In) != 0 {
		t.Error("no liveness entries expected")
	}
}

func TestStrengthString(t *testing.T) {
	if Weak.String() != "weak" || Medium.String() != "medium" || Strong.String() != "strong" {
		t.Error("strength names wrong")
	}
	if Strength(9).String() != "?" {
		t.Error("unknown strength should render ?")
	}
}
