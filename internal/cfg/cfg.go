// Package cfg provides the static analyses BombDroid's candidate
// selection runs over app bytecode (the paper uses Soot; §7.2):
// control-flow graph construction, loop detection, backward liveness,
// intra-block constant tracking, and discovery of qualified conditions
// — equality checks against statically determinable constants
// (IFEQ/IFNE/IF_ICMPEQ/IF_ICMPNE/TABLESWITCH and string
// equals/startsWith/endsWith).
package cfg

import (
	"sort"

	"bombdroid/internal/dex"
)

// Block is a basic block: a maximal straight-line instruction range.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of one method.
type Graph struct {
	Method  *dex.Method
	File    *dex.File
	Blocks  []Block
	blockOf []int  // pc -> block id
	inLoop  []bool // block id -> participates in a cycle
}

// Build constructs the CFG and runs loop detection.
func Build(f *dex.File, m *dex.Method) *Graph {
	g := &Graph{Method: m, File: f}
	n := len(m.Code)
	if n == 0 {
		return g
	}

	// Leaders: entry, branch targets, instructions after terminators
	// and conditional branches.
	leader := make([]bool, n)
	leader[0] = true
	markTarget := func(t int32) {
		if t >= 0 && int(t) < n {
			leader[t] = true
		}
	}
	for pc, in := range m.Code {
		switch {
		case in.Op.IsBranch():
			markTarget(in.C)
			if pc+1 < n {
				leader[pc+1] = true
			}
		case in.Op == dex.OpSwitch:
			if in.Imm >= 0 && in.Imm < int64(len(m.Tables)) {
				t := m.Tables[in.Imm]
				markTarget(t.Default)
				for _, c := range t.Cases {
					markTarget(c.Target)
				}
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case in.Op == dex.OpReturn || in.Op == dex.OpReturnVoid:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}

	g.blockOf = make([]int, n)
	for pc := 0; pc < n; {
		start := pc
		id := len(g.Blocks)
		pc++
		for pc < n && !leader[pc] {
			pc++
		}
		g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: pc})
		for i := start; i < pc; i++ {
			g.blockOf[i] = id
		}
	}

	// Edges from each block's last instruction.
	addEdge := func(from int, toPC int32) {
		if toPC < 0 || int(toPC) >= n {
			return
		}
		to := g.blockOf[toPC]
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := m.Code[b.End-1]
		switch {
		case last.Op == dex.OpGoto:
			addEdge(i, last.C)
		case last.Op.IsCondBranch():
			addEdge(i, last.C)
			if b.End < n {
				addEdge(i, int32(b.End))
			}
		case last.Op == dex.OpSwitch:
			if last.Imm >= 0 && last.Imm < int64(len(m.Tables)) {
				t := m.Tables[last.Imm]
				addEdge(i, t.Default)
				for _, c := range t.Cases {
					addEdge(i, c.Target)
				}
			}
		case last.Op == dex.OpReturn || last.Op == dex.OpReturnVoid:
			// No successors.
		default:
			if b.End < n {
				addEdge(i, int32(b.End))
			}
		}
		// Deduplicate successors (switch cases may share targets).
		b.Succs = dedupe(b.Succs)
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, i)
		}
	}
	g.detectLoops()
	return g
}

func dedupe(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// detectLoops marks blocks participating in cycles using Tarjan SCCs:
// a block is "in a loop" if its SCC has more than one node or it has a
// self edge. BombDroid avoids inserting bombs into loops (§7.2), so
// this is the predicate candidate selection needs.
func (g *Graph) detectLoops() {
	n := len(g.Blocks)
	g.inLoop = make([]bool, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v, si int
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			if fr.si < len(g.Blocks[v].Succs) {
				w := g.Blocks[v].Succs[fr.si]
				fr.si++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					for _, w := range scc {
						g.inLoop[w] = true
					}
				} else {
					w := scc[0]
					for _, s := range g.Blocks[w].Succs {
						if s == w {
							g.inLoop[w] = true
						}
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if index[i] == -1 {
			dfs(i)
		}
	}
}

// BlockOf returns the block id containing pc.
func (g *Graph) BlockOf(pc int) int {
	if pc < 0 || pc >= len(g.blockOf) {
		return -1
	}
	return g.blockOf[pc]
}

// InLoop reports whether pc lies inside a cycle.
func (g *Graph) InLoop(pc int) bool {
	b := g.BlockOf(pc)
	return b >= 0 && g.inLoop[b]
}

// NumBlocks returns the block count.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }
