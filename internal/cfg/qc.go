package cfg

import (
	"bombdroid/internal/dex"
)

// Strength grades an outer trigger's brute-force resistance by the
// constant's type (paper §8.3.1): boolean constants are weak, integers
// medium, strings strong.
type Strength uint8

// Strength levels.
const (
	Weak   Strength = iota // boolean (zero-test) conditions
	Medium                 // integer constants
	Strong                 // string constants
)

// String returns the level name.
func (s Strength) String() string {
	switch s {
	case Weak:
		return "weak"
	case Medium:
		return "medium"
	case Strong:
		return "strong"
	}
	return "?"
}

// QC is a qualified condition: "ϕ == c" with c statically
// determinable (paper §3.3). It records everything the bomb
// constructor needs: where the comparison happens, which register
// holds ϕ, the constant, and the shape of the guarded region.
type QC struct {
	Method   *dex.Method
	BranchPC int       // pc of the conditional branch (or switch)
	CondPC   int       // pc of the string-compare call, or BranchPC
	Reg      int32     // register holding ϕ at CondPC
	Const    dex.Value // c
	Kind     Strength
	StrOp    dex.API // equals/startsWith/endsWith for string QCs
	CaseIdx  int     // switch case index, -1 otherwise
	InLoop   bool

	// ThenStart/ThenEnd delimit the contiguous guarded region
	// [ThenStart, ThenEnd) for if-then shapes; ThenEnd == ThenStart
	// when there is no contiguous then-region (switch cases, eq-jump
	// shapes).
	ThenStart, ThenEnd int
}

// HasThenRegion reports whether the QC guards a contiguous fallthrough
// region (the shape code weaving needs).
func (q *QC) HasThenRegion() bool { return q.ThenEnd > q.ThenStart }

// Constant propagation lattice: top (unvisited), const(v), or NAC
// (not-a-constant). A full forward dataflow — not just intra-block
// tracking — so constants survive across branch targets and loop
// headers, matching what Soot's constant propagation would determine.
const (
	latTop uint8 = iota
	latConst
	latNAC
)

type latticeVal struct {
	state uint8
	val   dex.Value
}

type lattice []latticeVal

func newLattice(n int, state uint8) lattice {
	l := make(lattice, n)
	for i := range l {
		l[i].state = state
	}
	return l
}

func (l lattice) clone() lattice { return append(lattice(nil), l...) }

// meetInto merges o into l, reporting change.
func (l lattice) meetInto(o lattice) bool {
	changed := false
	for i := range l {
		a, b := l[i], o[i]
		var n latticeVal
		switch {
		case a.state == latTop:
			n = b
		case b.state == latTop:
			n = a
		case a.state == latConst && b.state == latConst && a.val.Equal(b.val):
			n = a
		default:
			n = latticeVal{state: latNAC}
		}
		if n.state != a.state || (n.state == latConst && !n.val.Equal(a.val)) {
			l[i] = n
			changed = true
		}
	}
	return changed
}

func (l lattice) get(r int32) (dex.Value, bool) {
	if r < 0 || int(r) >= len(l) || l[r].state != latConst {
		return dex.Value{}, false
	}
	return l[r].val, true
}

func (l lattice) set(r int32, v dex.Value) {
	if r >= 0 && int(r) < len(l) {
		l[r] = latticeVal{state: latConst, val: v}
	}
}

func (l lattice) kill(r int32) {
	if r >= 0 && int(r) < len(l) {
		l[r] = latticeVal{state: latNAC}
	}
}

// step applies one instruction's transfer function.
func (l lattice) step(f *dex.File, in dex.Instr) {
	switch in.Op {
	case dex.OpConstInt:
		l.set(in.A, dex.Int64(in.Imm))
	case dex.OpConstStr:
		l.set(in.A, dex.Str(f.Str(in.Imm)))
	case dex.OpMove:
		if v, ok := l.get(in.B); ok {
			l.set(in.A, v)
		} else {
			l.kill(in.A)
		}
	case dex.OpAddK:
		if v, ok := l.get(in.B); ok && v.Kind == dex.KindInt {
			l.set(in.A, dex.Int64(v.Int+in.Imm))
		} else {
			l.kill(in.A)
		}
	default:
		_, defs := UsesDefs(in)
		for _, d := range defs {
			l.kill(d)
		}
	}
}

// constStates computes the lattice at entry of every block.
func constStates(f *dex.File, m *dex.Method, g *Graph) []lattice {
	n := len(g.Blocks)
	in := make([]lattice, n)
	for i := range in {
		in[i] = newLattice(m.NumRegs, latTop)
	}
	if n == 0 {
		return in
	}
	// Entry: everything is NAC (arguments vary, scratch is undefined).
	for i := range in[0] {
		in[0][i].state = latNAC
	}
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		out := in[b].clone()
		for pc := g.Blocks[b].Start; pc < g.Blocks[b].End; pc++ {
			out.step(f, m.Code[pc])
		}
		for _, s := range g.Blocks[b].Succs {
			if in[s].meetInto(out) && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return in
}

// FindQCs discovers qualified conditions in a method. Patterns:
//
//   - if-eq/if-ne with exactly one constant operand (IF_ICMPEQ/NE)
//   - if-eqz/if-nez (IFEQ/IFNE — weak boolean conditions)
//   - table switches: each case is an equality against its match value
//   - r = equals/startsWith/endsWith(ϕ, "lit") ; if-eqz/nez r
//
// Constants are recognized by intra-block propagation, matching what
// a bytecode-level tool can determine statically.
func FindQCs(f *dex.File, m *dex.Method) []QC {
	g := Build(f, m)
	return FindQCsWithGraph(f, m, g)
}

// FindQCsWithGraph is FindQCs against a prebuilt graph.
func FindQCsWithGraph(f *dex.File, m *dex.Method, g *Graph) []QC {
	var out []QC
	blockIn := constStates(f, m, g)
	// strCmp remembers, per destination register, the most recent
	// string-comparison call whose second operand was constant.
	type strCmpInfo struct {
		pc    int
		reg   int32
		op    dex.API
		lit   dex.Value
		valid bool
	}
	strCmps := map[int32]strCmpInfo{}

	for bi := range g.Blocks {
		b := g.Blocks[bi]
		tracker := blockIn[bi].clone()
		for k := range strCmps {
			delete(strCmps, k)
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := m.Code[pc]
			switch in.Op {
			case dex.OpIfEq, dex.OpIfNe:
				av, aok := tracker.get(in.A)
				bv, bok := tracker.get(in.B)
				var reg int32
				var cv dex.Value
				switch {
				case aok && !bok:
					reg, cv = in.B, av
				case bok && !aok:
					reg, cv = in.A, bv
				default:
					// Both or neither constant: not a usable QC.
					tracker.step(f, in)
					continue
				}
				q := QC{
					Method: m, BranchPC: pc, CondPC: pc, Reg: reg,
					Const: cv, Kind: kindOf(cv), CaseIdx: -1,
					InLoop: g.InLoop(pc),
				}
				if in.Op == dex.OpIfNe {
					// "if ϕ != c goto JOIN": the fallthrough is the
					// guarded then-region ending at the join.
					q.ThenStart, q.ThenEnd = pc+1, int(in.C)
					if q.ThenEnd < q.ThenStart {
						q.ThenStart, q.ThenEnd = 0, 0
					}
				}
				out = append(out, q)

			case dex.OpIfEqz, dex.OpIfNez:
				// A zero test: ϕ == 0/false — possibly the tail of a
				// string comparison.
				if sc, ok := strCmps[in.A]; ok && sc.valid {
					q := QC{
						Method: m, BranchPC: pc, CondPC: sc.pc, Reg: sc.reg,
						Const: sc.lit, Kind: Strong, StrOp: sc.op, CaseIdx: -1,
						InLoop: g.InLoop(pc),
					}
					if in.Op == dex.OpIfEqz {
						// "if !equals(ϕ,c) goto JOIN" guards fallthrough.
						q.ThenStart, q.ThenEnd = pc+1, int(in.C)
						if q.ThenEnd < q.ThenStart {
							q.ThenStart, q.ThenEnd = 0, 0
						}
					}
					out = append(out, q)
				} else {
					q := QC{
						Method: m, BranchPC: pc, CondPC: pc, Reg: in.A,
						Const: dex.Int64(0), Kind: Weak, CaseIdx: -1,
						InLoop: g.InLoop(pc),
					}
					if in.Op == dex.OpIfNez {
						// "if ϕ != 0 goto JOIN" guards the ϕ==0 region.
						q.ThenStart, q.ThenEnd = pc+1, int(in.C)
						if q.ThenEnd < q.ThenStart {
							q.ThenStart, q.ThenEnd = 0, 0
						}
					}
					out = append(out, q)
				}

			case dex.OpSwitch:
				if in.Imm >= 0 && in.Imm < int64(len(m.Tables)) {
					for ci, cs := range m.Tables[in.Imm].Cases {
						out = append(out, QC{
							Method: m, BranchPC: pc, CondPC: pc, Reg: in.A,
							Const: dex.Int64(cs.Match), Kind: Medium,
							CaseIdx: ci, InLoop: g.InLoop(pc),
						})
					}
				}

			case dex.OpCallAPI:
				api := dex.API(in.Imm)
				if in.A != -1 {
					delete(strCmps, in.A)
				}
				if (api == dex.APIStrEquals || api == dex.APIStrStartsWith || api == dex.APIStrEndsWith) && in.C == 2 && in.A != -1 {
					if lit, ok := tracker.get(in.B + 1); ok && lit.Kind == dex.KindStr {
						strCmps[in.A] = strCmpInfo{pc: pc, reg: in.B, op: api, lit: lit, valid: true}
					}
				}
			}
			// Any write invalidates stale string-compare results.
			_, defs := UsesDefs(in)
			for _, d := range defs {
				if sc, ok := strCmps[d]; ok && sc.pc != pc {
					delete(strCmps, d)
				}
			}
			tracker.step(f, in)
		}
	}
	return out
}

func kindOf(v dex.Value) Strength {
	switch v.Kind {
	case dex.KindStr:
		return Strong
	default:
		return Medium
	}
}

// Liftable reports whether the QC's then-region can be moved into an
// encrypted payload: single entry, exits only to the join, no
// returns/switches inside, external live registers limited to the
// trigger operand on entry, and no register written in the region is
// live after the join (statics are the sanctioned side-channel).
func Liftable(g *Graph, lv *Liveness, q *QC) bool {
	if !q.HasThenRegion() {
		return false
	}
	m := q.Method
	s, e := q.ThenStart, q.ThenEnd
	if s < 0 || e > len(m.Code) {
		return false
	}
	// Control flow containment.
	for pc := s; pc < e; pc++ {
		in := m.Code[pc]
		switch {
		case in.Op == dex.OpReturn || in.Op == dex.OpReturnVoid:
			return false
		case in.Op == dex.OpSwitch:
			return false
		case in.Op.IsBranch():
			t := int(in.C)
			if (t < s || t > e) && t != e {
				return false
			}
		}
	}
	// No external jumps into the interior.
	for pc, in := range m.Code {
		if pc >= s && pc < e {
			continue
		}
		var targets []int
		if in.Op.IsBranch() {
			targets = append(targets, int(in.C))
		}
		if in.Op == dex.OpSwitch && in.Imm >= 0 && in.Imm < int64(len(m.Tables)) {
			t := m.Tables[in.Imm]
			targets = append(targets, int(t.Default))
			for _, c := range t.Cases {
				targets = append(targets, int(c.Target))
			}
		}
		for _, t := range targets {
			if t > s && t < e {
				return false
			}
		}
	}
	// Incoming values: registers read before any write inside the
	// region must be exactly {q.Reg} or nothing.
	written := NewRegSet(m.NumRegs)
	for pc := s; pc < e; pc++ {
		uses, defs := UsesDefs(m.Code[pc])
		for _, u := range uses {
			if !written.Has(u) && u != q.Reg {
				return false
			}
		}
		for _, d := range defs {
			written.Add(d)
		}
	}
	// Nothing written inside may be live at the join.
	if e < len(lv.In) && written.Intersects(lv.In[e]) {
		return false
	}
	return true
}
