package core

import (
	"context"
	"fmt"

	"bombdroid/internal/apk"
)

// stageUnpack extracts the working artifacts from the signed input
// package: the decoded dex, the developer's public key Ko from
// CERT.RSA, the resource-string count (where stego strings will
// land), and the icon/author manifest digests for DetectIcon bombs
// (the values a repackager's edits will change).
func stageUnpack(ctx context.Context, a *Artifacts) error {
	file, err := a.In.DexFile()
	if err != nil {
		return fmt.Errorf("core: unpacking dex: %w", err)
	}
	ko := a.In.PublicKeyHex()
	if ko == "" {
		return fmt.Errorf("core: input package has no certificate to extract Ko from")
	}
	a.File = file
	a.Ko = ko
	a.ResourceCount = len(a.In.Res.Strings)
	a.Opts.IconDigest = a.In.Manifest.DigestOf(apk.EntryIcon)
	a.Opts.AuthorDigest = a.In.Manifest.DigestOf(apk.EntryAuthor)
	return nil
}

// stageRepack assembles the protected unsigned package: the original
// resources plus the stego strings, around the instrumented dex.
func stageRepack(ctx context.Context, a *Artifacts) error {
	newRes := a.In.Res.Clone()
	newRes.Strings = append(newRes.Strings, a.Result.StegoStrings...)
	a.Unsigned = apk.Build(a.In.Name, a.Result.File, newRes)
	return nil
}

// BuildProtected runs the full Figure-1 pipeline on a signed input
// package: unpack, extract the public key from CERT.RSA, instrument,
// and emit the protected *unsigned* package plus the protection
// record. The unsigned output "will be sent to the legitimate
// developer to sign the app; the private key is kept by the
// legitimate developer and is not disclosed to BombDroid".
//
// This is the uncached path: it assumes Options.Profile is already
// populated (or absent). The Engine runs the same stages with
// profiling and artifact caching on top.
func BuildProtected(in *apk.Package, opts Options) (*apk.Unsigned, *Result, error) {
	return BuildProtectedCtx(context.Background(), in, opts)
}

// BuildProtectedCtx is BuildProtected with cancellation.
func BuildProtectedCtx(ctx context.Context, in *apk.Package, opts Options) (*apk.Unsigned, *Result, error) {
	a := &Artifacts{In: in, Opts: opts.withDefaults()}
	if err := stageUnpack(ctx, a); err != nil {
		return nil, nil, err
	}
	res, err := ProtectCtx(ctx, a.File, a.Ko, a.ResourceCount, a.Opts)
	if err != nil {
		return nil, nil, err
	}
	a.Result = res
	if err := stageRepack(ctx, a); err != nil {
		return nil, nil, err
	}
	return a.Unsigned, res, nil
}

// ProtectPackage is BuildProtected followed by the developer signing
// step — the convenience most tests and experiments want.
func ProtectPackage(in *apk.Package, devKey *apk.KeyPair, opts Options) (*apk.Package, *Result, error) {
	if devKey.PublicKeyHex() != in.PublicKeyHex() {
		return nil, nil, fmt.Errorf("core: signing key does not match the package's certificate")
	}
	u, res, err := BuildProtected(in, opts)
	if err != nil {
		return nil, nil, err
	}
	signed, err := apk.Sign(u, devKey)
	if err != nil {
		return nil, nil, err
	}
	return signed, res, nil
}
