package core

import (
	"fmt"

	"bombdroid/internal/apk"
)

// BuildProtected runs the full Figure-1 pipeline on a signed input
// package: unpack, extract the public key from CERT.RSA, instrument,
// and emit the protected *unsigned* package plus the protection
// record. The unsigned output "will be sent to the legitimate
// developer to sign the app; the private key is kept by the
// legitimate developer and is not disclosed to BombDroid".
func BuildProtected(in *apk.Package, opts Options) (*apk.Unsigned, *Result, error) {
	file, err := in.DexFile()
	if err != nil {
		return nil, nil, fmt.Errorf("core: unpacking dex: %w", err)
	}
	ko := in.PublicKeyHex()
	if ko == "" {
		return nil, nil, fmt.Errorf("core: input package has no certificate to extract Ko from")
	}
	// Icon/author digests for DetectIcon bombs come from the input
	// package's manifest (the values a repackager's edits will change).
	opts.IconDigest = in.Manifest.DigestOf(apk.EntryIcon)
	opts.AuthorDigest = in.Manifest.DigestOf(apk.EntryAuthor)
	res, err := Protect(file, ko, len(in.Res.Strings), opts)
	if err != nil {
		return nil, nil, err
	}
	newRes := in.Res.Clone()
	newRes.Strings = append(newRes.Strings, res.StegoStrings...)
	return apk.Build(in.Name, res.File, newRes), res, nil
}

// ProtectPackage is BuildProtected followed by the developer signing
// step — the convenience most tests and experiments want.
func ProtectPackage(in *apk.Package, devKey *apk.KeyPair, opts Options) (*apk.Package, *Result, error) {
	if devKey.PublicKeyHex() != in.PublicKeyHex() {
		return nil, nil, fmt.Errorf("core: signing key does not match the package's certificate")
	}
	u, res, err := BuildProtected(in, opts)
	if err != nil {
		return nil, nil, err
	}
	signed, err := apk.Sign(u, devKey)
	if err != nil {
		return nil, nil, err
	}
	return signed, res, nil
}
