package core

import (
	"fmt"

	"bombdroid/internal/android"
	"bombdroid/internal/dex"
	"bombdroid/internal/instrument"
	"bombdroid/internal/lockbox"
	"bombdroid/internal/vm"
)

// muteRef is the shared runtime flag §10-muted payloads coordinate
// through. It needs no declaration: unset statics read as nil (falsy)
// and the first PutStatic creates it.
const muteRef = "BombDroidRT.muted"

// payloadSpec describes one payload to build and seal.
type payloadSpec struct {
	id       string // payload class name ("Bomb<N>")
	inner    android.InnerCond
	detect   DetectionMethod
	response vm.ResponseKind
	delayMs  int64

	ko string // developer public key (DetectPublicKey)

	// mute wires the shared §10 muting flag into the payload.
	mute bool

	// DetectDigest / DetectIcon parameters.
	stegoResIdx int64
	digestEntry string // manifest entry compared (DetectIcon)

	// DetectSnippet parameters.
	snippetRef    string
	snippetDigest string

	// Weaving: when weaveFrom != nil, the original guarded region
	// [weaveStart, weaveEnd) of weaveMethod is compiled into the
	// payload tail.
	weaveFrom   *dex.File
	weaveMethod *dex.Method
	weaveStart  int
	weaveEnd    int
	weaveArgReg int32

	// bogus payloads carry only the woven code.
	bogus bool
}

// buildPayload compiles the payload class into its own dex file:
//
//	class Bomb<N> {
//	  run(x) {
//	    if (inner trigger unsatisfied) goto weave      // §6
//	    if (no repackaging detected)  goto weave       // §4.1
//	    <response>                                     // §4.2
//	  weave:
//	    <original guarded app code, if woven>          // §3.4
//	  }
//	}
func buildPayload(spec payloadSpec) (*dex.File, error) {
	pf := dex.NewFile()
	b := dex.NewBuilder(pf, "run", 1)
	b.SetFlags(dex.FlagSynthetic)

	const weaveLbl = "weave"
	if !spec.bogus {
		if spec.mute {
			// Once any bomb has responded, later bombs stay quiet:
			// dynamic analysis stops yielding new bomb locations.
			r := b.Reg()
			b.GetStatic(r, muteRef)
			b.BranchZ(dex.OpIfNez, r, weaveLbl)
		}
		if err := compileInner(b, spec.inner, weaveLbl); err != nil {
			return nil, err
		}
		if err := compileDetection(b, spec, weaveLbl); err != nil {
			return nil, err
		}
		if spec.mute {
			one := b.Reg()
			b.ConstInt(one, 1)
			b.PutStatic(muteRef, one)
		}
		compileResponse(b, spec)
	}
	b.Label(weaveLbl)
	if spec.weaveFrom != nil {
		err := instrument.ExtractRegion(spec.weaveFrom, spec.weaveMethod,
			spec.weaveStart, spec.weaveEnd, spec.weaveArgReg, b, "wend")
		if err != nil {
			return nil, fmt.Errorf("core: weaving %s: %w", spec.id, err)
		}
		b.Label("wend")
	}
	b.ReturnVoid()

	m, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("core: payload %s: %w", spec.id, err)
	}
	cls := &dex.Class{Name: spec.id}
	cls.AddMethod(m)
	if err := pf.AddClass(cls); err != nil {
		return nil, err
	}
	if err := dex.Validate(pf); err != nil {
		return nil, fmt.Errorf("core: payload %s invalid: %w", spec.id, err)
	}
	return pf, nil
}

// sealPayload encrypts a payload file under the key derived from the
// trigger constant and salt.
func sealPayload(pf *dex.File, c dex.Value, salt string) ([]byte, error) {
	return lockbox.SealValue(dex.Encode(pf), c, salt)
}

// compileInner emits the environment-sensitive inner trigger: when
// the condition is NOT satisfied, control skips to failLabel (the
// woven code), keeping the detection dormant (paper §6).
func compileInner(b *dex.Builder, ic android.InnerCond, failLabel string) error {
	if len(ic.Constraints) == 0 {
		return nil
	}
	if !ic.AnyOf {
		for _, c := range ic.Constraints {
			if err := compileConstraintFalseJump(b, c, failLabel); err != nil {
				return err
			}
		}
		return nil
	}
	// Disjunction: any satisfied constraint proceeds to detection.
	pass := "innerpass"
	for _, c := range ic.Constraints {
		if err := compileConstraintTrueJump(b, c, pass); err != nil {
			return err
		}
	}
	b.Goto(failLabel)
	b.Label(pass)
	return nil
}

// loadEnv emits the environment read for a constraint, returning the
// register holding the value.
func loadEnv(b *dex.Builder, c android.Constraint) int32 {
	name := b.Reg()
	b.ConstStr(name, c.Var)
	out := b.Reg()
	spec := android.Spec(c.Var)
	if spec != nil && spec.Kind == android.VarStr {
		b.CallAPI(out, dex.APIGetEnvStr, name)
	} else {
		b.CallAPI(out, dex.APIGetEnvInt, name)
	}
	return out
}

func compileConstraintFalseJump(b *dex.Builder, c android.Constraint, target string) error {
	spec := android.Spec(c.Var)
	v := loadEnv(b, c)
	if spec != nil && spec.Kind == android.VarStr {
		lit := b.Reg()
		b.ConstStr(lit, c.StrVal)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, v, lit)
		switch c.Op {
		case android.OpEq:
			b.BranchZ(dex.OpIfEqz, eq, target)
		case android.OpNe:
			b.BranchZ(dex.OpIfNez, eq, target)
		default:
			return fmt.Errorf("core: string constraint with op %v", c.Op)
		}
		return nil
	}
	switch c.Op {
	case android.OpIn:
		lo := b.Reg()
		b.ConstInt(lo, c.Lo)
		b.Branch(dex.OpIfLt, v, lo, target)
		hi := b.Reg()
		b.ConstInt(hi, c.Hi)
		b.Branch(dex.OpIfGt, v, hi, target)
	default:
		k := b.Reg()
		b.ConstInt(k, c.Val)
		var op dex.Op
		switch c.Op {
		case android.OpEq:
			op = dex.OpIfNe
		case android.OpNe:
			op = dex.OpIfEq
		case android.OpLt:
			op = dex.OpIfGe
		case android.OpGt:
			op = dex.OpIfLe
		default:
			return fmt.Errorf("core: unsupported constraint op %v", c.Op)
		}
		b.Branch(op, v, k, target)
	}
	return nil
}

func compileConstraintTrueJump(b *dex.Builder, c android.Constraint, target string) error {
	spec := android.Spec(c.Var)
	v := loadEnv(b, c)
	if spec != nil && spec.Kind == android.VarStr {
		lit := b.Reg()
		b.ConstStr(lit, c.StrVal)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, v, lit)
		switch c.Op {
		case android.OpEq:
			b.BranchZ(dex.OpIfNez, eq, target)
		case android.OpNe:
			b.BranchZ(dex.OpIfEqz, eq, target)
		default:
			return fmt.Errorf("core: string constraint with op %v", c.Op)
		}
		return nil
	}
	switch c.Op {
	case android.OpIn:
		// lo <= v <= hi → jump: implemented as two guards around a
		// fallthrough miss.
		miss := fmt.Sprintf("inmiss%d", b.PC())
		lo := b.Reg()
		b.ConstInt(lo, c.Lo)
		b.Branch(dex.OpIfLt, v, lo, miss)
		hi := b.Reg()
		b.ConstInt(hi, c.Hi)
		b.Branch(dex.OpIfLe, v, hi, target)
		b.Label(miss)
	default:
		k := b.Reg()
		b.ConstInt(k, c.Val)
		var op dex.Op
		switch c.Op {
		case android.OpEq:
			op = dex.OpIfEq
		case android.OpNe:
			op = dex.OpIfNe
		case android.OpLt:
			op = dex.OpIfLt
		case android.OpGt:
			op = dex.OpIfGt
		default:
			return fmt.Errorf("core: unsupported constraint op %v", c.Op)
		}
		b.Branch(op, v, k, target)
	}
	return nil
}

// compileDetection emits the repackaging check; when NO repackaging
// is detected, control jumps to okLabel (so genuine apps never reach
// the response — the zero-false-positive property).
func compileDetection(b *dex.Builder, spec payloadSpec, okLabel string) error {
	switch spec.detect {
	case DetectPublicKey:
		cur := b.Reg()
		b.CallAPI(cur, dex.APIGetPublicKey)
		ko := b.Reg()
		b.ConstStr(ko, spec.ko)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, cur, ko)
		b.BranchZ(dex.OpIfNez, eq, okLabel)

	case DetectDigest:
		name := b.Reg()
		b.ConstStr(name, "classes.dex")
		dr := b.Reg()
		b.CallAPI(dr, dex.APIGetManifestDigest, name)
		// Fragment of the runtime digest.
		lo := b.Reg()
		b.ConstInt(lo, 0)
		hi := b.Reg()
		b.ConstInt(hi, stegoFragLen)
		frag := b.Reg()
		b.CallAPI(frag, dex.APIStrSubstr, dr, lo, hi)
		// Hidden original fragment from strings.xml.
		idx := b.Reg()
		b.ConstInt(idx, spec.stegoResIdx)
		res := b.Reg()
		b.CallAPI(res, dex.APIGetResourceString, idx)
		do := b.Reg()
		b.CallAPI(do, dex.APIStegoExtract, res)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, frag, do)
		b.BranchZ(dex.OpIfNez, eq, okLabel)

	case DetectIcon:
		name := b.Reg()
		b.ConstStr(name, spec.digestEntry)
		dr := b.Reg()
		b.CallAPI(dr, dex.APIGetManifestDigest, name)
		lo := b.Reg()
		b.ConstInt(lo, 0)
		hi := b.Reg()
		b.ConstInt(hi, stegoFragLen)
		frag := b.Reg()
		b.CallAPI(frag, dex.APIStrSubstr, dr, lo, hi)
		idx := b.Reg()
		b.ConstInt(idx, spec.stegoResIdx)
		res := b.Reg()
		b.CallAPI(res, dex.APIGetResourceString, idx)
		do := b.Reg()
		b.CallAPI(do, dex.APIStegoExtract, res)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, frag, do)
		b.BranchZ(dex.OpIfNez, eq, okLabel)

	case DetectSnippet:
		name := b.Reg()
		b.ConstStr(name, spec.snippetRef)
		got := b.Reg()
		b.CallAPI(got, dex.APICodeDigest, name)
		want := b.Reg()
		b.ConstStr(want, spec.snippetDigest)
		eq := b.Reg()
		b.CallAPI(eq, dex.APIStrEquals, got, want)
		b.BranchZ(dex.OpIfNez, eq, okLabel)

	default:
		return fmt.Errorf("core: unknown detection method %v", spec.detect)
	}
	return nil
}

// stegoFragLen is how many hex digits of the dex digest the
// digest-comparison method checks ("unnecessary to compare the
// complete digest value", §4.1).
const stegoFragLen = 16

// compileResponse emits the §4.2 response.
func compileResponse(b *dex.Builder, spec payloadSpec) {
	if spec.delayMs > 0 {
		ms := b.Regs(2)
		b.ConstInt(ms, spec.delayMs)
		b.ConstInt(ms+1, int64(spec.response))
		b.CallAPI(-1, dex.APIDelayBomb, ms, ms+1)
		return
	}
	switch spec.response {
	case vm.RespCrash:
		b.CallAPI(-1, dex.APICrash)
	case vm.RespFreeze:
		ms := b.Reg()
		b.ConstInt(ms, 30_000)
		b.CallAPI(-1, dex.APISpinLoop, ms)
	case vm.RespLeak:
		kb := b.Reg()
		b.ConstInt(kb, 8192)
		b.CallAPI(-1, dex.APILeakMemory, kb)
	case vm.RespWarn:
		msg := b.Reg()
		b.ConstStr(msg, "This copy of the app has been repackaged. Install the official version.")
		b.CallAPI(-1, dex.APIWarnUser, msg)
	case vm.RespReport:
		info := b.Reg()
		b.ConstStr(info, "repackaged:"+spec.id)
		b.CallAPI(-1, dex.APIReportPiracy, info)
	}
}
