// Package core is BombDroid itself: the paper's primary contribution.
// It takes an app's bytecode plus the developer's public key and
// builds repackaging detection into the app as cryptographically
// obfuscated logic bombs (paper §3): outer triggers Hash(X|salt)==Hc
// at existing and artificial qualified conditions, encrypted payloads
// holding an environment-sensitive inner trigger (double-trigger
// bombs, §6), one of three repackaging detection methods (§4.1), a
// user-hostile response (§4.2), and — for weavable sites — the
// original guarded app code, so deleting the bomb corrupts the app
// (§3.4). Bogus bombs dress ordinary conditionals in the same
// clothing.
package core

import (
	"fmt"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// DetectionMethod selects how a payload checks for repackaging.
type DetectionMethod uint8

// Detection methods (paper §4.1).
const (
	// DetectPublicKey compares getPublicKey() against the embedded
	// original key Ko — the method the paper's prototype implements.
	DetectPublicKey DetectionMethod = iota
	// DetectDigest compares the manifest digest of classes.dex against
	// Do hidden steganographically in strings.xml.
	DetectDigest
	// DetectSnippet hashes a previously finalized method's code and
	// compares against the embedded expected digest (code snippet
	// scanning; detects code modification without any framework call).
	DetectSnippet
	// DetectIcon compares the manifest digests of the icon and author
	// entries against fragments hidden in strings.xml — the paper's
	// "checking whether the app icon and author information have been
	// changed" variant (§4.1), which catches the most common
	// repackaging edit directly.
	DetectIcon
)

// String returns the method name.
func (d DetectionMethod) String() string {
	switch d {
	case DetectPublicKey:
		return "public-key"
	case DetectDigest:
		return "digest"
	case DetectSnippet:
		return "snippet-scan"
	case DetectIcon:
		return "icon-author"
	}
	return "?"
}

// BombSource distinguishes how a bomb came to be.
type BombSource uint8

// Bomb sources.
const (
	SourceExisting   BombSource = iota // built on an existing QC
	SourceArtificial                   // built on an inserted artificial QC
	SourceBogus                        // bogus bomb: original code in bomb clothing
)

// String returns the source name.
func (s BombSource) String() string {
	switch s {
	case SourceExisting:
		return "existing"
	case SourceArtificial:
		return "artificial"
	case SourceBogus:
		return "bogus"
	}
	return "?"
}

// Options configures protection. Zero values select the paper's
// defaults.
type Options struct {
	Seed int64

	// Alpha is the fraction of candidate methods receiving an
	// artificial qualified condition (paper: α = 0.25).
	Alpha float64
	// HotFrac is the fraction of most-invoked methods excluded from
	// instrumentation (paper: top 10%).
	HotFrac float64
	// Profile holds method invocation counts from a profiling run
	// (Dynodroid + Traceview in the paper). Empty means no hot-method
	// exclusion.
	Profile map[string]int64
	// FieldValues holds observed value sets per static field from
	// profiling, used to pick high-entropy fields and in-domain
	// constants for artificial QCs (paper §7.2).
	FieldValues map[string][]dex.Value

	// PLo/PHi bound the inner trigger satisfaction probability
	// (paper: [0.1, 0.2]).
	PLo, PHi float64
	// DoubleTrigger enables inner conditions (§6). Disabling yields
	// single-trigger bombs (the ablation baseline).
	DoubleTrigger bool
	// SingleTrigger disables the inner condition when set (the
	// inverse of DoubleTrigger; kept explicit for ablations).
	SingleTrigger bool

	// Weave moves guarded app code into payloads where liftable (§3.4).
	Weave bool
	// NoWeave disables weaving (ablation).
	NoWeave bool
	// BogusFrac is the fraction of remaining weavable QCs turned into
	// bogus bombs.
	BogusFrac float64

	// Detections rotates among these methods; empty means public key
	// only (the paper's prototype).
	Detections []DetectionMethod
	// IconDigest/AuthorDigest are the manifest digests of the input
	// package's icon and author entries; BuildProtected fills them so
	// DetectIcon bombs can embed stego fragments of the originals.
	// When empty, DetectIcon falls back to public-key comparison.
	IconDigest   string
	AuthorDigest string
	// Responses rotates among these; empty means the full §4.2 set.
	Responses []vm.ResponseKind
	// DelayResponseMs schedules responses this far in the future
	// instead of firing immediately (0 = immediate).
	DelayResponseMs int64

	// ExistingFrac is the per-method probability of hosting bombs on
	// existing QCs (Table 2's existing counts sit well below Table 1's
	// QC totals — the paper's optimization phase removes costly
	// bombs). Default 0.5.
	ExistingFrac float64
	// MaxBombsPerMethod caps existing-QC bombs per method (0 = 2).
	MaxBombsPerMethod int
	// MaxBombs caps total real bombs (0 = unlimited).
	MaxBombs int

	// GlobalSalt, when set, uses one salt for every bomb instead of a
	// per-bomb salt — the ablation showing why the paper mixes "a
	// unique plaintext salt (for each bomb)" into the hash (§5.1):
	// with a shared salt, equal constants produce equal Hc values and
	// one rainbow table serves every bomb.
	GlobalSalt string

	// MuteAfterFirst implements the paper's §10 future-work idea:
	// "mute other bombs strategically once a bomb is triggered, so
	// that even more bombs can survive". Payloads share a runtime
	// flag; after the first response fires, later-triggered bombs run
	// their woven code but skip detection, denying an attacker's
	// dynamic analysis further bomb locations.
	MuteAfterFirst bool
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.25
	}
	if o.HotFrac == 0 {
		o.HotFrac = 0.10
	}
	if o.PLo == 0 && o.PHi == 0 {
		o.PLo, o.PHi = 0.1, 0.2
	}
	if !o.SingleTrigger {
		o.DoubleTrigger = true
	}
	if !o.NoWeave {
		o.Weave = true
	}
	if o.BogusFrac == 0 {
		o.BogusFrac = 0.5
	}
	if len(o.Detections) == 0 {
		o.Detections = []DetectionMethod{DetectPublicKey}
	}
	if len(o.Responses) == 0 {
		o.Responses = []vm.ResponseKind{
			vm.RespCrash, vm.RespFreeze, vm.RespLeak, vm.RespWarn, vm.RespReport,
		}
	}
	if o.ExistingFrac == 0 {
		o.ExistingFrac = 0.5
	}
	if o.MaxBombsPerMethod == 0 {
		o.MaxBombsPerMethod = 2
	}
	return o
}

// Bomb is the protector's private record of one injected bomb. None
// of the secret columns (constant, salt, inner condition) appear in
// the protected app; experiments use this record as ground truth.
type Bomb struct {
	ID       string // payload class name ("Bomb<N>")
	Method   string // host method full name
	Source   BombSource
	Strength cfg.Strength
	Const    dex.Value // the trigger constant c
	Salt     string
	BlobIdx  int64
	Inner    android.InnerCond // empty for single-trigger and bogus
	Woven    bool
	Detect   DetectionMethod
	Response vm.ResponseKind
}

// Stats summarizes a protection run.
type Stats struct {
	Methods         int
	HotExcluded     int
	Candidates      int
	ExistingQCs     int // discovered existing QCs in candidate methods
	BombsExisting   int
	BombsArtificial int
	BombsBogus      int
	Woven           int
	InstrBefore     int
	InstrAfter      int
	BlobBytes       int
}

// Bombs returns the number of real (non-bogus) bombs.
func (s Stats) Bombs() int { return s.BombsExisting + s.BombsArtificial }

// Result is a completed protection.
type Result struct {
	File  *dex.File
	Bombs []Bomb
	Stats Stats
	// StegoStrings must be appended to the app's resource strings (in
	// order, at index StegoBase) before signing; digest-comparison
	// payloads extract their hidden fragments from them.
	StegoStrings []string
	StegoBase    int
}

// RealBombs returns the non-bogus bombs.
func (r *Result) RealBombs() []Bomb {
	var out []Bomb
	for _, b := range r.Bombs {
		if b.Source != SourceBogus {
			out = append(out, b)
		}
	}
	return out
}

// BombByBlob maps a blob index back to its bomb.
func (r *Result) BombByBlob(idx int64) *Bomb {
	for i := range r.Bombs {
		if r.Bombs[i].BlobIdx == idx {
			return &r.Bombs[i]
		}
	}
	return nil
}

// pick returns a deterministic element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// saltFor derives a fresh per-bomb salt.
func saltFor(rng *rand.Rand, n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 12)
	for i := range b {
		b[i] = digits[rng.Intn(16)]
	}
	return fmt.Sprintf("s%d-%s", n, b)
}
