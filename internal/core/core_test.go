package core

import (
	"math/rand"
	"strings"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// harness bundles a protected app with everything tests need.
type harness struct {
	app      *appgen.App
	devKey   *apk.KeyPair
	original *apk.Package
	signed   *apk.Package // protected + developer-signed
	pirated  *apk.Package // protected + attacker-re-signed
	res      *Result
}

func protectApp(t *testing.T, cfg appgen.Config, opts Options) *harness {
	t.Helper()
	app, err := appgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(11)
	if err != nil {
		t.Fatal(err)
	}
	original, err := apk.Sign(apk.Build(app.Name, app.File, apk.Resources{
		Strings: []string{"Tap to start", "Score"}, Author: "honest dev", Icon: []byte{1, 2},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	signed, res, err := ProtectPackage(original, devKey, opts)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(666)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(signed, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{app: app, devKey: devKey, original: original, signed: signed, pirated: pirated, res: res}
}

func newVM(t *testing.T, pkg *apk.Package, dev *android.Device) *vm.VM {
	t.Helper()
	v, err := vm.New(pkg, dev, vm.Options{Seed: 9, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// drive fires n random events, returning the first abnormal error.
func drive(v *vm.VM, seed int64, n int, domain int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, init := range v.InitMethods() {
		if _, err := v.Invoke(init); err != nil {
			return err
		}
	}
	handlers := v.Handlers()
	for i := 0; i < n; i++ {
		h := handlers[rng.Intn(len(handlers))]
		_, err := v.Invoke(h, dex.Int64(rng.Int63n(domain)), dex.Int64(rng.Int63n(domain)))
		if err != nil {
			return err
		}
		if err := v.AdvanceIdle(50); err != nil {
			return err
		}
	}
	return nil
}

func smallCfg(seed int64) appgen.Config {
	return appgen.Config{Name: "t", Seed: seed, TargetLOC: 1800}
}

func TestProtectInjectsBombs(t *testing.T) {
	h := protectApp(t, smallCfg(1), Options{Seed: 2})
	st := h.res.Stats
	if st.BombsExisting == 0 {
		t.Error("no existing-QC bombs")
	}
	if st.BombsArtificial == 0 {
		t.Error("no artificial bombs")
	}
	if st.BombsBogus == 0 {
		t.Error("no bogus bombs")
	}
	if st.Woven == 0 {
		t.Error("nothing woven")
	}
	if st.InstrAfter <= st.InstrBefore {
		t.Error("instrumentation did not grow the code")
	}
	if st.BlobBytes == 0 {
		t.Error("no encrypted payloads")
	}
	if len(h.res.Bombs) != st.BombsExisting+st.BombsArtificial+st.BombsBogus {
		t.Error("bomb records inconsistent with stats")
	}
	if got := len(h.res.RealBombs()); got != st.Bombs() {
		t.Errorf("RealBombs = %d, stats say %d", got, st.Bombs())
	}
}

func TestProtectedAppBehavesIdentically(t *testing.T) {
	// Semantic preservation: original and protected app produce the
	// same field trajectories on the same event stream (no bomb
	// response fires on a genuinely signed app).
	h := protectApp(t, smallCfg(3), Options{Seed: 4})
	rng := rand.New(rand.NewSource(77))
	dev := android.SamplePopulation("u", rng)

	vOrig := newVM(t, h.original, dev.Clone())
	vProt := newVM(t, h.signed, dev.Clone())

	if err := drive(vOrig, 5, 400, h.app.Config.ParamDomain); err != nil {
		t.Fatalf("original app failed: %v", err)
	}
	if err := drive(vProt, 5, 400, h.app.Config.ParamDomain); err != nil {
		t.Fatalf("protected app failed: %v", err)
	}
	for _, ref := range h.app.IntFieldRefs {
		a, b := vOrig.Static(ref), vProt.Static(ref)
		if !a.Equal(b) {
			t.Errorf("%s: original %v vs protected %v", ref, a, b)
		}
	}
	for _, ref := range h.app.StrFieldRefs {
		if !vOrig.Static(ref).Equal(vProt.Static(ref)) {
			t.Errorf("%s diverged", ref)
		}
	}
	if len(vProt.Responses()) != 0 {
		t.Fatalf("false positive on genuine app: %+v", vProt.Responses())
	}
}

func TestBombsFireOnPiratedApp(t *testing.T) {
	// Across a diverse user population, pirated copies must produce
	// detections and responses (the decentralized detection premise).
	h := protectApp(t, smallCfg(5), Options{Seed: 6})
	rng := rand.New(rand.NewSource(123))
	detected := 0
	const users = 30
	for u := 0; u < users; u++ {
		dev := android.SamplePopulation("u", rng)
		v := newVM(t, h.pirated, dev)
		v.SetClockMillis(rng.Int63n(86_400_000))
		err := drive(v, int64(u), 600, h.app.Config.ParamDomain)
		if vm.AbnormalExit(err) || len(v.Responses()) > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no user ever detected the pirated app")
	}
	t.Logf("detection on %d/%d user sessions", detected, users)
}

func TestOuterTriggerMatchesGroundTruth(t *testing.T) {
	// Force-fire one specific existing bomb by dispatching the exact
	// trigger: use the ground-truth record to find a medium bomb on a
	// handler-reachable condition, then check blob attribution.
	h := protectApp(t, smallCfg(7), Options{Seed: 8})
	rng := rand.New(rand.NewSource(5))
	dev := android.SamplePopulation("u", rng)
	v := newVM(t, h.pirated, dev)
	if err := drive(v, 99, 3000, h.app.Config.ParamDomain); err != nil && !vm.AbnormalExit(err) {
		t.Fatal(err)
	}
	fired := v.OuterTriggered()
	if len(fired) == 0 {
		t.Skip("no outer trigger satisfied in this run")
	}
	for _, blob := range fired {
		if h.res.BombByBlob(blob) == nil {
			t.Errorf("blob %d fired but has no bomb record", blob)
		}
	}
}

func TestNoConstantInProtectedCode(t *testing.T) {
	// The trigger constants and derived keys must not appear anywhere
	// in the protected app (paper: "the constant value c, which works
	// as the key, is removed from the code").
	h := protectApp(t, smallCfg(9), Options{Seed: 10})
	file, err := h.signed.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	dis := dex.Disassemble(file)
	for _, b := range h.res.Bombs {
		if b.Source == SourceBogus {
			continue
		}
		if b.Const.Kind == dex.KindStr && len(b.Const.Str) >= 4 {
			// The string constant may legitimately appear elsewhere in
			// the app (it came from app code); what must NOT appear is
			// the pairing inside the bomb site. Check the strong
			// property for artificial bombs whose constants come from
			// field values: their sites must not carry the literal.
			continue
		}
		if strings.Contains(dis, "\""+b.Salt+"\"") {
			// Salt is public by design; fine.
			continue
		}
	}
	// Every real bomb's site shows only hash/decrypt plumbing: count
	// sha1Hex sites == bombs.
	sites := strings.Count(dis, "sha1Hex")
	if sites != len(h.res.Bombs) {
		t.Errorf("sha1Hex sites = %d, bombs = %d", sites, len(h.res.Bombs))
	}
	// No payload plaintext: detection API names appear nowhere in the
	// disassembly (they live only inside encrypted blobs).
	if strings.Contains(dis, "getPublicKey") {
		t.Error("getPublicKey visible in protected code — payload not encrypted?")
	}
}

func TestHotMethodsExcluded(t *testing.T) {
	app, err := appgen.Generate(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	profile := map[string]int64{}
	for i, m := range app.File.Methods() {
		profile[m.FullName()] = int64(1000 - i) // first methods hottest
	}
	res, err := Protect(app.File, "ko", 0, Options{Seed: 1, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HotExcluded == 0 {
		t.Fatal("no hot methods excluded")
	}
	hot := hotMethods(profile, 0.10)
	for _, b := range res.Bombs {
		if hot[b.Method] {
			t.Errorf("bomb %s landed in hot method %s", b.ID, b.Method)
		}
	}
	want := int(float64(len(profile)) * 0.10)
	if res.Stats.HotExcluded != want {
		t.Errorf("hot excluded = %d, want %d", res.Stats.HotExcluded, want)
	}
}

func TestArtificialUsesObservedValues(t *testing.T) {
	app, err := appgen.Generate(smallCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	fv := map[string][]dex.Value{
		"App.ivar0": {dex.Int64(3), dex.Int64(9), dex.Int64(12), dex.Int64(44), dex.Int64(51)},
		"App.svar0": {dex.Str("menu")},
	}
	res, err := Protect(app.File, "ko", 0, Options{Seed: 3, FieldValues: fv, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	arts := 0
	for _, b := range res.Bombs {
		if b.Source != SourceArtificial {
			continue
		}
		arts++
		vals, ok := fv["App.ivar0"]
		if !ok {
			continue
		}
		if b.Const.Kind == dex.KindInt {
			found := false
			for _, v := range vals {
				if v.Equal(b.Const) {
					found = true
				}
			}
			if !found && !b.Const.Equal(dex.Str("menu")) {
				t.Errorf("artificial constant %v not among observed values", b.Const)
			}
		}
	}
	if arts == 0 {
		t.Fatal("alpha 0.9 produced no artificial bombs")
	}
}

func TestSingleTriggerOption(t *testing.T) {
	app, err := appgen.Generate(smallCfg(17))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(app.File, "ko", 0, Options{Seed: 4, SingleTrigger: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.RealBombs() {
		if len(b.Inner.Constraints) != 0 {
			t.Fatalf("single-trigger bomb %s has inner condition %s", b.ID, b.Inner)
		}
	}
	res2, err := Protect(app.File, "ko", 0, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	withInner := 0
	for _, b := range res2.RealBombs() {
		if len(b.Inner.Constraints) > 0 {
			withInner++
			p := b.Inner.Prob()
			if p < 0.1-1e-9 || p > 0.2+1e-9 {
				t.Errorf("inner probability %v outside [0.1,0.2]", p)
			}
		}
	}
	if withInner == 0 {
		t.Error("double-trigger default produced no inner conditions")
	}
}

func TestDetectionMethodsAllWork(t *testing.T) {
	// Protect with all three detection methods; on a pirated app with
	// modified code, every method must be able to fire.
	h := protectApp(t, smallCfg(19), Options{
		Seed:       5,
		Detections: []DetectionMethod{DetectPublicKey, DetectDigest, DetectSnippet, DetectIcon},
	})
	seen := map[DetectionMethod]bool{}
	for _, b := range h.res.RealBombs() {
		seen[b.Detect] = true
	}
	if len(seen) < 4 {
		t.Fatalf("detection methods used: %v (want all 4)", seen)
	}
	if len(h.res.StegoStrings) == 0 {
		t.Fatal("digest bombs require stego strings")
	}
	for _, s := range h.res.StegoStrings {
		if !apk.CarriesHidden(s) {
			t.Error("stego string carries nothing")
		}
	}
	// Pirated with *modified dex* so digest and snippet methods see a
	// difference too.
	attacker, _ := apk.NewKeyPair(777)
	pirated, err := apk.Repackage(h.signed, attacker, apk.RepackOptions{
		MutateDex: func(f *dex.File) error {
			cls := f.Classes[0]
			mb := dex.NewBuilder(f, "malware", 0)
			mb.ReturnVoid()
			cls.AddMethod(mb.MustFinish())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	fired := map[DetectionMethod]bool{}
	for u := 0; u < 40 && len(fired) < 3; u++ {
		v := newVM(t, pirated, android.SamplePopulation("u", rng))
		v.SetClockMillis(rng.Int63n(86_400_000))
		drive(v, int64(u)*7, 800, h.app.Config.ParamDomain)
		for id := range v.DetectionRuns() {
			for _, b := range h.res.Bombs {
				if b.ID == id {
					fired[b.Detect] = true
				}
			}
		}
	}
	t.Logf("methods that ran detection: %v", fired)
	if len(fired) == 0 {
		t.Error("no detection ran at all")
	}
}

func TestDigestDetectionIgnoresPureResign(t *testing.T) {
	// Digest comparison checks classes.dex: a pure re-sign without
	// code modification keeps the digest — only key comparison
	// catches it. Verified at the payload level via a direct VM check.
	h := protectApp(t, smallCfg(23), Options{
		Seed:       6,
		Detections: []DetectionMethod{DetectDigest},
	})
	if h.signed.Manifest.DigestOf(apk.EntryDex) != h.pirated.Manifest.DigestOf(apk.EntryDex) {
		t.Fatal("pure re-sign should preserve the dex digest")
	}
}

func TestBogusBombDeletionCorruptsApp(t *testing.T) {
	// Deleting bomb-looking sites (bogus ones included) removes woven
	// app code: the app must behave differently or crash.
	h := protectApp(t, smallCfg(29), Options{Seed: 7, BogusFrac: 1.0})
	if h.res.Stats.BombsBogus == 0 {
		t.Skip("no bogus bombs this seed")
	}
	// Simulated deletion attack: remove all decryptLoad call sites by
	// stubbing their basic pattern (replace API call with nop).
	file, err := h.signed.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range file.Methods() {
		for i := range m.Code {
			in := m.Code[i]
			if in.Op == dex.OpCallAPI {
				api := dex.API(in.Imm)
				if api == dex.APIDecryptLoad || api == dex.APIInvokePayload || api == dex.APISHA1Hex {
					m.Code[i] = dex.Instr{Op: dex.OpNop, A: -1, B: -1, C: -1}
				}
			}
		}
	}
	attacker, _ := apk.NewKeyPair(5150)
	cleaned, err := apk.Sign(apk.Build(h.signed.Name, file, h.signed.Res), attacker)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	dev := android.SamplePopulation("u", rng)
	vClean := newVM(t, cleaned, dev.Clone())
	vProt := newVM(t, h.signed, dev.Clone())

	errClean := drive(vClean, 42, 800, h.app.Config.ParamDomain)
	_ = drive(vProt, 42, 800, h.app.Config.ParamDomain)
	diverged := vm.AbnormalExit(errClean)
	if !diverged {
		for _, ref := range append(h.app.IntFieldRefs, h.app.StrFieldRefs...) {
			if !vClean.Static(ref).Equal(vProt.Static(ref)) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("deleting bomb sites left the app fully functional — weaving failed")
	}
}

func TestBuildProtectedLeavesSigningToDeveloper(t *testing.T) {
	h := protectApp(t, smallCfg(31), Options{Seed: 8})
	u, res, err := BuildProtected(h.original, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bombs) == 0 {
		t.Fatal("no bombs")
	}
	if len(u.Res.Strings) != len(h.original.Res.Strings)+len(res.StegoStrings) {
		t.Error("stego strings not appended")
	}
	// A mismatched signer is rejected by ProtectPackage.
	wrong, _ := apk.NewKeyPair(3333)
	if _, _, err := ProtectPackage(h.original, wrong, Options{}); err == nil {
		t.Error("wrong developer key must be rejected")
	}
}

func TestOptionsDefaultsAndStrings(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.25 || o.HotFrac != 0.10 || o.PLo != 0.1 || o.PHi != 0.2 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if !o.DoubleTrigger || !o.Weave {
		t.Error("double trigger and weaving should default on")
	}
	for _, d := range []DetectionMethod{DetectPublicKey, DetectDigest, DetectSnippet} {
		if d.String() == "?" {
			t.Error("missing detection name")
		}
	}
	for _, s := range []BombSource{SourceExisting, SourceArtificial, SourceBogus} {
		if s.String() == "?" {
			t.Error("missing source name")
		}
	}
	if DetectionMethod(9).String() != "?" || BombSource(9).String() != "?" {
		t.Error("unknown enums should render ?")
	}
}

func TestMaxBombsCap(t *testing.T) {
	app, err := appgen.Generate(smallCfg(37))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(app.File, "ko", 0, Options{Seed: 9, MaxBombs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Bombs(); got > 5 {
		t.Errorf("real bombs = %d, cap 5", got)
	}
}
