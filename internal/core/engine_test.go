package core

import (
	"bytes"
	"context"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/artifact"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/obs"
)

// signedApp builds and signs a generated app for engine tests.
func signedApp(t *testing.T, cfg appgen.Config) (*apk.Package, *apk.KeyPair, *appgen.App) {
	t.Helper()
	app, err := appgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(11)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build(app.Name, app.File, apk.Resources{
		Strings: []string{"Tap to start", "Score"}, Author: "honest dev", Icon: []byte{1, 2},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, devKey, app
}

// TestEngineColdMatchesBuildProtected pins the refactor's core
// promise: a cold engine run produces byte-identical output to the
// pre-engine pipeline (manual profile + BuildProtected) over the same
// inputs.
func TestEngineColdMatchesBuildProtected(t *testing.T) {
	pkg, _, _ := signedApp(t, appgen.Config{Name: "eng", Seed: 5, TargetLOC: 1800})
	prof := ProfileConfig{Events: 800, Domain: 32, Seed: 7}
	opts := Options{Seed: 3}

	e := &Engine{Opts: opts, Prof: prof}
	got, err := e.Run(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}

	// The legacy path, by hand: profile with the same configuration,
	// then BuildProtected.
	file, err := pkg.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	var watch []string
	for _, c := range file.Classes {
		for _, f := range c.Fields {
			watch = append(watch, c.Name+"."+f.Name)
		}
	}
	profVM, err := newProfileVM(pkg, prof.Seed)
	if err != nil {
		t.Fatal(err)
	}
	legacyOpts := opts
	legacyOpts.Profile, legacyOpts.FieldValues = fuzz.Profile(profVM, prof.Domain, prof.Events, watch, prof.Seed)
	want, wantRes, err := BuildProtected(pkg, legacyOpts)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Unsigned.Dex, want.Dex) {
		t.Error("engine dex differs from the legacy pipeline's")
	}
	if len(got.Unsigned.Res.Strings) != len(want.Res.Strings) {
		t.Fatalf("resource strings: %d vs %d", len(got.Unsigned.Res.Strings), len(want.Res.Strings))
	}
	for i := range want.Res.Strings {
		if got.Unsigned.Res.Strings[i] != want.Res.Strings[i] {
			t.Fatalf("resource string %d differs", i)
		}
	}
	if got.Result.Stats != wantRes.Stats {
		t.Errorf("stats differ:\n got %+v\nwant %+v", got.Result.Stats, wantRes.Stats)
	}
	// An uncached engine reports every stage as run, none cached.
	if got.Info.CacheHits != 0 {
		t.Errorf("cache hits on a cacheless engine: %d", got.Info.CacheHits)
	}
	wantStages := []StageName{StageUnpack, StageProfile, StageAnalyze,
		StageConstruct, StageStego, StageValidate, StageRepack}
	if len(got.Info.Stages) != len(wantStages) {
		t.Fatalf("stage timings: %+v", got.Info.Stages)
	}
	for i, st := range wantStages {
		if got.Info.Stages[i].Stage != st {
			t.Errorf("stage %d = %s, want %s", i, got.Info.Stages[i].Stage, st)
		}
	}
}

// TestEngineWarmCacheByteIdentical is the cache-correctness
// acceptance test: the same app with the same options must report a
// cache hit and return byte-identical protected output.
func TestEngineWarmCacheByteIdentical(t *testing.T) {
	pkg, _, _ := signedApp(t, appgen.Config{Name: "eng", Seed: 5, TargetLOC: 1800})
	reg := obs.NewRegistry()
	e := &Engine{
		Prof:  ProfileConfig{Events: 600, Domain: 32, Seed: 7},
		Opts:  Options{Seed: 3},
		Cache: artifact.NewStore(64 << 20),
		Obs:   reg,
	}
	cold, err := e.Run(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Run(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Unsigned.Dex, warm.Unsigned.Dex) {
		t.Error("warm-cache dex differs from cold")
	}
	p1, _ := apk.Pack(mustSign(t, cold.Unsigned))
	p2, _ := apk.Pack(mustSign(t, warm.Unsigned))
	if !bytes.Equal(p1, p2) {
		t.Error("warm-cache packed output differs from cold")
	}
	if warm.Info.CacheHits == 0 {
		t.Error("warm run reported no cache hit")
	}
	if len(warm.Info.Stages) != 1 || warm.Info.Stages[0].Cache != "hit" {
		t.Errorf("warm run should be one result-cache hit, got %+v", warm.Info.Stages)
	}
	// The warm result is a clone: mutating it must not poison the
	// cache for a third caller.
	warm.Unsigned.Dex[0] ^= 0xFF
	warm.Result.File.Classes = nil
	again, err := e.Run(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Unsigned.Dex, again.Unsigned.Dex) {
		t.Error("caller mutation reached the cache")
	}
	if st := e.Cache.Stats(); st.Hits == 0 {
		t.Errorf("store stats recorded no hits: %+v", st)
	}
}

func mustSign(t *testing.T, u *apk.Unsigned) *apk.Package {
	t.Helper()
	key, err := apk.NewKeyPair(11)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := apk.Sign(u, key)
	if err != nil {
		t.Fatal(err)
	}
	return signed
}

// TestEngineLateOptionChangeSkipsEarlyStages: changing only a
// late-stage option (the response set) invalidates the result
// artifact but reuses the profile and analyze artifacts.
func TestEngineLateOptionChangeSkipsEarlyStages(t *testing.T) {
	pkg, _, _ := signedApp(t, appgen.Config{Name: "eng", Seed: 5, TargetLOC: 1800})
	store := artifact.NewStore(64 << 20)
	prof := ProfileConfig{Events: 600, Domain: 32, Seed: 7}
	e1 := &Engine{Prof: prof, Opts: Options{Seed: 3}, Cache: store}
	if _, err := e1.Run(context.Background(), pkg); err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{Prof: prof, Opts: Options{Seed: 3, DelayResponseMs: 9_000}, Cache: store}
	p, err := e2.Run(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Info.ResultKey == resultKeyOf(t, e1, pkg) {
		t.Fatal("changed option did not change the result key")
	}
	byStage := map[StageName]string{}
	for _, st := range p.Info.Stages {
		byStage[st.Stage] = st.Cache
	}
	if byStage[StageProfile] != "hit" {
		t.Errorf("profile stage = %q, want cache hit", byStage[StageProfile])
	}
	if byStage[StageAnalyze] != "hit" {
		t.Errorf("analyze stage = %q, want cache hit", byStage[StageAnalyze])
	}
	if byStage["result"] == "hit" {
		t.Error("result artifact hit despite changed options")
	}
}

func resultKeyOf(t *testing.T, e *Engine, pkg *apk.Package) artifact.Key {
	t.Helper()
	in := InputKey(pkg)
	return resultKey(in, profileKey(in, e.Prof.withDefaults()), e.Opts.withDefaults())
}

// TestInputKeyDiffersByOneMethod: two apps identical except for one
// method body must content-address differently; identical packages
// must key identically.
func TestInputKeyDiffersByOneMethod(t *testing.T) {
	pkg, devKey, app := signedApp(t, appgen.Config{Name: "eng", Seed: 5, TargetLOC: 1800})
	if InputKey(pkg) != InputKey(pkg) {
		t.Fatal("InputKey not deterministic")
	}

	twin := app.File.Clone()
	var tweaked bool
	for _, c := range twin.Classes {
		for _, m := range c.Methods {
			if len(m.Code) > 0 {
				m.Code[0].Imm++
				tweaked = true
				break
			}
		}
		if tweaked {
			break
		}
	}
	if !tweaked {
		t.Fatal("no method with code to tweak")
	}
	pkg2, err := apk.Sign(apk.Build(app.Name, twin, pkg.Res), devKey)
	if err != nil {
		t.Fatal(err)
	}
	if InputKey(pkg) == InputKey(pkg2) {
		t.Error("packages differing in one method share an artifact key")
	}
}

// TestEngineCancellation: a cancelled context aborts the run with the
// context's error instead of completing it.
func TestEngineCancellation(t *testing.T) {
	pkg, _, _ := signedApp(t, appgen.Config{Name: "eng", Seed: 5, TargetLOC: 1800})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &Engine{Prof: ProfileConfig{Events: 600, Domain: 32, Seed: 7}}
	if _, err := e.Run(ctx, pkg); err == nil {
		t.Fatal("cancelled engine run succeeded")
	}
	// ProtectCtx honors cancellation too.
	file, err := pkg.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProtectCtx(ctx, file, pkg.PublicKeyHex(), 0, Options{Seed: 1}); err == nil {
		t.Fatal("cancelled ProtectCtx succeeded")
	}
}

// TestStegoCoverWrapRoundTrips: with more reserved fragments than
// cover strings the cover list wraps (i % len(covers)); every stego
// string must still round-trip to the final classes.dex digest
// fragment.
func TestStegoCoverWrapRoundTrips(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{Name: "st", Seed: 23, TargetLOC: 2600, QCPerMethod: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(app.File, "ko", 0, Options{
		Seed:       4,
		Detections: []DetectionMethod{DetectDigest},
		Alpha:      0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StegoStrings) <= 5 {
		t.Fatalf("need more stego strings than covers to exercise wrapping, got %d", len(res.StegoStrings))
	}
	want := apk.DigestHex(dex.Encode(res.File))[:stegoFragLen]
	for i, s := range res.StegoStrings {
		if !apk.CarriesHidden(s) {
			t.Fatalf("stego string %d carries no payload", i)
		}
		if got := apk.ExtractFromString(s); got != want {
			t.Errorf("stego string %d extracts %q, want %q", i, got, want)
		}
	}
}
