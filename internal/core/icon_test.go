package core

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// TestIconDetectionFiresOnIconSwap covers the §4.1 icon/author
// variant: a repackager who replaces the icon trips DetectIcon bombs
// even though the code is byte-identical.
func TestIconDetectionFiresOnIconSwap(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{
		Name: "icon", Seed: 501, TargetLOC: 1800, QCPerMethod: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(81)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("icon", app.File, apk.Resources{
		Strings: []string{"hello"}, Author: "dev", Icon: []byte{1, 2, 3, 4},
	}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, res, err := ProtectPackage(orig, key, Options{
		Seed:       11,
		Detections: []DetectionMethod{DetectIcon},
		Responses:  []vm.ResponseKind{vm.RespWarn},
	})
	if err != nil {
		t.Fatal(err)
	}
	iconBombs := 0
	for _, b := range res.RealBombs() {
		if b.Detect == DetectIcon {
			iconBombs++
		}
	}
	if iconBombs == 0 {
		t.Fatal("no icon bombs injected")
	}
	if len(res.StegoStrings) == 0 {
		t.Fatal("icon bombs require stego strings")
	}

	attacker, err := apk.NewKeyPair(82)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{
		NewIcon: []byte{9, 9, 9}, NewAuthor: "pirate",
	})
	if err != nil {
		t.Fatal(err)
	}

	drive := func(pkg *apk.Package) *vm.VM {
		rng := rand.New(rand.NewSource(6))
		v, err := vm.New(pkg, android.SamplePopulation("u", rng), vm.Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, init := range v.InitMethods() {
			v.Invoke(init)
		}
		for i := 0; i < 2500; i++ {
			h := app.Handlers[rng.Intn(len(app.Handlers))]
			v.Invoke(h, dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64)))
			v.AdvanceIdle(60)
		}
		return v
	}

	vPirated := drive(pirated)
	if len(vPirated.Responses()) == 0 {
		t.Error("icon swap should trip icon-digest bombs")
	}
	vGenuine := drive(prot)
	if len(vGenuine.Responses()) != 0 {
		t.Errorf("genuine app fired %d icon responses", len(vGenuine.Responses()))
	}
}

// Pure re-sign without icon/author edits must NOT trip DetectIcon
// (it compares resources, not signatures).
func TestIconDetectionIgnoresPureResign(t *testing.T) {
	app, err := appgen.Generate(appgen.Config{
		Name: "icon2", Seed: 502, TargetLOC: 1500, QCPerMethod: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(83)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("icon2", app.File, apk.Resources{
		Strings: []string{"hi"}, Author: "dev", Icon: []byte{5, 6},
	}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := ProtectPackage(orig, key, Options{
		Seed:       12,
		Detections: []DetectionMethod{DetectIcon},
		Responses:  []vm.ResponseKind{vm.RespWarn},
	})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(84)
	if err != nil {
		t.Fatal(err)
	}
	resigned, err := apk.Repackage(prot, attacker, apk.RepackOptions{}) // no edits
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	v, err := vm.New(resigned, android.SamplePopulation("u", rng), vm.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		h := app.Handlers[rng.Intn(len(app.Handlers))]
		v.Invoke(h, dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64)))
		v.AdvanceIdle(60)
	}
	if len(v.Responses()) != 0 {
		t.Errorf("pure re-sign tripped %d icon responses; icon digests did not change", len(v.Responses()))
	}
}
