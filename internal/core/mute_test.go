package core

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

// muteCfg builds a bomb-dense app so several bombs trigger in a run.
func muteCfg(seed int64) appgen.Config {
	return appgen.Config{Name: "mute", Seed: seed, TargetLOC: 2200, QCPerMethod: 1.5}
}

// runPirated drives a pirated build and returns (bombs whose detection
// ran, responses fired).
func runPirated(t *testing.T, opts Options, seed int64) (int, int) {
	t.Helper()
	app, err := appgen.Generate(muteCfg(401))
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(71)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("mute", app.File, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := ProtectPackage(orig, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(72)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	v, err := vm.New(pirated, android.SamplePopulation("u", rng), vm.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, init := range v.InitMethods() {
		v.Invoke(init)
	}
	for i := 0; i < 2500; i++ {
		h := app.Handlers[rng.Intn(len(app.Handlers))]
		v.Invoke(h, dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64)))
		v.AdvanceIdle(60)
	}
	return len(v.DetectionRuns()), len(v.Responses())
}

// The §10 extension: once a bomb responds, the rest go quiet, so the
// muted build exposes fewer bombs to dynamic analysis than the default
// while still responding at least once.
func TestMuteAfterFirstSuppressesLaterBombs(t *testing.T) {
	// Responses must not crash for the run to continue — use warn.
	respOpts := []vm.ResponseKind{vm.RespWarn}

	baseRuns, baseResp := runPirated(t, Options{
		Seed: 9, SingleTrigger: true, Responses: respOpts,
	}, 31)
	mutedRuns, mutedResp := runPirated(t, Options{
		Seed: 9, SingleTrigger: true, Responses: respOpts, MuteAfterFirst: true,
	}, 31)

	t.Logf("default: %d bombs ran detection, %d responses; muted: %d, %d",
		baseRuns, baseResp, mutedRuns, mutedResp)
	if baseResp < 2 {
		t.Skip("baseline run fired fewer than 2 responses; seed too quiet for the comparison")
	}
	if mutedResp == 0 {
		t.Fatal("muted build must still respond once")
	}
	if mutedRuns >= baseRuns {
		t.Errorf("muting should reduce exposed bombs: muted %d vs default %d", mutedRuns, baseRuns)
	}
	if mutedResp > baseResp {
		t.Errorf("muting should not increase responses: %d vs %d", mutedResp, baseResp)
	}
}

func TestMuteStillWeaves(t *testing.T) {
	// Muted payloads must keep executing their woven app code, or the
	// app breaks after first detection.
	app, err := appgen.Generate(muteCfg(402))
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(73)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("mute", app.File, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, res, err := ProtectPackage(orig, key, Options{Seed: 10, MuteAfterFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Woven == 0 {
		t.Skip("no woven bombs this seed")
	}
	// Genuine app: trajectories must match the original exactly.
	rng := rand.New(rand.NewSource(3))
	dev := android.SamplePopulation("u", rng)
	vO, err := vm.New(orig, dev.Clone(), vm.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	vP, err := vm.New(prot, dev.Clone(), vm.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		h := app.Handlers[rng.Intn(len(app.Handlers))]
		a, b := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
		if _, err := vO.Invoke(h, a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := vP.Invoke(h, a, b); err != nil {
			t.Fatal(err)
		}
	}
	for _, ref := range app.IntFieldRefs {
		if !vO.Static(ref).Equal(vP.Static(ref)) {
			t.Fatalf("%s diverged under muting", ref)
		}
	}
	if n := len(vP.Responses()); n != 0 {
		t.Fatalf("genuine app fired %d responses", n)
	}
}
