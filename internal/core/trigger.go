package core

import (
	"bombdroid/internal/dex"
	"bombdroid/internal/lockbox"
)

// siteRegs is the scratch register block one bomb site needs. All
// sites within a method share the same block (their lifetimes never
// overlap), so each instrumented method grows by exactly this many
// registers.
const siteRegs = 18

// relSeq assembles a position-independent instruction sequence whose
// branch targets are relative (the form instrument.Splice consumes).
// branchEnd emits a branch that will resolve to "first instruction
// after the sequence".
type relSeq struct {
	ins    []dex.Instr
	endFix []int
}

func (s *relSeq) emit(in dex.Instr) { s.ins = append(s.ins, in) }

func (s *relSeq) constInt(dst int32, v int64) {
	s.emit(dex.Instr{Op: dex.OpConstInt, A: dst, B: -1, C: -1, Imm: v})
}

func (s *relSeq) constStr(f *dex.File, dst int32, str string) {
	s.emit(dex.Instr{Op: dex.OpConstStr, A: dst, B: -1, C: -1, Imm: f.Intern(str)})
}

func (s *relSeq) move(dst, src int32) {
	s.emit(dex.Instr{Op: dex.OpMove, A: dst, B: src, C: -1})
}

func (s *relSeq) callAPI(dst int32, api dex.API, base, argc int32) {
	s.emit(dex.Instr{Op: dex.OpCallAPI, A: dst, B: base, C: argc, Imm: int64(api)})
}

func (s *relSeq) branchEnd(op dex.Op, a, b int32) {
	s.endFix = append(s.endFix, len(s.ins))
	s.emit(dex.Instr{Op: op, A: a, B: b, C: -1})
}

func (s *relSeq) finish() []dex.Instr {
	for _, pc := range s.endFix {
		s.ins[pc].C = int32(len(s.ins))
	}
	return s.ins
}

// triggerSpec describes one outer trigger to materialize.
type triggerSpec struct {
	xReg    int32     // register holding ϕ (or the full string for prefix ops)
	c       dex.Value // the trigger constant
	salt    string
	blobIdx int64
	strOp   dex.API // equals/startsWith/endsWith for string ϕ; 0 otherwise
	// fieldRef, when nonempty, loads ϕ from a static field instead of
	// xReg (artificial QCs).
	fieldRef string
}

// outerTriggerSeq builds the transformed condition and bomb launch:
//
//	if (sha1(ϕ|salt) == Hc) { h = decryptLoad(blob, ϕ, salt); h.run(ϕ) }
//
// in relative form, using scratch registers [base, base+siteRegs).
// The constant c never appears; only Hc and the salt do.
func outerTriggerSeq(f *dex.File, t triggerSpec, base int32) []dex.Instr {
	s := &relSeq{}
	hc := lockbox.HashHex(t.c, t.salt)

	// b7 will hold ϕ's value, b8 the salt (adjacent for the hash call).
	bX := base + 7
	bSalt := base + 8

	switch {
	case t.fieldRef != "":
		s.emit(dex.Instr{Op: dex.OpGetStatic, A: bX, B: -1, C: -1, Imm: f.Intern(t.fieldRef)})
	case t.strOp == dex.APIStrStartsWith || t.strOp == dex.APIStrEndsWith:
		// ϕ is a prefix/suffix of the string in xReg; extract it, with
		// a length guard so short strings bypass the bomb (semantics
		// of startsWith/endsWith are preserved: they are false then).
		litLen := int64(len(t.c.Str))
		b1 := base + 1 // S
		b2 := base + 2 // len(S)
		b3 := base + 3 // len(lit)
		s.move(b1, t.xReg)
		s.callAPI(b2, dex.APIStrLen, b1, 1)
		s.constInt(b3, litLen)
		s.branchEnd(dex.OpIfLt, b2, b3)
		// Substr(S, lo, hi) with args in a contiguous window b4..b6.
		b4, b5, b6 := base+4, base+5, base+6
		s.move(b4, b1)
		if t.strOp == dex.APIStrStartsWith {
			s.constInt(b5, 0)
			s.move(b6, b3)
		} else {
			s.emit(dex.Instr{Op: dex.OpSub, A: b5, B: b2, C: b3})
			s.move(b6, b2)
		}
		s.callAPI(bX, dex.APIStrSubstr, b4, 3)
	default:
		s.move(bX, t.xReg)
	}

	s.constStr(f, bSalt, t.salt)
	b9 := base + 9 // hash
	s.callAPI(b9, dex.APISHA1Hex, bX, 2)
	b10 := base + 10 // Hc
	s.constStr(f, b10, hc)
	b11 := base + 11
	s.callAPI(b11, dex.APIStrEquals, b9, 2)
	s.branchEnd(dex.OpIfEqz, b11, -1)

	// decryptLoad(blob, ϕ, salt) with window b12..b14.
	b12, b13, b14 := base+12, base+13, base+14
	s.constInt(b12, t.blobIdx)
	s.move(b13, bX)
	s.move(b14, bSalt)
	b15 := base + 15
	s.callAPI(b15, dex.APIDecryptLoad, b12, 3)
	// invokePayload(handle, ϕ) with window b15..b16.
	b16 := base + 16
	s.move(b16, bX)
	s.callAPI(-1, dex.APIInvokePayload, b15, 2)
	return s.finish()
}
