package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/artifact"
	"bombdroid/internal/dex"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/obs"
	"bombdroid/internal/vm"
)

// newProfileVM boots the original app on a stock lab emulator in
// profiling mode — the same device exp.Prepare and cmd/bombdroid use.
func newProfileVM(in *apk.Package, seed int64) (*vm.VM, error) {
	return vm.New(in, android.EmulatorLab(1)[0], vm.Options{Seed: seed, Profile: true})
}

// This file is the staged protection engine: the paper's Fig. 1
// pipeline (unpack → profile → static analysis → bomb construction →
// stego → validate → repack) as explicit named stages over a typed
// artifact blackboard, with content-addressed caching of the
// expensive early stages and per-stage observability.
//
// Key derivation chains: the profile key covers the input key plus
// the profiling configuration; the analyze key covers the profile key
// plus HotFrac; the result key covers the input key, the profile key,
// and every remaining option. Changing only a late-stage option (a
// response kind, the bogus fraction) therefore invalidates the result
// artifact but leaves the profile and analyze artifacts warm, and the
// engine skips straight past those stages on the next run.

// StageName identifies one pipeline stage.
type StageName string

// The Fig. 1 stages, in pipeline order.
const (
	StageUnpack    StageName = "unpack"
	StageProfile   StageName = "profile"
	StageAnalyze   StageName = "analyze"
	StageConstruct StageName = "construct"
	StageStego     StageName = "stego"
	StageValidate  StageName = "validate"
	StageRepack    StageName = "repack"
)

// StageOrder is the canonical pipeline order.
var StageOrder = []StageName{
	StageUnpack, StageProfile, StageAnalyze, StageConstruct,
	StageStego, StageValidate, StageRepack,
}

// Artifacts is the typed blackboard stages read and write. Each stage
// consumes fields earlier stages produced and fills in its own.
type Artifacts struct {
	// Inputs.
	In   *apk.Package // signed input package (nil for Protect-only runs)
	Opts Options
	Prof ProfileConfig

	// Unpack outputs.
	File          *dex.File
	Ko            string
	ResourceCount int

	// Analyze output: the hot-method exclusion set.
	Hot map[string]bool

	// Construct/Stego/Validate outputs.
	Out    *dex.File
	Result *Result
	prot   *protector // construct → stego carry-over (stego plan + RNG stream)

	// Repack output.
	Unsigned *apk.Unsigned
}

// Stage is one named pipeline step.
type Stage struct {
	Name StageName
	Run  func(ctx context.Context, a *Artifacts) error
}

// protectStages is the dex-level slice of the pipeline — what
// Protect/ProtectCtx run on an already-unpacked file.
var protectStages = []Stage{
	{StageAnalyze, stageAnalyze},
	{StageConstruct, stageConstruct},
	{StageStego, stageStego},
	{StageValidate, stageValidate},
}

// ProfileConfig configures the engine's profiling stage (paper §7.1:
// Dynodroid + Traceview on a stock emulator).
type ProfileConfig struct {
	Events int   // profiling events; 0 = 10,000 (the paper's run)
	Domain int64 // handler parameter domain; 0 = 64
	Seed   int64 // profiling RNG seed
	// Watch lists the static fields whose values profiling records for
	// artificial-QC construction. Empty means every field in the dex.
	Watch []string
}

func (p ProfileConfig) withDefaults() ProfileConfig {
	if p.Events == 0 {
		p.Events = 10_000
	}
	if p.Domain == 0 {
		p.Domain = 64
	}
	return p
}

// StageTiming is one stage's wall time within a run. Wall times are
// operator-facing only — never compare them across runs.
type StageTiming struct {
	Stage  StageName `json:"stage"`
	WallNs int64     `json:"wall_ns"`
	// Cache is "hit" or "miss" for cached stages ("" for uncached
	// ones). A hit means the stage's output came from the artifact
	// store and its work was skipped.
	Cache string `json:"cache,omitempty"`
}

// RunInfo records how one engine run was satisfied: the derived
// artifact keys, per-stage timings, and cache effectiveness.
type RunInfo struct {
	Input       artifact.Key  `json:"input_key"`
	ProfileKey  artifact.Key  `json:"profile_key"`
	AnalyzeKey  artifact.Key  `json:"analyze_key"`
	ResultKey   artifact.Key  `json:"result_key"`
	Stages      []StageTiming `json:"stages"`
	CacheHits   int           `json:"cache_hits"`
	CacheMisses int           `json:"cache_misses"`
}

// Protected is a completed engine run.
type Protected struct {
	Unsigned *apk.Unsigned
	Result   *Result
	// Profile/FieldValues are the profiling stage's outputs (possibly
	// cache-satisfied), for callers that feed them onward.
	Profile     map[string]int64
	FieldValues map[string][]dex.Value
	Info        RunInfo
}

// Engine runs the full staged pipeline over signed packages. The
// zero-value Engine works: no cache, no metrics, default options.
type Engine struct {
	Opts Options
	Prof ProfileConfig
	// Cache, when set, memoizes stage outputs content-addressed by
	// input + options. Nil disables caching with no other behavior
	// change.
	Cache *artifact.Store
	// Obs, when set, receives per-stage counters and wall-time
	// histograms plus cache hit/miss counters. All engine series are
	// Volatile: they depend on process history (what is already
	// cached), not on the work's content.
	Obs *obs.Registry
}

// cached stage artifacts. The profile and analyze artifacts are
// shared structures handed to every run that hits them — treat them
// as immutable. The result artifact is deep-cloned on every hit
// because callers receive (and may mutate) the dex file inside.
type profileArtifact struct {
	profile   map[string]int64
	fieldVals map[string][]dex.Value
}

type analyzeArtifact struct {
	hot map[string]bool
}

type resultArtifact struct {
	unsigned  *apk.Unsigned
	result    *Result
	profile   map[string]int64
	fieldVals map[string][]dex.Value
}

// clone deep-copies the parts a caller can reach and mutate: the
// unsigned package and the result's dex file and slices. The profile
// maps stay shared (read-only by contract).
func (ra *resultArtifact) clone() (*apk.Unsigned, *Result) {
	u := &apk.Unsigned{
		Name: ra.unsigned.Name,
		Dex:  append([]byte(nil), ra.unsigned.Dex...),
		Res:  ra.unsigned.Res.Clone(),
	}
	r := *ra.result
	r.File = ra.result.File.Clone()
	r.Bombs = append([]Bomb(nil), ra.result.Bombs...)
	r.StegoStrings = append([]string(nil), ra.result.StegoStrings...)
	return u, &r
}

// InputKey content-addresses a signed package: its name, every
// manifest entry digest (classes.dex, strings.xml, icon, author), and
// the signer's public key. Two packages differing in even one method
// body have different dex digests and therefore different keys.
func InputKey(in *apk.Package) artifact.Key {
	f := artifact.NewFingerprint("bombdroid/input/v1")
	f.Str(in.Name)
	names := make([]string, 0, len(in.Manifest.Digests))
	for k := range in.Manifest.Digests {
		names = append(names, k)
	}
	sort.Strings(names)
	f.Int(int64(len(names)))
	for _, n := range names {
		f.Str(n).Str(in.Manifest.Digests[n])
	}
	f.Str(in.PublicKeyHex())
	return f.Done()
}

// profileKey covers everything the profiling stage's output depends
// on: the input package and the profiling configuration.
func profileKey(input artifact.Key, p ProfileConfig) artifact.Key {
	return artifact.NewFingerprint("bombdroid/profile/v1").
		Key(input).
		Int(int64(p.Events)).
		Int(p.Domain).
		Int(p.Seed).
		Strs(p.Watch).
		Done()
}

// analyzeKey chains the profile key with the one option the analysis
// stage reads.
func analyzeKey(profKey artifact.Key, hotFrac float64) artifact.Key {
	return artifact.NewFingerprint("bombdroid/analyze/v1").
		Key(profKey).F64(hotFrac).Done()
}

// resultKey covers the whole run: input, profiling provenance, and
// every construction option. Options must already have defaults
// applied so semantically equal configurations key identically.
func resultKey(input, profKey artifact.Key, o Options) artifact.Key {
	f := artifact.NewFingerprint("bombdroid/protect/v1")
	f.Key(input).Key(profKey)
	f.Int(o.Seed).F64(o.Alpha).F64(o.HotFrac)
	f.F64(o.PLo).F64(o.PHi)
	f.Bool(o.DoubleTrigger).Bool(o.SingleTrigger)
	f.Bool(o.Weave).Bool(o.NoWeave).F64(o.BogusFrac)
	f.Int(int64(len(o.Detections)))
	for _, d := range o.Detections {
		f.Int(int64(d))
	}
	f.Str(o.IconDigest).Str(o.AuthorDigest)
	f.Int(int64(len(o.Responses)))
	for _, r := range o.Responses {
		f.Int(int64(r))
	}
	f.Int(o.DelayResponseMs)
	f.F64(o.ExistingFrac)
	f.Int(int64(o.MaxBombsPerMethod)).Int(int64(o.MaxBombs))
	f.Str(o.GlobalSalt).Bool(o.MuteAfterFirst)
	return f.Done()
}

// mapBytes roughly sizes a profile for cache accounting.
func mapBytes(profile map[string]int64, fieldVals map[string][]dex.Value) int64 {
	n := int64(0)
	for k := range profile {
		n += int64(len(k)) + 24
	}
	for k, vs := range fieldVals {
		n += int64(len(k)) + 16 + int64(len(vs))*24
	}
	return n
}

// resultBytes roughly sizes a protected build for cache accounting.
func resultBytes(ra *resultArtifact) int64 {
	n := int64(len(ra.unsigned.Dex))
	for _, s := range ra.unsigned.Res.Strings {
		n += int64(len(s))
	}
	n += int64(len(ra.unsigned.Res.Icon)) + int64(len(ra.unsigned.Res.Author))
	n += int64(len(ra.result.Bombs)) * 128
	n += int64(ra.result.Stats.BlobBytes)
	return n + mapBytes(ra.profile, ra.fieldVals)
}

// engineStageBucketsNs buckets stage wall time from 1µs to ~4.5min.
var engineStageBucketsNs = obs.ExpBuckets(1_000, 8, 10)

// observe records one stage completion on the engine's registry. All
// series are Volatile — stage wall time and cache outcomes depend on
// process history, so they must never enter deterministic snapshots.
func (e *Engine) observe(name StageName, ns int64, cache string) {
	if e.Obs == nil {
		return
	}
	e.Obs.Counter(obs.L("core_engine_stage_total", "stage", string(name)), obs.Volatile()).Inc()
	e.Obs.Histogram(obs.L("core_engine_stage_wall_ns", "stage", string(name)),
		engineStageBucketsNs, obs.Volatile()).Observe(ns)
	if cache != "" {
		e.Obs.Counter(obs.L("core_engine_cache_total", "stage", string(name), "outcome", cache),
			obs.Volatile()).Inc()
	}
}

// stageProfile is the engine's profiling stage (paper Fig. 1 step 2):
// fuzz the original app on a stock emulator, recording method
// invocation counts and observed field values.
func stageProfile(ctx context.Context, a *Artifacts) error {
	watch := a.Prof.Watch
	if len(watch) == 0 {
		for _, c := range a.File.Classes {
			for _, f := range c.Fields {
				watch = append(watch, c.Name+"."+f.Name)
			}
		}
	}
	profVM, err := newProfileVM(a.In, a.Prof.Seed)
	if err != nil {
		return fmt.Errorf("core: profile stage: %w", err)
	}
	a.Opts.Profile, a.Opts.FieldValues = fuzz.Profile(profVM, a.Prof.Domain, a.Prof.Events, watch, a.Prof.Seed)
	return nil
}

// Run takes a signed package through the whole staged pipeline and
// returns the protected unsigned package plus the run record.
//
// Cache layering, checked in order:
//  1. the whole-result artifact (everything skipped, output cloned);
//  2. the profile artifact (profiling skipped);
//  3. the analyze artifact (hot-set computation skipped);
//
// after which construct/stego/validate/repack always run. Cold-path
// output is byte-identical to BuildProtected over the same inputs.
// Engine.Run owns profiling: caller-set Opts.Profile/FieldValues are
// overwritten by the profile stage's (possibly cached) output.
func (e *Engine) Run(ctx context.Context, in *apk.Package) (*Protected, error) {
	opts := e.Opts.withDefaults()
	prof := e.Prof.withDefaults()
	a := &Artifacts{In: in, Opts: opts, Prof: prof}
	p := &Protected{}
	info := &p.Info
	info.Input = InputKey(in)
	info.ProfileKey = profileKey(info.Input, prof)
	info.AnalyzeKey = analyzeKey(info.ProfileKey, opts.HotFrac)
	info.ResultKey = resultKey(info.Input, info.ProfileKey, opts)

	// run executes one uncached stage with ctx + timing + metrics.
	run := func(st StageName, fn func(ctx context.Context, a *Artifacts) error) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: %s stage: %w", st, err)
		}
		t0 := time.Now()
		err := fn(ctx, a)
		ns := time.Since(t0).Nanoseconds()
		info.Stages = append(info.Stages, StageTiming{Stage: st, WallNs: ns})
		e.observe(st, ns, "")
		return err
	}
	// runCached executes one stage through the artifact store: on a
	// hit, load installs the cached artifact and the stage body never
	// runs; on a miss, the body runs and save extracts the artifact to
	// retain.
	runCached := func(st StageName, key artifact.Key,
		fn func(ctx context.Context, a *Artifacts) error,
		save func() (any, int64), load func(v any)) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: %s stage: %w", st, err)
		}
		t0 := time.Now()
		v, hit, err := e.Cache.Do(key, func() (any, int64, error) {
			if err := fn(ctx, a); err != nil {
				return nil, 0, err
			}
			art, size := save()
			return art, size, nil
		})
		ns := time.Since(t0).Nanoseconds()
		outcome := "miss"
		if hit {
			outcome = "hit"
			load(v)
			info.CacheHits++
		} else {
			info.CacheMisses++
		}
		if e.Cache == nil {
			outcome = ""
		}
		info.Stages = append(info.Stages, StageTiming{Stage: st, WallNs: ns, Cache: outcome})
		e.observe(st, ns, outcome)
		return err
	}

	// Layer 1: the whole protected build may already be cached.
	t0 := time.Now()
	if v, ok := e.Cache.Get(info.ResultKey); ok {
		ra := v.(*resultArtifact)
		p.Unsigned, p.Result = ra.clone()
		p.Profile, p.FieldValues = ra.profile, ra.fieldVals
		ns := time.Since(t0).Nanoseconds()
		info.CacheHits++
		info.Stages = append(info.Stages, StageTiming{Stage: "result", WallNs: ns, Cache: "hit"})
		if e.Obs != nil {
			e.Obs.Counter(obs.L("core_engine_cache_total", "stage", "result", "outcome", "hit"),
				obs.Volatile()).Inc()
			e.Obs.Counter(obs.L("core_engine_runs_total", "path", "cached"), obs.Volatile()).Inc()
		}
		return p, nil
	}
	if e.Cache != nil {
		info.CacheMisses++
		if e.Obs != nil {
			e.Obs.Counter(obs.L("core_engine_cache_total", "stage", "result", "outcome", "miss"),
				obs.Volatile()).Inc()
		}
	}

	if err := run(StageUnpack, stageUnpack); err != nil {
		return nil, err
	}
	// Layer 2/3: profile and analyze artifacts, content-addressed.
	err := runCached(StageProfile, info.ProfileKey, stageProfile,
		func() (any, int64) {
			pa := &profileArtifact{profile: a.Opts.Profile, fieldVals: a.Opts.FieldValues}
			return pa, mapBytes(pa.profile, pa.fieldVals)
		},
		func(v any) {
			pa := v.(*profileArtifact)
			a.Opts.Profile, a.Opts.FieldValues = pa.profile, pa.fieldVals
		})
	if err != nil {
		return nil, err
	}
	err = runCached(StageAnalyze, info.AnalyzeKey, stageAnalyze,
		func() (any, int64) {
			size := int64(0)
			for m := range a.Hot {
				size += int64(len(m)) + 16
			}
			return &analyzeArtifact{hot: a.Hot}, size
		},
		func(v any) { a.Hot = v.(*analyzeArtifact).hot })
	if err != nil {
		return nil, err
	}
	for _, st := range []Stage{
		{StageConstruct, stageConstruct},
		{StageStego, stageStego},
		{StageValidate, stageValidate},
		{StageRepack, stageRepack},
	} {
		if err := run(st.Name, st.Run); err != nil {
			return nil, err
		}
	}

	p.Unsigned, p.Result = a.Unsigned, a.Result
	p.Profile, p.FieldValues = a.Opts.Profile, a.Opts.FieldValues
	if e.Cache != nil {
		// Cache a deep clone, not the live objects the caller gets —
		// caller mutations must never reach future cache hits.
		ra := &resultArtifact{profile: p.Profile, fieldVals: p.FieldValues}
		ra.unsigned, ra.result = (&resultArtifact{
			unsigned: p.Unsigned, result: p.Result,
		}).clone()
		e.Cache.Put(info.ResultKey, ra, resultBytes(ra))
	}
	if e.Obs != nil {
		e.Obs.Counter(obs.L("core_engine_runs_total", "path", "built"), obs.Volatile()).Inc()
	}
	return p, nil
}
