package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/instrument"
	"bombdroid/internal/vm"
)

// Protect instruments a dex file with logic bombs (paper Fig. 1,
// steps 2–4). ko is the developer's public key extracted from
// CERT.RSA; resourceCount is the app's current strings.xml size (the
// stego strings Result.StegoStrings land at that offset). The input
// file is not modified.
//
// Protect is the Analyze→Construct→Stego→Validate slice of the staged
// pipeline (see engine.go); ProtectCtx is the cancellable form.
func Protect(file *dex.File, ko string, resourceCount int, opts Options) (*Result, error) {
	return ProtectCtx(context.Background(), file, ko, resourceCount, opts)
}

// ProtectCtx is Protect with cancellation: the construct stage checks
// ctx between methods, so protection of a large app returns promptly
// once ctx is done.
func ProtectCtx(ctx context.Context, file *dex.File, ko string, resourceCount int, opts Options) (*Result, error) {
	a := &Artifacts{
		File: file, Ko: ko, ResourceCount: resourceCount,
		Opts: opts.withDefaults(),
	}
	for _, st := range protectStages {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %s stage: %w", st.Name, err)
		}
		if err := st.Run(ctx, a); err != nil {
			return nil, err
		}
	}
	return a.Result, nil
}

// stageAnalyze computes the static-analysis artifact: the hot-method
// exclusion set from the profiling data (paper §7.1, top-10%
// excluded). It writes only Artifacts.Hot, so the engine can satisfy
// it from the artifact cache without running it.
func stageAnalyze(ctx context.Context, a *Artifacts) error {
	a.Hot = hotMethods(a.Opts.Profile, a.Opts.HotFrac)
	return nil
}

// stageConstruct clones the input dex and plans and applies every
// bomb site (existing, artificial, bogus). All of the run's
// randomness beyond profiling derives from Opts.Seed here, in
// candidate-method order, so construction is deterministic for a
// given (input, options) pair. Cancellation is checked between
// methods.
func stageConstruct(ctx context.Context, a *Artifacts) error {
	opts := a.Opts
	rng := rand.New(rand.NewSource(opts.Seed))
	out := a.File.Clone()

	res := &Result{File: out, StegoBase: a.ResourceCount}
	res.Stats.InstrBefore = out.InstrCount()

	var candidates []*dex.Method
	for _, m := range out.Methods() {
		res.Stats.Methods++
		if m.IsSynthetic() {
			continue
		}
		if a.Hot[m.FullName()] {
			res.Stats.HotExcluded++
			continue
		}
		candidates = append(candidates, m)
	}
	res.Stats.Candidates = len(candidates)

	p := &protector{
		opts: opts, rng: rng, out: out, res: res, ko: a.Ko,
	}
	for _, m := range candidates {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: construct stage: %w", err)
		}
		if err := p.protectMethod(m); err != nil {
			return fmt.Errorf("core: instrumenting %s: %w", m.FullName(), err)
		}
		p.finalized = append(p.finalized, m)
	}
	a.Out = out
	a.Result = res
	a.prot = p
	return nil
}

// stageStego hides each reserved fragment (the final classes.dex
// digest, or icon/author digests) inside innocuous cover strings. It
// continues the construct stage's RNG stream, so the staged pipeline
// emits byte-for-byte the strings the monolithic one did.
func stageStego(ctx context.Context, a *Artifacts) error {
	p := a.prot
	res := a.Result
	if len(p.stegoPlan) == 0 {
		return nil
	}
	dexFrag := apk.DigestHex(dex.Encode(a.Out))[:stegoFragLen]
	covers := []string{
		"Loading, please wait…", "Thanks for playing!", "Settings saved",
		"Check out what's new", "Rate us on the store",
	}
	for i, want := range p.stegoPlan {
		frag := want
		if want == "dex" {
			frag = dexFrag
		}
		cover := covers[i%len(covers)]
		res.StegoStrings = append(res.StegoStrings, apk.HideInString(cover, frag, p.rng))
	}
	return nil
}

// stageValidate re-links and checks the instrumented file, then seals
// the run's stats.
func stageValidate(ctx context.Context, a *Artifacts) error {
	if err := dex.ValidateLinked(a.Out); err != nil {
		return fmt.Errorf("core: protected file invalid: %w", err)
	}
	a.Result.Stats.InstrAfter = a.Out.InstrCount()
	a.Result.Stats.BlobBytes = a.Out.BlobBytes()
	return nil
}

// hotMethods returns the top frac of methods by invocation count.
func hotMethods(profile map[string]int64, frac float64) map[string]bool {
	out := map[string]bool{}
	if len(profile) == 0 || frac <= 0 {
		return out
	}
	type mc struct {
		name  string
		count int64
	}
	all := make([]mc, 0, len(profile))
	for name, c := range profile {
		all = append(all, mc{name, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	n := int(float64(len(all)) * frac)
	for i := 0; i < n; i++ {
		out[all[i].name] = true
	}
	return out
}

// protector carries per-run instrumentation state.
type protector struct {
	opts Options
	rng  *rand.Rand
	out  *dex.File
	res  *Result
	ko   string

	finalized []*dex.Method // fully instrumented methods (snippet targets)
	bombN     int
	// stegoPlan records, per reserved stego string, what its hidden
	// fragment must be: "dex" (final classes.dex digest, computed after
	// instrumentation), or a literal fragment (icon/author digests,
	// known upfront).
	stegoPlan []string
}

// sitePlan is one planned edit, in original pc coordinates.
type sitePlan struct {
	start, end int // end == start means pure insertion
	qc         *cfg.QC
	weave      bool
	source     BombSource
	fieldRef   string    // artificial QCs
	constVal   dex.Value // trigger constant
	strOp      dex.API
	xReg       int32
}

func (sp sitePlan) conflictRange() (int, int) {
	e := sp.end
	if e <= sp.start {
		e = sp.start + 1
	}
	return sp.start, e
}

func overlaps(a, b sitePlan) bool {
	as, ae := a.conflictRange()
	bs, be := b.conflictRange()
	return as < be && bs < ae
}

// protectMethod plans and applies all bomb sites for one method.
func (p *protector) protectMethod(m *dex.Method) error {
	g := cfg.Build(p.out, m)
	lv := cfg.ComputeLiveness(g)
	qcs := cfg.FindQCsWithGraph(p.out, m, g)

	var usable []cfg.QC
	for _, q := range qcs {
		if !q.InLoop {
			usable = append(usable, q)
		}
	}
	p.res.Stats.ExistingQCs += len(usable)
	p.rng.Shuffle(len(usable), func(i, j int) { usable[i], usable[j] = usable[j], usable[i] })

	var plans []sitePlan
	conflict := func(cand sitePlan) bool {
		for _, pl := range plans {
			if overlaps(pl, cand) {
				return true
			}
		}
		return false
	}

	// Real bombs from existing QCs: ExistingFrac is the per-method
	// probability of hosting one (and occasionally a second, up to
	// MaxBombsPerMethod).
	quota := 0
	if p.rng.Float64() < p.opts.ExistingFrac {
		quota = 1
		if p.opts.MaxBombsPerMethod > 1 && p.rng.Float64() < p.opts.ExistingFrac/3 {
			quota = p.opts.MaxBombsPerMethod
		}
	}
	for i := range usable {
		if quota == 0 || (p.opts.MaxBombs > 0 && p.bombN >= p.opts.MaxBombs) {
			break
		}
		q := &usable[i]
		plan, ok := p.planForQC(g, lv, m, q, SourceExisting)
		if !ok || conflict(plan) {
			continue
		}
		plans = append(plans, plan)
		quota--
		p.bombN++
	}

	// Bogus bombs from leftover weavable QCs.
	if p.opts.BogusFrac > 0 {
		for i := range usable {
			q := &usable[i]
			if q.Kind == cfg.Weak || !q.HasThenRegion() {
				continue
			}
			if p.rng.Float64() >= p.opts.BogusFrac {
				continue
			}
			plan, ok := p.planForQC(g, lv, m, q, SourceBogus)
			if !ok || !plan.weave || conflict(plan) {
				continue
			}
			plans = append(plans, plan)
		}
	}

	// Artificial QC for α of candidate methods.
	if p.rng.Float64() < p.opts.Alpha && (p.opts.MaxBombs == 0 || p.bombN < p.opts.MaxBombs) {
		if plan, ok := p.planArtificial(g, m, conflict); ok {
			plans = append(plans, plan)
			p.bombN++
		}
	}

	if len(plans) == 0 {
		return nil
	}

	base := int32(m.NumRegs)
	m.NumRegs += siteRegs

	sort.Slice(plans, func(i, j int) bool { return plans[i].start > plans[j].start })
	for _, plan := range plans {
		if err := p.apply(m, plan, base); err != nil {
			return err
		}
	}
	return nil
}

// planForQC decides how to bomb one qualified condition.
func (p *protector) planForQC(g *cfg.Graph, lv *cfg.Liveness, m *dex.Method, q *cfg.QC, source BombSource) (sitePlan, bool) {
	plan := sitePlan{
		qc: q, source: source, constVal: q.Const, strOp: q.StrOp, xReg: q.Reg,
	}
	weavable := p.opts.Weave && !p.opts.NoWeave &&
		q.Kind != cfg.Weak && // zero-tests may guard non-integer falsy values
		q.HasThenRegion() &&
		cfg.Liftable(g, lv, q) &&
		spliceable(m, q.CondPC, q.ThenEnd) &&
		// Registers defined by the replaced comparison prologue
		// (e.g. a string-equals result) must be dead at the join.
		!prologueDefsLive(m, lv, q.CondPC, q.ThenStart, q.ThenEnd)
	if weavable && (q.StrOp == dex.APIStrStartsWith || q.StrOp == dex.APIStrEndsWith) &&
		regionReadsReg(m, q.ThenStart, q.ThenEnd, q.Reg) {
		// The payload receives the extracted prefix/suffix, not the
		// original string; regions reading ϕ cannot be moved.
		weavable = false
	}
	if source == SourceBogus && !weavable {
		return plan, false
	}
	if weavable {
		plan.weave = true
		plan.start, plan.end = q.CondPC, q.ThenEnd
	} else {
		plan.start, plan.end = q.CondPC, q.CondPC
	}
	return plan, true
}

// planArtificial inserts an artificial qualified condition (paper
// §3.3, §7.2): pick a high-entropy field observed during profiling,
// a constant from its observed values, and a non-loop location.
func (p *protector) planArtificial(g *cfg.Graph, m *dex.Method, conflict func(sitePlan) bool) (sitePlan, bool) {
	ref, val, ok := p.pickArtificialField()
	if !ok {
		return sitePlan{}, false
	}
	// Candidate locations: block starts outside loops.
	var locs []int
	for _, b := range g.Blocks {
		if !g.InLoop(b.Start) {
			locs = append(locs, b.Start)
		}
	}
	if len(locs) == 0 {
		return sitePlan{}, false
	}
	p.rng.Shuffle(len(locs), func(i, j int) { locs[i], locs[j] = locs[j], locs[i] })
	for _, loc := range locs {
		plan := sitePlan{
			start: loc, end: loc, source: SourceArtificial,
			fieldRef: ref, constVal: val,
		}
		if !conflict(plan) {
			return plan, true
		}
	}
	return sitePlan{}, false
}

// pickArtificialField chooses the field with the most observed unique
// values ("fields that have the largest numbers of unique values are
// considered to have higher entropies", §7.2).
func (p *protector) pickArtificialField() (string, dex.Value, bool) {
	type fv struct {
		ref  string
		vals []dex.Value
	}
	var best []fv
	if len(p.opts.FieldValues) > 0 {
		all := make([]fv, 0, len(p.opts.FieldValues))
		for ref, vals := range p.opts.FieldValues {
			if len(vals) == 0 {
				continue
			}
			if k := vals[0].Kind; k != dex.KindInt && k != dex.KindStr {
				continue
			}
			all = append(all, fv{ref, vals})
		}
		sort.Slice(all, func(i, j int) bool {
			if len(all[i].vals) != len(all[j].vals) {
				return len(all[i].vals) > len(all[j].vals)
			}
			return all[i].ref < all[j].ref
		})
		// A quarter of the time, restrict to string fields: string
		// constants give strong (brute-force-resistant) artificial
		// triggers even when the value set is small (Fig. 4b shows a
		// medium/strong mix).
		if p.rng.Intn(4) == 0 {
			var strs []fv
			for _, f := range all {
				if f.vals[0].Kind == dex.KindStr {
					strs = append(strs, f)
				}
			}
			if len(strs) > 0 {
				all = strs
			}
		}
		// Keep the top quartile as the entropy pool.
		n := len(all)/4 + 1
		if n > len(all) {
			n = len(all)
		}
		best = all[:n]
	} else {
		// No profiling data: fall back to declared fields and their
		// initial values (weak entropy, still functional).
		for _, c := range p.out.Classes {
			for _, fd := range c.Fields {
				if fd.Init.Kind == dex.KindInt || fd.Init.Kind == dex.KindStr {
					best = append(best, fv{c.Name + "." + fd.Name, []dex.Value{fd.Init}})
				}
			}
		}
	}
	if len(best) == 0 {
		return "", dex.Value{}, false
	}
	chosen := best[p.rng.Intn(len(best))]
	return chosen.ref, chosen.vals[p.rng.Intn(len(chosen.vals))], true
}

// apply builds, seals, and splices one planned site.
func (p *protector) apply(m *dex.Method, plan sitePlan, base int32) error {
	id := fmt.Sprintf("Bomb%d", len(p.res.Bombs))
	salt := saltFor(p.rng, len(p.res.Bombs))
	if p.opts.GlobalSalt != "" {
		salt = p.opts.GlobalSalt
	}

	spec := payloadSpec{id: id, bogus: plan.source == SourceBogus}
	bomb := Bomb{
		ID: id, Method: m.FullName(), Source: plan.source,
		Const: plan.constVal, Salt: salt, Woven: plan.weave,
	}
	switch {
	case plan.source == SourceArtificial:
		if plan.constVal.Kind == dex.KindStr {
			bomb.Strength = cfg.Strong
		} else {
			bomb.Strength = cfg.Medium
		}
	case plan.qc != nil:
		bomb.Strength = plan.qc.Kind
	}

	if plan.source != SourceBogus {
		spec.mute = p.opts.MuteAfterFirst
		if p.opts.DoubleTrigger && !p.opts.SingleTrigger {
			spec.inner = android.BuildInnerCond(p.rng, p.opts.PLo, p.opts.PHi)
		}
		spec.detect = p.chooseDetection()
		spec.response = pick(p.rng, p.opts.Responses)
		spec.delayMs = p.opts.DelayResponseMs
		spec.ko = p.ko
		if spec.detect == DetectDigest {
			spec.stegoResIdx = int64(p.res.StegoBase + len(p.stegoPlan))
			p.stegoPlan = append(p.stegoPlan, "dex")
		}
		if spec.detect == DetectIcon {
			spec.stegoResIdx = int64(p.res.StegoBase + len(p.stegoPlan))
			if p.rng.Intn(2) == 0 && len(p.opts.AuthorDigest) >= stegoFragLen {
				spec.digestEntry = apk.EntryAuthor
				p.stegoPlan = append(p.stegoPlan, p.opts.AuthorDigest[:stegoFragLen])
			} else {
				spec.digestEntry = apk.EntryIcon
				p.stegoPlan = append(p.stegoPlan, p.opts.IconDigest[:stegoFragLen])
			}
		}
		if spec.detect == DetectSnippet {
			t := p.finalized[p.rng.Intn(len(p.finalized))]
			spec.snippetRef = t.FullName()
			spec.snippetDigest = vm.CodeDigest(p.out, t)
		}
		bomb.Inner = spec.inner
		bomb.Detect = spec.detect
		bomb.Response = spec.response
	}

	if plan.weave {
		spec.weaveFrom = p.out
		spec.weaveMethod = m
		spec.weaveStart = plan.qc.ThenStart
		spec.weaveEnd = plan.qc.ThenEnd
		spec.weaveArgReg = plan.qc.Reg
	}

	pf, err := buildPayload(spec)
	if err != nil {
		return err
	}
	sealed, err := sealPayload(pf, plan.constVal, salt)
	if err != nil {
		return err
	}
	bomb.BlobIdx = p.out.AddBlob(sealed)

	seq := outerTriggerSeq(p.out, triggerSpec{
		xReg: plan.xReg, c: plan.constVal, salt: salt,
		blobIdx: bomb.BlobIdx, strOp: plan.strOp, fieldRef: plan.fieldRef,
	}, base)
	if err := instrument.Splice(m, plan.start, plan.end, seq); err != nil {
		return err
	}

	p.res.Bombs = append(p.res.Bombs, bomb)
	switch plan.source {
	case SourceExisting:
		p.res.Stats.BombsExisting++
	case SourceArtificial:
		p.res.Stats.BombsArtificial++
	case SourceBogus:
		p.res.Stats.BombsBogus++
	}
	if plan.weave {
		p.res.Stats.Woven++
	}
	return nil
}

// chooseDetection rotates among configured methods, falling back to
// public key when a method's prerequisites are unmet.
func (p *protector) chooseDetection() DetectionMethod {
	d := pick(p.rng, p.opts.Detections)
	if d == DetectSnippet && len(p.finalized) == 0 {
		return DetectPublicKey
	}
	if d == DetectIcon && len(p.opts.IconDigest) < stegoFragLen {
		return DetectPublicKey
	}
	return d
}

// spliceable mirrors instrument.Splice's interior-target check so a
// failing site degrades to insertion instead of aborting protection.
func spliceable(m *dex.Method, s, e int) bool {
	if e <= s {
		return true
	}
	check := func(t int32) bool { return int(t) <= s || int(t) >= e }
	for pc, in := range m.Code {
		if pc >= s && pc < e {
			continue
		}
		if in.Op.IsBranch() && !check(in.C) {
			return false
		}
	}
	for _, t := range m.Tables {
		if !check(t.Default) {
			return false
		}
		for _, c := range t.Cases {
			if !check(c.Target) {
				return false
			}
		}
	}
	return true
}

// prologueDefsLive reports whether any register defined in the
// comparison prologue [s, thenStart) is live at the join (end).
func prologueDefsLive(m *dex.Method, lv *cfg.Liveness, s, thenStart, end int) bool {
	if end >= len(lv.In) {
		return false
	}
	for pc := s; pc < thenStart && pc < len(m.Code); pc++ {
		_, defs := cfg.UsesDefs(m.Code[pc])
		for _, d := range defs {
			if lv.In[end].Has(d) {
				return true
			}
		}
	}
	return false
}

// regionReadsReg reports whether [s,e) reads reg before writing it.
func regionReadsReg(m *dex.Method, s, e int, reg int32) bool {
	written := false
	for pc := s; pc < e && !written; pc++ {
		uses, defs := cfg.UsesDefs(m.Code[pc])
		for _, u := range uses {
			if u == reg {
				return true
			}
		}
		for _, d := range defs {
			if d == reg {
				written = true
			}
		}
	}
	return false
}
