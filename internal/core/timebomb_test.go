package core

import (
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
	"bombdroid/internal/instrument"
	"bombdroid/internal/vm"
)

// TestTimeTriggeredBomb reproduces the paper's §6 example: "a bomb can
// be constructed such that it sets off only if the app is played at
// some specific time. Thus, running an app for a longer time does not
// necessarily trigger it." The bomb's inner condition is an evening
// time window; the same trigger input detonates at 20:00 and stays
// dormant at 03:00.
func TestTimeTriggeredBomb(t *testing.T) {
	f := dex.NewFile()
	cls := &dex.Class{Name: "App"}
	b := dex.NewBuilder(f, "onTap", 1)
	b.ReturnVoid()
	cls.AddMethod(b.MustFinish())
	if err := f.AddClass(cls); err != nil {
		t.Fatal(err)
	}

	// Hand-build the double-trigger bomb: outer "x == 99", inner
	// "19 <= time_hour <= 22", detection vs a deliberately wrong Ko.
	const salt = "time-salt"
	cval := dex.Int64(99)
	pf, err := buildPayload(payloadSpec{
		id: "TimeBomb",
		inner: android.InnerCond{Constraints: []android.Constraint{
			{Var: "time_hour", Op: android.OpIn, Lo: 19, Hi: 22},
		}},
		detect:   DetectPublicKey,
		response: vm.RespWarn,
		ko:       "not-the-real-key",
	})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sealPayload(pf, cval, salt)
	if err != nil {
		t.Fatal(err)
	}
	blob := f.AddBlob(sealed)
	m := f.Method("App.onTap")
	base := int32(m.NumRegs)
	m.NumRegs += siteRegs
	seq := outerTriggerSeq(f, triggerSpec{xReg: 0, c: cval, salt: salt, blobIdx: blob}, base)
	if err := instrument.InsertAt(m, 0, seq); err != nil {
		t.Fatal(err)
	}

	key, err := apk.NewKeyPair(61)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("t", f, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	dev := android.EmulatorLab(1)[0]
	dev.MutateEnv("timezone_off", 0, "")

	runAt := func(hour int64, x int64) []vm.ResponseEvent {
		v, err := vm.New(pkg, dev.Clone(), vm.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		v.SetClockMillis(hour * 3_600_000)
		if _, err := v.Invoke("App.onTap", dex.Int64(x)); err != nil {
			t.Fatal(err)
		}
		return v.Responses()
	}

	// 03:00, correct trigger value: outer fires, inner gate holds it.
	if resp := runAt(3, 99); len(resp) != 0 {
		t.Errorf("bomb fired outside its time window: %+v", resp)
	}
	// 20:00, wrong trigger value: nothing decrypts.
	if resp := runAt(20, 7); len(resp) != 0 {
		t.Errorf("bomb fired without its trigger value: %+v", resp)
	}
	// 20:00, correct value: detonation.
	resp := runAt(20, 99)
	if len(resp) != 1 || resp[0].Kind != vm.RespWarn || resp[0].BombID != "TimeBomb" {
		t.Fatalf("expected a warn at 20:00, got %+v", resp)
	}
}

// TestDelayedResponseBomb covers Options.DelayResponseMs: the payload
// schedules its response instead of firing inline, echoing SSN's
// delay-to-confuse tactic as an optional BombDroid behaviour.
func TestDelayedResponseBomb(t *testing.T) {
	h := protectApp(t, smallCfg(601), Options{
		Seed:            13,
		DelayResponseMs: 90_000,
		Responses:       []vm.ResponseKind{vm.RespWarn},
		SingleTrigger:   true, // make triggering easy for the test
	})
	rng := rand.New(rand.NewSource(5))
	dev := android.SamplePopulation("u", rng)
	v := newVM(t, h.pirated, dev)
	if err := drive(v, 3, 1500, h.app.Config.ParamDomain); err != nil && vm.AbnormalExit(err) {
		t.Fatalf("unexpected abort: %v", err)
	}
	if v.PendingDelayed() == 0 && len(v.Responses()) == 0 {
		t.Skip("no bomb triggered in this stream")
	}
	// Responses at trigger time are only the delayed kind (armed, not
	// yet visible warnings).
	if len(v.Warnings()) != 0 && v.PendingDelayed() > 0 {
		t.Log("some warnings already due — acceptable, drive advanced the clock")
	}
	if err := v.AdvanceIdle(120_000); err != nil {
		t.Fatal(err)
	}
	if len(v.Warnings()) == 0 {
		t.Error("delayed warning never fired")
	}
}
