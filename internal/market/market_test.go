package market

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty Dir should fail Validate")
	}
	if err := (Config{Dir: "x", QueueCap: -1}).Validate(); err == nil {
		t.Error("negative QueueCap should fail Validate")
	}
	if err := (Config{Dir: "x", Shards: 2000}).Validate(); err == nil {
		t.Error("absurd Shards should fail Validate")
	}
	if err := (Config{Dir: "x", Shards: -1}).Validate(); err == nil {
		t.Error("negative Shards should fail Validate")
	}
	// Zero fields validate as their defaults, matching what Open runs.
	if err := (Config{Dir: "x"}).Validate(); err != nil {
		t.Errorf("minimal config should validate: %v", err)
	}
}

func TestIngestVerdictDuplicates(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 3})
	defer st.Close()

	evs := []report.Event{
		ev("app.a", "b1", "u1"),
		ev("app.a", "b1", "u1"), // same key, same batch
		ev("app.a", "b1", "u2"),
		ev("app.a", "b2", "u1"),
		ev("app.b", "b1", "u1"),
	}
	accepted, dups, err := st.Ingest(evs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if accepted != 4 || dups != 1 {
		t.Fatalf("Ingest = (%d, %d), want (4, 1)", accepted, dups)
	}

	// Resubmitting the whole batch is all duplicates.
	accepted, dups, err = st.Ingest(evs)
	if err != nil || accepted != 0 || dups != 5 {
		t.Fatalf("resubmit = (%d, %d, %v), want (0, 5, nil)", accepted, dups, err)
	}

	v := st.Verdict("app.a")
	if v.Channels.Reports.Detections != 3 || !v.Flagged || v.Channels.Reports.Threshold != 3 {
		t.Errorf("Verdict(app.a) = %+v, want 3 detections, repackaged", v)
	}
	if v := st.Verdict("app.b"); v.Channels.Reports.Detections != 1 || v.Flagged {
		t.Errorf("Verdict(app.b) = %+v, want 1 detection, not repackaged", v)
	}
	if v := st.Verdict("app.unknown"); v.Channels.Reports.Detections != 0 || v.Flagged {
		t.Errorf("Verdict(app.unknown) = %+v, want zero", v)
	}
}

// TestBackpressure: with simulated in-flight load holding most of a
// shard's queue, a batch that would fit an idle queue is rejected with
// ErrBackpressure — deterministically, since the reservation happens
// before any enqueue — and the rollback leaves the queue usable.
func TestBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1, QueueCap: 8, Obs: reg})
	defer st.Close()

	var evs []report.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, ev("app.bp", fmt.Sprintf("b%d", i), "u1"))
	}
	st.shards[0].depth.Add(6) // pretend 6 events are queued, uncommitted
	if _, _, err := st.Ingest(evs); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("Ingest into a near-full queue: err = %v, want ErrBackpressure", err)
	}
	if got := reg.Snapshot().Counters["market_backpressure_rejects_total"]; got != 1 {
		t.Errorf("rejects counter = %d, want 1", got)
	}

	// The rejection rolled back its reservation: once the simulated
	// load drains, the very same batch is admitted.
	st.shards[0].depth.Add(-6)
	accepted, _, err := st.Ingest(evs)
	if err != nil || accepted != 5 {
		t.Fatalf("Ingest after drain = (%d, %v), want (5, nil)", accepted, err)
	}
}

// TestBatchTooLarge: a batch mapping more events to one shard than
// QueueCap could never reserve, even against an idle queue — that is
// the permanent ErrBatchTooLarge, not a retryable ErrBackpressure
// (which would 429-loop forever).
func TestBatchTooLarge(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1, QueueCap: 8})
	defer st.Close()

	var evs []report.Event
	for i := 0; i < 9; i++ {
		evs = append(evs, ev("app.big", fmt.Sprintf("b%d", i), "u1"))
	}
	_, _, err := st.Ingest(evs)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("Ingest over QueueCap: err = %v, want ErrBatchTooLarge", err)
	}
	if errors.Is(err, ErrBackpressure) {
		t.Fatal("ErrBatchTooLarge must not read as retryable ErrBackpressure")
	}
	// Splitting is the fix: either half fits.
	if accepted, _, err := st.Ingest(evs[:8]); err != nil || accepted != 8 {
		t.Fatalf("split batch = (%d, %v), want (8, nil)", accepted, err)
	}
}

// TestEventTooLarge: an event whose JSON encoding exceeds a WAL record
// must be refused, never acked — if it reached the log, the next
// restart would read its length prefix as corruption and either
// truncate acked records after it or refuse to open.
func TestEventTooLarge(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1})
	defer st.Close()

	big := ev("app.huge", "b1", "u1")
	big.Info = strings.Repeat("x", MaxEventBytes)
	if _, _, err := st.Ingest([]report.Event{big}); !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("oversized event: err = %v, want ErrEventTooLarge", err)
	}
	if v := st.Verdict("app.huge"); v.Channels.Reports.Detections != 0 {
		t.Errorf("oversized event counted: %d detections, want 0", v.Channels.Reports.Detections)
	}
	// The shard stays healthy and retrying it unchanged stays refused.
	if accepted, _, err := st.Ingest([]report.Event{ev("app.huge", "b2", "u1")}); err != nil || accepted != 1 {
		t.Fatalf("ingest after oversized = (%d, %v), want (1, nil)", accepted, err)
	}
	if _, _, err := st.Ingest([]report.Event{big}); !errors.Is(err, ErrEventTooLarge) {
		t.Fatal("retrying the oversized event unchanged should still fail")
	}
}

func TestClosedStore(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1})
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := st.Ingest([]report.Event{ev("a", "b", "u")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: err = %v, want ErrClosed", err)
	}
}

// TestMetaShardMismatch: reopening a data dir with a different shard
// count must fail — the key→shard mapping is part of the format.
func TestMetaShardMismatch(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, Config{Dir: dir, Shards: 2})
	st.Close()
	if _, _, err := Open(Config{Dir: dir, Shards: 8}); err == nil {
		t.Fatal("Open with mismatched shard count should fail")
	}
	// The original count still works.
	st2, _ := mustOpen(t, Config{Dir: dir, Shards: 2})
	st2.Close()
}

// TestConcurrentIngest hammers the store from many goroutines (run
// under -race in verify.sh) and checks totals: every distinct key
// accepted exactly once, everything else counted a duplicate.
func TestConcurrentIngest(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 4, QueueCap: 1 << 16})
	defer st.Close()

	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted, dups int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Half the keys collide across goroutines.
				a, d, err := st.Ingest([]report.Event{
					ev("app.c", fmt.Sprintf("b%d", i), fmt.Sprintf("u%d", g)),
					ev("app.c", fmt.Sprintf("shared-%d", i), "u0"),
				})
				if err != nil {
					t.Errorf("Ingest: %v", err)
					return
				}
				mu.Lock()
				accepted += a
				dups += d
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	wantAccepted := goroutines*perG + perG // unique per-g keys + shared set once
	if accepted != wantAccepted {
		t.Errorf("accepted = %d, want %d", accepted, wantAccepted)
	}
	if accepted+dups != 2*goroutines*perG {
		t.Errorf("accepted+dups = %d, want %d", accepted+dups, 2*goroutines*perG)
	}
	if v := st.Verdict("app.c"); v.Channels.Reports.Detections != int64(wantAccepted) {
		t.Errorf("Detections = %d, want %d", v.Channels.Reports.Detections, wantAccepted)
	}
}

// TestDedupWindowRotation: with a tiny window, old keys age out and
// can be re-admitted; the tally counts the re-admission (the paper's
// evidence counter tolerates this — the window bounds memory, and a
// re-report after ~2 windows of traffic is fresh evidence).
func TestDedupWindowRotation(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1, DedupWindow: 4})
	defer st.Close()

	// Admit the probe key, then flood 8+ other keys to rotate it out of
	// both generations.
	if a, _, _ := st.Ingest([]report.Event{ev("app.w", "probe", "u")}); a != 1 {
		t.Fatal("probe not admitted")
	}
	for i := 0; i < 12; i++ {
		st.Ingest([]report.Event{ev("app.w", fmt.Sprintf("fill-%d", i), "u")})
	}
	a, d, err := st.Ingest([]report.Event{ev("app.w", "probe", "u")})
	if err != nil || a != 1 || d != 0 {
		t.Fatalf("aged-out key = (%d, %d, %v), want re-admitted (1, 0, nil)", a, d, err)
	}
}

// TestShardMetrics: the per-shard obs families are populated.
func TestShardMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Obs: reg})
	defer st.Close()
	writeEvents(t, st, "app.m", 16)

	snap := reg.Snapshot()
	var events, records int64
	for name, v := range snap.Counters {
		switch {
		case hasPrefix(name, "market_ingest_events_total{"):
			events += v
		case hasPrefix(name, "market_wal_records_total{"):
			records += v
		}
	}
	if events != 16 {
		t.Errorf("sum of market_ingest_events_total = %d, want 16", events)
	}
	if records != 16 {
		t.Errorf("sum of market_wal_records_total = %d, want 16", records)
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
