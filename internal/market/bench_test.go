package market

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"bombdroid/internal/report"
)

// benchEvents builds n events spread over apps/users with mostly
// distinct keys — the realistic market mix where dedup checks run but
// rarely hit.
func benchEvents(n int) []report.Event {
	evs := make([]report.Event, n)
	for i := range evs {
		evs[i] = report.Event{
			App:    fmt.Sprintf("app-%d", i%64),
			Bomb:   fmt.Sprintf("bomb-%d", i%997),
			User:   fmt.Sprintf("user-%d", i),
			TimeMs: int64(i),
			Info:   "bench",
		}
	}
	return evs
}

// benchIngestHTTP drives the whole marketd stack — Client → HTTP →
// handler → shards → WAL — with 512-event batches and reports
// sustained events/sec plus the p99 per-batch latency. With traced
// set, every POST carries an obs.TraceHeader so the handler pays the
// full tracing tax (parse, ack-timing stopwatch, response header);
// the traced variant additionally reports the p99 of the daemon's
// receive→flush-ack time read back from obs.ServerTimingHeader.
func benchIngestHTTP(b *testing.B, traced bool) {
	st, _, err := Open(Config{Dir: b.TempDir(), Shards: 4, QueueCap: 1 << 16, DedupWindow: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client(), Trace: traced}

	const batch = 512
	evs := benchEvents(batch * 256)
	lat := make([]time.Duration, 0, b.N)
	var srvUs []int64
	if traced {
		srvUs = make([]int64, 0, b.N)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// Rotate through the pre-built pool, shifting User per lap so
		// keys stay novel and the dedup path is exercised, not hit.
		off := (i * batch) % len(evs)
		part := evs[off : off+batch]
		if i >= len(evs)/batch {
			lap := i / (len(evs) / batch)
			for j := range part {
				part[j].User = fmt.Sprintf("user-%d-%d", off+j, lap)
			}
		}
		t0 := time.Now()
		if _, err := cl.Reports().Post(context.Background(), part); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
		if traced {
			srvUs = append(srvUs, cl.ServerUs())
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "events_sec")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Microseconds())/1000.0, "p99_ms")
	if traced {
		sort.Slice(srvUs, func(i, j int) bool { return srvUs[i] < srvUs[j] })
		b.ReportMetric(float64(srvUs[len(srvUs)*99/100])/1000.0, "srv_p99_ms")
	}
}

// BenchmarkMarketIngestHTTP is the untraced baseline. This is the
// number the ISSUE acceptance bar (≥100k events/sec) reads.
func BenchmarkMarketIngestHTTP(b *testing.B) { benchIngestHTTP(b, false) }

// BenchmarkMarketIngestHTTPTraced is the same workload with every
// batch traced; scripts/bench.sh derives trace_overhead_pct from the
// events/sec delta against the untraced run (acceptance: ≤ 3%), and
// its client-observed p99 is BENCH_PR8.json's e2e_p99_ms — the
// generation→durable-ack distribution a traced producer sees.
func BenchmarkMarketIngestHTTPTraced(b *testing.B) { benchIngestHTTP(b, true) }

// BenchmarkTimeToVerdict measures the verdict-timeline read path: a
// single app with reports spread over event time, b.N k-way-merge
// rebuilds of its timeline. The reported ttv_ms metric is the app's
// time_to_verdict_ms (3rd distinct reporter at 250ms spacing → 500),
// which scripts/bench.sh surfaces so the value is pinned by a bench
// run, not hand-entered.
func BenchmarkTimeToVerdict(b *testing.B) {
	st, _, err := Open(Config{Dir: b.TempDir(), Shards: 4, QueueCap: 1 << 16, DedupWindow: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const n = 1000
	evs := make([]report.Event, n)
	for i := range evs {
		evs[i] = report.Event{App: "app-ttv", Bomb: "b", User: fmt.Sprintf("u-%d", i),
			TimeMs: 1000 + int64(i)*250, Info: "bench"}
	}
	if _, _, err := st.Ingest(evs); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var tl Timeline
	for i := 0; i < b.N; i++ {
		tl = st.Timeline("app-ttv")
	}
	b.StopTimer()
	if tl.TimeToVerdictMs != 500 {
		b.Fatalf("TimeToVerdictMs = %d, want 500", tl.TimeToVerdictMs)
	}
	b.ReportMetric(float64(tl.TimeToVerdictMs), "ttv_ms")
}

// BenchmarkWALReplay measures crash-recovery speed: how fast Open can
// re-admit a shard's worth of committed records. Checkpoints are
// disabled throughout so every iteration pays the full replay; the
// checkpointed restart path is measured by BenchmarkRestartReplay*.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	const n = 20_000
	seedStore(b, dir, n, -1)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		st, stats, err := Open(Config{Dir: dir, Shards: 1, QueueCap: 1 << 16, DedupWindow: 1 << 20, CheckpointEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Records != n {
			b.Fatalf("replayed %d records, want %d", stats.Records, n)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*n/elapsed.Seconds(), "events_sec")
}

// seedStore fills a fresh single-shard store under dir with n
// distinct-key events and closes it cleanly.
func seedStore(b *testing.B, dir string, n, ckptEvery int) {
	b.Helper()
	st, _, err := Open(Config{Dir: dir, Shards: 1, QueueCap: 1 << 16, DedupWindow: 1 << 20,
		MaxBatch: 1 << 14, CheckpointEvery: ckptEvery})
	if err != nil {
		b.Fatal(err)
	}
	evs := benchEvents(n)
	for off := 0; off < n; off += 4096 {
		end := off + 4096
		if end > n {
			end = n
		}
		if _, _, err := st.Ingest(evs[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchRestart times Open against a pre-seeded store of restartEvents
// records and reports milliseconds per restart — the number
// scripts/bench.sh compares across the full-replay and checkpointed
// variants (BENCH_PR6.json: restart_replay_full_ms vs
// restart_replay_checkpoint_ms).
const restartEvents = 120_000

func benchRestart(b *testing.B, ckptEvery int) {
	dir := b.TempDir()
	seedStore(b, dir, restartEvents, ckptEvery)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		st, stats, err := Open(Config{Dir: dir, Shards: 1, QueueCap: 1 << 16, DedupWindow: 1 << 20,
			CheckpointEvery: ckptEvery})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Records != restartEvents {
			b.Fatalf("restored %d records, want %d", stats.Records, restartEvents)
		}
		if ckptEvery > 0 && stats.Checkpoints != 1 {
			b.Fatalf("Checkpoints = %d, want 1", stats.Checkpoints)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(elapsed.Milliseconds())/float64(b.N), "ms_restart")
}

// BenchmarkRestartReplayFull: restart cost with checkpointing off —
// O(total history), the PR-5 baseline.
func BenchmarkRestartReplayFull(b *testing.B) { benchRestart(b, -1) }

// BenchmarkRestartReplayCheckpoint: restart cost restoring the
// shutdown checkpoint and replaying an empty tail — O(checkpoint).
func BenchmarkRestartReplayCheckpoint(b *testing.B) { benchRestart(b, 1<<16) }

// BenchmarkStoreIngest isolates the store (no HTTP): partition,
// dedup, group commit, WAL flush.
func BenchmarkStoreIngest(b *testing.B) {
	st, _, err := Open(Config{Dir: b.TempDir(), Shards: 4, QueueCap: 1 << 16, DedupWindow: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const batch = 512
	evs := benchEvents(batch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for j := range evs {
			evs[j].User = fmt.Sprintf("u-%d-%d", i, j)
		}
		if _, _, err := st.Ingest(evs); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "events_sec")
}
