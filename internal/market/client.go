package market

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// Client speaks marketd's v1 API. cmd/loadgen uses it for the
// fire-hose and fingerprint paths, the cluster router uses one per
// node for its fan-out and federation rounds, and it is the reference
// for anyone pointing a real device fleet at the daemon. Pointed at a
// router instead of a node it works unchanged — the router serves the
// same surface.
//
// The API is grouped by resource, every method ctx-first:
//
//	c.Reports().Post(ctx, evs)        POST /v1/reports
//	c.Verdicts().Get(ctx, app)        GET  /v1/apps/{app}/verdict
//	c.Timelines().Get(ctx, app)       GET  /v1/apps/{app}/timeline
//	c.Fingerprints().Put(ctx, fp)     POST /v1/apps/{app}/fingerprint
//	c.Fingerprints().Similar(ctx, a)  GET  /v1/apps/{app}/similar
//	c.Node().Get(ctx)                 GET  /v1/node
//
// The groups are free to construct (a one-pointer wrapper); all
// transport state lives on the Client.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Gzip compresses report-batch request bodies (Content-Encoding:
	// gzip).
	Gzip bool
	// Trace stamps each report POST with an obs.TraceHeader (a
	// synthetic per-batch id), which makes the daemon answer with its
	// receive→post-WAL-flush-ack time in obs.ServerTimingHeader; the
	// most recent reading is available from ServerUs. Device-side
	// pipelines propagate real per-report trace ids through
	// report.HTTPSink instead — this is the batch-level equivalent for
	// load tools and benchmarks. An explicit id passed to PostTraced
	// wins over the synthetic one.
	Trace bool
	// Retry, when set, runs Reports().Post and Fingerprints().Put
	// through the shared RetryPolicy so 429/503 answers are absorbed
	// inside the call. Nil posts once and surfaces ErrBackpressure/
	// ErrDegraded to the caller (whose own loop — loadgen's workers,
	// the router's fan-out — typically runs the same policy with
	// visible stats).
	Retry *RetryPolicy

	traceSeq int64 // batch counter behind synthetic trace ids
	serverUs int64 // last obs.ServerTimingHeader reading
}

// ServerUs returns the daemon's most recent receive→flush-ack timing
// (µs), 0 before any traced POST completed.
func (c *Client) ServerUs() int64 { return atomic.LoadInt64(&c.serverUs) }

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PostResult is the daemon's ack for one report batch.
type PostResult struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// ReportsAPI groups the report-ingestion endpoints.
type ReportsAPI struct{ c *Client }

// Reports accesses the report-ingestion endpoints.
func (c *Client) Reports() ReportsAPI { return ReportsAPI{c} }

// Post sends one batch of events to POST /v1/reports. A 429 surfaces
// as ErrBackpressure, a 503 as ErrDegraded, and a 421 as ErrNotOwner
// (the batch reached a node that does not own its keys), so callers
// can share the store's retry logic. With c.Retry set the transient
// pair is retried in place.
func (a ReportsAPI) Post(ctx context.Context, evs []report.Event) (PostResult, error) {
	if a.c.Retry != nil {
		var res PostResult
		_, err := a.c.Retry.Do(ctx, func(ctx context.Context) error {
			var err error
			res, err = a.c.post(ctx, evs, "")
			return err
		})
		return res, err
	}
	return a.c.post(ctx, evs, "")
}

// PostTraced is Post with an explicit trace id on the wire — the
// router uses it to propagate a device report's obs.TraceHeader
// through the fan-out hop instead of minting a synthetic batch id.
func (a ReportsAPI) PostTraced(ctx context.Context, evs []report.Event, traceID string) (PostResult, error) {
	return a.c.post(ctx, evs, traceID)
}

func (c *Client) post(ctx context.Context, evs []report.Event, traceID string) (PostResult, error) {
	var buf bytes.Buffer
	var w io.Writer = &buf
	var zw *gzip.Writer
	if c.Gzip {
		zw = gzip.NewWriter(&buf)
		w = zw
	}
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return PostResult{}, err
		}
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return PostResult{}, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/reports", &buf)
	if err != nil {
		return PostResult{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.Gzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if traceID == "" && c.Trace {
		seq := atomic.AddInt64(&c.traceSeq, 1)
		traceID = obs.TraceID{0x6c6f6164, uint64(seq)}.String()
	}
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return PostResult{}, err
	}
	defer resp.Body.Close()
	if traceID != "" {
		if us, err := strconv.ParseInt(resp.Header.Get(obs.ServerTimingHeader), 10, 64); err == nil {
			atomic.StoreInt64(&c.serverUs, us)
		}
	}
	if err := statusErr(resp, "POST /v1/reports"); err != nil {
		return PostResult{}, err
	}
	var res PostResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return PostResult{}, err
	}
	return res, nil
}

// statusErr maps a non-200 response onto the shared error vocabulary:
// 429 → ErrBackpressure and 503 → ErrDegraded (so client-side retry
// logic matches the store's), 421 → ErrNotOwner. Anything else keeps
// the status and a body excerpt. The body is consumed on error.
func statusErr(resp *http.Response, what string) error {
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return ErrBackpressure
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return ErrDegraded
	case http.StatusMisdirectedRequest:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w (%s)", ErrNotOwner, bytes.TrimSpace(body))
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("market: %s: %s: %s", what, resp.Status, bytes.TrimSpace(body))
	}
}

// getJSON fetches path and decodes the 200 body into out. A 404 maps
// to notFound when the caller supplies one (resources that can
// legitimately be absent, like fingerprints).
func (c *Client) getJSON(ctx context.Context, path, what string, notFound error, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && notFound != nil {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%w: GET %s", notFound, what)
	}
	if err := statusErr(resp, "GET "+what); err != nil {
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON sends in as a JSON body and decodes the 200 answer into
// out, with the same status mapping as statusErr. A 413 maps to
// tooLarge when the caller supplies one (permanent size refusals the
// caller must not retry verbatim).
func (c *Client) postJSON(ctx context.Context, path, what string, tooLarge error, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge && tooLarge != nil {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: POST %s: %s", tooLarge, what, bytes.TrimSpace(body))
	}
	if err := statusErr(resp, "POST "+what); err != nil {
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// VerdictsAPI groups the verdict read endpoints.
type VerdictsAPI struct{ c *Client }

// Verdicts accesses the verdict read endpoints.
func (c *Client) Verdicts() VerdictsAPI { return VerdictsAPI{c} }

// Get fetches the app's fused multi-channel Verdict.
func (a VerdictsAPI) Get(ctx context.Context, app string) (Verdict, error) {
	var v Verdict
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/verdict", "verdict", nil, &v)
	return v, err
}

// Reports fetches just the app's reports channel
// (?channel=reports) — the summable per-node piece federation
// consumes.
func (a VerdictsAPI) Reports(ctx context.Context, app string) (ReportsChannel, error) {
	var ch ReportsChannel
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/verdict?channel=reports", "verdict?channel=reports", nil, &ch)
	return ch, err
}

// TimelinesAPI groups the timeline read endpoints.
type TimelinesAPI struct{ c *Client }

// Timelines accesses the timeline read endpoints.
func (c *Client) Timelines() TimelinesAPI { return TimelinesAPI{c} }

// Get fetches the app's rendered verdict Timeline.
func (a TimelinesAPI) Get(ctx context.Context, app string) (Timeline, error) {
	var tl Timeline
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/timeline", "timeline", nil, &tl)
	return tl, err
}

// Raw fetches the node's per-shard timeline parts (?raw=1), the
// mergeable form federation ships instead of the rendered timeline
// (whose entries lack the tie hashes an exact cross-node merge
// needs).
func (a TimelinesAPI) Raw(ctx context.Context, app string) (RawTimeline, error) {
	var raw RawTimeline
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/timeline?raw=1", "timeline?raw=1", nil, &raw)
	return raw, err
}

// FingerprintsAPI groups the resource-fingerprint endpoints.
type FingerprintsAPI struct{ c *Client }

// Fingerprints accesses the resource-fingerprint endpoints.
func (c *Client) Fingerprints() FingerprintsAPI { return FingerprintsAPI{c} }

// Put uploads fp.App's fingerprint. The ack arrives after the
// record's WAL flush (Updated false when the stored set was already
// identical). With c.Retry set, 429/503 answers are retried in place.
func (a FingerprintsAPI) Put(ctx context.Context, fp Fingerprint) (FingerprintAck, error) {
	put := func(ctx context.Context) (FingerprintAck, error) {
		var ack FingerprintAck
		err := a.c.postJSON(ctx, "/v1/apps/"+fp.App+"/fingerprint", "fingerprint", ErrFingerprintTooLarge, fp, &ack)
		return ack, err
	}
	if a.c.Retry != nil {
		var ack FingerprintAck
		_, err := a.c.Retry.Do(ctx, func(ctx context.Context) error {
			var err error
			ack, err = put(ctx)
			return err
		})
		return ack, err
	}
	return put(ctx)
}

// Get fetches the app's stored Fingerprint; ErrNoFingerprint when the
// app never uploaded one.
func (a FingerprintsAPI) Get(ctx context.Context, app string) (Fingerprint, error) {
	var fp Fingerprint
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/fingerprint", "fingerprint", ErrNoFingerprint, &fp)
	return fp, err
}

// Similar fetches the app's top-K near-duplicate neighbors;
// ErrNoFingerprint when the app never uploaded one.
func (a FingerprintsAPI) Similar(ctx context.Context, app string) (Similar, error) {
	var sim Similar
	err := a.c.getJSON(ctx, "/v1/apps/"+app+"/similar", "similar", ErrNoFingerprint, &sim)
	return sim, err
}

// Probe runs the federation candidate round against one node.
func (a FingerprintsAPI) Probe(ctx context.Context, req ProbeRequest) (ProbeResponse, error) {
	var resp ProbeResponse
	err := a.c.postJSON(ctx, "/v1/similarity/probe", "similarity/probe", nil, req, &resp)
	return resp, err
}

// DF runs the federation weighting round against one node.
func (a FingerprintsAPI) DF(ctx context.Context, req DFRequest) (DFResponse, error) {
	var resp DFResponse
	err := a.c.postJSON(ctx, "/v1/similarity/df", "similarity/df", nil, req, &resp)
	return resp, err
}

// NodeAPI groups the node-descriptor endpoint.
type NodeAPI struct{ c *Client }

// Node accesses the node-descriptor endpoint.
func (c *Client) Node() NodeAPI { return NodeAPI{c} }

// Get fetches GET /v1/node, the node's cluster descriptor.
func (a NodeAPI) Get(ctx context.Context) (NodeDesc, error) {
	var d NodeDesc
	err := a.c.getJSON(ctx, "/v1/node", "node", nil, &d)
	return d, err
}
