package market

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// Client speaks marketd's ingestion API. cmd/loadgen uses it for the
// fire-hose path; it is also the reference for anyone pointing a real
// device fleet at the daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Gzip compresses request bodies (Content-Encoding: gzip).
	Gzip bool
	// Trace stamps each POST with an obs.TraceHeader (a synthetic
	// per-batch id), which makes the daemon answer with its
	// receive→post-WAL-flush-ack time in obs.ServerTimingHeader; the
	// most recent reading is available from ServerUs. Device-side
	// pipelines propagate real per-report trace ids through
	// report.HTTPSink instead — this is the batch-level equivalent for
	// load tools and benchmarks.
	Trace bool

	traceSeq int64 // batch counter behind synthetic trace ids
	serverUs int64 // last obs.ServerTimingHeader reading
}

// ServerUs returns the daemon's most recent receive→flush-ack timing
// (µs), 0 before any traced POST completed.
func (c *Client) ServerUs() int64 { return atomic.LoadInt64(&c.serverUs) }

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PostResult is the daemon's ack for one batch.
type PostResult struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// Post sends one batch of events to POST /v1/reports. A 429 surfaces
// as ErrBackpressure and a 503 as ErrDegraded, so callers can share
// the store's retry logic.
func (c *Client) Post(evs []report.Event) (PostResult, error) {
	var buf bytes.Buffer
	var w io.Writer = &buf
	var zw *gzip.Writer
	if c.Gzip {
		zw = gzip.NewWriter(&buf)
		w = zw
	}
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return PostResult{}, err
		}
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return PostResult{}, err
		}
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/reports", &buf)
	if err != nil {
		return PostResult{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.Gzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if c.Trace {
		seq := atomic.AddInt64(&c.traceSeq, 1)
		req.Header.Set(obs.TraceHeader, obs.TraceID{0x6c6f6164, uint64(seq)}.String())
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return PostResult{}, err
	}
	defer resp.Body.Close()
	if c.Trace {
		if us, err := strconv.ParseInt(resp.Header.Get(obs.ServerTimingHeader), 10, 64); err == nil {
			atomic.StoreInt64(&c.serverUs, us)
		}
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return PostResult{}, ErrBackpressure
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return PostResult{}, ErrDegraded
	case resp.StatusCode != http.StatusOK:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return PostResult{}, fmt.Errorf("market: POST /v1/reports: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var res PostResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return PostResult{}, err
	}
	return res, nil
}

// Verdict fetches GET /v1/apps/{app}/verdict.
func (c *Client) Verdict(app string) (Verdict, error) {
	resp, err := c.client().Get(c.BaseURL + "/v1/apps/" + app + "/verdict")
	if err != nil {
		return Verdict{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Verdict{}, fmt.Errorf("market: GET verdict: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// Timeline fetches GET /v1/apps/{app}/timeline.
func (c *Client) Timeline(app string) (Timeline, error) {
	resp, err := c.client().Get(c.BaseURL + "/v1/apps/" + app + "/timeline")
	if err != nil {
		return Timeline{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Timeline{}, fmt.Errorf("market: GET timeline: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var tl Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		return Timeline{}, err
	}
	return tl, nil
}
