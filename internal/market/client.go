package market

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// Client speaks marketd's ingestion API. cmd/loadgen uses it for the
// fire-hose path, the cluster router uses one per node for its
// fan-out, and it is the reference for anyone pointing a real device
// fleet at the daemon. Pointed at a router instead of a node it works
// unchanged — the router serves the same surface.
//
// Per the repository's ctx-first convention (doc.go), the canonical
// entry points take a context (PostCtx, VerdictCtx, TimelineCtx); the
// ctx-less names are deprecated wrappers over context.Background().
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Gzip compresses request bodies (Content-Encoding: gzip).
	Gzip bool
	// Trace stamps each POST with an obs.TraceHeader (a synthetic
	// per-batch id), which makes the daemon answer with its
	// receive→post-WAL-flush-ack time in obs.ServerTimingHeader; the
	// most recent reading is available from ServerUs. Device-side
	// pipelines propagate real per-report trace ids through
	// report.HTTPSink instead — this is the batch-level equivalent for
	// load tools and benchmarks. An explicit id passed to
	// PostTracedCtx wins over the synthetic one.
	Trace bool
	// Retry, when set, runs PostCtx through the shared RetryPolicy so
	// 429/503 answers are absorbed inside the call. Nil posts once and
	// surfaces ErrBackpressure/ErrDegraded to the caller (whose own
	// loop — loadgen's workers, the router's fan-out — typically runs
	// the same policy with visible stats).
	Retry *RetryPolicy

	traceSeq int64 // batch counter behind synthetic trace ids
	serverUs int64 // last obs.ServerTimingHeader reading
}

// ServerUs returns the daemon's most recent receive→flush-ack timing
// (µs), 0 before any traced POST completed.
func (c *Client) ServerUs() int64 { return atomic.LoadInt64(&c.serverUs) }

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PostResult is the daemon's ack for one batch.
type PostResult struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// PostCtx sends one batch of events to POST /v1/reports. A 429
// surfaces as ErrBackpressure, a 503 as ErrDegraded, and a 421 as
// ErrNotOwner (the batch reached a node that does not own its keys),
// so callers can share the store's retry logic. With c.Retry set the
// transient pair is retried in place.
func (c *Client) PostCtx(ctx context.Context, evs []report.Event) (PostResult, error) {
	if c.Retry != nil {
		var res PostResult
		_, err := c.Retry.Do(ctx, func(ctx context.Context) error {
			var err error
			res, err = c.post(ctx, evs, "")
			return err
		})
		return res, err
	}
	return c.post(ctx, evs, "")
}

// PostTracedCtx is PostCtx with an explicit trace id on the wire —
// the router uses it to propagate a device report's obs.TraceHeader
// through the fan-out hop instead of minting a synthetic batch id.
func (c *Client) PostTracedCtx(ctx context.Context, evs []report.Event, traceID string) (PostResult, error) {
	return c.post(ctx, evs, traceID)
}

// Post is PostCtx without cancellation.
//
// Deprecated: use PostCtx, which honors context cancellation.
func (c *Client) Post(evs []report.Event) (PostResult, error) {
	return c.PostCtx(context.Background(), evs)
}

func (c *Client) post(ctx context.Context, evs []report.Event, traceID string) (PostResult, error) {
	var buf bytes.Buffer
	var w io.Writer = &buf
	var zw *gzip.Writer
	if c.Gzip {
		zw = gzip.NewWriter(&buf)
		w = zw
	}
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return PostResult{}, err
		}
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return PostResult{}, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/reports", &buf)
	if err != nil {
		return PostResult{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.Gzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if traceID == "" && c.Trace {
		seq := atomic.AddInt64(&c.traceSeq, 1)
		traceID = obs.TraceID{0x6c6f6164, uint64(seq)}.String()
	}
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return PostResult{}, err
	}
	defer resp.Body.Close()
	if traceID != "" {
		if us, err := strconv.ParseInt(resp.Header.Get(obs.ServerTimingHeader), 10, 64); err == nil {
			atomic.StoreInt64(&c.serverUs, us)
		}
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return PostResult{}, ErrBackpressure
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return PostResult{}, ErrDegraded
	case resp.StatusCode == http.StatusMisdirectedRequest:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return PostResult{}, fmt.Errorf("%w (%s)", ErrNotOwner, bytes.TrimSpace(body))
	case resp.StatusCode != http.StatusOK:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return PostResult{}, fmt.Errorf("market: POST /v1/reports: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var res PostResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return PostResult{}, err
	}
	return res, nil
}

// getJSON fetches path and decodes the 200 body into out.
func (c *Client) getJSON(ctx context.Context, path, what string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("market: GET %s: %s: %s", what, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// VerdictCtx fetches GET /v1/apps/{app}/verdict.
func (c *Client) VerdictCtx(ctx context.Context, app string) (Verdict, error) {
	var v Verdict
	err := c.getJSON(ctx, "/v1/apps/"+app+"/verdict", "verdict", &v)
	return v, err
}

// Verdict is VerdictCtx without cancellation.
//
// Deprecated: use VerdictCtx, which honors context cancellation.
func (c *Client) Verdict(app string) (Verdict, error) {
	return c.VerdictCtx(context.Background(), app)
}

// TimelineCtx fetches GET /v1/apps/{app}/timeline.
func (c *Client) TimelineCtx(ctx context.Context, app string) (Timeline, error) {
	var tl Timeline
	err := c.getJSON(ctx, "/v1/apps/"+app+"/timeline", "timeline", &tl)
	return tl, err
}

// Timeline is TimelineCtx without cancellation.
//
// Deprecated: use TimelineCtx, which honors context cancellation.
func (c *Client) Timeline(app string) (Timeline, error) {
	return c.TimelineCtx(context.Background(), app)
}

// TimelineRawCtx fetches GET /v1/apps/{app}/timeline?raw=1 — the
// node's per-shard timeline parts, the mergeable form federation
// ships instead of the rendered timeline (whose entries lack the tie
// hashes an exact cross-node merge needs).
func (c *Client) TimelineRawCtx(ctx context.Context, app string) (RawTimeline, error) {
	var raw RawTimeline
	err := c.getJSON(ctx, "/v1/apps/"+app+"/timeline?raw=1", "timeline?raw=1", &raw)
	return raw, err
}

// NodeCtx fetches GET /v1/node, the node's cluster descriptor.
func (c *Client) NodeCtx(ctx context.Context) (NodeDesc, error) {
	var d NodeDesc
	err := c.getJSON(ctx, "/v1/node", "node", &d)
	return d, err
}
