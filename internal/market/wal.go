package market

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"bombdroid/internal/market/marketfs"
)

// The WAL is the daemon's durability contract: an ingestion request
// is acked only after every novel event in it is in a shard's log and
// flushed to the OS. Each shard owns a directory of append-only
// segment files:
//
//	shard-003/wal-00000000.log
//	shard-003/wal-00000001.log
//	...
//
// and each record is length-prefixed and checksummed:
//
//	| length uint32 LE | crc32c uint32 LE | payload (JSON Event) |
//
// The CRC is Castagnoli over the payload. Segments rotate once they
// pass SegmentBytes; only the highest-numbered segment is ever
// written, so a crash can tear at most the tail of the last segment.
// Replay treats a bad record there as the torn tail — it truncates
// the file back to the last good record and carries on — while a bad
// record in any earlier segment is real corruption and fails Open.
//
// All filesystem access goes through marketfs.FS, so the identical
// code paths run against the real OS and against the crash-injecting
// harness in the torture tests. With a checkpoint present, Open
// replays only the tail: segments before the checkpoint position are
// skipped entirely (and eventually compacted away by the checkpoint
// machinery in checkpoint.go).

const (
	walHeaderLen = 8
	// maxWALRecord bounds a single record; a length prefix beyond it
	// is garbage (torn tail or corruption), not a huge event.
	maxWALRecord = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadStart rejects a replay start position that the on-disk
// segments cannot satisfy — the checkpoint claiming it is stale or
// corrupt, and the caller should fall back to an older one (or a full
// replay). Guaranteed to be returned before any replay callback runs.
var errBadStart = errors.New("market: replay start position not on disk")

// walPos is a durable position in a shard's log: byte offset Off
// within segment Seg. It is the cursor a checkpoint stores.
type walPos struct {
	Seg int   `json:"seg"`
	Off int64 `json:"off"`
}

// wal is one shard's segmented append-only log. All methods are
// called from the owning shard's worker goroutine only.
type wal struct {
	fs       marketfs.FS
	dir      string
	segBytes int64
	fsync    bool

	seg  int // index of the open segment
	size int64
	f    marketfs.File
	w    *bufio.Writer
}

// ReplayStats summarizes what Open recovered from disk.
type ReplayStats struct {
	Segments       int   `json:"segments"`
	Records        int64 `json:"records"`
	TailRecords    int64 `json:"tail_records"`
	TornTails      int   `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Checkpoints counts shards whose state was restored from a
	// checkpoint snapshot instead of a full WAL replay; Records then
	// includes the checkpoint's covered records and TailRecords only
	// what was replayed past it.
	Checkpoints int `json:"checkpoints"`
	// CompactedSegments counts WAL segments deleted at open because
	// they lay wholly behind the restored checkpoint.
	CompactedSegments int `json:"compacted_segments"`
}

func (a *ReplayStats) add(b ReplayStats) {
	a.Segments += b.Segments
	a.Records += b.Records
	a.TailRecords += b.TailRecords
	a.TornTails += b.TornTails
	a.TruncatedBytes += b.TruncatedBytes
	a.Checkpoints += b.Checkpoints
	a.CompactedSegments += b.CompactedSegments
}

func segName(i int) string { return fmt.Sprintf("wal-%08d.log", i) }

func segJoin(dir string, i int) string { return dir + "/" + segName(i) }

// listSegments returns the sorted segment indices present in dir.
func listSegments(fsys marketfs.FS, dir string) ([]int, error) {
	names, err := fsys.Glob(dir, "wal-*.log")
	if err != nil {
		return nil, err
	}
	segs := make([]int, 0, len(names))
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(baseName(name), "wal-%08d.log", &idx); err != nil {
			return nil, fmt.Errorf("market: unrecognized segment %s", name)
		}
		segs = append(segs, idx)
	}
	sort.Ints(segs)
	return segs, nil
}

func baseName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}

// openWAL replays dir's segments from start onward (creating the
// directory and first segment if absent), feeding each record's raw
// payload to replay in record order, then opens the last segment for
// appending. A replay error is a format bug (the CRC already passed)
// and fails the open. Segments before start.Seg are skipped — the
// caller's checkpoint already covers them. A start position that no
// on-disk segment can satisfy returns errBadStart before replay
// touches anything, so the caller can fall back to an older
// checkpoint or a full replay.
func openWAL(fsys marketfs.FS, dir string, segBytes int64, fsync bool, start walPos, replay func([]byte) error) (*wal, ReplayStats, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, ReplayStats{}, err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, ReplayStats{}, err
	}

	if start.Seg > 0 || start.Off > 0 {
		// A checkpoint's position must land inside an existing segment
		// that is at least Off bytes long: the checkpoint protocol
		// syncs the WAL through the position before committing, so a
		// shorter (or missing) segment means the checkpoint is not
		// trustworthy here.
		ok := false
		for _, idx := range segs {
			if idx == start.Seg {
				ok = true
			}
		}
		if !ok {
			return nil, ReplayStats{}, fmt.Errorf("%w: segment %d missing", errBadStart, start.Seg)
		}
		f, err := fsys.Open(segJoin(dir, start.Seg))
		if err != nil {
			return nil, ReplayStats{}, err
		}
		size, err := f.Size()
		f.Close()
		if err != nil {
			return nil, ReplayStats{}, err
		}
		if size < start.Off {
			return nil, ReplayStats{}, fmt.Errorf("%w: segment %d is %d bytes, checkpoint points at %d",
				errBadStart, start.Seg, size, start.Off)
		}
	}

	var stats ReplayStats
	last := 0
	for _, idx := range segs {
		last = idx
	}
	for i, idx := range segs {
		if idx < start.Seg {
			continue // wholly behind the checkpoint
		}
		off := int64(0)
		if idx == start.Seg {
			off = start.Off
		}
		isLast := i == len(segs)-1
		segStats, err := replaySegment(fsys, segJoin(dir, idx), isLast, off, replay)
		if err != nil {
			return nil, ReplayStats{}, err
		}
		stats.add(segStats)
		stats.Segments++
	}
	if len(segs) == 0 {
		stats.Segments = 1 // the fresh segment created below
	}

	w := &wal{fs: fsys, dir: dir, segBytes: segBytes, fsync: fsync, seg: last}
	if err := w.openSegment(); err != nil {
		return nil, ReplayStats{}, err
	}
	return w, stats, nil
}

// replaySegment streams one segment's records into replay, starting
// at byte offset startOff. A bad record (short header, absurd length,
// short payload, CRC mismatch) in the last segment is the torn tail:
// the file is truncated back to the last good record. Anywhere else
// it is corruption and an error.
func replaySegment(fsys marketfs.FS, name string, isLast bool, startOff int64, replay func([]byte) error) (ReplayStats, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return ReplayStats{}, err
	}
	defer f.Close()
	fileSize, err := f.Size()
	if err != nil {
		return ReplayStats{}, err
	}
	if startOff > 0 {
		if _, err := f.Seek(startOff, io.SeekStart); err != nil {
			return ReplayStats{}, err
		}
	}

	var stats ReplayStats
	r := bufio.NewReaderSize(f, 1<<20)
	off := startOff // offset of the record being read
	var hdr [walHeaderLen]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return stats, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return tornTail(f, name, isLast, off, fileSize, stats)
			}
			// A real read error (bad disk, not a short file) must not
			// truncate: the bytes past off may be good, acked records.
			return stats, fmt.Errorf("market: reading %s at offset %d: %w", name, off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecord {
			return tornTail(f, name, isLast, off, fileSize, stats)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return tornTail(f, name, isLast, off, fileSize, stats)
			}
			return stats, fmt.Errorf("market: reading %s at offset %d: %w", name, off, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return tornTail(f, name, isLast, off, fileSize, stats)
		}
		if err := replay(payload); err != nil {
			// The CRC matched, so these bytes were written exactly as
			// committed: an undecodable record is a format bug, not a
			// torn tail, at any position.
			return stats, fmt.Errorf("market: %s: record at %d: %w", name, off, err)
		}
		stats.Records++
		stats.TailRecords++
		off += walHeaderLen + int64(length)
	}
}

// tornTail resolves a bad record at offset off: truncate if this is
// the writable tail of the log, error otherwise.
func tornTail(f marketfs.File, name string, isLast bool, off, fileSize int64, stats ReplayStats) (ReplayStats, error) {
	if !isLast {
		return stats, fmt.Errorf("market: %s: corrupt record at offset %d in a sealed segment", name, off)
	}
	if err := f.Truncate(off); err != nil {
		return stats, fmt.Errorf("market: truncating torn tail of %s: %w", name, err)
	}
	stats.TornTails++
	stats.TruncatedBytes += fileSize - off
	return stats, nil
}

func (w *wal) openSegment() error {
	f, err := w.fs.OpenAppend(segJoin(w.dir, w.seg))
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	if w.fsync {
		// A freshly created segment file must itself survive a crash
		// before any record in it can: sync the directory entry.
		if err := w.fs.SyncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f, w.w, w.size = f, bufio.NewWriterSize(f, 1<<20), size
	return nil
}

// Append writes the payloads as one committed batch: every record is
// buffered, then the buffer is flushed (and fsynced when configured)
// so the bytes are in the OS before the caller acks. Rotation happens
// after the commit, so a batch never straddles segments.
//
// Payloads outside [1,maxWALRecord] bytes are rejected before any
// byte is written: replay treats such a length prefix as a torn tail
// or corruption, so appending one would poison the log — the record
// (and everything after it) would be lost or refuse to replay.
func (w *wal) Append(payloads [][]byte) error {
	for _, p := range payloads {
		if len(p) == 0 || len(p) > maxWALRecord {
			return fmt.Errorf("market: wal record of %d bytes outside [1,%d]", len(p), maxWALRecord)
		}
	}
	var hdr [walHeaderLen]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.w.Write(p); err != nil {
			return err
		}
		w.size += walHeaderLen + int64(len(p))
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if w.size >= w.segBytes {
		return w.rotate()
	}
	return nil
}

func (w *wal) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seg++
	return w.openSegment()
}

// Position reports the durable cursor after the last committed batch:
// everything before it is flushed (and, after Sync, fsynced). Only
// valid between Appends, from the owning worker.
func (w *wal) Position() walPos { return walPos{Seg: w.seg, Off: w.size} }

// Sync flushes and fsyncs the open segment — the checkpoint protocol
// calls it before committing a snapshot, so a checkpoint can never
// point past durable bytes even when routine commits skip fsync.
func (w *wal) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// RemoveBehind deletes segments wholly behind seg (index < seg) —
// compaction once a durable checkpoint covers them. The segment
// containing the checkpoint position is never touched. Returns how
// many segments were reclaimed.
func (w *wal) RemoveBehind(seg int) (int, error) {
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, idx := range segs {
		if idx >= seg {
			break
		}
		if err := w.fs.Remove(segJoin(w.dir, idx)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := w.fs.SyncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Segments reports how many segment files exist on disk right now.
func (w *wal) Segments() int { return w.seg + 1 }

func (w *wal) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
