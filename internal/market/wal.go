package market

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bombdroid/internal/report"
)

// The WAL is the daemon's durability contract: an ingestion request
// is acked only after every novel event in it is in a shard's log and
// flushed to the OS. Each shard owns a directory of append-only
// segment files:
//
//	shard-003/wal-00000000.log
//	shard-003/wal-00000001.log
//	...
//
// and each record is length-prefixed and checksummed:
//
//	| length uint32 LE | crc32c uint32 LE | payload (JSON Event) |
//
// The CRC is Castagnoli over the payload. Segments rotate once they
// pass SegmentBytes; only the highest-numbered segment is ever
// written, so a crash can tear at most the tail of the last segment.
// Replay treats a bad record there as the torn tail — it truncates
// the file back to the last good record and carries on — while a bad
// record in any earlier segment is real corruption and fails Open.

const (
	walHeaderLen = 8
	// maxWALRecord bounds a single record; a length prefix beyond it
	// is garbage (torn tail or corruption), not a huge event.
	maxWALRecord = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wal is one shard's segmented append-only log. All methods are
// called from the owning shard's worker goroutine only.
type wal struct {
	dir      string
	segBytes int64
	fsync    bool

	seg  int // index of the open segment
	size int64
	f    *os.File
	w    *bufio.Writer
}

// ReplayStats summarizes what Open recovered from disk.
type ReplayStats struct {
	Segments       int   `json:"segments"`
	Records        int64 `json:"records"`
	TornTails      int   `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
}

func (a *ReplayStats) add(b ReplayStats) {
	a.Segments += b.Segments
	a.Records += b.Records
	a.TornTails += b.TornTails
	a.TruncatedBytes += b.TruncatedBytes
}

func segName(i int) string { return fmt.Sprintf("wal-%08d.log", i) }

// openWAL replays every segment in dir (creating the directory and
// first segment if absent), feeding each decoded event to replay in
// record order, then opens the last segment for appending.
func openWAL(dir string, segBytes int64, fsync bool, replay func(report.Event)) (*wal, ReplayStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ReplayStats{}, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, ReplayStats{}, err
	}
	sort.Strings(names)

	var stats ReplayStats
	last := 0
	for i, name := range names {
		isLast := i == len(names)-1
		segStats, err := replaySegment(name, isLast, replay)
		if err != nil {
			return nil, ReplayStats{}, err
		}
		stats.add(segStats)
		if _, err := fmt.Sscanf(filepath.Base(name), "wal-%08d.log", &last); err != nil {
			return nil, ReplayStats{}, fmt.Errorf("market: unrecognized segment %s", name)
		}
	}
	stats.Segments = len(names)
	if len(names) == 0 {
		stats.Segments = 1 // the fresh segment created below
	}

	w := &wal{dir: dir, segBytes: segBytes, fsync: fsync, seg: last}
	if err := w.openSegment(); err != nil {
		return nil, ReplayStats{}, err
	}
	return w, stats, nil
}

// replaySegment streams one segment's records into replay. A bad
// record (short header, absurd length, short payload, CRC mismatch)
// in the last segment is the torn tail: the file is truncated back to
// the last good record. Anywhere else it is corruption and an error.
func replaySegment(name string, isLast bool, replay func(report.Event)) (ReplayStats, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return ReplayStats{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return ReplayStats{}, err
	}
	fileSize := info.Size()

	var stats ReplayStats
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64 // offset of the record being read
	var hdr [walHeaderLen]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return stats, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return tornTail(f, name, isLast, off, fileSize, stats)
			}
			// A real read error (bad disk, not a short file) must not
			// truncate: the bytes past off may be good, acked records.
			return stats, fmt.Errorf("market: reading %s at offset %d: %w", name, off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecord {
			return tornTail(f, name, isLast, off, fileSize, stats)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return tornTail(f, name, isLast, off, fileSize, stats)
			}
			return stats, fmt.Errorf("market: reading %s at offset %d: %w", name, off, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return tornTail(f, name, isLast, off, fileSize, stats)
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			// The CRC matched, so these bytes were written exactly as
			// committed: an undecodable record is a format bug, not a
			// torn tail, at any position.
			return stats, fmt.Errorf("market: %s: record at %d: %w", name, off, err)
		}
		replay(ev)
		stats.Records++
		off += walHeaderLen + int64(length)
	}
}

// tornTail resolves a bad record at offset off: truncate if this is
// the writable tail of the log, error otherwise.
func tornTail(f *os.File, name string, isLast bool, off, fileSize int64, stats ReplayStats) (ReplayStats, error) {
	if !isLast {
		return stats, fmt.Errorf("market: %s: corrupt record at offset %d in a sealed segment", name, off)
	}
	if err := f.Truncate(off); err != nil {
		return stats, fmt.Errorf("market: truncating torn tail of %s: %w", name, err)
	}
	stats.TornTails++
	stats.TruncatedBytes += fileSize - off
	return stats, nil
}

func (w *wal) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.w, w.size = f, bufio.NewWriterSize(f, 1<<20), info.Size()
	return nil
}

// Append writes the payloads as one committed batch: every record is
// buffered, then the buffer is flushed (and fsynced when configured)
// so the bytes are in the OS before the caller acks. Rotation happens
// after the commit, so a batch never straddles segments.
//
// Payloads outside [1,maxWALRecord] bytes are rejected before any
// byte is written: replay treats such a length prefix as a torn tail
// or corruption, so appending one would poison the log — the record
// (and everything after it) would be lost or refuse to replay.
func (w *wal) Append(payloads [][]byte) error {
	for _, p := range payloads {
		if len(p) == 0 || len(p) > maxWALRecord {
			return fmt.Errorf("market: wal record of %d bytes outside [1,%d]", len(p), maxWALRecord)
		}
	}
	var hdr [walHeaderLen]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.w.Write(p); err != nil {
			return err
		}
		w.size += walHeaderLen + int64(len(p))
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if w.size >= w.segBytes {
		return w.rotate()
	}
	return nil
}

func (w *wal) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seg++
	return w.openSegment()
}

// Segments reports how many segment files exist on disk right now.
func (w *wal) Segments() int { return w.seg + 1 }

func (w *wal) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
