package market

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/report"
)

// TestCheckpointEncodeDecode round-trips the binary format, including
// the awkward corners: empty maps, a nil prev generation, binary-ish
// keys.
func TestCheckpointEncodeDecode(t *testing.T) {
	c := &checkpoint{
		seq:     7,
		pos:     walPos{Seg: 3, Off: 12345},
		records: 99,
		apps:    map[string]int64{"app.a": 4, "app\x00weird": 1},
		cur:     map[string]struct{}{"k1": {}, "": {}},
		prev:    map[string]struct{}{"older-key": {}},
	}
	got, err := decodeCheckpoint(c.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.seq != c.seq || got.pos != c.pos || got.records != c.records {
		t.Errorf("header round-trip: got %+v", got)
	}
	if len(got.apps) != 2 || got.apps["app.a"] != 4 {
		t.Errorf("apps round-trip: %v", got.apps)
	}
	if _, ok := got.cur[""]; !ok || len(got.cur) != 2 {
		t.Errorf("cur round-trip: %v", got.cur)
	}
	if _, ok := got.prev["older-key"]; !ok {
		t.Errorf("prev round-trip: %v", got.prev)
	}

	empty := &checkpoint{seq: 1, pos: walPos{}, apps: map[string]int64{},
		cur: map[string]struct{}{}, prev: nil}
	if _, err := decodeCheckpoint(empty.encode()); err != nil {
		t.Fatalf("empty checkpoint: %v", err)
	}

	// Corruption in any byte must fail the decode, not mis-parse.
	enc := c.encode()
	for _, i := range []int{0, len(ckptMagic) + 1, len(ckptMagic) + 5, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, err := decodeCheckpoint(bad); err == nil {
			t.Errorf("flip at %d: decode accepted corrupt checkpoint", i)
		}
	}
	if _, err := decodeCheckpoint(enc[:len(enc)-3]); err == nil {
		t.Error("truncated checkpoint decoded")
	}
}

// TestCheckpointRestartFast: the core promise — a clean shutdown
// writes a snapshot, and the next open restores it without replaying
// any tail, with identical verdicts and dedup state.
func TestCheckpointRestartFast(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 2}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.fast", 100)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Checkpoints != 2 {
		t.Errorf("Checkpoints = %d, want 2 (both shards restored)", stats.Checkpoints)
	}
	if stats.TailRecords != 0 {
		t.Errorf("TailRecords = %d, want 0 after a clean shutdown", stats.TailRecords)
	}
	if stats.Records != 100 {
		t.Errorf("Records = %d, want 100", stats.Records)
	}
	if v := st2.Verdict("app.fast"); v.Channels.Reports.Detections != 100 {
		t.Errorf("Detections = %d, want 100", v.Channels.Reports.Detections)
	}
	// Dedup window restored from the snapshot alone: full resubmit dedups.
	var evs []report.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, ev("app.fast", fmt.Sprintf("bomb-%d", i), "user-1"))
	}
	if a, d, err := st2.Ingest(evs); err != nil || a != 0 || d != 100 {
		t.Fatalf("resubmit = (%d, %d, %v), want (0, 100, nil)", a, d, err)
	}
}

// TestCheckpointAtSegmentEdge: with segments so small every batch
// rotates, mid-run checkpoints land exactly on segment boundaries
// (position = start of a fresh segment). Open must honor a checkpoint
// pointing at offset 0 of a later segment, and compaction must keep
// that segment.
func TestCheckpointAtSegmentEdge(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 1, CheckpointEvery: 1}
	st, _ := mustOpen(t, cfg)
	// One event per Ingest: every commit overflows the 1-byte segment,
	// rotates, and then checkpoints at (seg+1, 0).
	for i := 0; i < 10; i++ {
		if _, _, err := st.Ingest([]report.Event{ev("app.edge", fmt.Sprintf("b%d", i), "u")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", stats.Checkpoints)
	}
	if stats.TailRecords != 0 {
		t.Errorf("TailRecords = %d, want 0", stats.TailRecords)
	}
	if stats.Records != 10 {
		t.Errorf("Records = %d, want 10", stats.Records)
	}
	if v := st2.Verdict("app.edge"); v.Channels.Reports.Detections != 10 {
		t.Errorf("Detections = %d, want 10", v.Channels.Reports.Detections)
	}
}

// TestCheckpointTailReplayMidSegment: a crash after the last
// checkpoint leaves durable records past it in the same segment; Open
// must restore the snapshot and replay exactly that mid-segment tail.
func TestCheckpointTailReplayMidSegment(t *testing.T) {
	fa := marketfs.NewFault(nil, 11)
	cfg := Config{Dir: "data", Shards: 1, Fsync: true, CheckpointEvery: 5, FS: fa}
	st, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 events trip the checkpoint; 3 more are tail-only.
	for i := 0; i < 8; i++ {
		if _, _, err := st.Ingest([]report.Event{ev("app.tail", fmt.Sprintf("b%d", i), "u")}); err != nil {
			t.Fatal(err)
		}
	}
	fa.Crash()
	st.Close() // errors ignored: the machine is dead
	fa.Recover()

	st2, stats, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()
	if stats.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", stats.Checkpoints)
	}
	if stats.TailRecords != 3 {
		t.Errorf("TailRecords = %d, want 3 (records 6..8)", stats.TailRecords)
	}
	if stats.Records != 8 {
		t.Errorf("Records = %d, want 8", stats.Records)
	}
	if v := st2.Verdict("app.tail"); v.Channels.Reports.Detections != 8 {
		t.Errorf("Detections = %d, want 8", v.Channels.Reports.Detections)
	}
}

// TestCompactionReclaimsSegments: rotated segments wholly behind a
// checkpoint are deleted; the segment holding the checkpoint position
// is never touched, and restart state is unaffected.
func TestCompactionReclaimsSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 256, CheckpointEvery: 10}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.gc", 60) // many 256-byte segments, several checkpoints
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shard-000")
	segs, _ := filepath.Glob(filepath.Join(shardDir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segments left at all")
	}
	// Compaction ran: the log does not start at segment zero anymore.
	if _, err := os.Stat(filepath.Join(shardDir, segName(0))); !os.IsNotExist(err) {
		t.Errorf("segment 0 still present (%v) — compaction reclaimed nothing", err)
	}
	// Retention keeps at most the two newest checkpoints.
	ckpts, _ := filepath.Glob(filepath.Join(shardDir, "ckpt-????????"))
	if len(ckpts) == 0 || len(ckpts) > 2 {
		t.Errorf("checkpoint files on disk = %d, want 1..2", len(ckpts))
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != 60 {
		t.Errorf("Records = %d, want 60 after compaction", stats.Records)
	}
	if v := st2.Verdict("app.gc"); v.Channels.Reports.Detections != 60 {
		t.Errorf("Detections = %d, want 60", v.Channels.Reports.Detections)
	}
	// The checkpoint's own segment survived: reopening found it (no
	// errBadStart fallback, which would have shown as Checkpoints = 0).
	if stats.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", stats.Checkpoints)
	}
}

// TestCheckpointCorruptionFallsBack: a torn/garbage newest checkpoint
// falls back to the previous one (replaying the longer tail); when
// every checkpoint is bad, Open falls back to a full WAL replay. No
// verdict changes either way.
func TestCheckpointCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.fb", 10)
	st.Close() // ckpt seq 1 covers 10 records

	st, _ = mustOpen(t, cfg)
	writeEvents(t, st, "app.fb2", 5)
	st.Close() // ckpt seq 2 covers 15

	shardDir := filepath.Join(dir, "shard-000")
	newest := filepath.Join(shardDir, ckptName(2))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("expected checkpoint %s: %v", newest, err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	if stats.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1 (the older snapshot)", stats.Checkpoints)
	}
	if stats.TailRecords != 5 {
		t.Errorf("TailRecords = %d, want 5 (replayed past the older snapshot)", stats.TailRecords)
	}
	if v := st2.Verdict("app.fb"); v.Channels.Reports.Detections != 10 {
		t.Errorf("Detections(app.fb) = %d, want 10", v.Channels.Reports.Detections)
	}
	if v := st2.Verdict("app.fb2"); v.Channels.Reports.Detections != 5 {
		t.Errorf("Detections(app.fb2) = %d, want 5", v.Channels.Reports.Detections)
	}
	st2.Close() // writes ckpt seq 3

	// Now break every checkpoint: full-replay fallback.
	ckpts, _ := filepath.Glob(filepath.Join(shardDir, "ckpt-????????"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints to corrupt")
	}
	for _, p := range ckpts {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st3, stats := mustOpen(t, cfg)
	defer st3.Close()
	if stats.Checkpoints != 0 {
		t.Errorf("Checkpoints = %d, want 0 (full replay)", stats.Checkpoints)
	}
	if stats.Records != 15 {
		t.Errorf("Records = %d, want 15", stats.Records)
	}
	if v := st3.Verdict("app.fb"); v.Channels.Reports.Detections != 10 {
		t.Errorf("full-replay Detections(app.fb) = %d, want 10", v.Channels.Reports.Detections)
	}
}

// TestCheckpointDedupRotationEquivalence: with a tiny dedup window and
// a dup-heavy stream crossing several generation rotations, a store
// that restarts through checkpoints must end in exactly the state of
// one that never restarted — the snapshot carries both generations,
// not an approximation.
func TestCheckpointDedupRotationEquivalence(t *testing.T) {
	mkEvents := func(lo, hi int) []report.Event {
		var evs []report.Event
		for i := lo; i < hi; i++ {
			// i%13 forces frequent dup hits and window churn.
			evs = append(evs, ev("app.rotck", fmt.Sprintf("b%d", i%13), fmt.Sprintf("u%d", i%5)))
		}
		return evs
	}
	feed := func(st *Store, lo, hi int) (int, int) {
		a, d, err := st.Ingest(mkEvents(lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		return a, d
	}

	// Control: one store lifetime, no restarts, no checkpoints.
	plain, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1, DedupWindow: 8, CheckpointEvery: -1, MaxBatch: 1})
	ap1, dp1 := feed(plain, 0, 40)
	ap2, dp2 := feed(plain, 40, 80)
	wantVerdict := plain.Verdict("app.rotck")
	plain.Close()

	// Same stream, but with a checkpointed restart in the middle.
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, DedupWindow: 8, CheckpointEvery: 7, MaxBatch: 1}
	st, _ := mustOpen(t, cfg)
	ac1, dc1 := feed(st, 0, 40)
	st.Close()
	st2, stats := mustOpen(t, cfg)
	if stats.Checkpoints != 1 {
		t.Fatalf("restart did not use a checkpoint (stats %+v)", stats)
	}
	ac2, dc2 := feed(st2, 40, 80)
	got := st2.Verdict("app.rotck")
	st2.Close()

	if ac1 != ap1 || dc1 != dp1 || ac2 != ap2 || dc2 != dp2 {
		t.Errorf("accept/dup sequence diverged: plain (%d,%d)+(%d,%d), checkpointed (%d,%d)+(%d,%d)",
			ap1, dp1, ap2, dp2, ac1, dc1, ac2, dc2)
	}
	if got != wantVerdict {
		t.Errorf("verdict diverged: plain %+v, checkpointed %+v", wantVerdict, got)
	}

	// And a full replay of the same log (checkpoints deleted) agrees too.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "shard-000", "ckpt-????????"))
	for _, p := range ckpts {
		os.Remove(p)
	}
	st3, stats := mustOpen(t, Config{Dir: dir, Shards: 1, DedupWindow: 8, CheckpointEvery: -1, MaxBatch: 1})
	defer st3.Close()
	if stats.Checkpoints != 0 {
		t.Fatalf("expected full replay, got %+v", stats)
	}
	if v := st3.Verdict("app.rotck"); v != wantVerdict {
		t.Errorf("full replay verdict %+v, want %+v", v, wantVerdict)
	}
}
