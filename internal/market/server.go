package market

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// maxRequestEvents bounds one POST /v1/reports body. Clients batching
// harder than this get a 413 and should split; it keeps a single
// request from monopolizing every shard queue.
const maxRequestEvents = 65536

// NewHandler wires a Store into marketd's HTTP surface:
//
//	POST /v1/reports             — newline-delimited JSON Events
//	                               (Content-Encoding: gzip honored);
//	                               200 {"accepted":n,"duplicates":d},
//	                               429 + Retry-After on backpressure
//	GET  /v1/apps/{app}/verdict  — the app's Verdict as JSON
//	GET  /healthz                — liveness
//	GET  /metrics, /metrics.json — the store's registry
//
// The ingestion wire format is the same Event JSON the device-side
// report.HTTPSink emits, so a pipeline pointed at marketd needs no
// adapter.
func NewHandler(st *Store) http.Handler {
	mux := http.NewServeMux()
	reqs := st.Obs().Counter("market_http_requests_total")

	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		body := io.Reader(r.Body)
		if r.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				http.Error(w, "bad gzip body", http.StatusBadRequest)
				return
			}
			defer zr.Close()
			body = zr
		}
		dec := json.NewDecoder(body)
		var evs []report.Event
		for {
			var ev report.Event
			if err := dec.Decode(&ev); err == io.EOF {
				break
			} else if err != nil {
				http.Error(w, fmt.Sprintf("bad event at index %d: %v", len(evs), err), http.StatusBadRequest)
				return
			}
			if ev.App == "" || ev.Bomb == "" || ev.User == "" {
				http.Error(w, fmt.Sprintf("event at index %d missing app/bomb/user", len(evs)), http.StatusBadRequest)
				return
			}
			evs = append(evs, ev)
			if len(evs) > maxRequestEvents {
				http.Error(w, fmt.Sprintf("batch exceeds %d events", maxRequestEvents), http.StatusRequestEntityTooLarge)
				return
			}
		}
		accepted, dups, err := st.Ingest(evs)
		switch {
		case errors.Is(err, ErrBackpressure):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\":%d,\"duplicates\":%d}\n", accepted, dups)
	})

	mux.HandleFunc("GET /v1/apps/{app}/verdict", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		v := st.Verdict(r.PathValue("app"))
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(v)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})

	obs.RegisterMetricsHandlers(mux, st.Obs())
	return mux
}
